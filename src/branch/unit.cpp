#include "branch/unit.h"

namespace mflush {

BranchUnit::BranchUnit(const CoreConfig& cfg)
    : perceptron_(cfg.perceptron_table, cfg.local_history_entries,
                  cfg.history_bits),
      btb_(cfg.btb_entries, cfg.btb_ways) {
  ras_.reserve(cfg.threads_per_core);
  for (std::uint32_t t = 0; t < cfg.threads_per_core; ++t)
    ras_.emplace_back(cfg.ras_entries);
}

BranchPrediction BranchUnit::predict(ThreadId tid, const TraceInstr& ins) {
  BranchPrediction pred;
  switch (ins.cls) {
    case InstrClass::Branch: {
      pred.taken = perceptron_.predict(tid, ins.pc);
      if (pred.taken) {
        if (const auto target = btb_.lookup(ins.pc)) {
          pred.target = *target;
        } else {
          // Predicted taken but no target known: the front-end cannot
          // redirect, so the effective prediction is fall-through.
          pred.taken = false;
        }
      }
      if (!pred.taken) pred.target = ins.pc + 4;
      perceptron_.push_history(tid, pred.taken);
      break;
    }
    case InstrClass::Call: {
      pred.taken = true;
      if (const auto target = btb_.lookup(ins.pc)) {
        pred.target = *target;
      } else {
        pred.target = ins.pc + 4;  // unknown target: effectively a mispredict
        pred.taken = false;
      }
      ras_[tid].push(ins.pc + 4);
      break;
    }
    case InstrClass::Return: {
      pred.taken = true;
      pred.target = ras_[tid].pop();
      if (pred.target == 0) {
        pred.target = ins.pc + 4;
        pred.taken = false;
      }
      break;
    }
    default:
      pred.taken = false;
      pred.target = ins.pc + 4;
      break;
  }
  return pred;
}

void BranchUnit::resolve(ThreadId tid, const TraceInstr& ins,
                         bool predicted_taken, std::uint64_t history) {
  switch (ins.cls) {
    case InstrClass::Branch:
      perceptron_.update(tid, ins.pc, ins.taken, predicted_taken, history);
      if (ins.taken) btb_.update(ins.pc, ins.target);
      break;
    case InstrClass::Call:
      btb_.update(ins.pc, ins.target);
      break;
    case InstrClass::Return:
      break;  // RAS-predicted; nothing to train
    default:
      break;
  }
}

void BranchUnit::apply_resolved(ThreadId tid, const TraceInstr& ins) {
  switch (ins.cls) {
    case InstrClass::Branch:
      perceptron_.push_history(tid, ins.taken);
      break;
    case InstrClass::Call:
      ras_[tid].push(ins.pc + 4);
      break;
    case InstrClass::Return:
      (void)ras_[tid].pop();
      break;
    default:
      break;
  }
}

BranchUnit::Checkpoint BranchUnit::checkpoint(ThreadId tid) const {
  return {perceptron_.history_checkpoint(tid), ras_[tid].checkpoint()};
}

void BranchUnit::restore(ThreadId tid, const Checkpoint& c) {
  perceptron_.restore_history(tid, c.history);
  ras_[tid].restore(c.ras);
}

}  // namespace mflush
