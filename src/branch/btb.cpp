#include "branch/btb.h"

#include <bit>
#include <cassert>

namespace mflush {

Btb::Btb(std::uint32_t entries, std::uint32_t ways)
    : ways_(std::max(1u, ways)),
      num_sets_(std::bit_ceil(std::max(1u, entries / std::max(1u, ways)))),
      entries_(static_cast<std::size_t>(num_sets_) * ways_) {}

std::size_t Btb::set_of(Addr pc) const noexcept {
  return (pc >> 2) & (num_sets_ - 1);
}

std::optional<Addr> Btb::lookup(Addr pc) {
  const std::size_t base = set_of(pc) * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Entry& e = entries_[base + w];
    if (e.valid && e.tag == pc) {
      e.lru = ++tick_;
      ++hits_;
      return e.target;
    }
  }
  ++misses_;
  return std::nullopt;
}

void Btb::update(Addr pc, Addr target) {
  const std::size_t base = set_of(pc) * ways_;
  Entry* victim = &entries_[base];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Entry& e = entries_[base + w];
    if (e.valid && e.tag == pc) {
      e.target = target;
      e.lru = ++tick_;
      return;
    }
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) victim = &e;
  }
  victim->valid = true;
  victim->tag = pc;
  victim->target = target;
  victim->lru = ++tick_;
}

}  // namespace mflush
