#pragma once

#include <cstdint>
#include <vector>

#include "branch/btb.h"
#include "branch/perceptron.h"
#include "branch/ras.h"
#include "common/archive.h"
#include "common/config.h"
#include "trace/instr.h"

namespace mflush {

/// Direction + target produced at fetch.
struct BranchPrediction {
  bool taken = false;
  Addr target = 0;
};

/// Per-core branch machinery: perceptron direction predictor + BTB +
/// per-context RAS, with checkpoint/restore for squash recovery.
class BranchUnit {
 public:
  explicit BranchUnit(const CoreConfig& cfg);

  /// Predict the control instruction `ins` fetched by context `tid`;
  /// speculatively updates direction history and the RAS.
  [[nodiscard]] BranchPrediction predict(ThreadId tid, const TraceInstr& ins);

  /// Train at resolution with the architectural outcome. `history` is the
  /// global-history value captured in the op's pre-predict checkpoint.
  void resolve(ThreadId tid, const TraceInstr& ins, bool predicted_taken,
               std::uint64_t history);

  /// Mispredict recovery: after restoring the pre-predict checkpoint,
  /// re-apply the op's architectural effect to the speculative structures
  /// (history push / RAS push / RAS pop).
  void apply_resolved(ThreadId tid, const TraceInstr& ins);

  struct Checkpoint {
    std::uint64_t history = 0;
    Ras::Checkpoint ras{0, 0};
  };
  [[nodiscard]] Checkpoint checkpoint(ThreadId tid) const;
  void restore(ThreadId tid, const Checkpoint& c);

  [[nodiscard]] const PerceptronPredictor& direction() const noexcept {
    return perceptron_;
  }
  [[nodiscard]] const Btb& btb() const noexcept { return btb_; }

  void save(ArchiveWriter& ar) const {
    perceptron_.save(ar);
    btb_.save(ar);
    for (const Ras& r : ras_) r.save(ar);
  }
  void load(ArchiveReader& ar) {
    perceptron_.load(ar);
    btb_.load(ar);
    for (Ras& r : ras_) r.load(ar);
  }

 private:
  PerceptronPredictor perceptron_;
  Btb btb_;
  std::vector<Ras> ras_;  ///< one per hardware context
};

}  // namespace mflush
