#include "branch/perceptron.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace mflush {
namespace {

constexpr std::uint64_t hash_pc(Addr pc) noexcept {
  std::uint64_t x = pc >> 2;
  x ^= x >> 17;
  x *= 0xed5ad4bbull;
  x ^= x >> 11;
  return x;
}

constexpr std::uint32_t kMaxContexts = 64;
constexpr std::uint32_t kLocalBits = 10;

}  // namespace

PerceptronPredictor::PerceptronPredictor(std::uint32_t num_perceptrons,
                                         std::uint32_t local_entries,
                                         std::uint32_t history_bits)
    : history_bits_(std::min<std::uint32_t>(history_bits, 40)),
      theta_(static_cast<std::int32_t>(
          1.93 * (history_bits_ + kLocalBits) + 14.0)),
      local_bits_(kLocalBits),
      weights_(std::bit_ceil(std::max(1u, num_perceptrons))),
      global_history_(kMaxContexts, 0),
      local_history_(std::bit_ceil(std::max(1u, local_entries)), 0) {
  for (auto& w : weights_)
    w.assign(1 + history_bits_ + local_bits_, 0);
}

std::size_t PerceptronPredictor::table_index(Addr pc) const noexcept {
  return hash_pc(pc) & (weights_.size() - 1);
}

std::size_t PerceptronPredictor::local_index(Addr pc) const noexcept {
  return (pc >> 2) & (local_history_.size() - 1);
}

std::int32_t PerceptronPredictor::dot(Addr pc, std::uint64_t history) const {
  const auto& w = weights_[table_index(pc)];
  std::int32_t y = w[0];
  for (std::uint32_t i = 0; i < history_bits_; ++i) {
    const bool bit = (history >> i) & 1;
    y += bit ? w[1 + i] : -w[1 + i];
  }
  const std::uint64_t lh = local_history_[local_index(pc)];
  for (std::uint32_t i = 0; i < local_bits_; ++i) {
    const bool bit = (lh >> i) & 1;
    y += bit ? w[1 + history_bits_ + i] : -w[1 + history_bits_ + i];
  }
  return y;
}

bool PerceptronPredictor::predict(ThreadId tid, Addr pc) const {
  ++preds_;
  return dot(pc, global_history_[tid % kMaxContexts]) >= 0;
}

void PerceptronPredictor::update(ThreadId tid, Addr pc, bool taken,
                                 bool predicted, std::uint64_t history) {
  (void)tid;
  if (predicted != taken) ++mispreds_;
  const std::int32_t y = dot(pc, history);
  const std::int32_t magnitude = y >= 0 ? y : -y;
  if (predicted != taken || magnitude <= theta_) {
    auto& w = weights_[table_index(pc)];
    auto adjust = [taken](std::int8_t& wi, bool bit) {
      const int delta = (bit == taken) ? 1 : -1;
      const int next = wi + delta;
      wi = static_cast<std::int8_t>(std::clamp(next, -128, 127));
    };
    // Bias correlates with "taken".
    adjust(w[0], true);
    for (std::uint32_t i = 0; i < history_bits_; ++i)
      adjust(w[1 + i], (history >> i) & 1);
    const std::uint64_t lh = local_history_[local_index(pc)];
    for (std::uint32_t i = 0; i < local_bits_; ++i)
      adjust(w[1 + history_bits_ + i], (lh >> i) & 1);
  }
  // Local history is updated non-speculatively at resolution.
  auto& lh = local_history_[local_index(pc)];
  lh = ((lh << 1) | (taken ? 1 : 0)) & ((1ull << local_bits_) - 1);
}

void PerceptronPredictor::push_history(ThreadId tid, bool taken) {
  auto& gh = global_history_[tid % kMaxContexts];
  gh = (gh << 1) | (taken ? 1 : 0);
  if (history_bits_ < 64) gh &= (1ull << history_bits_) - 1;
}

std::uint64_t PerceptronPredictor::history_checkpoint(ThreadId tid) const {
  return global_history_[tid % kMaxContexts];
}

void PerceptronPredictor::restore_history(ThreadId tid,
                                          std::uint64_t checkpoint) {
  global_history_[tid % kMaxContexts] = checkpoint;
}

}  // namespace mflush
