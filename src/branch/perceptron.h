#pragma once

#include <cstdint>
#include <vector>

#include "common/archive.h"
#include "common/types.h"

namespace mflush {

/// Perceptron conditional-branch predictor (Fig. 1: "perceptron, 4K local,
/// 256 perceps.").
///
/// 256 perceptrons are indexed by a pc hash; each perceptron weighs a
/// combined history of global outcome bits and a per-pc local history read
/// from a 4096-entry local history table. Weights are saturating int8; the
/// training threshold follows Jiménez & Lin (theta = 1.93 h + 14).
class PerceptronPredictor {
 public:
  PerceptronPredictor(std::uint32_t num_perceptrons,
                      std::uint32_t local_entries, std::uint32_t history_bits);

  /// Predict direction for `pc` in hardware context `tid` (histories are
  /// per-context to avoid cross-thread aliasing noise).
  [[nodiscard]] bool predict(ThreadId tid, Addr pc) const;

  /// Train with the resolved outcome. `history` must be the global history
  /// the prediction was made with (captured at fetch) — training against
  /// the drifted in-flight history would teach the perceptron noise.
  void update(ThreadId tid, Addr pc, bool taken, bool predicted,
              std::uint64_t history);

  /// Speculative history update at fetch; `restore_history` undoes it on a
  /// squash (checkpoint = value returned from `history_checkpoint`).
  void push_history(ThreadId tid, bool taken);
  [[nodiscard]] std::uint64_t history_checkpoint(ThreadId tid) const;
  void restore_history(ThreadId tid, std::uint64_t checkpoint);

  [[nodiscard]] std::uint64_t predictions() const noexcept { return preds_; }
  [[nodiscard]] std::uint64_t mispredictions() const noexcept {
    return mispreds_;
  }

  void save(ArchiveWriter& ar) const {
    for (const auto& w : weights_) ar.put_vec(w);
    ar.put_vec(global_history_);
    ar.put_vec(local_history_);
    ar.put(preds_);
    ar.put(mispreds_);
  }
  void load(ArchiveReader& ar) {
    for (auto& w : weights_) ar.get_vec(w);
    ar.get_vec(global_history_);
    ar.get_vec(local_history_);
    preds_ = ar.get<std::uint64_t>();
    mispreds_ = ar.get<std::uint64_t>();
  }

 private:
  [[nodiscard]] std::int32_t dot(Addr pc, std::uint64_t history) const;
  [[nodiscard]] std::size_t table_index(Addr pc) const noexcept;
  [[nodiscard]] std::size_t local_index(Addr pc) const noexcept;

  std::uint32_t history_bits_;  // lint: transient — ctor geometry
  std::int32_t theta_;          // lint: transient — ctor threshold
  std::uint32_t local_bits_;    // lint: transient — ctor geometry

  /// weights[perceptron][0] = bias, then history_bits global + local_bits
  /// local weights.
  std::vector<std::vector<std::int8_t>> weights_;
  std::vector<std::uint64_t> global_history_;  ///< per context
  std::vector<std::uint64_t> local_history_;   ///< per local-table entry

  mutable std::uint64_t preds_ = 0;
  std::uint64_t mispreds_ = 0;
};

}  // namespace mflush
