#pragma once

#include <cstdint>
#include <vector>

#include "common/archive.h"
#include "common/types.h"

namespace mflush {

/// Return Address Stack, 100 entries, replicated per thread (Fig. 1 *).
///
/// The stack is a circular buffer with a top-of-stack pointer; squash
/// recovery restores the pointer from a checkpoint (standard low-cost RAS
/// repair — entry contents clobbered by the wrong path stay clobbered, which
/// is exactly the behaviour mispredicted returns exhibit in hardware).
class Ras {
 public:
  explicit Ras(std::uint32_t entries);

  void push(Addr return_pc) noexcept;
  [[nodiscard]] Addr pop() noexcept;  ///< returns 0 when empty-ish

  struct Checkpoint {
    std::uint32_t top;
    std::uint32_t depth;
  };
  [[nodiscard]] Checkpoint checkpoint() const noexcept {
    return {top_, depth_};
  }
  void restore(Checkpoint c) noexcept {
    top_ = c.top;
    depth_ = c.depth;
  }

  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(stack_.size());
  }

  void save(ArchiveWriter& ar) const {
    ar.put_vec(stack_);
    ar.put(top_);
    ar.put(depth_);
  }
  void load(ArchiveReader& ar) {
    ar.get_vec(stack_);
    top_ = ar.get<std::uint32_t>();
    depth_ = ar.get<std::uint32_t>();
  }

 private:
  std::vector<Addr> stack_;
  std::uint32_t top_ = 0;    ///< next push slot
  std::uint32_t depth_ = 0;  ///< live entries (saturates at capacity)
};

}  // namespace mflush
