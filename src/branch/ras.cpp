#include "branch/ras.h"

#include <algorithm>

namespace mflush {

Ras::Ras(std::uint32_t entries) : stack_(std::max(1u, entries), 0) {}

void Ras::push(Addr return_pc) noexcept {
  stack_[top_] = return_pc;
  top_ = (top_ + 1) % capacity();
  depth_ = std::min(depth_ + 1, capacity());
}

Addr Ras::pop() noexcept {
  if (depth_ == 0) return 0;
  top_ = (top_ + capacity() - 1) % capacity();
  --depth_;
  return stack_[top_];
}

}  // namespace mflush
