#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/archive.h"
#include "common/types.h"

namespace mflush {

/// Branch Target Buffer: 256 entries, 4-way set associative (Fig. 1),
/// true-LRU within a set.
class Btb {
 public:
  Btb(std::uint32_t entries, std::uint32_t ways);

  /// Predicted target for `pc`, if any.
  [[nodiscard]] std::optional<Addr> lookup(Addr pc);

  /// Install/refresh the target of a resolved taken branch.
  void update(Addr pc, Addr target);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  void save(ArchiveWriter& ar) const {
    ar.put_vec(entries_);
    ar.put(tick_);
    ar.put(hits_);
    ar.put(misses_);
  }
  void load(ArchiveReader& ar) {
    ar.get_vec(entries_);
    tick_ = ar.get<std::uint64_t>();
    hits_ = ar.get<std::uint64_t>();
    misses_ = ar.get<std::uint64_t>();
  }

  /// Public (and with explicit padding) because entries_ is serialized by
  /// raw memcpy: the layout is part of the snapshot format, and the lint's
  /// layout probe must be able to offsetof it.
  struct Entry {
    Addr tag = 0;
    Addr target = 0;
    std::uint64_t lru = 0;  ///< larger = more recently used
    bool valid = false;
    std::uint8_t _pad[7] = {};  ///< explicit tail padding: canonical bytes
  };

 private:
  [[nodiscard]] std::size_t set_of(Addr pc) const noexcept;

  std::uint32_t ways_;      // lint: transient — ctor geometry
  std::uint32_t num_sets_;  // lint: transient — ctor geometry
  std::vector<Entry> entries_;  ///< sets * ways, row-major
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mflush
