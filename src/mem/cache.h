#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mflush {

/// Geometry of a set-associative cache (or one bank slice of one).
struct CacheGeometry {
  std::uint32_t size_bytes = 0;
  std::uint32_t ways = 1;
  std::uint32_t line_bytes = 64;
  std::uint32_t banks = 1;

  [[nodiscard]] std::uint32_t num_sets() const noexcept {
    return size_bytes / (ways * line_bytes);
  }
};

/// Result of a tag-array fill: identifies the evicted victim, if any.
struct EvictInfo {
  bool evicted = false;
  bool victim_dirty = false;
  Addr victim_line = 0;  ///< line-aligned byte address
};

/// Set-associative tag array with true LRU and write-back/write-allocate
/// semantics. Only tags and dirty bits are modelled (timing simulator: data
/// values do not exist).
class SetAssocCache {
 public:
  explicit SetAssocCache(CacheGeometry g);

  /// Tag lookup; updates LRU and the dirty bit on a write hit.
  [[nodiscard]] bool access(Addr addr, bool is_write);

  /// Lookup without any state change.
  [[nodiscard]] bool probe(Addr addr) const;

  /// Install a line (after a miss completes); returns the victim.
  EvictInfo fill(Addr addr, bool dirty);

  /// Line-aligned address and bank index helpers.
  [[nodiscard]] Addr line_of(Addr addr) const noexcept {
    return addr & ~static_cast<Addr>(geom_.line_bytes - 1);
  }
  [[nodiscard]] std::uint32_t bank_of(Addr addr) const noexcept {
    return static_cast<std::uint32_t>((addr / geom_.line_bytes) &
                                      (geom_.banks - 1));
  }

  [[nodiscard]] const CacheGeometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  void reset_stats() noexcept {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::size_t set_index(Addr addr) const noexcept;

  CacheGeometry geom_;
  std::uint32_t sets_;
  std::vector<Line> lines_;  ///< sets * ways row-major
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mflush
