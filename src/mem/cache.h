#pragma once

#include <cstdint>
#include <vector>

#include "common/archive.h"
#include "common/types.h"

namespace mflush {

/// Geometry of a set-associative cache (or one bank slice of one).
struct CacheGeometry {
  std::uint32_t size_bytes = 0;
  std::uint32_t ways = 1;
  std::uint32_t line_bytes = 64;
  std::uint32_t banks = 1;

  [[nodiscard]] std::uint32_t num_sets() const noexcept {
    return size_bytes / (ways * line_bytes);
  }
};

/// Result of a tag-array fill: identifies the evicted victim, if any.
struct EvictInfo {
  bool evicted = false;
  bool victim_dirty = false;
  Addr victim_line = 0;  ///< line-aligned byte address
};

/// Set-associative tag array with true LRU and write-back/write-allocate
/// semantics. Only tags and dirty bits are modelled (timing simulator: data
/// values do not exist).
class SetAssocCache {
 public:
  explicit SetAssocCache(CacheGeometry g);

  /// Tag lookup; updates LRU and the dirty bit on a write hit.
  [[nodiscard]] bool access(Addr addr, bool is_write);

  /// Lookup without any state change.
  [[nodiscard]] bool probe(Addr addr) const;

  /// Install a line (after a miss completes); returns the victim.
  EvictInfo fill(Addr addr, bool dirty);

  /// Line-aligned address and bank index helpers.
  [[nodiscard]] Addr line_of(Addr addr) const noexcept {
    return addr & ~static_cast<Addr>(geom_.line_bytes - 1);
  }
  [[nodiscard]] std::uint32_t bank_of(Addr addr) const noexcept {
    return static_cast<std::uint32_t>((addr >> line_shift_) &
                                      (geom_.banks - 1));
  }

  [[nodiscard]] const CacheGeometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  void reset_stats() noexcept {
    hits_ = 0;
    misses_ = 0;
  }

  void save(ArchiveWriter& ar) const {
    ar.put_vec(lines_);
    ar.put(tick_);
    ar.put(hits_);
    ar.put(misses_);
  }
  void load(ArchiveReader& ar) {
    ar.get_vec(lines_);
    tick_ = ar.get<std::uint64_t>();
    hits_ = ar.get<std::uint64_t>();
    misses_ = ar.get<std::uint64_t>();
  }

  /// Public (and with explicit padding) because lines_ is serialized by
  /// raw memcpy: the layout is part of the snapshot format, and the lint's
  /// layout probe must be able to offsetof it.
  struct Line {
    Addr tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
    std::uint8_t _pad[6] = {};  ///< explicit tail padding: canonical bytes
  };

 private:
  /// Set index on the cycle-loop hot path. Line size is always a power of
  /// two, so the division is a shift; when the set count is also a power of
  /// two (every L1 geometry) the modulo collapses to a precomputed mask.
  /// Non-power-of-two set counts (the paper's 12-way L2 slices) keep the
  /// modulo — same mapping as the original division/modulo implementation.
  [[nodiscard]] std::size_t set_index(Addr addr) const noexcept {
    const Addr line_index = addr >> line_shift_;
    return static_cast<std::size_t>(
        pow2_sets_ ? (line_index & set_mask_) : (line_index % sets_));
  }

  CacheGeometry geom_;    // lint: transient — ctor geometry
  std::uint32_t sets_;    // lint: transient — ctor geometry
  // log2(line_bytes)
  std::uint32_t line_shift_ = 6;  // lint: transient — ctor geometry
  // sets_ - 1 when pow2_sets_
  Addr set_mask_ = 0;        // lint: transient — ctor geometry
  bool pow2_sets_ = false;   // lint: transient — ctor geometry
  std::vector<Line> lines_;  ///< sets * ways row-major
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mflush
