#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/archive.h"
#include "common/types.h"
#include "mem/cache.h"

namespace mflush {

/// Outcome of one L2 bank service.
struct L2ServiceResult {
  std::uint64_t payload = 0;  ///< opaque request index
  bool hit = false;
  std::uint32_t bank = 0;
};

/// Shared, multi-banked L2 cache (Fig. 1: 4 MB, 12-way, 4 banks; each bank
/// single-ported with a 15-cycle access).
///
/// Each bank owns an address-interleaved slice of the tag array and serves
/// one request at a time: a request occupies its bank for `bank_latency`
/// cycles, so back-to-back requests to the same bank serialize — the paper's
/// "the 4th consecutive L2 hit to the same bank experiences a 45-cycle
/// delay" behaviour.
class L2Cache {
 public:
  L2Cache(std::uint32_t size_bytes, std::uint32_t ways,
          std::uint32_t line_bytes, std::uint32_t banks,
          std::uint32_t bank_latency);

  [[nodiscard]] std::uint32_t bank_of(Addr addr) const noexcept {
    return static_cast<std::uint32_t>((addr >> line_shift_) & (banks() - 1));
  }
  [[nodiscard]] std::uint32_t banks() const noexcept {
    return static_cast<std::uint32_t>(slices_.size());
  }

  /// Queue a request (read lookup or writeback install) at its bank.
  void enqueue(Addr addr, std::uint64_t payload, bool is_writeback, Cycle now);

  /// Advance one cycle; completed *read* services are appended to `out`
  /// (writebacks install silently). A read service probes the slice tags:
  /// hit refreshes LRU; miss does NOT install (the fill happens later via
  /// `fill()` when memory responds).
  void tick(Cycle now, std::vector<L2ServiceResult>& out);

  /// Install a line returning from memory; returns eviction info (dirty
  /// victims are written back to memory by the caller).
  EvictInfo fill(Addr addr, bool dirty);

  [[nodiscard]] std::uint64_t read_hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t read_misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t writebacks() const noexcept {
    return writebacks_;
  }
  [[nodiscard]] std::uint64_t bank_busy_cycles() const noexcept {
    return busy_cycles_;
  }
  [[nodiscard]] std::size_t queue_depth(std::uint32_t bank) const {
    return banks_[bank].queue.size();
  }
  void reset_stats() noexcept;

  /// Next cycle at which tick() changes state. A busy bank means every
  /// cycle (per-cycle occupancy accounting), so the event kernel only
  /// skips over fully idle banks.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const noexcept {
    for (const Bank& b : banks_)
      if (b.busy || !b.queue.empty()) return now + 1;
    return kNeverCycle;
  }

  /// True when bank `b` is busy with or queueing any read request whose
  /// payload matches `pred` (idle-time per-core horizon scans; writebacks
  /// install silently and never produce completions).
  template <typename Pred>
  [[nodiscard]] bool bank_serves_core(std::uint32_t b, Pred&& pred) const {
    const Bank& bank = banks_[b];
    if (bank.busy && !bank.current.is_writeback && pred(bank.current.payload))
      return true;
    for (const BankRequest& r : bank.queue)
      if (!r.is_writeback && pred(r.payload)) return true;
    return false;
  }

  void save(ArchiveWriter& ar) const {
    for (const SetAssocCache& s : slices_) s.save(ar);
    for (const Bank& b : banks_) {
      ar.put_deque(b.queue);
      ar.put(b.current);
      ar.put(b.done_at);
      ar.put(b.busy);
    }
    ar.put(hits_);
    ar.put(misses_);
    ar.put(writebacks_);
    ar.put(busy_cycles_);
  }
  void load(ArchiveReader& ar) {
    for (SetAssocCache& s : slices_) s.load(ar);
    for (Bank& b : banks_) {
      ar.get_deque(b.queue);
      b.current = ar.get<BankRequest>();
      b.done_at = ar.get<Cycle>();
      b.busy = ar.get<bool>();
    }
    hits_ = ar.get<std::uint64_t>();
    misses_ = ar.get<std::uint64_t>();
    writebacks_ = ar.get<std::uint64_t>();
    busy_cycles_ = ar.get<std::uint64_t>();
  }

  /// Public (and with explicit padding) because bank queues are serialized
  /// by raw memcpy: the layout is part of the snapshot format, and the
  /// lint's layout probe must be able to offsetof it.
  struct BankRequest {
    Addr addr = 0;
    std::uint64_t payload = 0;
    bool is_writeback = false;
    std::uint8_t _pad[7] = {};  ///< explicit tail padding: canonical bytes
  };

 private:
  struct Bank {
    std::deque<BankRequest> queue;
    BankRequest current{};
    Cycle done_at = 0;
    bool busy = false;
  };

  std::uint32_t line_bytes_;    // lint: transient — ctor geometry
  // log2(line_bytes): hot-path divide -> shift
  std::uint32_t line_shift_;    // lint: transient — ctor geometry
  std::uint32_t bank_latency_;  // lint: transient — ctor config
  std::vector<SetAssocCache> slices_;  ///< one tag slice per bank
  std::vector<Bank> banks_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t busy_cycles_ = 0;
};

}  // namespace mflush
