#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/archive.h"
#include "common/types.h"

namespace mflush {

/// Fully-associative TLB with true LRU (Fig. 1: 512 entries, 300-cycle
/// miss penalty, 8 KB pages).
///
/// Implemented as a hash map + intrusive LRU list so lookups stay O(1)
/// even at 512 entries.
class Tlb {
 public:
  Tlb(std::uint32_t entries, std::uint32_t page_bytes);

  /// Translate; returns true on hit. A miss installs the page (the page
  /// walk itself is charged by the caller via the configured penalty).
  bool access(Addr addr);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  void reset_stats() noexcept {
    hits_ = 0;
    misses_ = 0;
  }

  void save(ArchiveWriter& ar) const {
    ar.put_vec(nodes_);
    ar.put_map(map_);
    ar.put(head_);
    ar.put(tail_);
    ar.put(used_);
    ar.put(hits_);
    ar.put(misses_);
  }
  void load(ArchiveReader& ar) {
    ar.get_vec(nodes_);
    ar.get_map(map_);
    head_ = ar.get<std::uint32_t>();
    tail_ = ar.get<std::uint32_t>();
    used_ = ar.get<std::uint32_t>();
    hits_ = ar.get<std::uint64_t>();
    misses_ = ar.get<std::uint64_t>();
  }

  static constexpr std::uint32_t kNull = 0xffffffff;

  /// Public because nodes_ is serialized by raw memcpy: the layout is part
  /// of the snapshot format, and the lint's layout probe must be able to
  /// offsetof it (8 + 4 + 4 bytes — no padding).
  struct Node {
    Addr page = 0;
    std::uint32_t prev = kNull;
    std::uint32_t next = kNull;
  };

 private:
  void move_to_front(std::uint32_t idx) noexcept;
  void detach(std::uint32_t idx) noexcept;
  void attach_front(std::uint32_t idx) noexcept;

  std::uint32_t capacity_;    // lint: transient — ctor geometry
  std::uint32_t page_shift_;  // lint: transient — ctor geometry
  std::vector<Node> nodes_;
  std::unordered_map<Addr, std::uint32_t> map_;
  std::uint32_t head_ = kNull;  ///< MRU
  std::uint32_t tail_ = kNull;  ///< LRU
  std::uint32_t used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mflush
