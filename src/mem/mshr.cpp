#include "mem/mshr.h"

#include <cassert>

namespace mflush {

Mshr::Mshr(std::uint32_t entries) : entries_(std::max(1u, entries)) {}

std::optional<std::uint32_t> Mshr::find(Addr line) const noexcept {
  for (std::uint32_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].valid && entries_[i].line == line) return i;
  return std::nullopt;
}

std::optional<std::uint32_t> Mshr::allocate(Addr line) {
  assert(!find(line).has_value() && "line already outstanding");
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].valid) {
      entries_[i].valid = true;
      entries_[i].line = line;
      entries_[i].waiters.clear();
      entries_[i].miss_known = false;
      ++live_;
      return i;
    }
  }
  ++alloc_failures_;
  return std::nullopt;
}

void Mshr::attach(std::uint32_t slot, const MshrWaiter& w) {
  assert(slot < entries_.size() && entries_[slot].valid);
  entries_[slot].waiters.push_back(w);
}

const std::vector<MshrWaiter>& Mshr::release(std::uint32_t slot) {
  assert(slot < entries_.size() && entries_[slot].valid);
  entries_[slot].valid = false;
  --live_;
  return entries_[slot].waiters;
}

}  // namespace mflush
