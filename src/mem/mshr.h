#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/archive.h"
#include "common/types.h"

namespace mflush {

/// Kind of a memory access as seen by the hierarchy.
enum class MemKind : std::uint8_t { Load, Store, IFetch };

/// One requester waiting on an outstanding line.
///
/// Explicit zero-initialized padding: waiter lists are serialized by raw
/// memcpy, so implicit holes would put uninitialized bytes in the snapshot
/// and break canonical-bytes equality across processes.
struct MshrWaiter {
  std::uint64_t token = 0;
  ThreadId tid = 0;
  std::uint8_t _pad0[4] = {};
  Cycle issue_cycle = 0;
  MemKind kind = MemKind::Load;
  std::uint8_t _pad1[7] = {};
};

/// Miss Status Holding Registers: per-core, unified I+D, 16 entries
/// (Fig. 1 / §3.2 of the paper). Coalesces secondary misses to an
/// outstanding line.
class Mshr {
 public:
  explicit Mshr(std::uint32_t entries);

  /// Slot holding `line`, if outstanding.
  [[nodiscard]] std::optional<std::uint32_t> find(Addr line) const noexcept;

  /// Allocate a slot for `line`; nullopt when full.
  [[nodiscard]] std::optional<std::uint32_t> allocate(Addr line);

  /// Attach a waiter to an existing slot (secondary miss).
  void attach(std::uint32_t slot, const MshrWaiter& w);

  /// Release a slot, returning a view of its waiters. The vector stays
  /// owned by the slot (pooled: its capacity is reused by the next
  /// allocate of the slot instead of being reallocated per miss) and is
  /// valid until that next allocate.
  [[nodiscard]] const std::vector<MshrWaiter>& release(std::uint32_t slot);

  [[nodiscard]] Addr line_of_slot(std::uint32_t slot) const noexcept {
    return entries_[slot].line;
  }

  /// FL-NS support: record/query that the slot's line is known to have
  /// missed in L2 (so late coalescers learn the miss immediately).
  void set_miss_known(std::uint32_t slot) noexcept {
    entries_[slot].miss_known = true;
  }
  [[nodiscard]] bool miss_known(std::uint32_t slot) const noexcept {
    return entries_[slot].miss_known;
  }

  /// Waiters currently attached to `slot` (read-only view).
  [[nodiscard]] const std::vector<MshrWaiter>& waiters(
      std::uint32_t slot) const noexcept {
    return entries_[slot].waiters;
  }
  [[nodiscard]] bool full() const noexcept { return live_ == entries_.size(); }
  [[nodiscard]] std::uint32_t live() const noexcept { return live_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }
  [[nodiscard]] std::uint64_t alloc_failures() const noexcept {
    return alloc_failures_;
  }

  void save(ArchiveWriter& ar) const {
    for (const Entry& e : entries_) {
      ar.put(e.line);
      ar.put_vec(e.waiters);
      ar.put(e.valid);
      ar.put(e.miss_known);
    }
    ar.put(live_);
    ar.put(alloc_failures_);
  }
  void load(ArchiveReader& ar) {
    for (Entry& e : entries_) {
      e.line = ar.get<Addr>();
      ar.get_vec(e.waiters);
      e.valid = ar.get<bool>();
      e.miss_known = ar.get<bool>();
    }
    live_ = ar.get<std::uint32_t>();
    alloc_failures_ = ar.get<std::uint64_t>();
  }

 private:
  struct Entry {
    Addr line = 0;
    std::vector<MshrWaiter> waiters;
    bool valid = false;
    bool miss_known = false;
  };

  std::vector<Entry> entries_;
  std::uint32_t live_ = 0;
  std::uint64_t alloc_failures_ = 0;
};

}  // namespace mflush
