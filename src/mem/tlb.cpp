#include "mem/tlb.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace mflush {

Tlb::Tlb(std::uint32_t entries, std::uint32_t page_bytes)
    : capacity_(std::max(1u, entries)),
      page_shift_(static_cast<std::uint32_t>(std::countr_zero(page_bytes))) {
  if (!std::has_single_bit(page_bytes))
    throw std::invalid_argument("page size must be a power of two");
  nodes_.resize(capacity_);
  map_.reserve(capacity_ * 2);
}

void Tlb::detach(std::uint32_t idx) noexcept {
  Node& n = nodes_[idx];
  if (n.prev != kNull) nodes_[n.prev].next = n.next;
  if (n.next != kNull) nodes_[n.next].prev = n.prev;
  if (head_ == idx) head_ = n.next;
  if (tail_ == idx) tail_ = n.prev;
  n.prev = n.next = kNull;
}

void Tlb::attach_front(std::uint32_t idx) noexcept {
  Node& n = nodes_[idx];
  n.prev = kNull;
  n.next = head_;
  if (head_ != kNull) nodes_[head_].prev = idx;
  head_ = idx;
  if (tail_ == kNull) tail_ = idx;
}

void Tlb::move_to_front(std::uint32_t idx) noexcept {
  if (head_ == idx) return;
  detach(idx);
  attach_front(idx);
}

bool Tlb::access(Addr addr) {
  const Addr page = addr >> page_shift_;
  if (const auto it = map_.find(page); it != map_.end()) {
    ++hits_;
    move_to_front(it->second);
    return true;
  }
  ++misses_;
  std::uint32_t idx;
  if (used_ < capacity_) {
    idx = used_++;
  } else {
    idx = tail_;
    detach(idx);
    map_.erase(nodes_[idx].page);
  }
  nodes_[idx].page = page;
  map_.emplace(page, idx);
  attach_front(idx);
  return false;
}

}  // namespace mflush
