#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/archive.h"
#include "common/types.h"

namespace mflush {

/// Shared L1↔L2 request bus.
///
/// A transfer occupies the bus for `latency` cycles (a true shared bus, as
/// in the paper's "bus-based interconnection network" — this occupancy is
/// one of the two terms of the MT equation). Arbitration is round-robin
/// across cores. The response path is a dedicated return network with no
/// modelled occupancy, so the unloaded L2 hit round trip is
/// l1 + bus + bank = 22 cycles, matching Fig. 1.
class SharedBus {
 public:
  SharedBus(std::uint32_t num_cores, std::uint32_t latency);

  /// Queue a payload (an opaque request index) from `core`.
  void push(CoreId core, std::uint64_t payload, Cycle now);

  /// Advance one cycle; payloads whose transfer completes this cycle are
  /// appended to `delivered`.
  void tick(Cycle now, std::vector<std::uint64_t>& delivered);

  [[nodiscard]] std::size_t queued() const noexcept;

  /// Next cycle at which tick() changes state (delivery or a new grant);
  /// kNeverCycle when idle with empty queues.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const noexcept {
    Cycle e = kNeverCycle;
    if (!in_flight_.empty()) e = in_flight_.front().arrives;
    for (const auto& q : per_core_) {
      if (!q.empty()) {
        const Cycle grant = busy_until_ > now + 1 ? busy_until_ : now + 1;
        if (grant < e) e = grant;
        break;
      }
    }
    return e;
  }

  void save(ArchiveWriter& ar) const {
    for (const auto& q : per_core_) ar.put_deque(q);
    ar.put(rr_next_);
    ar.put(busy_until_);
    ar.put_deque(in_flight_);
    ar.put(transfers_);
    ar.put(queue_wait_cycles_);
  }
  void load(ArchiveReader& ar) {
    for (auto& q : per_core_) ar.get_deque(q);
    rr_next_ = ar.get<std::uint32_t>();
    busy_until_ = ar.get<Cycle>();
    ar.get_deque(in_flight_);
    transfers_ = ar.get<std::uint64_t>();
    queue_wait_cycles_ = ar.get<std::uint64_t>();
  }

  [[nodiscard]] std::uint64_t transfers() const noexcept { return transfers_; }
  [[nodiscard]] std::uint64_t queue_wait_cycles() const noexcept {
    return queue_wait_cycles_;
  }
  void reset_stats() noexcept {
    transfers_ = 0;
    queue_wait_cycles_ = 0;
  }

  struct Pending {
    std::uint64_t payload;
    Cycle arrives;
  };

  /// Transfers on the wire, earliest arrival first (idle-time per-core
  /// horizon scans).
  [[nodiscard]] const std::deque<Pending>& in_flight() const noexcept {
    return in_flight_;
  }
  /// True when `core` has a request waiting for a bus grant.
  [[nodiscard]] bool has_queued_from(CoreId core) const noexcept {
    return !per_core_[core].empty();
  }

  /// Public because per_core_ queues are serialized by raw memcpy: the
  /// layout is part of the snapshot format, and the lint's layout probe
  /// must be able to offsetof it (two 8-byte scalars — no padding).
  struct Queued {
    std::uint64_t payload;
    Cycle enqueued;
  };

 private:
  std::uint32_t latency_;  // lint: transient — ctor config
  std::vector<std::deque<Queued>> per_core_;
  std::uint32_t rr_next_ = 0;  ///< round-robin arbitration pointer
  Cycle busy_until_ = 0;       ///< bus occupancy (one transfer at a time)
  std::deque<Pending> in_flight_;
  std::uint64_t transfers_ = 0;
  std::uint64_t queue_wait_cycles_ = 0;
};

}  // namespace mflush
