#include "mem/l2.h"

#include <bit>
#include <stdexcept>

namespace mflush {

L2Cache::L2Cache(std::uint32_t size_bytes, std::uint32_t ways,
                 std::uint32_t line_bytes, std::uint32_t banks,
                 std::uint32_t bank_latency)
    : line_bytes_(line_bytes),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(std::max(1u, line_bytes)))),
      bank_latency_(std::max(1u, bank_latency)) {
  if (banks == 0 || size_bytes % banks != 0)
    throw std::invalid_argument("L2 size must divide evenly into banks");
  slices_.reserve(banks);
  for (std::uint32_t b = 0; b < banks; ++b) {
    // Bank interleaving strips the low line-index bits before set selection
    // inside each slice; the slice itself just sees a smaller cache. Set
    // aliasing from the shared low bits is immaterial to timing behaviour.
    slices_.emplace_back(
        CacheGeometry{size_bytes / banks, ways, line_bytes, 1});
  }
  banks_.resize(banks);
}

void L2Cache::enqueue(Addr addr, std::uint64_t payload, bool is_writeback,
                      Cycle /*now*/) {
  banks_[bank_of(addr)].queue.push_back({addr, payload, is_writeback});
}

void L2Cache::tick(Cycle now, std::vector<L2ServiceResult>& out) {
  for (std::uint32_t b = 0; b < banks_.size(); ++b) {
    Bank& bank = banks_[b];
    if (bank.busy && bank.done_at <= now) {
      // Service completes: probe/update the slice tags.
      SetAssocCache& slice = slices_[b];
      if (bank.current.is_writeback) {
        // Writeback from an L1: install dirty. A dirty L2 victim goes to
        // memory; memory writes are fire-and-forget (no occupancy modelled).
        slice.fill(bank.current.addr, /*dirty=*/true);
        ++writebacks_;
      } else {
        const bool hit = slice.access(bank.current.addr, /*is_write=*/false);
        if (hit)
          ++hits_;
        else
          ++misses_;
        out.push_back({bank.current.payload, hit, b});
      }
      bank.busy = false;
    }
    if (!bank.busy && !bank.queue.empty()) {
      bank.current = bank.queue.front();
      bank.queue.pop_front();
      bank.busy = true;
      bank.done_at = now + bank_latency_;
    }
    if (bank.busy) ++busy_cycles_;
  }
}

EvictInfo L2Cache::fill(Addr addr, bool dirty) {
  return slices_[bank_of(addr)].fill(addr, dirty);
}

void L2Cache::reset_stats() noexcept {
  hits_ = 0;
  misses_ = 0;
  writebacks_ = 0;
  busy_cycles_ = 0;
  for (auto& s : slices_) s.reset_stats();
}

}  // namespace mflush
