#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/archive.h"
#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"
#include "common/wheel.h"
#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/l2.h"
#include "mem/memory.h"
#include "mem/mshr.h"
#include "mem/tlb.h"

namespace mflush {

/// Completion of an asynchronous memory access (load or ifetch).
struct MemCompletion {
  std::uint64_t token = 0;
  ThreadId tid = 0;
  MemKind kind = MemKind::Load;
  Cycle issue_cycle = 0;
  Cycle done_cycle = 0;
  bool l2_accessed = false;  ///< true if the access went past L1
  bool l2_hit = false;       ///< valid when l2_accessed
  std::uint32_t l2_bank = 0; ///< valid when l2_accessed
};

/// A *load* leaving L1 for the shared L2 (the moment the MFLUSH hardware
/// reads the bank's MCReg to predict the access's resolution time).
struct L2PathEvent {
  std::uint64_t token = 0;
  ThreadId tid = 0;
  std::uint32_t bank = 0;
  Cycle cycle = 0;
};

/// Aggregate memory-system statistics (feeds Fig. 4).
struct MemStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t ifetches = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t itlb_misses = 0;
  std::uint64_t l1_writebacks = 0;
  /// Issue→served time of loads that HIT in the shared L2 (Fig. 4 metric),
  /// 5-cycle bins up to 400 cycles.
  Histogram l2_load_hit_time{5.0, 80};
  RunningStat l2_load_miss_time;

  void reset() {
    *this = MemStats{};
  }
};

/// The full memory system: per-core L1I/L1D + TLBs + MSHR, one shared bus,
/// one shared banked L2, one main memory (a MemoryModel behind a seam:
/// fixed-latency FIFO by default, banked DRAM when configured).
///
/// Protocol per cycle (driven by the CMP simulator):
///   hierarchy.tick(now);            // advance queues, produce completions
///   cores consume completions(c) / l2_events(c), then issue new
///   request_load/request_store/request_ifetch calls at cycle `now`.
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const SimConfig& cfg);

  /// Issue a load from `core`/`tid` at `now`; completion arrives via
  /// completions(). Returns the request token.
  std::uint64_t request_load(CoreId core, ThreadId tid, Addr addr, Cycle now);

  /// Commit-time store: fire-and-forget, but generates real traffic.
  void request_store(CoreId core, ThreadId tid, Addr addr, Cycle now);

  /// Instruction fetch of the line containing `pc`. Returns nullopt on an
  /// L1I hit (fetch proceeds immediately); otherwise the token of the
  /// pending fill.
  std::optional<std::uint64_t> request_ifetch(CoreId core, ThreadId tid,
                                              Addr pc, Cycle now);

  void tick(Cycle now);

  /// Completions/events for core `c` (caller drains then clears).
  [[nodiscard]] std::vector<MemCompletion>& completions(CoreId c) {
    return completions_[c];
  }
  [[nodiscard]] std::vector<L2PathEvent>& l2_events(CoreId c) {
    return l2_events_[c];
  }
  /// FL-NS detection moment: loads whose line was just determined to miss
  /// in L2 (memory access still in flight).
  [[nodiscard]] std::vector<L2PathEvent>& l2_miss_events(CoreId c) {
    return l2_miss_events_[c];
  }

  [[nodiscard]] std::uint32_t l2_bank_of(Addr addr) const noexcept {
    return l2_.bank_of(addr);
  }

  [[nodiscard]] const MemStats& stats() const noexcept { return stats_; }
  void reset_stats();

  /// Earliest future cycle at which tick() can change any state or deliver
  /// any completion; kNeverCycle when the whole hierarchy is drained. When
  /// every core is also asleep, the chip may jump straight here.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const;

  /// True when core `c` has undrained completion/event buffers — the
  /// decoupled scheduler's rendezvous signal: a sleeping core whose buffers
  /// fill must be pulled back to the global clock and ticked this cycle.
  [[nodiscard]] bool has_events(CoreId c) const noexcept {
    return !completions_[c].empty() || !l2_events_[c].empty() ||
           !l2_miss_events_[c].empty();
  }

  /// Per-core event horizon: a lower bound on the next cycle at which
  /// tick() could deliver a completion or event to core `c`, from the
  /// core's in-flight transactions (L1 wheel, MSHR retry queue, bus, L2
  /// banks, memory model). Memory completions are queried via
  /// MemoryModel::next_done_if — the earliest DUE matching access, not the
  /// first in flight, because DRAM completion times are not monotone in
  /// issue order. Contention can only push real delivery later, never
  /// earlier. kNeverCycle when the core has nothing in flight.
  /// O(outstanding) scan — idle-time scheduling only, never the tick path.
  [[nodiscard]] Cycle next_event_cycle_for(CoreId c, Cycle now) const;

  /// Snapshot support: serialize/restore all mutable hierarchy state.
  void save_state(ArchiveWriter& ar) const;
  void load_state(ArchiveReader& ar);

  /// Warm-start support: install a line into the L2 tag array directly
  /// (no timing, no traffic). The scaled-down simulation windows are far
  /// shorter than the paper's 120 M cycles, so resident working sets are
  /// pre-installed instead of naturally warmed.
  void prewarm_l2_line(Addr addr) { (void)l2_.fill(addr, false); }

  // Component access (tests and detailed reports).
  [[nodiscard]] const SetAssocCache& l1d(CoreId c) const { return l1d_[c]; }
  [[nodiscard]] const SetAssocCache& l1i(CoreId c) const { return l1i_[c]; }
  [[nodiscard]] const Mshr& mshr(CoreId c) const { return mshr_[c]; }
  [[nodiscard]] const L2Cache& l2() const noexcept { return l2_; }
  [[nodiscard]] const SharedBus& bus() const noexcept { return bus_; }
  [[nodiscard]] const MemoryModel& memory_model() const noexcept {
    return *memory_;
  }

  // The two transaction records below are public (and carry explicit
  // padding) because they are serialized by raw memcpy: their layout is
  // part of the snapshot format, and the lint's layout probe must be able
  // to offsetof them.

  /// Core-side access waiting on the L1 pipeline (and TLB walk).
  struct Req {
    CoreId core = 0;
    ThreadId tid = 0;
    Addr addr = 0;
    MemKind kind = MemKind::Load;
    std::uint8_t _pad[7] = {};  ///< explicit padding: canonical bytes
    std::uint64_t token = 0;
    Cycle issue = 0;
    Cycle ready_at = 0;
    std::uint64_t order = 0;  ///< deterministic same-cycle tie-break
  };

  /// One line-granular transaction on the L2 path.
  struct LineFetch {
    Addr line = 0;
    CoreId core = 0;
    std::uint32_t mshr_slot = 0;
    bool is_writeback = false;
    bool is_ifetch = false;
    bool in_use = false;
    std::uint8_t _pad[5] = {};  ///< explicit tail padding: canonical bytes
  };

 private:
  void process_l1(const Req& r, Cycle now);
  void start_line_fetch(const Req& r, Addr line, Cycle now);
  void complete_line_fetch(std::uint64_t payload, Cycle now, bool l2_hit);
  void push_writeback(CoreId core, Addr line, Cycle now);
  std::uint64_t alloc_fetch_slot();

  SimConfig cfg_;  // lint: transient — ctor config

  std::vector<SetAssocCache> l1i_;
  std::vector<SetAssocCache> l1d_;
  std::vector<Tlb> itlb_;
  std::vector<Tlb> dtlb_;
  std::vector<Mshr> mshr_;
  SharedBus bus_;
  L2Cache l2_;
  std::unique_ptr<MemoryModel> memory_;

  /// L1 pipeline / TLB-walk delay line, bucketed by ready_at. Sized past
  /// l1_latency + tlb_miss_penalty so the far queue stays empty with
  /// paper-default latencies. Strict: every event-skip jump is bounded by
  /// next_event_cycle(), so no entry's release is ever jumped past
  /// (asserted in debug builds).
  WakeupWheel<Req> l1_wheel_{1024, /*strict_release=*/true};
  std::vector<std::deque<Req>> mshr_overflow_;  ///< per core, retried in tick

  std::vector<LineFetch> fetch_pool_;
  std::vector<std::uint64_t> fetch_free_;

  std::vector<std::vector<MemCompletion>> completions_;
  std::vector<std::vector<L2PathEvent>> l2_events_;
  std::vector<std::vector<L2PathEvent>> l2_miss_events_;

  // Scratch buffers reused across ticks; drained within a single tick,
  // so they carry no cross-cycle state.
  std::vector<std::uint64_t> scratch_mem_done_;    // lint: transient — scratch
  std::vector<L2ServiceResult> scratch_l2_done_;   // lint: transient — scratch
  std::vector<std::uint64_t> scratch_bus_done_;    // lint: transient — scratch
  std::vector<Req> scratch_l1_due_;                // lint: transient — scratch

  std::uint64_t next_token_ = 1;
  std::uint64_t next_order_ = 0;
  MemStats stats_;
};

}  // namespace mflush
