#include "mem/hierarchy.h"

#include <algorithm>
#include <cassert>

namespace mflush {

MemoryHierarchy::MemoryHierarchy(const SimConfig& cfg)
    : cfg_(cfg),
      bus_(cfg.num_cores, cfg.mem.bus_latency),
      l2_(cfg.mem.l2_bytes, cfg.mem.l2_ways, cfg.mem.line_bytes,
          cfg.mem.l2_banks, cfg.mem.l2_bank_latency),
      memory_(make_memory_model(cfg.mem)) {
  const std::uint32_t n = cfg.num_cores;
  l1i_.reserve(n);
  l1d_.reserve(n);
  itlb_.reserve(n);
  dtlb_.reserve(n);
  mshr_.reserve(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    l1i_.emplace_back(CacheGeometry{cfg.mem.l1i_bytes, cfg.mem.l1i_ways,
                                    cfg.mem.line_bytes, cfg.mem.l1i_banks});
    l1d_.emplace_back(CacheGeometry{cfg.mem.l1d_bytes, cfg.mem.l1d_ways,
                                    cfg.mem.line_bytes, cfg.mem.l1d_banks});
    itlb_.emplace_back(cfg.mem.itlb_entries, cfg.mem.page_bytes);
    dtlb_.emplace_back(cfg.mem.dtlb_entries, cfg.mem.page_bytes);
    mshr_.emplace_back(cfg.mem.mshr_entries);
  }
  mshr_overflow_.resize(n);
  completions_.resize(n);
  l2_events_.resize(n);
  l2_miss_events_.resize(n);
  // The per-core event buffers are drained (then clear()ed) by the cores
  // every cycle; pre-reserving once removes the growth reallocations from
  // the tick hot path — afterwards push_back never allocates in steady
  // state.
  for (std::uint32_t c = 0; c < n; ++c) {
    completions_[c].reserve(64);
    l2_events_[c].reserve(64);
    l2_miss_events_[c].reserve(64);
  }
  fetch_pool_.reserve(128);
  fetch_free_.reserve(128);
  scratch_mem_done_.reserve(64);
  scratch_l2_done_.reserve(64);
  scratch_bus_done_.reserve(64);
}

std::uint64_t MemoryHierarchy::alloc_fetch_slot() {
  if (!fetch_free_.empty()) {
    const std::uint64_t idx = fetch_free_.back();
    fetch_free_.pop_back();
    return idx;
  }
  fetch_pool_.emplace_back();
  return fetch_pool_.size() - 1;
}

std::uint64_t MemoryHierarchy::request_load(CoreId core, ThreadId tid,
                                            Addr addr, Cycle now) {
  ++stats_.loads;
  Cycle penalty = 0;
  if (!dtlb_[core].access(addr)) {
    ++stats_.dtlb_misses;
    penalty = cfg_.mem.tlb_miss_penalty;
  }
  Req r;
  r.core = core;
  r.tid = tid;
  r.addr = addr;
  r.kind = MemKind::Load;
  r.token = next_token_++;
  r.issue = now;
  r.ready_at = now + cfg_.mem.l1_latency + penalty;
  r.order = next_order_++;
  l1_wheel_.schedule(r.ready_at, now, r);
  return r.token;
}

void MemoryHierarchy::request_store(CoreId core, ThreadId tid, Addr addr,
                                    Cycle now) {
  ++stats_.stores;
  Cycle penalty = 0;
  if (!dtlb_[core].access(addr)) {
    ++stats_.dtlb_misses;
    penalty = cfg_.mem.tlb_miss_penalty;
  }
  Req r;
  r.core = core;
  r.tid = tid;
  r.addr = addr;
  r.kind = MemKind::Store;
  r.token = 0;  // fire-and-forget
  r.issue = now;
  r.ready_at = now + cfg_.mem.l1_latency + penalty;
  r.order = next_order_++;
  l1_wheel_.schedule(r.ready_at, now, r);
}

std::optional<std::uint64_t> MemoryHierarchy::request_ifetch(CoreId core,
                                                             ThreadId tid,
                                                             Addr pc,
                                                             Cycle now) {
  ++stats_.ifetches;
  if (!itlb_[core].access(pc)) {
    // Page-walk first, then the L1I probe happens when the walk finishes.
    ++stats_.itlb_misses;
    Req r;
    r.core = core;
    r.tid = tid;
    r.addr = pc;
    r.kind = MemKind::IFetch;
    r.token = next_token_++;
    r.issue = now;
    r.ready_at = now + cfg_.mem.tlb_miss_penalty;
    r.order = next_order_++;
    l1_wheel_.schedule(r.ready_at, now, r);
    return r.token;
  }
  // The 3-cycle L1I pipeline is folded into the front-end fetch stages, so
  // a hit does not add a bubble.
  if (l1i_[core].access(pc, /*is_write=*/false)) return std::nullopt;
  Req r;
  r.core = core;
  r.tid = tid;
  r.addr = pc;
  r.kind = MemKind::IFetch;
  r.token = next_token_++;
  r.issue = now;
  r.ready_at = now;
  r.order = next_order_++;
  // Miss handled immediately (no extra pipe delay: the probe already
  // happened synchronously).
  start_line_fetch(r, l1i_[core].line_of(pc), now);
  return r.token;
}

void MemoryHierarchy::process_l1(const Req& r, Cycle now) {
  SetAssocCache& cache =
      r.kind == MemKind::IFetch ? l1i_[r.core] : l1d_[r.core];
  const bool hit = cache.access(r.addr, r.kind == MemKind::Store);
  if (hit) {
    if (r.kind != MemKind::Store) {
      completions_[r.core].push_back(MemCompletion{
          r.token, r.tid, r.kind, r.issue, now, false, false, 0});
    }
    return;
  }
  start_line_fetch(r, cache.line_of(r.addr), now);
}

void MemoryHierarchy::start_line_fetch(const Req& r, Addr line, Cycle now) {
  Mshr& mshr = mshr_[r.core];
  MshrWaiter waiter{
      .token = r.token, .tid = r.tid, .issue_cycle = r.issue, .kind = r.kind};

  if (r.kind == MemKind::Load) {
    // The moment the access leaves for the L2: MFLUSH reads MCReg here.
    l2_events_[r.core].push_back(
        L2PathEvent{r.token, r.tid, l2_.bank_of(line), now});
  }

  if (const auto slot = mshr.find(line)) {
    mshr.attach(*slot, waiter);  // secondary miss: coalesce
    if (r.kind == MemKind::Load && mshr.miss_known(*slot)) {
      // The line already missed in L2: a non-speculative detector would
      // flag this load immediately.
      l2_miss_events_[r.core].push_back(
          L2PathEvent{r.token, r.tid, l2_.bank_of(line), now});
    }
    return;
  }
  const auto slot = mshr.allocate(line);
  if (!slot) {
    mshr_overflow_[r.core].push_back(r);  // retried every tick
    return;
  }
  mshr.attach(*slot, waiter);
  const std::uint64_t payload = alloc_fetch_slot();
  LineFetch& f = fetch_pool_[payload];
  f.line = line;
  f.core = r.core;
  f.mshr_slot = *slot;
  f.is_writeback = false;
  f.is_ifetch = r.kind == MemKind::IFetch;
  f.in_use = true;
  bus_.push(r.core, payload, now);
}

void MemoryHierarchy::push_writeback(CoreId core, Addr line, Cycle now) {
  ++stats_.l1_writebacks;
  const std::uint64_t payload = alloc_fetch_slot();
  LineFetch& f = fetch_pool_[payload];
  f.line = line;
  f.core = core;
  f.mshr_slot = 0;
  f.is_writeback = true;
  f.is_ifetch = false;
  f.in_use = true;
  bus_.push(core, payload, now);
}

void MemoryHierarchy::complete_line_fetch(std::uint64_t payload, Cycle now,
                                          bool l2_hit) {
  // By value: push_writeback below can grow fetch_pool_ and invalidate
  // references into it.
  const LineFetch f = fetch_pool_[payload];
  assert(f.in_use);
  if (!f.is_writeback) {
    // Pooled view: valid until the slot's next allocate, which cannot
    // happen before this function returns.
    const auto& waiters = mshr_[f.core].release(f.mshr_slot);
    bool dirty = false;
    for (const auto& w : waiters)
      if (w.kind == MemKind::Store) dirty = true;
    SetAssocCache& cache = f.is_ifetch ? l1i_[f.core] : l1d_[f.core];
    const EvictInfo ev = cache.fill(f.line, dirty);
    if (ev.evicted && ev.victim_dirty)
      push_writeback(f.core, ev.victim_line, now);
    const std::uint32_t bank = l2_.bank_of(f.line);
    for (const auto& w : waiters) {
      if (w.kind != MemKind::Store) {
        completions_[f.core].push_back(MemCompletion{
            w.token, w.tid, w.kind, w.issue_cycle, now, true, l2_hit, bank});
      }
      if (w.kind == MemKind::Load) {
        const auto lat = static_cast<double>(now - w.issue_cycle);
        if (l2_hit)
          stats_.l2_load_hit_time.add(lat);
        else
          stats_.l2_load_miss_time.add(lat);
      }
    }
  }
  fetch_pool_[payload].in_use = false;
  fetch_free_.push_back(payload);
}

void MemoryHierarchy::tick(Cycle now) {
  // Stages run upstream-first so a request can hand off L1 -> bus -> bank
  // within one cycle once its stage latency elapses; the unloaded L2 hit
  // is then exactly l1 + bus + bank = 22 cycles.

  // 1) memory returns -> L2 fills -> complete as misses
  scratch_mem_done_.clear();
  memory_->tick(now, scratch_mem_done_);
  for (const std::uint64_t payload : scratch_mem_done_) {
    LineFetch& f = fetch_pool_[payload];
    const EvictInfo ev = l2_.fill(f.line, /*dirty=*/false);
    if (ev.evicted && ev.victim_dirty)
      memory_->start_write(ev.victim_line, now);
    complete_line_fetch(payload, now, /*l2_hit=*/false);
  }

  // 2) L1 pipeline (loads/stores after their 3-cycle access + TLB walks).
  // The wheel hands back this cycle's bucket; restore the old heap's exact
  // (ready_at, order) processing order over the small due batch.
  scratch_l1_due_.clear();
  l1_wheel_.pop_due(now, scratch_l1_due_);
  if (!scratch_l1_due_.empty()) {
    std::sort(scratch_l1_due_.begin(), scratch_l1_due_.end(),
              [](const Req& a, const Req& b) {
                return a.ready_at != b.ready_at ? a.ready_at < b.ready_at
                                                : a.order < b.order;
              });
    for (const Req& r : scratch_l1_due_) process_l1(r, now);
  }

  // 3) retry accesses that found the MSHR full (slots may have freed above)
  for (CoreId c = 0; c < mshr_overflow_.size(); ++c) {
    auto& q = mshr_overflow_[c];
    while (!q.empty() && !mshr_[c].full()) {
      const Req r = q.front();
      q.pop_front();
      start_line_fetch(r, l1d_[c].line_of(r.addr), now);
    }
  }

  // 4) bus transfers arrive at their banks
  scratch_bus_done_.clear();
  bus_.tick(now, scratch_bus_done_);
  for (const std::uint64_t payload : scratch_bus_done_) {
    const LineFetch& f = fetch_pool_[payload];
    l2_.enqueue(f.line, payload, f.is_writeback, now);
  }

  // 5) L2 bank services complete: hits resolve, misses go to memory
  scratch_l2_done_.clear();
  l2_.tick(now, scratch_l2_done_);
  for (const L2ServiceResult& r : scratch_l2_done_) {
    if (r.hit) {
      complete_line_fetch(r.payload, now, /*l2_hit=*/true);
    } else {
      const LineFetch& f = fetch_pool_[r.payload];
      // FL-NS detection moment: the miss is now known; tell the core's
      // policy about every load currently waiting on this line.
      Mshr& mshr = mshr_[f.core];
      mshr.set_miss_known(f.mshr_slot);
      for (const MshrWaiter& w : mshr.waiters(f.mshr_slot)) {
        if (w.kind == MemKind::Load) {
          l2_miss_events_[f.core].push_back(
              L2PathEvent{w.token, w.tid, r.bank, now});
        }
      }
      memory_->start_read(f.line, r.payload, now);
    }
  }
}

Cycle MemoryHierarchy::next_event_cycle(Cycle now) const {
  // Buffered, not-yet-drained events mean the cores must tick next cycle.
  for (CoreId c = 0; c < completions_.size(); ++c) {
    if (!completions_[c].empty() || !l2_events_[c].empty() ||
        !l2_miss_events_[c].empty())
      return now + 1;
  }
  // A full MSHR retry queue polls every tick.
  for (const auto& q : mshr_overflow_)
    if (!q.empty()) return now + 1;

  Cycle e = memory_->next_event_cycle();
  e = std::min(e, bus_.next_event_cycle(now));
  e = std::min(e, l2_.next_event_cycle(now));
  // now + 1 is the floor; skip the O(span) wheel scan once it is reached.
  if (e > now + 1 && !l1_wheel_.empty())
    e = std::min(e, l1_wheel_.next_due());
  return e;
}

Cycle MemoryHierarchy::next_event_cycle_for(CoreId c, Cycle now) const {
  if (has_events(c)) return now + 1;  // undrained buffers: tick immediately
  if (!mshr_overflow_[c].empty()) return now + 1;  // retried every tick
  // L1 pipeline / TLB walks of this core.
  Cycle e = l1_wheel_.next_due_if([c](const Req& r) { return r.core == c; });
  // A queued bus request can be granted as soon as next cycle; an in-flight
  // transfer still needs its bank service after arrival, so `arrives` is a
  // (loose but sound) lower bound.
  for (const SharedBus::Pending& p : bus_.in_flight())
    if (fetch_pool_[p.payload].core == c) e = std::min(e, p.arrives);
  if (bus_.has_queued_from(c)) e = std::min(e, now + 1);
  // L2 bank service or memory access in flight for this core: the bank/
  // memory event time is known globally, but mapping it per core costs a
  // queue walk; `now + 1` is the sound floor (a busy bank already pins the
  // global clock to per-cycle ticking anyway).
  for (std::uint32_t b = 0; b < l2_.banks(); ++b) {
    if (l2_.bank_serves_core(b, [this, c](std::uint64_t payload) {
          return fetch_pool_[payload].core == c;
        })) {
      e = std::min(e, now + 1);
      break;
    }
  }
  // Earliest due memory completion for this core. next_done_if scans for
  // the earliest MATCHING completion: with the DRAM model, completion
  // times are not monotone in issue order, so "first in flight" would be
  // an unsound (too late) horizon and strand a sleeping core.
  const Cycle mem_e =
      memory_->next_done_if([this, c](std::uint64_t payload) {
        return fetch_pool_[payload].core == c;
      });
  e = std::min(e, mem_e);
  return e > now ? e : now + 1;
}

void MemoryHierarchy::save_state(ArchiveWriter& ar) const {
  for (const SetAssocCache& c : l1i_) c.save(ar);
  for (const SetAssocCache& c : l1d_) c.save(ar);
  for (const Tlb& t : itlb_) t.save(ar);
  for (const Tlb& t : dtlb_) t.save(ar);
  for (const Mshr& m : mshr_) m.save(ar);
  bus_.save(ar);
  l2_.save(ar);
  memory_->save(ar);
  l1_wheel_.save(ar);
  for (const auto& q : mshr_overflow_) ar.put_deque(q);
  ar.put_vec(fetch_pool_);
  ar.put_vec(fetch_free_);
  for (const auto& v : completions_) ar.put_vec(v);
  for (const auto& v : l2_events_) ar.put_vec(v);
  for (const auto& v : l2_miss_events_) ar.put_vec(v);
  ar.put(next_token_);
  ar.put(next_order_);
  ar.put(stats_.loads);
  ar.put(stats_.stores);
  ar.put(stats_.ifetches);
  ar.put(stats_.dtlb_misses);
  ar.put(stats_.itlb_misses);
  ar.put(stats_.l1_writebacks);
  stats_.l2_load_hit_time.save(ar);
  stats_.l2_load_miss_time.save(ar);
}

void MemoryHierarchy::load_state(ArchiveReader& ar) {
  for (SetAssocCache& c : l1i_) c.load(ar);
  for (SetAssocCache& c : l1d_) c.load(ar);
  for (Tlb& t : itlb_) t.load(ar);
  for (Tlb& t : dtlb_) t.load(ar);
  for (Mshr& m : mshr_) m.load(ar);
  bus_.load(ar);
  l2_.load(ar);
  memory_->load(ar);
  l1_wheel_.load(ar);
  for (auto& q : mshr_overflow_) ar.get_deque(q);
  ar.get_vec(fetch_pool_);
  ar.get_vec(fetch_free_);
  for (auto& v : completions_) ar.get_vec(v);
  for (auto& v : l2_events_) ar.get_vec(v);
  for (auto& v : l2_miss_events_) ar.get_vec(v);
  next_token_ = ar.get<std::uint64_t>();
  next_order_ = ar.get<std::uint64_t>();
  stats_.loads = ar.get<std::uint64_t>();
  stats_.stores = ar.get<std::uint64_t>();
  stats_.ifetches = ar.get<std::uint64_t>();
  stats_.dtlb_misses = ar.get<std::uint64_t>();
  stats_.itlb_misses = ar.get<std::uint64_t>();
  stats_.l1_writebacks = ar.get<std::uint64_t>();
  stats_.l2_load_hit_time.load(ar);
  stats_.l2_load_miss_time.load(ar);
}

void MemoryHierarchy::reset_stats() {
  stats_.reset();
  for (auto& c : l1i_) c.reset_stats();
  for (auto& c : l1d_) c.reset_stats();
  for (auto& t : itlb_) t.reset_stats();
  for (auto& t : dtlb_) t.reset_stats();
  l2_.reset_stats();
  bus_.reset_stats();
  memory_->reset_stats();
}

}  // namespace mflush
