#include "mem/memory.h"

#include "mem/dram.h"

namespace mflush {

std::unique_ptr<MemoryModel> make_memory_model(const MemConfig& cfg) {
  switch (cfg.memory_model) {
    case MemModelKind::BankedDram:
      return std::make_unique<BankedDramMemory>(cfg);
    case MemModelKind::Fixed:
      break;
  }
  return std::make_unique<FixedLatencyMemory>(cfg.memory_latency);
}

}  // namespace mflush
