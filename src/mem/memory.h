#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/archive.h"
#include "common/config.h"
#include "common/types.h"

namespace mflush {

/// Stat counters every memory model keeps. One audited path for the
/// warm/measure boundary: reset() zeroes counters and ONLY counters —
/// in-flight accesses are simulation state, never stats, so a reset while
/// reads are outstanding must not drop them (tested in
/// test_mem_components). save/load serialize every field; the row/far
/// counters stay zero under the fixed-latency model.
struct MemModelStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;       ///< open-row accesses (DRAM)
  std::uint64_t row_misses = 0;     ///< accesses to an idle bank (DRAM)
  std::uint64_t row_conflicts = 0;  ///< precharge-first accesses (DRAM)
  std::uint64_t far_accesses = 0;   ///< accesses in the far latency class
  std::uint64_t bank_busy_cycles = 0;  ///< summed per-access bank occupancy
  std::uint64_t chan_busy_cycles = 0;  ///< summed channel-gap occupancy

  void reset() noexcept { *this = MemModelStats{}; }

  void save(ArchiveWriter& ar) const {
    ar.put(reads);
    ar.put(writes);
    ar.put(row_hits);
    ar.put(row_misses);
    ar.put(row_conflicts);
    ar.put(far_accesses);
    ar.put(bank_busy_cycles);
    ar.put(chan_busy_cycles);
  }
  void load(ArchiveReader& ar) {
    reads = ar.get<std::uint64_t>();
    writes = ar.get<std::uint64_t>();
    row_hits = ar.get<std::uint64_t>();
    row_misses = ar.get<std::uint64_t>();
    row_conflicts = ar.get<std::uint64_t>();
    far_accesses = ar.get<std::uint64_t>();
    bank_busy_cycles = ar.get<std::uint64_t>();
    chan_busy_cycles = ar.get<std::uint64_t>();
  }
};

/// Main-memory timing model seam (selected by MemConfig::memory_model).
///
/// The hierarchy hands every L2 miss to start_read and every dirty L2
/// victim to start_write with the line address; read payloads pop out of
/// tick() at model-defined cycles. Contract:
///  * completion cycles need NOT be monotone in issue order — the banked
///    DRAM model reorders freely; horizon queries go through
///    next_done_if (earliest-due-matching), never "first in flight";
///  * next_event_cycle() is exact (the kernel jumps straight to it);
///  * reset_stats() zeroes stat counters through MemModelStats::reset()
///    and must not touch in-flight state;
///  * save/load serialize all mutable state (in-flight + counters) —
///    part of the snapshot stream, versioned by snapshot::kFormatVersion.
class MemoryModel {
 public:
  virtual ~MemoryModel() = default;

  /// Start a read of `line`; `payload` pops out of tick() when served.
  virtual void start_read(Addr line, std::uint64_t payload, Cycle now) = 0;

  /// Write-back of a dirty L2 victim: fire-and-forget (no completion),
  /// but may occupy model resources and delay later reads.
  virtual void start_write(Addr line, Cycle now) = 0;

  /// Append every read payload served at or before `now` to `done`.
  virtual void tick(Cycle now, std::vector<std::uint64_t>& done) = 0;

  /// Next cycle at which tick() will deliver anything; kNeverCycle when
  /// nothing is in flight. Feeds the event kernel's idle skip.
  [[nodiscard]] virtual Cycle next_event_cycle() const = 0;

  /// Earliest delivery among in-flight reads whose payload matches `pred`;
  /// kNeverCycle when none. O(outstanding) scan — idle-time per-core
  /// horizon queries only, never the per-cycle path (hence the type-erased
  /// predicate: virtual dispatch forbids a template here, and the scan is
  /// off the hot path by contract).
  [[nodiscard]] virtual Cycle next_done_if(
      const std::function<bool(std::uint64_t)>& pred) const = 0;

  [[nodiscard]] virtual std::size_t outstanding() const = 0;
  [[nodiscard]] virtual const MemModelStats& stats() const = 0;

  /// Zero the stat counters (start of a measured interval). In-flight
  /// accesses are untouched — see MemModelStats.
  virtual void reset_stats() = 0;

  virtual void save(ArchiveWriter& ar) const = 0;
  virtual void load(ArchiveReader& ar) = 0;
};

/// Fixed-latency fully-pipelined main memory (Fig. 1) — the default model,
/// bit-identical to the pre-seam simulator.
///
/// The fixed latency makes completion times monotone in issue order, so
/// in-flight reads are a plain FIFO: start_read appends, tick pops the
/// front while due — no priority queue, no per-operation log factor.
class FixedLatencyMemory final : public MemoryModel {
 public:
  explicit FixedLatencyMemory(std::uint32_t latency) : latency_(latency) {}

  void start_read(Addr /*line*/, std::uint64_t payload, Cycle now) override {
    in_flight_.push_back(Pending{now + latency_, payload});
    ++stats_.reads;
  }

  void start_write(Addr /*line*/, Cycle /*now*/) override { ++stats_.writes; }

  void tick(Cycle now, std::vector<std::uint64_t>& done) override {
    while (!in_flight_.empty() && in_flight_.front().done_at <= now) {
      done.push_back(in_flight_.front().payload);
      in_flight_.pop_front();
    }
  }

  [[nodiscard]] Cycle next_event_cycle() const override {
    return in_flight_.empty() ? kNeverCycle : in_flight_.front().done_at;
  }

  /// The FIFO is done_at-monotone, so the first match IS the earliest.
  [[nodiscard]] Cycle next_done_if(
      const std::function<bool(std::uint64_t)>& pred) const override {
    for (const Pending& p : in_flight_)
      if (pred(p.payload)) return p.done_at;
    return kNeverCycle;
  }

  [[nodiscard]] std::size_t outstanding() const override {
    return in_flight_.size();
  }
  [[nodiscard]] const MemModelStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }

  void save(ArchiveWriter& ar) const override {
    ar.put_deque(in_flight_);
    stats_.save(ar);
  }
  void load(ArchiveReader& ar) override {
    ar.get_deque(in_flight_);
    stats_.load(ar);
  }

  /// Public because in_flight_ is serialized by raw memcpy: the layout is
  /// part of the snapshot format, and the lint's layout probe must be able
  /// to offsetof it (two 8-byte scalars — no padding).
  struct Pending {
    Cycle done_at;
    std::uint64_t payload;
  };

 private:
  std::uint32_t latency_;  // lint: transient — ctor config
  std::deque<Pending> in_flight_;
  MemModelStats stats_;
};

/// Build the model selected by cfg.memory_model (defined in memory.cpp so
/// this header does not pull in the DRAM model).
[[nodiscard]] std::unique_ptr<MemoryModel> make_memory_model(
    const MemConfig& cfg);

}  // namespace mflush
