#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.h"

namespace mflush {

/// Main memory: fixed 250-cycle latency, fully pipelined (Fig. 1).
class MainMemory {
 public:
  explicit MainMemory(std::uint32_t latency) : latency_(latency) {}

  /// Start a read; the payload pops out of `tick` after `latency` cycles.
  void start_read(std::uint64_t payload, Cycle now) {
    in_flight_.push(Pending{now + latency_, seq_++, payload});
    ++reads_;
  }

  /// Writes are fire-and-forget (dirty L2 victims).
  void start_write() noexcept { ++writes_; }

  void tick(Cycle now, std::vector<std::uint64_t>& done) {
    while (!in_flight_.empty() && in_flight_.top().done_at <= now) {
      done.push_back(in_flight_.top().payload);
      in_flight_.pop();
    }
  }

  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return in_flight_.size();
  }
  void reset_stats() noexcept {
    reads_ = 0;
    writes_ = 0;
  }

 private:
  struct Pending {
    Cycle done_at;
    std::uint64_t order;  ///< FIFO tie-break for determinism
    std::uint64_t payload;
    bool operator>(const Pending& o) const noexcept {
      return done_at != o.done_at ? done_at > o.done_at : order > o.order;
    }
  };

  std::uint32_t latency_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>>
      in_flight_;
  std::uint64_t seq_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace mflush
