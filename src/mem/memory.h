#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/archive.h"
#include "common/types.h"

namespace mflush {

/// Main memory: fixed 250-cycle latency, fully pipelined (Fig. 1).
///
/// The fixed latency makes completion times monotone in issue order, so
/// in-flight reads are a plain FIFO: start_read appends, tick pops the
/// front while due — no priority queue, no per-operation log factor.
class MainMemory {
 public:
  explicit MainMemory(std::uint32_t latency) : latency_(latency) {}

  /// Start a read; the payload pops out of `tick` after `latency` cycles.
  void start_read(std::uint64_t payload, Cycle now) {
    in_flight_.push_back(Pending{now + latency_, payload});
    ++reads_;
  }

  /// Writes are fire-and-forget (dirty L2 victims).
  void start_write() noexcept { ++writes_; }

  void tick(Cycle now, std::vector<std::uint64_t>& done) {
    while (!in_flight_.empty() && in_flight_.front().done_at <= now) {
      done.push_back(in_flight_.front().payload);
      in_flight_.pop_front();
    }
  }

  /// Next cycle at which tick() will deliver anything; kNeverCycle when
  /// nothing is in flight. Feeds the event kernel's idle skip.
  [[nodiscard]] Cycle next_event_cycle() const noexcept {
    return in_flight_.empty() ? kNeverCycle : in_flight_.front().done_at;
  }

  /// Next delivery among in-flight reads whose payload matches `pred`;
  /// kNeverCycle when none. The FIFO is done_at-monotone, so the first
  /// match is the earliest (idle-time per-core horizon scans).
  template <typename Pred>
  [[nodiscard]] Cycle next_event_cycle_if(Pred&& pred) const {
    for (const Pending& p : in_flight_)
      if (pred(p.payload)) return p.done_at;
    return kNeverCycle;
  }

  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return in_flight_.size();
  }
  void reset_stats() noexcept {
    reads_ = 0;
    writes_ = 0;
  }

  void save(ArchiveWriter& ar) const {
    ar.put_deque(in_flight_);
    ar.put(reads_);
    ar.put(writes_);
  }
  void load(ArchiveReader& ar) {
    ar.get_deque(in_flight_);
    reads_ = ar.get<std::uint64_t>();
    writes_ = ar.get<std::uint64_t>();
  }

  /// Public because in_flight_ is serialized by raw memcpy: the layout is
  /// part of the snapshot format, and the lint's layout probe must be able
  /// to offsetof it (two 8-byte scalars — no padding).
  struct Pending {
    Cycle done_at;
    std::uint64_t payload;
  };

 private:
  std::uint32_t latency_;  // lint: transient — ctor config
  std::deque<Pending> in_flight_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace mflush
