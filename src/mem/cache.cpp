#include "mem/cache.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace mflush {

SetAssocCache::SetAssocCache(CacheGeometry g) : geom_(g), sets_(g.num_sets()) {
  if (g.size_bytes == 0 || g.ways == 0 || g.line_bytes == 0)
    throw std::invalid_argument("cache geometry must be non-zero");
  if (!std::has_single_bit(g.line_bytes) || !std::has_single_bit(g.banks))
    throw std::invalid_argument("line size and banks must be powers of two");
  // Non-power-of-two set counts (e.g. the paper's 4 MB / 12-way L2) use
  // modulo indexing; a fractional trailing set is dropped.
  if (sets_ == 0)
    throw std::invalid_argument("cache smaller than one set");
  lines_.resize(static_cast<std::size_t>(sets_) * g.ways);
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(g.line_bytes));
  pow2_sets_ = std::has_single_bit(sets_);
  set_mask_ = pow2_sets_ ? sets_ - 1 : 0;
}

bool SetAssocCache::access(Addr addr, bool is_write) {
  const Addr line = line_of(addr);
  const std::size_t base = set_index(addr) * geom_.ways;
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    Line& l = lines_[base + w];
    if (l.valid && l.tag == line) {
      l.lru = ++tick_;
      if (is_write) l.dirty = true;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  return false;
}

bool SetAssocCache::probe(Addr addr) const {
  const Addr line = line_of(addr);
  const std::size_t base = set_index(addr) * geom_.ways;
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    const Line& l = lines_[base + w];
    if (l.valid && l.tag == line) return true;
  }
  return false;
}

EvictInfo SetAssocCache::fill(Addr addr, bool dirty) {
  const Addr line = line_of(addr);
  const std::size_t base = set_index(addr) * geom_.ways;
  Line* victim = &lines_[base];
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    Line& l = lines_[base + w];
    if (l.valid && l.tag == line) {
      // Already present (e.g. racing fill): refresh.
      l.lru = ++tick_;
      l.dirty = l.dirty || dirty;
      return {};
    }
    if (!l.valid) {
      victim = &l;
    } else if (victim->valid && l.lru < victim->lru) {
      victim = &l;
    }
  }
  EvictInfo info;
  if (victim->valid) {
    info.evicted = true;
    info.victim_dirty = victim->dirty;
    info.victim_line = victim->tag;
  }
  victim->valid = true;
  victim->tag = line;
  victim->dirty = dirty;
  victim->lru = ++tick_;
  return info;
}

}  // namespace mflush
