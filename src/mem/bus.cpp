#include "mem/bus.h"

namespace mflush {

SharedBus::SharedBus(std::uint32_t num_cores, std::uint32_t latency)
    : latency_(std::max(1u, latency)), per_core_(std::max(1u, num_cores)) {}

void SharedBus::push(CoreId core, std::uint64_t payload, Cycle now) {
  per_core_[core].push_back({payload, now});
}

void SharedBus::tick(Cycle now, std::vector<std::uint64_t>& delivered) {
  // Deliver transfers that have completed.
  while (!in_flight_.empty() && in_flight_.front().arrives <= now) {
    delivered.push_back(in_flight_.front().payload);
    in_flight_.pop_front();
  }
  // Grant a new transfer once the bus is free, round-robin over cores.
  if (now < busy_until_) return;
  const auto n = static_cast<std::uint32_t>(per_core_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t c = (rr_next_ + i) % n;
    auto& q = per_core_[c];
    if (!q.empty()) {
      const Queued item = q.front();
      q.pop_front();
      in_flight_.push_back({item.payload, now + latency_});
      busy_until_ = now + latency_;
      ++transfers_;
      if (now > item.enqueued) queue_wait_cycles_ += now - item.enqueued;
      rr_next_ = (c + 1) % n;
      break;
    }
  }
}

std::size_t SharedBus::queued() const noexcept {
  std::size_t total = in_flight_.size();
  for (const auto& q : per_core_) total += q.size();
  return total;
}

}  // namespace mflush
