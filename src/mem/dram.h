#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/wheel.h"
#include "mem/memory.h"

namespace mflush {

/// Banked DRAM main memory: channels x banks with per-bank row-buffer
/// state and a channel-level ready-time arbiter, plus an optional far
/// latency class by address range (DramConfig, common/config.h).
///
/// Timing is an eager reservation model, fully determined at issue time:
///
///   start = max(now, bank.busy_until, channel.busy_until)
///   lat   = t_row_hit       if the bank's open row matches
///         | t_row_miss      if the bank has no open row
///         | t_row_conflict  if a different row is open (precharge first)
///   lat  += far_extra       if the line falls in the far range
///   done  = start + lat
///   bank.busy_until    = done          (banks are single-ported)
///   channel.busy_until = start + channel_gap
///
/// Both reservations are monotone, so accesses to one bank are served in
/// arrival order (the per-bank in-order queue is represented by the bank's
/// ready time: arrival order IS service order) and accesses sharing a
/// channel serialize on the command/data bus by channel_gap — while
/// completion times across banks are NOT monotone in issue order, which is
/// the whole point: a row hit issued after a row conflict returns first.
/// Completions are scheduled on a WakeupWheel; next_event_cycle is the
/// wheel's cached next_due, and per-core horizon queries take the
/// earliest due matching entry (never "first in flight").
///
/// Writes (dirty L2 victims) reserve the bank/channel and move the row
/// buffer like reads but schedule no completion.
class BankedDramMemory final : public MemoryModel {
 public:
  explicit BankedDramMemory(const MemConfig& cfg)
      : dram_(cfg.dram),
        line_shift_(static_cast<std::uint32_t>(
            std::countr_zero(std::uint64_t{cfg.line_bytes}))),
        chan_bits_(static_cast<std::uint32_t>(
            std::countr_zero(std::uint64_t{cfg.dram.channels}))),
        bank_bits_(static_cast<std::uint32_t>(
            std::countr_zero(std::uint64_t{cfg.dram.banks_per_channel}))),
        row_bits_(static_cast<std::uint32_t>(std::countr_zero(
            std::uint64_t{cfg.dram.row_bytes / cfg.line_bytes}))),
        banks_(std::size_t{cfg.dram.channels} * cfg.dram.banks_per_channel),
        channels_(cfg.dram.channels, Cycle{0}) {}

  void start_read(Addr line, std::uint64_t payload, Cycle now) override {
    ++stats_.reads;
    wheel_.schedule(reserve(line, now), now, payload);
  }

  void start_write(Addr line, Cycle now) override {
    ++stats_.writes;
    (void)reserve(line, now);
  }

  void tick(Cycle now, std::vector<std::uint64_t>& done) override {
    wheel_.pop_due(now, done);
  }

  [[nodiscard]] Cycle next_event_cycle() const override {
    return wheel_.next_due();
  }

  [[nodiscard]] Cycle next_done_if(
      const std::function<bool(std::uint64_t)>& pred) const override {
    return wheel_.next_due_if(pred);
  }

  [[nodiscard]] std::size_t outstanding() const override {
    return wheel_.size();
  }
  [[nodiscard]] const MemModelStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }

  void save(ArchiveWriter& ar) const override {
    // Bank records field-wise (canonical bytes without padding members);
    // geometry is ctor config, so counts are implied and checked on load
    // via the snapshot's config echo.
    for (const Bank& b : banks_) {
      ar.put(b.busy_until);
      ar.put(b.open_row);
      ar.put(b.row_valid);
    }
    ar.put_vec(channels_);
    wheel_.save(ar);
    stats_.save(ar);
  }
  void load(ArchiveReader& ar) override {
    for (Bank& b : banks_) {
      b.busy_until = ar.get<Cycle>();
      b.open_row = ar.get<std::uint64_t>();
      b.row_valid = ar.get<bool>();
    }
    ar.get_vec(channels_);
    wheel_.load(ar);
    stats_.load(ar);
  }

  /// Per-bank row-buffer + reservation state (serialized field-wise).
  struct Bank {
    Cycle busy_until = 0;        ///< current service window ends here
    std::uint64_t open_row = 0;  ///< valid when row_valid
    bool row_valid = false;      ///< false until the bank's first access
  };

  // Geometry/state accessors (tests).
  [[nodiscard]] std::uint32_t channel_of(Addr line) const noexcept {
    const std::uint64_t block = line >> line_shift_;
    return static_cast<std::uint32_t>(block & (channels_.size() - 1));
  }
  [[nodiscard]] std::uint32_t bank_of(Addr line) const noexcept {
    const std::uint64_t block = line >> line_shift_;
    return static_cast<std::uint32_t>((block >> chan_bits_) &
                                      (dram_.banks_per_channel - 1));
  }
  [[nodiscard]] std::uint64_t row_of(Addr line) const noexcept {
    const std::uint64_t block = line >> line_shift_;
    return block >> (chan_bits_ + bank_bits_ + row_bits_);
  }
  [[nodiscard]] const Bank& bank_state(std::uint32_t channel,
                                       std::uint32_t bank) const {
    return banks_[std::size_t{channel} * dram_.banks_per_channel + bank];
  }

 private:
  /// Classify against the bank's row buffer, reserve the bank + channel,
  /// and return the completion cycle. The single timing path shared by
  /// reads and writes.
  Cycle reserve(Addr line, Cycle now) {
    const std::uint32_t ch = channel_of(line);
    Bank& bank =
        banks_[std::size_t{ch} * dram_.banks_per_channel + bank_of(line)];
    const std::uint64_t row = row_of(line);

    Cycle start = now;
    if (bank.busy_until > start) start = bank.busy_until;
    if (channels_[ch] > start) start = channels_[ch];

    std::uint64_t lat;
    if (!bank.row_valid) {
      lat = dram_.t_row_miss;
      ++stats_.row_misses;
    } else if (bank.open_row == row) {
      lat = dram_.t_row_hit;
      ++stats_.row_hits;
    } else {
      lat = dram_.t_row_conflict;
      ++stats_.row_conflicts;
    }
    if (dram_.far_bytes != 0 && line >= dram_.far_base &&
        line - dram_.far_base < dram_.far_bytes) {
      lat += dram_.far_extra;
      ++stats_.far_accesses;
    }

    bank.row_valid = true;
    bank.open_row = row;
    bank.busy_until = start + lat;
    channels_[ch] = start + dram_.channel_gap;
    stats_.bank_busy_cycles += lat;
    stats_.chan_busy_cycles += dram_.channel_gap;
    return start + lat;
  }

  DramConfig dram_;           // lint: transient — ctor config
  std::uint32_t line_shift_;  // lint: transient — ctor geometry
  std::uint32_t chan_bits_;   // lint: transient — ctor geometry
  std::uint32_t bank_bits_;   // lint: transient — ctor geometry
  std::uint32_t row_bits_;    // lint: transient — ctor geometry

  std::vector<Bank> banks_;      ///< [channel * banks_per_channel + bank]
  std::vector<Cycle> channels_;  ///< per-channel busy_until
  /// Scheduled read completions (payloads). Span covers the largest
  /// unqueued latency (t_row_conflict + far_extra with default knobs);
  /// deeply queued completions overflow to the wheel's far queue. Strict:
  /// the event kernel bounds every jump by next_event_cycle().
  WakeupWheel<std::uint64_t> wheel_{2048, /*strict_release=*/true};
  MemModelStats stats_;
};

}  // namespace mflush
