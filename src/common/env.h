#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

/// Environment-variable parsing shared by every MFLUSH_* knob.
///
/// One policy for the whole tree: an *unset* variable means "use the
/// built-in default", but a *malformed* value (empty, non-numeric, trailing
/// junk, or below the minimum) is a hard error naming the variable — a typo
/// in MFLUSH_BENCH_CYCLES must never silently shorten a campaign.
namespace mflush::env {

/// Parse `var` as an unsigned integer in [min, max]. Returns `fallback`
/// when the variable is unset; throws std::runtime_error on any malformed
/// or out-of-range value (from_chars overflow included — a value the
/// caller would truncate is a typo, not a request).
[[nodiscard]] inline std::uint64_t u64_or(
    const char* var, std::uint64_t fallback, std::uint64_t min = 1,
    std::uint64_t max = ~std::uint64_t{0}) {
  const char* raw = std::getenv(var);
  if (raw == nullptr) return fallback;
  const std::string_view s(raw);
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size() || v < min ||
      v > max) {
    throw std::runtime_error(std::string(var) +
                             ": expected an integer in [" +
                             std::to_string(min) + ", " +
                             std::to_string(max) + "], got '" +
                             std::string(s) + "'");
  }
  return v;
}

/// Parse `var` as a boolean flag. Returns `fallback` when the variable is
/// unset; accepts exactly "0"/"false" and "1"/"true" (throws on anything
/// else — "MFLUSH_NO_EVENT_SKIP=yes" silently meaning *unset* is precisely
/// the failure mode this header exists to kill).
[[nodiscard]] inline bool flag_or(const char* var, bool fallback) {
  const char* raw = std::getenv(var);
  if (raw == nullptr) return fallback;
  const std::string_view s(raw);
  if (s == "1" || s == "true") return true;
  if (s == "0" || s == "false") return false;
  throw std::runtime_error(std::string(var) +
                           ": expected 0/1/true/false, got '" +
                           std::string(s) + "'");
}

/// Read `var` as a string. Returns `fallback` when the variable is unset.
/// Strings have no malformed form; any content validation (paths, host
/// lists) stays at the call site — the point of routing through here is
/// that *every* env read is findable and lint-enforced.
[[nodiscard]] inline std::string str_or(const char* var,
                                        const std::string& fallback = {}) {
  const char* raw = std::getenv(var);
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace mflush::env
