#include "common/config.h"

#include <bit>

namespace mflush {
namespace {

[[nodiscard]] bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && std::has_single_bit(v);
}

}  // namespace

SimConfig SimConfig::paper_default(std::uint32_t num_cores,
                                   std::uint64_t seed) {
  SimConfig cfg;
  cfg.num_cores = num_cores;
  cfg.seed = seed;
  return cfg;
}

std::string SimConfig::validate() const {
  if (num_cores == 0) return "num_cores must be >= 1";
  if (core.threads_per_core == 0) return "threads_per_core must be >= 1";
  if (core.fetch_width == 0) return "fetch_width must be >= 1";
  if (core.fetch_threads == 0 || core.fetch_threads > core.threads_per_core)
    return "fetch_threads must be in [1, threads_per_core]";
  if (core.rob_entries == 0) return "rob_entries must be >= 1";
  if (core.int_phys_regs < kNumLogicalRegs / 2 * core.threads_per_core)
    return "int_phys_regs too small to map architectural state";
  if (core.fp_phys_regs < kNumLogicalRegs / 2 * core.threads_per_core)
    return "fp_phys_regs too small to map architectural state";
  if (!is_pow2(mem.line_bytes)) return "line_bytes must be a power of two";
  if (!is_pow2(mem.page_bytes)) return "page_bytes must be a power of two";
  if (!is_pow2(mem.l1i_banks) || !is_pow2(mem.l1d_banks) ||
      !is_pow2(mem.l2_banks))
    return "bank counts must be powers of two";
  if (mem.l1i_bytes < mem.line_bytes * mem.l1i_ways)
    return "l1i smaller than one set";
  if (mem.l1d_bytes < mem.line_bytes * mem.l1d_ways)
    return "l1d smaller than one set";
  if (mem.l2_bytes / mem.l2_banks < mem.line_bytes * mem.l2_ways)
    return "l2 bank smaller than one set";
  if (mem.mshr_entries == 0) return "mshr_entries must be >= 1";
  if (mem.memory_model != MemModelKind::Fixed &&
      mem.memory_model != MemModelKind::BankedDram)
    return "memory_model must be fixed or dram";
  if (mem.memory_model == MemModelKind::Fixed && mem.memory_latency == 0)
    return "memory_latency must be >= 1";
  if (mem.memory_model == MemModelKind::BankedDram) {
    const DramConfig& d = mem.dram;
    if (!is_pow2(d.channels) || !is_pow2(d.banks_per_channel))
      return "dram channel/bank counts must be powers of two";
    if (!is_pow2(d.row_bytes) || d.row_bytes < mem.line_bytes)
      return "dram row_bytes must be a power of two >= line_bytes";
    if (d.t_row_hit == 0 || d.t_row_miss == 0 || d.t_row_conflict == 0)
      return "dram latencies must be >= 1";
    if (d.t_row_hit > d.t_row_miss || d.t_row_miss > d.t_row_conflict)
      return "dram latencies must satisfy t_row_hit <= t_row_miss <= "
             "t_row_conflict";
    if (d.channel_gap == 0) return "dram channel_gap must be >= 1";
    if (d.far_bytes != 0 && d.far_extra == 0)
      return "dram far_extra must be >= 1 when a far range is set";
  }
  return {};
}

}  // namespace mflush
