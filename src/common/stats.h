#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/archive.h"

/// Lightweight statistics containers used by every subsystem.
namespace mflush {

/// Streaming mean/variance/min/max (Welford).
class RunningStat {
 public:
  /// Hot path (called per completed load): defined inline on purpose.
  void add(double x) noexcept {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void reset() noexcept { *this = RunningStat{}; }

  // Field-wise in declaration order: all members are 8-byte scalars, so
  // the stream bytes are identical to the former whole-object memcpy —
  // without exposing the private layout to raw put()/get().
  void save(ArchiveWriter& ar) const {
    ar.put(n_);
    ar.put(mean_);
    ar.put(m2_);
    ar.put(sum_);
    ar.put(min_);
    ar.put(max_);
  }
  void load(ArchiveReader& ar) {
    n_ = ar.get<std::uint64_t>();
    mean_ = ar.get<double>();
    m2_ = ar.get<double>();
    sum_ = ar.get<double>();
    min_ = ar.get<double>();
    max_ = ar.get<double>();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bin histogram over [0, bin_width * num_bins); values beyond
/// the last bin land in the overflow bucket. Used for the Fig. 4 L2 hit-time
/// distribution.
class Histogram {
 public:
  Histogram(double bin_width, std::size_t num_bins);

  /// Hot path (called per L2 load hit): defined inline on purpose. The
  /// exact division is kept (a reciprocal multiply can shift bin-boundary
  /// values into the neighbouring bin).
  void add(double x) noexcept {
    ++total_;
    sum_ += x;
    if (x < 0.0) x = 0.0;
    const auto idx = static_cast<std::size_t>(x / bin_width_);
    if (idx >= bins_.size()) {
      ++overflow_;
    } else {
      ++bins_[idx];
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }
  [[nodiscard]] std::size_t num_bins() const noexcept { return bins_.size(); }
  [[nodiscard]] double bin_width() const noexcept { return bin_width_; }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
    return bins_.at(i);
  }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

  /// Fraction of samples in [lo, hi) (clipped to histogram resolution).
  [[nodiscard]] double fraction_between(double lo, double hi) const noexcept;

  /// Approximate p-quantile (q in [0,1]) from bin midpoints.
  [[nodiscard]] double quantile(double q) const noexcept;

  void reset() noexcept;

  /// Merge another histogram with identical geometry (asserts on mismatch).
  void merge(const Histogram& other);

  bool operator==(const Histogram&) const = default;

  void save(ArchiveWriter& ar) const {
    ar.put_vec(bins_);
    ar.put(overflow_);
    ar.put(total_);
    ar.put(sum_);
  }
  void load(ArchiveReader& ar) {
    ar.get_vec(bins_);
    overflow_ = ar.get<std::uint64_t>();
    total_ = ar.get<std::uint64_t>();
    sum_ = ar.get<double>();
  }

 private:
  double bin_width_;  // lint: transient — ctor config
  std::vector<std::uint64_t> bins_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Ratio helper that tolerates zero denominators.
[[nodiscard]] double safe_ratio(double num, double den) noexcept;

/// Geometric mean of a vector of positive values (0 if empty).
[[nodiscard]] double geo_mean(const std::vector<double>& xs) noexcept;

/// Arithmetic mean (0 if empty).
[[nodiscard]] double arith_mean(const std::vector<double>& xs) noexcept;

}  // namespace mflush
