#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

/// Minimal POSIX stream-socket helpers for the mflushd wire layer — the
/// socket sibling of fsio. Two address forms, one grammar everywhere
/// (--serve, --connect):
///
///   unix:PATH   Unix-domain stream socket at PATH (a bare address
///               containing '/' is also taken as a path)
///   HOST:PORT   IPv4 TCP; HOST may be empty or '*' for INADDR_ANY when
///               listening, and a dotted-quad (or 'localhost') otherwise
///
/// All functions throw std::runtime_error naming the address on failure.
/// Writes use MSG_NOSIGNAL so a vanished peer surfaces as an error, never
/// as SIGPIPE killing the daemon.
namespace mflush::sockio {

/// Whether `address` names a Unix-domain socket under the grammar above.
[[nodiscard]] bool is_unix_address(const std::string& address);

/// The filesystem path of a Unix-domain address ("" for TCP addresses).
[[nodiscard]] std::string unix_path_of(const std::string& address);

/// Bind + listen on `address` and return the listening fd. A stale
/// Unix-domain socket file (a SIGKILLed previous daemon) is unlinked
/// before binding — restart must never fail on the corpse's address.
[[nodiscard]] int listen_on(const std::string& address, int backlog = 16);

/// Accept one connection; blocks. Returns -1 once the listening fd has
/// been shut down or closed (the serve loop's stop signal) — EINTR is
/// retried, everything else reads as "stop accepting".
[[nodiscard]] int accept_on(int listen_fd);

/// Connect to `address` and return the fd.
[[nodiscard]] int connect_to(const std::string& address);

/// Write every byte or throw (EINTR retried, SIGPIPE suppressed).
void write_all(int fd, std::span<const std::uint8_t> bytes);

/// Append up to one read()'s worth of bytes to `buffer`. Returns the
/// number appended; 0 means orderly EOF (a connection reset also reads as
/// EOF — the peer is gone either way). Throws on other errors.
std::size_t read_some(int fd, std::vector<std::uint8_t>& buffer);

/// shutdown(SHUT_RDWR): unblocks any thread inside accept/read on `fd`.
void shutdown_fd(int fd) noexcept;

void close_fd(int fd) noexcept;

}  // namespace mflush::sockio
