#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mflush {

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double bin_width, std::size_t num_bins)
    : bin_width_(bin_width), bins_(num_bins, 0) {
  assert(bin_width > 0.0 && num_bins > 0);
}

double Histogram::fraction_between(double lo, double hi) const noexcept {
  if (total_ == 0 || hi <= lo) return 0.0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double bin_lo = static_cast<double>(i) * bin_width_;
    const double bin_hi = bin_lo + bin_width_;
    if (bin_lo >= lo && bin_hi <= hi) acc += bins_[i];
  }
  const double top = static_cast<double>(bins_.size()) * bin_width_;
  if (hi > top) acc += overflow_;
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    acc += bins_[i];
    if (acc >= target) {
      return (static_cast<double>(i) + 0.5) * bin_width_;
    }
  }
  return static_cast<double>(bins_.size()) * bin_width_;
}

void Histogram::reset() noexcept {
  std::fill(bins_.begin(), bins_.end(), 0);
  overflow_ = 0;
  total_ = 0;
  sum_ = 0.0;
}

void Histogram::merge(const Histogram& other) {
  assert(other.bins_.size() == bins_.size() &&
         other.bin_width_ == bin_width_);
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  overflow_ += other.overflow_;
  total_ += other.total_;
  sum_ += other.sum_;
}

double safe_ratio(double num, double den) noexcept {
  return den == 0.0 ? 0.0 : num / den;
}

double geo_mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double arith_mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace mflush
