#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mflush {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(precision) << v * 100.0
     << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << row[c];
      os << std::right;
    }
    os << '\n';
  };

  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c == 0 ? "" : ",") << row[c];
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace mflush
