#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

/// Crash-safe file writing shared by every on-disk artifact.
///
/// One policy for the whole tree: a file that matters is written to a
/// sibling temp path and atomically renamed into place, so a reader (or a
/// post-crash resume) only ever sees either the previous complete file or
/// the new complete file — never a plausible-looking truncated archive.
/// `durable` additionally fsyncs the bytes before the rename and the parent
/// directory after it, which is what makes the rename itself survive power
/// loss; scratch protocol files skip the fsyncs (their lifetime is one
/// worker invocation) but keep the atomicity.
namespace mflush::fsio {

/// Write `bytes` to `path` via write-temp-then-atomic-rename. The temp
/// name embeds pid + a process-unique counter, so concurrent writers of
/// the same target cannot collide mid-write (last rename wins whole).
/// Throws std::runtime_error naming the path on any failure; the temp file
/// never outlives a failed attempt.
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes,
                       bool durable = false);

/// fsync a directory so a just-renamed/created entry inside it is durable.
/// Throws std::runtime_error when the directory cannot be opened or synced.
void fsync_dir(const std::string& dir);

/// Whole-file read into a byte vector; throws naming `what` and the path
/// when the file cannot be opened or read.
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(
    const std::string& path, const char* what);

}  // namespace mflush::fsio
