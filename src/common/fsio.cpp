#include "common/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace mflush::fsio {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path + " (" + std::strerror(errno) +
                           ")");
}

/// Process-unique temp sibling for `path`: same directory (rename must not
/// cross filesystems), pid + counter so concurrent writers never collide.
std::string temp_sibling(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

}  // namespace

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes, bool durable) {
  const std::string tmp = temp_sibling(path);
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail("cannot open for write", tmp);

  const auto cleanup_failed = [&](const char* what) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    fail(what, tmp);
  };

  std::size_t off = 0;
  while (off < bytes.size()) {
    const ::ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      cleanup_failed("write failed");
    }
    off += static_cast<std::size_t>(n);
  }
  // The fsync-before-rename is what guarantees the rename publishes a
  // *complete* file: without it a crash can leave the new name pointing at
  // zero-length data even though the rename itself survived.
  if (durable && ::fsync(fd) != 0) cleanup_failed("fsync failed");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close failed", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename failed", path);
  }
  if (durable) {
    const std::string dir =
        std::filesystem::path(path).parent_path().string();
    fsync_dir(dir.empty() ? "." : dir);
  }
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) fail("cannot open directory", dir);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("directory fsync failed", dir);
  }
  ::close(fd);
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path,
                                          const char* what) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in)
    throw std::runtime_error(std::string("cannot open ") + what + ": " +
                             path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in)
    throw std::runtime_error(std::string(what) + " read failed: " + path);
  return bytes;
}

}  // namespace mflush::fsio
