#pragma once

#include <array>
#include <cstdint>

/// Deterministic, fast pseudo-random number generation.
///
/// All stochastic behaviour in the simulator (synthetic traces, tie-breaks)
/// flows through these generators so that a (config, seed) pair fully
/// determines a simulation run.
namespace mflush {

/// SplitMix64 — used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — main workhorse generator.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) (bound > 0). Uses the fast Lemire-style
  /// multiply-shift reduction; bias is negligible for simulation purposes.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return next_double() < p; }

  /// Snapshot support: the four state words fully determine the stream.
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state()
      const noexcept {
    return s_;
  }
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    s_ = s;
  }

  /// Geometric-ish positive integer with mean approximately `mean`
  /// (clamped to [1, cap]). Used for dependency distances.
  constexpr std::uint64_t geometric(double mean, std::uint64_t cap) noexcept {
    if (mean <= 1.0) return 1;
    // Inverse-CDF sampling of a geometric with success prob 1/mean.
    const double p = 1.0 / mean;
    double u = next_double();
    // Avoid log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    // ceil(log(u)/log(1-p)) without <cmath> at constexpr: iterate (bounded).
    std::uint64_t k = 1;
    double q = 1.0 - p;
    double acc = q;
    while (k < cap && u < acc) {
      acc *= q;
      ++k;
    }
    return k;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

/// Derive a stream seed that is well separated per (domain, index).
[[nodiscard]] constexpr std::uint64_t derive_seed(
    std::uint64_t root, std::uint64_t domain, std::uint64_t index) noexcept {
  SplitMix64 sm(root ^ (domain * 0x9e3779b97f4a7c15ull) ^
                (index * 0xd1b54a32d192ed03ull));
  sm.next();
  return sm.next();
}

}  // namespace mflush
