#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

/// Minimal binary serialization for snapshot/fork checkpointing.
///
/// The archive is a flat little-endian byte stream with no per-field
/// framing: writer and reader must agree on the exact field sequence, which
/// is version-gated by the snapshot header (sim/snapshot.h). Only
/// trivially-copyable value types are serialized directly; containers are
/// length-prefixed. Nothing here allocates on the read path beyond the
/// containers being filled.
namespace mflush {

/// FNV-1a over a byte span — the trailing-checksum hash shared by every
/// archive-based file format (snapshots, experiment specs, worker job and
/// result files).
[[nodiscard]] inline std::uint64_t fnv1a(
    std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

class ArchiveWriter {
 public:
  void put_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "field-wise save required for non-trivial types");
    put_bytes(&v, sizeof(T));
  }

  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    put_bytes(s.data(), s.size());
  }

  template <typename T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    if (!v.empty()) put_bytes(v.data(), v.size() * sizeof(T));
  }

  template <typename T>
  void put_deque(const std::deque<T>& d) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(d.size());
    for (const T& v : d) put(v);
  }

  template <typename K, typename V>
  void put_map(const std::unordered_map<K, V>& m) {
    static_assert(std::is_trivially_copyable_v<K> &&
                  std::is_trivially_copyable_v<V>);
    put<std::uint64_t>(m.size());
    for (const auto& [k, v] : m) {
      put(k);
      put(v);
    }
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class ArchiveReader {
 public:
  explicit ArchiveReader(std::span<const std::uint8_t> bytes)
      : data_(bytes) {}

  void get_bytes(void* p, std::size_t n) {
    if (n > data_.size() - pos_)
      throw std::runtime_error("snapshot archive truncated");
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  template <typename T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    get_bytes(&v, sizeof(T));
    return v;
  }

  [[nodiscard]] std::string get_string() {
    const auto n = checked_size(get<std::uint64_t>(), 1);
    std::string s(n, '\0');
    get_bytes(s.data(), n);
    return s;
  }

  template <typename T>
  void get_vec(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = checked_size(get<std::uint64_t>(), sizeof(T));
    v.resize(n);
    if (n != 0) get_bytes(v.data(), n * sizeof(T));
  }

  template <typename T>
  void get_deque(std::deque<T>& d) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = checked_size(get<std::uint64_t>(), sizeof(T));
    d.clear();
    for (std::size_t i = 0; i < n; ++i) d.push_back(get<T>());
  }

  template <typename K, typename V>
  void get_map(std::unordered_map<K, V>& m) {
    const auto n = checked_size(get<std::uint64_t>(), sizeof(K) + sizeof(V));
    m.clear();
    m.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      K k = get<K>();
      m.emplace(std::move(k), get<V>());
    }
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

 private:
  /// Guard length prefixes against truncated/corrupt archives before any
  /// resize: a bogus 2^60 length must throw, not allocate.
  [[nodiscard]] std::size_t checked_size(std::uint64_t n,
                                         std::size_t elem_size) const {
    if (n > (data_.size() - pos_) / elem_size)
      throw std::runtime_error("snapshot archive truncated");
    return static_cast<std::size_t>(n);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace mflush
