#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

/// Simulation configuration.
///
/// Defaults reproduce Figure 1 of the paper ("Simulation parameters").
/// Every knob the evaluation sweeps is a plain data member so experiments can
/// be expressed as config edits.
namespace mflush {

/// Out-of-order SMT core parameters (Fig. 1, "Core Parameters").
struct CoreConfig {
  std::uint32_t threads_per_core = 2;     ///< hardware contexts per core
  std::uint32_t fetch_width = 8;    ///< instructions fetched per cycle
  std::uint32_t fetch_threads = 2;  ///< threads fetched per cycle (ICOUNT2.8)
  std::uint32_t decode_width = 8;
  std::uint32_t rename_width = 8;
  std::uint32_t issue_width = 8;
  std::uint32_t commit_width = 8;         ///< per thread, per cycle

  // Front-end stage latencies chosen so the total pipeline is 11 stages deep:
  // 3 fetch + 2 decode + 2 rename + 1 queue(dispatch) + 1 regread +
  // 1 execute(min) + 1 regwrite/commit.
  std::uint32_t fetch_stages = 3;
  std::uint32_t decode_stages = 2;
  std::uint32_t rename_stages = 2;

  std::uint32_t int_queue_entries = 64;   ///< shared among contexts
  std::uint32_t fp_queue_entries = 64;
  std::uint32_t mem_queue_entries = 64;   ///< load/store queue

  std::uint32_t int_units = 4;
  std::uint32_t fp_units = 3;
  std::uint32_t ldst_units = 2;

  std::uint32_t int_phys_regs = 320;      ///< shared among contexts
  std::uint32_t fp_phys_regs = 320;

  std::uint32_t rob_entries = 256;        ///< replicated per thread (Fig. 1 *)
  std::uint32_t ras_entries = 100;        ///< replicated per thread (Fig. 1 *)

  // Execution latencies per class.
  std::uint32_t lat_int_alu = 1;
  std::uint32_t lat_int_mul = 3;
  std::uint32_t lat_fp_alu = 4;
  std::uint32_t lat_fp_mul = 6;
  std::uint32_t lat_branch = 1;

  // Branch prediction (Fig. 1: perceptron, 4K local, 256 perceptrons; BTB
  // 256 entries 4-way).
  std::uint32_t perceptron_table = 256;
  std::uint32_t local_history_entries = 4096;
  std::uint32_t history_bits = 24;
  std::uint32_t btb_entries = 256;
  std::uint32_t btb_ways = 4;

  bool model_wrong_path = true;  ///< fetch down mispredicted paths (bbdict)
};

/// Which timing model backs main memory (mem/memory.h seam).
enum class MemModelKind : std::uint8_t {
  /// Fixed-latency fully-pipelined FIFO — the paper's Fig. 1 memory and
  /// the default; bit-identical to the pre-seam simulator.
  Fixed = 0,
  /// Banked DRAM: channels x banks, per-bank row buffers, a channel-level
  /// ready-time arbiter, and an optional far-memory latency class.
  BankedDram = 1,
};

/// Banked-DRAM timing knobs (MemModelKind::BankedDram only; the fixed
/// model uses MemConfig::memory_latency alone).
///
/// Address mapping (line-granular, all counts powers of two):
///   block   = line_addr / line_bytes
///   channel = block % channels
///   bank    = (block / channels) % banks_per_channel
///   row     = block / (channels * banks_per_channel * lines_per_row)
/// so consecutive lines interleave across channels then banks, and each
/// bank sees consecutive in-bank blocks share a row buffer for
/// row_bytes * channels * banks_per_channel contiguous bytes of footprint.
struct DramConfig {
  std::uint32_t channels = 2;          ///< independent channels
  std::uint32_t banks_per_channel = 8;
  std::uint32_t row_bytes = 2048;      ///< row-buffer size per bank
  std::uint32_t t_row_hit = 80;        ///< open row matches (CAS only)
  std::uint32_t t_row_miss = 250;      ///< bank idle: activate + CAS
  std::uint32_t t_row_conflict = 400;  ///< other row open: precharge first
  /// Per-access channel occupancy: command/data-bus time that serializes
  /// accesses sharing a channel even when they hit different banks.
  std::uint32_t channel_gap = 4;
  /// Far-memory latency class: accesses whose line address falls in
  /// [far_base, far_base + far_bytes) pay far_extra additional cycles
  /// (CXL-style far tier). far_bytes == 0 disables the class.
  Addr far_base = 0;
  std::uint64_t far_bytes = 0;
  std::uint32_t far_extra = 800;

  bool operator==(const DramConfig&) const = default;
};

/// Cache hierarchy parameters (Fig. 1, "Cache Hierarchy Parameters").
struct MemConfig {
  std::uint32_t line_bytes = 64;

  std::uint32_t l1i_bytes = 64 * 1024;
  std::uint32_t l1i_ways = 4;
  std::uint32_t l1i_banks = 8;

  std::uint32_t l1d_bytes = 32 * 1024;
  std::uint32_t l1d_ways = 4;
  std::uint32_t l1d_banks = 8;

  std::uint32_t l1_latency = 3;      ///< L1 hit latency (cycles)

  std::uint32_t itlb_entries = 512;  ///< fully associative
  std::uint32_t dtlb_entries = 512;
  std::uint32_t tlb_miss_penalty = 300;
  std::uint32_t page_bytes = 8192;

  std::uint32_t l2_bytes = 4 * 1024 * 1024;
  std::uint32_t l2_ways = 12;
  std::uint32_t l2_banks = 4;
  std::uint32_t l2_bank_latency = 15;  ///< single-ported occupancy per access

  std::uint32_t bus_latency = 4;       ///< L1->L2 request transfer (shared bus)

  std::uint32_t memory_latency = 250;  ///< main memory (pipelined)

  std::uint32_t mshr_entries = 16;     ///< per core, I+D unified

  /// Main-memory timing model selection + DRAM knobs (the seam's axis).
  MemModelKind memory_model = MemModelKind::Fixed;
  DramConfig dram{};

  /// Unloaded L2 hit round trip as seen from load issue:
  /// l1_latency + bus_latency + l2_bank_latency = 3 + 4 + 15 = 22, matching
  /// the paper's "L1 lat./miss 3/22".
  [[nodiscard]] std::uint32_t min_l2_roundtrip() const noexcept {
    return l1_latency + bus_latency + l2_bank_latency;
  }

  /// Worst-case (miss) resolution latency excluding queueing: MAX.
  [[nodiscard]] std::uint32_t max_l2_roundtrip() const noexcept {
    return min_l2_roundtrip() + memory_latency;
  }

  /// The paper's Multicore Traffic term:
  /// MT = (L1_L2_Bus_delay + L2_Bank_Acc_delay) * (Num_Cores - 1).
  [[nodiscard]] std::uint32_t multicore_traffic(
      std::uint32_t num_cores) const noexcept {
    if (num_cores == 0) return 0;
    return (bus_latency + l2_bank_latency) * (num_cores - 1);
  }
};

/// Whole-chip configuration.
struct SimConfig {
  std::uint32_t num_cores = 1;
  CoreConfig core{};
  MemConfig mem{};
  std::uint64_t seed = 1;

  /// Pre-install each thread's L2-resident working set into the L2 tags at
  /// construction. The paper warms structures over 120 M-cycle runs; the
  /// scaled-down windows here cannot warm a 4 MB L2 naturally.
  bool prewarm_l2 = true;

  /// Per-run guard: maximum in-flight window the trace source must be able
  /// to rewind over (ROB + front-end slack).
  [[nodiscard]] std::uint32_t rewind_window() const noexcept {
    return core.rob_entries + 4 * core.fetch_width *
                                  (core.fetch_stages + core.decode_stages +
                                   core.rename_stages + 2);
  }

  [[nodiscard]] std::uint32_t total_threads() const noexcept {
    return num_cores * core.threads_per_core;
  }

  /// Paper defaults for an n-core CMP+SMT chip.
  [[nodiscard]] static SimConfig paper_default(std::uint32_t num_cores,
                                               std::uint64_t seed = 1);

  /// Validate invariants; returns an empty string when OK, else a message.
  [[nodiscard]] std::string validate() const;
};

}  // namespace mflush
