#include "common/sockio.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace mflush::sockio {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& address) {
  throw std::runtime_error("sockio: " + what + " failed for '" + address +
                           "': " + std::strerror(errno));
}

sockaddr_un unix_sockaddr(const std::string& address, const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(sa.sun_path)) {
    throw std::runtime_error("sockio: unix socket path in '" + address +
                             "' must be 1.." +
                             std::to_string(sizeof(sa.sun_path) - 1) +
                             " bytes");
  }
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

sockaddr_in tcp_sockaddr(const std::string& address, bool listening) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    throw std::runtime_error("sockio: TCP address '" + address +
                             "' must look like HOST:PORT (or unix:PATH)");
  }
  std::string host = address.substr(0, colon);
  const std::string port_text = address.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (port_text.empty() || *end != '\0' || port == 0 || port > 65535) {
    throw std::runtime_error("sockio: bad port '" + port_text + "' in '" +
                             address + "'");
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty() || host == "*") {
    if (!listening) {
      throw std::runtime_error("sockio: connect address '" + address +
                               "' needs an explicit host");
    }
    sa.sin_addr.s_addr = htonl(INADDR_ANY);
    return sa;
  }
  if (host == "localhost") host = "127.0.0.1";
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    throw std::runtime_error("sockio: host '" + host + "' in '" + address +
                             "' is not a dotted-quad IPv4 address");
  }
  return sa;
}

}  // namespace

bool is_unix_address(const std::string& address) {
  return address.rfind("unix:", 0) == 0 ||
         address.find('/') != std::string::npos;
}

std::string unix_path_of(const std::string& address) {
  if (address.rfind("unix:", 0) == 0) return address.substr(5);
  if (address.find('/') != std::string::npos) return address;
  return {};
}

int listen_on(const std::string& address, int backlog) {
  if (is_unix_address(address)) {
    const std::string path = unix_path_of(address);
    const sockaddr_un sa = unix_sockaddr(address, path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("socket", address);
    ::unlink(path.c_str());  // a SIGKILLed daemon leaves its socket behind
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(fd, backlog) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail("bind/listen", address);
    }
    return fd;
  }
  const sockaddr_in sa = tcp_sockaddr(address, /*listening=*/true);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket", address);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("bind/listen", address);
  }
  return fd;
}

int accept_on(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return -1;  // fd shut down or closed: the serve loop is stopping
  }
}

int connect_to(const std::string& address) {
  if (is_unix_address(address)) {
    const sockaddr_un sa = unix_sockaddr(address, unix_path_of(address));
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("socket", address);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail("connect", address);
    }
    return fd;
  }
  const sockaddr_in sa = tcp_sockaddr(address, /*listening=*/false);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket", address);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect", address);
  }
  return fd;
}

void write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("sockio: send failed: ") +
                               std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t read_some(int fd, std::vector<std::uint8_t>& buffer) {
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer.insert(buffer.end(), chunk, chunk + n);
      return static_cast<std::size_t>(n);
    }
    if (n == 0) return 0;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return 0;  // peer vanished: same as EOF here
    throw std::runtime_error(std::string("sockio: recv failed: ") +
                             std::strerror(errno));
  }
}

void shutdown_fd(int fd) noexcept { ::shutdown(fd, SHUT_RDWR); }

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

}  // namespace mflush::sockio
