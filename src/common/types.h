#pragma once

#include <cstddef>
#include <cstdint>

/// Fundamental scalar types shared across the simulator.
///
/// Everything in the model is expressed in *cycles* of a single global clock;
/// all identifiers are small dense integers so they can index vectors.
namespace mflush {

/// Global simulation clock value.
using Cycle = std::uint64_t;

/// Byte address in the simulated (flat, per-thread-offset) address space.
using Addr = std::uint64_t;

/// Monotonic per-thread instruction sequence number (trace position).
using SeqNo = std::uint64_t;

/// Index of a hardware context within one SMT core (0 or 1 for 2-way SMT).
using ThreadId = std::uint32_t;

/// Index of an SMT core within the CMP.
using CoreId = std::uint32_t;

/// Index of a physical register within a register file.
using PhysReg = std::uint16_t;

/// Index of a logical (architectural) register, 0..kNumLogicalRegs-1.
using LogReg = std::uint8_t;

/// Sentinel for "no register".
inline constexpr PhysReg kNoPhysReg = 0xffff;
inline constexpr LogReg kNoLogReg = 0xff;

/// Number of architectural registers visible to a trace (int + fp unified
/// namespaces of 32 each; see trace/instr.h for the split).
inline constexpr std::size_t kNumLogicalRegs = 64;

/// Sentinel cycle meaning "never / not yet scheduled".
inline constexpr Cycle kNeverCycle = ~Cycle{0};

/// Broad instruction classes; the fetch-policy study only needs these.
enum class InstrClass : std::uint8_t {
  IntAlu,   ///< 1-cycle integer op
  IntMul,   ///< 3-cycle integer multiply/divide-like op
  FpAlu,    ///< 4-cycle floating-point op
  FpMul,    ///< 6-cycle floating-point multiply/divide-like op
  Load,     ///< memory read (L1D and below)
  Store,    ///< memory write (allocates at commit)
  Branch,   ///< conditional branch
  Call,     ///< call (pushes RAS)
  Return,   ///< return (pops RAS)
};

/// Number of distinct InstrClass values.
inline constexpr std::size_t kNumInstrClasses = 9;

[[nodiscard]] constexpr bool is_memory(InstrClass c) noexcept {
  return c == InstrClass::Load || c == InstrClass::Store;
}

[[nodiscard]] constexpr bool is_control(InstrClass c) noexcept {
  return c == InstrClass::Branch || c == InstrClass::Call ||
         c == InstrClass::Return;
}

[[nodiscard]] constexpr bool is_fp(InstrClass c) noexcept {
  return c == InstrClass::FpAlu || c == InstrClass::FpMul;
}

[[nodiscard]] constexpr const char* to_string(InstrClass c) noexcept {
  switch (c) {
    case InstrClass::IntAlu: return "IntAlu";
    case InstrClass::IntMul: return "IntMul";
    case InstrClass::FpAlu: return "FpAlu";
    case InstrClass::FpMul: return "FpMul";
    case InstrClass::Load: return "Load";
    case InstrClass::Store: return "Store";
    case InstrClass::Branch: return "Branch";
    case InstrClass::Call: return "Call";
    case InstrClass::Return: return "Return";
  }
  return "?";
}

/// Pipeline stages used for occupancy accounting and the Fig. 10 energy
/// factor table. `Commit` means the instruction retired (cost 1 unit).
enum class PipeStage : std::uint8_t {
  Fetch,
  Decode,
  Rename,
  Queue,     ///< waiting in an issue queue (pre-issue)
  RegRead,
  Execute,
  RegWrite,
  Commit,
};

inline constexpr std::size_t kNumPipeStages = 8;

[[nodiscard]] constexpr const char* to_string(PipeStage s) noexcept {
  switch (s) {
    case PipeStage::Fetch: return "Fetch";
    case PipeStage::Decode: return "Decode";
    case PipeStage::Rename: return "Rename";
    case PipeStage::Queue: return "Queue";
    case PipeStage::RegRead: return "RegRead";
    case PipeStage::Execute: return "Execute";
    case PipeStage::RegWrite: return "RegWrite";
    case PipeStage::Commit: return "Commit";
  }
  return "?";
}

}  // namespace mflush
