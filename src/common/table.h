#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// Minimal aligned-table / CSV printer for bench and example output.
namespace mflush {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must match header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with `precision` digits.
  [[nodiscard]] static std::string num(double v, int precision = 3);
  [[nodiscard]] static std::string pct(double v, int precision = 1);

  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Render as CSV (for downstream plotting).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mflush
