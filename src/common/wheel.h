#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/archive.h"
#include "common/types.h"

namespace mflush {

/// Bucketed wakeup wheel: a timing wheel that replaces "scan every pending
/// entry each cycle" polling with O(1) scheduling and O(due) retrieval.
///
/// Entries scheduled for cycle `c` land in bucket `c & mask`; entries
/// further out than the wheel span go to an unsorted far queue that is
/// only scanned while non-empty (with default latencies it stays empty).
/// pop_due() returns due entries in bucket-FIFO order followed by
/// far-queue insertion order — callers that need a global order (the
/// hierarchy's (ready_at, order) heap order, the core's per-thread program
/// order) sort the small due batch themselves.
///
/// The wheel tolerates skipped cycles: a bucket is filtered by each
/// entry's own due cycle, so entries aliased `span` cycles ahead and
/// entries left behind by an event-skip jump are both handled.
template <typename T>
class WakeupWheel {
 public:
  explicit WakeupWheel(std::uint32_t buckets = 64)
      : buckets_(std::bit_ceil(std::uint64_t{buckets < 2 ? 2 : buckets})),
        mask_(buckets_.size() - 1) {}

  /// Schedule `v` to pop at cycle `at`. `now` is the current cycle: entries
  /// due in the past or present are placed so the next pop (cycle now+1)
  /// releases them, matching the "pending queue drained next tick"
  /// semantics of the priority queues this replaces.
  void schedule(Cycle at, Cycle now, T v) {
    const Cycle effective = at > now ? at : now + 1;
    if (effective - now > mask_) {
      far_.push_back(Slot{at, std::move(v)});
    } else {
      buckets_[effective & mask_].push_back(Slot{at, std::move(v)});
    }
    ++count_;
  }

  /// Append every entry due at or before `now` to `out`.
  void pop_due(Cycle now, std::vector<T>& out) {
    if (count_ == 0) return;
    take_due(buckets_[now & mask_], now, out);
    if (!far_.empty()) take_due(far_, now, out);
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t far_size() const noexcept { return far_.size(); }
  [[nodiscard]] std::uint32_t span() const noexcept {
    return static_cast<std::uint32_t>(buckets_.size());
  }

  /// Earliest scheduled cycle, kNeverCycle when empty. O(span + entries);
  /// only meant for idle-time next-event queries, not the per-cycle path.
  [[nodiscard]] Cycle next_due() const noexcept {
    Cycle best = kNeverCycle;
    if (count_ == 0) return best;
    for (const auto& b : buckets_)
      for (const Slot& s : b)
        if (s.at < best) best = s.at;
    for (const Slot& s : far_)
      if (s.at < best) best = s.at;
    return best;
  }

  void save(ArchiveWriter& ar) const {
    static_assert(std::is_trivially_copyable_v<T>);
    ar.put<std::uint64_t>(buckets_.size());
    for (const auto& b : buckets_) {
      ar.put<std::uint64_t>(b.size());
      for (const Slot& s : b) {
        ar.put(s.at);
        ar.put(s.v);
      }
    }
    ar.put<std::uint64_t>(far_.size());
    for (const Slot& s : far_) {
      ar.put(s.at);
      ar.put(s.v);
    }
  }

  void load(ArchiveReader& ar) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto nb = ar.get<std::uint64_t>();
    if (nb != buckets_.size())
      throw std::runtime_error("wakeup wheel span mismatch");
    count_ = 0;
    for (auto& b : buckets_) {
      b.clear();
      const auto n = ar.get<std::uint64_t>();
      for (std::uint64_t i = 0; i < n; ++i) {
        const Cycle at = ar.get<Cycle>();
        b.push_back(Slot{at, ar.get<T>()});
        ++count_;
      }
    }
    far_.clear();
    const auto nf = ar.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < nf; ++i) {
      const Cycle at = ar.get<Cycle>();
      far_.push_back(Slot{at, ar.get<T>()});
      ++count_;
    }
  }

 private:
  struct Slot {
    Cycle at;
    T v;
  };

  /// Move due slots to `out` preserving the relative order of the kept
  /// remainder (compaction in place, no allocation in steady state).
  void take_due(std::vector<Slot>& slots, Cycle now, std::vector<T>& out) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].at <= now) {
        out.push_back(std::move(slots[i].v));
        --count_;
      } else {
        if (kept != i) slots[kept] = std::move(slots[i]);
        ++kept;
      }
    }
    slots.resize(kept);
  }

  std::vector<std::vector<Slot>> buckets_;
  Cycle mask_;
  std::vector<Slot> far_;
  std::size_t count_ = 0;
};

}  // namespace mflush
