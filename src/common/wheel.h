#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/archive.h"
#include "common/types.h"

namespace mflush {

/// Bucketed wakeup wheel: a timing wheel that replaces "scan every pending
/// entry each cycle" polling with O(1) scheduling and O(due) retrieval.
///
/// Entries scheduled for cycle `c` land in bucket `c & mask`; entries
/// further out than the wheel span go to an unsorted far queue that is
/// only scanned while non-empty (with default latencies it stays empty).
/// pop_due() returns due entries in bucket-FIFO order followed by
/// far-queue insertion order — callers that need a global order (the
/// hierarchy's (ready_at, order) heap order, the core's per-thread program
/// order) sort the small due batch themselves.
///
/// Clock-jump contract: the wheel tolerates skipped cycles ONLY when the
/// skip never jumps past an entry's release cycle — a bucket is probed
/// solely when `now & mask` comes around, so an entry whose release cycle
/// falls inside a skipped window would sit stranded in its (now aliased)
/// bucket until the index wraps. A `strict_release` wheel asserts the
/// invariant in debug builds whenever pop_due() observes a jump; wheels
/// whose entries may legitimately outlive their release (the core's exec
/// wheel keeps squashed entries as stale slots that a generation check
/// discards whenever they eventually pop) leave it off.
template <typename T>
class WakeupWheel {
 public:
  explicit WakeupWheel(std::uint32_t buckets = 64, bool strict_release = false)
      : buckets_(std::bit_ceil(std::uint64_t{buckets < 2 ? 2 : buckets})),
        mask_(buckets_.size() - 1),
        strict_release_(strict_release) {}

  /// Schedule `v` to pop at cycle `at`. `now` is the current cycle: entries
  /// due in the past or present are placed so the next pop (cycle now+1)
  /// releases them, matching the "pending queue drained next tick"
  /// semantics of the priority queues this replaces.
  void schedule(Cycle at, Cycle now, T v) {
    const Cycle release = at > now ? at : now + 1;
    if (release - now > mask_) {
      far_.push_back(Slot{at, release, std::move(v)});
    } else {
      buckets_[release & mask_].push_back(Slot{at, release, std::move(v)});
    }
    ++count_;
    if (next_valid_ && at < next_cached_) next_cached_ = at;
  }

  /// Append every entry due at or before `now` to `out`.
  void pop_due(Cycle now, std::vector<T>& out) {
#ifndef NDEBUG
    // A jump landed here: nothing pending may have been due in the skipped
    // window, or it is stranded in an unprobed bucket (released up to a
    // full span late). The kernel must bound jumps by next_due().
    if (strict_release_ && last_pop_valid_ && now > last_pop_now_ + 1)
      assert_nothing_stranded(now);
    last_pop_now_ = now;
    last_pop_valid_ = true;
#endif
    if (count_ == 0) return;
    const std::size_t before = out.size();
    take_due(buckets_[now & mask_], now, out);
    if (!far_.empty()) take_due(far_, now, out);
    // Popping may have removed the cached earliest entry.
    if (out.size() != before) next_valid_ = count_ == 0;
    if (count_ == 0) next_cached_ = kNeverCycle;
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t far_size() const noexcept { return far_.size(); }
  [[nodiscard]] std::uint32_t span() const noexcept {
    return static_cast<std::uint32_t>(buckets_.size());
  }

  /// Earliest scheduled cycle, kNeverCycle when empty. Cached: repeated
  /// idle-time horizon queries are O(1); the O(span + entries) scan only
  /// reruns after a pop actually removed entries.
  [[nodiscard]] Cycle next_due() const noexcept {
    if (!next_valid_) {
      next_cached_ = scan_min_at();
      next_valid_ = true;
    }
    return next_cached_;
  }

  /// Earliest scheduled cycle among entries matching `pred`, kNeverCycle
  /// when none. Always a full scan — idle-time per-core horizon queries
  /// only, never the per-cycle path.
  template <typename Pred>
  [[nodiscard]] Cycle next_due_if(Pred&& pred) const {
    Cycle best = kNeverCycle;
    if (count_ == 0) return best;
    for (const auto& b : buckets_)
      for (const Slot& s : b)
        if (s.at < best && pred(s.v)) best = s.at;
    for (const Slot& s : far_)
      if (s.at < best && pred(s.v)) best = s.at;
    return best;
  }

  void save(ArchiveWriter& ar) const {
    static_assert(std::is_trivially_copyable_v<T>);
    ar.put<std::uint64_t>(buckets_.size());
    for (const auto& b : buckets_) {
      ar.put<std::uint64_t>(b.size());
      for (const Slot& s : b) {
        ar.put(s.at);
        ar.put(s.release);
        ar.put(s.v);
      }
    }
    ar.put<std::uint64_t>(far_.size());
    for (const Slot& s : far_) {
      ar.put(s.at);
      ar.put(s.release);
      ar.put(s.v);
    }
  }

  void load(ArchiveReader& ar) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto nb = ar.get<std::uint64_t>();
    if (nb != buckets_.size())
      throw std::runtime_error("wakeup wheel span mismatch");
    count_ = 0;
    for (auto& b : buckets_) {
      b.clear();
      const auto n = ar.get<std::uint64_t>();
      for (std::uint64_t i = 0; i < n; ++i) {
        const Cycle at = ar.get<Cycle>();
        const Cycle release = ar.get<Cycle>();
        b.push_back(Slot{at, release, ar.get<T>()});
        ++count_;
      }
    }
    far_.clear();
    const auto nf = ar.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < nf; ++i) {
      const Cycle at = ar.get<Cycle>();
      const Cycle release = ar.get<Cycle>();
      far_.push_back(Slot{at, release, ar.get<T>()});
      ++count_;
    }
    next_valid_ = false;
#ifndef NDEBUG
    last_pop_valid_ = false;
#endif
  }

 private:
  struct Slot {
    Cycle at;       ///< requested due cycle (what next_due reports)
    Cycle release;  ///< actual pop cycle: max(at, schedule_now + 1)
    T v;
  };

  [[nodiscard]] Cycle scan_min_at() const noexcept {
    Cycle best = kNeverCycle;
    if (count_ == 0) return best;
    for (const auto& b : buckets_)
      for (const Slot& s : b)
        if (s.at < best) best = s.at;
    for (const Slot& s : far_)
      if (s.at < best) best = s.at;
    return best;
  }

#ifndef NDEBUG
  /// Every pending entry must still be releasable on time: a release cycle
  /// at or before `now` that is not in this cycle's probed bucket (or the
  /// always-scanned far queue) was jumped past and is stranded.
  void assert_nothing_stranded(Cycle now) const {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (i == (now & mask_)) continue;
      for (const Slot& s : buckets_[i])
        assert(s.release > now &&
               "wakeup wheel entry stranded: event-skip jumped past its "
               "release cycle");
    }
  }
#endif

  /// Move due slots to `out` preserving the relative order of the kept
  /// remainder (compaction in place, no allocation in steady state).
  void take_due(std::vector<Slot>& slots, Cycle now, std::vector<T>& out) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].at <= now) {
        out.push_back(std::move(slots[i].v));
        --count_;
      } else {
        if (kept != i) slots[kept] = std::move(slots[i]);
        ++kept;
      }
    }
    slots.resize(kept);
  }

  std::vector<std::vector<Slot>> buckets_;
  Cycle mask_;  // lint: transient — ctor geometry (bucket count - 1)
  std::vector<Slot> far_;
  std::size_t count_ = 0;   // lint: transient — recounted while load refills
  bool strict_release_;     // lint: transient — ctor debug mode
  // Memoized next_due: load invalidates, the next query rescans.
  mutable Cycle next_cached_ = kNeverCycle;  // lint: transient — memo cache
  mutable bool next_valid_ = true;           // lint: transient — memo cache
#ifndef NDEBUG
  Cycle last_pop_now_ = 0;
  // lint: transient — debug-only pop-order assert state, reset by load
  bool last_pop_valid_ = false;
#endif
};

}  // namespace mflush
