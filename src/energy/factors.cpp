#include "energy/factors.h"

// Constexpr tables; this translation unit anchors the target.
namespace mflush::energy {}
