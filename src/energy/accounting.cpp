#include "energy/accounting.h"

#include "energy/factors.h"

namespace mflush::energy {

double wasted_units(const std::array<std::uint64_t, kNumPipeStages>&
                        squashed_by_stage) noexcept {
  double units = 0.0;
  for (std::size_t s = 0; s < kNumPipeStages; ++s) {
    units += static_cast<double>(squashed_by_stage[s]) *
             accumulated_factor(static_cast<PipeStage>(s));
  }
  return units;
}

EnergyReport report_for(const CoreStats& stats) noexcept {
  EnergyReport r;
  r.committed_units = static_cast<double>(stats.committed_total());
  r.flush_wasted_units = wasted_units(stats.policy_flushed_by_stage);
  r.branch_wasted_units = wasted_units(stats.branch_squashed_by_stage);
  return r;
}

EnergyReport merge(const EnergyReport& a, const EnergyReport& b) noexcept {
  EnergyReport r;
  r.committed_units = a.committed_units + b.committed_units;
  r.flush_wasted_units = a.flush_wasted_units + b.flush_wasted_units;
  r.branch_wasted_units = a.branch_wasted_units + b.branch_wasted_units;
  return r;
}

}  // namespace mflush::energy
