#pragma once

#include <array>

#include "common/types.h"

/// The paper's energy model (Figs. 9 and 10), derived from Folegnani &
/// González's ISCA-28 analysis: committing one instruction costs 1 energy
/// unit, spread across the pipeline stages per the Fig. 10 factors. An
/// instruction flushed at stage S has consumed the *accumulated* factor of
/// S and must be re-fetched, so that energy is wasted.
namespace mflush::energy {

struct StageFactor {
  PipeStage stage;
  double local;        ///< Fig. 10 "Local"
  double accumulated;  ///< Fig. 10 "Accumulated"
};

/// Fig. 10 — Energy Consumption Factor.
inline constexpr std::array<StageFactor, kNumPipeStages> kFactors{{
    {PipeStage::Fetch, 0.13, 0.13},
    {PipeStage::Decode, 0.03, 0.16},
    {PipeStage::Rename, 0.22, 0.38},
    {PipeStage::Queue, 0.26, 0.64},
    {PipeStage::RegRead, 0.05, 0.69},
    {PipeStage::Execute, 0.13, 0.82},
    {PipeStage::RegWrite, 0.05, 0.87},
    {PipeStage::Commit, 0.13, 1.0},
}};

[[nodiscard]] constexpr double local_factor(PipeStage s) noexcept {
  return kFactors[static_cast<std::size_t>(s)].local;
}

[[nodiscard]] constexpr double accumulated_factor(PipeStage s) noexcept {
  return kFactors[static_cast<std::size_t>(s)].accumulated;
}

/// Fig. 9(a) — energy distribution per hardware resource of a typical
/// execution pipeline (the Fig. 10 local factors grouped by resource).
struct ResourceShare {
  const char* resource;
  double fraction;
};

inline constexpr std::array<ResourceShare, 6> kResourceShares{{
    {"Fetch/I-cache", 0.13},
    {"Decode", 0.03},
    {"Rename", 0.22},
    {"Issue queues", 0.26},
    {"Register file", 0.10},  // read 0.05 + write 0.05
    {"Execute+Commit", 0.26}, // execute 0.13 + commit 0.13
}};

/// Compile-time consistency checks of the paper's table.
static_assert(accumulated_factor(PipeStage::Commit) == 1.0);

}  // namespace mflush::energy
