#pragma once

#include <array>
#include <cstdint>

#include "common/types.h"
#include "pipeline/smt_core.h"

/// Turning per-stage squash counters into the paper's energy metrics
/// (Fig. 11 "Wasted Energy", measured in units-to-commit-one-instruction).
namespace mflush::energy {

struct EnergyReport {
  double committed_units = 0.0;  ///< baseline: 1 unit per committed instr
  /// Energy thrown away by the FLUSH mechanism (instructions flushed and
  /// later re-fetched) — the Fig. 11 quantity.
  double flush_wasted_units = 0.0;
  /// Energy thrown away by branch-mispredict squashes (not part of
  /// Fig. 11; reported separately for completeness).
  double branch_wasted_units = 0.0;

  [[nodiscard]] double flush_wasted_per_kilo_commit() const noexcept {
    return committed_units > 0.0
               ? flush_wasted_units / committed_units * 1000.0
               : 0.0;
  }

  bool operator==(const EnergyReport&) const = default;
};

/// Wasted units for a per-stage squash histogram: each squashed instruction
/// contributes the accumulated factor of the deepest stage it reached.
[[nodiscard]] double wasted_units(
    const std::array<std::uint64_t, kNumPipeStages>& by_stage) noexcept;

/// Build the report for one core's statistics.
[[nodiscard]] EnergyReport report_for(const CoreStats& stats) noexcept;

/// Merge (sum) two reports.
[[nodiscard]] EnergyReport merge(const EnergyReport& a,
                                 const EnergyReport& b) noexcept;

}  // namespace mflush::energy
