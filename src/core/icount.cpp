#include "core/icount.h"

// Header-only; this translation unit anchors the target.
namespace mflush {}
