#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/fetch_policy.h"
#include "core/token_table.h"

namespace mflush {

/// FLUSH (Tullsen & Brown, MICRO-34) on top of ICOUNT ordering.
///
/// Detection Moment (§3 of the paper):
///  * SpecDelay (FL-SX): a load is declared an L2 miss once it has been
///    outstanding more than `trigger` cycles after issuing from the LSQ.
///  * NonSpec (FL-NS): wait until the L2 bank determines the miss.
///
/// Response Action: squash the offending thread's younger instructions,
/// free its resources, stall its fetch until the load resolves.
class FlushPolicy final : public FetchPolicy {
 public:
  enum class DetectionMoment { SpecDelay, NonSpec };

  FlushPolicy(DetectionMoment dm, Cycle trigger);

  [[nodiscard]] const char* name() const noexcept override {
    return name_.c_str();
  }

  void on_cycle(Cycle now, CoreControl& ctrl) override;
  void on_load_issued(ThreadId tid, std::uint64_t token,
                      std::uint32_t l2_bank, Cycle now) override;
  void on_load_l2_miss(ThreadId tid, std::uint64_t token, std::uint32_t bank,
                       Cycle now) override;
  void on_load_resolved(ThreadId tid, std::uint64_t token, Cycle issue,
                        Cycle now, bool l2_accessed, bool l2_hit,
                        std::uint32_t bank) override;

  void fetch_order(const CoreView& view,
                   std::array<ThreadId, kMaxContexts>& order) override {
    icount_order(view, order);
  }

  [[nodiscard]] DetectionMoment detection_moment() const noexcept {
    return dm_;
  }
  [[nodiscard]] Cycle trigger() const noexcept { return trigger_; }
  [[nodiscard]] Counters counters() const override { return counters_; }

  /// on_cycle only acts on outstanding loads. SpecDelay entries fire at a
  /// computable deadline (issue + trigger); NonSpec entries fire only after
  /// an on_load_l2_miss callback, which re-queries the horizon anyway.
  /// Already-flushed threads wait on a resolution callback.
  [[nodiscard]] Cycle quiescent_until(Cycle now) const override;
  void save_state(ArchiveWriter& ar) const override;
  void load_state(ArchiveReader& ar) override;

  /// Public (and with explicit padding) because outstanding_ entries are
  /// serialized by raw memcpy inside TokenTable: the layout is part of the
  /// snapshot format, and the lint's layout probe must be able to
  /// offsetof it.
  struct Outstanding {
    ThreadId tid = 0;
    std::uint8_t _pad0[4] = {};  ///< explicit padding: canonical bytes
    Cycle issue = 0;
    bool l2_miss_known = false;  ///< NonSpec trigger armed
    std::uint8_t _pad1[7] = {};  ///< explicit tail padding
  };

 private:
  [[nodiscard]] bool thread_flushed(ThreadId tid) const noexcept {
    return flush_token_[tid] != 0;
  }

  DetectionMoment dm_;  // lint: transient — ctor config
  Cycle trigger_;       // lint: transient — ctor config
  std::string name_;    // lint: transient — ctor config
  TokenTable<Outstanding> outstanding_;
  std::array<std::uint64_t, kMaxContexts> flush_token_{};
  Counters counters_{};
  // per-cycle scratch (kept across cycles so on_cycle never allocates)
  // lint: transient — per-cycle scratch, cleared at each use
  std::vector<std::pair<Cycle, std::uint64_t>> by_age_;
  // lint: transient — per-cycle scratch, cleared at each use
  std::vector<std::uint64_t> fire_;
};

}  // namespace mflush
