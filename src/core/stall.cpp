#include "core/stall.h"

#include <algorithm>
#include <vector>

namespace mflush {

StallPolicy::StallPolicy(Cycle trigger)
    : trigger_(trigger), name_("STALL-S" + std::to_string(trigger)) {}

void StallPolicy::on_load_issued(ThreadId tid, std::uint64_t token,
                                 std::uint32_t /*l2_bank*/, Cycle now) {
  outstanding_.emplace(token, Outstanding{tid, now});
}

void StallPolicy::on_load_resolved(ThreadId tid, std::uint64_t token,
                                   Cycle /*issue*/, Cycle /*now*/,
                                   bool /*l2_accessed*/, bool /*l2_hit*/,
                                   std::uint32_t /*bank*/) {
  outstanding_.erase(token);
  if (stall_token_[tid] == token) stall_token_[tid] = 0;
}

void StallPolicy::on_cycle(Cycle now, CoreControl& ctrl) {
  std::vector<std::pair<Cycle, std::uint64_t>> by_age;
  for (const auto& [token, o] : outstanding_) {
    if (stall_token_[o.tid] != 0) continue;
    if (now >= o.issue + trigger_) by_age.emplace_back(o.issue, token);
  }
  std::sort(by_age.begin(), by_age.end());
  std::vector<std::uint64_t> fire;
  fire.reserve(by_age.size());
  for (const auto& [issue, token] : by_age) fire.push_back(token);
  for (const std::uint64_t token : fire) {
    const auto it = outstanding_.find(token);
    if (it == outstanding_.end()) continue;
    const ThreadId tid = it->second.tid;
    if (stall_token_[tid] != 0) continue;
    if (ctrl.stall_until_load(token)) {
      stall_token_[tid] = token;
    } else {
      outstanding_.erase(token);
    }
  }
}

}  // namespace mflush
