#include "core/stall.h"

#include <algorithm>
#include <vector>

#include "common/archive.h"

namespace mflush {

StallPolicy::StallPolicy(Cycle trigger)
    : trigger_(trigger), name_("STALL-S" + std::to_string(trigger)) {}

void StallPolicy::on_load_issued(ThreadId tid, std::uint64_t token,
                                 std::uint32_t /*l2_bank*/, Cycle now) {
  outstanding_.emplace(token, Outstanding{.tid = tid, .issue = now});
}

void StallPolicy::on_load_resolved(ThreadId tid, std::uint64_t token,
                                   Cycle /*issue*/, Cycle /*now*/,
                                   bool /*l2_accessed*/, bool /*l2_hit*/,
                                   std::uint32_t /*bank*/) {
  outstanding_.erase(token);
  if (stall_token_[tid] == token) stall_token_[tid] = 0;
}

void StallPolicy::save_state(ArchiveWriter& ar) const {
  outstanding_.save(ar);
  ar.put(stall_token_);
}

void StallPolicy::load_state(ArchiveReader& ar) {
  outstanding_.load(ar);
  stall_token_ = ar.get<decltype(stall_token_)>();
}

Cycle StallPolicy::quiescent_until(Cycle now) const {
  Cycle h = kNeverCycle;
  for (const auto& [token, o] : outstanding_.entries()) {
    if (stall_token_[o.tid] != 0) continue;  // waits on resolution
    h = std::min(h, o.issue + trigger_);
  }
  return h > now ? h : now + 1;
}

void StallPolicy::on_cycle(Cycle now, CoreControl& ctrl) {
  by_age_.clear();
  for (const auto& [token, o] : outstanding_.entries()) {
    if (stall_token_[o.tid] != 0) continue;
    if (now >= o.issue + trigger_) by_age_.emplace_back(o.issue, token);
  }
  if (by_age_.empty()) return;
  std::sort(by_age_.begin(), by_age_.end());
  fire_.clear();
  for (const auto& [issue, token] : by_age_) fire_.push_back(token);
  for (const std::uint64_t token : fire_) {
    const Outstanding* o = outstanding_.find(token);
    if (o == nullptr) continue;
    const ThreadId tid = o->tid;
    if (stall_token_[tid] != 0) continue;
    if (ctrl.stall_until_load(token)) {
      stall_token_[tid] = token;
    } else {
      outstanding_.erase(token);
    }
  }
}

}  // namespace mflush
