#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/fetch_policy.h"
#include "core/token_table.h"

namespace mflush {

/// STALL (Tullsen & Brown, MICRO-34): like speculative FLUSH but the
/// response action only stops fetching for the offending thread — already
/// fetched instructions keep their resources. Cheaper in energy, weaker at
/// freeing resources; included as the philosophical ancestor of MFLUSH's
/// Preventive State and for ablation benches.
class StallPolicy final : public FetchPolicy {
 public:
  explicit StallPolicy(Cycle trigger);

  [[nodiscard]] const char* name() const noexcept override {
    return name_.c_str();
  }

  void on_cycle(Cycle now, CoreControl& ctrl) override;
  void on_load_issued(ThreadId tid, std::uint64_t token,
                      std::uint32_t l2_bank, Cycle now) override;
  void on_load_resolved(ThreadId tid, std::uint64_t token, Cycle issue,
                        Cycle now, bool l2_accessed, bool l2_hit,
                        std::uint32_t bank) override;

  void fetch_order(const CoreView& view,
                   std::array<ThreadId, kMaxContexts>& order) override {
    icount_order(view, order);
  }

  [[nodiscard]] Cycle trigger() const noexcept { return trigger_; }

  /// See FlushPolicy::quiescent_until — SpecDelay-style deadlines only.
  [[nodiscard]] Cycle quiescent_until(Cycle now) const override;
  void save_state(ArchiveWriter& ar) const override;
  void load_state(ArchiveReader& ar) override;

  /// Public (and with explicit padding) because outstanding_ entries are
  /// serialized by raw memcpy inside TokenTable: the layout is part of the
  /// snapshot format, and the lint's layout probe must be able to
  /// offsetof it.
  struct Outstanding {
    ThreadId tid = 0;
    std::uint8_t _pad0[4] = {};  ///< explicit padding: canonical bytes
    Cycle issue = 0;
  };

 private:
  Cycle trigger_;     // lint: transient — ctor config
  std::string name_;  // lint: transient — ctor config
  TokenTable<Outstanding> outstanding_;
  std::array<std::uint64_t, kMaxContexts> stall_token_{};
  // per-cycle scratch (kept across cycles so on_cycle never allocates)
  // lint: transient — per-cycle scratch, cleared at each use
  std::vector<std::pair<Cycle, std::uint64_t>> by_age_;
  // lint: transient — per-cycle scratch, cleared at each use
  std::vector<std::uint64_t> fire_;
};

}  // namespace mflush
