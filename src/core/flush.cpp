#include "core/flush.h"

#include <algorithm>
#include <vector>

#include "common/archive.h"

namespace mflush {

FlushPolicy::FlushPolicy(DetectionMoment dm, Cycle trigger)
    : dm_(dm), trigger_(trigger) {
  name_ = dm == DetectionMoment::NonSpec
              ? "FLUSH-NS"
              : "FLUSH-S" + std::to_string(trigger);
}

void FlushPolicy::on_load_issued(ThreadId tid, std::uint64_t token,
                                 std::uint32_t /*l2_bank*/, Cycle now) {
  outstanding_.emplace(token, Outstanding{.tid = tid, .issue = now});
}

void FlushPolicy::on_load_l2_miss(ThreadId /*tid*/, std::uint64_t token,
                                  std::uint32_t /*bank*/, Cycle /*now*/) {
  if (Outstanding* o = outstanding_.find(token)) o->l2_miss_known = true;
}

void FlushPolicy::on_load_resolved(ThreadId tid, std::uint64_t token,
                                   Cycle /*issue*/, Cycle /*now*/,
                                   bool l2_accessed, bool l2_hit,
                                   std::uint32_t /*bank*/) {
  outstanding_.erase(token);
  if (flush_token_[tid] == token) {
    flush_token_[tid] = 0;
    if (!l2_accessed)
      ++counters_.flushes_on_l1;
    else if (l2_hit)
      ++counters_.flushes_on_hit;  // false miss
    else
      ++counters_.flushes_on_miss;
  }
}

void FlushPolicy::save_state(ArchiveWriter& ar) const {
  outstanding_.save(ar);
  ar.put(flush_token_);
  ar.put(counters_);
}

void FlushPolicy::load_state(ArchiveReader& ar) {
  outstanding_.load(ar);
  flush_token_ = ar.get<decltype(flush_token_)>();
  counters_ = ar.get<Counters>();
}

Cycle FlushPolicy::quiescent_until(Cycle now) const {
  Cycle h = kNeverCycle;
  for (const auto& [token, o] : outstanding_.entries()) {
    if (thread_flushed(o.tid)) continue;  // waits on a resolution callback
    if (dm_ == DetectionMoment::SpecDelay) {
      h = std::min(h, o.issue + trigger_);
    } else if (o.l2_miss_known) {
      return now + 1;  // armed: fires on the very next heartbeat
    }
  }
  return h > now ? h : now + 1;
}

void FlushPolicy::on_cycle(Cycle now, CoreControl& ctrl) {
  // Collect triggered tokens first: flushing mutates core state that feeds
  // back into `outstanding_` via callbacks. Oldest offender first — the
  // response action squashes everything younger than the chosen load.
  by_age_.clear();
  for (const auto& [token, o] : outstanding_.entries()) {
    if (thread_flushed(o.tid)) continue;
    const bool triggered = dm_ == DetectionMoment::SpecDelay
                               ? now >= o.issue + trigger_
                               : o.l2_miss_known;
    if (triggered) by_age_.emplace_back(o.issue, token);
  }
  if (by_age_.empty()) return;
  std::sort(by_age_.begin(), by_age_.end());
  fire_.clear();
  for (const auto& [issue, token] : by_age_) fire_.push_back(token);
  for (const std::uint64_t token : fire_) {
    const Outstanding* o = outstanding_.find(token);
    if (o == nullptr) continue;
    const ThreadId tid = o->tid;
    if (thread_flushed(tid)) continue;  // another load already flushed it
    if (ctrl.flush_after_load(token)) {
      flush_token_[tid] = token;
    } else {
      // The load vanished (completed or squashed by an older flush).
      outstanding_.erase(token);
    }
  }
}

}  // namespace mflush
