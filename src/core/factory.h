#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/config.h"
#include "core/fetch_policy.h"

namespace mflush {

/// Declarative description of an IFetch policy, decoupled from the core so
/// workload sweeps can be expressed as data.
struct PolicySpec {
  enum class Kind {
    Icount,
    Brcount,
    MissCount,
    FlushSpec,
    FlushNonSpec,
    Stall,
    Mflush,
  };
  enum class McRegAgg : std::uint8_t { Last, Max, Avg };

  Kind kind = Kind::Icount;
  Cycle trigger = 30;  ///< FL-SX / STALL-SX delay

  // MFLUSH variant knobs (§4.1 extension + ablation).
  std::uint32_t mcreg_history = 1;
  McRegAgg mcreg_agg = McRegAgg::Last;
  bool preventive = true;

  [[nodiscard]] static PolicySpec icount() { return {Kind::Icount, 0}; }
  [[nodiscard]] static PolicySpec brcount() { return {Kind::Brcount, 0}; }
  [[nodiscard]] static PolicySpec misscount() { return {Kind::MissCount, 0}; }
  [[nodiscard]] static PolicySpec flush_spec(Cycle trigger) {
    return {Kind::FlushSpec, trigger};
  }
  [[nodiscard]] static PolicySpec flush_ns() { return {Kind::FlushNonSpec, 0}; }
  [[nodiscard]] static PolicySpec stall(Cycle trigger) {
    return {Kind::Stall, trigger};
  }
  [[nodiscard]] static PolicySpec mflush() { return {Kind::Mflush, 0}; }
  /// §4.1 extension: MCReg history queue of depth `history`, prediction
  /// aggregated with `agg`.
  [[nodiscard]] static PolicySpec mflush_history(std::uint32_t history,
                                                 McRegAgg agg) {
    PolicySpec p{Kind::Mflush, 0};
    p.mcreg_history = history;
    p.mcreg_agg = agg;
    return p;
  }
  /// Ablation: MFLUSH without the Preventive State.
  [[nodiscard]] static PolicySpec mflush_no_preventive() {
    PolicySpec p{Kind::Mflush, 0};
    p.preventive = false;
    return p;
  }

  /// Display name matching the paper's labels (ICOUNT, FLUSH-S30,
  /// FLUSH-NS, STALL-S30, MFLUSH, MFLUSH-H4AVG, MFLUSH-NP, ...).
  [[nodiscard]] std::string label() const;

  /// Parse labels like "icount", "brcount", "l1dmisscount", "flush-s30",
  /// "flush-ns", "stall-s40", "mflush", "mflush-np", "mflush-h4",
  /// "mflush-h4max" (case-insensitive). nullopt on malformed input.
  [[nodiscard]] static std::optional<PolicySpec> parse(std::string_view s);

  bool operator==(const PolicySpec&) const = default;
};

/// Instantiate the policy for one core of an `cfg.num_cores`-core chip.
[[nodiscard]] std::unique_ptr<FetchPolicy> make_policy(const PolicySpec& spec,
                                                       const SimConfig& cfg);

/// One row of the policy registry: the PolicySpec::parse syntax, a parsable
/// example, and what the policy does. This is the single authoritative list
/// behind `mflushsim --list-policies`, kept next to parse()/make_policy so
/// spec files can be authored without reading source.
struct PolicyFamily {
  std::string_view syntax;
  std::string_view example;
  std::string_view description;
};
[[nodiscard]] std::span<const PolicyFamily> policy_families();

}  // namespace mflush
