#pragma once

#include <cstdint>
#include <vector>

#include "common/archive.h"

namespace mflush {

/// Flat token→value table for the policies' outstanding-load tracking.
///
/// The policies touch this on every load lifecycle event and *iterate* it
/// every cycle (the Detection Moment scan); a handful of in-flight loads
/// in a contiguous vector beats a node-based hash map on both. Lookup and
/// erase are linear over the live entries (bounded by the LSQ), erase is
/// swap-with-last. Iteration order is therefore insertion order perturbed
/// by erases — deterministic, and the policies' trigger logic sorts by
/// (issue, token) before acting, so order never influences behaviour.
template <typename T>
class TokenTable {
 public:
  struct Entry {
    std::uint64_t token;
    T value;
  };

  void emplace(std::uint64_t token, const T& value) {
    entries_.push_back(Entry{token, value});
  }

  [[nodiscard]] T* find(std::uint64_t token) noexcept {
    for (Entry& e : entries_)
      if (e.token == token) return &e.value;
    return nullptr;
  }

  void erase(std::uint64_t token) noexcept {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].token == token) {
        entries_[i] = entries_.back();
        entries_.pop_back();
        return;
      }
    }
  }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  void save(ArchiveWriter& ar) const {
    static_assert(std::is_trivially_copyable_v<Entry>);
    ar.put_vec(entries_);
  }
  void load(ArchiveReader& ar) { ar.get_vec(entries_); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace mflush
