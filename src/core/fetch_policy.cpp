#include "core/fetch_policy.h"

#include <algorithm>

namespace mflush {

void icount_order(const CoreView& view,
                  std::array<ThreadId, kMaxContexts>& order) {
  for (std::uint32_t i = 0; i < view.num_threads; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.begin() + view.num_threads,
                   [&view](ThreadId a, ThreadId b) {
                     if (view.icount[a] != view.icount[b])
                       return view.icount[a] < view.icount[b];
                     return a < b;
                   });
}

}  // namespace mflush
