#pragma once

#include <array>
#include <cstdint>

#include "common/types.h"

/// The paper's primary subject: SMT instruction-fetch policies.
///
/// A policy owns two decisions every cycle (§3 of the paper):
///   * the *fetch priority order* of the hardware contexts, and
///   * the *response action* for long-latency loads — flushing or stalling
///     offending threads via the CoreControl interface.
namespace mflush {

class ArchiveReader;
class ArchiveWriter;

/// Upper bound on hardware contexts per core (the paper uses 2).
inline constexpr std::uint32_t kMaxContexts = 8;

/// Per-cycle core state visible to the policy.
struct CoreView {
  /// Instructions in pre-issue stages (fetch..queue) per context — the
  /// ICOUNT metric.
  std::array<std::uint32_t, kMaxContexts> icount{};
  /// Unresolved control instructions per context — the BRCOUNT metric.
  std::array<std::uint32_t, kMaxContexts> brcount{};
  /// Outstanding data-cache misses per context — the L1DMISSCOUNT metric.
  std::array<std::uint32_t, kMaxContexts> misscount{};
  /// Context cannot fetch this cycle (I-cache miss wait or flush wait).
  std::array<bool, kMaxContexts> blocked{};
  std::uint32_t num_threads = 0;
};

/// Control surface the core exposes to its policy (the Response Actions).
class CoreControl {
 public:
  virtual ~CoreControl() = default;

  /// FLUSH RA: squash every instruction of the load's thread younger than
  /// the load, free its resources, and stall the thread's fetch until the
  /// load resolves. Returns false when the load is unknown/already done.
  virtual bool flush_after_load(std::uint64_t mem_token) = 0;

  /// STALL RA: stall the thread's fetch until the load resolves, without
  /// squashing anything.
  virtual bool stall_until_load(std::uint64_t mem_token) = 0;

  /// Preventive gating (MFLUSH's Preventive State): while gated, the
  /// thread fetches nothing but keeps executing what it already holds.
  virtual void set_fetch_gate(ThreadId tid, bool gated) = 0;
};

/// Abstract IFetch policy. Load lifecycle callbacks feed the Detection
/// Moment machinery; fetch_order implements the priority function.
class FetchPolicy {
 public:
  virtual ~FetchPolicy() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Detection-quality counters (false-miss analysis, §3.2 of the paper).
  struct Counters {
    std::uint64_t flushes_on_miss = 0;  ///< offender resolved as L2 miss
    std::uint64_t flushes_on_hit = 0;   ///< offender resolved as L2 hit
                                        ///< ("false miss")
    std::uint64_t flushes_on_l1 = 0;    ///< offender never reached L2 (TLB)
    std::uint64_t stall_events = 0;     ///< STALL response actions
    std::uint64_t gate_cycles = 0;      ///< thread-cycles in Preventive State
  };
  [[nodiscard]] virtual Counters counters() const { return {}; }

  /// Called once per cycle (after issue, before fetch): the place to
  /// trigger flushes/stalls/gates.
  virtual void on_cycle(Cycle /*now*/, CoreControl& /*ctrl*/) {}

  /// Quiescence horizon: the earliest future cycle at which on_cycle might
  /// NOT be an exact no-op (a CoreControl call, or any state or counter
  /// change), given the policy's current state and assuming no
  /// load-lifecycle callback arrives first. A callback invalidates the
  /// horizon — the event kernel re-queries after any tick that delivered
  /// one. Returning `now + 1` means "not quiescent: tick me every cycle";
  /// kNeverCycle means quiescent until a callback. The horizon must be
  /// sound (never later than the first real action) or decoupled-clock
  /// execution diverges from lockstep. Priority-only policies (no on_cycle
  /// override) are quiescent forever.
  [[nodiscard]] virtual Cycle quiescent_until(Cycle /*now*/) const {
    return kNeverCycle;
  }

  /// Snapshot support: serialize/restore the policy's mutable state.
  /// Stateless policies keep the no-op defaults.
  virtual void save_state(ArchiveWriter& /*ar*/) const {}
  virtual void load_state(ArchiveReader& /*ar*/) {}

  /// A load left the load/store queue for the cache hierarchy.
  virtual void on_load_issued(ThreadId /*tid*/, std::uint64_t /*token*/,
                              std::uint32_t /*l2_bank*/, Cycle /*now*/) {}

  /// The load missed in L1 and is on its way to the shared L2 (the moment
  /// MFLUSH reads the bank's MCReg).
  virtual void on_load_l2_path(ThreadId /*tid*/, std::uint64_t /*token*/,
                               std::uint32_t /*bank*/, Cycle /*now*/) {}

  /// The L2 determined the load misses (FL-NS Detection Moment).
  virtual void on_load_l2_miss(ThreadId /*tid*/, std::uint64_t /*token*/,
                               std::uint32_t /*bank*/, Cycle /*now*/) {}

  /// The load's data arrived (from L2 or memory).
  virtual void on_load_resolved(ThreadId /*tid*/, std::uint64_t /*token*/,
                                Cycle /*issue*/, Cycle /*now*/,
                                bool /*l2_accessed*/, bool /*l2_hit*/,
                                std::uint32_t /*bank*/) {}

  /// Confirmation that flush_after_load squashed the thread.
  virtual void on_thread_flushed(ThreadId /*tid*/, std::uint64_t /*token*/) {}

  /// Fill `order[0..num_threads)` with context ids, most preferred first.
  virtual void fetch_order(const CoreView& view,
                           std::array<ThreadId, kMaxContexts>& order) = 0;
};

/// Shared helper: ICOUNT ordering (fewest pre-issue instructions first,
/// ties broken by thread id for determinism).
void icount_order(const CoreView& view,
                  std::array<ThreadId, kMaxContexts>& order);

}  // namespace mflush
