#include "core/mflush.h"

#include <algorithm>
#include <vector>

#include "common/archive.h"

namespace mflush {

MflushPolicy::MflushPolicy(const MflushConfig& cfg) : cfg_(cfg) {
  cfg_.history_len = std::max(1u, cfg_.history_len);
  const auto init = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(cfg_.min_latency, 255));
  mcreg_.resize(cfg_.num_banks);
  for (auto& file : mcreg_) {
    file.samples.assign(cfg_.history_len, init);
    file.valid = 1;  // the MIN seed counts as one observation
  }
}

std::uint8_t MflushPolicy::mcreg(std::uint32_t bank) const {
  const McRegFile& file = mcreg_.at(bank);
  const std::uint32_t n = std::max(1u, file.valid);
  switch (cfg_.aggregate) {
    case MflushConfig::Aggregate::Last: {
      const std::uint32_t last =
          (file.next + static_cast<std::uint32_t>(file.samples.size()) - 1) %
          file.samples.size();
      return file.samples[last];
    }
    case MflushConfig::Aggregate::Max: {
      std::uint8_t best = 0;
      for (std::uint32_t i = 0; i < n; ++i)
        best = std::max(best, file.samples[i]);
      return best;
    }
    case MflushConfig::Aggregate::Avg: {
      std::uint32_t sum = 0;
      for (std::uint32_t i = 0; i < n; ++i) sum += file.samples[i];
      return static_cast<std::uint8_t>(sum / n);
    }
  }
  return file.samples[0];
}

Cycle MflushPolicy::barrier_for_bank(std::uint32_t bank) const {
  const Cycle raw = static_cast<Cycle>(mcreg(bank)) + cfg_.min_latency / 2 +
                    cfg_.mt;
  const Cycle lo = static_cast<Cycle>(cfg_.min_latency) + cfg_.mt;
  const Cycle hi = static_cast<Cycle>(cfg_.max_latency) + cfg_.mt;
  return std::clamp(raw, lo, hi);
}

void MflushPolicy::on_load_issued(ThreadId tid, std::uint64_t token,
                                  std::uint32_t /*l2_bank*/, Cycle now) {
  outstanding_.emplace(token, Outstanding{.tid = tid, .issue = now});
}

void MflushPolicy::on_load_l2_path(ThreadId /*tid*/, std::uint64_t token,
                                   std::uint32_t bank, Cycle /*now*/) {
  Outstanding* o = outstanding_.find(token);
  if (o == nullptr) return;
  o->l2_path = true;
  // Predict the resolution time from the bank's last observed hit latency
  // and derive this access's Barrier (measured from LSQ issue, like every
  // age in the operational environment).
  o->barrier_deadline = o->issue + barrier_for_bank(bank);
}

void MflushPolicy::on_load_resolved(ThreadId tid, std::uint64_t token,
                                    Cycle issue, Cycle now, bool l2_accessed,
                                    bool l2_hit, std::uint32_t bank) {
  if (l2_accessed && l2_hit) {
    // Train the MCReg with the observed hit latency (8-bit saturating).
    const Cycle lat = now - issue;
    McRegFile& file = mcreg_[bank];
    file.samples[file.next] =
        static_cast<std::uint8_t>(std::min<Cycle>(lat, 255));
    file.next = (file.next + 1) % file.samples.size();
    file.valid = std::min<std::uint32_t>(
        file.valid + 1, static_cast<std::uint32_t>(file.samples.size()));
  }
  outstanding_.erase(token);
  if (flush_token_[tid] == token) {
    flush_token_[tid] = 0;
    if (!l2_accessed)
      ++counters_.flushes_on_l1;
    else if (l2_hit)
      ++counters_.flushes_on_hit;  // false miss
    else
      ++counters_.flushes_on_miss;
  }
}

Cycle MflushPolicy::quiescent_until(Cycle now) const {
  for (const bool g : gated_)
    if (g) return now + 1;  // gate_cycles accrues / gate must be re-evaluated
  Cycle h = kNeverCycle;
  const Cycle threshold = cfg_.preventive_threshold();
  for (const auto& [token, o] : outstanding_.entries()) {
    if (!o.l2_path) continue;  // participates only after the MCReg read
    if (flush_token_[o.tid] != 0) continue;  // waits on resolution
    h = std::min(h, o.barrier_deadline + 1);  // FLUSH fires past the Barrier
    if (cfg_.enable_preventive)
      h = std::min(h, o.issue + threshold + 1);  // becomes suspicious
  }
  return h > now ? h : now + 1;
}

void MflushPolicy::save_state(ArchiveWriter& ar) const {
  for (const McRegFile& file : mcreg_) {
    ar.put_vec(file.samples);
    ar.put(file.next);
    ar.put(file.valid);
  }
  outstanding_.save(ar);
  ar.put(flush_token_);
  ar.put(gated_);
  ar.put(counters_);
}

void MflushPolicy::load_state(ArchiveReader& ar) {
  for (McRegFile& file : mcreg_) {
    ar.get_vec(file.samples);
    file.next = ar.get<std::uint32_t>();
    file.valid = ar.get<std::uint32_t>();
  }
  outstanding_.load(ar);
  flush_token_ = ar.get<decltype(flush_token_)>();
  gated_ = ar.get<decltype(gated_)>();
  counters_ = ar.get<Counters>();
}

void MflushPolicy::on_cycle(Cycle now, CoreControl& ctrl) {
  std::array<bool, kMaxContexts> suspicious{};
  by_age_.clear();

  const Cycle prev_threshold = cfg_.preventive_threshold();
  for (const auto& [token, o] : outstanding_.entries()) {
    if (!o.l2_path) continue;  // only L2 accesses participate (Fig. 6)
    const Cycle age = now - o.issue;
    if (now > o.barrier_deadline && flush_token_[o.tid] == 0) {
      by_age_.emplace_back(o.issue, token);
    } else if (age > prev_threshold) {
      suspicious[o.tid] = true;
    }
  }
  std::sort(by_age_.begin(), by_age_.end());
  fire_.clear();
  for (const auto& [issue, token] : by_age_) fire_.push_back(token);

  for (const std::uint64_t token : fire_) {
    const Outstanding* o = outstanding_.find(token);
    if (o == nullptr) continue;
    const ThreadId tid = o->tid;
    if (flush_token_[tid] != 0) continue;
    if (ctrl.flush_after_load(token)) {
      flush_token_[tid] = token;
    } else {
      outstanding_.erase(token);
    }
  }

  // Preventive State: gate fetch for threads with suspicious accesses.
  // Flushed threads are already fetch-stalled by the core.
  for (ThreadId t = 0; t < kMaxContexts; ++t) {
    const bool want =
        cfg_.enable_preventive && suspicious[t] && flush_token_[t] == 0;
    if (want) ++counters_.gate_cycles;
    if (want != gated_[t]) {
      ctrl.set_fetch_gate(t, want);
      gated_[t] = want;
    }
  }
}

}  // namespace mflush
