#include "core/factory.h"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "core/counts.h"
#include "core/flush.h"
#include "core/icount.h"
#include "core/mflush.h"
#include "core/stall.h"

namespace mflush {

std::string PolicySpec::label() const {
  switch (kind) {
    case Kind::Icount: return "ICOUNT";
    case Kind::Brcount: return "BRCOUNT";
    case Kind::MissCount: return "L1DMISSCOUNT";
    case Kind::FlushSpec: return "FLUSH-S" + std::to_string(trigger);
    case Kind::FlushNonSpec: return "FLUSH-NS";
    case Kind::Stall: return "STALL-S" + std::to_string(trigger);
    case Kind::Mflush: {
      std::string s = "MFLUSH";
      if (mcreg_history > 1) {
        s += "-H" + std::to_string(mcreg_history);
        if (mcreg_agg == McRegAgg::Max) s += "MAX";
        if (mcreg_agg == McRegAgg::Avg) s += "AVG";
      }
      if (!preventive) s += "-NP";
      return s;
    }
  }
  return "?";
}

std::optional<PolicySpec> PolicySpec::parse(std::string_view s) {
  std::string lower(s);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "icount") return icount();
  if (lower == "brcount") return brcount();
  if (lower == "l1dmisscount" || lower == "misscount") return misscount();
  if (lower == "mflush") return mflush();
  if (lower == "mflush-np") return mflush_no_preventive();
  if (lower == "flush-ns") return flush_ns();

  auto parse_number = [](std::string_view tail) -> std::optional<Cycle> {
    Cycle v = 0;
    const auto [ptr, ec] =
        std::from_chars(tail.data(), tail.data() + tail.size(), v);
    if (ec != std::errc{} || ptr != tail.data() + tail.size() || v == 0)
      return std::nullopt;
    return v;
  };

  if (lower.starts_with("mflush-h")) {
    std::string_view tail = std::string_view(lower).substr(8);
    // Mirror label() exactly so every label round-trips through parse():
    // optional trailing "-np", then the aggregation suffix (none = Last),
    // then the history depth.
    bool preventive = true;
    if (tail.ends_with("-np")) {
      preventive = false;
      tail.remove_suffix(3);
    }
    McRegAgg agg = McRegAgg::Last;
    if (tail.ends_with("max")) {
      agg = McRegAgg::Max;
      tail.remove_suffix(3);
    } else if (tail.ends_with("avg")) {
      agg = McRegAgg::Avg;
      tail.remove_suffix(3);
    }
    if (const auto h = parse_number(tail)) {
      PolicySpec p = mflush_history(static_cast<std::uint32_t>(*h), agg);
      p.preventive = preventive;
      return p;
    }
    return std::nullopt;
  }
  if (lower.starts_with("flush-s")) {
    if (const auto t = parse_number(std::string_view(lower).substr(7)))
      return flush_spec(*t);
    return std::nullopt;
  }
  if (lower.starts_with("stall-s")) {
    if (const auto t = parse_number(std::string_view(lower).substr(7)))
      return stall(*t);
    return std::nullopt;
  }
  return std::nullopt;
}

std::unique_ptr<FetchPolicy> make_policy(const PolicySpec& spec,
                                         const SimConfig& cfg) {
  switch (spec.kind) {
    case PolicySpec::Kind::Icount:
      return std::make_unique<IcountPolicy>();
    case PolicySpec::Kind::Brcount:
      return std::make_unique<BrcountPolicy>();
    case PolicySpec::Kind::MissCount:
      return std::make_unique<L1DMissCountPolicy>();
    case PolicySpec::Kind::FlushSpec:
      return std::make_unique<FlushPolicy>(
          FlushPolicy::DetectionMoment::SpecDelay, spec.trigger);
    case PolicySpec::Kind::FlushNonSpec:
      return std::make_unique<FlushPolicy>(
          FlushPolicy::DetectionMoment::NonSpec, 0);
    case PolicySpec::Kind::Stall:
      return std::make_unique<StallPolicy>(spec.trigger);
    case PolicySpec::Kind::Mflush: {
      MflushConfig mc;
      mc.min_latency = cfg.mem.min_l2_roundtrip();
      mc.max_latency = cfg.mem.max_l2_roundtrip();
      mc.mt = cfg.mem.multicore_traffic(cfg.num_cores);
      mc.num_banks = cfg.mem.l2_banks;
      mc.history_len = spec.mcreg_history;
      switch (spec.mcreg_agg) {
        case PolicySpec::McRegAgg::Last:
          mc.aggregate = MflushConfig::Aggregate::Last;
          break;
        case PolicySpec::McRegAgg::Max:
          mc.aggregate = MflushConfig::Aggregate::Max;
          break;
        case PolicySpec::McRegAgg::Avg:
          mc.aggregate = MflushConfig::Aggregate::Avg;
          break;
      }
      mc.enable_preventive = spec.preventive;
      return std::make_unique<MflushPolicy>(mc);
    }
  }
  return nullptr;
}

std::span<const PolicyFamily> policy_families() {
  static constexpr PolicyFamily kFamilies[] = {
      {"icount", "icount",
       "ICOUNT priority fetch (fewest in-flight instructions first)"},
      {"brcount", "brcount",
       "priority by fewest unresolved branches in flight"},
      {"l1dmisscount", "l1dmisscount",
       "priority by fewest outstanding L1D misses"},
      {"flush-s<N>", "flush-s30",
       "speculative FLUSH: squash a thread whose load is outstanding "
       "longer than N cycles"},
      {"flush-ns", "flush-ns",
       "non-speculative FLUSH: squash only on a confirmed L2 miss"},
      {"stall-s<N>", "stall-s30",
       "STALL response: gate fetch (no squash) after N outstanding cycles"},
      {"mflush", "mflush",
       "the paper's MFLUSH: per-bank Barrier deadline + Preventive State"},
      {"mflush-np", "mflush-np", "MFLUSH ablation without Preventive State"},
      {"mflush-h<N>[max|avg]", "mflush-h4avg",
       "MFLUSH with an MCReg history queue of depth N, aggregated by "
       "last/max/avg (section 4.1 extension)"},
  };
  return kFamilies;
}

}  // namespace mflush
