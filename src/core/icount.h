#pragma once

#include "core/fetch_policy.h"

namespace mflush {

/// ICOUNT (Tullsen et al., ISCA-23): fetch priority to the thread with the
/// fewest instructions in the pre-issue stages. No response action — a
/// thread blocked on an L2 miss keeps its resources (the pathology FLUSH
/// and MFLUSH address).
class IcountPolicy final : public FetchPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "ICOUNT"; }

  void fetch_order(const CoreView& view,
                   std::array<ThreadId, kMaxContexts>& order) override {
    icount_order(view, order);
  }
};

}  // namespace mflush
