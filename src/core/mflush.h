#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/fetch_policy.h"
#include "core/token_table.h"

namespace mflush {

/// Static parameters of the MFLUSH operational environment (Fig. 6).
struct MflushConfig {
  /// MIN: unloaded L2 hit round trip (L1 lat + bus + bank = 22 cycles).
  std::uint32_t min_latency = 22;
  /// MAX: L2 miss resolution (MIN + memory latency).
  std::uint32_t max_latency = 272;
  /// MT = (bus_delay + bank_access_delay) * (num_cores - 1).
  std::uint32_t mt = 0;
  /// Number of shared L2 banks (one MCReg per bank per core).
  std::uint32_t num_banks = 4;

  /// §4.1 extension: "The MCReg registers admit more complex
  /// configurations, involving queues (history length > 1) and more
  /// complex functions to determine the prediction from all queue
  /// entries." The paper evaluates history 1; >1 keeps the last N hit
  /// latencies per bank and predicts with `aggregate`.
  enum class Aggregate : std::uint8_t { Last, Max, Avg };
  std::uint32_t history_len = 1;
  Aggregate aggregate = Aggregate::Last;

  /// Ablation: disable the Preventive State (pure barrier-triggered
  /// flushing).
  bool enable_preventive = true;

  /// Suspicious threshold: accesses outstanding longer than MIN + MT.
  [[nodiscard]] Cycle preventive_threshold() const noexcept {
    return min_latency + mt;
  }
};

/// MFLUSH (the paper's contribution, §4): adaptive FLUSH for CMP+SMT.
///
/// Hardware support (§4.1): one 8-bit MCReg per L2 bank holding the
/// issue→served latency of the last L2 *hit* to that bank, read on every L1
/// miss to predict the access's resolution time.
///
/// Operational environment (Fig. 6):
///   BARRIER   = MCReg[bank] + MIN/2 + MT      (clamped to [MIN+MT, MAX+MT])
///   suspicious: outstanding  > MIN + MT  → Preventive State (fetch gated,
///               thread keeps executing — the STALL philosophy)
///   resolved before Barrier → leave Preventive State
///   outstanding > Barrier   → trigger the FLUSH mechanism
class MflushPolicy final : public FetchPolicy {
 public:
  explicit MflushPolicy(const MflushConfig& cfg);

  [[nodiscard]] const char* name() const noexcept override { return "MFLUSH"; }

  void on_cycle(Cycle now, CoreControl& ctrl) override;
  void on_load_issued(ThreadId tid, std::uint64_t token,
                      std::uint32_t l2_bank, Cycle now) override;
  void on_load_l2_path(ThreadId tid, std::uint64_t token, std::uint32_t bank,
                       Cycle now) override;
  void on_load_resolved(ThreadId tid, std::uint64_t token, Cycle issue,
                        Cycle now, bool l2_accessed, bool l2_hit,
                        std::uint32_t bank) override;

  void fetch_order(const CoreView& view,
                   std::array<ThreadId, kMaxContexts>& order) override {
    icount_order(view, order);
  }

  /// Current MCReg prediction for a bank (tests/reports): the aggregate
  /// over the bank's history queue.
  [[nodiscard]] std::uint8_t mcreg(std::uint32_t bank) const;
  [[nodiscard]] const MflushConfig& config() const noexcept { return cfg_; }

  /// The Barrier a load entering `bank`'s queue would receive right now.
  [[nodiscard]] Cycle barrier_for_bank(std::uint32_t bank) const;

  [[nodiscard]] Counters counters() const override { return counters_; }

  /// on_cycle fires barriers, evaluates suspicion, and accounts
  /// Preventive-State cycles. An armed fetch gate pins the heartbeat to
  /// every cycle (gate_cycles accrues per tick); otherwise the horizon is
  /// the earliest Barrier firing or suspicious-threshold crossing among
  /// tracked L2-path loads of unflushed threads.
  [[nodiscard]] Cycle quiescent_until(Cycle now) const override;
  void save_state(ArchiveWriter& ar) const override;
  void load_state(ArchiveReader& ar) override;

  /// Public (and with explicit padding) because outstanding_ entries are
  /// serialized by raw memcpy inside TokenTable: the layout is part of the
  /// snapshot format, and the lint's layout probe must be able to
  /// offsetof it.
  struct Outstanding {
    ThreadId tid = 0;
    std::uint8_t _pad0[4] = {};  ///< explicit padding: canonical bytes
    Cycle issue = 0;
    Cycle barrier_deadline = kNeverCycle;  ///< set once the load is L2-bound
    bool l2_path = false;
    std::uint8_t _pad1[7] = {};  ///< explicit tail padding
  };

 private:
  /// Per-bank MCReg history: a ring of the last `history_len` observed
  /// L2 hit latencies (history_len == 1 reproduces the paper's register).
  struct McRegFile {
    std::vector<std::uint8_t> samples;  ///< ring, oldest overwritten
    std::uint32_t next = 0;
    std::uint32_t valid = 0;
  };

  MflushConfig cfg_;  // lint: transient — ctor config
  std::vector<McRegFile> mcreg_;
  TokenTable<Outstanding> outstanding_;
  std::array<std::uint64_t, kMaxContexts> flush_token_{};
  std::array<bool, kMaxContexts> gated_{};
  Counters counters_{};
  // per-cycle scratch (kept across cycles so on_cycle never allocates)
  // lint: transient — per-cycle scratch, cleared at each use
  std::vector<std::pair<Cycle, std::uint64_t>> by_age_;
  // lint: transient — per-cycle scratch, cleared at each use
  std::vector<std::uint64_t> fire_;
};

}  // namespace mflush
