#pragma once

#include <algorithm>

#include "core/fetch_policy.h"

/// The other counting fetch heuristics of Tullsen et al. (ISCA-23), which
/// the ADTS work the paper discusses in §5 switches among: BRCOUNT and
/// (L1D)MISSCOUNT. Like ICOUNT they are priority-only policies with no
/// response action.
namespace mflush {

/// BRCOUNT: favour the thread with the fewest unresolved branches (least
/// speculative fetch path).
class BrcountPolicy final : public FetchPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "BRCOUNT";
  }

  void fetch_order(const CoreView& view,
                   std::array<ThreadId, kMaxContexts>& order) override {
    for (std::uint32_t i = 0; i < view.num_threads; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.begin() + view.num_threads,
                     [&view](ThreadId a, ThreadId b) {
                       if (view.brcount[a] != view.brcount[b])
                         return view.brcount[a] < view.brcount[b];
                       if (view.icount[a] != view.icount[b])
                         return view.icount[a] < view.icount[b];
                       return a < b;
                     });
  }
};

/// L1DMISSCOUNT: favour the thread with the fewest outstanding D-cache
/// misses (the crudest long-latency-load awareness).
class L1DMissCountPolicy final : public FetchPolicy {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "L1DMISSCOUNT";
  }

  void fetch_order(const CoreView& view,
                   std::array<ThreadId, kMaxContexts>& order) override {
    for (std::uint32_t i = 0; i < view.num_threads; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.begin() + view.num_threads,
                     [&view](ThreadId a, ThreadId b) {
                       if (view.misscount[a] != view.misscount[b])
                         return view.misscount[a] < view.misscount[b];
                       if (view.icount[a] != view.icount[b])
                         return view.icount[a] < view.icount[b];
                       return a < b;
                     });
  }
};

}  // namespace mflush
