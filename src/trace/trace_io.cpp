#include "trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace mflush {
namespace {

struct Record {
  std::uint64_t pc;
  std::uint64_t eff_addr;
  std::uint64_t target;
  std::uint8_t cls;
  std::uint8_t dst;
  std::uint8_t src0;
  std::uint8_t src1;
  std::uint8_t taken;
  std::uint8_t pad[3];
};
static_assert(sizeof(Record) == 32, "trace record layout");

}  // namespace

void write_trace(const std::string& path, std::span<const TraceInstr> instrs) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace for write: " + path);
  const std::uint32_t magic = kTraceMagic;
  const std::uint32_t version = kTraceVersion;
  const std::uint64_t count = instrs.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const auto& ins : instrs) {
    Record r{};
    r.pc = ins.pc;
    r.eff_addr = ins.eff_addr;
    r.target = ins.target;
    r.cls = static_cast<std::uint8_t>(ins.cls);
    r.dst = ins.dst;
    r.src0 = ins.src[0];
    r.src1 = ins.src[1];
    r.taken = ins.taken ? 1 : 0;
    out.write(reinterpret_cast<const char*>(&r), sizeof r);
  }
  if (!out) throw std::runtime_error("trace write failed: " + path);
}

std::vector<TraceInstr> read_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace for read: " + path);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || magic != kTraceMagic)
    throw std::runtime_error("bad trace magic: " + path);
  if (version != kTraceVersion)
    throw std::runtime_error("unsupported trace version: " + path);
  std::vector<TraceInstr> v;
  v.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Record r{};
    in.read(reinterpret_cast<char*>(&r), sizeof r);
    if (!in) throw std::runtime_error("truncated trace: " + path);
    TraceInstr ins;
    ins.pc = r.pc;
    ins.eff_addr = r.eff_addr;
    ins.target = r.target;
    ins.cls = static_cast<InstrClass>(r.cls);
    ins.dst = r.dst;
    ins.src[0] = r.src0;
    ins.src[1] = r.src1;
    ins.taken = r.taken != 0;
    v.push_back(ins);
  }
  return v;
}

VectorTraceSource::VectorTraceSource(std::vector<TraceInstr> instrs,
                                     std::string name)
    : instrs_(std::move(instrs)), name_(std::move(name)) {
  if (instrs_.empty())
    throw std::invalid_argument("VectorTraceSource: empty trace");
}

const TraceInstr& VectorTraceSource::at(SeqNo seq) {
  return instrs_[seq % instrs_.size()];
}

}  // namespace mflush
