#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/archive.h"
#include "common/rng.h"
#include "trace/instr.h"
#include "trace/profile.h"

namespace mflush {

/// Deterministic synthetic instruction stream for one thread.
///
/// A (profile, seed, space_id) triple fully determines the stream. The
/// source keeps a power-of-two ring of recently generated instructions so
/// consumers can re-read (FLUSH re-fetch) anything newer than the retire
/// point; `window` must be at least the core's maximum in-flight span
/// (SimConfig::rewind_window()).
///
/// Address-space layout (per thread, salted by `space_id` in the high bits
/// so threads never share lines):
///   code    [0x0040'0000, +icache_lines*64)
///   hot     [0x1000'0000, +hot_lines*64)      — L1-resident
///   l2      [0x2000'0000, +l2_lines*64)       — fits (a share of) L2
///   mem     [0x4000'0000, +mem_lines*64)      — exceeds L2
///   stream  [0x8000'0000, +stream_lines*64)   — sequential sweep
class SyntheticTraceSource final : public TraceSource {
 public:
  SyntheticTraceSource(BenchmarkProfile profile, std::uint64_t seed,
                       std::uint32_t window, std::uint64_t space_id = 0);

  [[nodiscard]] const TraceInstr& at(SeqNo seq) override;
  void retire_up_to(SeqNo seq) override;
  [[nodiscard]] const char* name() const noexcept override {
    return profile_.name.c_str();
  }

  [[nodiscard]] SeqNo generated() const noexcept { return next_seq_; }
  [[nodiscard]] const BenchmarkProfile& profile() const noexcept {
    return profile_;
  }

  /// The thread's data/code regions (cache prewarming, tests).
  struct Regions {
    Addr code_base;
    std::uint32_t code_lines;
    Addr hot_base;
    std::uint32_t hot_lines;
    Addr l2_base;
    std::uint32_t l2_lines;
  };
  [[nodiscard]] Regions regions() const noexcept {
    return Regions{code_base_, profile_.icache_lines,
                   hot_base_,  profile_.hot_lines,
                   l2_base_,   profile_.l2_lines};
  }

  /// Snapshot support: serialize/restore the stream's mutable state (the
  /// profile and address-space layout are reconstruction-time constants).
  void save_state(ArchiveWriter& ar) const;
  void load_state(ArchiveReader& ar);

 private:
  void generate_next();
  [[nodiscard]] InstrClass class_at(Addr pc) const noexcept;
  [[nodiscard]] Addr pick_data_addr(bool& out_is_stream);
  [[nodiscard]] Addr branch_target(Addr pc);
  [[nodiscard]] bool branch_outcome(Addr pc);
  [[nodiscard]] LogReg alloc_int_dst(std::uint32_t strand) noexcept;
  [[nodiscard]] LogReg alloc_fp_dst(std::uint32_t strand) noexcept;
  [[nodiscard]] LogReg strand_int_src(std::uint32_t strand) noexcept;
  [[nodiscard]] LogReg strand_fp_src(std::uint32_t strand) noexcept;
  [[nodiscard]] LogReg old_int_src() noexcept;
  [[nodiscard]] LogReg old_fp_src() noexcept;
  [[nodiscard]] std::uint32_t pick_strand() noexcept;

  BenchmarkProfile profile_;
  Xoshiro256 rng_;
  std::uint64_t site_salt_;  ///< per-source salt for branch-site hashing

  Addr code_base_;
  Addr code_bytes_;
  Addr hot_base_;
  Addr l2_base_;
  Addr mem_base_;
  Addr stream_base_;

  Addr pc_;
  std::uint64_t stream_cursor_ = 0;

  /// Strand-based register model: the 32 int (and 32 fp) logical registers
  /// are partitioned into `strands` groups; each instruction extends one
  /// strand (reads the strand's last value, writes the strand's next reg),
  /// so the dependency graph is `strands` mostly-independent chains.
  static constexpr std::uint32_t kMaxStrands = 8;
  std::uint32_t num_strands_ = 4;
  std::array<std::uint8_t, kMaxStrands> int_cursor_{};   ///< per-strand
  std::array<std::uint8_t, kMaxStrands> fp_cursor_{};
  std::array<LogReg, kMaxStrands> int_last_{};  ///< last dst per strand
  std::array<LogReg, kMaxStrands> fp_last_{};
  std::array<LogReg, kMaxStrands> load_last_{};  ///< last load dst per strand
  std::uint32_t cur_strand_ = 0;

  /// Per-branch-site loop-pattern position, indexed by a pc hash.
  static constexpr std::size_t kSiteTable = 16384;
  std::vector<std::uint16_t> site_pos_;

  /// Shadow call stack so Return targets are architecturally consistent.
  static constexpr std::size_t kShadowStack = 64;
  std::vector<Addr> shadow_stack_;

  // Ring of generated instructions.
  std::vector<TraceInstr> ring_;
  std::uint64_t ring_mask_;
  SeqNo next_seq_ = 0;
  SeqNo retire_point_ = 0;
};

}  // namespace mflush
