#include "trace/generator.h"

#include <bit>
#include <cassert>

namespace mflush {
namespace {

constexpr Addr kCodeBase = 0x0040'0000;
constexpr Addr kHotBase = 0x1000'0000;
constexpr Addr kL2Base = 0x2000'0000;
constexpr Addr kMemBase = 0x4000'0000;
constexpr Addr kStreamBase = 0x8000'0000;

/// Stateless 64-bit mix for per-site deterministic decisions.
constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

SyntheticTraceSource::SyntheticTraceSource(BenchmarkProfile profile,
                                           std::uint64_t seed,
                                           std::uint32_t window,
                                           std::uint64_t space_id)
    : profile_(profile.normalized()),
      rng_(derive_seed(seed, 0x74726163 /*"trac"*/, space_id)),
      site_salt_(derive_seed(seed, 0x73697465 /*"site"*/, space_id)),
      site_pos_(kSiteTable, 0) {
  num_strands_ = profile_.strands;
  int_last_.fill(kNoLogReg);
  fp_last_.fill(kNoLogReg);
  load_last_.fill(kNoLogReg);

  const Addr salt = (space_id + 1) << 40;  // private address space per thread
  code_bytes_ = static_cast<Addr>(profile_.icache_lines) * 64;
  code_base_ = salt | kCodeBase;
  hot_base_ = salt | kHotBase;
  l2_base_ = salt | kL2Base;
  mem_base_ = salt | kMemBase;
  stream_base_ = salt | kStreamBase;
  pc_ = code_base_;
  shadow_stack_.reserve(kShadowStack);

  const std::uint64_t cap = std::bit_ceil<std::uint64_t>(
      static_cast<std::uint64_t>(window) * 2 + 64);
  ring_.resize(cap);
  ring_mask_ = cap - 1;
}

void SyntheticTraceSource::save_state(ArchiveWriter& ar) const {
  ar.put(rng_.state());
  ar.put(pc_);
  ar.put(stream_cursor_);
  ar.put(int_cursor_);
  ar.put(fp_cursor_);
  ar.put(int_last_);
  ar.put(fp_last_);
  ar.put(load_last_);
  ar.put(cur_strand_);
  ar.put_vec(site_pos_);
  ar.put_vec(shadow_stack_);
  ar.put_vec(ring_);
  ar.put(next_seq_);
  ar.put(retire_point_);
}

void SyntheticTraceSource::load_state(ArchiveReader& ar) {
  rng_.set_state(ar.get<std::array<std::uint64_t, 4>>());
  pc_ = ar.get<Addr>();
  stream_cursor_ = ar.get<std::uint64_t>();
  int_cursor_ = ar.get<decltype(int_cursor_)>();
  fp_cursor_ = ar.get<decltype(fp_cursor_)>();
  int_last_ = ar.get<decltype(int_last_)>();
  fp_last_ = ar.get<decltype(fp_last_)>();
  load_last_ = ar.get<decltype(load_last_)>();
  cur_strand_ = ar.get<std::uint32_t>();
  ar.get_vec(site_pos_);
  ar.get_vec(shadow_stack_);
  ar.get_vec(ring_);
  next_seq_ = ar.get<SeqNo>();
  retire_point_ = ar.get<SeqNo>();
}

const TraceInstr& SyntheticTraceSource::at(SeqNo seq) {
  assert(seq >= retire_point_ && "request below retire point");
  while (seq >= next_seq_) generate_next();
  assert(next_seq_ - seq <= ring_.size() && "request fell out of the ring");
  return ring_[seq & ring_mask_];
}

void SyntheticTraceSource::retire_up_to(SeqNo seq) {
  retire_point_ = std::max(retire_point_, seq);
}

std::uint32_t SyntheticTraceSource::pick_strand() noexcept {
  // Instructions interleave across strands; a short run (2-3 ops) per
  // strand mimics scheduled code without serializing it.
  if (rng_.next_below(100) < 40)
    cur_strand_ = static_cast<std::uint32_t>(rng_.next_below(num_strands_));
  return cur_strand_;
}

LogReg SyntheticTraceSource::alloc_int_dst(std::uint32_t strand) noexcept {
  const std::uint32_t group = 32 / num_strands_;
  const LogReg r = static_cast<LogReg>(strand * group +
                                       int_cursor_[strand] % group);
  int_cursor_[strand] = static_cast<std::uint8_t>(int_cursor_[strand] + 1);
  int_last_[strand] = r;
  return r;
}

LogReg SyntheticTraceSource::alloc_fp_dst(std::uint32_t strand) noexcept {
  const std::uint32_t group = 32 / num_strands_;
  const LogReg r = static_cast<LogReg>(32 + strand * group +
                                       fp_cursor_[strand] % group);
  fp_cursor_[strand] = static_cast<std::uint8_t>(fp_cursor_[strand] + 1);
  fp_last_[strand] = r;
  return r;
}

LogReg SyntheticTraceSource::strand_int_src(std::uint32_t strand) noexcept {
  return int_last_[strand] != kNoLogReg ? int_last_[strand]
                                        : old_int_src();
}

LogReg SyntheticTraceSource::strand_fp_src(std::uint32_t strand) noexcept {
  return fp_last_[strand] != kNoLogReg ? fp_last_[strand] : old_fp_src();
}

LogReg SyntheticTraceSource::old_int_src() noexcept {
  // Long-lived value (loop invariant, stack/global pointer): any register;
  // it was written long ago with high probability, so it is almost always
  // available.
  return static_cast<LogReg>(rng_.next_below(32));
}

LogReg SyntheticTraceSource::old_fp_src() noexcept {
  return static_cast<LogReg>(32 + rng_.next_below(32));
}

Addr SyntheticTraceSource::pick_data_addr(bool& out_is_stream) {
  out_is_stream = false;
  if (rng_.chance(profile_.p_stream)) {
    out_is_stream = true;
    const Addr span = static_cast<Addr>(profile_.stream_lines) * 64;
    const Addr a = stream_base_ + (stream_cursor_ % span);
    stream_cursor_ += 8;
    return a;
  }
  const double r = rng_.next_double();
  if (r < profile_.p_mem) {
    const Addr line = rng_.next_below(profile_.mem_lines);
    return mem_base_ + line * 64 + rng_.next_below(8) * 8;
  }
  if (r < profile_.p_mem + profile_.p_l2) {
    const Addr line = rng_.next_below(profile_.l2_lines);
    return l2_base_ + line * 64 + rng_.next_below(8) * 8;
  }
  const Addr line = rng_.next_below(profile_.hot_lines);
  return hot_base_ + line * 64 + rng_.next_below(8) * 8;
}

// Control-flow model: real code is loop-structured. Every branch pc is
// deterministically one of:
//   * a BACKEDGE site (~30%): jumps a short distance backward and is taken
//     (period-1)/period of the time — a loop. The walk re-executes the same
//     pcs, so the BTB/predictor capture it, as they do on real workloads.
//   * a FORWARD site: a mostly-not-taken conditional whose taken target is
//     a short forward hop (if/else skip), staying inside the current loop.
//   * rarely (~1.5%), a FAR site: a long jump that re-seats the hot region
//     (phase change).
// Profile knobs: predictability = fraction of sites following a learnable
// periodic pattern (others are Bernoulli noise); pattern_period scales loop
// trip counts; mean_bb_len scales body/hop sizes.

namespace {
enum class SiteKind { Backedge, Forward, Far };
}

Addr SyntheticTraceSource::branch_target(Addr pc) {
  const std::uint64_t h = mix(pc ^ site_salt_);
  const std::uint64_t sel = h % 1000;
  const Addr bb = static_cast<Addr>(profile_.mean_bb_len);
  Addr rel = pc - code_base_;
  if (sel < 15) {  // far jump
    rel = ((h >> 16) % code_bytes_) & ~Addr{3};
  } else if (sel < 315) {  // backedge: body of ~0.5..3.5 mean basic blocks
    const Addr off = 4 * (bb / 2 + 1 + ((h >> 8) % (bb * 3)));
    rel = rel >= off ? rel - off : 0;
  } else {  // forward hop: skip 2..2*bb instructions
    const Addr off = 4 * (2 + ((h >> 8) % (2 * bb)));
    rel = (rel + off) % code_bytes_;
  }
  return code_base_ + (rel & ~Addr{3});
}

bool SyntheticTraceSource::branch_outcome(Addr pc) {
  const std::uint64_t h = mix(pc ^ site_salt_);
  const std::uint64_t sel = h % 1000;
  const std::uint64_t h2 = mix(pc ^ site_salt_ ^ 0x5a5a5a5a);
  const bool pattern_site =
      (static_cast<double>(h2 & 0xffff) / 65536.0) < profile_.predictability;
  const std::uint32_t period =
      2 + static_cast<std::uint32_t>((h2 >> 16) %
                                     (2 * profile_.pattern_period));
  auto& pos = site_pos_[(pc >> 2) & (kSiteTable - 1)];

  if (sel < 15) {
    // Far sites: rarely taken (phase changes).
    return rng_.chance(0.04);
  }
  if (sel < 315) {
    // Backedge: taken (period-1) of period executions (loop trip count).
    if (!pattern_site) return rng_.chance(0.85);
    const bool taken = (pos % period) != (period - 1);
    pos = static_cast<std::uint16_t>((pos + 1) % period);
    return taken;
  }
  // Forward conditional: mostly falls through; pattern sites fire once per
  // period, noisy sites with (1 - taken_bias) scaled down.
  if (!pattern_site) return rng_.chance(0.5 * (1.0 - profile_.taken_bias));
  const bool taken = (pos % period) == (period - 1);
  pos = static_cast<std::uint16_t>((pos + 1) % period);
  return taken;
}

InstrClass SyntheticTraceSource::class_at(Addr pc) const noexcept {
  // The code is STATIC: a given pc is always the same kind of instruction
  // (like the paper's basic-block dictionary of all static instructions).
  // Class thresholds follow the profile mix; operands/addresses still vary
  // per dynamic visit.
  const std::uint64_t h = mix(pc ^ site_salt_ ^ 0xc1a55);
  const double u = static_cast<double>(h & 0xffffff) / double(1 << 24);
  const BenchmarkProfile& p = profile_;
  double acc = p.f_load;
  if (u < acc) return InstrClass::Load;
  acc += p.f_store;
  if (u < acc) return InstrClass::Store;
  acc += p.f_branch;
  if (u < acc) return InstrClass::Branch;
  acc += p.f_call_ret / 2;
  if (u < acc) return InstrClass::Call;
  acc += p.f_call_ret / 2;
  if (u < acc) return InstrClass::Return;
  const double v = static_cast<double>((h >> 24) & 0xffff) / double(1 << 16);
  const double w = static_cast<double>((h >> 40) & 0xffff) / double(1 << 16);
  if (v < p.f_fp)
    return w < p.f_mul ? InstrClass::FpMul : InstrClass::FpAlu;
  return w < p.f_mul ? InstrClass::IntMul : InstrClass::IntAlu;
}

void SyntheticTraceSource::generate_next() {
  TraceInstr ins;
  ins.pc = pc_;
  ins.cls = class_at(pc_);

  const BenchmarkProfile& p = profile_;
  Addr next_pc = pc_ + 4;
  const std::uint32_t k = pick_strand();

  switch (ins.cls) {
    case InstrClass::Load: {
      bool is_stream = false;
      ins.eff_addr = pick_data_addr(is_stream);
      // Address register: pointer chase makes the address depend on the
      // strand's previous load result, serializing that strand's misses.
      if (!is_stream && load_last_[k] != kNoLogReg && rng_.chance(p.p_chase)) {
        ins.src[0] = load_last_[k];
      } else {
        ins.src[0] = old_int_src();  // base pointer: long-lived
      }
      ins.dst = alloc_int_dst(k);
      load_last_[k] = ins.dst;
      break;
    }
    case InstrClass::Store: {
      bool is_stream = false;
      ins.eff_addr = pick_data_addr(is_stream);
      ins.src[0] = old_int_src();  // address: long-lived base
      ins.src[1] = rng_.chance(p.f_fp) ? strand_fp_src(k) : strand_int_src(k);
      break;
    }
    case InstrClass::Branch: {
      // Loop branches test recently computed values (induction variables)
      // of their own strand, so they resolve as fast as the strand allows.
      ins.src[0] = strand_int_src(k);
      ins.taken = branch_outcome(pc_);
      ins.target = ins.taken ? branch_target(pc_) : pc_ + 4;
      if (ins.taken) next_pc = ins.target;
      break;
    }
    case InstrClass::Call: {
      ins.taken = true;
      ins.target = branch_target(pc_ ^ 0x1111);
      if (shadow_stack_.size() < kShadowStack)
        shadow_stack_.push_back(pc_ + 4);
      next_pc = ins.target;
      break;
    }
    case InstrClass::Return: {
      ins.taken = true;
      if (!shadow_stack_.empty()) {
        ins.target = shadow_stack_.back();
        shadow_stack_.pop_back();
      } else {
        ins.target = branch_target(pc_ ^ 0x2222);
      }
      next_pc = ins.target;
      break;
    }
    case InstrClass::FpAlu:
    case InstrClass::FpMul: {
      // Extend the strand's fp chain; the second operand is often the
      // strand's freshest load (fp kernels consume streamed data), else an
      // old value.
      ins.src[0] = strand_fp_src(k);
      ins.src[1] = (load_last_[k] != kNoLogReg && rng_.chance(0.4))
                       ? load_last_[k]
                       : old_fp_src();
      ins.dst = alloc_fp_dst(k);
      break;
    }
    case InstrClass::IntAlu:
    case InstrClass::IntMul: {
      ins.src[0] = strand_int_src(k);
      if (rng_.chance(0.6))
        ins.src[1] = rng_.chance(0.4) ? strand_int_src(k) : old_int_src();
      ins.dst = alloc_int_dst(k);
      break;
    }
  }

  // Keep the pc inside the code region (wrap implies no control transfer;
  // the footprint is what matters for the I-cache).
  if (next_pc < code_base_ || next_pc >= code_base_ + code_bytes_)
    next_pc = code_base_ + ((next_pc - code_base_) % code_bytes_ & ~Addr{3});
  pc_ = next_pc;

  ring_[next_seq_ & ring_mask_] = ins;
  ++next_seq_;
}

}  // namespace mflush
