#pragma once

#include <span>
#include <string>
#include <vector>

#include "trace/instr.h"

/// Binary trace file format, so downstream users can bring their own traces
/// (e.g. converted from real workload captures) instead of the synthetic
/// generator.
///
/// Layout (little-endian):
///   u32 magic 'MFLT' (0x544C464D), u32 version (=1), u64 count,
///   then `count` fixed 32-byte records:
///     u64 pc, u64 eff_addr, u64 target,
///     u8 cls, u8 dst, u8 src0, u8 src1, u8 taken, u8 pad[3]
namespace mflush {

inline constexpr std::uint32_t kTraceMagic = 0x544C464D;  // "MFLT"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Write a trace; throws std::runtime_error on I/O failure.
void write_trace(const std::string& path, std::span<const TraceInstr> instrs);

/// Read a trace; throws std::runtime_error on I/O or format failure.
[[nodiscard]] std::vector<TraceInstr> read_trace(const std::string& path);

/// TraceSource over an in-memory instruction vector. Finite traces wrap
/// around (the simulator runs for a fixed cycle budget, as in the paper).
class VectorTraceSource final : public TraceSource {
 public:
  VectorTraceSource(std::vector<TraceInstr> instrs, std::string name);

  [[nodiscard]] const TraceInstr& at(SeqNo seq) override;
  void retire_up_to(SeqNo /*seq*/) override {}
  [[nodiscard]] const char* name() const noexcept override {
    return name_.c_str();
  }

  [[nodiscard]] std::size_t size() const noexcept { return instrs_.size(); }

 private:
  std::vector<TraceInstr> instrs_;
  std::string name_;
};

}  // namespace mflush
