#include "trace/profile.h"

#include <algorithm>

namespace mflush {
namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

BenchmarkProfile BenchmarkProfile::normalized() const {
  BenchmarkProfile p = *this;
  p.f_load = clamp01(p.f_load);
  p.f_store = clamp01(p.f_store);
  p.f_branch = clamp01(p.f_branch);
  p.f_call_ret = clamp01(p.f_call_ret);
  const double mix = p.f_load + p.f_store + p.f_branch + p.f_call_ret;
  if (mix > 0.95) {
    const double scale = 0.95 / mix;
    p.f_load *= scale;
    p.f_store *= scale;
    p.f_branch *= scale;
    p.f_call_ret *= scale;
  }
  p.f_fp = clamp01(p.f_fp);
  p.f_mul = clamp01(p.f_mul);
  p.strands = std::clamp(p.strands, 1u, 8u);
  p.dep_mean = std::max(1.0, p.dep_mean);
  p.p_chase = clamp01(p.p_chase);
  p.predictability = clamp01(p.predictability);
  p.taken_bias = clamp01(p.taken_bias);
  p.pattern_period = std::max(2u, p.pattern_period);
  p.hot_lines = std::max(1u, p.hot_lines);
  p.l2_lines = std::max(1u, p.l2_lines);
  p.mem_lines = std::max(1u, p.mem_lines);
  p.p_l2 = clamp01(p.p_l2);
  p.p_mem = clamp01(p.p_mem);
  if (p.p_l2 + p.p_mem > 1.0) {
    const double scale = 1.0 / (p.p_l2 + p.p_mem);
    p.p_l2 *= scale;
    p.p_mem *= scale;
  }
  p.p_stream = clamp01(p.p_stream);
  p.stream_lines = std::max(1u, p.stream_lines);
  p.icache_lines = std::max(1u, p.icache_lines);
  p.mean_bb_len = std::max(2u, p.mean_bb_len);
  return p;
}

}  // namespace mflush
