#include "trace/spec2000.h"

#include <array>
#include <vector>

namespace mflush::spec2000 {
namespace {

/// Shorthand builder: start from defaults and mutate.
BenchmarkProfile make(const char* name, char code) {
  BenchmarkProfile p;
  p.name = name;
  p.code = code;
  return p;
}

// Calibration targets (measured against the Fig. 1 hierarchy):
//  * L1D load miss rate: ILP set 2-5%, moderate 5-10%, memory-bound 15-30%.
//  * Two threads share the 512-line L1D, so per-thread hot sets stay
//    <= ~160 lines.
//  * p_mem controls true L2 misses (the long-latency loads FLUSH targets);
//    p_l2 controls L2 *hit* traffic (the bank/bus contention MFLUSH
//    adapts to).

// clang-format off: the profile table reads as aligned rows of short
// attribute assignments; one-statement-per-line would triple its length.
std::vector<BenchmarkProfile> build_catalog() {
  std::vector<BenchmarkProfile> v;
  v.reserve(26);

  {  // a: gzip — int compression; streaming buffers, cache friendly, good ILP
    auto p = make("gzip", 'a');
    p.f_load = 0.22; p.f_store = 0.10; p.f_branch = 0.13; p.f_call_ret = 0.008;
    p.strands = 5; p.dep_mean = 6.0; p.predictability = 0.93; p.taken_bias = 0.62;
    p.hot_lines = 144; p.l2_lines = 3000; p.mem_lines = 1 << 17;
    p.p_l2 = 0.02; p.p_mem = 0.0008; p.p_stream = 0.25;
    p.stream_lines = 4096; p.icache_lines = 160;
    v.push_back(p.normalized());
  }
  {  // b: vpr — int place&route; scattered accesses, branchy
    auto p = make("vpr", 'b');
    p.f_load = 0.26; p.f_store = 0.11; p.f_branch = 0.13; p.f_call_ret = 0.012;
    p.strands = 4; p.dep_mean = 4.5; p.p_chase = 0.05;
    p.predictability = 0.88; p.taken_bias = 0.55; p.pattern_period = 6;
    p.hot_lines = 160; p.l2_lines = 5000; p.mem_lines = 1 << 18;
    p.p_l2 = 0.06; p.p_mem = 0.004; p.p_stream = 0.08;
    p.icache_lines = 420;
    v.push_back(p.normalized());
  }
  {  // c: gcc — int compiler; large code footprint, medium data
    auto p = make("gcc", 'c');
    p.f_load = 0.25; p.f_store = 0.13; p.f_branch = 0.14; p.f_call_ret = 0.02;
    p.strands = 4; p.dep_mean = 5.0; p.predictability = 0.90; p.taken_bias = 0.6;
    p.hot_lines = 160; p.l2_lines = 4500; p.mem_lines = 1 << 18;
    p.p_l2 = 0.05; p.p_mem = 0.002; p.p_stream = 0.10;
    p.icache_lines = 2500; p.mean_bb_len = 6;
    v.push_back(p.normalized());
  }
  {  // d: mcf — int network simplex; pointer chasing over a huge graph.
     //    The canonical long-latency-load hound of the paper.
    auto p = make("mcf", 'd');
    p.f_load = 0.31; p.f_store = 0.09; p.f_branch = 0.12; p.f_call_ret = 0.004;
    p.strands = 2; p.dep_mean = 3.5; p.p_chase = 0.45;
    p.predictability = 0.90; p.taken_bias = 0.65;
    p.hot_lines = 112; p.l2_lines = 7000; p.mem_lines = 1 << 20;
    p.p_l2 = 0.14; p.p_mem = 0.05; p.p_stream = 0.02;
    p.icache_lines = 96;
    v.push_back(p.normalized());
  }
  {  // e: crafty — chess; cache resident, high ILP, lots of logic ops
    auto p = make("crafty", 'e');
    p.f_load = 0.27; p.f_store = 0.07; p.f_branch = 0.12; p.f_call_ret = 0.015;
    p.strands = 6; p.dep_mean = 6.5; p.predictability = 0.91; p.taken_bias = 0.58;
    p.hot_lines = 144; p.l2_lines = 2200; p.mem_lines = 1 << 16;
    p.p_l2 = 0.02; p.p_mem = 0.0004; p.p_stream = 0.05;
    p.icache_lines = 1200;
    v.push_back(p.normalized());
  }
  {  // f: perlbmk — interpreter; big code, indirect control
    auto p = make("perlbmk", 'f');
    p.f_load = 0.26; p.f_store = 0.13; p.f_branch = 0.13; p.f_call_ret = 0.025;
    p.strands = 4; p.dep_mean = 5.0; p.predictability = 0.88; p.taken_bias = 0.6;
    p.hot_lines = 144; p.l2_lines = 4000; p.mem_lines = 1 << 17;
    p.p_l2 = 0.03; p.p_mem = 0.001; p.p_stream = 0.08;
    p.icache_lines = 2200; p.mean_bb_len = 6;
    v.push_back(p.normalized());
  }
  {  // g: parser — NL parser; dictionary pointer walks, medium WS
    auto p = make("parser", 'g');
    p.f_load = 0.25; p.f_store = 0.10; p.f_branch = 0.13; p.f_call_ret = 0.015;
    p.strands = 3; p.dep_mean = 4.5; p.p_chase = 0.15;
    p.predictability = 0.89; p.taken_bias = 0.6;
    p.hot_lines = 144; p.l2_lines = 4500; p.mem_lines = 1 << 18;
    p.p_l2 = 0.055; p.p_mem = 0.003; p.p_stream = 0.06;
    p.icache_lines = 520;
    v.push_back(p.normalized());
  }
  {  // h: eon — C++ ray tracer; fp-heavy, cache resident, high ILP
    auto p = make("eon", 'h');
    p.f_load = 0.24; p.f_store = 0.14; p.f_branch = 0.10; p.f_call_ret = 0.02;
    p.f_fp = 0.35; p.strands = 6; p.dep_mean = 7.5;
    p.predictability = 0.94; p.taken_bias = 0.6;
    p.hot_lines = 144; p.l2_lines = 1800; p.mem_lines = 1 << 16;
    p.p_l2 = 0.015; p.p_mem = 0.0004; p.p_stream = 0.05;
    p.icache_lines = 900;
    v.push_back(p.normalized());
  }
  {  // i: gap — group theory; moderate memory pressure
    auto p = make("gap", 'i');
    p.f_load = 0.24; p.f_store = 0.12; p.f_branch = 0.12; p.f_call_ret = 0.012;
    p.strands = 5; p.dep_mean = 5.5; p.predictability = 0.92; p.taken_bias = 0.6;
    p.hot_lines = 144; p.l2_lines = 4500; p.mem_lines = 1 << 17;
    p.p_l2 = 0.04; p.p_mem = 0.0015; p.p_stream = 0.12;
    p.icache_lines = 640;
    v.push_back(p.normalized());
  }
  {  // j: vortex — OO database; large code, decent locality
    auto p = make("vortex", 'j');
    p.f_load = 0.27; p.f_store = 0.15; p.f_branch = 0.11; p.f_call_ret = 0.025;
    p.strands = 5; p.dep_mean = 5.5; p.predictability = 0.95; p.taken_bias = 0.62;
    p.hot_lines = 160; p.l2_lines = 4500; p.mem_lines = 1 << 17;
    p.p_l2 = 0.04; p.p_mem = 0.0015; p.p_stream = 0.08;
    p.icache_lines = 3000; p.mean_bb_len = 7;
    v.push_back(p.normalized());
  }
  {  // k: bzip2 — compression; like gzip with a larger working set
    auto p = make("bzip2", 'k');
    p.f_load = 0.24; p.f_store = 0.11; p.f_branch = 0.12; p.f_call_ret = 0.006;
    p.strands = 5; p.dep_mean = 5.5; p.predictability = 0.91; p.taken_bias = 0.6;
    p.hot_lines = 144; p.l2_lines = 5000; p.mem_lines = 1 << 17;
    p.p_l2 = 0.055; p.p_mem = 0.0012; p.p_stream = 0.30;
    p.stream_lines = 1 << 13; p.icache_lines = 180;
    v.push_back(p.normalized());
  }
  {  // l: twolf — place&route; scattered medium WS, weak branches.
     //    Paired with bzip2 in the paper's Fig. 5(b) special workload.
    auto p = make("twolf", 'l');
    p.f_load = 0.27; p.f_store = 0.09; p.f_branch = 0.14; p.f_call_ret = 0.01;
    p.strands = 3; p.dep_mean = 4.0; p.p_chase = 0.08;
    p.predictability = 0.86; p.taken_bias = 0.55; p.pattern_period = 5;
    p.hot_lines = 160; p.l2_lines = 5500; p.mem_lines = 1 << 18;
    p.p_l2 = 0.075; p.p_mem = 0.0035; p.p_stream = 0.04;
    p.icache_lines = 400;
    v.push_back(p.normalized());
  }
  {  // m: art — neural-net image recognition; tiny code, giant arrays,
     //    extremely memory bound with exploitable ILP
    auto p = make("art", 'm');
    p.f_load = 0.32; p.f_store = 0.08; p.f_branch = 0.11; p.f_call_ret = 0.003;
    p.f_fp = 0.50; p.strands = 6; p.dep_mean = 5.5;
    p.predictability = 0.95; p.taken_bias = 0.8; p.pattern_period = 16;
    p.hot_lines = 96; p.l2_lines = 8000; p.mem_lines = 1 << 19;
    p.p_l2 = 0.12; p.p_mem = 0.030; p.p_stream = 0.30;
    p.stream_lines = 1 << 17; p.icache_lines = 64;
    v.push_back(p.normalized());
  }
  {  // n: swim — shallow-water stencil; pure streaming, bandwidth bound
    auto p = make("swim", 'n');
    p.f_load = 0.30; p.f_store = 0.16; p.f_branch = 0.06; p.f_call_ret = 0.002;
    p.f_fp = 0.55; p.strands = 8; p.dep_mean = 8.5;
    p.predictability = 0.97; p.taken_bias = 0.9; p.pattern_period = 32;
    p.hot_lines = 96; p.l2_lines = 5000; p.mem_lines = 1 << 19;
    p.p_l2 = 0.03; p.p_mem = 0.010; p.p_stream = 0.60;
    p.stream_lines = 1 << 18; p.icache_lines = 48; p.mean_bb_len = 14;
    v.push_back(p.normalized());
  }
  {  // o: apsi — pollutant distribution; moderate fp workload
    auto p = make("apsi", 'o');
    p.f_load = 0.26; p.f_store = 0.12; p.f_branch = 0.08; p.f_call_ret = 0.008;
    p.f_fp = 0.45; p.strands = 5; p.dep_mean = 6.5;
    p.predictability = 0.94; p.taken_bias = 0.75; p.pattern_period = 12;
    p.hot_lines = 128; p.l2_lines = 4500; p.mem_lines = 1 << 17;
    p.p_l2 = 0.035; p.p_mem = 0.0018; p.p_stream = 0.30;
    p.stream_lines = 1 << 14; p.icache_lines = 320; p.mean_bb_len = 10;
    v.push_back(p.normalized());
  }
  {  // p: wupwise — quantum chromodynamics; regular, L2-resident streams
    auto p = make("wupwise", 'p');
    p.f_load = 0.25; p.f_store = 0.11; p.f_branch = 0.06; p.f_call_ret = 0.012;
    p.f_fp = 0.50; p.strands = 6; p.dep_mean = 8.0;
    p.predictability = 0.96; p.taken_bias = 0.85; p.pattern_period = 24;
    p.hot_lines = 112; p.l2_lines = 4500; p.mem_lines = 1 << 17;
    p.p_l2 = 0.04; p.p_mem = 0.0012; p.p_stream = 0.30;
    p.stream_lines = 1 << 15; p.icache_lines = 120; p.mean_bb_len = 12;
    v.push_back(p.normalized());
  }
  {  // q: equake — earthquake FEM; sparse matrix, memory sensitive
    auto p = make("equake", 'q');
    p.f_load = 0.29; p.f_store = 0.09; p.f_branch = 0.09; p.f_call_ret = 0.005;
    p.f_fp = 0.40; p.strands = 3; p.dep_mean = 4.8; p.p_chase = 0.20;
    p.predictability = 0.93; p.taken_bias = 0.8; p.pattern_period = 10;
    p.hot_lines = 112; p.l2_lines = 7000; p.mem_lines = 1 << 19;
    p.p_l2 = 0.08; p.p_mem = 0.012; p.p_stream = 0.15;
    p.stream_lines = 1 << 16; p.icache_lines = 96;
    v.push_back(p.normalized());
  }
  {  // r: lucas — Lucas-Lehmer FFT; long strided sweeps over big arrays
    auto p = make("lucas", 'r');
    p.f_load = 0.27; p.f_store = 0.13; p.f_branch = 0.05; p.f_call_ret = 0.002;
    p.f_fp = 0.50; p.strands = 6; p.dep_mean = 7.5;
    p.predictability = 0.97; p.taken_bias = 0.9; p.pattern_period = 32;
    p.hot_lines = 96; p.l2_lines = 5000; p.mem_lines = 1 << 18;
    p.p_l2 = 0.035; p.p_mem = 0.008; p.p_stream = 0.45;
    p.stream_lines = 1 << 17; p.icache_lines = 56; p.mean_bb_len = 14;
    v.push_back(p.normalized());
  }
  {  // s: mesa — software 3D; cache resident, predictable
    auto p = make("mesa", 's');
    p.f_load = 0.23; p.f_store = 0.14; p.f_branch = 0.09; p.f_call_ret = 0.02;
    p.f_fp = 0.40; p.strands = 6; p.dep_mean = 7.0;
    p.predictability = 0.93; p.taken_bias = 0.65;
    p.hot_lines = 144; p.l2_lines = 2600; p.mem_lines = 1 << 16;
    p.p_l2 = 0.02; p.p_mem = 0.0006; p.p_stream = 0.20;
    p.stream_lines = 1 << 13; p.icache_lines = 760;
    v.push_back(p.normalized());
  }
  {  // t: fma3d — crash simulation; mixed locality fp
    auto p = make("fma3d", 't');
    p.f_load = 0.26; p.f_store = 0.13; p.f_branch = 0.08; p.f_call_ret = 0.015;
    p.f_fp = 0.50; p.strands = 5; p.dep_mean = 6.0;
    p.predictability = 0.93; p.taken_bias = 0.75; p.pattern_period = 10;
    p.hot_lines = 128; p.l2_lines = 5000; p.mem_lines = 1 << 18;
    p.p_l2 = 0.05; p.p_mem = 0.0025; p.p_stream = 0.20;
    p.stream_lines = 1 << 15; p.icache_lines = 1400;
    v.push_back(p.normalized());
  }
  {  // u: sixtrack — particle tracking; tight fp loops, cache resident
    auto p = make("sixtrack", 'u');
    p.f_load = 0.22; p.f_store = 0.09; p.f_branch = 0.06; p.f_call_ret = 0.006;
    p.f_fp = 0.55; p.strands = 7; p.dep_mean = 8.5;
    p.predictability = 0.97; p.taken_bias = 0.85; p.pattern_period = 20;
    p.hot_lines = 128; p.l2_lines = 2000; p.mem_lines = 1 << 15;
    p.p_l2 = 0.012; p.p_mem = 0.0004; p.p_stream = 0.15;
    p.stream_lines = 1 << 12; p.icache_lines = 420; p.mean_bb_len = 12;
    v.push_back(p.normalized());
  }
  {  // v: facerec — face recognition; medium streams
    auto p = make("facerec", 'v');
    p.f_load = 0.25; p.f_store = 0.10; p.f_branch = 0.07; p.f_call_ret = 0.008;
    p.f_fp = 0.45; p.strands = 5; p.dep_mean = 7.0;
    p.predictability = 0.95; p.taken_bias = 0.8; p.pattern_period = 16;
    p.hot_lines = 112; p.l2_lines = 4500; p.mem_lines = 1 << 17;
    p.p_l2 = 0.04; p.p_mem = 0.0035; p.p_stream = 0.35;
    p.stream_lines = 1 << 16; p.icache_lines = 200; p.mean_bb_len = 12;
    v.push_back(p.normalized());
  }
  {  // w: applu — PDE stencil; streaming over large grids
    auto p = make("applu", 'w');
    p.f_load = 0.28; p.f_store = 0.14; p.f_branch = 0.05; p.f_call_ret = 0.003;
    p.f_fp = 0.55; p.strands = 6; p.dep_mean = 8.0;
    p.predictability = 0.97; p.taken_bias = 0.9; p.pattern_period = 28;
    p.hot_lines = 96; p.l2_lines = 5000; p.mem_lines = 1 << 18;
    p.p_l2 = 0.035; p.p_mem = 0.006; p.p_stream = 0.45;
    p.stream_lines = 1 << 17; p.icache_lines = 72; p.mean_bb_len = 14;
    v.push_back(p.normalized());
  }
  {  // x: galgel — fluid dynamics; mostly L2-resident blocked loops
    auto p = make("galgel", 'x');
    p.f_load = 0.27; p.f_store = 0.10; p.f_branch = 0.06; p.f_call_ret = 0.004;
    p.f_fp = 0.50; p.strands = 6; p.dep_mean = 7.5;
    p.predictability = 0.96; p.taken_bias = 0.85; p.pattern_period = 20;
    p.hot_lines = 128; p.l2_lines = 6000; p.mem_lines = 1 << 16;
    p.p_l2 = 0.065; p.p_mem = 0.0008; p.p_stream = 0.25;
    p.stream_lines = 1 << 14; p.icache_lines = 120; p.mean_bb_len = 12;
    v.push_back(p.normalized());
  }
  {  // y: ammp — molecular dynamics; neighbor-list pointer chasing
    auto p = make("ammp", 'y');
    p.f_load = 0.29; p.f_store = 0.10; p.f_branch = 0.08; p.f_call_ret = 0.006;
    p.f_fp = 0.45; p.strands = 3; p.dep_mean = 4.0; p.p_chase = 0.30;
    p.predictability = 0.93; p.taken_bias = 0.8; p.pattern_period = 12;
    p.hot_lines = 112; p.l2_lines = 6500; p.mem_lines = 1 << 19;
    p.p_l2 = 0.08; p.p_mem = 0.015; p.p_stream = 0.10;
    p.icache_lines = 140;
    v.push_back(p.normalized());
  }
  {  // z: mgrid — multigrid stencil; streaming, predictable
    auto p = make("mgrid", 'z');
    p.f_load = 0.30; p.f_store = 0.11; p.f_branch = 0.04; p.f_call_ret = 0.002;
    p.f_fp = 0.55; p.strands = 6; p.dep_mean = 7.5;
    p.predictability = 0.98; p.taken_bias = 0.92; p.pattern_period = 40;
    p.hot_lines = 96; p.l2_lines = 4500; p.mem_lines = 1 << 18;
    p.p_l2 = 0.03; p.p_mem = 0.005; p.p_stream = 0.55;
    p.stream_lines = 1 << 17; p.icache_lines = 40; p.mean_bb_len = 16;
    v.push_back(p.normalized());
  }

  return v;
}
// clang-format on

const std::vector<BenchmarkProfile>& catalog() {
  static const std::vector<BenchmarkProfile> c = build_catalog();
  return c;
}

}  // namespace

std::span<const BenchmarkProfile> all() { return catalog(); }

std::optional<BenchmarkProfile> by_code(char code) {
  if (code < 'a' || code > 'z') return std::nullopt;
  const auto idx = static_cast<std::size_t>(code - 'a');
  if (idx >= catalog().size()) return std::nullopt;
  return catalog()[idx];
}

std::optional<BenchmarkProfile> by_name(std::string_view name) {
  for (const auto& p : catalog())
    if (p.name == name) return p;
  return std::nullopt;
}

}  // namespace mflush::spec2000
