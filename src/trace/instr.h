#pragma once

#include <array>

#include "common/types.h"

namespace mflush {

/// One dynamic instruction of the correct (architectural) path.
///
/// This is the unit produced by trace sources and consumed by the core
/// front-end. Register identifiers are *logical*; renaming happens in the
/// pipeline. Memory addresses are effective byte addresses in the thread's
/// private address space.
struct TraceInstr {
  Addr pc = 0;
  Addr eff_addr = 0;  ///< loads/stores: effective address
  Addr target = 0;    ///< control: actual (architectural) target
  InstrClass cls = InstrClass::IntAlu;
  LogReg dst = kNoLogReg;
  std::array<LogReg, 2> src{kNoLogReg, kNoLogReg};
  bool taken = false;  ///< control: actual direction
  // Explicit tail padding: TraceInstr is embedded in the memcpy-serialized
  // MicroOp pool, so an implicit hole would put uninitialized bytes in the
  // snapshot and break canonical-bytes equality across processes.
  std::uint8_t _pad[3] = {};

  [[nodiscard]] bool has_dst() const noexcept { return dst != kNoLogReg; }
  [[nodiscard]] bool is_memory() const noexcept {
    return mflush::is_memory(cls);
  }
  [[nodiscard]] bool is_control() const noexcept {
    return mflush::is_control(cls);
  }
};

/// Abstract rewindable instruction stream for one thread.
///
/// The consumer addresses instructions by monotonic sequence number. A call
/// to `retire_up_to(s)` promises that no sequence number `< s` will ever be
/// requested again, allowing bounded buffering. FLUSH re-fetch is expressed
/// by the consumer simply re-reading sequence numbers it has already seen —
/// sources must keep at least `window` instructions of history beyond the
/// retire point.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Random access within [retire_point, retire_point + window).
  [[nodiscard]] virtual const TraceInstr& at(SeqNo seq) = 0;

  /// Slide the history window: sequence numbers below `seq` are dead.
  virtual void retire_up_to(SeqNo seq) = 0;

  /// Human-readable identity (benchmark name).
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

}  // namespace mflush
