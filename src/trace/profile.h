#pragma once

#include <cstdint>
#include <string>

/// Statistical benchmark profiles driving the synthetic trace generator.
///
/// Substitution note (see DESIGN.md §2): the paper uses 300M-instruction
/// SimPoint traces of SPEC2000 compiled for Alpha. We replace each benchmark
/// with a statistical profile whose generated stream reproduces the
/// *behavioural* attributes the evaluation depends on: instruction mix,
/// attainable ILP (dependency distances), branch predictability, and —
/// crucially for this paper — the L1/L2/memory working-set pressure that
/// decides how often a thread blocks on L2 misses.
namespace mflush {

struct BenchmarkProfile {
  std::string name;
  char code = '?';  ///< Fig. 1 single-letter workload code

  // --- instruction mix (fractions of the dynamic stream) ---
  double f_load = 0.25;
  double f_store = 0.12;
  double f_branch = 0.12;    ///< conditional branches
  double f_call_ret = 0.01;  ///< calls+returns (split evenly)
  double f_fp = 0.0;         ///< fraction of *compute* ops that are FP
  double f_mul = 0.10;       ///< fraction of compute ops that are long-latency

  // --- ILP ---
  /// Number of independent dependency strands (interleaved accumulator /
  /// induction chains). The achievable ILP scales with this: one stalled
  /// load freezes roughly 1/strands of the instruction stream.
  std::uint32_t strands = 4;
  /// Mean register dependency distance for cross-strand/old-value operands.
  double dep_mean = 6.0;
  /// Probability a load's address depends on the most recent load result
  /// (pointer chasing — serializes misses, the FLUSH worst case).
  double p_chase = 0.0;

  // --- control behaviour ---
  /// Fraction of branch sites that follow a learnable periodic pattern.
  double predictability = 0.92;
  /// Bias of the non-pattern (noisy) branches.
  double taken_bias = 0.6;
  /// Mean loop period of pattern branches.
  std::uint32_t pattern_period = 8;

  // --- data working sets (cache lines of 64 B) ---
  std::uint32_t hot_lines = 256;       ///< L1-resident hot set
  std::uint32_t l2_lines = 4000;       ///< fits (a share of) L2, misses L1
  std::uint32_t mem_lines = 1 << 18;   ///< exceeds L2 -> memory misses
  /// Region mix for non-streaming accesses (must sum to <= 1; remainder
  /// goes to the hot set).
  double p_l2 = 0.08;
  double p_mem = 0.004;
  /// Fraction of memory accesses that walk a sequential stream.
  double p_stream = 0.15;
  /// Length of the streamed buffer in lines (wraps around).
  std::uint32_t stream_lines = 1 << 14;

  // --- instruction footprint (cache lines of 64 B) ---
  std::uint32_t icache_lines = 192;  ///< static code footprint
  /// Mean basic-block length in instructions (distance between branches is
  /// implied by the mix, this shapes taken-target spread).
  std::uint32_t mean_bb_len = 8;

  /// Sanity: clamp/normalize fractions. Returns a copy.
  [[nodiscard]] BenchmarkProfile normalized() const;
};

}  // namespace mflush
