#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "trace/profile.h"

/// Catalog of the 26 SPEC2000 benchmarks used by the paper (Fig. 1), keyed
/// by the single-letter workload codes `a`..`z`.
///
/// Profile values are qualitative calibrations (see DESIGN.md §2): the
/// memory-bound set (mcf, art, swim, lucas, ammp, equake, vpr, twolf, ...)
/// is given large working sets and/or pointer chasing; the ILP set (gzip,
/// crafty, eon, mesa, sixtrack, ...) is cache-resident.
namespace mflush::spec2000 {

/// All 26 profiles in code order 'a'..'z'.
[[nodiscard]] std::span<const BenchmarkProfile> all();

/// Lookup by Fig. 1 code letter; nullopt when out of range.
[[nodiscard]] std::optional<BenchmarkProfile> by_code(char code);

/// Lookup by benchmark name (e.g. "mcf").
[[nodiscard]] std::optional<BenchmarkProfile> by_name(std::string_view name);

}  // namespace mflush::spec2000
