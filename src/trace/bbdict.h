#pragma once

#include <cstdint>

#include "trace/instr.h"

namespace mflush {

/// Wrong-path instruction supplier ("basic block dictionary").
///
/// The paper's simulator models the impact of wrong-path execution on the
/// branch predictor and the instruction cache via a dictionary of all static
/// instructions. We reproduce exactly that modelled scope: after a fetch
/// redirect onto a mispredicted target, the front-end fetches deterministic
/// pseudo-instructions from this dictionary. They occupy front-end bandwidth
/// and touch the I-cache (their pcs are stable per (redirect pc, k)), but
/// wrong-path loads never issue to the data-memory hierarchy.
class BasicBlockDictionary {
 public:
  explicit BasicBlockDictionary(std::uint64_t seed) noexcept : seed_(seed) {}

  /// k-th instruction of the wrong path entered at `wrong_target`.
  [[nodiscard]] TraceInstr instr(Addr wrong_target,
                                 std::uint64_t k) const noexcept;

 private:
  std::uint64_t seed_;
};

}  // namespace mflush
