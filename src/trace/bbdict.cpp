#include "trace/bbdict.h"

namespace mflush {
namespace {

constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

TraceInstr BasicBlockDictionary::instr(Addr wrong_target,
                                       std::uint64_t k) const noexcept {
  TraceInstr ins;
  // Wrong-path pcs walk sequentially from the (bogus) target so that the
  // same redirect pollutes the same I-cache lines every time.
  ins.pc = (wrong_target & ~Addr{3}) + 4 * k;
  const std::uint64_t h = mix(ins.pc ^ seed_);

  const auto sel = h % 100;
  if (sel < 55) {
    ins.cls = InstrClass::IntAlu;
    ins.dst = static_cast<LogReg>((h >> 8) & 31);
    ins.src[0] = static_cast<LogReg>((h >> 16) & 31);
    ins.src[1] = static_cast<LogReg>((h >> 24) & 31);
  } else if (sel < 70) {
    ins.cls = InstrClass::Load;
    ins.dst = static_cast<LogReg>((h >> 8) & 31);
    ins.src[0] = static_cast<LogReg>((h >> 16) & 31);
    ins.eff_addr = 0;  // wrong-path loads never reach the hierarchy
  } else if (sel < 80) {
    ins.cls = InstrClass::Store;
    ins.src[0] = static_cast<LogReg>((h >> 8) & 31);
    ins.src[1] = static_cast<LogReg>((h >> 16) & 31);
  } else if (sel < 90) {
    ins.cls = InstrClass::FpAlu;
    ins.dst = static_cast<LogReg>(32 + ((h >> 8) & 31));
    ins.src[0] = static_cast<LogReg>(32 + ((h >> 16) & 31));
  } else {
    ins.cls = InstrClass::Branch;
    ins.src[0] = static_cast<LogReg>((h >> 8) & 31);
    // Direction irrelevant: the wrong path is squashed at resolution; mark
    // not-taken so the front-end keeps walking sequential bogus pcs.
    ins.taken = false;
    ins.target = ins.pc + 4;
  }
  return ins;
}

}  // namespace mflush
