#include "pipeline/fu.h"

// FuBudget is header-only; this translation unit anchors the target.
namespace mflush {}
