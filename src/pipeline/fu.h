#pragma once

#include <cstdint>

#include "common/config.h"
#include "common/types.h"

namespace mflush {

/// Per-cycle functional-unit issue budget. All units are fully pipelined
/// (one new operation per unit per cycle); execution latency is carried by
/// the issuing uop. Load/store ports are shared between load issue and
/// commit-time stores.
class FuBudget {
 public:
  explicit FuBudget(const CoreConfig& cfg)
      : int_cap_(cfg.int_units), fp_cap_(cfg.fp_units),
        mem_cap_(cfg.ldst_units) {}

  void begin_cycle() noexcept { int_used_ = fp_used_ = mem_used_ = 0; }

  [[nodiscard]] bool try_take(InstrClass cls) noexcept {
    if (is_memory(cls)) {
      if (mem_used_ >= mem_cap_) return false;
      ++mem_used_;
      return true;
    }
    if (is_fp(cls)) {
      if (fp_used_ >= fp_cap_) return false;
      ++fp_used_;
      return true;
    }
    if (int_used_ >= int_cap_) return false;
    ++int_used_;
    return true;
  }

  [[nodiscard]] static Cycle latency(const CoreConfig& cfg,
                                     InstrClass cls) noexcept {
    switch (cls) {
      case InstrClass::IntAlu: return cfg.lat_int_alu;
      case InstrClass::IntMul: return cfg.lat_int_mul;
      case InstrClass::FpAlu: return cfg.lat_fp_alu;
      case InstrClass::FpMul: return cfg.lat_fp_mul;
      case InstrClass::Branch:
      case InstrClass::Call:
      case InstrClass::Return: return cfg.lat_branch;
      case InstrClass::Load:
      case InstrClass::Store: return 1;  // memory time modelled elsewhere
    }
    return 1;
  }

 private:
  std::uint32_t int_cap_, fp_cap_, mem_cap_;
  std::uint32_t int_used_ = 0, fp_used_ = 0, mem_used_ = 0;
};

}  // namespace mflush
