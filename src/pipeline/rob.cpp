#include "pipeline/rob.h"

#include <cassert>

namespace mflush {

Rob::Rob(std::uint32_t capacity)
    : buf_(std::max(1u, capacity), kNoUop), cap_(std::max(1u, capacity)) {}

void Rob::push_back(UopHandle h) {
  assert(!full());
  buf_[(head_ + size_) % cap_] = h;
  ++size_;
}

void Rob::pop_front() noexcept {
  assert(!empty());
  head_ = (head_ + 1) % cap_;
  --size_;
}

UopHandle Rob::back() const noexcept {
  assert(!empty());
  return buf_[(head_ + size_ - 1) % cap_];
}

void Rob::pop_back() noexcept {
  assert(!empty());
  --size_;
}

}  // namespace mflush
