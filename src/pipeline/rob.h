#pragma once

#include <cstdint>
#include <vector>

#include "common/archive.h"
#include "pipeline/uop.h"

namespace mflush {

/// Per-thread reorder buffer: a bounded circular FIFO of uop handles
/// (256 entries, replicated per thread — Fig. 1 *).
class Rob {
 public:
  explicit Rob(std::uint32_t capacity);

  [[nodiscard]] bool full() const noexcept { return size_ == cap_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return cap_; }

  void push_back(UopHandle h);
  [[nodiscard]] UopHandle front() const noexcept { return buf_[head_]; }
  void pop_front() noexcept;
  [[nodiscard]] UopHandle back() const noexcept;
  void pop_back() noexcept;

  /// i-th oldest entry, 0-based.
  [[nodiscard]] UopHandle at(std::uint32_t i) const noexcept {
    return buf_[(head_ + i) % cap_];
  }

  void save(ArchiveWriter& ar) const {
    ar.put_vec(buf_);
    ar.put(head_);
    ar.put(size_);
  }
  void load(ArchiveReader& ar) {
    ar.get_vec(buf_);
    head_ = ar.get<std::uint32_t>();
    size_ = ar.get<std::uint32_t>();
  }

 private:
  std::vector<UopHandle> buf_;
  std::uint32_t cap_;  // lint: transient — ctor capacity
  std::uint32_t head_ = 0;
  std::uint32_t size_ = 0;
};

}  // namespace mflush
