#include "pipeline/smt_core.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace mflush {

SmtCore::SmtCore(CoreId id, const SimConfig& cfg, MemoryHierarchy& mem,
                 std::unique_ptr<FetchPolicy> policy,
                 std::vector<TraceSource*> traces)
    : id_(id),
      cfg_(cfg),
      fe_depth_(cfg.core.fetch_stages + cfg.core.decode_stages +
                cfg.core.rename_stages),
      mem_(mem),
      policy_(std::move(policy)),
      traces_(std::move(traces)),
      branch_(cfg.core),
      bbdict_(derive_seed(cfg.seed, 0x62626469 /*"bbdi"*/, id)),
      pool_(static_cast<std::size_t>(traces_.size()) *
            (cfg.core.rob_entries + 16 * cfg.core.fetch_width)),
      int_regs_(cfg.core.int_phys_regs),
      fp_regs_(cfg.core.fp_phys_regs),
      iq_int_(cfg.core.int_queue_entries),
      iq_fp_(cfg.core.fp_queue_entries),
      iq_mem_(cfg.core.mem_queue_entries),
      fu_(cfg.core) {
  assert(policy_ != nullptr);
  assert(!traces_.empty() && traces_.size() <= kMaxContexts);
  const auto n = traces_.size();
  rename_.reserve(n);
  rob_.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    rename_.emplace_back(int_regs_, fp_regs_);
    rob_.emplace_back(cfg.core.rob_entries);
  }
  frontend_.resize(n);
  fstate_.resize(n);
  preissue_.assign(n, 0);
  inflight_ctrl_.assign(n, 0);
  inflight_dmiss_.assign(n, 0);
  scratch_due_.reserve(128);
  scratch_ready_.reserve(128);
  lsq_unissued_.reserve(cfg.core.mem_queue_entries);
}

IssueQueue& SmtCore::queue_for(InstrClass cls) noexcept {
  if (is_memory(cls)) return iq_mem_;
  if (is_fp(cls)) return iq_fp_;
  return iq_int_;
}

PipeStage SmtCore::occupancy_stage(const MicroOp& u, Cycle now) const {
  switch (u.stage) {
    case PipeStage::Fetch: {
      // Front-end delay line: classify by age.
      const Cycle age = now - u.fetch_cycle;
      if (age < cfg_.core.fetch_stages) return PipeStage::Fetch;
      if (age < cfg_.core.fetch_stages + cfg_.core.decode_stages)
        return PipeStage::Decode;
      return PipeStage::Rename;
    }
    case PipeStage::Queue:
      return u.issued
                 ? (u.completed ? PipeStage::RegWrite : PipeStage::Execute)
                 : PipeStage::Queue;
    default:
      return u.stage;
  }
}

void SmtCore::tick(Cycle now) {
  now_ = now;
  ++stats_.cycles;
  if (all_threads_stalled()) {
    // Every pipeline stage would no-op; only the policy heartbeat runs
    // (it may gate/ungate, but cannot clear a hard block — only a memory
    // completion can, and none arrived this cycle).
    policy_->on_cycle(now, *this);
    return;
  }
  fu_.begin_cycle();
  do_memory_completions(now);
  do_commit(now);
  do_writeback(now);
  do_issue(now);
  do_dispatch(now);
  policy_->on_cycle(now, *this);
  do_fetch(now);
}

bool SmtCore::all_threads_stalled() const {
  // Early-exit precondition: pipeline fully drained, every context
  // hard-blocked (I-cache wait or policy stall — states only a memory
  // completion can clear), and the hierarchy delivered nothing this cycle.
  if (exec_live_ != 0) return false;
  if (mem_.has_events(id_)) return false;
  for (ThreadId t = 0; t < fstate_.size(); ++t) {
    if (!fstate_[t].hard_blocked()) return false;
    if (!frontend_[t].empty() || !rob_[t].empty()) return false;
  }
  return true;
}

bool SmtCore::sources_ready(const MicroOp& u) const noexcept {
  for (int i = 0; i < 2; ++i) {
    if (u.src_phys[i] == kNoPhysReg) continue;
    const bool ready = RenameMap::is_fp_reg(u.ins.src[i])
                           ? fp_regs_.ready(u.src_phys[i])
                           : int_regs_.ready(u.src_phys[i]);
    if (!ready) return false;
  }
  return true;
}

Cycle SmtCore::next_local_event(Cycle now) const {
  if (exec_live_ != 0) return now + 1;  // a local completion writes back soon
  for (ThreadId t = 0; t < fstate_.size(); ++t)
    if (!fstate_[t].hard_blocked()) return now + 1;  // fetch could run
  if (mem_.has_events(id_)) return now + 1;  // undrained rendezvous signal
  Cycle horizon = policy_->quiescent_until(now);
  if (horizon <= now + 1) return now + 1;
  // Dispatch heads: a non-empty front-end is a no-op only while its head
  // stays blocked — too young (dispatchable at a known cycle: a horizon),
  // or stuck on ROB/IQ/register-file capacity, all frozen until a memory
  // completion. advance_idle replays the per-cycle blocker counters for
  // the skipped window, so sleeping here stays bit-identical. The check
  // mirrors do_dispatch's order exactly.
  for (ThreadId t = 0; t < frontend_.size(); ++t) {
    if (frontend_[t].empty()) continue;
    const MicroOp& u = pool_[frontend_[t].front()];
    const Cycle dispatchable_at = u.fetch_cycle + fe_depth_;
    if (now < dispatchable_at) {
      horizon = std::min(horizon, dispatchable_at);
      continue;
    }
    if (rob_[t].full()) continue;
    if (queue_for(u.ins.cls).full()) continue;
    if (u.ins.has_dst() && !rename_[t].can_rename(u.ins.dst)) continue;
    return now + 1;  // the head would dispatch
  }
  // Commit heads: an uncompleted non-store head waits on memory (local
  // completions are excluded by exec_live_ == 0); a store head retires the
  // moment its sources are ready, and with nothing executing locally,
  // readiness can only change via a memory completion.
  for (ThreadId t = 0; t < rob_.size(); ++t) {
    if (rob_[t].empty()) continue;
    const MicroOp& u = pool_[rob_[t].front()];
    if (u.is_store()) {
      if (sources_ready(u)) return now + 1;  // would retire this cycle
    } else if (u.completed) {
      return now + 1;  // would commit this cycle
    }
  }
  // Issue: every queued-but-unissued uop must be waiting on a frozen
  // source register. The int/fp queues hold only unissued entries (entries
  // leave at issue); issued loads are excluded from lsq_unissued_.
  for (const IssueQueue* q : {&iq_int_, &iq_fp_}) {
    for (const UopHandle h : q->entries())
      if (sources_ready(pool_[h])) return now + 1;
  }
  for (const UopHandle h : lsq_unissued_)
    if (sources_ready(pool_[h])) return now + 1;
  return horizon;
}

void SmtCore::advance_idle(Cycle from, Cycle cycles) noexcept {
  stats_.cycles += cycles;
  // Replay the dispatch-stage blocker diagnosis the skipped ticks would
  // have recorded. The blocking state is frozen while asleep, so the
  // classification recomputed here matches every skipped cycle; the only
  // time-dependent class — "too young" — holds for the whole window
  // because next_local_event capped the wake horizon at the head's
  // dispatchable cycle.
  for (ThreadId t = 0; t < frontend_.size(); ++t) {
    if (frontend_[t].empty()) continue;
    const MicroOp& u = pool_[frontend_[t].front()];
    if (u.fetch_cycle + fe_depth_ > from) {
      stats_.dispatch_blocked_young += cycles;
    } else if (rob_[t].full()) {
      stats_.dispatch_blocked_rob += cycles;
    } else {
      const IssueQueue& q = queue_for(u.ins.cls);
      assert(q.full() ||
             (u.ins.has_dst() && !rename_[t].can_rename(u.ins.dst)));
      if (&q == &iq_int_ && q.full())
        stats_.dispatch_blocked_iq_int += cycles;
      else if (&q == &iq_fp_ && q.full())
        stats_.dispatch_blocked_iq_fp += cycles;
      else if (&q == &iq_mem_ && q.full())
        stats_.dispatch_blocked_iq_mem += cycles;
      else
        stats_.dispatch_blocked_regs += cycles;
    }
  }
}

// ---------------------------------------------------------------------------
// memory completions
// ---------------------------------------------------------------------------

void SmtCore::do_memory_completions(Cycle now) {
  // Policy detection-moment events first (they may concern loads that
  // complete this very cycle; completion handling below supersedes them).
  for (const L2PathEvent& e : mem_.l2_events(id_)) {
    ++inflight_dmiss_[e.tid];  // L1DMISSCOUNT metric
    policy_->on_load_l2_path(e.tid, e.token, e.bank, e.cycle);
  }
  mem_.l2_events(id_).clear();
  for (const L2PathEvent& e : mem_.l2_miss_events(id_))
    policy_->on_load_l2_miss(e.tid, e.token, e.bank, e.cycle);
  mem_.l2_miss_events(id_).clear();

  for (const MemCompletion& c : mem_.completions(id_)) {
    if (c.kind == MemKind::IFetch) {
      ThreadFetchState& fs = fstate_[c.tid];
      if (fs.icache_wait && fs.icache_token == c.token) {
        fs.icache_wait = false;
        fs.icache_token = 0;
      }
      continue;
    }
    assert(c.kind == MemKind::Load);
    if (c.l2_accessed && inflight_dmiss_[c.tid] > 0)
      --inflight_dmiss_[c.tid];
    policy_->on_load_resolved(c.tid, c.token, c.issue_cycle, now,
                              c.l2_accessed, c.l2_hit, c.l2_bank);
    // Release any fetch stall waiting on this load (FLUSH/STALL response).
    ThreadFetchState& fs = fstate_[c.tid];
    if (!fs.stall_tokens.empty()) {
      std::erase(fs.stall_tokens, c.token);
    }
    const auto it = load_by_token_.find(c.token);
    if (it == load_by_token_.end()) continue;  // squashed while in flight
    const UopHandle h = it->second;
    load_by_token_.erase(it);
    MicroOp& u = pool_[h];
    u.completed = true;
    u.ready_at = now;
    if (u.dst_phys != kNoPhysReg) {
      (RenameMap::is_fp_reg(u.ins.dst) ? fp_regs_ : int_regs_)
          .set_ready(u.dst_phys);
    }
    u.mem_token = 0;
    iq_mem_.remove(h);  // frees the LSQ entry
  }
  mem_.completions(id_).clear();
}

// ---------------------------------------------------------------------------
// commit
// ---------------------------------------------------------------------------

void SmtCore::do_commit(Cycle now) {
  for (ThreadId t = 0; t < rob_.size(); ++t) {
    std::uint32_t width = cfg_.core.commit_width;
    while (width > 0 && !rob_[t].empty()) {
      const UopHandle h = rob_[t].front();
      MicroOp& u = pool_[h];
      assert(!u.wrong_path && "wrong-path uop reached commit");
      if (u.is_store()) {
        // Stores retire by writing to memory: they need ready sources and
        // a load/store port this cycle.
        const bool ready =
            (RenameMap::is_fp_reg(u.ins.src[0])
                 ? fp_regs_.ready(u.src_phys[0])
                 : int_regs_.ready(u.src_phys[0])) &&
            (RenameMap::is_fp_reg(u.ins.src[1])
                 ? fp_regs_.ready(u.src_phys[1])
                 : int_regs_.ready(u.src_phys[1]));
        if (!ready || !fu_.try_take(InstrClass::Store)) break;
        mem_.request_store(id_, t, u.ins.eff_addr, now);
        iq_mem_.remove(h);
        assert(preissue_[t] > 0);
        --preissue_[t];
      } else if (!u.completed) {
        break;  // in-order commit
      }
      if (u.dst_phys != kNoPhysReg)
        rename_[t].commit_release(u.ins.dst, u.prev_dst_phys);
      ++stats_.committed[t];
      traces_[t]->retire_up_to(u.seq + 1);
      rob_[t].pop_front();
      pool_.release(h);
      --width;
    }
  }
}

// ---------------------------------------------------------------------------
// writeback / branch resolution
// ---------------------------------------------------------------------------

void SmtCore::do_writeback(Cycle now) {
  // Pop this cycle's wheel bucket instead of scanning every in-flight uop.
  // Entries whose uop was squashed (and possibly re-allocated) since
  // scheduling are stale: the generation check discards them — their
  // exec_live_ share was already released at squash time.
  scratch_due_.clear();
  exec_wheel_.pop_due(now, scratch_due_);
  scratch_ready_.clear();
  for (const ExecEntry& e : scratch_due_) {
    const MicroOp& u = pool_[e.h];
    if (pool_.generation(e.h) != e.gen || !u.in_use || !u.issued ||
        u.completed)
      continue;
    scratch_ready_.push_back(e.h);
  }
  if (scratch_ready_.empty()) return;

  // Resolve oldest-first per thread so an older mispredicted branch squashes
  // younger same-cycle completions before they act.
  std::sort(scratch_ready_.begin(), scratch_ready_.end(),
            [this](UopHandle a, UopHandle b) {
              const MicroOp& ua = pool_[a];
              const MicroOp& ub = pool_[b];
              if (ua.tid != ub.tid) return ua.tid < ub.tid;
              return ua.local_order < ub.local_order;
            });

  for (const UopHandle h : scratch_ready_) {
    MicroOp& u = pool_[h];
    if (!u.in_use || u.completed || !u.issued) continue;  // squashed above
    u.completed = true;
    if (u.dst_phys != kNoPhysReg) {
      (RenameMap::is_fp_reg(u.ins.dst) ? fp_regs_ : int_regs_)
          .set_ready(u.dst_phys);
    }
    if (u.is_load()) iq_mem_.remove(h);  // wrong-path loads complete locally
    if (u.is_control() && inflight_ctrl_[u.tid] > 0) --inflight_ctrl_[u.tid];
    assert(exec_live_ > 0);
    --exec_live_;

    if (u.is_control() && !u.wrong_path) {
      ++stats_.branches_resolved;
      // Training already happened at fetch; resolution pays the timing
      // penalty and repairs the speculative front-end state.
      if (u.mispredicted) {
        ++stats_.mispredicts;
        const ThreadId t = u.tid;
        squash_younger_than(t, u.local_order, SquashCause::BranchMispredict);
        // Repair speculative front-end state: back to this op's pre-predict
        // checkpoint, then re-apply its architectural effect.
        branch_.restore(t, u.bp_checkpoint);
        branch_.apply_resolved(t, u.ins);
        fstate_[t].resume_right_path(u.seq + 1);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// issue
// ---------------------------------------------------------------------------

void SmtCore::do_issue(Cycle now) {
  std::uint32_t width = cfg_.core.issue_width;

  // One readiness predicate, shared with next_local_event's sleep proof:
  // the two must never diverge or a core could sleep past an issuable uop.
  auto ready = [this](const MicroOp& u) { return sources_ready(u); };

  // Integer and FP queues: entries leave at issue.
  for (IssueQueue* q : {&iq_int_, &iq_fp_}) {
    scratch_issue_.clear();
    for (const UopHandle h : q->entries()) {
      if (width == 0) break;
      MicroOp& u = pool_[h];
      if (!ready(u)) continue;
      if (!fu_.try_take(u.ins.cls)) break;  // class units exhausted
      u.issued = true;
      u.stage = PipeStage::Queue;  // occupancy_stage maps issued->Execute
      u.ready_at = now + FuBudget::latency(cfg_.core, u.ins.cls);
      exec_wheel_.schedule(u.ready_at, now, {h, pool_.generation(h)});
      ++exec_live_;
      scratch_issue_.push_back(h);
      assert(preissue_[u.tid] > 0);
      --preissue_[u.tid];
      ++stats_.instructions_issued;
      --width;
    }
    for (const UopHandle h : scratch_issue_) q->remove(h);
  }

  // Memory queue: loads issue to the hierarchy but keep their LSQ entry
  // until the data returns (stores wait for commit), so selection walks
  // the age-ordered unissued-load list rather than the whole queue.
  bool any_load_issued = false;
  for (const UopHandle h : lsq_unissued_) {
    if (width == 0) break;
    MicroOp& u = pool_[h];
    if (!ready(u)) continue;
    if (!fu_.try_take(InstrClass::Load)) break;
    u.issued = true;
    any_load_issued = true;
    assert(preissue_[u.tid] > 0);
    --preissue_[u.tid];
    ++stats_.instructions_issued;
    --width;
    if (u.wrong_path) {
      // Wrong-path loads never touch the hierarchy (paper methodology):
      // they complete locally after the L1 hit latency.
      u.ready_at = now + cfg_.mem.l1_latency;
      exec_wheel_.schedule(u.ready_at, now, {h, pool_.generation(h)});
      ++exec_live_;
    } else {
      const std::uint64_t token =
          mem_.request_load(id_, u.tid, u.ins.eff_addr, now);
      u.mem_token = token;
      load_by_token_.emplace(token, h);
      ++stats_.loads_issued;
      policy_->on_load_issued(u.tid, token, mem_.l2_bank_of(u.ins.eff_addr),
                              now);
    }
  }
  if (any_load_issued)
    std::erase_if(lsq_unissued_,
                  [this](UopHandle h) { return pool_[h].issued; });
}

// ---------------------------------------------------------------------------
// dispatch (rename)
// ---------------------------------------------------------------------------

void SmtCore::do_dispatch(Cycle now) {
  std::uint32_t width = cfg_.core.rename_width;
  const auto n = static_cast<std::uint32_t>(traces_.size());
  // Rotate the starting thread for fairness.
  const std::uint32_t start = static_cast<std::uint32_t>(now) % n;
  for (std::uint32_t i = 0; i < n && width > 0; ++i) {
    const ThreadId t = (start + i) % n;
    while (width > 0 && !frontend_[t].empty()) {
      const UopHandle h = frontend_[t].front();
      MicroOp& u = pool_[h];
      if (now < u.fetch_cycle + fe_depth_) {
        ++stats_.dispatch_blocked_young;
        break;  // still in the delay line
      }
      if (rob_[t].full()) {
        ++stats_.dispatch_blocked_rob;
        break;
      }
      IssueQueue& q = queue_for(u.ins.cls);
      if (q.full()) {
        if (&q == &iq_int_)
          ++stats_.dispatch_blocked_iq_int;
        else if (&q == &iq_fp_)
          ++stats_.dispatch_blocked_iq_fp;
        else
          ++stats_.dispatch_blocked_iq_mem;
        break;
      }
      if (u.ins.has_dst() && !rename_[t].can_rename(u.ins.dst)) {
        ++stats_.dispatch_blocked_regs;
        break;
      }

      // Rename sources then destination.
      for (int s = 0; s < 2; ++s) {
        u.src_phys[s] = u.ins.src[s] == kNoLogReg
                            ? kNoPhysReg
                            : rename_[t].lookup(u.ins.src[s]);
      }
      if (u.ins.has_dst()) {
        const auto r = rename_[t].rename_dst(u.ins.dst);
        u.dst_phys = r.fresh;
        u.prev_dst_phys = r.previous;
      }
      u.stage = PipeStage::Queue;
      rob_[t].push_back(h);
      q.insert(h);
      if (&q == &iq_mem_ && u.is_load()) lsq_unissued_.push_back(h);
      ++preissue_[t];
      frontend_[t].pop_front();
      --width;
    }
  }
}

// ---------------------------------------------------------------------------
// fetch
// ---------------------------------------------------------------------------

void SmtCore::do_fetch(Cycle now) {
  // Skip the priority computation when no context may fetch this cycle
  // (checked after on_cycle so same-cycle ungating is honoured; every
  // policy's fetch_order is a pure function of the view, so skipping it
  // cannot change later decisions).
  bool any_can_fetch = false;
  for (const ThreadFetchState& fs : fstate_) any_can_fetch |= fs.can_fetch();
  if (!any_can_fetch) return;

  CoreView view;
  view.num_threads = static_cast<std::uint32_t>(traces_.size());
  for (ThreadId t = 0; t < view.num_threads; ++t) {
    view.icount[t] = preissue_count(t);
    view.brcount[t] = inflight_ctrl_[t];
    view.misscount[t] = inflight_dmiss_[t];
    view.blocked[t] = fstate_[t].hard_blocked();
  }
  std::array<ThreadId, kMaxContexts> order{};
  policy_->fetch_order(view, order);

  std::uint32_t budget = cfg_.core.fetch_width;
  std::uint32_t threads_used = 0;
  for (std::uint32_t i = 0;
       i < view.num_threads && budget > 0 &&
       threads_used < cfg_.core.fetch_threads;
       ++i) {
    const ThreadId t = order[i];
    if (!fstate_[t].can_fetch()) continue;
    const std::uint32_t fetched = fetch_thread(t, budget, now);
    if (fetched > 0) {
      budget -= fetched;
      ++threads_used;
    }
  }
}

std::uint32_t SmtCore::fetch_thread(ThreadId t, std::uint32_t budget,
                                    Cycle now) {
  ThreadFetchState& fs = fstate_[t];
  std::uint32_t fetched = 0;

  // Bounded fetch buffer: fetch stalls when the front-end backs up (also
  // caps how far a wrong path can run ahead of its branch). The buffer must
  // cover the full front-end delay (fe_depth cycles at fetch_width) plus
  // slack, or fetch cannot stream.
  const std::size_t fe_cap =
      static_cast<std::size_t>(cfg_.core.fetch_width) * (fe_depth_ + 2);

  while (budget > 0 && frontend_[t].size() < fe_cap) {
    // Determine the pc of the next instruction on the (possibly wrong)
    // fetch path.
    TraceInstr ins;
    if (fs.wrong_path) {
      ins = bbdict_.instr(fs.wp_base, fs.wp_k);
    } else {
      ins = traces_[t]->at(fs.next_seq);
    }

    // I-cache: probe once per line transition.
    const Addr line = ins.pc & ~Addr{cfg_.mem.line_bytes - 1};
    if (line != fs.last_fetch_line) {
      const auto token = mem_.request_ifetch(id_, t, ins.pc, now);
      if (token) {
        fs.icache_wait = true;
        fs.icache_token = *token;
        break;  // fetch stalls until the line arrives
      }
      fs.last_fetch_line = line;
    }

    const UopHandle h = pool_.alloc();
    MicroOp& u = pool_[h];
    u.ins = ins;
    u.tid = t;
    u.fetch_cycle = now;
    u.stage = PipeStage::Fetch;
    u.local_order = fs.next_local_order++;
    u.wrong_path = fs.wrong_path;
    u.seq = fs.wrong_path ? fs.wp_k : fs.next_seq;

    bool taken_break = false;
    if (ins.is_control()) {
      ++inflight_ctrl_[t];  // BRCOUNT metric
      u.bp_checkpoint = branch_.checkpoint(t);
      const BranchPrediction pred = branch_.predict(t, ins);
      u.pred_taken = pred.taken;
      u.pred_target = pred.target;
      if (!fs.wrong_path) {
        // Trace-driven simulators train the predictor with the known
        // outcome at fetch (in program order, against the exact history the
        // prediction used); the *timing* cost of a mispredict is still paid
        // at resolution. This avoids the unrealistic cold-start spiral a
        // resolution-time-trained predictor suffers when branches depend on
        // missing loads.
        branch_.resolve(t, ins, pred.taken, u.bp_checkpoint.history);
      }
      if (fs.wrong_path) {
        // Wrong-path control: prediction only steers the bogus stream.
        if (pred.taken) {
          fs.wp_base = pred.target;
          fs.wp_k = 0;
          taken_break = true;
        }
      } else {
        u.mispredicted = (pred.taken != ins.taken) ||
                         (pred.taken && pred.target != ins.target);
        if (u.mispredicted) {
          // Fetch continues down the predicted (wrong) path.
          fs.wrong_path = true;
          fs.wp_base = pred.taken ? pred.target : ins.pc + 4;
          fs.wp_k = 0;
          if (pred.taken) taken_break = true;
        } else if (pred.taken) {
          taken_break = true;  // classic fetch-to-taken-branch break
        }
      }
    }

    if (fs.wrong_path && u.wrong_path) {
      if (!taken_break) ++fs.wp_k;
      ++stats_.fetched_wrong_path;
    } else if (!u.wrong_path) {
      ++fs.next_seq;
      if (u.mispredicted && !u.pred_taken) {
        // Mispredicted as not-taken: the wrong path starts at the next
        // sequential pc, which the front-end keeps fetching.
      }
    }

    frontend_[t].push_back(h);
    ++stats_.fetched;
    ++fetched;
    --budget;
    if (taken_break) {
      fs.last_fetch_line = ~Addr{0};  // redirect: new line next cycle
      break;
    }
  }
  return fetched;
}

// ---------------------------------------------------------------------------
// squash machinery
// ---------------------------------------------------------------------------

void SmtCore::remove_squashed_uop(UopHandle h, SquashCause cause, Cycle now) {
  MicroOp& u = pool_[h];
  if (u.is_control() && !u.completed && inflight_ctrl_[u.tid] > 0)
    --inflight_ctrl_[u.tid];
  const PipeStage st = occupancy_stage(u, now);
  auto& ledger = cause == SquashCause::PolicyFlush
                     ? stats_.policy_flushed_by_stage
                     : stats_.branch_squashed_by_stage;
  ++ledger[static_cast<std::size_t>(st)];

  if (u.stage == PipeStage::Queue) {
    IssueQueue& q = queue_for(u.ins.cls);
    const bool was_in_q = q.remove(h);
    if (was_in_q && !u.issued) {
      assert(preissue_[u.tid] > 0);
      --preissue_[u.tid];
      if (u.is_load()) std::erase(lsq_unissued_, h);
    }
    // Issued-but-incomplete uops with no hierarchy token live on the exec
    // wheel (right-path loads wait on the hierarchy instead). Their wheel
    // entry stays behind as a stale slot — the generation check in
    // do_writeback discards it — but the live count drops now so the
    // all-threads-stalled early exit stays exact.
    if (u.issued && !u.completed && u.mem_token == 0) {
      assert(exec_live_ > 0);
      --exec_live_;
    }
    if (u.mem_token != 0) {
      load_by_token_.erase(u.mem_token);
      u.mem_token = 0;
    }
    // Rename unwind (caller guarantees youngest-first ordering).
    if (u.dst_phys != kNoPhysReg)
      rename_[u.tid].unwind(u.ins.dst, u.dst_phys, u.prev_dst_phys);
  }
  pool_.release(h);
}

void SmtCore::squash_younger_than(ThreadId t, std::uint64_t older_order,
                                  SquashCause cause) {
  const Cycle now = now_;  // only used for stage classification
  // Oldest squashed control op, for branch-state repair.
  bool have_ctrl = false;
  std::uint64_t ctrl_order = 0;
  BranchUnit::Checkpoint ctrl_cp{};

  auto note_ctrl = [&](const MicroOp& u) {
    if (u.is_control() && (!have_ctrl || u.local_order < ctrl_order)) {
      have_ctrl = true;
      ctrl_order = u.local_order;
      ctrl_cp = u.bp_checkpoint;
    }
  };

  // Front-end first (youngest): every entry is younger than anything
  // dispatched, but guard with the order check anyway.
  while (!frontend_[t].empty()) {
    const UopHandle h = frontend_[t].back();
    if (pool_[h].local_order <= older_order) break;
    note_ctrl(pool_[h]);
    frontend_[t].pop_back();
    remove_squashed_uop(h, cause, now);
  }
  // ROB from the tail, youngest first (required for rename unwind).
  while (!rob_[t].empty()) {
    const UopHandle h = rob_[t].back();
    if (pool_[h].local_order <= older_order) break;
    note_ctrl(pool_[h]);
    rob_[t].pop_back();
    remove_squashed_uop(h, cause, now);
  }

  if (have_ctrl) branch_.restore(t, ctrl_cp);
}

// ---------------------------------------------------------------------------
// CoreControl (policy response actions)
// ---------------------------------------------------------------------------

bool SmtCore::flush_after_load(std::uint64_t mem_token) {
  const auto it = load_by_token_.find(mem_token);
  if (it == load_by_token_.end()) return false;
  const UopHandle h = it->second;
  const MicroOp& u = pool_[h];
  const ThreadId t = u.tid;
  assert(!u.wrong_path && "flush target must be an architectural load");
  squash_younger_than(t, u.local_order, SquashCause::PolicyFlush);
  fstate_[t].resume_right_path(u.seq + 1);
  fstate_[t].stall_tokens.push_back(mem_token);
  ++stats_.policy_flush_events;
  policy_->on_thread_flushed(t, mem_token);
  return true;
}

bool SmtCore::stall_until_load(std::uint64_t mem_token) {
  const auto it = load_by_token_.find(mem_token);
  if (it == load_by_token_.end()) return false;
  const ThreadId t = pool_[it->second].tid;
  auto& tokens = fstate_[t].stall_tokens;
  if (std::find(tokens.begin(), tokens.end(), mem_token) == tokens.end())
    tokens.push_back(mem_token);
  return true;
}

void SmtCore::set_fetch_gate(ThreadId tid, bool gated) {
  fstate_[tid].gated = gated;
}

// ---------------------------------------------------------------------------
// snapshot support
// ---------------------------------------------------------------------------

namespace {

void save_fetch_state(ArchiveWriter& ar, const ThreadFetchState& fs) {
  ar.put(fs.next_seq);
  ar.put(fs.wrong_path);
  ar.put(fs.wp_base);
  ar.put(fs.wp_k);
  ar.put(fs.last_fetch_line);
  ar.put(fs.icache_wait);
  ar.put(fs.icache_token);
  ar.put(fs.gated);
  ar.put_vec(fs.stall_tokens);
  ar.put(fs.next_local_order);
}

void load_fetch_state(ArchiveReader& ar, ThreadFetchState& fs) {
  fs.next_seq = ar.get<SeqNo>();
  fs.wrong_path = ar.get<bool>();
  fs.wp_base = ar.get<Addr>();
  fs.wp_k = ar.get<std::uint64_t>();
  fs.last_fetch_line = ar.get<Addr>();
  fs.icache_wait = ar.get<bool>();
  fs.icache_token = ar.get<std::uint64_t>();
  fs.gated = ar.get<bool>();
  ar.get_vec(fs.stall_tokens);
  fs.next_local_order = ar.get<std::uint64_t>();
}

}  // namespace

void SmtCore::save_state(ArchiveWriter& ar) const {
  static_assert(std::is_trivially_copyable_v<CoreStats>);
  ar.put(stats_);
  ar.put(now_);
  for (std::size_t t = 0; t < fstate_.size(); ++t) {
    save_fetch_state(ar, fstate_[t]);
    ar.put_deque(frontend_[t]);
    rename_[t].save(ar);
    rob_[t].save(ar);
  }
  ar.put_vec(preissue_);
  ar.put_vec(inflight_ctrl_);
  ar.put_vec(inflight_dmiss_);
  int_regs_.save(ar);
  fp_regs_.save(ar);
  iq_int_.save(ar);
  iq_fp_.save(ar);
  iq_mem_.save(ar);
  pool_.save(ar);
  exec_wheel_.save(ar);
  ar.put(exec_live_);
  ar.put_vec(lsq_unissued_);
  ar.put_map(load_by_token_);
  branch_.save(ar);
  policy_->save_state(ar);
}

void SmtCore::load_state(ArchiveReader& ar) {
  stats_ = ar.get<CoreStats>();
  now_ = ar.get<Cycle>();
  for (std::size_t t = 0; t < fstate_.size(); ++t) {
    load_fetch_state(ar, fstate_[t]);
    ar.get_deque(frontend_[t]);
    rename_[t].load(ar);
    rob_[t].load(ar);
  }
  ar.get_vec(preissue_);
  ar.get_vec(inflight_ctrl_);
  ar.get_vec(inflight_dmiss_);
  int_regs_.load(ar);
  fp_regs_.load(ar);
  iq_int_.load(ar);
  iq_fp_.load(ar);
  iq_mem_.load(ar);
  pool_.load(ar);
  exec_wheel_.load(ar);
  exec_live_ = ar.get<std::uint32_t>();
  ar.get_vec(lsq_unissued_);
  ar.get_map(load_by_token_);
  branch_.load(ar);
  policy_->load_state(ar);
}

}  // namespace mflush
