#pragma once

#include <cstdint>
#include <vector>

#include "common/archive.h"
#include "pipeline/uop.h"

namespace mflush {

/// One issue queue (int, fp, or ld/st), shared among the core's contexts.
///
/// Entries keep insertion (age) order; issue selection scans oldest-first.
/// Removal is O(n) with n ≤ 64, which is cheap and keeps the order exact.
class IssueQueue {
 public:
  explicit IssueQueue(std::uint32_t capacity) : cap_(capacity) {
    entries_.reserve(capacity);
  }

  [[nodiscard]] bool full() const noexcept { return entries_.size() >= cap_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return cap_; }

  void insert(UopHandle h) { entries_.push_back(h); }

  /// Remove a specific entry (issued or squashed); returns true if found.
  bool remove(UopHandle h);

  /// Oldest-first view for the issue selector.
  [[nodiscard]] const std::vector<UopHandle>& entries() const noexcept {
    return entries_;
  }

  /// Count of entries belonging to `tid` (ICOUNT bookkeeping checks).
  [[nodiscard]] std::uint32_t count_for(const UopPool& pool,
                                        ThreadId tid) const;

  void save(ArchiveWriter& ar) const { ar.put_vec(entries_); }
  void load(ArchiveReader& ar) { ar.get_vec(entries_); }

 private:
  std::vector<UopHandle> entries_;
  std::uint32_t cap_;  // lint: transient — ctor capacity
};

}  // namespace mflush
