#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "pipeline/uop.h"

namespace mflush {

/// Per-thread fetch-engine state: where to fetch next (right path vs the
/// wrong path after an unresolved mispredicted branch), I-cache waits, and
/// the policy stall machinery.
struct ThreadFetchState {
  // Right-path cursor into the thread's trace.
  SeqNo next_seq = 0;

  // Wrong-path mode (entered when a mispredicted control op is fetched;
  // cleared by recovery or any squash-restart).
  bool wrong_path = false;
  Addr wp_base = 0;         ///< wrong-path region base pc
  std::uint64_t wp_k = 0;   ///< next wrong-path instruction index

  // I-cache line tracking.
  Addr last_fetch_line = ~Addr{0};
  bool icache_wait = false;
  std::uint64_t icache_token = 0;

  // Policy gating (MFLUSH preventive state).
  bool gated = false;

  // Fetch stalled until these loads resolve (FLUSH / STALL response).
  std::vector<std::uint64_t> stall_tokens;

  // Monotonic per-thread program order (right + wrong path interleaved).
  std::uint64_t next_local_order = 0;

  [[nodiscard]] bool hard_blocked() const noexcept {
    return icache_wait || !stall_tokens.empty();
  }
  [[nodiscard]] bool can_fetch() const noexcept {
    return !hard_blocked() && !gated;
  }

  /// Reset speculation state back to the right path at `seq`.
  void resume_right_path(SeqNo seq) noexcept {
    next_seq = seq;
    wrong_path = false;
    wp_base = 0;
    wp_k = 0;
    last_fetch_line = ~Addr{0};
  }
};

/// Per-thread in-order front-end: a delay line between fetch and
/// rename/dispatch. A uop is dispatchable once it has spent
/// fetch+decode+rename stages in the queue.
using FrontEndQueue = std::deque<UopHandle>;

}  // namespace mflush
