#include "pipeline/regfile.h"

#include <cassert>

namespace mflush {

PhysRegFile::PhysRegFile(std::uint32_t num_regs)
    : ready_(num_regs, 0), allocated_(num_regs, 0) {
  free_.reserve(num_regs);
  for (std::uint32_t i = num_regs; i > 0; --i)
    free_.push_back(static_cast<PhysReg>(i - 1));
}

PhysReg PhysRegFile::alloc() {
  assert(!free_.empty());
  const PhysReg r = free_.back();
  free_.pop_back();
  assert(!allocated_[r] && "double allocation");
  allocated_[r] = 1;
  ready_[r] = 0;
  return r;
}

void PhysRegFile::release(PhysReg r) {
  assert(r < allocated_.size());
  assert(allocated_[r] && "double free");
  allocated_[r] = 0;
  free_.push_back(r);
}

}  // namespace mflush
