#pragma once

#include <array>
#include <cstdint>

#include "common/archive.h"
#include "common/types.h"
#include "pipeline/regfile.h"

namespace mflush {

/// Per-thread logical→physical mapping over the two shared register files.
///
/// Registers 0..31 are integer, 32..63 floating point. Construction maps
/// every architectural register to a fresh ready physical register.
class RenameMap {
 public:
  RenameMap(PhysRegFile& int_regs, PhysRegFile& fp_regs);

  [[nodiscard]] static bool is_fp_reg(LogReg r) noexcept { return r >= 32; }

  [[nodiscard]] PhysReg lookup(LogReg r) const noexcept { return map_[r]; }

  /// Can a destination of this class be allocated right now?
  [[nodiscard]] bool can_rename(LogReg dst) const noexcept;

  /// Allocate a new physical register for `dst`; returns {new, previous}.
  struct Renamed {
    PhysReg fresh;
    PhysReg previous;
  };
  [[nodiscard]] Renamed rename_dst(LogReg dst);

  /// Squash unwind: restore `dst` to `previous`, freeing `fresh`.
  void unwind(LogReg dst, PhysReg fresh, PhysReg previous);

  /// Commit: the previous mapping is dead, free it.
  void commit_release(LogReg dst, PhysReg previous);

  void save(ArchiveWriter& ar) const { ar.put(map_); }
  void load(ArchiveReader& ar) { map_ = ar.get<decltype(map_)>(); }

 private:
  [[nodiscard]] PhysRegFile& file_for(LogReg r) noexcept {
    return is_fp_reg(r) ? fp_ : int_;
  }

  PhysRegFile& int_;
  PhysRegFile& fp_;
  std::array<PhysReg, kNumLogicalRegs> map_{};
};

}  // namespace mflush
