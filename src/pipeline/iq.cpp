#include "pipeline/iq.h"

#include <algorithm>

namespace mflush {

bool IssueQueue::remove(UopHandle h) {
  const auto it = std::find(entries_.begin(), entries_.end(), h);
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::uint32_t IssueQueue::count_for(const UopPool& pool, ThreadId tid) const {
  std::uint32_t n = 0;
  for (const UopHandle h : entries_)
    if (pool[h].tid == tid) ++n;
  return n;
}

}  // namespace mflush
