#include "pipeline/rename.h"

#include <cassert>

namespace mflush {

RenameMap::RenameMap(PhysRegFile& int_regs, PhysRegFile& fp_regs)
    : int_(int_regs), fp_(fp_regs) {
  for (std::size_t r = 0; r < kNumLogicalRegs; ++r) {
    PhysRegFile& f = file_for(static_cast<LogReg>(r));
    const PhysReg p = f.alloc();
    f.set_ready(p);
    map_[r] = p;
  }
}

bool RenameMap::can_rename(LogReg dst) const noexcept {
  return (is_fp_reg(dst) ? fp_ : int_).has_free();
}

RenameMap::Renamed RenameMap::rename_dst(LogReg dst) {
  PhysRegFile& f = file_for(dst);
  const PhysReg fresh = f.alloc();
  const PhysReg previous = map_[dst];
  map_[dst] = fresh;
  return {fresh, previous};
}

void RenameMap::unwind(LogReg dst, PhysReg fresh, PhysReg previous) {
  assert(map_[dst] == fresh && "unwind out of order");
  map_[dst] = previous;
  file_for(dst).release(fresh);
}

void RenameMap::commit_release(LogReg dst, PhysReg previous) {
  file_for(dst).release(previous);
}

}  // namespace mflush
