#pragma once

#include <cstdint>
#include <vector>

#include "branch/unit.h"
#include "common/archive.h"
#include "common/types.h"
#include "trace/instr.h"

namespace mflush {

/// Handle into a core's micro-op pool.
using UopHandle = std::uint32_t;
inline constexpr UopHandle kNoUop = 0xffffffff;

/// One in-flight instruction inside an SMT core.
struct MicroOp {
  TraceInstr ins;      ///< architectural payload (trace copy)
  SeqNo seq = 0;       ///< trace position (right path); bbdict k (wrong path)
  std::uint64_t local_order = 0;  ///< per-thread program order incl. wrong path
  ThreadId tid = 0;

  PipeStage stage = PipeStage::Fetch;
  // Explicit zero-initialized padding throughout: the pool is serialized
  // by raw memcpy, so implicit holes would put uninitialized bytes in the
  // snapshot and break canonical-bytes equality across processes.
  std::uint8_t _pad0[3] = {};
  Cycle fetch_cycle = 0;

  PhysReg src_phys[2] = {kNoPhysReg, kNoPhysReg};
  PhysReg dst_phys = kNoPhysReg;
  PhysReg prev_dst_phys = kNoPhysReg;  ///< overwritten mapping (unwind/commit)

  bool wrong_path = false;
  bool issued = false;
  bool completed = false;
  std::uint8_t _pad1[5] = {};
  Cycle ready_at = kNeverCycle;  ///< execution completion time (non-loads)

  // Control state (branches/calls/returns).
  bool pred_taken = false;
  std::uint8_t _pad2[7] = {};
  Addr pred_target = 0;
  bool mispredicted = false;  ///< known at fetch (trace-driven), acted at exec
  std::uint8_t _pad3[7] = {};
  BranchUnit::Checkpoint bp_checkpoint{};

  // Memory state (loads).
  std::uint64_t mem_token = 0;  ///< hierarchy token once issued

  bool in_use = false;
  std::uint8_t _pad4[7] = {};

  [[nodiscard]] bool is_load() const noexcept {
    return ins.cls == InstrClass::Load;
  }
  [[nodiscard]] bool is_store() const noexcept {
    return ins.cls == InstrClass::Store;
  }
  [[nodiscard]] bool is_control() const noexcept { return ins.is_control(); }
};

/// Fixed pool of micro-ops with a free list (no allocation in steady state).
///
/// Each slot carries an allocation generation so stale handles (e.g. wakeup
/// wheel entries whose uop was squashed and whose slot was re-allocated) can
/// be detected and discarded instead of acting on the wrong instruction.
class UopPool {
 public:
  explicit UopPool(std::size_t capacity) {
    pool_.resize(capacity);
    gen_.assign(capacity, 0);
    free_.reserve(capacity);
    for (std::size_t i = capacity; i > 0; --i)
      free_.push_back(static_cast<UopHandle>(i - 1));
  }

  [[nodiscard]] UopHandle alloc() {
    UopHandle h;
    if (free_.empty()) {
      pool_.emplace_back();
      gen_.push_back(0);
      h = static_cast<UopHandle>(pool_.size() - 1);
    } else {
      h = free_.back();
      free_.pop_back();
      pool_[h] = MicroOp{};
    }
    ++gen_[h];
    pool_[h].in_use = true;
    return h;
  }

  void release(UopHandle h) {
    pool_[h].in_use = false;
    free_.push_back(h);
  }

  [[nodiscard]] MicroOp& operator[](UopHandle h) { return pool_[h]; }
  [[nodiscard]] const MicroOp& operator[](UopHandle h) const {
    return pool_[h];
  }
  [[nodiscard]] std::size_t live() const noexcept {
    return pool_.size() - free_.size();
  }
  [[nodiscard]] std::uint32_t generation(UopHandle h) const noexcept {
    return gen_[h];
  }

  void save(ArchiveWriter& ar) const {
    static_assert(std::is_trivially_copyable_v<MicroOp>);
    ar.put_vec(pool_);
    ar.put_vec(gen_);
    ar.put_vec(free_);
  }
  void load(ArchiveReader& ar) {
    ar.get_vec(pool_);
    ar.get_vec(gen_);
    ar.get_vec(free_);
  }

 private:
  std::vector<MicroOp> pool_;
  std::vector<std::uint32_t> gen_;  ///< bumped per alloc of the slot
  std::vector<UopHandle> free_;
};

}  // namespace mflush
