#include "pipeline/frontend.h"

// Header-only; this translation unit anchors the target.
namespace mflush {}
