#pragma once

#include <cstdint>
#include <vector>

#include "common/archive.h"
#include "common/types.h"

namespace mflush {

/// One class (int or fp) of shared physical registers: free list + ready
/// bits. 320 int + 320 fp registers are shared by both SMT contexts of a
/// core (Fig. 1) — running out of them is one of the clogs FLUSH relieves.
class PhysRegFile {
 public:
  explicit PhysRegFile(std::uint32_t num_regs);

  [[nodiscard]] bool has_free() const noexcept { return !free_.empty(); }
  [[nodiscard]] std::uint32_t free_count() const noexcept {
    return static_cast<std::uint32_t>(free_.size());
  }

  /// Allocate a register, initially not ready. Caller must check has_free().
  [[nodiscard]] PhysReg alloc();

  void release(PhysReg r);

  void set_ready(PhysReg r) noexcept { ready_[r] = 1; }
  void clear_ready(PhysReg r) noexcept { ready_[r] = 0; }
  [[nodiscard]] bool ready(PhysReg r) const noexcept {
    return r == kNoPhysReg || ready_[r] != 0;
  }

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(ready_.size());
  }

  void save(ArchiveWriter& ar) const {
    ar.put_vec(ready_);
    ar.put_vec(free_);
    ar.put_vec(allocated_);
  }
  void load(ArchiveReader& ar) {
    ar.get_vec(ready_);
    ar.get_vec(free_);
    ar.get_vec(allocated_);
  }

 private:
  std::vector<std::uint8_t> ready_;
  std::vector<PhysReg> free_;
  std::vector<std::uint8_t> allocated_;  ///< debug double-free guard
};

}  // namespace mflush
