#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "branch/unit.h"
#include "common/archive.h"
#include "common/config.h"
#include "common/types.h"
#include "common/wheel.h"
#include "core/fetch_policy.h"
#include "mem/hierarchy.h"
#include "pipeline/frontend.h"
#include "pipeline/fu.h"
#include "pipeline/iq.h"
#include "pipeline/regfile.h"
#include "pipeline/rename.h"
#include "pipeline/rob.h"
#include "pipeline/uop.h"
#include "trace/bbdict.h"
#include "trace/instr.h"

namespace mflush {

/// Why a set of instructions was squashed (separate energy ledgers).
enum class SquashCause : std::uint8_t { BranchMispredict, PolicyFlush };

/// Per-core statistics.
struct CoreStats {
  Cycle cycles = 0;
  std::array<std::uint64_t, kMaxContexts> committed{};
  std::uint64_t fetched = 0;
  std::uint64_t fetched_wrong_path = 0;
  std::uint64_t branches_resolved = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t loads_issued = 0;
  std::uint64_t policy_flush_events = 0;
  /// Instructions squashed by the FLUSH mechanism, per pipeline stage
  /// reached — the Fig. 10/11 energy input.
  std::array<std::uint64_t, kNumPipeStages> policy_flushed_by_stage{};
  std::array<std::uint64_t, kNumPipeStages> branch_squashed_by_stage{};

  /// Dispatch head-of-line blocker events (diagnosis).
  std::uint64_t dispatch_blocked_young = 0;
  std::uint64_t dispatch_blocked_rob = 0;
  std::uint64_t dispatch_blocked_iq_int = 0;
  std::uint64_t dispatch_blocked_iq_fp = 0;
  std::uint64_t dispatch_blocked_iq_mem = 0;
  std::uint64_t dispatch_blocked_regs = 0;
  std::uint64_t instructions_issued = 0;

  [[nodiscard]] std::uint64_t committed_total() const noexcept {
    std::uint64_t s = 0;
    for (const auto c : committed) s += c;
    return s;
  }
  [[nodiscard]] std::uint64_t policy_flushed_total() const noexcept {
    std::uint64_t s = 0;
    for (const auto c : policy_flushed_by_stage) s += c;
    return s;
  }
};

/// One out-of-order SMT core (Fig. 1 core parameters), tied to the shared
/// memory hierarchy and driven cycle-by-cycle by the CMP simulator.
///
/// Stage order within one tick (backwards through the pipe so each
/// instruction moves at most one stage per cycle):
///   memory completions → commit → writeback/branch-resolve → issue →
///   dispatch(rename) → policy.on_cycle → fetch.
class SmtCore final : public CoreControl {
 public:
  SmtCore(CoreId id, const SimConfig& cfg, MemoryHierarchy& mem,
          std::unique_ptr<FetchPolicy> policy,
          std::vector<TraceSource*> traces);

  void tick(Cycle now);

  /// Local-clock horizon: the earliest future cycle at which ticking this
  /// core might NOT be a guaranteed no-op, assuming no shared-memory event
  /// (completion, L2-path/L2-miss notification) is delivered first — a
  /// delivery is the rendezvous that invalidates the horizon. `now + 1`
  /// means the core must tick every cycle; anything later lets the
  /// scheduler (CmpSimulator::run) put the core to sleep and credit the
  /// skipped cycles via advance_idle().
  ///
  /// The no-op proof covers pipelines that still hold instructions (a
  /// flushed thread's offending load, a stalled thread's in-flight
  /// window): nothing executing locally, every context's fetch
  /// hard-blocked, dispatch heads blocked (too young — a horizon — or
  /// stuck on frozen ROB/IQ/register capacity), commit heads stuck, no
  /// queued uop issuable with the register file frozen, and the policy
  /// heartbeat quiescent through its own horizon.
  [[nodiscard]] Cycle next_local_event(Cycle now) const;

  /// Convenience for tests: the next tick is a provable no-op.
  [[nodiscard]] bool skippable(Cycle now) const {
    return next_local_event(now) > now + 1;
  }

  /// Account `cycles` idle cycles skipped by the event kernel, covering
  /// the window (from, from + cycles]: credits the cycle counter and
  /// replays the dispatch-stage blocker diagnosis counters those no-op
  /// ticks would have recorded (the blocking state is frozen while
  /// asleep, so one classification covers the whole window).
  void advance_idle(Cycle from, Cycle cycles) noexcept;

  /// Snapshot support: serialize/restore all mutable core state (including
  /// the policy's). The core must have been built from the same config.
  void save_state(ArchiveWriter& ar) const;
  void load_state(ArchiveReader& ar);

  // CoreControl (policy response actions)
  bool flush_after_load(std::uint64_t mem_token) override;
  bool stall_until_load(std::uint64_t mem_token) override;
  void set_fetch_gate(ThreadId tid, bool gated) override;

  [[nodiscard]] const CoreStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CoreStats{}; }
  [[nodiscard]] const FetchPolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] std::uint32_t num_threads() const noexcept {
    return static_cast<std::uint32_t>(traces_.size());
  }
  [[nodiscard]] CoreId id() const noexcept { return id_; }

  // Introspection for tests.
  [[nodiscard]] const UopPool& pool() const noexcept { return pool_; }
  [[nodiscard]] const BranchUnit& branch_unit() const noexcept {
    return branch_;
  }
  [[nodiscard]] std::uint32_t preissue_count(ThreadId t) const noexcept {
    return static_cast<std::uint32_t>(frontend_[t].size()) + preissue_[t];
  }
  [[nodiscard]] const Rob& rob(ThreadId t) const noexcept { return rob_[t]; }
  [[nodiscard]] const IssueQueue& iq_int() const noexcept { return iq_int_; }
  [[nodiscard]] const IssueQueue& iq_fp() const noexcept { return iq_fp_; }
  [[nodiscard]] const IssueQueue& iq_mem() const noexcept { return iq_mem_; }
  [[nodiscard]] std::uint32_t free_int_regs() const noexcept {
    return int_regs_.free_count();
  }
  [[nodiscard]] std::uint32_t free_fp_regs() const noexcept {
    return fp_regs_.free_count();
  }
  [[nodiscard]] bool fetch_blocked(ThreadId t) const noexcept {
    return fstate_[t].hard_blocked();
  }
  [[nodiscard]] bool fetch_gated(ThreadId t) const noexcept {
    return fstate_[t].gated;
  }

 private:
  /// True when this cycle's tick would be a guaranteed no-op for every
  /// stage: drained pipeline, all contexts hard-blocked, no memory events.
  [[nodiscard]] bool all_threads_stalled() const;

  /// Source-readiness predicate used by both do_issue and
  /// next_local_event's sleep proof — a single definition so the two can
  /// never diverge.
  [[nodiscard]] bool sources_ready(const MicroOp& u) const noexcept;

  void do_memory_completions(Cycle now);
  void do_commit(Cycle now);
  void do_writeback(Cycle now);
  void do_issue(Cycle now);
  void do_dispatch(Cycle now);
  void do_fetch(Cycle now);

  /// Fetch up to `budget` instructions for thread `t`; returns count.
  std::uint32_t fetch_thread(ThreadId t, std::uint32_t budget, Cycle now);

  /// Squash everything of `t` strictly younger than `older_order`.
  void squash_younger_than(ThreadId t, std::uint64_t older_order,
                           SquashCause cause);
  void remove_squashed_uop(UopHandle h, SquashCause cause, Cycle now);
  [[nodiscard]] PipeStage occupancy_stage(const MicroOp& u, Cycle now) const;
  [[nodiscard]] IssueQueue& queue_for(InstrClass cls) noexcept;
  [[nodiscard]] const IssueQueue& queue_for(InstrClass cls) const noexcept {
    return const_cast<SmtCore*>(this)->queue_for(cls);
  }

  CoreId id_;      // lint: transient — ctor identity
  SimConfig cfg_;  // lint: transient — ctor config
  // fetch+decode+rename stage count
  std::uint32_t fe_depth_;  // lint: transient — ctor config
  MemoryHierarchy& mem_;
  std::unique_ptr<FetchPolicy> policy_;
  // lint: transient — rebound by the owning chip on restore
  std::vector<TraceSource*> traces_;

  BranchUnit branch_;
  // lint: transient — rebuilt deterministically from the trace seed
  BasicBlockDictionary bbdict_;
  UopPool pool_;
  PhysRegFile int_regs_;
  PhysRegFile fp_regs_;
  std::vector<RenameMap> rename_;
  std::vector<Rob> rob_;
  IssueQueue iq_int_;
  IssueQueue iq_fp_;
  IssueQueue iq_mem_;
  FuBudget fu_;  // lint: transient — per-cycle budget, reset each tick

  std::vector<FrontEndQueue> frontend_;
  std::vector<ThreadFetchState> fstate_;
  std::vector<std::uint32_t> preissue_;  ///< in-IQ, not yet issued, per thread
  std::vector<std::uint32_t> inflight_ctrl_;   ///< BRCOUNT metric
  std::vector<std::uint32_t> inflight_dmiss_;  ///< L1DMISSCOUNT metric

  /// A scheduled execution completion. The generation detects entries whose
  /// uop was squashed and whose pool slot was re-allocated before the
  /// wheel bucket came around again.
  struct ExecEntry {
    UopHandle h;
    std::uint32_t gen;
  };
  WakeupWheel<ExecEntry> exec_wheel_{64};  ///< issued, completing at ready_at
  std::uint32_t exec_live_ = 0;  ///< wheel entries whose uop is still live
  /// Not-yet-issued loads of the mem queue, in age order. The issue stage
  /// selects from this instead of rescanning the whole LSQ (whose entries
  /// are mostly issued loads awaiting data and stores awaiting commit).
  std::vector<UopHandle> lsq_unissued_;
  std::unordered_map<std::uint64_t, UopHandle> load_by_token_;

  std::vector<ExecEntry> scratch_due_;     // lint: transient — scratch
  std::vector<UopHandle> scratch_ready_;   // lint: transient — scratch
  std::vector<UopHandle> scratch_issue_;   // lint: transient — scratch

  Cycle now_ = 0;
  CoreStats stats_;
};

}  // namespace mflush
