#include "sim/wire.h"

#include <cstring>
#include <stdexcept>

#include "common/sockio.h"

namespace mflush::daemon {
namespace {

constexpr std::size_t kLenBytes = sizeof(std::uint32_t);
constexpr std::size_t kSumBytes = sizeof(std::uint64_t);

bool valid_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(MsgType::kSubmit) &&
         t <= static_cast<std::uint8_t>(MsgType::kOk);
}

Extract bad(std::string error) {
  Extract e;
  e.status = ExtractStatus::kBad;
  e.error = std::move(error);
  return e;
}

}  // namespace

const char* type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kSubmit:
      return "SUBMIT";
    case MsgType::kStatus:
      return "STATUS";
    case MsgType::kCancel:
      return "CANCEL";
    case MsgType::kList:
      return "LIST";
    case MsgType::kShutdown:
      return "SHUTDOWN";
    case MsgType::kSubmitted:
      return "SUBMITTED";
    case MsgType::kStatusReply:
      return "STATUS_REPLY";
    case MsgType::kResult:
      return "RESULT";
    case MsgType::kDone:
      return "DONE";
    case MsgType::kError:
      return "ERROR";
    case MsgType::kOk:
      return "OK";
  }
  return "?";
}

void Message::save(ArchiveWriter& ar) const {
  ar.put(static_cast<std::uint8_t>(type));
  ar.put_string(campaign);
  ar.put_string(text);
  ar.put(job_id);
  ar.put(total);
  ar.put(done);
  ar.put(executed);
  ar.put(cached);
  ar.put(follow);
  ar.put_vec(blob);
}

Message Message::load(ArchiveReader& ar) {
  Message m;
  const auto t = ar.get<std::uint8_t>();
  if (!valid_type(t))
    throw std::runtime_error("unknown message type " + std::to_string(t));
  m.type = static_cast<MsgType>(t);
  m.campaign = ar.get_string();
  m.text = ar.get_string();
  m.job_id = ar.get<std::uint32_t>();
  m.total = ar.get<std::uint64_t>();
  m.done = ar.get<std::uint64_t>();
  m.executed = ar.get<std::uint64_t>();
  m.cached = ar.get<std::uint64_t>();
  m.follow = ar.get<std::uint8_t>();
  ar.get_vec(m.blob);
  return m;
}

std::vector<std::uint8_t> encode_frame(const Message& msg) {
  ArchiveWriter payload;
  payload.put(kFrameMagic);
  payload.put(kProtocolVersion);
  msg.save(payload);
  const std::vector<std::uint8_t>& body = payload.bytes();
  if (body.size() > kMaxFrameBytes)
    throw std::runtime_error("MFLUSNET frame exceeds " +
                             std::to_string(kMaxFrameBytes) + " bytes");

  ArchiveWriter frame;
  frame.put(static_cast<std::uint32_t>(body.size()));
  frame.put_bytes(body.data(), body.size());
  frame.put(fnv1a(body));
  return frame.take();
}

Extract try_extract(std::span<const std::uint8_t> buffer) {
  Extract out;
  if (buffer.size() < kLenBytes) return out;  // kNeedMore
  std::uint32_t len = 0;
  std::memcpy(&len, buffer.data(), kLenBytes);
  if (len == 0 || len > kMaxFrameBytes)
    return bad("MFLUSNET frame length " + std::to_string(len) +
               " out of range");
  const std::size_t whole = kLenBytes + static_cast<std::size_t>(len) +
                            kSumBytes;
  if (buffer.size() < whole) return out;  // kNeedMore

  const std::span<const std::uint8_t> body = buffer.subspan(kLenBytes, len);
  std::uint64_t stored = 0;
  std::memcpy(&stored, buffer.data() + kLenBytes + len, kSumBytes);
  if (fnv1a(body) != stored) return bad("MFLUSNET frame checksum mismatch");

  ArchiveReader ar(body);
  try {
    if (ar.get<std::uint64_t>() != kFrameMagic)
      return bad("bad MFLUSNET frame magic");
    const auto version = ar.get<std::uint32_t>();
    if (version != kProtocolVersion)
      return bad("MFLUSNET protocol version " + std::to_string(version) +
                 " (this build speaks " + std::to_string(kProtocolVersion) +
                 ")");
    out.msg = Message::load(ar);
    if (!ar.done()) return bad("MFLUSNET frame has trailing bytes");
  } catch (const std::exception& e) {
    return bad(std::string("MFLUSNET frame malformed: ") + e.what());
  }
  out.status = ExtractStatus::kFrame;
  out.consumed = whole;
  return out;
}

void send_frame(int fd, const Message& msg) {
  sockio::write_all(fd, encode_frame(msg));
}

std::optional<Message> read_frame(int fd, std::vector<std::uint8_t>& buffer) {
  for (;;) {
    Extract e = try_extract(buffer);
    if (e.status == ExtractStatus::kBad) throw std::runtime_error(e.error);
    if (e.status == ExtractStatus::kFrame) {
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(e.consumed));
      return std::move(e.msg);
    }
    if (sockio::read_some(fd, buffer) == 0) {
      if (buffer.empty()) return std::nullopt;
      throw std::runtime_error("connection closed mid-frame (" +
                               std::to_string(buffer.size()) +
                               " byte(s) of partial frame)");
    }
  }
}

}  // namespace mflush::daemon
