#include "sim/metrics.h"

// SimMetrics is a plain aggregate; this translation unit anchors the target.
namespace mflush {}
