#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/cmp.h"
#include "sim/experiment.h"

/// Bench-output helpers: paper-style tables over RunResults.
namespace mflush::report {

/// Detailed component dump of a finished simulation (caches, predictor,
/// queues, per-thread commit) — the debugging view.
void print_debug(std::ostream& os, const CmpSimulator& sim);

/// Throughput table: one row per workload, one column per policy, plus a
/// final average row (arithmetic mean of IPCs, as the paper's "average"
/// bars).
void print_throughput(std::ostream& os,
                      const std::vector<std::vector<RunResult>>& by_workload);

/// Wasted-energy table (Fig. 11): wasted units per 1000 committed
/// instructions, per workload × policy, plus averages.
void print_wasted_energy(
    std::ostream& os, const std::vector<std::vector<RunResult>>& by_workload);

/// One-line run summary (examples/quickstart), including the simulator's
/// own throughput (wall-clock and simulated cycles per second) when the
/// run was timed.
[[nodiscard]] std::string summarize(const RunResult& r);

/// One-line simulator-throughput footer over a set of finished runs:
/// total wall-clock work, simulated cycles, and aggregate cycles/second.
/// Empty string when none of the runs carry timing.
[[nodiscard]] std::string throughput_footer(
    const std::vector<RunResult>& runs);
[[nodiscard]] std::string throughput_footer(
    const std::vector<std::vector<RunResult>>& by_workload);

}  // namespace mflush::report
