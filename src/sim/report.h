#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/backend.h"
#include "sim/cmp.h"
#include "sim/experiment.h"
#include "sim/warmstore.h"

/// Bench-output helpers: paper-style tables over RunResults — fed either a
/// pre-shaped workload-row grid or, for backend-driven sweeps, the flat
/// job-id-ordered vector a ResultSink collects.
namespace mflush::report {

/// Reshape a flat backend result vector (ExperimentSpec::expand order,
/// policies minor) into workload rows of `columns` policies each. Throws
/// when the size is not a multiple of `columns`.
[[nodiscard]] std::vector<std::vector<RunResult>> as_grid(
    std::vector<RunResult> flat, std::size_t columns);

/// ResultSink callback printing one progress line per finished job
/// ("[done/total] workload policy: IPC …") — long sweeps report
/// incrementally instead of going silent until the batch drains. Pass
/// total == 0 when the job count is open-ended (adaptive sampled runs);
/// the denominator prints as "?".
[[nodiscard]] ResultSink::OnResult progress_printer(std::ostream& os,
                                                    std::size_t total);

/// Scheduler-event logger for RemoteBackend::Options::on_event: one
/// "remote: ..." line per batch failure, re-queue, or host retirement, so
/// a long distributed sweep narrates its fault handling on stderr instead
/// of going silent until the batch drains.
[[nodiscard]] std::function<void(const std::string&)> event_printer(
    std::ostream& os);

/// Same logger with a caller-chosen line prefix (e.g. "campaign: " for
/// CampaignStore::Options::on_event), so each event source stays
/// distinguishable when several narrate the same stream.
[[nodiscard]] std::function<void(const std::string&)> event_printer(
    std::ostream& os, std::string prefix);

/// Detailed component dump of a finished simulation (caches, predictor,
/// queues, per-thread commit) — the debugging view.
void print_debug(std::ostream& os, const CmpSimulator& sim);

/// Throughput table: one row per workload, one column per policy, plus a
/// final average row (arithmetic mean of IPCs, as the paper's "average"
/// bars).
void print_throughput(std::ostream& os,
                      const std::vector<std::vector<RunResult>>& by_workload);

/// Sink-fed overload: flat job-id-ordered results, `columns` policies per
/// workload row.
void print_throughput(std::ostream& os, const std::vector<RunResult>& flat,
                      std::size_t columns);

/// Wasted-energy table (Fig. 11): wasted units per 1000 committed
/// instructions, per workload × policy, plus averages.
void print_wasted_energy(
    std::ostream& os, const std::vector<std::vector<RunResult>>& by_workload);

/// Sink-fed overload of the wasted-energy table.
void print_wasted_energy(std::ostream& os,
                         const std::vector<RunResult>& flat,
                         std::size_t columns);

/// One-line run summary (examples/quickstart), including the simulator's
/// own throughput (wall-clock and simulated cycles per second) when the
/// run was timed.
[[nodiscard]] std::string summarize(const RunResult& r);

/// One-line warm-store summary ("warm store: N hit(s), ...") for the end
/// of a sampled run — reuse, new entries written (with byte volume), and
/// corrupt entries healed.
[[nodiscard]] std::string summarize(const WarmStore::Stats& stats);

/// Labelled warm-store summary ("warm store[<label>]: ...") — mflushd
/// attributes each tenant's counters to its campaign id; an empty label
/// reproduces the unlabelled line byte for byte.
[[nodiscard]] std::string summarize(const WarmStore::Stats& stats,
                                    const std::string& label);

/// One-line simulator-throughput footer over a set of finished runs:
/// total wall-clock work, simulated cycles, and aggregate cycles/second.
/// Empty string when none of the runs carry timing.
[[nodiscard]] std::string throughput_footer(
    const std::vector<RunResult>& runs);
[[nodiscard]] std::string throughput_footer(
    const std::vector<std::vector<RunResult>>& by_workload);

}  // namespace mflush::report
