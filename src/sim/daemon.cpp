#include "sim/daemon.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/archive.h"
#include "common/sockio.h"
#include "sim/campaign.h"
#include "sim/parallel.h"
#include "sim/warmstore.h"

namespace mflush::daemon {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------------ Conn

/// One client connection. Sends are serialized by a per-connection mutex
/// (several campaigns may stream to the same follower) and become no-ops
/// once the peer is gone — a dead client must never take its campaign
/// down with it.
struct Conn {
  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> open{true};

  void send(const Message& msg) {
    const std::lock_guard lk(write_mutex);
    if (!open.load()) return;
    try {
      send_frame(fd, msg);
    } catch (const std::exception&) {
      open.store(false);
    }
  }
};

// ----------------------------------------------------------- CampaignRun

enum class CampaignState : std::uint8_t {
  kRunning = 0,
  kFinished = 1,
  kFailed = 2,
  kCancelled = 3,
};

[[nodiscard]] const char* state_name(CampaignState s) noexcept {
  switch (s) {
    case CampaignState::kRunning:
      return "running";
    case CampaignState::kFinished:
      return "finished";
    case CampaignState::kFailed:
      return "failed";
    case CampaignState::kCancelled:
      return "cancelled";
  }
  return "?";
}

/// One campaign's in-daemon life: runner thread, durable results log (for
/// late-attaching followers), subscriber list, terminal state. `m` guards
/// everything but `served`, which belongs to the mux's fair-share
/// bookkeeping (guarded by the mux mutex).
struct CampaignRun {
  std::string id;
  std::string dir;
  std::uint64_t announced_total = 0;

  std::mutex m;
  CampaignState state = CampaignState::kRunning;
  bool cancel_requested = false;
  /// Completion-order (job_id, one-entry result archive) pairs. Every
  /// entry was durable (cache + journal) before it landed here, so a
  /// replay to a late subscriber only ever shows crash-survivable work.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> log;
  std::uint64_t executed = 0;  ///< measured jobs the mux ran (this session)
  std::uint64_t total = 0;     ///< final result count, set at termination
  std::uint64_t cached = 0;
  std::vector<std::shared_ptr<Conn>> subscribers;
  bool done_broadcast = false;
  Message done_msg;

  std::thread runner;
  std::uint64_t served = 0;  ///< fair-share: jobs dispatched so far
};

// ---------------------------------------------------------------- JobMux

struct Group;

/// One fair-share dispatch unit: a contiguous slice of one Group's jobs.
struct Chunk {
  CampaignRun* owner = nullptr;
  Group* group = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  unsigned attempts = 0;
};

/// One JobMux::run call (one backend round of one campaign): the caller
/// blocks until every chunk has landed or definitively failed.
struct Group {
  const std::vector<JobSpec>* jobs = nullptr;
  ResultSink* sink = nullptr;
  std::size_t pending = 0;
  std::exception_ptr error;
  std::condition_variable cv;
};

/// The shared slot pool. Each slot thread owns one inner backend (a
/// single-host RemoteBackend, or a SerialBackend for in-process serving)
/// and pulls chunks from the campaign queues; the pick rule is strict
/// fair share — the queued campaign with the fewest jobs served so far
/// wins, ties broken by id for determinism. A failed chunk re-queues (any
/// slot may retry it, so a sick host does not own its victims) up to
/// max_attempts, then fails its whole Group.
class JobMux {
 public:
  JobMux(std::vector<std::unique_ptr<ExperimentBackend>> slots,
         std::size_t chunk_jobs, unsigned max_attempts,
         std::function<void(const std::string&)> on_event)
      : chunk_jobs_(std::max<std::size_t>(1, chunk_jobs)),
        max_attempts_(std::max(1u, max_attempts)),
        on_event_(std::move(on_event)),
        backends_(std::move(slots)) {
    threads_.reserve(backends_.size());
    for (std::size_t i = 0; i < backends_.size(); ++i)
      threads_.emplace_back([this, i] { slot_loop(i); });
  }

  ~JobMux() { stop(); }

  [[nodiscard]] std::size_t slots() const noexcept {
    return backends_.size();
  }

  void stop() {
    {
      const std::lock_guard lk(m_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_)
      if (t.joinable()) t.join();
  }

  /// Run `jobs` for `owner`, blocking until all results are in `sink`.
  /// Chunks execute on an attempt-private staging sink and are pushed to
  /// `sink` only on success, so a retried chunk never double-pushes.
  void run(CampaignRun& owner, const std::vector<JobSpec>& jobs,
           ResultSink& sink) {
    if (jobs.empty()) return;
    Group group;
    group.jobs = &jobs;
    group.sink = &sink;
    std::deque<Chunk> chunks;
    for (std::size_t b = 0; b < jobs.size(); b += chunk_jobs_) {
      Chunk c;
      c.owner = &owner;
      c.group = &group;
      c.begin = b;
      c.end = std::min(jobs.size(), b + chunk_jobs_);
      chunks.push_back(c);
    }
    group.pending = chunks.size();
    std::unique_lock lk(m_);
    if (stopping_)
      throw std::runtime_error("mflushd scheduler is shutting down");
    std::deque<Chunk>& q = queues_[&owner];
    q.insert(q.end(), chunks.begin(), chunks.end());
    cv_.notify_all();
    group.cv.wait(lk, [&] { return group.pending == 0; });
    // pending == 0 means no chunk of this group exists anywhere (queued or
    // in flight), and groups of one owner are sequential — so an empty
    // queue can be dropped. Without this, a restarted campaign's new
    // CampaignRun would share the map with its predecessor's dangling key.
    const auto it = queues_.find(&owner);
    if (it != queues_.end() && it->second.empty()) queues_.erase(it);
    if (group.error) std::rethrow_exception(group.error);
  }

  /// Drop `owner`'s queued (not in-flight) chunks; their groups fail with
  /// a cancellation error, which unwinds the campaign runner.
  void cancel(CampaignRun& owner) {
    const std::lock_guard lk(m_);
    const auto it = queues_.find(&owner);
    if (it == queues_.end()) return;
    for (Chunk& c : it->second) {
      if (!c.group->error) {
        c.group->error = std::make_exception_ptr(
            std::runtime_error("campaign cancelled"));
      }
      if (--c.group->pending == 0) c.group->cv.notify_all();
    }
    it->second.clear();
  }

 private:
  void event(const std::string& line) {
    if (on_event_) on_event_(line);
  }

  [[nodiscard]] bool has_work_locked() const {
    for (const auto& [owner, q] : queues_)
      if (!q.empty()) return true;
    return false;
  }

  [[nodiscard]] Chunk pop_fair_locked() {
    CampaignRun* best = nullptr;
    for (const auto& [owner, q] : queues_) {
      if (q.empty()) continue;
      if (!best || owner->served < best->served ||
          (owner->served == best->served && owner->id < best->id)) {
        best = owner;
      }
    }
    std::deque<Chunk>& q = queues_[best];
    Chunk c = q.front();
    q.pop_front();
    best->served += c.end - c.begin;
    return c;
  }

  void slot_loop(std::size_t slot) {
    for (;;) {
      Chunk chunk;
      {
        std::unique_lock lk(m_);
        cv_.wait(lk, [&] { return stopping_ || has_work_locked(); });
        if (stopping_) return;
        chunk = pop_fair_locked();
      }
      execute(slot, chunk);
    }
  }

  void execute(std::size_t slot, Chunk chunk) {
    const std::vector<JobSpec>& all = *chunk.group->jobs;
    const std::vector<JobSpec> slice(
        all.begin() + static_cast<std::ptrdiff_t>(chunk.begin),
        all.begin() + static_cast<std::ptrdiff_t>(chunk.end));
    try {
      ResultSink staged;
      backends_[slot]->run(slice, staged);
      std::uint64_t measured = 0;
      for (const JobSpec& job : slice) {
        chunk.group->sink->push(job, staged.at(job.id));
        if (!job.warm_only) ++measured;
      }
      {
        const std::lock_guard olk(chunk.owner->m);
        chunk.owner->executed += measured;
      }
      const std::lock_guard lk(m_);
      if (--chunk.group->pending == 0) chunk.group->cv.notify_all();
    } catch (...) {
      const std::lock_guard lk(m_);
      ++chunk.attempts;
      const std::string what = "campaign " + chunk.owner->id + " jobs " +
                               std::to_string(all[chunk.begin].id) + "-" +
                               std::to_string(all[chunk.end - 1].id);
      if (chunk.attempts >= max_attempts_ || stopping_) {
        if (!chunk.group->error) chunk.group->error = std::current_exception();
        if (--chunk.group->pending == 0) chunk.group->cv.notify_all();
        event(what + " failed on slot " + std::to_string(slot) +
              " — attempts exhausted (" + std::to_string(chunk.attempts) +
              ")");
      } else {
        queues_[chunk.owner].push_back(chunk);
        cv_.notify_all();
        event(what + " failed on slot " + std::to_string(slot) +
              " — re-queued (attempt " + std::to_string(chunk.attempts) +
              " of " + std::to_string(max_attempts_) + ")");
      }
    }
  }

  const std::size_t chunk_jobs_;
  const unsigned max_attempts_;
  std::function<void(const std::string&)> on_event_;
  std::vector<std::unique_ptr<ExperimentBackend>> backends_;

  std::mutex m_;
  std::condition_variable cv_;
  std::map<CampaignRun*, std::deque<Chunk>> queues_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// The ExperimentBackend facade one campaign's run_experiment_durable
/// drives: run() enqueues into the shared mux and blocks. warmup_backend()
/// is the default (itself), so warm jobs ride the same fair-share pool.
class MuxBackend final : public ExperimentBackend {
 public:
  MuxBackend(JobMux& mux, CampaignRun& owner) : mux_(mux), owner_(owner) {}

  [[nodiscard]] std::string name() const override { return "mflushd-mux"; }

  void run(const std::vector<JobSpec>& jobs, ResultSink& sink) override {
    mux_.run(owner_, jobs, sink);
  }

 private:
  JobMux& mux_;
  CampaignRun& owner_;
};

// ---------------------------------------------------------------- Server

[[nodiscard]] std::uint64_t spec_total_jobs(const ExperimentSpec& spec) {
  return spec.mode == RunMode::Sampled
             ? spec.num_points() * spec.sampled.forks
             : spec.num_points();
}

class Server {
 public:
  explicit Server(ServeOptions options) : opts_(std::move(options)) {}

  int serve() {
    if (opts_.data_dir.empty())
      throw std::runtime_error("mflushd needs --data DIR");
    fs::create_directories(campaigns_dir());
    fs::create_directories(shared_cache_dir());
    warm_.emplace(warm_dir(), WarmStore::Options{});
    mux_.emplace(make_slots(), opts_.chunk_jobs, opts_.max_attempts,
                 opts_.on_event);
    resume_existing();
    listen_fd_ = sockio::listen_on(opts_.address);
    event("serving " + opts_.address + " (" +
          std::to_string(mux_->slots()) + " slot(s), data " +
          opts_.data_dir + ")");
    if (opts_.on_ready) opts_.on_ready();

    for (;;) {
      const int fd = sockio::accept_on(listen_fd_);
      if (fd < 0) break;  // listen socket closed: shutdown in progress
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      const std::lock_guard lk(conns_m_);
      if (stopping_.load()) {
        sockio::close_fd(fd);
        break;
      }
      conns_.push_back(conn);
      conn_threads_.emplace_back([this, conn] { serve_conn(conn); });
    }

    // Drain: every conn thread exits (their fds are shut down by
    // begin_shutdown), campaigns are already joined there too. The threads
    // are swapped out and joined *without* holding conns_m_: the shutdown
    // conn's own thread still has to take that mutex inside
    // begin_shutdown, and joining it while holding the lock deadlocks.
    std::vector<std::thread> draining;
    {
      const std::lock_guard lk(conns_m_);
      draining.swap(conn_threads_);
    }
    for (std::thread& t : draining)
      if (t.joinable()) t.join();
    join_campaigns();
    mux_->stop();
    sockio::close_fd(listen_fd_);
    const std::string sock_path = sockio::unix_path_of(opts_.address);
    if (!sock_path.empty()) ::unlink(sock_path.c_str());
    event("shutdown complete");
    return 0;
  }

 private:
  [[nodiscard]] std::string campaigns_dir() const {
    return (fs::path(opts_.data_dir) / "campaigns").string();
  }
  [[nodiscard]] std::string shared_cache_dir() const {
    return (fs::path(opts_.data_dir) / "cache").string();
  }
  [[nodiscard]] std::string warm_dir() const {
    return (fs::path(opts_.data_dir) / "warm").string();
  }

  void event(const std::string& line) {
    if (opts_.on_event) opts_.on_event(line);
  }

  [[nodiscard]] std::vector<std::unique_ptr<ExperimentBackend>>
  make_slots() {
    std::vector<std::unique_ptr<ExperimentBackend>> slots;
    if (opts_.hosts.empty()) {
      const unsigned n =
          opts_.slots != 0 ? opts_.slots : ParallelRunner::default_jobs();
      for (unsigned i = 0; i < n; ++i)
        slots.push_back(std::make_unique<SerialBackend>());
      return slots;
    }
    // One backend per host *slot*, each seeing a single one-slot host:
    // the fair-share mux is the scheduler, RemoteBackend the executor —
    // and a chunk that fails here re-queues onto any other slot/host.
    for (const remote::HostSpec& host : opts_.hosts) {
      for (unsigned s = 0; s < host.slots; ++s) {
        RemoteBackend::Options ro;
        remote::HostSpec one = host;
        one.slots = 1;
        ro.hosts = {one};
        ro.worker_binary = opts_.worker_binary;
        ro.max_attempts = 1;  // retries belong to the mux, across slots
        ro.warm_store = &*warm_;
        ro.on_event = opts_.on_event;
        slots.push_back(std::make_unique<RemoteBackend>(std::move(ro)));
      }
    }
    return slots;
  }

  /// Replay every campaign directory at startup: resumed runs execute
  /// their delta (finished ones stream entirely from the cache), so a
  /// SIGKILLed daemon restarts into exactly the work it had not finished.
  void resume_existing() {
    std::error_code ec;
    std::vector<std::string> ids;
    for (const auto& entry : fs::directory_iterator(campaigns_dir(), ec)) {
      if (!entry.is_directory()) continue;
      if (!fs::exists(entry.path() / "journal.wal")) continue;
      ids.push_back(entry.path().filename().string());
    }
    std::sort(ids.begin(), ids.end());
    const std::lock_guard lk(campaigns_m_);
    for (const std::string& id : ids) {
      event("resuming campaign " + id + " from its journal");
      start_campaign(id, /*spec=*/nullptr);
    }
  }

  /// Start (or restart after failure) the runner for campaign `id`.
  /// `spec` is required only when the directory does not exist yet.
  /// Caller holds campaigns_m_.
  std::shared_ptr<CampaignRun> start_campaign(const std::string& id,
                                              const ExperimentSpec* spec) {
    auto c = std::make_shared<CampaignRun>();
    c->id = id;
    c->dir = (fs::path(campaigns_dir()) / id).string();
    const bool fresh = !fs::exists(fs::path(c->dir) / "journal.wal");
    if (fresh && spec == nullptr)
      throw std::runtime_error("campaign " + id + " has no journal to resume");
    ExperimentSpec spec_copy;
    if (spec != nullptr) spec_copy = *spec;
    c->runner = std::thread([this, c, fresh, spec_copy] {
      run_campaign(c, fresh, spec_copy);
    });
    campaigns_[id] = c;
    return c;
  }

  /// SUBMIT entry: attach to a live or finished campaign, restart a
  /// failed/cancelled one (its journal resumes the delta), or start anew.
  std::shared_ptr<CampaignRun> start_or_attach(const ExperimentSpec& spec) {
    const std::string id = campaign_id(spec);
    const std::lock_guard lk(campaigns_m_);
    const auto it = campaigns_.find(id);
    if (it != campaigns_.end()) {
      bool reusable = false;
      {
        const std::lock_guard clk(it->second->m);
        reusable = it->second->state == CampaignState::kRunning ||
                   it->second->state == CampaignState::kFinished;
      }
      if (reusable) return it->second;
      // Terminal failure/cancellation: the runner has exited — reap it
      // and start a fresh run over the same directory (journal resume).
      if (it->second->runner.joinable()) it->second->runner.join();
    }
    return start_campaign(id, &spec);
  }

  void run_campaign(std::shared_ptr<CampaignRun> c, bool fresh,
                    ExperimentSpec spec) {
    try {
      CampaignStore::Options copts;
      copts.cache_dir = shared_cache_dir();
      copts.on_event = [this, id = c->id](const std::string& line) {
        event("campaign " + id + ": " + line);
      };
      CampaignStore store =
          fresh ? CampaignStore::create(c->dir, spec, std::move(copts))
                : CampaignStore::resume(c->dir, std::move(copts));
      {
        const std::lock_guard lk(c->m);
        c->announced_total = spec_total_jobs(store.spec());
      }

      // A per-campaign view of the shared warm directory: entries are
      // shared on disk, but hits/misses/stores count per tenant.
      WarmStore::Options wopts;
      wopts.label = c->id;
      wopts.on_event = [this, id = c->id](const std::string& line) {
        event("campaign " + id + " warm: " + line);
      };
      WarmStore warm(warm_dir(), std::move(wopts));

      RunOptions ropts;
      ropts.warm_store = &warm;
      ropts.label = c->id;
      ropts.on_event = [this, id = c->id](const std::string& line) {
        event("campaign " + id + " warm: " + line);
      };

      MuxBackend facade(*mux_, *c);
      ResultSink sink([this, c](const JobSpec& job, const RunResult& result) {
        deliver(*c, job, result);
      });
      const std::vector<RunResult> results =
          run_experiment_durable(store, facade, sink, ropts);
      finish(c, results.size());
    } catch (const std::exception& e) {
      fail(c, e.what());
    }
  }

  /// on_result hook of every campaign sink: the result is durable (cache
  /// entry + journal record) by the time the sink fires, so log + stream
  /// it. Log append and subscriber sends happen under one lock so a
  /// late-attaching follower can never see a result twice.
  void deliver(CampaignRun& c, const JobSpec& job, const RunResult& result) {
    Message m;
    m.type = MsgType::kResult;
    m.campaign = c.id;
    m.job_id = job.id;
    m.blob = worker::encode_results({{job.id, result}});
    const std::lock_guard lk(c.m);
    c.log.emplace_back(job.id, m.blob);
    for (const std::shared_ptr<Conn>& s : c.subscribers) s->send(m);
  }

  void terminate(const std::shared_ptr<CampaignRun>& c, CampaignState state,
                 const std::string& text, std::uint64_t total) {
    Message done;
    done.type = MsgType::kDone;
    done.campaign = c->id;
    done.text = text;
    std::vector<std::shared_ptr<Conn>> subs;
    {
      const std::lock_guard lk(c->m);
      c->state = state;
      c->total = total != 0 ? total : c->log.size();
      c->cached = c->total >= c->executed ? c->total - c->executed : 0;
      done.total = c->total;
      done.done = c->log.size();
      done.executed = c->executed;
      done.cached = c->cached;
      c->done_msg = done;
      c->done_broadcast = true;
      subs = std::move(c->subscribers);
      c->subscribers.clear();
    }
    for (const std::shared_ptr<Conn>& s : subs) s->send(done);
    event("campaign " + c->id + " " + text + " (" +
          std::to_string(done.executed) + " executed, " +
          std::to_string(done.cached) + " cached, " +
          std::to_string(done.total) + " result(s))");
  }

  void finish(const std::shared_ptr<CampaignRun>& c, std::size_t total) {
    terminate(c, CampaignState::kFinished, "finished", total);
  }

  void fail(const std::shared_ptr<CampaignRun>& c, const std::string& why) {
    bool cancelled = false;
    {
      const std::lock_guard lk(c->m);
      cancelled = c->cancel_requested;
    }
    if (cancelled) {
      terminate(c, CampaignState::kCancelled, "cancelled", 0);
    } else {
      terminate(c, CampaignState::kFailed, "failed: " + why, 0);
    }
  }

  /// Replay-then-subscribe, atomically w.r.t. deliver/terminate.
  void attach(const std::shared_ptr<CampaignRun>& c,
              const std::shared_ptr<Conn>& conn) {
    const std::lock_guard lk(c->m);
    for (const auto& [job_id, blob] : c->log) {
      Message m;
      m.type = MsgType::kResult;
      m.campaign = c->id;
      m.job_id = job_id;
      m.blob = blob;
      conn->send(m);
    }
    if (c->done_broadcast) {
      conn->send(c->done_msg);
    } else {
      c->subscribers.push_back(conn);
    }
  }

  void serve_conn(const std::shared_ptr<Conn>& conn) {
    std::vector<std::uint8_t> buffer;
    try {
      for (;;) {
        auto msg = read_frame(conn->fd, buffer);
        if (!msg) break;
        if (!handle(conn, *msg)) break;
      }
    } catch (const std::exception& e) {
      // Protocol damage (bad frame, mid-frame EOF): answer if the socket
      // still works, then drop the connection — framing is lost.
      Message err;
      err.type = MsgType::kError;
      err.text = e.what();
      conn->send(err);
    }
    conn->open.store(false);
    sockio::shutdown_fd(conn->fd);
  }

  /// Returns false when the connection should close (shutdown).
  bool handle(const std::shared_ptr<Conn>& conn, const Message& msg) {
    switch (msg.type) {
      case MsgType::kSubmit:
        handle_submit(conn, msg);
        return true;
      case MsgType::kStatus:
        handle_status(conn, msg);
        return true;
      case MsgType::kCancel:
        handle_cancel(conn, msg);
        return true;
      case MsgType::kList:
        handle_list(conn);
        return true;
      case MsgType::kShutdown:
        begin_shutdown(conn);
        return false;
      default: {
        Message err;
        err.type = MsgType::kError;
        err.text = std::string("unexpected ") + type_name(msg.type) +
                   " frame (client-bound type)";
        conn->send(err);
        return true;
      }
    }
  }

  void handle_submit(const std::shared_ptr<Conn>& conn, const Message& msg) {
    ExperimentSpec spec;
    try {
      spec = ExperimentSpec::from_bytes(msg.blob);
      spec.validate();
    } catch (const std::exception& e) {
      Message err;
      err.type = MsgType::kError;
      err.text = std::string("SUBMIT spec rejected: ") + e.what();
      conn->send(err);
      return;
    }
    std::shared_ptr<CampaignRun> c;
    try {
      c = start_or_attach(spec);
    } catch (const std::exception& e) {
      Message err;
      err.type = MsgType::kError;
      err.text = std::string("SUBMIT failed: ") + e.what();
      conn->send(err);
      return;
    }
    event("accepted campaign " + c->id + " ('" + spec.name + "', " +
          std::to_string(spec_total_jobs(spec)) + " job(s))");
    Message acc;
    acc.type = MsgType::kSubmitted;
    acc.campaign = c->id;
    acc.total = spec_total_jobs(spec);
    conn->send(acc);
    if (msg.follow != 0) attach(c, conn);
  }

  void handle_status(const std::shared_ptr<Conn>& conn, const Message& msg) {
    std::shared_ptr<CampaignRun> c;
    {
      const std::lock_guard lk(campaigns_m_);
      const auto it = campaigns_.find(msg.campaign);
      if (it != campaigns_.end()) c = it->second;
    }
    if (!c) {
      Message err;
      err.type = MsgType::kError;
      err.text = "no campaign " + msg.campaign;
      conn->send(err);
      return;
    }
    Message reply;
    reply.type = MsgType::kStatusReply;
    reply.campaign = c->id;
    const std::lock_guard lk(c->m);
    reply.text = c->state == CampaignState::kRunning
                     ? state_name(c->state)
                     : c->done_msg.text;
    reply.done = c->log.size();
    reply.total = c->total != 0 ? c->total : c->announced_total;
    reply.executed = c->executed;
    reply.cached = c->cached;
    conn->send(reply);
  }

  void handle_cancel(const std::shared_ptr<Conn>& conn, const Message& msg) {
    std::shared_ptr<CampaignRun> c;
    {
      const std::lock_guard lk(campaigns_m_);
      const auto it = campaigns_.find(msg.campaign);
      if (it != campaigns_.end()) c = it->second;
    }
    Message reply;
    if (!c) {
      reply.type = MsgType::kError;
      reply.text = "no campaign " + msg.campaign;
    } else {
      bool running = false;
      {
        const std::lock_guard lk(c->m);
        running = c->state == CampaignState::kRunning;
        if (running) c->cancel_requested = true;
      }
      if (running) {
        mux_->cancel(*c);
        reply.type = MsgType::kOk;
        reply.text = "campaign " + c->id + " cancelling";
        event("cancel requested for campaign " + c->id);
      } else {
        reply.type = MsgType::kError;
        reply.text = "campaign " + c->id + " is not running";
      }
    }
    conn->send(reply);
  }

  void handle_list(const std::shared_ptr<Conn>& conn) {
    Message reply;
    reply.type = MsgType::kOk;
    const std::lock_guard lk(campaigns_m_);
    for (const auto& [id, c] : campaigns_) {
      const std::lock_guard clk(c->m);
      const std::uint64_t total =
          c->total != 0 ? c->total : c->announced_total;
      reply.text += id + " " + state_name(c->state) + " " +
                    std::to_string(c->log.size()) + "/" +
                    std::to_string(total) + "\n";
    }
    if (reply.text.empty()) reply.text = "(no campaigns)\n";
    conn->send(reply);
  }

  /// SHUTDOWN: drain every campaign to a terminal state, acknowledge,
  /// then unblock the accept loop and every reader.
  void begin_shutdown(const std::shared_ptr<Conn>& conn) {
    event("shutdown requested — draining campaigns");
    join_campaigns();
    Message ok;
    ok.type = MsgType::kOk;
    ok.text = "mflushd draining";
    conn->send(ok);
    stopping_.store(true);
    sockio::shutdown_fd(listen_fd_);
    const std::lock_guard lk(conns_m_);
    for (const std::shared_ptr<Conn>& c : conns_) {
      if (c != conn && c->open.load()) sockio::shutdown_fd(c->fd);
    }
  }

  void join_campaigns() {
    std::vector<std::shared_ptr<CampaignRun>> all;
    {
      const std::lock_guard lk(campaigns_m_);
      for (const auto& [id, c] : campaigns_) all.push_back(c);
    }
    for (const std::shared_ptr<CampaignRun>& c : all) {
      if (c->runner.joinable()) c->runner.join();
    }
  }

  ServeOptions opts_;
  std::optional<WarmStore> warm_;
  std::optional<JobMux> mux_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  std::mutex campaigns_m_;
  std::map<std::string, std::shared_ptr<CampaignRun>> campaigns_;

  std::mutex conns_m_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace

int serve(ServeOptions options) {
  Server server(std::move(options));
  return server.serve();
}

std::string campaign_id(const ExperimentSpec& spec) {
  const std::vector<std::uint8_t> bytes = spec.to_bytes();
  return campaign::key_hex(fnv1a(bytes));
}

SubmitOutcome submit(const std::string& address, const ExperimentSpec& spec,
                     bool follow,
                     const std::function<void(const std::string&)>& on_event) {
  const int fd = sockio::connect_to(address);
  struct FdGuard {
    int fd;
    ~FdGuard() { sockio::close_fd(fd); }
  } guard{fd};

  Message sub;
  sub.type = MsgType::kSubmit;
  sub.follow = follow ? 1 : 0;
  sub.blob = spec.to_bytes();
  send_frame(fd, sub);

  SubmitOutcome out;
  ResultSink sink;  // reorders streamed results into job-id order
  std::vector<std::uint8_t> buffer;
  for (;;) {
    auto msg = read_frame(fd, buffer);
    if (!msg)
      throw std::runtime_error(
          "mflushd closed the connection before the campaign settled");
    switch (msg->type) {
      case MsgType::kSubmitted:
        out.campaign = msg->campaign;
        out.total = msg->total;
        if (on_event) {
          on_event("campaign " + msg->campaign + " accepted (" +
                   std::to_string(msg->total) + " job(s))");
        }
        if (!follow) {
          out.state = "accepted";
          return out;
        }
        break;
      case MsgType::kResult: {
        auto results =
            worker::decode_results(msg->blob, "mflushd RESULT frame");
        if (results.size() != 1 || results[0].first != msg->job_id) {
          throw std::runtime_error(
              "mflushd RESULT frame does not match its job id");
        }
        JobSpec slot;
        slot.id = msg->job_id;
        sink.push(slot, std::move(results[0].second));
        break;
      }
      case MsgType::kDone:
        out.state = msg->text;
        out.total = msg->total;
        out.executed = msg->executed;
        out.cached = msg->cached;
        if (out.state == "finished") out.results = sink.collect();
        return out;
      case MsgType::kError:
        throw std::runtime_error("mflushd: " + msg->text);
      default:
        throw std::runtime_error(std::string("unexpected ") +
                                 type_name(msg->type) +
                                 " frame while following a campaign");
    }
  }
}

Message request(const std::string& address, const Message& msg) {
  const int fd = sockio::connect_to(address);
  struct FdGuard {
    int fd;
    ~FdGuard() { sockio::close_fd(fd); }
  } guard{fd};
  send_frame(fd, msg);
  std::vector<std::uint8_t> buffer;
  auto reply = read_frame(fd, buffer);
  if (!reply)
    throw std::runtime_error("mflushd closed the connection without a reply");
  return *reply;
}

}  // namespace mflush::daemon
