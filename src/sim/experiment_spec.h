#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/archive.h"
#include "common/config.h"
#include "core/factory.h"
#include "sim/experiment.h"
#include "sim/workloads.h"
#include "trace/profile.h"

/// Experiments as data.
///
/// Every paper figure is a sweep of independent (workload, policy, seed)
/// simulation points. An ExperimentSpec is the *description* of such a
/// study — serializable (binary archive and a line-oriented text form meant
/// to be written by hand), expandable into a flat vector of self-contained
/// JobSpec units, and executable by any ExperimentBackend (sim/backend.h):
/// in-process on the thread pool, or fanned out to `mflushsim --worker`
/// subprocesses. A job file plus the binary is everything a remote host
/// needs, which is what makes the spec the unit of distribution.
namespace mflush {

/// How the measured interval of each point is obtained.
enum class RunMode : std::uint8_t {
  /// Warm up `warmup` cycles, then measure `measure` cycles — the paper's
  /// fixed-interval methodology.
  FullRun = 0,
  /// SMARTS-style sampled simulation: warm one parent chip per point,
  /// checkpoint it, and fork measured intervals off the snapshot (each
  /// advanced a different stride past the checkpoint). With a target
  /// confidence half-width set, rounds of forks are added until the
  /// interval-mean IPC is estimated tightly enough (see SampledConfig).
  Sampled = 1,
};

/// Sampled-mode knobs.
struct SampledConfig {
  /// Forks per point and per round.
  std::uint32_t forks = 8;
  /// Cycles between consecutive forks' measurement starts (de-correlates
  /// the sampled intervals). 0 means measure/2.
  Cycle fork_stride = 0;
  /// SMARTS-style stopping rule: keep adding rounds of `forks` intervals
  /// until the 95% confidence half-width of the mean IPC, relative to the
  /// mean, drops to this value. 0 disables the rule (single fixed round).
  double target_half_width = 0.0;
  /// Hard cap on rounds when the stopping rule is active.
  std::uint32_t max_rounds = 4;

  bool operator==(const SampledConfig&) const = default;
};

/// One self-contained simulation unit — everything a worker (thread or
/// subprocess, local or remote) needs to produce one RunResult.
///
/// Exactly one of four shapes:
///  * catalog job: `workload` codes resolve against the SPEC2000 catalog;
///  * profile job: `profiles` non-empty — an ad-hoc chip built from custom
///    BenchmarkProfiles (workload.name is just the display label);
///  * fork job: `snapshot` set (or resolvable via `parent_key`) —
///    reconstruct the pre-warmed chip, advance `fork_advance` cycles, then
///    measure;
///  * warm job: `warm_only` set — warm `warmup` cycles and return the
///    captured snapshot in RunResult::payload (no measurement).
struct JobSpec {
  /// Dense result-slot index within one experiment.
  // lint: content-exempt — wire identity; the content key must be the
  // same for identical work regardless of slot position
  std::uint32_t id = 0;
  Workload workload;
  std::vector<BenchmarkProfile> profiles;
  PolicySpec policy;
  std::uint64_t seed = 1;
  Cycle warmup = 0;
  Cycle measure = 0;
  Cycle fork_advance = 0;
  /// Main-memory timing model + DRAM knobs the chip is built with (the
  /// memory latency distribution as a sweep axis).
  MemModelKind mem_model = MemModelKind::Fixed;
  DramConfig dram{};
  /// Warm job: build the chip, run `warmup` cycles, capture the snapshot
  /// into RunResult::payload. Emitted by the warm phase of run_experiment
  /// so sampled-mode parents warm as ordinary (parallel, distributable)
  /// backend jobs instead of coordinator work.
  bool warm_only = false;
  /// Content hash of this job's warmed parent (warmstore::warm_key). On a
  /// fork job it lets the snapshot travel by reference: a host whose warm
  /// store already holds the parent resolves the hash locally instead of
  /// receiving the bytes again; a host without the entry re-warms
  /// deterministically. On a warm job it names the store entry the
  /// captured snapshot is published under. 0 = no warm-store identity.
  std::uint64_t parent_key = 0;
  std::shared_ptr<const std::vector<std::uint8_t>> snapshot;

  /// Serialize/deserialize for the worker job-file protocol. Attached
  /// snapshot bytes are embedded inline (the upload); a by-reference fork
  /// (`parent_key` set, bytes stripped) ships only the hash.
  void save(ArchiveWriter& ar) const;
  [[nodiscard]] static JobSpec load(ArchiveReader& ar);

  /// Canonical *content* serialization: every field that determines the
  /// job's RunResult — workload, profiles, policy, seed, intervals,
  /// fork_advance, memory model + DRAM knobs, snapshot identity — but NOT
  /// `id`, which is a
  /// result-slot index, not content. A job with a parent_key is
  /// canonicalized by the hash alone (the key pins the exact snapshot
  /// bytes), so its content is stable whether or not the bytes happen to
  /// be attached — which keeps campaign::job_key (sim/campaign.h) a safe
  /// cache key across specs, campaigns, and by-ref/resolved copies of the
  /// same fork. Any field added here must bump campaign::kFormatVersion.
  void save_content(ArchiveWriter& ar) const;
};

/// Execute one job to completion (the single definition of "run a point"
/// every backend shares — cross-backend bit-identity rests on this).
[[nodiscard]] RunResult run_job(const JobSpec& job);

/// A full study: workload set x policy set x seed set x interval x mode.
struct ExperimentSpec {
  std::string name = "experiment";
  std::vector<Workload> workloads;
  std::vector<PolicySpec> policies;
  std::vector<std::uint64_t> seeds = {1};
  Cycle warmup = 30'000;
  Cycle measure = 120'000;
  RunMode mode = RunMode::FullRun;
  SampledConfig sampled;
  /// Memory model every point's chip is built with (text keys: mem_model,
  /// dram_*). Fixed (the default) reproduces the paper's 250-cycle memory.
  MemModelKind mem_model = MemModelKind::Fixed;
  DramConfig dram{};

  /// Points = seeds x workloads x policies (seed-major, policy-minor: the
  /// flat index of (s, w, p) is (s*W + w)*P + p, so a single-seed spec
  /// expands in the classic run_grid row-major layout).
  [[nodiscard]] std::size_t num_points() const noexcept {
    return seeds.size() * workloads.size() * policies.size();
  }

  /// Throws std::runtime_error naming the first problem (empty sets,
  /// zero measure, bad sampled config).
  void validate() const;

  /// Expand into self-contained jobs, ids 0..n-1 in point order.
  ///
  /// FullRun: one job per point. Sampled: `sampled.forks` fork jobs per
  /// point, each referencing the point's warmed parent by content hash
  /// (`parent_key` = warmstore::warm_key) — expansion itself runs **no**
  /// warm-up simulation. The warm phase of run_experiment (sim/backend.h)
  /// resolves the hashes against a WarmStore (or warms the missing parents
  /// as ordinary backend jobs, in parallel) and attaches the bytes; the
  /// stopping rule then builds additional fork rounds from the round-0
  /// jobs' snapshot handles.
  [[nodiscard]] std::vector<JobSpec> expand() const;

  // --- serialization -----------------------------------------------------
  // Binary: magic/version/fields/FNV-checksum archive, rejected on any
  // corruption or version skew. Text: the hand-authorable line format
  // ("key value" lines, '#' comments — see to_text() output or
  // examples/quickstart). read_file sniffs the magic to pick the decoder.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;
  [[nodiscard]] static ExperimentSpec from_bytes(
      std::span<const std::uint8_t> bytes);
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static ExperimentSpec from_text(std::string_view text);
  [[nodiscard]] static ExperimentSpec read_file(const std::string& path);
  void write_file(const std::string& path, bool binary = false) const;
};

}  // namespace mflush
