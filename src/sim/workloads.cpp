#include "sim/workloads.h"

#include "trace/spec2000.h"

namespace mflush {

std::string Workload::describe() const {
  std::string out;
  for (const char c : codes) {
    if (!out.empty()) out += '+';
    if (const auto p = spec2000::by_code(c))
      out += p->name;
    else
      out += c;
  }
  return out;
}

namespace workloads {
namespace {

Workload make(std::string name, std::initializer_list<char> codes) {
  Workload w;
  w.name = std::move(name);
  w.codes.assign(codes);
  return w;
}

const std::vector<Workload>& catalog() {
  // Fig. 1, bottom table. x threads run on x/2 two-context cores.
  static const std::vector<Workload> v = {
      make("2W1", {'b', 'j'}),
      make("2W2", {'n', 'e'}),
      make("2W3", {'d', 'a'}),
      make("2W4", {'g', 'f'}),
      make("2W5", {'r', 'p'}),
      make("4W1", {'b', 'q', 't', 'j'}),
      make("4W2", {'l', 'n', 'p', 'e'}),
      make("4W3", {'d', 's', 'r', 'a'}),
      make("4W4", {'g', 'b', 'm', 'f'}),
      make("4W5", {'r', 'j', 'f', 'p'}),
      make("6W1", {'l', 'b', 'q', 'f', 't', 'j'}),
      make("6W2", {'g', 'l', 'n', 'p', 'e', 'a'}),
      make("6W3", {'d', 'l', 's', 'w', 'r', 'a'}),
      make("6W4", {'r', 'g', 'b', 'm', 'h', 'f'}),
      make("6W5", {'h', 'l', 'e', 'r', 'm', 'd'}),
      make("8W1", {'d', 'l', 'b', 'g', 'i', 'j', 'c', 'f'}),
      make("8W2", {'b', 'g', 'm', 'n', 'a', 'h', 'o', 'p'}),
      make("8W3", {'m', 'n', 'r', 'q', 'i', 'j', 'e', 'h'}),
      make("8W4", {'l', 'b', 'g', 'm', 'n', 'r', 'f', 's'}),
      make("8W5", {'q', 'b', 'c', 'k', 'e', 'a', 'o', 't'}),
  };
  return v;
}

}  // namespace

std::span<const Workload> all() { return catalog(); }

std::optional<Workload> by_name(std::string_view name) {
  for (const auto& w : catalog())
    if (w.name == name) return w;
  if (name == "bzip2-twolf" || name == bzip2_twolf_special().name)
    return bzip2_twolf_special();
  return std::nullopt;
}

std::optional<Workload> resolve(std::string_view token) {
  if (auto w = by_name(token)) return w;
  if (token.empty() || token.size() % 2 != 0) return std::nullopt;
  Workload w;
  w.name = std::string(token);
  for (const char c : token) {
    if (!spec2000::by_code(c)) return std::nullopt;
    w.codes.push_back(c);
  }
  return w;
}

std::vector<Workload> of_size(std::uint32_t num_threads) {
  std::vector<Workload> out;
  for (const auto& w : catalog())
    if (w.num_threads() == num_threads) out.push_back(w);
  return out;
}

Workload bzip2_twolf_special() {
  return make("8Wbt", {'k', 'k', 'l', 'l', 'k', 'k', 'l', 'l'});
}

}  // namespace workloads
}  // namespace mflush
