#include "sim/parallel.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <stop_token>
#include <thread>
#include <vector>

#include "common/env.h"

namespace mflush {

struct ParallelRunner::Impl {
  std::mutex batch_m;  ///< serializes whole batches across external callers
  std::mutex m;
  std::condition_variable_any work_cv;   ///< workers wait for a batch
  std::condition_variable done_cv;       ///< caller waits for completion

  // Current batch (guarded by m except for cursor).
  std::uint32_t batch = 0;               ///< bumped per for_each_index call
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t total = 0;
  /// Claim cursor: (batch << 32) | next-unclaimed-index. The batch tag
  /// makes claims from a worker that straddles two batches impossible: a
  /// stale worker's CAS fails the generation check and it claims nothing
  /// (a plain fetch_add here would let it steal index 0 of the next batch
  /// and run the previous, already-destroyed task).
  std::atomic<std::uint64_t> cursor{0};
  std::size_t done = 0;                  ///< finished indices this batch
  std::exception_ptr error;

  std::vector<std::jthread> workers;     ///< joined last (declared last)

  static constexpr std::uint64_t kIndexMask = 0xffff'ffffull;

  /// Claim the next index of batch `gen`; false when the batch is
  /// exhausted or no longer current.
  bool claim(std::uint32_t gen, std::size_t n, std::size_t& out) {
    std::uint64_t c = cursor.load(std::memory_order_relaxed);
    for (;;) {
      if (static_cast<std::uint32_t>(c >> 32) != gen) return false;
      const std::size_t i = static_cast<std::size_t>(c & kIndexMask);
      if (i >= n) return false;
      if (cursor.compare_exchange_weak(c, c + 1,
                                       std::memory_order_relaxed)) {
        out = i;
        return true;
      }
    }
  }

  /// Claim and run indices until batch `gen` is exhausted.
  void drain(std::uint32_t gen, const std::function<void(std::size_t)>& fn,
             std::size_t n) {
    std::size_t i = 0;
    while (claim(gen, n, i)) {
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard lk(m);
        if (!error) error = std::current_exception();
      }
      const std::lock_guard lk(m);
      if (++done == n) done_cv.notify_all();
    }
  }

  void worker(std::stop_token st) {
    std::uint32_t seen = 0;
    std::unique_lock lk(m);
    for (;;) {
      work_cv.wait(lk, st,
                   [&] { return batch != seen && task != nullptr; });
      if (st.stop_requested()) return;
      seen = batch;
      const auto* fn = task;
      const std::size_t n = total;
      lk.unlock();
      drain(seen, *fn, n);
      lk.lock();
    }
  }
};

ParallelRunner::ParallelRunner(unsigned jobs)
    : impl_(std::make_unique<Impl>()),
      jobs_(jobs == 0 ? default_jobs() : jobs) {
  impl_->workers.reserve(jobs_ - 1);
  for (unsigned w = 1; w < jobs_; ++w) {
    impl_->workers.emplace_back(
        [impl = impl_.get()](std::stop_token st) { impl->worker(st); });
  }
}

// std::jthread requests stop and joins; condition_variable_any::wait with a
// stop_token wakes on the request, so no explicit shutdown is needed.
ParallelRunner::~ParallelRunner() = default;

void ParallelRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (n > Impl::kIndexMask)
    throw std::invalid_argument("ParallelRunner: batch too large");
  Impl& im = *impl_;
  // One batch at a time: a second external caller blocks here until the
  // current batch fully drains instead of clobbering its state. (Reentrant
  // calls from inside a task would deadlock and remain forbidden.)
  const std::lock_guard batch_lk(im.batch_m);
  std::unique_lock lk(im.m);
  im.task = &fn;
  im.total = n;
  im.done = 0;
  im.error = nullptr;
  ++im.batch;
  const std::uint32_t gen = im.batch;
  im.cursor.store(static_cast<std::uint64_t>(gen) << 32,
                  std::memory_order_relaxed);
  im.work_cv.notify_all();
  lk.unlock();

  im.drain(gen, fn, n);  // the caller is a pool member too

  lk.lock();
  im.done_cv.wait(lk, [&] { return im.done == im.total; });
  im.task = nullptr;
  const std::exception_ptr err = im.error;
  im.error = nullptr;
  lk.unlock();
  if (err) std::rethrow_exception(err);
}

unsigned ParallelRunner::default_jobs() {
  // 0 as the "unset" sentinel: a literal MFLUSH_JOBS=0 is malformed (min 1)
  // and throws rather than silently meaning "all hardware threads". The max
  // keeps the value castable: a count the cast would truncate must error.
  if (const std::uint64_t v = env::u64_or(
          "MFLUSH_JOBS", 0, 1, std::numeric_limits<unsigned>::max());
      v != 0)
    return static_cast<unsigned>(v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ParallelRunner& ParallelRunner::shared() {
  static ParallelRunner runner;
  return runner;
}

}  // namespace mflush
