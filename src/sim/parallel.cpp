#include "sim/parallel.h"

#include <atomic>
#include <charconv>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <stop_token>
#include <string_view>
#include <thread>

namespace mflush {

struct ParallelRunner::Impl {
  std::mutex batch_m;  ///< serializes whole batches across external callers
  std::mutex m;
  std::condition_variable_any work_cv;   ///< workers wait for a batch
  std::condition_variable done_cv;       ///< caller waits for completion

  // Current batch (guarded by m except for cursor).
  std::uint32_t batch = 0;               ///< bumped per for_each_index call
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t total = 0;
  /// Claim cursor: (batch << 32) | next-unclaimed-index. The batch tag
  /// makes claims from a worker that straddles two batches impossible: a
  /// stale worker's CAS fails the generation check and it claims nothing
  /// (a plain fetch_add here would let it steal index 0 of the next batch
  /// and run the previous, already-destroyed task).
  std::atomic<std::uint64_t> cursor{0};
  std::size_t done = 0;                  ///< finished indices this batch
  std::exception_ptr error;

  std::vector<std::jthread> workers;     ///< joined last (declared last)

  static constexpr std::uint64_t kIndexMask = 0xffff'ffffull;

  /// Claim the next index of batch `gen`; false when the batch is
  /// exhausted or no longer current.
  bool claim(std::uint32_t gen, std::size_t n, std::size_t& out) {
    std::uint64_t c = cursor.load(std::memory_order_relaxed);
    for (;;) {
      if (static_cast<std::uint32_t>(c >> 32) != gen) return false;
      const std::size_t i = static_cast<std::size_t>(c & kIndexMask);
      if (i >= n) return false;
      if (cursor.compare_exchange_weak(c, c + 1,
                                       std::memory_order_relaxed)) {
        out = i;
        return true;
      }
    }
  }

  /// Claim and run indices until batch `gen` is exhausted.
  void drain(std::uint32_t gen, const std::function<void(std::size_t)>& fn,
             std::size_t n) {
    std::size_t i = 0;
    while (claim(gen, n, i)) {
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard lk(m);
        if (!error) error = std::current_exception();
      }
      const std::lock_guard lk(m);
      if (++done == n) done_cv.notify_all();
    }
  }

  void worker(std::stop_token st) {
    std::uint32_t seen = 0;
    std::unique_lock lk(m);
    for (;;) {
      work_cv.wait(lk, st,
                   [&] { return batch != seen && task != nullptr; });
      if (st.stop_requested()) return;
      seen = batch;
      const auto* fn = task;
      const std::size_t n = total;
      lk.unlock();
      drain(seen, *fn, n);
      lk.lock();
    }
  }
};

ParallelRunner::ParallelRunner(unsigned jobs)
    : impl_(std::make_unique<Impl>()),
      jobs_(jobs == 0 ? default_jobs() : jobs) {
  impl_->workers.reserve(jobs_ - 1);
  for (unsigned w = 1; w < jobs_; ++w) {
    impl_->workers.emplace_back(
        [impl = impl_.get()](std::stop_token st) { impl->worker(st); });
  }
}

// std::jthread requests stop and joins; condition_variable_any::wait with a
// stop_token wakes on the request, so no explicit shutdown is needed.
ParallelRunner::~ParallelRunner() = default;

void ParallelRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (n > Impl::kIndexMask)
    throw std::invalid_argument("ParallelRunner: batch too large");
  Impl& im = *impl_;
  // One batch at a time: a second external caller blocks here until the
  // current batch fully drains instead of clobbering its state. (Reentrant
  // calls from inside a task would deadlock and remain forbidden.)
  const std::lock_guard batch_lk(im.batch_m);
  std::unique_lock lk(im.m);
  im.task = &fn;
  im.total = n;
  im.done = 0;
  im.error = nullptr;
  ++im.batch;
  const std::uint32_t gen = im.batch;
  im.cursor.store(static_cast<std::uint64_t>(gen) << 32,
                  std::memory_order_relaxed);
  im.work_cv.notify_all();
  lk.unlock();

  im.drain(gen, fn, n);  // the caller is a pool member too

  lk.lock();
  im.done_cv.wait(lk, [&] { return im.done == im.total; });
  im.task = nullptr;
  const std::exception_ptr err = im.error;
  im.error = nullptr;
  lk.unlock();
  if (err) std::rethrow_exception(err);
}

std::vector<RunResult> ParallelRunner::run(
    const std::vector<SweepPoint>& points) {
  std::vector<RunResult> out(points.size());
  for_each_index(points.size(), [&](std::size_t i) {
    const SweepPoint& p = points[i];
    out[i] = p.snapshot
                 ? run_point_from_snapshot(*p.snapshot, p.fork_advance,
                                           p.measure)
                 : run_point(p.workload, p.policy, p.seed, p.warmup,
                             p.measure);
  });
  return out;
}

unsigned ParallelRunner::default_jobs() noexcept {
  if (const char* raw = std::getenv("MFLUSH_JOBS")) {
    const std::string_view s(raw);
    unsigned v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec == std::errc{} && ptr == s.data() + s.size() && v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ParallelRunner& ParallelRunner::shared() {
  static ParallelRunner runner;
  return runner;
}

std::vector<std::vector<RunResult>> run_grid(
    const std::vector<Workload>& workloads,
    const std::vector<PolicySpec>& policies, std::uint64_t seed, Cycle warmup,
    Cycle measure) {
  std::vector<SweepPoint> points;
  points.reserve(workloads.size() * policies.size());
  for (const Workload& w : workloads)
    for (const PolicySpec& p : policies)
      points.push_back({w, p, seed, warmup, measure});
  std::vector<RunResult> flat = ParallelRunner::shared().run(points);

  std::vector<std::vector<RunResult>> rows;
  rows.reserve(workloads.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const auto begin =
        flat.begin() + static_cast<std::ptrdiff_t>(w * policies.size());
    rows.emplace_back(
        std::make_move_iterator(begin),
        std::make_move_iterator(begin +
                                static_cast<std::ptrdiff_t>(policies.size())));
  }
  return rows;
}

}  // namespace mflush
