#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/backend.h"

/// Durable campaigns: crash-survivable, resumable experiment runs.
///
/// A campaign directory makes any experiment run survivable over any
/// ExperimentBackend:
///
///   DIR/spec.mfc      canonical ExperimentSpec archive (binary form)
///   DIR/journal.wal   append-only, checksummed, fsync-per-record journal
///                     of job state transitions
///   DIR/cache/        content-addressed result store, one file per
///                     completed job keyed by job_key() hex (relocatable
///                     via Options::cache_dir — mflushd shares one cache
///                     across every tenant's campaign)
///
/// The journal is a classic write-ahead log at file granularity: every
/// record is length-prefixed and carries its own FNV-1a checksum, appended
/// with a single write() and fsync'd before the in-memory transition is
/// acted on. Replay stops at the first bad record (torn tail, truncated
/// length, checksum mismatch), so a SIGKILL at *any* byte offset recovers
/// to the exact frontier of fully-durable transitions; resume truncates the
/// torn tail and appends from there. Completed results are published to the
/// cache via write-temp + fsync + atomic-rename *before* their done record
/// is journaled, so a done record always points at a durable result — and a
/// cache entry whose done record was lost to a tear is still found by key
/// on resume (the cache, not the journal, is the source of truth for
/// done-ness; the journal adds dispatch/failure state and narration).
///
/// Job state machine, per content key:
///   pending -> dispatched -> done(result-hash) | failed(attempts)
/// Failed and dispatched-at-crash jobs are simply pending again on resume.
///
/// Bit-identity contract: a resumed campaign's collected results — full
/// SimMetrics, every field — equal an uninterrupted SerialBackend run of
/// the same spec, because cached results are raw-byte round trips of
/// deterministic run_job output (CampaignTest.CrashResumeMatchesSerial).
namespace mflush {
namespace campaign {

/// Version of the on-disk campaign formats: the journal record layout, the
/// cache entry layout, AND the job-key canonicalization. Same rules as
/// snapshot::kFormatVersion: bump on ANY change (a field added to
/// JobSpec::save_content included), no migrations — old journals are
/// rejected loudly and stale cache keys simply never match again.
///
/// v2: JobSpec content gained warm_only + parent_key, and fork jobs are
/// canonicalized by their parent's content hash instead of the embedded
/// snapshot bytes (the key no longer changes when a by-reference fork is
/// resolved to inline bytes).
inline constexpr std::uint32_t kFormatVersion = 3;

/// Stable content hash of a job's canonical serialization
/// (JobSpec::save_content: config/workload/profiles, policy, seed, warmup,
/// measure, fork_advance, snapshot identity — embedded bytes, or the
/// parent content hash for by-reference forks — everything except the
/// result-slot id), domain-separated with a magic + kFormatVersion prefix
/// so key semantics can never silently drift across format bumps.
[[nodiscard]] std::uint64_t job_key(const JobSpec& job);

/// Fixed-width lowercase hex of a key — cache file stems and narration.
[[nodiscard]] std::string key_hex(std::uint64_t key);

enum class JobState : std::uint8_t {
  kDispatched = 1,
  kDone = 2,
  kFailed = 3,
};

/// One journal record: a state transition for one job key. `aux` is the
/// attempt ordinal for dispatched/failed records and the cache entry's
/// trailing checksum for done records (the "result-hash" that lets resume
/// cross-check a cache file against the journal without re-reading it).
struct JournalRecord {
  JobState state = JobState::kDispatched;
  std::uint32_t job_id = 0;
  std::uint64_t key = 0;
  std::uint64_t aux = 0;
};

/// The consistent state replay recovers: last durable transition per key,
/// plus where the valid prefix of the journal ends.
struct Frontier {
  std::unordered_map<std::uint64_t, JournalRecord> jobs;
  std::size_t records = 0;      ///< records in the valid prefix
  std::size_t valid_bytes = 0;  ///< prefix length incl. header
  bool torn = false;            ///< stopped before end-of-file

  [[nodiscard]] std::size_t count(JobState s) const;
};

/// Replay a complete journal byte stream (header + records), stopping at
/// the first torn/truncated/corrupt record. Throws only when the *header*
/// is valid-length but wrong (bad magic or version skew — a foreign or
/// incompatible file, not a torn one); a short or absent header replays to
/// an empty, torn-at-zero frontier.
[[nodiscard]] Frontier replay(std::span<const std::uint8_t> bytes);

}  // namespace campaign

/// Owns one campaign directory: the canonical spec, the journal fd, and
/// the result cache. All record_* methods are durable (fsync'd) before
/// they return and safe to call from concurrent backend threads.
class CampaignStore {
 public:
  struct Options {
    /// Serialized narration ("campaign: ..." lines): resume frontier,
    /// torn-tail truncation, cache-hit counts.
    std::function<void(const std::string&)> on_event;
    /// Where content-addressed result entries live. Empty (the default)
    /// keeps the classic private DIR/cache. mflushd points every tenant's
    /// campaign at one shared directory so overlapping submissions dedup
    /// against each other: entries are keyed by job content and published
    /// by atomic rename, so concurrent same-key writers are benign (last
    /// rename wins with identical bytes) and a reader either sees a whole
    /// entry or a miss.
    std::string cache_dir;
  };

  /// Start a campaign in `dir` (created if missing). If `dir` already
  /// holds a journal for byte-identical `spec`, throws — pass --resume
  /// instead of silently restarting a resumable run. If it holds a
  /// *different* spec's journal, that generation is rotated aside
  /// (journal.N/spec.N.mfc) and a fresh journal starts — while the shared
  /// result cache makes the overlap between the specs free.
  [[nodiscard]] static CampaignStore create(const std::string& dir,
                                            const ExperimentSpec& spec,
                                            Options options = {});

  /// Continue the campaign in `dir`: load the archived spec, replay the
  /// journal to its frontier, truncate any torn tail, and narrate what
  /// survived. Throws when `dir` holds no campaign.
  [[nodiscard]] static CampaignStore resume(const std::string& dir,
                                            Options options = {});

  CampaignStore(CampaignStore&&) noexcept;
  CampaignStore& operator=(CampaignStore&&) = delete;
  CampaignStore(const CampaignStore&) = delete;
  CampaignStore& operator=(const CampaignStore&) = delete;
  ~CampaignStore();

  [[nodiscard]] const ExperimentSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] const std::string& cache_dir() const noexcept {
    return cache_dir_;
  }
  [[nodiscard]] const campaign::Frontier& frontier() const noexcept {
    return frontier_;
  }

  /// Journal one dispatched record per job (one write, one fsync).
  void record_dispatched(const std::vector<JobSpec>& jobs);

  /// Publish the result to the cache (atomic rename, fsync'd), then
  /// journal the done record. After this returns, a crash at any point
  /// leaves the result recoverable.
  void record_done(const JobSpec& job, const RunResult& result);

  /// Journal a failed attempt; the job is pending again on resume.
  void record_failed(const JobSpec& job, unsigned attempts);

  /// The cached result for this job's content key, when a valid cache
  /// entry exists (corrupt or mismatched entries read as a miss and are
  /// re-executed). This is the resume/cross-spec-overlap fast path.
  [[nodiscard]] std::optional<RunResult> cached(const JobSpec& job) const;

  void event(const std::string& line) const;

 private:
  CampaignStore(std::string dir, ExperimentSpec spec, Options options);

  void open_journal(bool fresh, std::size_t keep_bytes);
  void append(const std::vector<campaign::JournalRecord>& records);

  std::string dir_;
  std::string cache_dir_;
  ExperimentSpec spec_;
  Options opts_;
  campaign::Frontier frontier_;
  int journal_fd_ = -1;
  mutable std::mutex journal_mutex_;
  /// Crash-injection hook (CI/tests, like HostSpec fail=N): when
  /// MFLUSH_CAMPAIGN_KILL_AFTER=N is set, the process raises SIGKILL
  /// immediately after the Nth done record of this session becomes
  /// durable — a deterministic coordinator crash mid-campaign.
  std::uint64_t kill_after_ = 0;
  std::uint64_t done_this_session_ = 0;
};

/// run_experiment through `store`: jobs whose key is already cached stream
/// straight from the cache; the rest are journaled as dispatched, executed
/// on `backend` (Serial/InProcess/Worker/Remote — unchanged), and journaled
/// done as each result lands. Emits a final
/// "campaign: finished (<executed> executed, <cached> cached)" event.
/// Returns the full job-id-ordered result vector, bit-identical to an
/// uninterrupted run_experiment of the same spec. `options` carries the
/// warm store / warm events for sampled specs (see RunOptions); warm jobs
/// bypass the journal — the warm store is their durability layer.
std::vector<RunResult> run_experiment_durable(CampaignStore& store,
                                              ExperimentBackend& backend,
                                              ResultSink& sink,
                                              const RunOptions& options = {});

}  // namespace mflush
