#include "sim/report.h"

#include <cassert>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/stats.h"
#include "common/table.h"

namespace mflush::report {
namespace {

std::vector<std::string> policy_headers(
    const std::vector<std::vector<RunResult>>& by_workload) {
  std::vector<std::string> headers{"workload"};
  if (!by_workload.empty())
    for (const RunResult& r : by_workload.front()) headers.push_back(r.policy);
  return headers;
}

/// Human-scaled cycles/second, e.g. "1.4 Mcyc/s".
std::string rate_str(double cycles_per_sec) {
  std::ostringstream os;
  if (cycles_per_sec >= 1e6)
    os << Table::num(cycles_per_sec / 1e6, 1) << " Mcyc/s";
  else
    os << Table::num(cycles_per_sec / 1e3, 1) << " Kcyc/s";
  return os.str();
}

}  // namespace

std::vector<std::vector<RunResult>> as_grid(std::vector<RunResult> flat,
                                            std::size_t columns) {
  if (columns == 0 || flat.size() % columns != 0) {
    throw std::invalid_argument(
        "report::as_grid: result count is not a multiple of the column "
        "count");
  }
  std::vector<std::vector<RunResult>> rows;
  rows.reserve(flat.size() / columns);
  for (std::size_t r = 0; r < flat.size() / columns; ++r) {
    const auto begin =
        flat.begin() + static_cast<std::ptrdiff_t>(r * columns);
    rows.emplace_back(
        std::make_move_iterator(begin),
        std::make_move_iterator(begin + static_cast<std::ptrdiff_t>(columns)));
  }
  return rows;
}

ResultSink::OnResult progress_printer(std::ostream& os, std::size_t total) {
  // The sink serializes callbacks, so the shared counter needs no lock.
  const auto done = std::make_shared<std::size_t>(0);
  return [&os, total, done](const JobSpec&, const RunResult& r) {
    ++*done;
    os << '[' << *done << '/';
    if (total == 0)
      os << '?';
    else
      os << total;
    os << "] " << r.workload << ' ' << r.policy << ": IPC "
       << Table::num(r.metrics.ipc) << '\n';
  };
}

std::function<void(const std::string&)> event_printer(std::ostream& os) {
  return event_printer(os, "remote: ");
}

std::function<void(const std::string&)> event_printer(std::ostream& os,
                                                      std::string prefix) {
  // Each source serializes its own on_event calls, but mflushd runs many
  // sources (campaign runners, the mux, per-tenant warm stores) into one
  // stream concurrently — a process-wide mutex keeps every line atomic so
  // interleaved tenants stay attributable.
  static std::mutex stream_mutex;
  return [&os, prefix = std::move(prefix)](const std::string& line) {
    const std::lock_guard lk(stream_mutex);
    os << prefix << line << '\n';
  };
}

void print_throughput(std::ostream& os, const std::vector<RunResult>& flat,
                      std::size_t columns) {
  print_throughput(os, as_grid(flat, columns));
}

void print_wasted_energy(std::ostream& os,
                         const std::vector<RunResult>& flat,
                         std::size_t columns) {
  print_wasted_energy(os, as_grid(flat, columns));
}

void print_throughput(std::ostream& os,
                      const std::vector<std::vector<RunResult>>& by_workload) {
  Table table(policy_headers(by_workload));
  std::vector<double> sums(by_workload.empty() ? 0 : by_workload[0].size(),
                           0.0);
  for (const auto& row : by_workload) {
    std::vector<std::string> cells{row.front().workload};
    for (std::size_t i = 0; i < row.size(); ++i) {
      cells.push_back(Table::num(row[i].metrics.ipc));
      sums[i] += row[i].metrics.ipc;
    }
    table.add_row(std::move(cells));
  }
  if (!by_workload.empty()) {
    std::vector<std::string> avg{"average"};
    for (const double s : sums)
      avg.push_back(Table::num(s / static_cast<double>(by_workload.size())));
    table.add_row(std::move(avg));
  }
  table.print(os);
  if (const std::string f = throughput_footer(by_workload); !f.empty())
    os << f << "\n";
}

void print_wasted_energy(
    std::ostream& os, const std::vector<std::vector<RunResult>>& by_workload) {
  Table table(policy_headers(by_workload));
  std::vector<double> sums(by_workload.empty() ? 0 : by_workload[0].size(),
                           0.0);
  for (const auto& row : by_workload) {
    std::vector<std::string> cells{row.front().workload};
    for (std::size_t i = 0; i < row.size(); ++i) {
      const double w = row[i].metrics.energy.flush_wasted_per_kilo_commit();
      cells.push_back(Table::num(w, 1));
      sums[i] += w;
    }
    table.add_row(std::move(cells));
  }
  if (!by_workload.empty()) {
    std::vector<std::string> avg{"average"};
    for (const double s : sums)
      avg.push_back(
          Table::num(s / static_cast<double>(by_workload.size()), 1));
    table.add_row(std::move(avg));
  }
  table.print(os);
  if (const std::string f = throughput_footer(by_workload); !f.empty())
    os << f << "\n";
}

void print_debug(std::ostream& os, const CmpSimulator& sim) {
  const SimMetrics m = sim.metrics();
  os << "=== " << sim.workload().name << " (" << sim.workload().describe()
     << ") under " << sim.policy().label() << " ===\n";
  os << "cycles " << m.cycles << "  committed " << m.committed << "  IPC "
     << Table::num(m.ipc) << "\n";
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    const SmtCore& core = sim.core(c);
    const CoreStats& s = core.stats();
    os << "core " << c << ": fetched " << s.fetched << " (wrong-path "
       << s.fetched_wrong_path << "), commits";
    for (std::uint32_t t = 0; t < core.num_threads(); ++t)
      os << ' ' << s.committed[t];
    os << ", branches " << s.branches_resolved << " mispred " << s.mispredicts
       << " (" << Table::pct(safe_ratio(static_cast<double>(s.mispredicts),
                                        static_cast<double>(
                                            s.branches_resolved)))
       << "), loads " << s.loads_issued << ", flushes "
       << s.policy_flush_events << " squashing " << s.policy_flushed_total()
       << "\n";
    const auto pc = core.policy().counters();
    os << "  policy: flush on miss/hit/l1 " << pc.flushes_on_miss << '/'
       << pc.flushes_on_hit << '/' << pc.flushes_on_l1 << ", gate-cycles "
       << pc.gate_cycles << "\n";
    const auto& l1d = sim.memory().l1d(c);
    const auto& l1i = sim.memory().l1i(c);
    os << "  l1d " << l1d.hits() << "/" << l1d.hits() + l1d.misses()
       << " hits, l1i " << l1i.hits() << "/" << l1i.hits() + l1i.misses()
       << " hits, mshr live " << sim.memory().mshr(c).live() << "\n";
    os << "  issued " << s.instructions_issued << "; dispatch blocks:"
       << " young " << s.dispatch_blocked_young << " rob "
       << s.dispatch_blocked_rob << " iq-int " << s.dispatch_blocked_iq_int
       << " iq-fp " << s.dispatch_blocked_iq_fp << " iq-mem "
       << s.dispatch_blocked_iq_mem << " regs " << s.dispatch_blocked_regs
       << "\n";
    os << "  live now: rob";
    for (std::uint32_t t = 0; t < core.num_threads(); ++t)
      os << ' ' << core.rob(t).size();
    os << ", iq int/fp/mem " << core.iq_int().size() << '/'
       << core.iq_fp().size() << '/' << core.iq_mem().size()
       << ", free regs int/fp " << core.free_int_regs() << '/'
       << core.free_fp_regs() << ", preissue";
    for (std::uint32_t t = 0; t < core.num_threads(); ++t)
      os << ' ' << core.preissue_count(t);
    os << "\n";
  }
  const MemStats& ms = sim.memory().stats();
  const L2Cache& l2 = sim.memory().l2();
  os << "l2: " << l2.read_hits() << " hits, " << l2.read_misses()
     << " misses, " << l2.writebacks() << " writebacks; load-hit time mean "
     << Table::num(m.l2_hit_time_mean, 1) << " p50 "
     << Table::num(m.l2_hit_time_p50, 1) << " p90 "
     << Table::num(m.l2_hit_time_p90, 1) << "\n";
  os << "tlb: d-miss " << ms.dtlb_misses << " i-miss " << ms.itlb_misses
     << "; bus transfers " << sim.memory().bus().transfers()
     << " queue-wait " << sim.memory().bus().queue_wait_cycles() << "\n";
  os << "energy: committed " << Table::num(m.energy.committed_units, 0)
     << " wasted(flush) " << Table::num(m.energy.flush_wasted_units, 1)
     << " wasted(branch) " << Table::num(m.energy.branch_wasted_units, 1)
     << "\n";
}

std::string summarize(const RunResult& r) {
  std::ostringstream os;
  os << r.workload << " under " << r.policy << ": IPC "
     << Table::num(r.metrics.ipc) << ", " << r.metrics.flush_events
     << " flushes, wasted energy "
     << Table::num(r.metrics.energy.flush_wasted_units, 1) << " units ("
     << Table::num(r.metrics.energy.flush_wasted_per_kilo_commit(), 1)
     << " per 1k commits)";
  if (r.wall_seconds > 0.0) {
    os << " [" << Table::num(r.wall_seconds, 2) << " s, "
       << rate_str(r.sim_cycles_per_sec()) << "]";
  }
  return os.str();
}

std::string summarize(const WarmStore::Stats& stats) {
  return summarize(stats, std::string());
}

std::string summarize(const WarmStore::Stats& stats,
                      const std::string& label) {
  std::ostringstream os;
  os << "warm store";
  if (!label.empty()) os << '[' << label << ']';
  os << ": " << stats.hits << " hit(s), " << stats.misses << " miss(es), "
     << stats.stored << " entr" << (stats.stored == 1 ? "y" : "ies")
     << " written (" << stats.bytes_written << " bytes), "
     << stats.corrupt_discarded << " corrupt discarded";
  return os.str();
}

namespace {

std::string footer_of(double wall, Cycle simulated) {
  if (wall <= 0.0 || simulated == 0) return {};
  std::ostringstream os;
  os << "simulator: " << simulated << " cycles in "
     << Table::num(wall, 2) << " s of simulation work ("
     << rate_str(static_cast<double>(simulated) / wall)
     << " per worker thread)";
  return os.str();
}

}  // namespace

std::string throughput_footer(const std::vector<RunResult>& runs) {
  double wall = 0.0;
  Cycle simulated = 0;
  for (const RunResult& r : runs) {
    wall += r.wall_seconds;
    simulated += r.simulated_cycles;
  }
  return footer_of(wall, simulated);
}

std::string throughput_footer(
    const std::vector<std::vector<RunResult>>& by_workload) {
  double wall = 0.0;
  Cycle simulated = 0;
  for (const auto& row : by_workload) {
    for (const RunResult& r : row) {
      wall += r.wall_seconds;
      simulated += r.simulated_cycles;
    }
  }
  return footer_of(wall, simulated);
}

}  // namespace mflush::report
