#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/remote.h"
#include "sim/wire.h"

/// mflushd — a long-lived campaign coordinator serving the MFLUSNET
/// protocol (sim/wire.h) on a Unix-domain or TCP socket.
///
/// Every SUBMIT becomes a journaled CampaignStore campaign under
/// `data_dir/campaigns/<id>/` where `<id>` is the spec's content hash:
/// resubmitting a spec *attaches* to its campaign (live or finished)
/// instead of re-running it. All campaigns share one content-addressed
/// result cache (`data_dir/cache`) and one warm-snapshot store
/// (`data_dir/warm`), so overlapping submissions from different tenants
/// dedup against each other at job granularity.
///
/// Execution: jobs from every live campaign are multiplexed onto a single
/// shared slot pool (one single-host RemoteBackend per host slot when a
/// pool is given, SerialBackend threads otherwise) by a fair-share
/// scheduler — each dispatch goes to the queued campaign with the fewest
/// jobs served so far, so a late 4-job sweep is not starved behind an
/// early 400-job one. Results stream back to following clients as RESULT
/// frames the moment they are durable.
///
/// Restart contract: campaigns are resumed from their journals at
/// startup, so SIGKILLing the daemon loses no completed work — exactly
/// the per-run invariant CampaignStore already proves, extended to the
/// serving loop. A stale Unix socket left by the corpse is unlinked on
/// bind.
namespace mflush::daemon {

struct ServeOptions {
  /// Listen address (sockio grammar: unix:PATH or HOST:PORT).
  std::string address;
  /// Durable state root: campaigns/, cache/, warm/ live here.
  std::string data_dir;
  /// Host pool; empty runs jobs in-process on SerialBackend slots.
  std::vector<remote::HostSpec> hosts;
  /// Worker binary for the pool; empty means default_worker_binary().
  std::string worker_binary;
  /// In-process slot count when `hosts` is empty; 0 means
  /// ParallelRunner::default_jobs().
  unsigned slots = 0;
  /// Jobs per fair-share dispatch. 1 (the default) interleaves tenants at
  /// job granularity and makes RESULT streaming per-job end to end.
  std::size_t chunk_jobs = 1;
  /// Attempts per chunk before its campaign fails (a chunk that fails on
  /// one slot is re-queued onto another, RemoteBackend-style).
  unsigned max_attempts = 3;
  /// Serialized narration ("mflushd: ..." lines).
  std::function<void(const std::string&)> on_event;
  /// Fires once the socket is listening (tests connect on it).
  std::function<void()> on_ready;
};

/// Run the daemon until a SHUTDOWN request drains it. Returns a process
/// exit code. Throws on startup failure (bad address, unwritable data
/// dir).
int serve(ServeOptions options);

/// The campaign id a spec maps to: 16-hex FNV-1a of its canonical binary
/// archive. Client- and daemon-side agree by construction.
[[nodiscard]] std::string campaign_id(const ExperimentSpec& spec);

/// What a followed submission came back with.
struct SubmitOutcome {
  std::string campaign;
  /// "accepted" (no follow) or the campaign's terminal state: "finished",
  /// "cancelled", or "failed: <why>".
  std::string state;
  std::uint64_t total = 0;
  std::uint64_t executed = 0;  ///< jobs the daemon ran for this campaign
  std::uint64_t cached = 0;    ///< jobs served from the shared cache
  /// Job-id-ordered results, populated only for state == "finished" —
  /// bit-identical to a serial run of the spec.
  std::vector<RunResult> results;
};

/// Submit `spec` to the daemon at `address`. With `follow`, stream
/// RESULT frames until DONE and return the full outcome; without, return
/// as soon as the campaign is accepted. Throws on connection or protocol
/// errors.
SubmitOutcome submit(const std::string& address, const ExperimentSpec& spec,
                     bool follow,
                     const std::function<void(const std::string&)>& on_event =
                         {});

/// One-shot request/response for STATUS, CANCEL, LIST, SHUTDOWN.
[[nodiscard]] Message request(const std::string& address, const Message& msg);

}  // namespace mflush::daemon
