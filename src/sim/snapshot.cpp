#include "sim/snapshot.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/archive.h"
#include "common/fsio.h"

namespace mflush::snapshot {
namespace {

constexpr std::uint64_t kMagic = 0x4d464c5553534e50ull;  // "MFLUSSNP"

// SimConfig is written field-wise (not memcpy'd) so struct padding never
// leaks into the stream and the config echo compares byte-exactly.
void put_config(ArchiveWriter& ar, const SimConfig& cfg) {
  ar.put(cfg.num_cores);
  const CoreConfig& c = cfg.core;
  ar.put(c.threads_per_core);
  ar.put(c.fetch_width);
  ar.put(c.fetch_threads);
  ar.put(c.decode_width);
  ar.put(c.rename_width);
  ar.put(c.issue_width);
  ar.put(c.commit_width);
  ar.put(c.fetch_stages);
  ar.put(c.decode_stages);
  ar.put(c.rename_stages);
  ar.put(c.int_queue_entries);
  ar.put(c.fp_queue_entries);
  ar.put(c.mem_queue_entries);
  ar.put(c.int_units);
  ar.put(c.fp_units);
  ar.put(c.ldst_units);
  ar.put(c.int_phys_regs);
  ar.put(c.fp_phys_regs);
  ar.put(c.rob_entries);
  ar.put(c.ras_entries);
  ar.put(c.lat_int_alu);
  ar.put(c.lat_int_mul);
  ar.put(c.lat_fp_alu);
  ar.put(c.lat_fp_mul);
  ar.put(c.lat_branch);
  ar.put(c.perceptron_table);
  ar.put(c.local_history_entries);
  ar.put(c.history_bits);
  ar.put(c.btb_entries);
  ar.put(c.btb_ways);
  ar.put(c.model_wrong_path);
  const MemConfig& m = cfg.mem;
  ar.put(m.line_bytes);
  ar.put(m.l1i_bytes);
  ar.put(m.l1i_ways);
  ar.put(m.l1i_banks);
  ar.put(m.l1d_bytes);
  ar.put(m.l1d_ways);
  ar.put(m.l1d_banks);
  ar.put(m.l1_latency);
  ar.put(m.itlb_entries);
  ar.put(m.dtlb_entries);
  ar.put(m.tlb_miss_penalty);
  ar.put(m.page_bytes);
  ar.put(m.l2_bytes);
  ar.put(m.l2_ways);
  ar.put(m.l2_banks);
  ar.put(m.l2_bank_latency);
  ar.put(m.bus_latency);
  ar.put(m.memory_latency);
  ar.put(m.mshr_entries);
  ar.put(static_cast<std::uint8_t>(m.memory_model));
  ar.put(m.dram.channels);
  ar.put(m.dram.banks_per_channel);
  ar.put(m.dram.row_bytes);
  ar.put(m.dram.t_row_hit);
  ar.put(m.dram.t_row_miss);
  ar.put(m.dram.t_row_conflict);
  ar.put(m.dram.channel_gap);
  ar.put(m.dram.far_base);
  ar.put(m.dram.far_bytes);
  ar.put(m.dram.far_extra);
  ar.put(cfg.seed);
  ar.put(cfg.prewarm_l2);
}

SimConfig get_config(ArchiveReader& ar) {
  SimConfig cfg;
  cfg.num_cores = ar.get<std::uint32_t>();
  CoreConfig& c = cfg.core;
  c.threads_per_core = ar.get<std::uint32_t>();
  c.fetch_width = ar.get<std::uint32_t>();
  c.fetch_threads = ar.get<std::uint32_t>();
  c.decode_width = ar.get<std::uint32_t>();
  c.rename_width = ar.get<std::uint32_t>();
  c.issue_width = ar.get<std::uint32_t>();
  c.commit_width = ar.get<std::uint32_t>();
  c.fetch_stages = ar.get<std::uint32_t>();
  c.decode_stages = ar.get<std::uint32_t>();
  c.rename_stages = ar.get<std::uint32_t>();
  c.int_queue_entries = ar.get<std::uint32_t>();
  c.fp_queue_entries = ar.get<std::uint32_t>();
  c.mem_queue_entries = ar.get<std::uint32_t>();
  c.int_units = ar.get<std::uint32_t>();
  c.fp_units = ar.get<std::uint32_t>();
  c.ldst_units = ar.get<std::uint32_t>();
  c.int_phys_regs = ar.get<std::uint32_t>();
  c.fp_phys_regs = ar.get<std::uint32_t>();
  c.rob_entries = ar.get<std::uint32_t>();
  c.ras_entries = ar.get<std::uint32_t>();
  c.lat_int_alu = ar.get<std::uint32_t>();
  c.lat_int_mul = ar.get<std::uint32_t>();
  c.lat_fp_alu = ar.get<std::uint32_t>();
  c.lat_fp_mul = ar.get<std::uint32_t>();
  c.lat_branch = ar.get<std::uint32_t>();
  c.perceptron_table = ar.get<std::uint32_t>();
  c.local_history_entries = ar.get<std::uint32_t>();
  c.history_bits = ar.get<std::uint32_t>();
  c.btb_entries = ar.get<std::uint32_t>();
  c.btb_ways = ar.get<std::uint32_t>();
  c.model_wrong_path = ar.get<bool>();
  MemConfig& m = cfg.mem;
  m.line_bytes = ar.get<std::uint32_t>();
  m.l1i_bytes = ar.get<std::uint32_t>();
  m.l1i_ways = ar.get<std::uint32_t>();
  m.l1i_banks = ar.get<std::uint32_t>();
  m.l1d_bytes = ar.get<std::uint32_t>();
  m.l1d_ways = ar.get<std::uint32_t>();
  m.l1d_banks = ar.get<std::uint32_t>();
  m.l1_latency = ar.get<std::uint32_t>();
  m.itlb_entries = ar.get<std::uint32_t>();
  m.dtlb_entries = ar.get<std::uint32_t>();
  m.tlb_miss_penalty = ar.get<std::uint32_t>();
  m.page_bytes = ar.get<std::uint32_t>();
  m.l2_bytes = ar.get<std::uint32_t>();
  m.l2_ways = ar.get<std::uint32_t>();
  m.l2_banks = ar.get<std::uint32_t>();
  m.l2_bank_latency = ar.get<std::uint32_t>();
  m.bus_latency = ar.get<std::uint32_t>();
  m.memory_latency = ar.get<std::uint32_t>();
  m.mshr_entries = ar.get<std::uint32_t>();
  m.memory_model = static_cast<MemModelKind>(ar.get<std::uint8_t>());
  m.dram.channels = ar.get<std::uint32_t>();
  m.dram.banks_per_channel = ar.get<std::uint32_t>();
  m.dram.row_bytes = ar.get<std::uint32_t>();
  m.dram.t_row_hit = ar.get<std::uint32_t>();
  m.dram.t_row_miss = ar.get<std::uint32_t>();
  m.dram.t_row_conflict = ar.get<std::uint32_t>();
  m.dram.channel_gap = ar.get<std::uint32_t>();
  m.dram.far_base = ar.get<Addr>();
  m.dram.far_bytes = ar.get<std::uint64_t>();
  m.dram.far_extra = ar.get<std::uint32_t>();
  cfg.seed = ar.get<std::uint64_t>();
  cfg.prewarm_l2 = ar.get<bool>();
  return cfg;
}

void put_policy(ArchiveWriter& ar, const PolicySpec& p) {
  ar.put(static_cast<std::uint8_t>(p.kind));
  ar.put(p.trigger);
  ar.put(p.mcreg_history);
  ar.put(static_cast<std::uint8_t>(p.mcreg_agg));
  ar.put(p.preventive);
}

PolicySpec get_policy(ArchiveReader& ar) {
  PolicySpec p;
  p.kind = static_cast<PolicySpec::Kind>(ar.get<std::uint8_t>());
  p.trigger = ar.get<Cycle>();
  p.mcreg_history = ar.get<std::uint32_t>();
  p.mcreg_agg = static_cast<PolicySpec::McRegAgg>(ar.get<std::uint8_t>());
  p.preventive = ar.get<bool>();
  return p;
}

void put_header(ArchiveWriter& ar, const CmpSimulator& sim) {
  ar.put(kMagic);
  ar.put(kFormatVersion);
  put_config(ar, sim.config());
  ar.put_string(sim.workload().name);
  ar.put_vec(sim.workload().codes);
  put_policy(ar, sim.policy());
}

struct Header {
  SimConfig cfg;
  Workload workload;
  PolicySpec policy;
};

Header get_header(ArchiveReader& ar) {
  if (ar.get<std::uint64_t>() != kMagic)
    throw std::runtime_error("not a mflush snapshot (bad magic)");
  const auto version = ar.get<std::uint32_t>();
  if (version != kFormatVersion) {
    throw std::runtime_error(
        "snapshot format version " + std::to_string(version) +
        " incompatible with " + std::to_string(kFormatVersion));
  }
  Header h;
  h.cfg = get_config(ar);
  h.workload.name = ar.get_string();
  ar.get_vec(h.workload.codes);
  h.policy = get_policy(ar);
  return h;
}

/// Split off and verify the trailing checksum; returns the payload view.
std::span<const std::uint8_t> checked_body(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(std::uint64_t))
    throw std::runtime_error("snapshot truncated");
  const auto body = bytes.first(bytes.size() - sizeof(std::uint64_t));
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + body.size(), sizeof(stored));
  if (fnv1a(body) != stored)
    throw std::runtime_error("snapshot checksum mismatch (corrupt file?)");
  return body;
}

}  // namespace

std::vector<std::uint8_t> capture(const CmpSimulator& sim) {
  if (sim.profile_built()) {
    // Ad-hoc BenchmarkProfile chips record catalog-code placeholders in
    // their workload; make() would silently rebuild different benchmarks.
    throw std::runtime_error(
        "cannot snapshot a simulator built from ad-hoc benchmark profiles");
  }
  ArchiveWriter ar;
  put_header(ar, sim);
  sim.save_state(ar);
  const std::uint64_t sum = fnv1a(ar.bytes());
  ar.put(sum);
  return ar.take();
}

void restore(CmpSimulator& sim, std::span<const std::uint8_t> bytes) {
  if (sim.profile_built()) {
    throw std::runtime_error(
        "cannot restore into a simulator built from ad-hoc benchmark "
        "profiles (its workload codes are placeholders)");
  }
  ArchiveReader ar(checked_body(bytes));
  const Header h = get_header(ar);

  // The target simulator must be the identical experiment: compare the
  // config echoes byte-for-byte, and workload/policy structurally.
  ArchiveWriter theirs, ours;
  put_config(theirs, h.cfg);
  put_config(ours, sim.config());
  if (theirs.bytes() != ours.bytes())
    throw std::runtime_error("snapshot config does not match simulator");
  if (h.workload.name != sim.workload().name ||
      h.workload.codes != sim.workload().codes)
    throw std::runtime_error("snapshot workload does not match simulator");
  if (h.policy != sim.policy())
    throw std::runtime_error("snapshot policy does not match simulator");

  sim.load_state(ar);
  if (!ar.done()) {
    // Layout drift guard: a longer-than-expected payload means the writer
    // had fields this reader does not know about (a missed version bump).
    throw std::runtime_error("snapshot has trailing bytes (layout drift?)");
  }
}

std::unique_ptr<CmpSimulator> make(std::span<const std::uint8_t> bytes) {
  ArchiveReader ar(checked_body(bytes));
  const Header h = get_header(ar);
  auto sim = std::make_unique<CmpSimulator>(h.cfg, h.workload, h.policy);
  sim->load_state(ar);
  if (!ar.done())
    throw std::runtime_error("snapshot has trailing bytes (layout drift?)");
  return sim;
}

void save_file(const std::string& path, const CmpSimulator& sim) {
  // Atomic + durable: a snapshot is a long warm-up's savings, and a crash
  // mid-write must leave either the old file or the new one — never a
  // truncated archive the next run dies on.
  fsio::write_file_atomic(path, capture(sim), /*durable=*/true);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open snapshot file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("snapshot read failed: " + path);
  return bytes;
}

std::unique_ptr<CmpSimulator> load_file(const std::string& path) {
  return make(read_file(path));
}

}  // namespace mflush::snapshot
