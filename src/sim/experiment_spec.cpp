#include "sim/experiment_spec.h"

#include <cctype>
#include <charconv>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/fsio.h"
#include "sim/cmp.h"
#include "sim/snapshot.h"
#include "sim/warmstore.h"

namespace mflush {
namespace {

constexpr std::uint64_t kSpecMagic = 0x4d464c5553504543ull;  // "MFLUSPEC"
constexpr std::uint32_t kSpecVersion = 2;

void put_workload(ArchiveWriter& ar, const Workload& w) {
  ar.put_string(w.name);
  ar.put_vec(w.codes);
}

Workload get_workload(ArchiveReader& ar) {
  Workload w;
  w.name = ar.get_string();
  ar.get_vec(w.codes);
  return w;
}

void put_policy(ArchiveWriter& ar, const PolicySpec& p) {
  ar.put(static_cast<std::uint8_t>(p.kind));
  ar.put(p.trigger);
  ar.put(p.mcreg_history);
  ar.put(static_cast<std::uint8_t>(p.mcreg_agg));
  ar.put(p.preventive);
}

PolicySpec get_policy(ArchiveReader& ar) {
  PolicySpec p;
  p.kind = static_cast<PolicySpec::Kind>(ar.get<std::uint8_t>());
  p.trigger = ar.get<Cycle>();
  p.mcreg_history = ar.get<std::uint32_t>();
  p.mcreg_agg = static_cast<PolicySpec::McRegAgg>(ar.get<std::uint8_t>());
  p.preventive = ar.get<bool>();
  return p;
}

// BenchmarkProfile is written field-wise in declaration order; any profile
// field added/removed must bump the enclosing format version (spec/job).
void put_profile(ArchiveWriter& ar, const BenchmarkProfile& p) {
  ar.put_string(p.name);
  ar.put(p.code);
  ar.put(p.f_load);
  ar.put(p.f_store);
  ar.put(p.f_branch);
  ar.put(p.f_call_ret);
  ar.put(p.f_fp);
  ar.put(p.f_mul);
  ar.put(p.strands);
  ar.put(p.dep_mean);
  ar.put(p.p_chase);
  ar.put(p.predictability);
  ar.put(p.taken_bias);
  ar.put(p.pattern_period);
  ar.put(p.hot_lines);
  ar.put(p.l2_lines);
  ar.put(p.mem_lines);
  ar.put(p.p_l2);
  ar.put(p.p_mem);
  ar.put(p.p_stream);
  ar.put(p.stream_lines);
  ar.put(p.icache_lines);
  ar.put(p.mean_bb_len);
}

BenchmarkProfile get_profile(ArchiveReader& ar) {
  BenchmarkProfile p;
  p.name = ar.get_string();
  p.code = ar.get<char>();
  p.f_load = ar.get<double>();
  p.f_store = ar.get<double>();
  p.f_branch = ar.get<double>();
  p.f_call_ret = ar.get<double>();
  p.f_fp = ar.get<double>();
  p.f_mul = ar.get<double>();
  p.strands = ar.get<std::uint32_t>();
  p.dep_mean = ar.get<double>();
  p.p_chase = ar.get<double>();
  p.predictability = ar.get<double>();
  p.taken_bias = ar.get<double>();
  p.pattern_period = ar.get<std::uint32_t>();
  p.hot_lines = ar.get<std::uint32_t>();
  p.l2_lines = ar.get<std::uint32_t>();
  p.mem_lines = ar.get<std::uint32_t>();
  p.p_l2 = ar.get<double>();
  p.p_mem = ar.get<double>();
  p.p_stream = ar.get<double>();
  p.stream_lines = ar.get<std::uint32_t>();
  p.icache_lines = ar.get<std::uint32_t>();
  p.mean_bb_len = ar.get<std::uint32_t>();
  return p;
}

// DramConfig is written field-wise in declaration order; any knob
// added/removed must bump the enclosing format version (spec/job).
void put_dram(ArchiveWriter& ar, const DramConfig& d) {
  ar.put(d.channels);
  ar.put(d.banks_per_channel);
  ar.put(d.row_bytes);
  ar.put(d.t_row_hit);
  ar.put(d.t_row_miss);
  ar.put(d.t_row_conflict);
  ar.put(d.channel_gap);
  ar.put(d.far_base);
  ar.put(d.far_bytes);
  ar.put(d.far_extra);
}

DramConfig get_dram(ArchiveReader& ar) {
  DramConfig d;
  d.channels = ar.get<std::uint32_t>();
  d.banks_per_channel = ar.get<std::uint32_t>();
  d.row_bytes = ar.get<std::uint32_t>();
  d.t_row_hit = ar.get<std::uint32_t>();
  d.t_row_miss = ar.get<std::uint32_t>();
  d.t_row_conflict = ar.get<std::uint32_t>();
  d.channel_gap = ar.get<std::uint32_t>();
  d.far_base = ar.get<Addr>();
  d.far_bytes = ar.get<std::uint64_t>();
  d.far_extra = ar.get<std::uint32_t>();
  return d;
}

/// Throwing wrapper over the shared workloads::resolve front door.
Workload resolve_workload(const std::string& token) {
  if (const auto w = workloads::resolve(token)) return *w;
  throw std::runtime_error(
      "experiment spec: unknown workload '" + token +
      "' (catalog name or an even-length string of benchmark codes)");
}

// Every JobSpec field up to (but excluding) the snapshot tail, shared by
// the wire form (save) and the canonical content form (save_content).
void put_job_fields(ArchiveWriter& ar, const JobSpec& j) {
  put_workload(ar, j.workload);
  ar.put<std::uint64_t>(j.profiles.size());
  for (const BenchmarkProfile& p : j.profiles) put_profile(ar, p);
  put_policy(ar, j.policy);
  ar.put(j.seed);
  ar.put(j.warmup);
  ar.put(j.measure);
  ar.put(j.fork_advance);
  ar.put<std::uint8_t>(j.warm_only ? 1 : 0);
  ar.put(j.parent_key);
  ar.put(static_cast<std::uint8_t>(j.mem_model));
  put_dram(ar, j.dram);
}

// Snapshot tail tags shared by save/save_content/load.
constexpr std::uint8_t kSnapNone = 0;      // no snapshot
constexpr std::uint8_t kSnapInline = 1;    // length-prefixed bytes follow
constexpr std::uint8_t kSnapByParent = 2;  // resolve via parent_key

/// The chip config a job's simulator is built with: paper defaults for
/// the chip size, the job's seed, and the job's memory model — the single
/// spec→SimConfig mapping every run path shares.
SimConfig job_config(const JobSpec& job, std::uint32_t num_cores) {
  SimConfig cfg = SimConfig::paper_default(num_cores, job.seed);
  cfg.mem.memory_model = job.mem_model;
  cfg.mem.dram = job.dram;
  return cfg;
}

/// Warm a catalog parent chip from scratch — the single definition every
/// warm path shares (warm jobs, by-ref self-heal): bit-identity of forks
/// rests on all of them producing the same capture.
std::shared_ptr<const std::vector<std::uint8_t>> warm_parent_snapshot(
    const JobSpec& job) {
  if (!job.profiles.empty()) {
    throw std::runtime_error(
        "warm jobs require catalog workloads (snapshots cannot rebuild "
        "ad-hoc profile chips)");
  }
  CmpSimulator parent(job_config(job, job.workload.num_cores()),
                      job.workload, job.policy);
  parent.run(job.warmup);
  return std::make_shared<const std::vector<std::uint8_t>>(
      snapshot::capture(parent));
}

}  // namespace

// ------------------------------------------------------------------ JobSpec

void JobSpec::save(ArchiveWriter& ar) const {
  ar.put(id);
  put_job_fields(ar, *this);
  // Wire form: attached bytes always travel (this is the upload); a by-ref
  // fork ships the parent hash alone.
  if (snapshot) {
    ar.put(kSnapInline);
    ar.put_vec(*snapshot);
  } else {
    ar.put(parent_key != 0 ? kSnapByParent : kSnapNone);
  }
}

void JobSpec::save_content(ArchiveWriter& ar) const {
  put_job_fields(ar, *this);
  // Canonical form: a parent hash pins the exact snapshot bytes, so the
  // content is the same whether or not the bytes are attached — the
  // campaign cache key stays stable across by-ref and resolved copies.
  if (parent_key != 0) {
    ar.put(kSnapByParent);
  } else if (snapshot) {
    ar.put(kSnapInline);
    ar.put_vec(*snapshot);
  } else {
    ar.put(kSnapNone);
  }
}

JobSpec JobSpec::load(ArchiveReader& ar) {
  JobSpec j;
  j.id = ar.get<std::uint32_t>();
  j.workload = get_workload(ar);
  const auto num_profiles = ar.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < num_profiles; ++i)
    j.profiles.push_back(get_profile(ar));
  j.policy = get_policy(ar);
  j.seed = ar.get<std::uint64_t>();
  j.warmup = ar.get<Cycle>();
  j.measure = ar.get<Cycle>();
  j.fork_advance = ar.get<Cycle>();
  j.warm_only = ar.get<std::uint8_t>() != 0;
  j.parent_key = ar.get<std::uint64_t>();
  j.mem_model = static_cast<MemModelKind>(ar.get<std::uint8_t>());
  j.dram = get_dram(ar);
  const auto tag = ar.get<std::uint8_t>();
  if (tag == kSnapInline) {
    std::vector<std::uint8_t> bytes;
    ar.get_vec(bytes);
    j.snapshot =
        std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  } else if (tag != kSnapNone && tag != kSnapByParent) {
    throw std::runtime_error("job archive: unknown snapshot tag " +
                             std::to_string(tag));
  }
  return j;
}

RunResult run_job(const JobSpec& job) {
  if (job.warm_only) {
    const auto t0 = std::chrono::steady_clock::now();
    RunResult r;
    r.workload = job.workload.name;
    r.policy = job.policy.label();
    r.payload = warm_parent_snapshot(job);
    r.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    r.simulated_cycles = job.warmup;
    // Share the bytes with every fork of this parent in the process.
    warmstore::publish(job.parent_key, r.payload);
    return r;
  }
  auto snap = job.snapshot;
  if (!snap && job.parent_key != 0) {
    // By-ref fork whose bytes were not resolved (no store on this host, or
    // the entry vanished): the snapshot is a pure function of (workload,
    // policy, seed, warmup), so re-warming here is deterministic and the
    // fork's metrics are unchanged. Publish so siblings warm at most once
    // per process.
    snap = warmstore::recall(job.parent_key);
    if (!snap) {
      snap = warm_parent_snapshot(job);
      warmstore::publish(job.parent_key, snap);
    }
  }
  if (snap)
    return run_point_from_snapshot(*snap, job.fork_advance, job.measure);
  if (!job.profiles.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    CmpSimulator sim(
        job_config(job,
                   static_cast<std::uint32_t>(job.profiles.size()) / 2),
        job.profiles, job.policy);
    sim.run(job.warmup);
    sim.reset_stats();
    sim.run(job.measure);
    RunResult r{job.workload.name.empty() ? sim.workload().name
                                          : job.workload.name,
                job.policy.label(), sim.metrics()};
    r.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    r.simulated_cycles = job.warmup + job.measure;
    return r;
  }
  return run_point(job_config(job, job.workload.num_cores()), job.workload,
                   job.policy, job.warmup, job.measure);
}

// ----------------------------------------------------------- ExperimentSpec

void ExperimentSpec::validate() const {
  if (workloads.empty())
    throw std::runtime_error("experiment spec: no workloads");
  if (policies.empty()) throw std::runtime_error("experiment spec: no policies");
  if (seeds.empty()) throw std::runtime_error("experiment spec: no seeds");
  if (measure == 0)
    throw std::runtime_error("experiment spec: measure must be > 0");
  for (const Workload& w : workloads) {
    if (w.codes.empty() || w.codes.size() % 2 != 0) {
      throw std::runtime_error("experiment spec: workload '" + w.name +
                               "' needs an even, non-zero thread count");
    }
  }
  if (mode == RunMode::Sampled) {
    if (sampled.forks == 0)
      throw std::runtime_error("experiment spec: sampled.forks must be > 0");
    if (sampled.target_half_width < 0.0 || sampled.target_half_width >= 1.0) {
      throw std::runtime_error(
          "experiment spec: target_half_width must be in [0, 1)");
    }
    if (sampled.max_rounds == 0)
      throw std::runtime_error("experiment spec: max_rounds must be > 0");
  }
  // DRAM knobs share SimConfig's validation (the single source of the
  // constraints); probe with a minimal chip so a bad spec fails at parse
  // time, not inside a worker.
  if (mem_model != MemModelKind::Fixed) {
    SimConfig probe = SimConfig::paper_default(1);
    probe.mem.memory_model = mem_model;
    probe.mem.dram = dram;
    if (const std::string err = probe.validate(); !err.empty())
      throw std::runtime_error("experiment spec: " + err);
  }
}

std::vector<JobSpec> ExperimentSpec::expand() const {
  validate();
  std::vector<JobSpec> jobs;

  if (mode == RunMode::FullRun) {
    jobs.reserve(num_points());
    std::uint32_t id = 0;
    for (const std::uint64_t seed : seeds) {
      for (const Workload& w : workloads) {
        for (const PolicySpec& p : policies) {
          JobSpec j;
          j.id = id++;
          j.workload = w;
          j.policy = p;
          j.seed = seed;
          j.warmup = warmup;
          j.measure = measure;
          j.mem_model = mem_model;
          j.dram = dram;
          jobs.push_back(std::move(j));
        }
      }
    }
    return jobs;
  }

  // Sampled: one warmed parent per point, shared by its forks — but the
  // warm-up itself is NOT run here. Fork jobs reference the parent by
  // content hash; the warm phase of run_experiment resolves the hashes
  // from a WarmStore or warms the misses as ordinary backend jobs, so
  // expansion costs no simulation and warm-up parallelism (and
  // distribution) belongs to the backend.
  const Cycle stride =
      sampled.fork_stride != 0 ? sampled.fork_stride : measure / 2;
  const std::size_t points = num_points();
  const std::size_t num_w = workloads.size();
  const std::size_t num_p = policies.size();
  jobs.reserve(points * sampled.forks);
  for (std::size_t i = 0; i < points; ++i) {
    JobSpec proto;
    proto.workload = workloads[(i / num_p) % num_w];
    proto.policy = policies[i % num_p];
    proto.seed = seeds[i / (num_w * num_p)];
    proto.warmup = warmup;
    proto.mem_model = mem_model;
    proto.dram = dram;
    const std::uint64_t key = warmstore::warm_key(proto);
    for (std::uint32_t k = 0; k < sampled.forks; ++k) {
      JobSpec j = proto;
      j.id = static_cast<std::uint32_t>(i * sampled.forks + k);
      j.measure = measure;
      j.fork_advance = static_cast<Cycle>(k) * stride;
      j.parent_key = key;
      jobs.push_back(std::move(j));
    }
  }
  return jobs;
}

std::vector<std::uint8_t> ExperimentSpec::to_bytes() const {
  ArchiveWriter ar;
  ar.put(kSpecMagic);
  ar.put(kSpecVersion);
  ar.put_string(name);
  ar.put<std::uint64_t>(workloads.size());
  for (const Workload& w : workloads) put_workload(ar, w);
  ar.put<std::uint64_t>(policies.size());
  for (const PolicySpec& p : policies) put_policy(ar, p);
  ar.put_vec(seeds);
  ar.put(warmup);
  ar.put(measure);
  ar.put(static_cast<std::uint8_t>(mode));
  ar.put(sampled.forks);
  ar.put(sampled.fork_stride);
  ar.put(sampled.target_half_width);
  ar.put(sampled.max_rounds);
  ar.put(static_cast<std::uint8_t>(mem_model));
  put_dram(ar, dram);
  ar.put(fnv1a(ar.bytes()));
  return ar.take();
}

ExperimentSpec ExperimentSpec::from_bytes(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(std::uint64_t))
    throw std::runtime_error("experiment spec: truncated");
  const auto body = bytes.first(bytes.size() - sizeof(std::uint64_t));
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + body.size(), sizeof(stored));
  if (fnv1a(body) != stored)
    throw std::runtime_error(
        "experiment spec: checksum mismatch (corrupt file?)");

  ArchiveReader ar(body);
  if (ar.get<std::uint64_t>() != kSpecMagic)
    throw std::runtime_error("experiment spec: bad magic");
  if (const auto v = ar.get<std::uint32_t>(); v != kSpecVersion) {
    throw std::runtime_error("experiment spec: format version " +
                             std::to_string(v) + " incompatible with " +
                             std::to_string(kSpecVersion));
  }
  ExperimentSpec spec;
  spec.name = ar.get_string();
  const auto num_w = ar.get<std::uint64_t>();
  spec.workloads.clear();
  for (std::uint64_t i = 0; i < num_w; ++i)
    spec.workloads.push_back(get_workload(ar));
  const auto num_p = ar.get<std::uint64_t>();
  spec.policies.clear();
  for (std::uint64_t i = 0; i < num_p; ++i)
    spec.policies.push_back(get_policy(ar));
  ar.get_vec(spec.seeds);
  spec.warmup = ar.get<Cycle>();
  spec.measure = ar.get<Cycle>();
  spec.mode = static_cast<RunMode>(ar.get<std::uint8_t>());
  spec.sampled.forks = ar.get<std::uint32_t>();
  spec.sampled.fork_stride = ar.get<Cycle>();
  spec.sampled.target_half_width = ar.get<double>();
  spec.sampled.max_rounds = ar.get<std::uint32_t>();
  spec.mem_model = static_cast<MemModelKind>(ar.get<std::uint8_t>());
  spec.dram = get_dram(ar);
  if (!ar.done())
    throw std::runtime_error("experiment spec: trailing bytes (corrupt?)");
  spec.validate();
  return spec;
}

std::string ExperimentSpec::to_text() const {
  std::ostringstream os;
  os << "# mflush experiment spec (text form, v" << kSpecVersion << ")\n"
     << "# run with: mflushsim --spec FILE [--backend inprocess|worker]\n"
     << "name " << name << '\n'
     << "mode " << (mode == RunMode::Sampled ? "sampled" : "full_run") << '\n'
     << "warmup " << warmup << '\n'
     << "measure " << measure << '\n';
  os << "seeds";
  for (const std::uint64_t s : seeds) os << ' ' << s;
  os << '\n';
  for (const Workload& w : workloads) os << "workload " << w.name << '\n';
  for (const PolicySpec& p : policies) {
    std::string label = p.label();
    for (char& c : label) c = static_cast<char>(std::tolower(c));
    os << "policy " << label << '\n';
  }
  if (mode == RunMode::Sampled) {
    os << "forks " << sampled.forks << '\n'
       << "fork_stride " << sampled.fork_stride << '\n'
       << "target_half_width " << sampled.target_half_width << '\n'
       << "max_rounds " << sampled.max_rounds << '\n';
  }
  // Memory-model block only when not the default fixed model, so existing
  // fixed-memory spec files round-trip unchanged.
  if (mem_model != MemModelKind::Fixed) {
    os << "mem_model dram\n"
       << "dram_channels " << dram.channels << '\n'
       << "dram_banks_per_channel " << dram.banks_per_channel << '\n'
       << "dram_row_bytes " << dram.row_bytes << '\n'
       << "dram_t_row_hit " << dram.t_row_hit << '\n'
       << "dram_t_row_miss " << dram.t_row_miss << '\n'
       << "dram_t_row_conflict " << dram.t_row_conflict << '\n'
       << "dram_channel_gap " << dram.channel_gap << '\n'
       << "dram_far_base " << dram.far_base << '\n'
       << "dram_far_bytes " << dram.far_bytes << '\n'
       << "dram_far_extra " << dram.far_extra << '\n';
  }
  return os.str();
}

ExperimentSpec ExperimentSpec::from_text(std::string_view text) {
  ExperimentSpec spec;
  spec.seeds.clear();
  std::istringstream is{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and surrounding whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank line

    const auto fail = [&](const std::string& why) {
      throw std::runtime_error("experiment spec line " +
                               std::to_string(lineno) + ": " + why);
    };
    // Strict non-negative integer tokens: istream >> uint64 would wrap
    // "-1" into 2^64-1 instead of failing, so parse via from_chars.
    const auto parse_u64 = [&](const std::string& token,
                               std::uint64_t& out) -> bool {
      const auto [ptr, ec] = std::from_chars(
          token.data(), token.data() + token.size(), out);
      return ec == std::errc{} && ptr == token.data() + token.size();
    };
    const auto value_u64 = [&]() -> std::uint64_t {
      std::string token;
      std::uint64_t v = 0;
      if (!(ls >> token) || !parse_u64(token, v))
        fail("'" + key + "' expects a non-negative integer");
      return v;
    };

    if (key == "name") {
      if (!(ls >> spec.name)) fail("'name' expects a value");
    } else if (key == "mode") {
      std::string m;
      if (!(ls >> m)) fail("'mode' expects full_run or sampled");
      if (m == "full_run") {
        spec.mode = RunMode::FullRun;
      } else if (m == "sampled") {
        spec.mode = RunMode::Sampled;
      } else {
        fail("unknown mode '" + m + "' (full_run or sampled)");
      }
    } else if (key == "warmup") {
      spec.warmup = value_u64();
    } else if (key == "measure") {
      spec.measure = value_u64();
    } else if (key == "seeds" || key == "seed") {
      std::string token;
      while (ls >> token) {
        std::uint64_t s = 0;
        if (!parse_u64(token, s))
          fail("'seeds' expects non-negative integers, got '" + token + "'");
        spec.seeds.push_back(s);
      }
      if (spec.seeds.empty()) fail("'seeds' expects at least one integer");
    } else if (key == "workload") {
      std::string token;
      if (!(ls >> token)) fail("'workload' expects a name or code string");
      spec.workloads.push_back(resolve_workload(token));
    } else if (key == "policy") {
      std::string token;
      if (!(ls >> token)) fail("'policy' expects a policy spec");
      const auto p = PolicySpec::parse(token);
      if (!p) fail("unknown policy '" + token + "'");
      spec.policies.push_back(*p);
    } else if (key == "forks") {
      spec.sampled.forks = static_cast<std::uint32_t>(value_u64());
    } else if (key == "fork_stride") {
      spec.sampled.fork_stride = value_u64();
    } else if (key == "target_half_width") {
      double v = 0.0;
      if (!(ls >> v)) fail("'target_half_width' expects a number");
      spec.sampled.target_half_width = v;
    } else if (key == "max_rounds") {
      spec.sampled.max_rounds = static_cast<std::uint32_t>(value_u64());
    } else if (key == "mem_model") {
      std::string m;
      if (!(ls >> m)) fail("'mem_model' expects fixed or dram");
      if (m == "fixed") {
        spec.mem_model = MemModelKind::Fixed;
      } else if (m == "dram") {
        spec.mem_model = MemModelKind::BankedDram;
      } else {
        fail("unknown mem_model '" + m + "' (fixed or dram)");
      }
    } else if (key == "dram_channels") {
      spec.dram.channels = static_cast<std::uint32_t>(value_u64());
    } else if (key == "dram_banks_per_channel") {
      spec.dram.banks_per_channel = static_cast<std::uint32_t>(value_u64());
    } else if (key == "dram_row_bytes") {
      spec.dram.row_bytes = static_cast<std::uint32_t>(value_u64());
    } else if (key == "dram_t_row_hit") {
      spec.dram.t_row_hit = static_cast<std::uint32_t>(value_u64());
    } else if (key == "dram_t_row_miss") {
      spec.dram.t_row_miss = static_cast<std::uint32_t>(value_u64());
    } else if (key == "dram_t_row_conflict") {
      spec.dram.t_row_conflict = static_cast<std::uint32_t>(value_u64());
    } else if (key == "dram_channel_gap") {
      spec.dram.channel_gap = static_cast<std::uint32_t>(value_u64());
    } else if (key == "dram_far_base") {
      spec.dram.far_base = value_u64();
    } else if (key == "dram_far_bytes") {
      spec.dram.far_bytes = value_u64();
    } else if (key == "dram_far_extra") {
      spec.dram.far_extra = static_cast<std::uint32_t>(value_u64());
    } else {
      fail("unknown key '" + key + "'");
    }
    std::string extra;
    if (ls >> extra) fail("trailing junk '" + extra + "'");
  }
  if (spec.seeds.empty()) spec.seeds.push_back(1);
  spec.validate();
  return spec;
}

ExperimentSpec ExperimentSpec::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in)
    throw std::runtime_error("cannot open experiment spec: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("experiment spec read failed: " + path);

  std::uint64_t magic = 0;
  if (bytes.size() >= sizeof(magic))
    std::memcpy(&magic, bytes.data(), sizeof(magic));
  if (magic == kSpecMagic) return from_bytes(bytes);
  return from_text(
      std::string_view(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size()));
}

void ExperimentSpec::write_file(const std::string& path, bool binary) const {
  validate();
  // Temp-then-rename: an interrupted emission must never leave a truncated
  // spec that a later --spec run could half-parse as the study.
  std::vector<std::uint8_t> bytes;
  if (binary) {
    bytes = to_bytes();
  } else {
    const std::string text = to_text();
    bytes.assign(text.begin(), text.end());
  }
  fsio::write_file_atomic(path, bytes, /*durable=*/true);
}

}  // namespace mflush
