#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment_spec.h"

/// Interchangeable execution backends for expanded experiments.
///
/// The contract every backend honours: given the same job vector, the
/// RunResult for each job id is bit-identical (full SimMetrics equality) to
/// executing run_job(job) in a plain serial loop — only wall-clock timing
/// fields may differ. Results stream into a ResultSink as jobs finish (any
/// order); collect() restores job-id order, so a sweep's output never
/// depends on scheduling. Tested by BackendTest.CrossBackendDeterminism.
namespace mflush {

class ParallelRunner;
class WarmStore;

/// Streaming result collection: an optional on_result callback fires as
/// each job completes (completion order, serialized — never concurrently),
/// and collect() returns every result ordered by job id.
class ResultSink {
 public:
  using OnResult = std::function<void(const JobSpec&, const RunResult&)>;

  ResultSink() = default;
  explicit ResultSink(OnResult on_result)
      : on_result_(std::move(on_result)) {}

  /// Record the result of `job` (thread-safe; slot = job.id). Fires the
  /// callback while holding the sink lock, so callbacks must not re-enter
  /// the sink or block on the backend.
  void push(const JobSpec& job, RunResult result);

  [[nodiscard]] std::size_t completed() const;

  /// Copy of the result in slot `id`; throws if that job has not finished.
  [[nodiscard]] RunResult at(std::size_t id) const;

  /// All results ordered by job id; throws if any slot is still empty
  /// (a backend bug — backends only return from run() when every job is
  /// done). Leaves the sink intact, so sampled-mode rounds can keep
  /// appending after an intermediate collect.
  [[nodiscard]] std::vector<RunResult> collect() const;

 private:
  mutable std::mutex m_;
  std::vector<std::optional<RunResult>> slots_;
  OnResult on_result_;
};

/// Executes a batch of jobs. run() returns once every job's result has been
/// pushed into the sink; the first job failure is rethrown after the batch
/// drains.
class ExperimentBackend {
 public:
  virtual ~ExperimentBackend() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void run(const std::vector<JobSpec>& jobs, ResultSink& sink) = 0;

  /// Backend that executes warm jobs (sampled-mode parent warm-ups). By
  /// default the backend itself; decorators that must not intercept warm
  /// work — e.g. the durable campaign wrapper, whose journal/cache only
  /// tracks measured jobs (the warm store is the warm jobs' durability
  /// layer) — forward to the wrapped backend.
  [[nodiscard]] virtual ExperimentBackend& warmup_backend() noexcept {
    return *this;
  }

  /// Convenience: run into a fresh sink and return the ordered results.
  [[nodiscard]] std::vector<RunResult> run_collect(
      const std::vector<JobSpec>& jobs);
};

/// The reference loop: jobs run one after another on the calling thread, in
/// vector order. Every other backend is tested against this one.
class SerialBackend final : public ExperimentBackend {
 public:
  [[nodiscard]] std::string name() const override { return "serial"; }
  void run(const std::vector<JobSpec>& jobs, ResultSink& sink) override;
};

/// Jobs fan out across a ParallelRunner thread pool within this process.
class InProcessBackend final : public ExperimentBackend {
 public:
  /// Default: the process-wide shared pool (MFLUSH_JOBS threads).
  InProcessBackend();
  explicit InProcessBackend(ParallelRunner& pool) : pool_(&pool) {}

  [[nodiscard]] std::string name() const override { return "inprocess"; }
  void run(const std::vector<JobSpec>& jobs, ResultSink& sink) override;

 private:
  ParallelRunner* pool_;
};

/// Jobs shell out to `mflushsim --worker` subprocesses speaking the
/// job-file-in / result-file-out protocol below. Since the distributed
/// sweep work this is a thin veneer over RemoteBackend (sim/remote.h) with
/// a single loopback host: jobs run in *batches* per subprocess (not one
/// process plus two files per job), failed batches retry with a fresh
/// scratch stem, and the protocol files are scrubbed on every error path.
class WorkerBackend final : public ExperimentBackend {
 public:
  struct Options {
    /// Worker binary; empty means default_worker_binary().
    std::string worker_binary;
    /// Concurrent worker processes; 0 means ParallelRunner::default_jobs().
    unsigned max_processes = 0;
    /// Directory for job/result files; empty means the system temp dir.
    std::string scratch_dir;
    /// Keep the protocol files after the run (debugging).
    bool keep_files = false;
    /// Jobs per worker invocation; 0 means the scheduler's auto sizing,
    /// 1 reproduces the old one-subprocess-per-job pattern.
    std::size_t batch_jobs = 0;
    /// Total attempts per batch (>= 1) before the sweep fails. A worker
    /// that exits nonzero, dies by signal, or writes a corrupt result is
    /// retried on a fresh scratch stem up to this bound.
    unsigned max_attempts = 3;
    /// Serialized scheduler narration (batch failures and retries) —
    /// without it a transient worker crash is retried away invisibly.
    /// Same contract as RemoteBackend::Options::on_event.
    std::function<void(const std::string&)> on_event;
    /// Coordinator-side warm store shared with the loopback worker: fork
    /// jobs referencing parents present in it ship the hash, not the
    /// bytes. Null disables warm shipping (bytes embed inline as before).
    WarmStore* warm_store = nullptr;
  };

  WorkerBackend();  ///< default Options
  explicit WorkerBackend(Options options);

  [[nodiscard]] std::string name() const override { return "worker"; }
  void run(const std::vector<JobSpec>& jobs, ResultSink& sink) override;

 private:
  Options opts_;
};

/// Removes its paths on destruction unless told to keep them — the worker
/// and remote backends wrap every scratch .mfj/.mfr pair in one of these so
/// protocol files cannot leak when a worker dies, writes a corrupt result,
/// or a transport throws (the old post-success remove() calls were
/// unreachable on those paths).
class ScratchGuard {
 public:
  explicit ScratchGuard(std::vector<std::string> paths, bool keep = false)
      : paths_(std::move(paths)), keep_(keep) {}
  ~ScratchGuard();
  ScratchGuard(const ScratchGuard&) = delete;
  ScratchGuard& operator=(const ScratchGuard&) = delete;

 private:
  std::vector<std::string> paths_;
  bool keep_;
};

namespace proc {

/// Run `bin args...` to completion (PATH lookup via posix_spawnp) and
/// return its exit code. Throws on spawn failure or death by signal; a
/// non-empty `what` (e.g. "batch 2 (jobs 4-7)") is woven into those
/// messages so a dead worker names the work it was running, not just the
/// binary. A nonzero `timeout_s` is a wall-clock deadline: a child still
/// running at the deadline is SIGKILLed, reaped, and reported as a throw
/// naming the timeout — so a wedged subprocess (a hung ssh, a stuck
/// worker) surfaces as an ordinary failure instead of blocking forever.
int spawn_and_wait(const std::string& bin,
                   const std::vector<std::string>& args,
                   const std::string& what = {}, unsigned timeout_s = 0);

}  // namespace proc

/// Record argv[0] at process startup (mflushsim does this first thing in
/// main). default_worker_binary falls back to it where /proc/self/exe is
/// unavailable (non-Linux) — without it, discovery silently returned empty
/// there and the backend error fired even though the binary was findable.
void record_argv0(const char* argv0);

/// Resolve a worker binary near the executable at `exe`: `exe` itself when
/// it is named mflushsim, else a sibling `mflushsim` in the same directory
/// (the build-tree layout, which is how the test binaries find the worker).
/// Empty string when neither exists.
[[nodiscard]] std::string worker_binary_near(const std::string& exe);

/// Resolve the worker binary, first match wins: $MFLUSH_WORKER_BIN;
/// worker_binary_near(/proc/self/exe); worker_binary_near(recorded
/// argv[0]). Empty string only when every source genuinely fails.
[[nodiscard]] std::string default_worker_binary();

/// Knobs threaded through run_experiment / run_experiment_durable.
struct RunOptions {
  /// Warm store consulted and filled by the sampled-mode warm phase. Null
  /// still works — missing parents warm as parallel backend jobs and are
  /// shared through the in-process registry — but nothing persists across
  /// processes.
  WarmStore* warm_store = nullptr;
  /// Warm-phase narration ("N parent(s): H reused, W warmed"). The CLI
  /// wires report::event_printer(std::cerr, "warm-store: ").
  std::function<void(const std::string&)> on_event;
  /// Tenant tag prefixed onto warm-phase event lines ("[label] N
  /// parent(s): ..."): mflushd sets the campaign id here so concurrent
  /// tenants' warm narration stays attributable. Empty = classic lines.
  std::string label;
};

/// The sampled-mode warm phase: attach parent snapshot bytes to every
/// by-reference fork job in `jobs` (parent_key set, snapshot null). Each
/// distinct parent resolves, in order: the warm store (options.warm_store),
/// the in-process registry (healing the store entry back when one is
/// configured), and finally a warm job executed on
/// backend.warmup_backend() — all misses warm concurrently as one batch.
/// After this returns every by-ref job carries its snapshot. No-op for job
/// vectors without parent references (FullRun, pre-resolved forks).
void resolve_parent_snapshots(std::vector<JobSpec>& jobs,
                              ExperimentBackend& backend,
                              const RunOptions& options = {});

/// Execute a full spec on a backend. FullRun specs are expand()ed and run
/// as one batch. Sampled specs first resolve parent snapshots (see
/// resolve_parent_snapshots — warm-store lookups or parallel warm jobs,
/// never coordinator-thread simulation), then run round by round: after
/// each round the 95% confidence half-width of every point's mean IPC is
/// computed from its fork results, and points whose relative half-width
/// still exceeds sampled.target_half_width get another round of forks
/// (continuing the fork_advance stride off the same parent snapshot) until
/// they converge or sampled.max_rounds is reached — the SMARTS-style
/// stopping rule. Deterministic for any backend: the rule only consumes
/// job results, which are themselves backend-independent.
///
/// Returns all results ordered by job id (sampled mode: round-0 forks for
/// every point first, then continuation rounds in creation order).
std::vector<RunResult> run_experiment(const ExperimentSpec& spec,
                                      ExperimentBackend& backend,
                                      ResultSink& sink,
                                      const RunOptions& options);

std::vector<RunResult> run_experiment(const ExperimentSpec& spec,
                                      ExperimentBackend& backend,
                                      ResultSink& sink);

/// run_experiment into a sink with no callback.
[[nodiscard]] std::vector<RunResult> run_experiment(
    const ExperimentSpec& spec, ExperimentBackend& backend);

// ------------------------------------------------------ worker protocol
//
// Both files are flat ArchiveWriter streams: magic, version, u64 count,
// the entries, and a trailing FNV-1a checksum over everything before it.
// Readers reject bad magic, version skew, checksum mismatch and trailing
// bytes outright — a corrupt job must fail loudly, never half-run.
namespace worker {

/// v2: JobSpec gained warm_only + parent_key (with a by-reference snapshot
/// tag) and RunResult gained the warm-job payload.
inline constexpr std::uint32_t kProtocolVersion = 3;

/// Per-process unique scratch-file stem inside `dir` (pid + monotonic
/// counter + leading job id), shared by the worker and remote backends so
/// concurrent attempts can never collide on a file name.
[[nodiscard]] std::string scratch_stem(const std::string& dir,
                                       std::uint32_t job_id);

void write_job_file(const std::string& path,
                    const std::vector<JobSpec>& jobs);
[[nodiscard]] std::vector<JobSpec> read_job_file(const std::string& path);

void write_result_file(
    const std::string& path,
    const std::vector<std::pair<std::uint32_t, RunResult>>& results);
[[nodiscard]] std::vector<std::pair<std::uint32_t, RunResult>>
read_result_file(const std::string& path);

/// In-memory forms of the result-file archive. encode produces the exact
/// checksummed byte stream write_result_file writes; decode validates
/// magic, version, checksum, and trailing bytes the same way
/// read_result_file does, with `what` woven into errors in place of a
/// path. The campaign result cache (sim/campaign.h) stores one-entry
/// result archives, so a cache entry is readable by the same decoder the
/// worker protocol trusts.
[[nodiscard]] std::vector<std::uint8_t> encode_results(
    const std::vector<std::pair<std::uint32_t, RunResult>>& results);
[[nodiscard]] std::vector<std::pair<std::uint32_t, RunResult>>
decode_results(std::span<const std::uint8_t> bytes, const std::string& what);

/// The `mflushsim --worker` entry point: read the job file, run every job,
/// write the result file. Returns a process exit code (0 on success).
///
/// A non-empty `store_dir` opens the host-side WarmStore
/// (`--worker-store`): embedded parent snapshots are installed into it
/// before anything runs (so one upload serves every later batch on this
/// host), by-reference forks resolve their bytes from it, and warm-job
/// payloads are stored after capture. Without a store, by-ref forks fall
/// back to run_job's deterministic in-process re-warm.
/// With `write_parts` (`--worker-parts`), every measured job's result is
/// additionally written — atomically, as a one-entry result archive — to
/// `result_path + ".r<job_id>"` the moment the job finishes, so a
/// coordinator sharing the filesystem (LocalTransport) can stream results
/// before the batch completes. The part entry is the same RunResult the
/// final file carries, encoded by the same writer: byte-identical. The
/// final result file remains authoritative; parts are never the only copy.
int run_worker(const std::string& job_path, const std::string& result_path,
               const std::string& store_dir = {}, bool write_parts = false);

}  // namespace worker
}  // namespace mflush
