#include "sim/experiment.h"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <string_view>

#include "sim/parallel.h"
#include "sim/snapshot.h"

namespace mflush {
namespace {

Cycle env_cycles(const char* var, Cycle fallback) {
  const char* raw = std::getenv(var);
  if (raw == nullptr) return fallback;
  const std::string_view s(raw);
  Cycle v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size() || v == 0)
    return fallback;
  return v;
}

}  // namespace

Cycle bench_cycles(Cycle fallback) {
  return env_cycles("MFLUSH_BENCH_CYCLES", fallback);
}

Cycle warmup_cycles(Cycle fallback) {
  return env_cycles("MFLUSH_WARMUP_CYCLES", fallback);
}

RunResult run_point(const Workload& workload, const PolicySpec& policy,
                    std::uint64_t seed, Cycle warmup, Cycle measure) {
  const auto t0 = std::chrono::steady_clock::now();
  CmpSimulator sim(workload, policy, seed);
  sim.run(warmup);
  sim.reset_stats();
  sim.run(measure);
  RunResult r{workload.name, policy.label(), sim.metrics()};
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.simulated_cycles = warmup + measure;
  return r;
}

RunResult run_point_from_snapshot(const std::vector<std::uint8_t>& snapshot,
                                  Cycle fork_advance, Cycle measure) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::unique_ptr<CmpSimulator> sim = snapshot::make(snapshot);
  sim->run(fork_advance);
  sim->reset_stats();
  sim->run(measure);
  RunResult r{sim->workload().name, sim->policy().label(), sim->metrics()};
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.simulated_cycles = fork_advance + measure;
  return r;
}

std::vector<RunResult> run_sweep(const Workload& workload,
                                 const std::vector<PolicySpec>& policies,
                                 std::uint64_t seed, Cycle warmup,
                                 Cycle measure) {
  std::vector<SweepPoint> points;
  points.reserve(policies.size());
  for (const PolicySpec& p : policies)
    points.push_back({workload, p, seed, warmup, measure});
  return ParallelRunner::shared().run(points);
}

}  // namespace mflush
