#include "sim/experiment.h"

#include <chrono>

#include "common/env.h"
#include "sim/backend.h"
#include "sim/snapshot.h"

namespace mflush {

Cycle bench_cycles(Cycle fallback) {
  return env::u64_or("MFLUSH_BENCH_CYCLES", fallback);
}

Cycle warmup_cycles(Cycle fallback) {
  return env::u64_or("MFLUSH_WARMUP_CYCLES", fallback);
}

RunResult run_point(const Workload& workload, const PolicySpec& policy,
                    std::uint64_t seed, Cycle warmup, Cycle measure) {
  return run_point(SimConfig::paper_default(workload.num_cores(), seed),
                   workload, policy, warmup, measure);
}

RunResult run_point(const SimConfig& cfg, const Workload& workload,
                    const PolicySpec& policy, Cycle warmup, Cycle measure) {
  const auto t0 = std::chrono::steady_clock::now();
  CmpSimulator sim(cfg, workload, policy);
  sim.run(warmup);
  sim.reset_stats();
  sim.run(measure);
  RunResult r{workload.name, policy.label(), sim.metrics()};
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.simulated_cycles = warmup + measure;
  return r;
}

RunResult run_point_from_snapshot(const std::vector<std::uint8_t>& snapshot,
                                  Cycle fork_advance, Cycle measure) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::unique_ptr<CmpSimulator> sim = snapshot::make(snapshot);
  sim->run(fork_advance);
  sim->reset_stats();
  sim->run(measure);
  RunResult r{sim->workload().name, sim->policy().label(), sim->metrics()};
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.simulated_cycles = fork_advance + measure;
  return r;
}

std::vector<RunResult> run_sweep(const Workload& workload,
                                 const std::vector<PolicySpec>& policies,
                                 std::uint64_t seed, Cycle warmup,
                                 Cycle measure) {
  ExperimentSpec spec;
  spec.name = "sweep";
  spec.workloads = {workload};
  spec.policies = policies;
  spec.seeds = {seed};
  spec.warmup = warmup;
  spec.measure = measure;
  InProcessBackend backend;
  return run_experiment(spec, backend);
}

std::vector<std::vector<RunResult>> run_grid(
    const std::vector<Workload>& workloads,
    const std::vector<PolicySpec>& policies, std::uint64_t seed, Cycle warmup,
    Cycle measure) {
  ExperimentSpec spec;
  spec.name = "grid";
  spec.workloads = workloads;
  spec.policies = policies;
  spec.seeds = {seed};
  spec.warmup = warmup;
  spec.measure = measure;
  InProcessBackend backend;
  std::vector<RunResult> flat = run_experiment(spec, backend);

  std::vector<std::vector<RunResult>> rows;
  rows.reserve(workloads.size());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const auto begin =
        flat.begin() + static_cast<std::ptrdiff_t>(w * policies.size());
    rows.emplace_back(
        std::make_move_iterator(begin),
        std::make_move_iterator(begin +
                                static_cast<std::ptrdiff_t>(policies.size())));
  }
  return rows;
}

}  // namespace mflush
