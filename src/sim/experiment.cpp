#include "sim/experiment.h"

#include <charconv>
#include <cstdlib>
#include <string_view>

namespace mflush {
namespace {

Cycle env_cycles(const char* var, Cycle fallback) {
  const char* raw = std::getenv(var);
  if (raw == nullptr) return fallback;
  const std::string_view s(raw);
  Cycle v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size() || v == 0)
    return fallback;
  return v;
}

}  // namespace

Cycle bench_cycles(Cycle fallback) {
  return env_cycles("MFLUSH_BENCH_CYCLES", fallback);
}

Cycle warmup_cycles(Cycle fallback) {
  return env_cycles("MFLUSH_WARMUP_CYCLES", fallback);
}

RunResult run_point(const Workload& workload, const PolicySpec& policy,
                    std::uint64_t seed, Cycle warmup, Cycle measure) {
  CmpSimulator sim(workload, policy, seed);
  sim.run(warmup);
  sim.reset_stats();
  sim.run(measure);
  return RunResult{workload.name, policy.label(), sim.metrics()};
}

std::vector<RunResult> run_sweep(const Workload& workload,
                                 const std::vector<PolicySpec>& policies,
                                 std::uint64_t seed, Cycle warmup,
                                 Cycle measure) {
  std::vector<RunResult> out;
  out.reserve(policies.size());
  for (const PolicySpec& p : policies)
    out.push_back(run_point(workload, p, seed, warmup, measure));
  return out;
}

}  // namespace mflush
