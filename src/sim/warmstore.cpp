#include "sim/warmstore.h"

#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "common/archive.h"
#include "common/fsio.h"
#include "sim/campaign.h"
#include "sim/snapshot.h"

namespace mflush {
namespace {

constexpr std::uint64_t kEntryMagic = 0x4d464c555357524dull;  // "MFLUSWRM"
constexpr std::uint64_t kKeyMagic = 0x4d464c5553574b59ull;    // "MFLUSWKY"

using Bytes = std::shared_ptr<const std::vector<std::uint8_t>>;

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<std::uint64_t, Bytes>& registry() {
  // Leaked intentionally: snapshot bytes may be recalled from worker code
  // running during static destruction of other translation units.
  static auto* r = new std::unordered_map<std::uint64_t, Bytes>();
  return *r;
}

}  // namespace

namespace warmstore {

std::uint64_t warm_key(const JobSpec& job) {
  JobSpec parent;
  parent.workload = job.workload;
  parent.profiles = job.profiles;
  parent.policy = job.policy;
  parent.seed = job.seed;
  parent.warmup = job.warmup;
  parent.warm_only = true;
  ArchiveWriter ar;
  ar.put(kKeyMagic);
  ar.put(kFormatVersion);
  ar.put(snapshot::kFormatVersion);
  parent.save_content(ar);
  return fnv1a(ar.bytes());
}

JobSpec warm_job_of(const JobSpec& fork) {
  JobSpec w;
  w.workload = fork.workload;
  w.profiles = fork.profiles;
  w.policy = fork.policy;
  w.seed = fork.seed;
  w.warmup = fork.warmup;
  w.warm_only = true;
  w.parent_key = warm_key(fork);
  return w;
}

void publish(std::uint64_t key, Bytes bytes) {
  if (key == 0 || !bytes) return;
  const std::lock_guard lk(registry_mutex());
  registry().emplace(key, std::move(bytes));
}

Bytes recall(std::uint64_t key) {
  const std::lock_guard lk(registry_mutex());
  const auto it = registry().find(key);
  return it == registry().end() ? nullptr : it->second;
}

}  // namespace warmstore

// ---------------------------------------------------------------- WarmStore

WarmStore::WarmStore(std::string dir, Options options)
    : dir_(std::move(dir)), opts_(std::move(options)) {
  std::filesystem::create_directories(dir_);
}

void WarmStore::event(const std::string& line) const {
  if (!opts_.on_event) return;
  if (opts_.label.empty()) {
    opts_.on_event(line);
  } else {
    opts_.on_event("[" + opts_.label + "] " + line);
  }
}

std::string WarmStore::path_of(std::uint64_t key) const {
  return (std::filesystem::path(dir_) / (campaign::key_hex(key) + ".mfws"))
      .string();
}

std::shared_ptr<const std::vector<std::uint8_t>> WarmStore::lookup(
    std::uint64_t key) {
  const std::lock_guard lk(m_);
  if (const auto it = memo_.find(key); it != memo_.end()) {
    ++stats_.hits;
    return it->second;
  }
  const std::string path = path_of(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    ++stats_.misses;
    return nullptr;
  }
  try {
    const std::vector<std::uint8_t> file =
        fsio::read_file_bytes(path, "warm-store entry");
    if (file.size() < sizeof(std::uint64_t))
      throw std::runtime_error("truncated");
    const std::size_t body = file.size() - sizeof(std::uint64_t);
    std::uint64_t stored = 0;
    std::memcpy(&stored, file.data() + body, sizeof(stored));
    if (fnv1a({file.data(), body}) != stored)
      throw std::runtime_error("checksum mismatch");
    ArchiveReader ar({file.data(), body});
    if (ar.get<std::uint64_t>() != kEntryMagic)
      throw std::runtime_error("bad magic");
    if (const auto v = ar.get<std::uint32_t>();
        v != warmstore::kFormatVersion) {
      throw std::runtime_error("store format version " + std::to_string(v));
    }
    if (const auto v = ar.get<std::uint32_t>();
        v != snapshot::kFormatVersion) {
      throw std::runtime_error("snapshot format version " +
                               std::to_string(v));
    }
    if (ar.get<std::uint64_t>() != key)
      throw std::runtime_error("key echo mismatch");
    std::vector<std::uint8_t> snap;
    ar.get_vec(snap);
    if (!ar.done()) throw std::runtime_error("trailing bytes");
    auto bytes =
        std::make_shared<const std::vector<std::uint8_t>>(std::move(snap));
    memo_.emplace(key, bytes);
    ++stats_.hits;
    return bytes;
  } catch (const std::exception& e) {
    // A damaged entry is a miss, not an error: delete it so the parent is
    // transparently re-warmed and the slot rewritten — the PR 6
    // corrupt-cache policy at warm-store granularity.
    std::filesystem::remove(path, ec);
    ++stats_.corrupt_discarded;
    ++stats_.misses;
    event("entry " + campaign::key_hex(key) + " corrupt (" + e.what() +
          ") -- discarded for re-warm");
    return nullptr;
  }
}

void WarmStore::put(std::uint64_t key,
                    std::shared_ptr<const std::vector<std::uint8_t>> bytes) {
  if (key == 0 || !bytes) return;
  const std::lock_guard lk(m_);
  if (memo_.contains(key)) return;
  const std::string path = path_of(key);
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    memo_.emplace(key, std::move(bytes));
    return;
  }
  ArchiveWriter ar;
  ar.put(kEntryMagic);
  ar.put(warmstore::kFormatVersion);
  ar.put(snapshot::kFormatVersion);
  ar.put(key);
  ar.put_vec(*bytes);
  ar.put(fnv1a(ar.bytes()));
  fsio::write_file_atomic(path, ar.bytes(), /*durable=*/true);
  ++stats_.stored;
  stats_.bytes_written += ar.bytes().size();
  memo_.emplace(key, std::move(bytes));
}

bool WarmStore::contains(std::uint64_t key) const {
  const std::lock_guard lk(m_);
  if (memo_.contains(key)) return true;
  std::error_code ec;
  return std::filesystem::exists(path_of(key), ec);
}

WarmStore::Stats WarmStore::stats() const {
  const std::lock_guard lk(m_);
  return stats_;
}

}  // namespace mflush
