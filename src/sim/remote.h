#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/backend.h"

/// Fault-tolerant distributed sweep backend.
///
/// RemoteBackend schedules *batches* of JobSpecs over a pool of hosts
/// through a pluggable Transport. A batch travels as one job file
/// (MFLUSJOB), runs as one `mflushsim --worker` invocation on its host, and
/// comes back as one result file (MFLUSRES) — amortizing process-spawn and
/// serialization overhead that dominates one-subprocess-per-job fan-out.
/// The scheduler work-steals: every host slot pulls the next batch from a
/// shared queue, a failed or unreachable host's batch is re-queued onto
/// healthy hosts (bounded attempts per batch), and a host that keeps
/// failing is retired while at least one other host survives. Results
/// stream into the ResultSink as each batch lands; the backend contract —
/// full-SimMetrics bit-identity with SerialBackend — holds because every
/// job still executes through run_job and doubles cross the wire as raw
/// bytes.
namespace mflush {
namespace remote {

/// One worker host in the pool.
///
/// Text grammar (hosts files, MFLUSH_HOSTS): entries separated by
/// newlines, commas or semicolons; `#` comments to end of line. Each entry
/// is `name [key=value ...]` with keys:
///   slots=N   concurrent batches on this host (default 1)
///   fail=N    test/CI fault injection — LocalTransport fails this host's
///             first N batches, exercising the re-queue path (default 0)
///   dir=PATH  ssh scratch directory on the host
///             (default /tmp/mflush-remote)
/// The name `local` (or `localhost`) selects the loopback LocalTransport;
/// anything else is an ssh destination (`host`, `user@host`).
struct HostSpec {
  std::string name;
  unsigned slots = 1;
  unsigned fail_batches = 0;
  std::string remote_dir = "/tmp/mflush-remote";
  std::size_t index = 0;  ///< dense pool index, assigned by RemoteBackend
  /// Host-side WarmStore directory (a path on the host itself), resolved
  /// by RemoteBackend when the sweep references warmed parents — not part
  /// of the hosts grammar. Empty = no warm shipping for this host; every
  /// fork embeds its snapshot bytes inline.
  std::string warm_store_dir;

  [[nodiscard]] bool is_local() const noexcept {
    return name == "local" || name == "localhost";
  }
  /// "name#index" — stable even when the same name appears twice.
  [[nodiscard]] std::string label() const {
    return name + "#" + std::to_string(index);
  }
};

/// Parse one host entry; throws std::runtime_error naming the first
/// problem (empty name, slots=0, malformed value, unknown key — a typo
/// must never silently shrink the pool).
[[nodiscard]] HostSpec parse_host(std::string_view entry);

/// Parse a whole hosts description (see the HostSpec grammar above).
[[nodiscard]] std::vector<HostSpec> parse_hosts(std::string_view text);

/// parse_hosts over a file's contents; throws when unreadable.
[[nodiscard]] std::vector<HostSpec> read_hosts_file(const std::string& path);

/// Hosts from $MFLUSH_HOSTS; empty vector when unset or blank. Throws
/// when the variable is set but names no hosts, or contains a '#'
/// (comments are line-scoped, so in a one-line env var one would
/// silently comment out every later entry — use a hosts file instead).
[[nodiscard]] std::vector<HostSpec> hosts_from_env();

/// Contiguous [begin, end) job-index chunks for a sweep of `jobs` jobs.
/// `batch_jobs` == 0 picks an automatic size aiming at ~4 batches per host
/// slot, so work stealing has slack to rebalance around a slow or failed
/// host (floor 1 job per batch).
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> batch_ranges(
    std::size_t jobs, std::size_t batch_jobs, std::size_t slots);

/// What a Transport throws: the batch is intact and may be re-queued.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Moves one batch through one host. Implementations must be safe to call
/// concurrently from that host's slots; `what` describes the batch for
/// error messages ("batch 2 (jobs 4-7)"). Any failure — spawn, network,
/// nonzero exit, death by signal — throws TransportError so the scheduler
/// can re-queue the batch.
class Transport {
 public:
  virtual ~Transport() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-time per-host setup (ship the worker binary, make the scratch
  /// dir). Called before the host's first batch; a throw counts as a host
  /// failure and is retried on the host's next batch.
  virtual void prepare(const HostSpec& host) = 0;

  /// Run the job file at `job_path` so that the result file appears at
  /// `result_path` (both local paths).
  virtual void run_batch(const HostSpec& host, const std::string& job_path,
                         const std::string& result_path,
                         const std::string& what) = 0;

  /// Whether run_batch makes per-job partial results visible at
  /// `result_path + ".r<job_id>"` *while the batch runs* (one-entry
  /// MFLUSRES archives, written atomically as each measured job lands).
  /// The scheduler then streams each job into the ResultSink the moment
  /// its part validates instead of waiting for the whole batch file —
  /// which stays authoritative: parts are an optimization, never the only
  /// copy. Transports whose results only exist locally after the batch
  /// completes (ssh: the file is pulled at the end) report false.
  [[nodiscard]] virtual bool streams_partials() const { return false; }
};

/// Loopback transport: the batch runs as a `mflushsim --worker` subprocess
/// on this machine (used by tests and CI, and the default for `local`
/// hosts). Honours HostSpec::fail_batches by failing the host's first N
/// batches before spawning anything — the CI fault-injection hook.
class LocalTransport final : public Transport {
 public:
  explicit LocalTransport(std::string worker_binary)
      : bin_(std::move(worker_binary)) {}

  [[nodiscard]] std::string name() const override { return "local"; }
  void prepare(const HostSpec& host) override;
  void run_batch(const HostSpec& host, const std::string& job_path,
                 const std::string& result_path,
                 const std::string& what) override;

  /// The worker writes straight into the coordinator's scratch dir, so
  /// its per-job part files are observable live (--worker-parts).
  [[nodiscard]] bool streams_partials() const override { return true; }

 private:
  std::string bin_;
  std::atomic<unsigned> dispatched_{0};
};

/// ssh/scp transport: prepare() ships the worker binary once per host
/// (mkdir -p; scp; chmod +x), run_batch() copies the job file over, runs
/// the worker remotely, copies the result file back, and best-effort
/// removes the remote pair. BatchMode ssh: an unreachable or
/// password-prompting host fails fast and its batches re-queue elsewhere.
///
/// Every ssh/scp invocation runs under a wall-clock deadline on top of
/// ConnectTimeout: ConnectTimeout only covers the TCP handshake, so a link
/// that wedges *mid-transfer* (half-open connection, remote kernel hang)
/// would otherwise stall a host slot forever. At the deadline the tool is
/// killed and the failure re-queues the batch like any other host fault.
/// `timeout_s` == 0 resolves MFLUSH_SSH_TIMEOUT (default 600; malformed
/// values are a hard error, env.h policy).
class SshTransport final : public Transport {
 public:
  explicit SshTransport(std::string worker_binary, unsigned timeout_s = 0);

  [[nodiscard]] std::string name() const override { return "ssh"; }
  void prepare(const HostSpec& host) override;
  void run_batch(const HostSpec& host, const std::string& job_path,
                 const std::string& result_path,
                 const std::string& what) override;

 private:
  std::string bin_;
  unsigned timeout_s_;
};

}  // namespace remote

/// The distributed ExperimentBackend (see the file comment for semantics).
class RemoteBackend final : public ExperimentBackend {
 public:
  struct Options {
    /// The pool; empty means one `local` host with
    /// ParallelRunner::default_jobs() slots (loopback fan-out).
    std::vector<remote::HostSpec> hosts;
    /// Worker binary shipped/spawned; empty means default_worker_binary().
    std::string worker_binary;
    /// Local staging dir for job/result files; empty = system temp dir.
    std::string scratch_dir;
    /// Jobs per batch; 0 = auto (see remote::batch_ranges).
    std::size_t batch_jobs = 0;
    /// Total attempts per batch across all hosts (>= 1) before the sweep
    /// fails with the batch's last error.
    unsigned max_attempts = 3;
    /// Failures before a host is retired. The last surviving host is
    /// never retired — its batches just run out their attempts.
    unsigned host_max_failures = 2;
    /// Per-ssh/scp-command wall-clock deadline in seconds for
    /// SshTransport; 0 resolves MFLUSH_SSH_TIMEOUT (default 600). See the
    /// SshTransport comment — this is what turns a wedged link into an
    /// ordinary host failure.
    unsigned ssh_timeout = 0;
    /// Keep the local protocol files after the run (debugging).
    bool keep_files = false;
    /// Transport per host; null means LocalTransport for `local` hosts
    /// and SshTransport otherwise. Tests inject failing transports here.
    std::function<std::unique_ptr<remote::Transport>(
        const remote::HostSpec&)>
        transport_factory;
    /// Serialized scheduler narration (batch failures, re-queues, host
    /// retirements, parent snapshot uploads) — wire
    /// report::event_printer(std::cerr) for the CLI.
    std::function<void(const std::string&)> on_event;
    /// Coordinator-side warm store. Local hosts share it directly (their
    /// workers read the same directory, so no bytes ever ride the job
    /// file); without it, each local host gets a session-scoped scratch
    /// store and ssh hosts one under their remote_dir — either way a
    /// parent's snapshot is uploaded at most once per host, and later
    /// batches ship the 8-byte hash instead.
    WarmStore* warm_store = nullptr;
  };

  RemoteBackend();  ///< default Options
  explicit RemoteBackend(Options options);

  [[nodiscard]] std::string name() const override { return "remote"; }
  void run(const std::vector<JobSpec>& jobs, ResultSink& sink) override;

 private:
  Options opts_;
};

}  // namespace mflush
