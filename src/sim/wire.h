#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/archive.h"

/// MFLUSNET — the mflushd wire protocol.
///
/// A connection is a stream of self-delimiting frames:
///
///   [u32 payload_len][payload bytes][u64 fnv1a(payload)]
///
/// and each payload is a flat archive:
///
///   u64 magic "MFLUSNET" | u32 kProtocolVersion | Message fields
///
/// The length prefix is bounded by kMaxFrameBytes so a corrupt prefix can
/// never stall a reader waiting for gigabytes; the trailing checksum
/// rejects bit damage; magic + version reject cross-protocol and
/// cross-release traffic. A frame that fails any check is a protocol
/// error for the whole connection — framing is lost, so the peer closes
/// rather than resynchronize.
///
/// Any change to the frame layout or to Message's serialized fields must
/// bump kProtocolVersion (enforced by tools/lint/check_format_version.py,
/// domain 'daemon').
///
/// Conversation shape (client speaks first; one request per connection,
/// except SUBMIT+follow which streams):
///
///   SUBMIT(blob=spec, follow)  -> SUBMITTED(campaign, total)
///                                 [RESULT(job_id, blob=result)...]  if follow
///                                 DONE(text=state, counters)        if follow
///   STATUS(campaign)           -> STATUS_REPLY | ERROR
///   CANCEL(campaign)           -> OK | ERROR
///   LIST                       -> OK(text = one campaign per line)
///   SHUTDOWN                   -> OK, then the daemon drains and exits
namespace mflush::daemon {

inline constexpr std::uint32_t kProtocolVersion = 1;

/// "MFLUSNET" little-endian.
inline constexpr std::uint64_t kFrameMagic = 0x54454e53554c464dull;

/// Upper bound on a payload. Generous (a RESULT carries one encoded
/// RunResult, a SUBMIT one spec) but small enough that a damaged length
/// prefix fails fast instead of waiting on 4 GiB that will never arrive.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

enum class MsgType : std::uint8_t {
  // client -> daemon
  kSubmit = 1,
  kStatus = 2,
  kCancel = 3,
  kList = 4,
  kShutdown = 5,
  // daemon -> client
  kSubmitted = 6,
  kStatusReply = 7,
  kResult = 8,
  kDone = 9,
  kError = 10,
  kOk = 11,
};

[[nodiscard]] const char* type_name(MsgType t) noexcept;

/// One frame's payload. A single struct for every message type keeps the
/// codec trivial; unused fields stay at their defaults and cost a few
/// bytes on the wire. Meaning per type:
///
///   campaign  target/subject campaign id (16-hex spec content hash)
///   text      DONE: terminal state ("finished"/"failed: why"/"cancelled")
///             ERROR: diagnostic; OK(list): one campaign per line
///   job_id    RESULT: the result's job id
///   total     expected result count; done = results durable so far
///   executed  jobs this daemon actually ran; cached = served from the
///             shared result cache (cross-tenant dedup shows up here)
///   follow    SUBMIT: stream RESULT/DONE instead of detaching
///   blob      SUBMIT: ExperimentSpec::to_bytes(); RESULT: one-entry
///             worker::encode_results() archive (checksummed end to end)
struct Message {
  MsgType type = MsgType::kError;
  std::string campaign;
  std::string text;
  std::uint32_t job_id = 0;
  std::uint64_t total = 0;
  std::uint64_t done = 0;
  std::uint64_t executed = 0;
  std::uint64_t cached = 0;
  std::uint8_t follow = 0;
  std::vector<std::uint8_t> blob;

  void save(ArchiveWriter& ar) const;
  [[nodiscard]] static Message load(ArchiveReader& ar);
};

/// Encode one complete frame (length prefix + payload + checksum).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Message& msg);

enum class ExtractStatus : std::uint8_t {
  kNeedMore = 0,  ///< prefix of a valid frame — read more bytes
  kFrame = 1,     ///< one frame decoded; `consumed` bytes may be dropped
  kBad = 2,       ///< protocol error — close the connection
};

struct Extract {
  ExtractStatus status = ExtractStatus::kNeedMore;
  Message msg;                ///< valid iff status == kFrame
  std::size_t consumed = 0;   ///< bytes of `buffer` the frame occupied
  std::string error;          ///< set iff status == kBad
};

/// Try to decode the first frame in `buffer` (incremental: call again as
/// bytes arrive). Never throws — damage comes back as kBad.
[[nodiscard]] Extract try_extract(std::span<const std::uint8_t> buffer);

/// Blocking frame I/O over a connected stream socket.
void send_frame(int fd, const Message& msg);

/// Read one frame, pulling bytes into `buffer` (which carries any
/// read-ahead between calls — always pass the same buffer for one fd).
/// Returns nullopt on clean EOF at a frame boundary; throws on mid-frame
/// EOF or a damaged frame.
[[nodiscard]] std::optional<Message> read_frame(
    int fd, std::vector<std::uint8_t>& buffer);

}  // namespace mflush::daemon
