#include "sim/cmp.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/env.h"
#include "trace/spec2000.h"

namespace mflush {

namespace {

/// Process-wide default for the event-skip machinery: MFLUSH_NO_EVENT_SKIP=1
/// forces every simulator into the lockstep loop (the ctest A/B toggle).
bool default_event_skip() {
  static const bool enabled =
      !env::flag_or("MFLUSH_NO_EVENT_SKIP", false);
  return enabled;
}

}  // namespace

void CmpSimulator::build(const std::vector<BenchmarkProfile>& profiles) {
  if (const std::string err = cfg_.validate(); !err.empty())
    throw std::invalid_argument("invalid SimConfig: " + err);
  if (profiles.size() != cfg_.num_cores * cfg_.core.threads_per_core) {
    throw std::invalid_argument(
        "workload thread count does not match the chip: " + workload_.name);
  }

  const std::uint32_t tpc = cfg_.core.threads_per_core;
  sources_.reserve(profiles.size());
  cores_.reserve(cfg_.num_cores);
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    std::vector<TraceSource*> traces;
    traces.reserve(tpc);
    for (std::uint32_t t = 0; t < tpc; ++t) {
      const std::uint32_t global_tid = c * tpc + t;
      sources_.push_back(std::make_unique<SyntheticTraceSource>(
          profiles[global_tid], cfg_.seed, cfg_.rewind_window(), global_tid));
      traces.push_back(sources_.back().get());
    }
    cores_.push_back(std::make_unique<SmtCore>(
        c, cfg_, mem_, make_policy(policy_, cfg_), std::move(traces)));
  }
  clocks_.resize(cores_.size());
  event_skip_ = default_event_skip();

  if (cfg_.prewarm_l2) {
    for (const auto& src : sources_) {
      const auto r = src->regions();
      for (std::uint32_t i = 0; i < r.hot_lines; ++i)
        mem_.prewarm_l2_line(r.hot_base + static_cast<Addr>(i) * 64);
      for (std::uint32_t i = 0; i < r.l2_lines; ++i)
        mem_.prewarm_l2_line(r.l2_base + static_cast<Addr>(i) * 64);
      for (std::uint32_t i = 0; i < r.code_lines; ++i)
        mem_.prewarm_l2_line(r.code_base + static_cast<Addr>(i) * 64);
    }
  }
}

namespace {

std::vector<BenchmarkProfile> resolve_codes(const Workload& workload) {
  std::vector<BenchmarkProfile> profiles;
  profiles.reserve(workload.codes.size());
  for (const char code : workload.codes) {
    const auto p = spec2000::by_code(code);
    if (!p) {
      throw std::invalid_argument(std::string("unknown benchmark code '") +
                                  code + "' in workload " + workload.name);
    }
    profiles.push_back(*p);
  }
  return profiles;
}

}  // namespace

CmpSimulator::CmpSimulator(const SimConfig& cfg, const Workload& workload,
                           const PolicySpec& policy)
    : cfg_(cfg), workload_(workload), policy_(policy), mem_(cfg) {
  build(resolve_codes(workload_));
}

CmpSimulator::CmpSimulator(const Workload& workload, const PolicySpec& policy,
                           std::uint64_t seed)
    : CmpSimulator(
          [&] {
            SimConfig cfg = SimConfig::paper_default(workload.num_cores());
            cfg.seed = seed;
            return cfg;
          }(),
          workload, policy) {}

CmpSimulator::CmpSimulator(const std::vector<BenchmarkProfile>& profiles,
                           const PolicySpec& policy, std::uint64_t seed)
    : CmpSimulator(
          [&] {
            SimConfig cfg = SimConfig::paper_default(
                static_cast<std::uint32_t>(profiles.size()) / 2);
            cfg.seed = seed;
            return cfg;
          }(),
          profiles, policy) {}

CmpSimulator::CmpSimulator(const SimConfig& cfg,
                           const std::vector<BenchmarkProfile>& profiles,
                           const PolicySpec& policy)
    : cfg_(cfg), policy_(policy), mem_(cfg_), profile_built_(true) {
  workload_.name = "custom";
  for (const auto& p : profiles)
    workload_.codes.push_back(p.code == '?' ? 'a' : p.code);
  build(profiles);
}

void CmpSimulator::run(Cycle cycles) {
  const Cycle end = now_ + cycles;
  if (!event_skip_) {
    run_lockstep(end);
    return;
  }
  while (now_ < end) {
    ++now_;
    mem_.tick(now_);
    bool all_asleep = true;
    for (CoreId c = 0; c < cores_.size(); ++c) {
      CoreClock& ck = clocks_[c];
      if (ck.asleep) {
        // Rendezvous check: a shared-memory event delivered to this core
        // (or the policy horizon expiring) pulls it back to the chip
        // clock; otherwise its local clock keeps lagging. Before the
        // hierarchy's per-core event horizon, delivery is impossible and
        // even the buffer poll is skipped.
        if (now_ < ck.wake_at) {
          if (now_ < ck.event_check_at) {
            assert(!mem_.has_events(c) &&
                   "memory event delivered before the per-core horizon");
            continue;
          }
          if (!mem_.has_events(c)) continue;
        }
        const Cycle skipped = now_ - 1 - ck.slept_at;
        cores_[c]->advance_idle(ck.slept_at, skipped);
        idle_skipped_ += skipped;
        ck.asleep = false;
      }
      cores_[c]->tick(now_);
      // A quiescence horizon beyond the next cycle puts the core to sleep:
      // every tick until then is a provable no-op (the crediting in
      // advance_idle is all those ticks would have done).
      const Cycle horizon = cores_[c]->next_local_event(now_);
      if (horizon > now_ + 1) {
        ck.asleep = true;
        ck.slept_at = now_;
        ck.wake_at = horizon;
        // Open-ended sleeps (no policy deadline) are worth the one-time
        // per-core horizon scan; deadline sleeps are short, so polling
        // from the start is cheaper than scanning.
        ck.event_check_at = horizon == kNeverCycle
                                ? mem_.next_event_cycle_for(c, now_)
                                : 0;
      } else {
        all_asleep = false;
      }
    }
    if (now_ >= end) break;
    if (!all_asleep) continue;

    // Whole-chip skip: every core is asleep, so only the hierarchy (or a
    // policy horizon) can schedule the next state change; jump straight
    // there. kNeverCycle (a fully inert chip) skips to the interval end.
    Cycle event = mem_.next_event_cycle(now_);
    for (const CoreClock& ck : clocks_)
      event = std::min(event, ck.wake_at);
    const Cycle target = event < end ? event : end;
    if (target > now_ + 1) now_ = target - 1;
  }

  // Interval boundary: re-sync every local clock to the chip clock so
  // metrics and snapshots see fully-credited cycle counters. Sleep state
  // survives into the next run() call.
  for (CoreId c = 0; c < cores_.size(); ++c) {
    CoreClock& ck = clocks_[c];
    if (ck.asleep && ck.slept_at < end) {
      cores_[c]->advance_idle(ck.slept_at, end - ck.slept_at);
      idle_skipped_ += end - ck.slept_at;
      ck.slept_at = end;
    }
  }
}

void CmpSimulator::run_lockstep(Cycle end) {
  // The pre-decoupling loop: tick everything every cycle. The A/B
  // reference for the bit-identity and energy audits. Local clocks are
  // already synced (run() re-syncs at every interval boundary), so waking
  // sleeping cores is free.
  for (CoreClock& ck : clocks_) {
    ck.asleep = false;
    ck.wake_at = kNeverCycle;
    ck.event_check_at = 0;
  }
  while (now_ < end) {
    ++now_;
    mem_.tick(now_);
    for (auto& core : cores_) core->tick(now_);
  }
}

void CmpSimulator::reset_stats() {
  mem_.reset_stats();
  for (auto& core : cores_) core->reset_stats();
}

void CmpSimulator::save_state(ArchiveWriter& ar) const {
  ar.put(now_);
  ar.put(idle_skipped_);
  for (const CoreClock& ck : clocks_) {
    ar.put(ck.asleep);
    ar.put(ck.slept_at);
    ar.put(ck.wake_at);
  }
  for (const auto& src : sources_) src->save_state(ar);
  mem_.save_state(ar);
  for (const auto& core : cores_) core->save_state(ar);
}

void CmpSimulator::load_state(ArchiveReader& ar) {
  now_ = ar.get<Cycle>();
  idle_skipped_ = ar.get<Cycle>();
  for (CoreClock& ck : clocks_) {
    ck.asleep = ar.get<bool>();
    ck.slept_at = ar.get<Cycle>();
    ck.wake_at = ar.get<Cycle>();
    ck.event_check_at = 0;  // polling throttle only; poll until re-proven
  }
  for (auto& src : sources_) src->load_state(ar);
  mem_.load_state(ar);
  for (auto& core : cores_) core->load_state(ar);
}

SimMetrics CmpSimulator::metrics() const {
  SimMetrics m;
  m.cycles = cores_.empty() ? 0 : cores_[0]->stats().cycles;
  for (const auto& core : cores_) {
    const CoreStats& s = core->stats();
    m.committed += s.committed_total();
    for (std::uint32_t t = 0; t < core->num_threads(); ++t) {
      m.per_thread_ipc.push_back(
          m.cycles ? static_cast<double>(s.committed[t]) /
                         static_cast<double>(m.cycles)
                   : 0.0);
    }
    m.flush_events += s.policy_flush_events;
    m.flushed_instructions += s.policy_flushed_total();
    m.branches_resolved += s.branches_resolved;
    m.mispredicts += s.mispredicts;
    m.energy = energy::merge(m.energy, energy::report_for(s));
    const FetchPolicy::Counters pc = core->policy().counters();
    m.policy_flushes_on_miss += pc.flushes_on_miss;
    m.policy_flushes_on_hit += pc.flushes_on_hit;
    m.policy_flushes_on_l1 += pc.flushes_on_l1;
    m.policy_stall_events += pc.stall_events;
    m.policy_gate_cycles += pc.gate_cycles;
  }
  m.ipc = m.cycles ? static_cast<double>(m.committed) /
                         static_cast<double>(m.cycles)
                   : 0.0;

  const MemStats& ms = mem_.stats();
  m.l2_hit_time_mean = ms.l2_load_hit_time.mean();
  m.l2_hit_time_p50 = ms.l2_load_hit_time.quantile(0.5);
  m.l2_hit_time_p90 = ms.l2_load_hit_time.quantile(0.9);
  m.l2_hits_observed = ms.l2_load_hit_time.count();
  m.l2_misses_observed = ms.l2_load_miss_time.count();
  m.l2_hit_time_hist = ms.l2_load_hit_time;

  const MemModelStats& ds = mem_.memory_model().stats();
  m.dram_row_hits = ds.row_hits;
  m.dram_row_misses = ds.row_misses;
  m.dram_row_conflicts = ds.row_conflicts;
  m.dram_far_accesses = ds.far_accesses;
  m.dram_bank_busy_cycles = ds.bank_busy_cycles;
  m.dram_chan_busy_cycles = ds.chan_busy_cycles;
  return m;
}

}  // namespace mflush
