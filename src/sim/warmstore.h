#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/experiment_spec.h"

/// Content-addressed store of warmed parent snapshots.
///
/// Warm-up dominates sampled campaigns, and the warmed state of a parent
/// chip is a pure function of (workload, profiles, policy, seed, warmup
/// cycles) plus the snapshot format — so it is cacheable by content hash
/// exactly like PR 6's result cache. A WarmStore is an on-disk directory of
/// `<16-hex-key>.mfws` entries (checksummed archives written via
/// fsio::write_file_atomic) shared across specs, campaigns, backends, and —
/// through the worker protocol's `--worker-store` — remote hosts: a host
/// whose store already holds a parent receives the 8-byte hash instead of
/// the multi-megabyte snapshot.
///
/// Versioning follows the tree-wide no-migrations rule: warm_key folds in
/// both warmstore::kFormatVersion and snapshot::kFormatVersion, so any
/// layout change anywhere in the chain makes old entries *miss* (and
/// re-warm) rather than misread. A corrupt entry (torn write, bit flip) is
/// detected by its trailing FNV-1a checksum, discarded, and transparently
/// re-warmed — see ROADMAP "Warm-store key derivation & versioning".
namespace mflush {

namespace warmstore {

/// v1: entry = magic, store version, snapshot version, key echo,
/// length-prefixed snapshot bytes, trailing FNV-1a. Bump on ANY change to
/// this layout or to the key derivation below.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Content hash naming a fork job's warmed parent: FNV-1a over a domain
/// magic ("MFLUSWKY"), kFormatVersion, snapshot::kFormatVersion, and the
/// canonical parent JobSpec content (workload/profile bytes, policy, seed,
/// warmup — policy is deliberately included: warm-up simulation is
/// policy-dependent and snapshot::restore rejects a policy mismatch).
/// Measure/fork_advance/id do not participate — every fork of a point maps
/// to the same key.
[[nodiscard]] std::uint64_t warm_key(const JobSpec& job);

/// The warm job that produces `fork`'s parent snapshot: same workload,
/// profiles, policy, seed, and warmup, `warm_only` set, measure and
/// fork_advance zeroed, `parent_key` = warm_key(fork). `id` is 0 — the
/// caller assigns result slots.
[[nodiscard]] JobSpec warm_job_of(const JobSpec& fork);

/// Process-wide in-memory registry of parent snapshot bytes, keyed by
/// warm_key. This is the "map read-only state once per process" layer:
/// every fork of a parent — across specs and rounds in the same process —
/// shares one immutable byte vector. run_job feeds it (warm jobs publish
/// their capture; by-ref forks publish self-heal re-warms) and the warm
/// phase in run_experiment recalls it before warming anew. Put-if-absent;
/// null keys/bytes are ignored.
void publish(std::uint64_t key,
             std::shared_ptr<const std::vector<std::uint8_t>> bytes);
[[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> recall(
    std::uint64_t key);

}  // namespace warmstore

/// One warm-store directory. Thread-safe; cheap to construct (lazy I/O).
/// Instances keep a per-instance memo of entries they have read or written,
/// so repeated lookups of a hot parent cost one disk read per process —
/// but the *disk* is the source of truth shared between instances,
/// processes, and hosts.
class WarmStore {
 public:
  struct Options {
    /// Narration sink for store events (corrupt-entry discards). Wire
    /// report::event_printer(std::cerr, "warm-store: ") in the CLI.
    std::function<void(const std::string&)> on_event;
    /// Tenant tag woven into event lines ("[label] entry ... corrupt").
    /// mflushd gives each campaign its own labelled instance over the one
    /// shared directory, so per-tenant narration (and Stats, via
    /// report::summarize's labelled overload) stays attributable while
    /// the entries themselves dedup across tenants. Empty = classic
    /// single-tenant lines, byte for byte.
    std::string label;
  };

  /// Counters for report::summarize. hits/misses count lookup()s;
  /// `stored` counts entries this instance wrote (put-if-absent skips are
  /// not stores); corrupt_discarded counts damaged entries healed by
  /// deletion.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stored = 0;
    std::uint64_t corrupt_discarded = 0;
    std::uint64_t bytes_written = 0;
  };

  /// Creates `dir` (and parents) if missing; throws on failure.
  explicit WarmStore(std::string dir, Options options = {});

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::string path_of(std::uint64_t key) const;

  /// Fetch a parent's snapshot bytes, or null on miss. A damaged entry is
  /// a miss, not an error: it is deleted (so the parent re-warms and the
  /// slot is rewritten) and counted in Stats::corrupt_discarded.
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> lookup(
      std::uint64_t key);

  /// Durably store a parent's snapshot bytes (put-if-absent: an existing
  /// entry — ours or a concurrent writer's — is left alone; atomic rename
  /// makes the race safe either way). No-op for null key/bytes.
  void put(std::uint64_t key,
           std::shared_ptr<const std::vector<std::uint8_t>> bytes);

  /// Whether an entry file exists on disk (no validation — lookup decides
  /// whether it is usable).
  [[nodiscard]] bool contains(std::uint64_t key) const;

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::string& label() const noexcept {
    return opts_.label;
  }

 private:
  void event(const std::string& line) const;

  std::string dir_;
  Options opts_;
  mutable std::mutex m_;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const std::vector<std::uint8_t>>>
      memo_;
  Stats stats_;
};

}  // namespace mflush
