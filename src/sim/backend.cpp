#include "sim/backend.h"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "common/env.h"
#include "common/fsio.h"
#include "sim/campaign.h"
#include "sim/parallel.h"
#include "sim/remote.h"
#include "sim/warmstore.h"

extern char** environ;

namespace mflush {
namespace {

// ------------------------------------------------- RunResult serialization
//
// Doubles are written as raw little-endian bytes, so a result that crosses
// the process boundary compares bit-identical to one computed in-process —
// the property the cross-backend determinism test pins down.

void put_metrics(ArchiveWriter& ar, const SimMetrics& m) {
  ar.put(m.cycles);
  ar.put(m.committed);
  ar.put(m.ipc);
  ar.put_vec(m.per_thread_ipc);
  ar.put(m.flush_events);
  ar.put(m.flushed_instructions);
  ar.put(m.branches_resolved);
  ar.put(m.mispredicts);
  ar.put(m.l2_hit_time_mean);
  ar.put(m.l2_hit_time_p50);
  ar.put(m.l2_hit_time_p90);
  ar.put(m.l2_hits_observed);
  ar.put(m.l2_misses_observed);
  ar.put(m.policy_flushes_on_miss);
  ar.put(m.policy_flushes_on_hit);
  ar.put(m.policy_flushes_on_l1);
  ar.put(m.policy_stall_events);
  ar.put(m.policy_gate_cycles);
  m.l2_hit_time_hist.save(ar);
  ar.put(m.dram_row_hits);
  ar.put(m.dram_row_misses);
  ar.put(m.dram_row_conflicts);
  ar.put(m.dram_far_accesses);
  ar.put(m.dram_bank_busy_cycles);
  ar.put(m.dram_chan_busy_cycles);
  ar.put(m.energy.committed_units);
  ar.put(m.energy.flush_wasted_units);
  ar.put(m.energy.branch_wasted_units);
}

SimMetrics get_metrics(ArchiveReader& ar) {
  SimMetrics m;
  m.cycles = ar.get<Cycle>();
  m.committed = ar.get<std::uint64_t>();
  m.ipc = ar.get<double>();
  ar.get_vec(m.per_thread_ipc);
  m.flush_events = ar.get<std::uint64_t>();
  m.flushed_instructions = ar.get<std::uint64_t>();
  m.branches_resolved = ar.get<std::uint64_t>();
  m.mispredicts = ar.get<std::uint64_t>();
  m.l2_hit_time_mean = ar.get<double>();
  m.l2_hit_time_p50 = ar.get<double>();
  m.l2_hit_time_p90 = ar.get<double>();
  m.l2_hits_observed = ar.get<std::uint64_t>();
  m.l2_misses_observed = ar.get<std::uint64_t>();
  m.policy_flushes_on_miss = ar.get<std::uint64_t>();
  m.policy_flushes_on_hit = ar.get<std::uint64_t>();
  m.policy_flushes_on_l1 = ar.get<std::uint64_t>();
  m.policy_stall_events = ar.get<std::uint64_t>();
  m.policy_gate_cycles = ar.get<std::uint64_t>();
  m.l2_hit_time_hist.load(ar);
  m.dram_row_hits = ar.get<std::uint64_t>();
  m.dram_row_misses = ar.get<std::uint64_t>();
  m.dram_row_conflicts = ar.get<std::uint64_t>();
  m.dram_far_accesses = ar.get<std::uint64_t>();
  m.dram_bank_busy_cycles = ar.get<std::uint64_t>();
  m.dram_chan_busy_cycles = ar.get<std::uint64_t>();
  m.energy.committed_units = ar.get<double>();
  m.energy.flush_wasted_units = ar.get<double>();
  m.energy.branch_wasted_units = ar.get<double>();
  return m;
}

void put_result(ArchiveWriter& ar, std::uint32_t id, const RunResult& r) {
  ar.put(id);
  ar.put_string(r.workload);
  ar.put_string(r.policy);
  put_metrics(ar, r.metrics);
  ar.put(r.wall_seconds);
  ar.put(r.simulated_cycles);
  ar.put<std::uint8_t>(r.payload ? 1 : 0);
  if (r.payload) ar.put_vec(*r.payload);
}

std::pair<std::uint32_t, RunResult> get_result(ArchiveReader& ar) {
  const auto id = ar.get<std::uint32_t>();
  RunResult r;
  r.workload = ar.get_string();
  r.policy = ar.get_string();
  r.metrics = get_metrics(ar);
  r.wall_seconds = ar.get<double>();
  r.simulated_cycles = ar.get<Cycle>();
  if (ar.get<std::uint8_t>() != 0) {
    std::vector<std::uint8_t> payload;
    ar.get_vec(payload);
    r.payload = std::make_shared<const std::vector<std::uint8_t>>(
        std::move(payload));
  }
  return {id, std::move(r)};
}

// ------------------------------------------------------- protocol file IO

constexpr std::uint64_t kJobMagic = 0x4d464c55534a4f42ull;     // "MFLUSJOB"
constexpr std::uint64_t kResultMagic = 0x4d464c5553524553ull;  // "MFLUSRES"

/// Appends the trailing checksum and publishes the file via write-temp +
/// atomic rename, so a reader (or a crash) can never observe a partially
/// written protocol file. Scratch protocol files skip the fsync (durable
/// results are the campaign layer's job).
void write_archive_file(const std::string& path, ArchiveWriter&& ar) {
  ar.put(fnv1a(ar.bytes()));
  fsio::write_file_atomic(path, ar.bytes(), /*durable=*/false);
}

/// Validate trailing checksum + leading magic on a complete archive byte
/// stream; strips the checksum in place. `name` identifies the source
/// (a path, usually) in error messages.
void check_archive(std::vector<std::uint8_t>& bytes, std::uint64_t magic,
                   const char* what, const std::string& name) {
  if (bytes.size() < sizeof(std::uint64_t))
    throw std::runtime_error(std::string(what) + " truncated: " + name);
  const std::size_t body = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + body, sizeof(stored));
  if (fnv1a({bytes.data(), body}) != stored) {
    throw std::runtime_error(std::string(what) + " checksum mismatch: " +
                             name);
  }
  bytes.resize(body);

  std::uint64_t seen = 0;
  if (bytes.size() >= sizeof(seen))
    std::memcpy(&seen, bytes.data(), sizeof(seen));
  if (seen != magic)
    throw std::runtime_error(std::string("not a ") + what + ": " + name);
}

std::vector<std::uint8_t> read_checked_file(const std::string& path,
                                            std::uint64_t magic,
                                            const char* what) {
  std::vector<std::uint8_t> bytes = fsio::read_file_bytes(path, what);
  check_archive(bytes, magic, what, path);
  return bytes;
}

/// argv[0] recorded at startup (record_argv0), the off-Linux fallback for
/// default_worker_binary.
std::string& argv0_recorded() {
  static std::string path;
  return path;
}

}  // namespace

// ------------------------------------------------------ process spawning

namespace proc {

int spawn_and_wait(const std::string& bin,
                   const std::vector<std::string>& args,
                   const std::string& what, unsigned timeout_s) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(bin.c_str()));
  for (const std::string& a : args)
    argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const std::string context = what.empty() ? "" : " on " + what;

  pid_t pid = 0;
  if (const int rc = ::posix_spawnp(&pid, bin.c_str(), nullptr, nullptr,
                                    argv.data(), environ);
      rc != 0) {
    throw std::runtime_error("failed to spawn worker '" + bin + "'" +
                             context + ": " + std::strerror(rc));
  }

  int status = 0;
  if (timeout_s == 0) {
    while (::waitpid(pid, &status, 0) < 0) {
      if (errno != EINTR)
        throw std::runtime_error("waitpid failed for worker '" + bin + "'" +
                                 context + ": " + std::strerror(errno));
    }
  } else {
    // Deadline mode: poll with WNOHANG so a wedged child cannot block the
    // scheduler forever; at the deadline, kill it and reap the corpse so
    // the throw below leaves no zombie behind.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(timeout_s);
    for (;;) {
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid) break;
      if (r < 0 && errno != EINTR) {
        throw std::runtime_error("waitpid failed for worker '" + bin + "'" +
                                 context + ": " + std::strerror(errno));
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(pid, SIGKILL);
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
        throw std::runtime_error("worker '" + bin + "' timed out after " +
                                 std::to_string(timeout_s) + "s" + context);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  if (WIFSIGNALED(status)) {
    throw std::runtime_error("worker '" + bin + "' killed by signal " +
                             std::to_string(WTERMSIG(status)) + context);
  }
  return WIFEXITED(status) ? WEXITSTATUS(status) : 1;
}

}  // namespace proc

ScratchGuard::~ScratchGuard() {
  if (keep_) return;
  std::error_code ec;
  for (const std::string& p : paths_) std::filesystem::remove(p, ec);
}

// --------------------------------------------------------------- ResultSink

void ResultSink::push(const JobSpec& job, RunResult result) {
  const std::lock_guard lk(m_);
  if (job.id >= slots_.size()) slots_.resize(job.id + 1);
  if (slots_[job.id].has_value()) {
    throw std::runtime_error("ResultSink: duplicate result for job " +
                             std::to_string(job.id));
  }
  slots_[job.id] = std::move(result);
  if (on_result_) on_result_(job, *slots_[job.id]);
}

std::size_t ResultSink::completed() const {
  const std::lock_guard lk(m_);
  std::size_t n = 0;
  for (const auto& s : slots_)
    if (s.has_value()) ++n;
  return n;
}

RunResult ResultSink::at(std::size_t id) const {
  const std::lock_guard lk(m_);
  if (id >= slots_.size() || !slots_[id].has_value()) {
    throw std::runtime_error("ResultSink: no result for job " +
                             std::to_string(id));
  }
  return *slots_[id];
}

std::vector<RunResult> ResultSink::collect() const {
  const std::lock_guard lk(m_);
  std::vector<RunResult> out;
  out.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].has_value()) {
      throw std::runtime_error("ResultSink: missing result for job " +
                               std::to_string(i));
    }
    out.push_back(*slots_[i]);
  }
  return out;
}

// ----------------------------------------------------------------- backends

std::vector<RunResult> ExperimentBackend::run_collect(
    const std::vector<JobSpec>& jobs) {
  ResultSink sink;
  run(jobs, sink);
  return sink.collect();
}

void SerialBackend::run(const std::vector<JobSpec>& jobs, ResultSink& sink) {
  for (const JobSpec& job : jobs) sink.push(job, run_job(job));
}

InProcessBackend::InProcessBackend() : pool_(&ParallelRunner::shared()) {}

void InProcessBackend::run(const std::vector<JobSpec>& jobs,
                           ResultSink& sink) {
  pool_->for_each_index(jobs.size(), [&](std::size_t i) {
    sink.push(jobs[i], run_job(jobs[i]));
  });
}

WorkerBackend::WorkerBackend() : WorkerBackend(Options()) {}

WorkerBackend::WorkerBackend(Options options) : opts_(std::move(options)) {}

void WorkerBackend::run(const std::vector<JobSpec>& jobs, ResultSink& sink) {
  if (jobs.empty()) return;
  // One loopback host with max_processes slots: the batched remote
  // scheduler replaces the old one-subprocess-plus-two-files-per-job loop,
  // and its retry/scratch-guard error paths apply here for free.
  remote::HostSpec local;
  local.name = "local";
  local.slots = opts_.max_processes != 0 ? opts_.max_processes
                                         : ParallelRunner::default_jobs();

  RemoteBackend::Options o;
  o.hosts = {local};
  o.worker_binary = opts_.worker_binary;
  o.scratch_dir = opts_.scratch_dir;
  o.batch_jobs = opts_.batch_jobs;
  o.max_attempts = opts_.max_attempts;
  o.keep_files = opts_.keep_files;
  o.on_event = opts_.on_event;
  o.warm_store = opts_.warm_store;
  RemoteBackend(std::move(o)).run(jobs, sink);
}

void record_argv0(const char* argv0) {
  if (argv0 == nullptr || *argv0 == '\0') return;
  std::error_code ec;
  const auto abs = std::filesystem::absolute(argv0, ec);
  if (!ec) argv0_recorded() = abs.string();
}

std::string worker_binary_near(const std::string& exe) {
  if (exe.empty()) return {};
  std::error_code ec;
  const std::filesystem::path path(exe);
  if (path.filename() == "mflushsim" &&
      std::filesystem::exists(path, ec)) {
    return path.string();
  }
  const auto sibling = path.parent_path() / "mflushsim";
  if (std::filesystem::exists(sibling, ec)) return sibling.string();
  return {};
}

std::string default_worker_binary() {
  if (std::string bin = env::str_or("MFLUSH_WORKER_BIN"); !bin.empty())
    return bin;
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    if (std::string found = worker_binary_near(self.string());
        !found.empty()) {
      return found;
    }
  }
  // /proc/self/exe absent (non-Linux) or the tool was renamed: fall back
  // to the argv[0] recorded at startup instead of silently giving up.
  return worker_binary_near(argv0_recorded());
}

// ----------------------------------------------------------- run_experiment

void resolve_parent_snapshots(std::vector<JobSpec>& jobs,
                              ExperimentBackend& backend,
                              const RunOptions& options) {
  // Distinct unresolved parents in deterministic first-seen order (job
  // vectors are expanded deterministically, so warm job ids are too).
  std::vector<std::uint64_t> order;
  std::unordered_map<std::uint64_t, const JobSpec*> proto;
  for (const JobSpec& j : jobs) {
    if (j.parent_key == 0 || j.snapshot) continue;
    if (proto.emplace(j.parent_key, &j).second) order.push_back(j.parent_key);
  }
  if (order.empty()) return;

  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const std::vector<std::uint8_t>>>
      bytes_of;
  std::vector<JobSpec> warm_jobs;
  std::size_t reused = 0;
  for (const std::uint64_t key : order) {
    std::shared_ptr<const std::vector<std::uint8_t>> b;
    if (options.warm_store) b = options.warm_store->lookup(key);
    if (!b) {
      b = warmstore::recall(key);
      // A recall with a store configured means the disk entry is missing
      // (or was just discarded as corrupt): heal it from memory.
      if (b && options.warm_store) options.warm_store->put(key, b);
    }
    if (b) {
      bytes_of.emplace(key, std::move(b));
      ++reused;
    } else {
      JobSpec w = warmstore::warm_job_of(*proto.at(key));
      w.id = static_cast<std::uint32_t>(warm_jobs.size());
      warm_jobs.push_back(std::move(w));
    }
  }

  if (!warm_jobs.empty()) {
    // Misses warm as one batch of ordinary jobs — parallel on any backend,
    // and never on the coordinator thread. A separate sink keeps warm
    // results (and their payloads) out of the experiment's result slots.
    ResultSink warm_sink;
    backend.warmup_backend().run(warm_jobs, warm_sink);
    for (const JobSpec& w : warm_jobs) {
      RunResult r = warm_sink.at(w.id);
      if (!r.payload) {
        throw std::runtime_error("warm job for parent " +
                                 campaign::key_hex(w.parent_key) +
                                 " returned no snapshot payload");
      }
      warmstore::publish(w.parent_key, r.payload);
      if (options.warm_store) options.warm_store->put(w.parent_key, r.payload);
      bytes_of.emplace(w.parent_key, std::move(r.payload));
    }
  }

  for (JobSpec& j : jobs) {
    if (j.parent_key != 0 && !j.snapshot)
      j.snapshot = bytes_of.at(j.parent_key);
  }
  if (options.on_event) {
    const std::string tag =
        options.label.empty() ? "" : "[" + options.label + "] ";
    options.on_event(tag + std::to_string(order.size()) + " parent(s): " +
                     std::to_string(reused) + " reused, " +
                     std::to_string(warm_jobs.size()) + " warmed");
  }
}

std::vector<RunResult> run_experiment(const ExperimentSpec& spec,
                                      ExperimentBackend& backend,
                                      ResultSink& sink,
                                      const RunOptions& options) {
  std::vector<JobSpec> jobs = spec.expand();
  resolve_parent_snapshots(jobs, backend, options);
  backend.run(jobs, sink);
  if (spec.mode != RunMode::Sampled || spec.sampled.target_half_width <= 0.0)
    return sink.collect();

  // SMARTS-style stopping rule: grow each point's fork set until the mean
  // IPC is tight enough. All statistics derive from job results only, so
  // the round structure — and therefore the final result vector — is
  // identical for every backend.
  const Cycle stride = spec.sampled.fork_stride != 0 ? spec.sampled.fork_stride
                                                     : spec.measure / 2;
  const std::size_t points = spec.num_points();
  const std::uint32_t forks = spec.sampled.forks;
  std::vector<std::vector<std::uint32_t>> point_jobs(points);
  std::vector<JobSpec> tmpl(points);  // carries each point's snapshot handle
  for (const JobSpec& j : jobs) {
    const std::size_t p = j.id / forks;
    if (point_jobs[p].empty()) tmpl[p] = j;
    point_jobs[p].push_back(j.id);
  }

  std::uint32_t next_id = static_cast<std::uint32_t>(jobs.size());
  for (std::uint32_t round = 1; round < spec.sampled.max_rounds; ++round) {
    std::vector<JobSpec> more;
    for (std::size_t p = 0; p < points; ++p) {
      const auto& ids = point_jobs[p];
      const auto n = static_cast<double>(ids.size());
      double sum = 0.0;
      for (const std::uint32_t id : ids) sum += sink.at(id).metrics.ipc;
      const double mean = sum / n;
      double ss = 0.0;
      for (const std::uint32_t id : ids) {
        const double d = sink.at(id).metrics.ipc - mean;
        ss += d * d;
      }
      const double half_width =
          1.96 * std::sqrt(ss / (n - 1.0) / n);  // 95% CI, n >= 2
      if (mean <= 0.0 || half_width / mean <= spec.sampled.target_half_width)
        continue;
      // Capture the fork count before appending: ids aliases point_jobs[p],
      // so reading ids.size() inside the loop would skip/duplicate strides.
      const std::size_t have = ids.size();
      for (std::uint32_t k = 0; k < forks; ++k) {
        JobSpec j = tmpl[p];
        j.id = next_id++;
        j.fork_advance = static_cast<Cycle>(have + k) * stride;
        point_jobs[p].push_back(j.id);
        more.push_back(std::move(j));
      }
    }
    if (more.empty()) break;
    backend.run(more, sink);
  }
  return sink.collect();
}

std::vector<RunResult> run_experiment(const ExperimentSpec& spec,
                                      ExperimentBackend& backend,
                                      ResultSink& sink) {
  return run_experiment(spec, backend, sink, RunOptions{});
}

std::vector<RunResult> run_experiment(const ExperimentSpec& spec,
                                      ExperimentBackend& backend) {
  ResultSink sink;
  return run_experiment(spec, backend, sink);
}

// ------------------------------------------------------------------- worker

namespace worker {

std::string scratch_stem(const std::string& dir, std::uint32_t job_id) {
  static std::atomic<std::uint64_t> counter{0};
  return (std::filesystem::path(dir) /
          ("mflush-" + std::to_string(::getpid()) + "-" +
           std::to_string(counter.fetch_add(1)) + "-job" +
           std::to_string(job_id)))
      .string();
}

void write_job_file(const std::string& path,
                    const std::vector<JobSpec>& jobs) {
  ArchiveWriter ar;
  ar.put(kJobMagic);
  ar.put(kProtocolVersion);
  ar.put<std::uint64_t>(jobs.size());
  for (const JobSpec& j : jobs) j.save(ar);
  write_archive_file(path, std::move(ar));
}

std::vector<JobSpec> read_job_file(const std::string& path) {
  const auto bytes = read_checked_file(path, kJobMagic, "mflush job file");
  ArchiveReader ar(bytes);
  (void)ar.get<std::uint64_t>();  // magic, verified above
  if (const auto v = ar.get<std::uint32_t>(); v != kProtocolVersion) {
    throw std::runtime_error("job file protocol version " +
                             std::to_string(v) + " incompatible with " +
                             std::to_string(kProtocolVersion));
  }
  const auto n = ar.get<std::uint64_t>();
  std::vector<JobSpec> jobs;
  jobs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) jobs.push_back(JobSpec::load(ar));
  if (!ar.done())
    throw std::runtime_error("job file has trailing bytes: " + path);
  return jobs;
}

std::vector<std::uint8_t> encode_results(
    const std::vector<std::pair<std::uint32_t, RunResult>>& results) {
  ArchiveWriter ar;
  ar.put(kResultMagic);
  ar.put(kProtocolVersion);
  ar.put<std::uint64_t>(results.size());
  for (const auto& [id, r] : results) put_result(ar, id, r);
  ar.put(fnv1a(ar.bytes()));
  return ar.take();
}

std::vector<std::pair<std::uint32_t, RunResult>> decode_results(
    std::span<const std::uint8_t> bytes, const std::string& what) {
  std::vector<std::uint8_t> body(bytes.begin(), bytes.end());
  check_archive(body, kResultMagic, "mflush result file", what);
  ArchiveReader ar(body);
  (void)ar.get<std::uint64_t>();  // magic, verified above
  if (const auto v = ar.get<std::uint32_t>(); v != kProtocolVersion) {
    throw std::runtime_error("result file protocol version " +
                             std::to_string(v) + " incompatible with " +
                             std::to_string(kProtocolVersion));
  }
  const auto n = ar.get<std::uint64_t>();
  std::vector<std::pair<std::uint32_t, RunResult>> results;
  results.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) results.push_back(get_result(ar));
  if (!ar.done())
    throw std::runtime_error("result file has trailing bytes: " + what);
  return results;
}

void write_result_file(
    const std::string& path,
    const std::vector<std::pair<std::uint32_t, RunResult>>& results) {
  fsio::write_file_atomic(path, encode_results(results), /*durable=*/false);
}

std::vector<std::pair<std::uint32_t, RunResult>> read_result_file(
    const std::string& path) {
  return decode_results(fsio::read_file_bytes(path, "mflush result file"),
                        path);
}

int run_worker(const std::string& job_path, const std::string& result_path,
               const std::string& store_dir, bool write_parts) {
  try {
    std::vector<JobSpec> jobs = read_job_file(job_path);
    std::optional<WarmStore> store;
    if (!store_dir.empty()) {
      store.emplace(store_dir);
      // Pass 1: install every embedded parent snapshot before anything
      // runs — batch-internal order must not matter, and one upload has to
      // serve every later batch on this host.
      for (const JobSpec& job : jobs) {
        if (job.parent_key != 0 && job.snapshot)
          store->put(job.parent_key, job.snapshot);
      }
      // Pass 2: resolve by-reference forks from the store. An unresolved
      // fork stays by-ref and run_job re-warms it deterministically.
      for (JobSpec& job : jobs) {
        if (!job.warm_only && job.parent_key != 0 && !job.snapshot)
          job.snapshot = store->lookup(job.parent_key);
      }
    }
    std::vector<std::pair<std::uint32_t, RunResult>> results;
    results.reserve(jobs.size());
    // Jobs run serially: the worker *process* is the unit of parallelism,
    // and serial execution keeps the worker bit-identical to run_job.
    for (const JobSpec& job : jobs) {
      results.emplace_back(job.id, run_job(job));
      // A warm job's capture becomes a store entry immediately, so the
      // scheduler can ship later forks of this parent by hash.
      if (store && job.warm_only && job.parent_key != 0)
        store->put(job.parent_key, results.back().second.payload);
      // Streaming transports watch for these one-entry part files; the
      // atomic rename inside write_result_file is what makes existence
      // imply completeness on the coordinator side.
      if (write_parts && !job.warm_only) {
        write_result_file(result_path + ".r" + std::to_string(job.id),
                          {results.back()});
      }
    }
    write_result_file(result_path, results);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mflushsim --worker: %s\n", e.what());
    return 1;
  }
}

}  // namespace worker
}  // namespace mflush
