#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "energy/accounting.h"

namespace mflush {

/// Chip-level metrics of one measured interval.
struct SimMetrics {
  Cycle cycles = 0;
  std::uint64_t committed = 0;
  double ipc = 0.0;  ///< system throughput: committed instrs / cycle

  std::vector<double> per_thread_ipc;  ///< global thread order

  // FLUSH machinery.
  std::uint64_t flush_events = 0;
  std::uint64_t flushed_instructions = 0;

  // Branch behaviour.
  std::uint64_t branches_resolved = 0;
  std::uint64_t mispredicts = 0;
  [[nodiscard]] double mispredict_rate() const noexcept {
    return branches_resolved
               ? static_cast<double>(mispredicts) /
                     static_cast<double>(branches_resolved)
               : 0.0;
  }

  // Memory behaviour (Fig. 4 inputs).
  double l2_hit_time_mean = 0.0;
  double l2_hit_time_p50 = 0.0;
  double l2_hit_time_p90 = 0.0;
  std::uint64_t l2_hits_observed = 0;
  std::uint64_t l2_misses_observed = 0;

  // Energy (Fig. 11 inputs).
  energy::EnergyReport energy{};
};

}  // namespace mflush
