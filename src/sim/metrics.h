#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "energy/accounting.h"

namespace mflush {

/// Chip-level metrics of one measured interval.
struct SimMetrics {
  Cycle cycles = 0;
  std::uint64_t committed = 0;
  double ipc = 0.0;  ///< system throughput: committed instrs / cycle

  std::vector<double> per_thread_ipc;  ///< global thread order

  // FLUSH machinery.
  std::uint64_t flush_events = 0;
  std::uint64_t flushed_instructions = 0;

  // Branch behaviour.
  std::uint64_t branches_resolved = 0;
  std::uint64_t mispredicts = 0;
  [[nodiscard]] double mispredict_rate() const noexcept {
    return branches_resolved
               ? static_cast<double>(mispredicts) /
                     static_cast<double>(branches_resolved)
               : 0.0;
  }

  // Memory behaviour (Fig. 4 inputs).
  double l2_hit_time_mean = 0.0;
  double l2_hit_time_p50 = 0.0;
  double l2_hit_time_p90 = 0.0;
  std::uint64_t l2_hits_observed = 0;
  std::uint64_t l2_misses_observed = 0;

  // Policy detection-quality counters summed over the chip's cores
  // (false-miss analysis, Fig. 5 / the MFLUSH ablation).
  std::uint64_t policy_flushes_on_miss = 0;
  std::uint64_t policy_flushes_on_hit = 0;  ///< "false miss" flushes
  std::uint64_t policy_flushes_on_l1 = 0;
  std::uint64_t policy_stall_events = 0;
  std::uint64_t policy_gate_cycles = 0;

  /// Full L2 load-hit-time distribution (Fig. 4 dispersion analysis);
  /// geometry mirrors MemStats::l2_load_hit_time.
  Histogram l2_hit_time_hist{5.0, 80};

  // Main-memory model behaviour (MemModelStats; all zero under the
  // default fixed-latency model — the latency-spread analysis inputs).
  std::uint64_t dram_row_hits = 0;
  std::uint64_t dram_row_misses = 0;
  std::uint64_t dram_row_conflicts = 0;
  std::uint64_t dram_far_accesses = 0;
  std::uint64_t dram_bank_busy_cycles = 0;  ///< summed bank occupancy
  std::uint64_t dram_chan_busy_cycles = 0;  ///< summed channel occupancy

  // Energy (Fig. 11 inputs).
  energy::EnergyReport energy{};

  /// Exact equality over every field — the cross-backend / serial-parallel
  /// determinism contract ("bit-identical") made testable.
  bool operator==(const SimMetrics&) const = default;
};

}  // namespace mflush
