#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/cmp.h"

/// Snapshot/fork checkpointing for CmpSimulator.
///
/// A snapshot is a self-describing binary blob: a header identifying the
/// simulation (format version, full SimConfig, workload, policy spec)
/// followed by the complete mutable state (trace-source RNGs and rings,
/// caches, TLBs, MSHRs, bus/L2/memory queues, pipeline pools, rename maps,
/// branch predictor, policy state, statistics) and a trailing FNV-1a
/// checksum. Restoring a snapshot and running N cycles is bit-identical to
/// never having snapshotted — tested by SnapshotTest.ResumeMatchesContinuous.
///
/// Versioning rules: kFormatVersion MUST be bumped whenever any save_state
/// layout changes (a field added/removed/reordered anywhere in the chain).
/// Loaders reject any version mismatch outright — there are no migrations;
/// snapshots are cheap to regenerate, correctness is not.
namespace mflush::snapshot {

/// v2: per-core local clocks (CmpSimulator sleep state) + WakeupWheel
/// release cycles joined the stream.
/// v3: canonical bytes — every raw-memcpy'd record carries explicit
/// zero-initialized padding and RunningStat is serialized field-wise, so
/// equal warmed state yields byte-identical snapshots across processes.
inline constexpr std::uint32_t kFormatVersion = 4;

/// Serialize the full simulator state (header + state + checksum).
[[nodiscard]] std::vector<std::uint8_t> capture(const CmpSimulator& sim);

/// Restore state into an existing simulator built from the *same*
/// (config, workload, policy); throws std::runtime_error on any mismatch,
/// version skew, or corruption. This is the in-memory fork primitive: one
/// warmed chip's bytes restore into many simulators.
void restore(CmpSimulator& sim, std::span<const std::uint8_t> bytes);

/// Construct a simulator from the snapshot's own embedded header, then
/// restore its state. The workload must be resolvable from benchmark codes
/// (every named/code workload is; ad-hoc BenchmarkProfile runs are not).
[[nodiscard]] std::unique_ptr<CmpSimulator> make(
    std::span<const std::uint8_t> bytes);

// File convenience wrappers (the CLI's --save-snapshot/--load-snapshot).
void save_file(const std::string& path, const CmpSimulator& sim);
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);
[[nodiscard]] std::unique_ptr<CmpSimulator> load_file(
    const std::string& path);

}  // namespace mflush::snapshot
