#pragma once

#include <string>
#include <vector>

#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/metrics.h"
#include "sim/workloads.h"

/// Experiment-running conventions shared by every bench binary.
///
/// The paper simulates a fixed interval of 120 M cycles per run; the bench
/// default is a laptop-scale 1000× reduction (120 k measured cycles after a
/// 30 k warm-up), overridable via MFLUSH_BENCH_CYCLES / MFLUSH_WARMUP_CYCLES.
namespace mflush {

struct RunResult {
  std::string workload;
  std::string policy;
  SimMetrics metrics;
};

/// Measured-interval length (env MFLUSH_BENCH_CYCLES or `fallback`).
[[nodiscard]] Cycle bench_cycles(Cycle fallback = 120'000);

/// Warm-up length (env MFLUSH_WARMUP_CYCLES or `fallback`).
[[nodiscard]] Cycle warmup_cycles(Cycle fallback = 30'000);

/// Run one (workload, policy) point: warm up, reset, measure.
[[nodiscard]] RunResult run_point(const Workload& workload,
                                  const PolicySpec& policy,
                                  std::uint64_t seed, Cycle warmup,
                                  Cycle measure);

/// Sweep a workload across several policies (shared seed/interval).
[[nodiscard]] std::vector<RunResult> run_sweep(
    const Workload& workload, const std::vector<PolicySpec>& policies,
    std::uint64_t seed, Cycle warmup, Cycle measure);

}  // namespace mflush
