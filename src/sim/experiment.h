#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/metrics.h"
#include "sim/workloads.h"

/// Experiment-running conventions shared by every bench binary.
///
/// The paper simulates a fixed interval of 120 M cycles per run; the bench
/// default is a laptop-scale 1000× reduction (120 k measured cycles after a
/// 30 k warm-up), overridable via MFLUSH_BENCH_CYCLES / MFLUSH_WARMUP_CYCLES.
namespace mflush {

struct RunResult {
  std::string workload;
  std::string policy;
  SimMetrics metrics;

  // Simulator-throughput self-report (filled by run_point): wall-clock time
  // of the whole run and the cycles it simulated (warm-up + measured).
  double wall_seconds = 0.0;
  Cycle simulated_cycles = 0;

  /// Opaque result payload: set only by warm jobs (JobSpec::warm_only),
  /// which return the captured parent snapshot here instead of measuring.
  /// Travels through the worker result protocol; null for ordinary jobs.
  std::shared_ptr<const std::vector<std::uint8_t>> payload;

  /// Simulated cycles per wall-clock second (0 when not timed).
  [[nodiscard]] double sim_cycles_per_sec() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(simulated_cycles) / wall_seconds
               : 0.0;
  }
};

/// Measured-interval length (env MFLUSH_BENCH_CYCLES or `fallback`).
/// Throws std::runtime_error when the variable is set but malformed.
[[nodiscard]] Cycle bench_cycles(Cycle fallback = 120'000);

/// Warm-up length (env MFLUSH_WARMUP_CYCLES or `fallback`).
/// Throws std::runtime_error when the variable is set but malformed.
[[nodiscard]] Cycle warmup_cycles(Cycle fallback = 30'000);

/// Run one (workload, policy) point: warm up, reset, measure.
[[nodiscard]] RunResult run_point(const Workload& workload,
                                  const PolicySpec& policy,
                                  std::uint64_t seed, Cycle warmup,
                                  Cycle measure);

/// Same, with an explicit chip config (memory-model sweeps). With
/// `SimConfig::paper_default(workload.num_cores(), seed)` this is exactly
/// the seed-form run_point above.
[[nodiscard]] RunResult run_point(const SimConfig& cfg,
                                  const Workload& workload,
                                  const PolicySpec& policy, Cycle warmup,
                                  Cycle measure);

/// Fork a measured interval off a captured snapshot: reconstruct the
/// simulator from `snapshot`, advance `fork_advance` cycles, reset stats,
/// measure `measure` cycles. Deterministic: the same (snapshot,
/// fork_advance, measure) triple always yields identical metrics.
[[nodiscard]] RunResult run_point_from_snapshot(
    const std::vector<std::uint8_t>& snapshot, Cycle fork_advance,
    Cycle measure);

/// Sweep a workload across several policies (shared seed/interval).
/// Convenience wrapper: builds a one-workload ExperimentSpec and runs it on
/// the in-process backend (sim/backend.h); results are in policy order and
/// bit-identical to the serial loop.
[[nodiscard]] std::vector<RunResult> run_sweep(
    const Workload& workload, const std::vector<PolicySpec>& policies,
    std::uint64_t seed, Cycle warmup, Cycle measure);

/// Fan a full workload x policy cross-product through the in-process
/// backend. Row i holds `workloads[i]` under every policy, in policy order
/// — the layout report::print_throughput expects.
[[nodiscard]] std::vector<std::vector<RunResult>> run_grid(
    const std::vector<Workload>& workloads,
    const std::vector<PolicySpec>& policies, std::uint64_t seed, Cycle warmup,
    Cycle measure);

}  // namespace mflush
