#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/experiment.h"

/// Parallel experiment engine.
///
/// Every paper figure is a sweep of independent (workload, policy, seed)
/// simulation points; each point is a self-contained CmpSimulator whose
/// output is fully determined by its (config, seed) pair. The engine fans
/// those points across a persistent pool of hardware threads. Because no
/// state is shared between points and results are written to per-point
/// slots, a parallel sweep is bit-identical to the serial loop regardless
/// of scheduling — tested by ParallelRunner.MatchesSerialSweep.
///
/// Thread count: the MFLUSH_JOBS environment variable when set (>= 1),
/// otherwise std::thread::hardware_concurrency().
namespace mflush {

/// One independent simulation point of a sweep.
///
/// With `snapshot` set the point forks a pre-warmed chip instead of
/// simulating its own warm-up: the simulator is reconstructed from the
/// snapshot bytes, advanced `fork_advance` cycles (to de-correlate
/// intervals sampled from one parent), stats are reset, and `measure`
/// cycles run. workload/policy/seed/warmup are then ignored — the snapshot
/// embeds them.
struct SweepPoint {
  Workload workload;
  PolicySpec policy;
  std::uint64_t seed = 1;
  Cycle warmup = 0;
  Cycle measure = 0;
  std::shared_ptr<const std::vector<std::uint8_t>> snapshot;
  Cycle fork_advance = 0;
};

/// Persistent std::jthread pool with an index-claiming work queue.
///
/// The calling thread participates in every batch, so a 1-job runner is
/// exactly the serial loop (no pool threads are spawned at all).
/// Concurrent for_each_index calls from different threads serialize (one
/// batch at a time); calling it from inside a task of the same runner
/// deadlocks and is forbidden.
class ParallelRunner {
 public:
  /// `jobs` == 0 means default_jobs(). The pool spawns jobs-1 workers.
  explicit ParallelRunner(unsigned jobs = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Invoke fn(0) .. fn(n-1), each exactly once, across the pool; blocks
  /// until every index finished. The first exception thrown by a task is
  /// rethrown here (remaining claimed tasks still run to completion).
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

  /// Run every sweep point; results in input order, bit-identical to
  /// calling run_point serially.
  [[nodiscard]] std::vector<RunResult> run(
      const std::vector<SweepPoint>& points);

  /// MFLUSH_JOBS environment override, else hardware concurrency (>= 1).
  [[nodiscard]] static unsigned default_jobs() noexcept;

  /// Process-wide pool shared by run_sweep and the bench drivers.
  [[nodiscard]] static ParallelRunner& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  unsigned jobs_;
};

/// Fan a full workload x policy cross-product through the shared pool.
/// Row i holds `workloads[i]` under every policy, in policy order — the
/// layout report::print_throughput expects.
[[nodiscard]] std::vector<std::vector<RunResult>> run_grid(
    const std::vector<Workload>& workloads,
    const std::vector<PolicySpec>& policies, std::uint64_t seed, Cycle warmup,
    Cycle measure);

}  // namespace mflush
