#pragma once

#include <cstddef>
#include <functional>
#include <memory>

/// Persistent thread pool under the experiment backends.
///
/// The experiment layer (sim/experiment_spec.h + sim/backend.h) expands a
/// study into independent jobs; InProcessBackend fans them across this
/// pool. Because no state is shared between jobs and results land in
/// per-job slots, a parallel batch is bit-identical to the serial loop
/// regardless of scheduling — tested by BackendTest.CrossBackendDeterminism.
///
/// Thread count: the MFLUSH_JOBS environment variable when set (>= 1,
/// malformed values are a hard error), otherwise
/// std::thread::hardware_concurrency().
namespace mflush {

/// Persistent std::jthread pool with an index-claiming work queue.
///
/// The calling thread participates in every batch, so a 1-job runner is
/// exactly the serial loop (no pool threads are spawned at all).
/// Concurrent for_each_index calls from different threads serialize (one
/// batch at a time); calling it from inside a task of the same runner
/// deadlocks and is forbidden.
class ParallelRunner {
 public:
  /// `jobs` == 0 means default_jobs(). The pool spawns jobs-1 workers.
  explicit ParallelRunner(unsigned jobs = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Invoke fn(0) .. fn(n-1), each exactly once, across the pool; blocks
  /// until every index finished. The first exception thrown by a task is
  /// rethrown here (remaining claimed tasks still run to completion).
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

  /// MFLUSH_JOBS environment override, else hardware concurrency (>= 1).
  /// Throws std::runtime_error when MFLUSH_JOBS is set but malformed.
  [[nodiscard]] static unsigned default_jobs();

  /// Process-wide pool shared by InProcessBackend and the bench drivers.
  [[nodiscard]] static ParallelRunner& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  unsigned jobs_;
};

}  // namespace mflush
