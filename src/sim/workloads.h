#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

/// The paper's workload table (Fig. 1): 5 workloads per size for 2/4/6/8
/// threads, named xWy, plus the Fig. 5(b) special bzip2/twolf mix.
namespace mflush {

struct Workload {
  std::string name;         ///< e.g. "8W3"
  std::vector<char> codes;  ///< one benchmark code per thread, in core order

  [[nodiscard]] std::uint32_t num_threads() const noexcept {
    return static_cast<std::uint32_t>(codes.size());
  }
  /// Number of 2-context SMT cores this workload occupies (Fig. 1: each
  /// workload of size x runs on x/2 cores).
  [[nodiscard]] std::uint32_t num_cores() const noexcept {
    return num_threads() / 2;
  }
  /// Human-readable benchmark list, e.g. "mcf+gzip".
  [[nodiscard]] std::string describe() const;
};

namespace workloads {

/// All 20 xWy workloads in Fig. 1 order (2W1..2W5, 4W1..4W5, ...).
[[nodiscard]] std::span<const Workload> all();

/// Lookup by name ("6W2"); nullopt when unknown. The Fig. 5(b) special is
/// reachable as both "bzip2-twolf" and its own name "8Wbt", so every
/// catalog workload's name round-trips through by_name (spec files depend
/// on this).
[[nodiscard]] std::optional<Workload> by_name(std::string_view name);

/// Resolve a CLI / spec-file token: catalog name first, then an
/// even-length string of valid benchmark codes (two per core, validated
/// against the SPEC2000 catalog). nullopt when neither fits — the shared
/// front door for `mflushsim --workload` and `workload` spec lines.
[[nodiscard]] std::optional<Workload> resolve(std::string_view token);

/// The five workloads of a given thread count (2, 4, 6 or 8).
[[nodiscard]] std::vector<Workload> of_size(std::uint32_t num_threads);

/// Fig. 5(b): 8 threads of bzip2 and twolf where instances of the two
/// applications never share a core: (k,k)(l,l)(k,k)(l,l).
[[nodiscard]] Workload bzip2_twolf_special();

}  // namespace workloads
}  // namespace mflush
