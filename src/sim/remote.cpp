#include "sim/remote.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/env.h"
#include "sim/campaign.h"
#include "sim/parallel.h"
#include "sim/warmstore.h"

namespace mflush {
namespace remote {
namespace {

[[noreturn]] void bad_host(const std::string& entry, const std::string& why) {
  throw std::runtime_error("bad host entry '" + entry + "': " + why);
}

unsigned parse_count(const std::string& entry, std::string_view key,
                     std::string_view value, bool allow_zero) {
  std::uint64_t out = 0;
  for (const char c : value) {
    if (c < '0' || c > '9')
      bad_host(entry, std::string(key) + " expects an integer, got '" +
                          std::string(value) + "'");
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
    if (out > std::numeric_limits<unsigned>::max())
      bad_host(entry, std::string(key) + " value out of range: '" +
                          std::string(value) + "'");
  }
  if (value.empty())
    bad_host(entry, std::string(key) + " expects an integer");
  if (out == 0 && !allow_zero)
    bad_host(entry, std::string(key) + " must be >= 1");
  return static_cast<unsigned>(out);
}

/// Quote for the remote shell ssh runs the command line through: single
/// quotes, with embedded ones rewritten as '\'' so a hostile or merely
/// odd dir= value can neither break the command nor inject one.
std::string shq(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string remote_worker_bin(const HostSpec& host) {
  // Suffixed with the pool index: duplicate entries naming the same ssh
  // host each ship their own copy, so concurrent prepare() scps can never
  // overwrite a binary another entry is executing.
  return host.remote_dir + "/mflushsim." + std::to_string(host.index);
}

/// ssh flags: never prompt (a password prompt would hang a sweep), fail
/// fast on unreachable hosts so their batches re-queue promptly.
const std::vector<std::string> kSshOpts = {
    "-o", "BatchMode=yes", "-o", "ConnectTimeout=10"};

void run_tool_or_throw(const std::string& tool,
                       std::vector<std::string> args, const HostSpec& host,
                       const std::string& what, unsigned timeout_s) {
  int code = 0;
  try {
    code = proc::spawn_and_wait(tool, args, what, timeout_s);
  } catch (const std::exception& e) {
    throw TransportError(host.label() + ": " + e.what());
  }
  if (code != 0) {
    throw TransportError(host.label() + ": " + tool + " exited with code " +
                         std::to_string(code) + " while " + what +
                         (code == 255 ? " (ssh connection failure)" : ""));
  }
}

}  // namespace

HostSpec parse_host(std::string_view entry) {
  const std::string text(entry);
  std::istringstream in(text);
  HostSpec host;
  if (!(in >> host.name)) bad_host(text, "empty entry");
  std::string field;
  while (in >> field) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos)
      bad_host(text, "expected key=value, got '" + field + "'");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "slots") {
      host.slots = parse_count(text, key, value, /*allow_zero=*/false);
    } else if (key == "fail") {
      host.fail_batches = parse_count(text, key, value, /*allow_zero=*/true);
    } else if (key == "dir") {
      if (value.empty()) bad_host(text, "dir expects a path");
      host.remote_dir = value;
    } else {
      bad_host(text, "unknown key '" + key + "' (slots, fail, dir)");
    }
  }
  return host;
}

std::vector<HostSpec> parse_hosts(std::string_view text) {
  std::vector<HostSpec> hosts;
  std::string entry;
  const auto flush_entry = [&] {
    const std::size_t hash = entry.find('#');
    if (hash != std::string::npos) entry.resize(hash);
    if (entry.find_first_not_of(" \t\r") != std::string::npos)
      hosts.push_back(parse_host(entry));
    entry.clear();
  };
  for (const char c : text) {
    if (c == '\n' || c == ',' || c == ';') {
      // A '#' comment swallows separators to end of line, not past it.
      if (c != '\n' && entry.find('#') != std::string::npos) {
        entry.push_back(c);
        continue;
      }
      flush_entry();
    } else {
      entry.push_back(c);
    }
  }
  flush_entry();
  for (std::size_t i = 0; i < hosts.size(); ++i) hosts[i].index = i;
  return hosts;
}

std::vector<HostSpec> read_hosts_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open hosts file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  std::vector<HostSpec> hosts = parse_hosts(text.str());
  if (hosts.empty()) {
    // An explicitly named pool that parses empty (every entry commented
    // out) must not silently degrade to a loopback run on one machine.
    throw std::runtime_error("hosts file names no hosts: " + path);
  }
  return hosts;
}

std::vector<HostSpec> hosts_from_env() {
  const std::string env = env::str_or("MFLUSH_HOSTS");
  if (env.empty()) return {};
  if (std::string_view(env).find('#') != std::string_view::npos) {
    // Comments are line-scoped and an env var is one line: a mid-string
    // '#' would silently comment out every later comma-separated entry,
    // shrinking the pool. Refuse instead.
    throw std::runtime_error(
        "MFLUSH_HOSTS does not support '#' comments (use a hosts file)");
  }
  std::vector<HostSpec> hosts = parse_hosts(env);
  if (hosts.empty() &&
      std::string_view(env).find_first_not_of(" \t\r\n,;") !=
          std::string_view::npos) {
    throw std::runtime_error(
        "MFLUSH_HOSTS is set but names no hosts: '" + std::string(env) +
        "'");
  }
  return hosts;
}

std::vector<std::pair<std::size_t, std::size_t>> batch_ranges(
    std::size_t jobs, std::size_t batch_jobs, std::size_t slots) {
  if (jobs == 0) return {};
  std::size_t per = batch_jobs;
  if (per == 0)
    per = std::max<std::size_t>(
        1, jobs / std::max<std::size_t>(1, 4 * slots));
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve((jobs + per - 1) / per);
  for (std::size_t begin = 0; begin < jobs; begin += per)
    out.emplace_back(begin, std::min(jobs, begin + per));
  return out;
}

// ------------------------------------------------------------- transports

void LocalTransport::prepare(const HostSpec&) {}

void LocalTransport::run_batch(const HostSpec& host,
                               const std::string& job_path,
                               const std::string& result_path,
                               const std::string& what) {
  if (dispatched_.fetch_add(1) < host.fail_batches) {
    throw TransportError(host.label() + ": injected transport failure on " +
                         what);
  }
  std::vector<std::string> args = {"--worker", job_path, "--worker-out",
                                   result_path, "--worker-parts"};
  if (!host.warm_store_dir.empty())
    args.insert(args.end(), {"--worker-store", host.warm_store_dir});
  const int code = proc::spawn_and_wait(bin_, args, what);
  if (code != 0) {
    throw TransportError("worker exited with code " + std::to_string(code) +
                         " on " + what + " (" + job_path + ")");
  }
}

SshTransport::SshTransport(std::string worker_binary, unsigned timeout_s)
    : bin_(std::move(worker_binary)),
      timeout_s_(timeout_s != 0
                     ? timeout_s
                     : static_cast<unsigned>(env::u64_or(
                           "MFLUSH_SSH_TIMEOUT", 600, 1,
                           std::numeric_limits<unsigned>::max()))) {}

void SshTransport::prepare(const HostSpec& host) {
  std::vector<std::string> mkdir = kSshOpts;
  mkdir.insert(mkdir.end(),
               {host.name, "mkdir -p " + shq(host.remote_dir)});
  run_tool_or_throw("ssh", mkdir, host, "preparing the scratch dir",
                    timeout_s_);

  std::vector<std::string> ship = {"-q"};
  ship.insert(ship.end(), kSshOpts.begin(), kSshOpts.end());
  ship.insert(ship.end(), {bin_, host.name + ":" + remote_worker_bin(host)});
  run_tool_or_throw("scp", ship, host, "shipping the worker binary",
                    timeout_s_);

  std::vector<std::string> chmod = kSshOpts;
  chmod.insert(chmod.end(),
               {host.name, "chmod +x " + shq(remote_worker_bin(host))});
  run_tool_or_throw("ssh", chmod, host, "marking the worker executable",
                    timeout_s_);
}

void SshTransport::run_batch(const HostSpec& host,
                             const std::string& job_path,
                             const std::string& result_path,
                             const std::string& what) {
  namespace fs = std::filesystem;
  const std::string rjob =
      host.remote_dir + "/" + fs::path(job_path).filename().string();
  const std::string rres =
      host.remote_dir + "/" + fs::path(result_path).filename().string();

  std::vector<std::string> push = {"-q"};
  push.insert(push.end(), kSshOpts.begin(), kSshOpts.end());
  push.insert(push.end(), {job_path, host.name + ":" + rjob});
  run_tool_or_throw("scp", push, host, "pushing " + what, timeout_s_);

  std::string cmd = shq(remote_worker_bin(host)) + " --worker " + shq(rjob) +
                    " --worker-out " + shq(rres);
  if (!host.warm_store_dir.empty())
    cmd += " --worker-store " + shq(host.warm_store_dir);
  std::vector<std::string> exec = kSshOpts;
  exec.insert(exec.end(), {host.name, std::move(cmd)});
  run_tool_or_throw("ssh", exec, host, "running " + what, timeout_s_);

  std::vector<std::string> pull = {"-q"};
  pull.insert(pull.end(), kSshOpts.begin(), kSshOpts.end());
  pull.insert(pull.end(), {host.name + ":" + rres, result_path});
  run_tool_or_throw("scp", pull, host, "pulling results of " + what,
                    timeout_s_);

  // Best-effort remote cleanup; a failure here is not a batch failure.
  std::vector<std::string> clean = kSshOpts;
  clean.insert(clean.end(),
               {host.name, "rm -f " + shq(rjob) + " " + shq(rres)});
  try {
    (void)proc::spawn_and_wait("ssh", clean, what, timeout_s_);
  } catch (const std::exception&) {
  }
}

}  // namespace remote

// ---------------------------------------------------------- RemoteBackend

namespace {

using remote::HostSpec;
using remote::Transport;

/// A [begin, end) slice of the run's job vector: no JobSpec copies wait
/// in the queue, which matters when thousands of sampled-mode jobs each
/// embed a warmed snapshot.
struct Batch {
  std::size_t number = 0;  ///< stable index for event messages
  std::size_t begin = 0;
  std::size_t end = 0;
  unsigned attempts = 0;

  [[nodiscard]] std::string describe(
      const std::vector<JobSpec>& all_jobs) const {
    if (end - begin == 1) {
      return "batch " + std::to_string(number) + " (job " +
             std::to_string(all_jobs[begin].id) + ")";
    }
    return "batch " + std::to_string(number) + " (jobs " +
           std::to_string(all_jobs[begin].id) + "-" +
           std::to_string(all_jobs[end - 1].id) + ")";
  }
};

struct HostState {
  HostSpec spec;
  std::unique_ptr<Transport> transport;
  std::mutex prepare_mutex;
  bool prepared = false;
  unsigned failures = 0;  // guarded by the scheduler mutex
  bool dead = false;      // guarded by the scheduler mutex

  /// The host's warm store IS the coordinator's (local host + configured
  /// store): nothing ever uploads, forks always ship by hash.
  bool warm_shared = false;
  /// Parents known durably present in the host-side store — only marked
  /// after a batch that carried (or warmed) them *succeeded*, because the
  /// worker installs embedded parents before running anything. Marking at
  /// staging time would race: a second by-hash batch could reach the host
  /// before the first batch's worker installed the bytes.
  std::mutex warm_mutex;
  std::unordered_set<std::uint64_t> warm_present;

  void ensure_prepared() {
    const std::lock_guard lk(prepare_mutex);
    if (prepared) return;
    transport->prepare(spec);
    prepared = true;
  }
};

/// Shared scheduler state: a queue of batches plus completion/abort
/// bookkeeping. Work-stealing is the queue itself — every live host slot
/// pulls the next batch, so a retired host's re-queued work drains onto
/// whichever hosts stay healthy.
struct Scheduler {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Batch> queue;
  std::size_t done = 0;
  std::size_t total = 0;
  std::size_t next_batch_number = 0;  ///< for batches minted by splitting
  std::size_t live_hosts = 0;
  std::size_t uploads = 0;       ///< parent snapshots shipped to hosts
  std::size_t upload_bytes = 0;  ///< their total snapshot byte size
  bool aborted = false;
  std::exception_ptr first_error;
  std::function<void(const std::string&)> on_event;

  void event(const std::string& line) {
    if (on_event) on_event(line);
  }
  [[nodiscard]] bool finished() const {
    return aborted || done == total;
  }
};

/// A parent snapshot shipped inline to one host — recorded by
/// run_batch_once, reported by the slot loop once the batch succeeds.
struct UploadRecord {
  std::uint64_t key = 0;
  std::size_t bytes = 0;
};

/// Job ids already streamed into the sink this run. Incremental partial
/// streaming means a failed batch may have delivered some of its results
/// before dying — and its retry (or split halves) will produce them
/// again. Results are deterministic, but ResultSink::push throws on a
/// duplicate slot, so every push is gated by claim(): exactly one copy of
/// each job's result enters the sink no matter how many attempts touched
/// it.
struct Delivered {
  std::mutex m;
  std::unordered_set<std::uint32_t> ids;

  [[nodiscard]] bool claim(std::uint32_t id) {
    const std::lock_guard lk(m);
    return ids.insert(id).second;
  }
};

/// One attempt of one batch: stage the job file, move it through the
/// transport, validate and stream the results. Throws on any failure with
/// the batch untouched; the scratch pair never outlives the attempt.
void run_batch_once(HostState& host, const Batch& batch,
                    const std::vector<JobSpec>& all_jobs,
                    const std::filesystem::path& scratch, bool keep_files,
                    WarmStore* coordinator_store,
                    std::vector<UploadRecord>& uploads, Delivered& delivered,
                    ResultSink& sink) {
  host.ensure_prepared();
  const auto first =
      all_jobs.begin() + static_cast<std::ptrdiff_t>(batch.begin);
  const auto last =
      all_jobs.begin() + static_cast<std::ptrdiff_t>(batch.end);
  const std::string stem =
      worker::scratch_stem(scratch.string(), first->id) + "-a" +
      std::to_string(batch.attempts);
  const std::string job_path = stem + ".mfj";
  const std::string result_path = stem + ".mfr";

  // Per-job partial results (transports that stream them): the worker
  // writes `result_path.r<id>` atomically as each measured job finishes.
  // The attempt-unique stem keeps one attempt's parts from ever being
  // read as another's.
  const bool streaming = host.transport->streams_partials();
  std::vector<std::pair<const JobSpec*, std::string>> parts;
  std::vector<std::string> guard_paths = {job_path, result_path};
  if (streaming) {
    for (auto it = first; it != last; ++it) {
      if (it->warm_only) continue;
      parts.emplace_back(&*it, result_path + ".r" + std::to_string(it->id));
      guard_paths.push_back(parts.back().second);
    }
  }
  const ScratchGuard guard(std::move(guard_paths), keep_files);

  // The only copy of the slice, alive just while staging the job file
  // (the snapshot payloads inside are shared_ptr-shared, not duplicated).
  // With a host-side warm store this copy is also where fork snapshots are
  // stripped: a parent already present on the host (or embedded once
  // earlier in this same batch) travels as its content hash alone.
  std::vector<JobSpec> slice(first, last);
  if (!host.spec.warm_store_dir.empty()) {
    const std::lock_guard lk(host.warm_mutex);
    std::unordered_set<std::uint64_t> in_batch;
    for (JobSpec& j : slice) {
      if (j.parent_key == 0 || !j.snapshot) continue;
      if (host.warm_shared) {
        // The host reads the coordinator's own store directory: make sure
        // the entry exists (put-if-absent is ~free when it does), then
        // always ship by hash.
        coordinator_store->put(j.parent_key, j.snapshot);
        j.snapshot = nullptr;
      } else if (host.warm_present.contains(j.parent_key) ||
                 !in_batch.insert(j.parent_key).second) {
        j.snapshot = nullptr;
      } else {
        uploads.push_back({j.parent_key, j.snapshot->size()});
      }
    }
  }
  worker::write_job_file(job_path, slice);

  // While the worker runs, stream any per-job part that appears. Each
  // part is one atomically-renamed one-entry MFLUSRES file, so existence
  // implies completeness; a part that fails to decode is ignored (the
  // authoritative batch file catches up below, or the attempt fails).
  // Every push is claim()-gated — the final loop below claims whatever
  // the watcher did not.
  std::atomic<bool> worker_done{false};
  std::thread watcher;
  if (!parts.empty()) {
    watcher = std::thread([&] {
      std::vector<bool> seen(parts.size(), false);
      std::size_t remaining = parts.size();
      while (remaining > 0) {
        for (std::size_t i = 0; i < parts.size(); ++i) {
          if (seen[i]) continue;
          std::error_code ec;
          if (!std::filesystem::exists(parts[i].second, ec)) continue;
          seen[i] = true;
          --remaining;
          const JobSpec& job = *parts[i].first;
          try {
            auto part = worker::read_result_file(parts[i].second);
            if (part.size() != 1 || part.front().first != job.id)
              throw std::runtime_error("part/job mismatch");
            if (delivered.claim(job.id))
              sink.push(job, std::move(part.front().second));
          } catch (const std::exception&) {
            // Not an attempt failure: the batch file stays authoritative.
          }
        }
        if (worker_done.load()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }
  struct WatcherJoin {
    std::atomic<bool>& done;
    std::thread& t;
    ~WatcherJoin() {
      done.store(true);
      if (t.joinable()) t.join();
    }
  } watcher_join{worker_done, watcher};

  host.transport->run_batch(host.spec, job_path, result_path,
                            batch.describe(all_jobs));

  // Quiesce the watcher before touching the final file: from here on this
  // thread owns all pushes for the batch.
  worker_done.store(true);
  if (watcher.joinable()) watcher.join();

  auto results = worker::read_result_file(result_path);
  const std::size_t expected = batch.end - batch.begin;
  if (results.size() != expected) {
    throw std::runtime_error("worker answered " +
                             std::to_string(results.size()) + " of " +
                             std::to_string(expected) + " jobs in " +
                             batch.describe(all_jobs));
  }
  // Validate the whole answer set before pushing from it: a malformed
  // result file must fail the attempt cleanly, never half-poison the sink
  // ahead of the retry. (Parts the watcher already streamed were each
  // validated individually — an id-matching one-entry archive — and
  // results are deterministic, so a part surviving a failed attempt is
  // still the correct result for its job.)
  std::unordered_map<std::uint32_t, const JobSpec*> by_id;
  for (auto it = first; it != last; ++it) by_id.emplace(it->id, &*it);
  std::vector<const JobSpec*> answered;
  answered.reserve(results.size());
  for (const auto& [id, result] : results) {
    const auto it = by_id.find(id);
    if (it == by_id.end()) {
      throw std::runtime_error("worker result for unexpected or duplicate "
                               "job " +
                               std::to_string(id) + " in " +
                               batch.describe(all_jobs));
    }
    answered.push_back(it->second);
    by_id.erase(it);
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (delivered.claim(answered[i]->id))
      sink.push(*answered[i], std::move(results[i].second));
  }

  // Success: every parent this batch referenced is now durably in the
  // host-side store — the worker installs embedded copies before running
  // and stores warm-job captures as they land — so later batches on this
  // host ship hashes only.
  if (!host.spec.warm_store_dir.empty() && !host.warm_shared) {
    const std::lock_guard lk(host.warm_mutex);
    for (const JobSpec& j : slice) {
      if (j.parent_key != 0) host.warm_present.insert(j.parent_key);
    }
  }
}

void host_slot_loop(Scheduler& sched, HostState& host,
                    const std::vector<JobSpec>& all_jobs,
                    const std::filesystem::path& scratch, bool keep_files,
                    unsigned max_attempts, unsigned host_max_failures,
                    WarmStore* coordinator_store, Delivered& delivered,
                    ResultSink& sink) {
  for (;;) {
    Batch batch;
    {
      std::unique_lock lk(sched.m);
      sched.cv.wait(lk, [&] {
        return sched.finished() || host.dead || !sched.queue.empty();
      });
      if (sched.finished() || host.dead) return;
      batch = std::move(sched.queue.front());
      sched.queue.pop_front();
    }

    ++batch.attempts;
    std::vector<UploadRecord> uploads;
    std::exception_ptr error;
    std::string error_text;
    try {
      run_batch_once(host, batch, all_jobs, scratch, keep_files,
                     coordinator_store, uploads, delivered, sink);
    } catch (const std::exception& e) {
      error = std::current_exception();
      error_text = e.what();
    }

    std::unique_lock lk(sched.m);
    if (!error) {
      for (const UploadRecord& u : uploads) {
        ++sched.uploads;
        sched.upload_bytes += u.bytes;
        sched.event(host.spec.label() + ": uploaded parent " +
                    campaign::key_hex(u.key) + " (" +
                    std::to_string(u.bytes) + " bytes)");
      }
      ++sched.done;
      if (sched.finished()) sched.cv.notify_all();
      continue;
    }

    ++host.failures;
    sched.event(host.spec.label() + " failed " + batch.describe(all_jobs) +
                " (attempt " + std::to_string(batch.attempts) + "/" +
                std::to_string(max_attempts) + "): " + error_text);
    if (batch.attempts >= max_attempts) {
      if (!sched.first_error) sched.first_error = error;
      sched.aborted = true;
      sched.cv.notify_all();
      return;
    }
    if (batch.end - batch.begin > 1) {
      // Poison-job containment: a batch failure says *something* in the
      // batch (or its host) is bad, not that every job is. Re-queueing the
      // batch whole would let one crashing job burn the attempt budget of
      // all its batch-mates; splitting halves the blast radius each retry
      // until the poison job sits alone in a batch and fails on its own
      // attempts. The halves are fresh batches with fresh budgets, so a
      // lineage stays bounded: at most 2N-1 batches of max_attempts each.
      Batch left, right;
      left.number = sched.next_batch_number++;
      left.begin = batch.begin;
      left.end = batch.begin + (batch.end - batch.begin) / 2;
      right.number = sched.next_batch_number++;
      right.begin = left.end;
      right.end = batch.end;
      sched.event(batch.describe(all_jobs) + " split into " +
                  left.describe(all_jobs) + " and " +
                  right.describe(all_jobs) +
                  " to isolate a possible poison job");
      ++sched.total;  // one batch became two
      sched.queue.push_back(left);
      sched.queue.push_back(right);
    } else {
      sched.queue.push_back(std::move(batch));
    }
    // Retire the host after repeated failures so its share of the sweep
    // steals onto healthy hosts — but never the last one standing, whose
    // batches should run out their attempts instead.
    if (!host.dead && host.failures >= host_max_failures &&
        sched.live_hosts > 1) {
      host.dead = true;
      --sched.live_hosts;
      sched.event(host.spec.label() + " retired after " +
                  std::to_string(host.failures) +
                  " failures; re-queued work steals onto the remaining " +
                  std::to_string(sched.live_hosts) + " host(s)");
    }
    sched.cv.notify_all();
    if (host.dead) return;
  }
}

}  // namespace

RemoteBackend::RemoteBackend() : RemoteBackend(Options()) {}

RemoteBackend::RemoteBackend(Options options) : opts_(std::move(options)) {}

void RemoteBackend::run(const std::vector<JobSpec>& jobs, ResultSink& sink) {
  if (jobs.empty()) return;
  if (opts_.max_attempts == 0)
    throw std::runtime_error("RemoteBackend: max_attempts must be >= 1");

  std::vector<HostSpec> hosts = opts_.hosts;
  if (hosts.empty()) {
    HostSpec local;
    local.name = "local";
    local.slots = ParallelRunner::default_jobs();
    hosts.push_back(local);
  }
  for (std::size_t i = 0; i < hosts.size(); ++i) hosts[i].index = i;

  const std::string bin = opts_.worker_binary.empty()
                              ? default_worker_binary()
                              : opts_.worker_binary;
  if (bin.empty()) {
    throw std::runtime_error(
        "RemoteBackend: cannot locate the mflushsim worker binary (set "
        "MFLUSH_WORKER_BIN or Options::worker_binary)");
  }
  const std::filesystem::path scratch =
      opts_.scratch_dir.empty() ? std::filesystem::temp_directory_path()
                                : std::filesystem::path(opts_.scratch_dir);

  // Warm-snapshot shipping: when the sweep references warmed parents,
  // every host gets a warm store so each parent crosses to each host at
  // most once. Session-scoped local stores (no coordinator store) are
  // swept on exit.
  std::vector<std::filesystem::path> session_stores;
  struct StoreSweep {
    std::vector<std::filesystem::path>& dirs;
    bool keep;
    ~StoreSweep() {
      if (keep) return;
      std::error_code ec;
      for (const auto& d : dirs) std::filesystem::remove_all(d, ec);
    }
  } sweep{session_stores, opts_.keep_files};
  const bool has_parents =
      std::any_of(jobs.begin(), jobs.end(),
                  [](const JobSpec& j) { return j.parent_key != 0; });
  if (has_parents) {
    for (HostSpec& h : hosts) {
      if (!h.is_local()) {
        h.warm_store_dir =
            h.remote_dir + "/warmstore." + std::to_string(h.index);
      } else if (opts_.warm_store != nullptr) {
        h.warm_store_dir = opts_.warm_store->dir();
      } else {
        const auto dir =
            scratch / ("mflush-warm-" + std::to_string(::getpid()) + "-h" +
                       std::to_string(h.index));
        std::filesystem::create_directories(dir);
        session_stores.push_back(dir);
        h.warm_store_dir = dir.string();
      }
    }
  }

  std::size_t total_slots = 0;
  for (const HostSpec& h : hosts) total_slots += h.slots;
  const auto ranges =
      remote::batch_ranges(jobs.size(), opts_.batch_jobs, total_slots);

  Scheduler sched;
  Delivered delivered;
  sched.total = ranges.size();
  sched.next_batch_number = ranges.size();
  sched.live_hosts = hosts.size();
  sched.on_event = opts_.on_event;
  for (std::size_t b = 0; b < ranges.size(); ++b) {
    Batch batch;
    batch.number = b;
    batch.begin = ranges[b].first;
    batch.end = ranges[b].second;
    sched.queue.push_back(batch);
  }

  std::vector<std::unique_ptr<HostState>> states;
  states.reserve(hosts.size());
  for (const HostSpec& h : hosts) {
    auto state = std::make_unique<HostState>();
    state->spec = h;
    state->warm_shared = h.is_local() && opts_.warm_store != nullptr;
    if (opts_.transport_factory) {
      state->transport = opts_.transport_factory(h);
    } else if (h.is_local()) {
      state->transport = std::make_unique<remote::LocalTransport>(bin);
    } else {
      state->transport =
          std::make_unique<remote::SshTransport>(bin, opts_.ssh_timeout);
    }
    states.push_back(std::move(state));
  }

  std::vector<std::thread> slots;
  slots.reserve(std::min<std::size_t>(total_slots, ranges.size()));
  for (auto& state : states) {
    HostState* const host = state.get();
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(host->spec.slots, ranges.size()));
    for (unsigned s = 0; s < n; ++s) {
      slots.emplace_back([&, host] {
        host_slot_loop(sched, *host, jobs, scratch, opts_.keep_files,
                       opts_.max_attempts, opts_.host_max_failures,
                       opts_.warm_store, delivered, sink);
      });
    }
  }
  for (std::thread& t : slots) t.join();

  if (sched.uploads > 0) {
    sched.event("warm store: " + std::to_string(sched.uploads) +
                " parent upload(s), " + std::to_string(sched.upload_bytes) +
                " bytes shipped to the pool");
  }
  if (sched.first_error) std::rethrow_exception(sched.first_error);
  if (sched.done != sched.total) {
    throw std::runtime_error(
        "RemoteBackend: sweep ended with unfinished batches");
  }
}

}  // namespace mflush
