#include "sim/campaign.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <unordered_set>
#include <utility>

#include "common/env.h"
#include "common/fsio.h"

namespace mflush {
namespace campaign {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kJournalMagic = 0x4d464c555357414cull;  // "MFLUSWAL"
constexpr std::uint64_t kKeyMagic = 0x4d464c55534b4559ull;      // "MFLUSKEY"
constexpr std::size_t kHeaderBytes =
    sizeof(std::uint64_t) + sizeof(std::uint32_t);
/// state(u8) + job_id(u32) + key(u64) + aux(u64)
constexpr std::size_t kPayloadBytes = 21;
/// Sanity bound on a record's length prefix: anything larger than this is
/// a torn write or garbage, not a future record format.
constexpr std::size_t kMaxRecordBytes = 1u << 20;

[[nodiscard]] std::string journal_path(const std::string& dir) {
  return (fs::path(dir) / "journal.wal").string();
}
[[nodiscard]] std::string spec_path(const std::string& dir) {
  return (fs::path(dir) / "spec.mfc").string();
}
[[nodiscard]] std::string default_cache_dir(const std::string& dir) {
  return (fs::path(dir) / "cache").string();
}
[[nodiscard]] std::string cache_entry_path(const std::string& cache_dir,
                                           std::uint64_t key) {
  return (fs::path(cache_dir) / (key_hex(key) + ".mfcr")).string();
}

/// Remove write-temp debris a crashed writer left in the cache (the rename
/// never happened, so the entries are garbage by construction).
void sweep_temp_debris(const std::string& cache_dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cache_dir, ec)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos)
      fs::remove(entry.path(), ec);
  }
}

}  // namespace

std::uint64_t job_key(const JobSpec& job) {
  ArchiveWriter ar;
  // Domain separation: a key is only comparable to keys minted under the
  // same canonicalization rules.
  ar.put(kKeyMagic);
  ar.put(kFormatVersion);
  job.save_content(ar);
  return fnv1a(ar.bytes());
}

std::string key_hex(std::uint64_t key) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, key >>= 4)
    out[static_cast<std::size_t>(i)] = "0123456789abcdef"[key & 0xf];
  return out;
}

std::size_t Frontier::count(JobState s) const {
  std::size_t n = 0;
  for (const auto& [key, rec] : jobs)
    if (rec.state == s) ++n;
  return n;
}

Frontier replay(std::span<const std::uint8_t> bytes) {
  Frontier f;
  if (bytes.size() < kHeaderBytes) {
    // A journal that died before its header was durable: nothing was ever
    // dispatched under it, so the consistent frontier is empty.
    f.torn = !bytes.empty();
    return f;
  }
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&version, bytes.data() + sizeof(magic), sizeof(version));
  if (magic != kJournalMagic)
    throw std::runtime_error("campaign journal: bad magic (not a journal)");
  if (version != kFormatVersion) {
    throw std::runtime_error(
        "campaign journal: format version " + std::to_string(version) +
        " incompatible with " + std::to_string(kFormatVersion));
  }

  std::size_t pos = kHeaderBytes;
  f.valid_bytes = pos;
  while (pos < bytes.size()) {
    // Every exit from here on is a torn/truncated/corrupt tail: stop at
    // the last fully-checksummed record and report the tear.
    if (bytes.size() - pos < sizeof(std::uint32_t)) break;
    std::uint32_t len = 0;
    std::memcpy(&len, bytes.data() + pos, sizeof(len));
    if (len == 0 || len > kMaxRecordBytes ||
        static_cast<std::size_t>(len) + sizeof(std::uint64_t) >
            bytes.size() - pos - sizeof(len)) {
      break;
    }
    const auto payload = bytes.subspan(pos + sizeof(len), len);
    std::uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + pos + sizeof(len) + len,
                sizeof(stored));
    if (fnv1a(payload) != stored) break;
    if (payload.size() != kPayloadBytes) break;

    ArchiveReader ar(payload);
    JournalRecord rec;
    const auto state = ar.get<std::uint8_t>();
    if (state < static_cast<std::uint8_t>(JobState::kDispatched) ||
        state > static_cast<std::uint8_t>(JobState::kFailed)) {
      break;
    }
    rec.state = static_cast<JobState>(state);
    rec.job_id = ar.get<std::uint32_t>();
    rec.key = ar.get<std::uint64_t>();
    rec.aux = ar.get<std::uint64_t>();
    f.jobs[rec.key] = rec;  // later transitions supersede earlier ones
    ++f.records;
    pos += sizeof(len) + len + sizeof(stored);
    f.valid_bytes = pos;
  }
  f.torn = f.valid_bytes != bytes.size();
  return f;
}

}  // namespace campaign

// ------------------------------------------------------------ CampaignStore

CampaignStore::CampaignStore(std::string dir, ExperimentSpec spec,
                             Options options)
    : dir_(std::move(dir)),
      cache_dir_(options.cache_dir.empty()
                     ? campaign::default_cache_dir(dir_)
                     : options.cache_dir),
      spec_(std::move(spec)),
      opts_(std::move(options)),
      kill_after_(
          env::u64_or("MFLUSH_CAMPAIGN_KILL_AFTER", 0, /*min=*/0)) {}

CampaignStore::CampaignStore(CampaignStore&& other) noexcept
    : dir_(std::move(other.dir_)),
      cache_dir_(std::move(other.cache_dir_)),
      spec_(std::move(other.spec_)),
      opts_(std::move(other.opts_)),
      frontier_(std::move(other.frontier_)),
      journal_fd_(std::exchange(other.journal_fd_, -1)),
      kill_after_(other.kill_after_),
      done_this_session_(other.done_this_session_) {}

CampaignStore::~CampaignStore() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

void CampaignStore::event(const std::string& line) const {
  if (opts_.on_event) opts_.on_event(line);
}

CampaignStore CampaignStore::create(const std::string& dir,
                                    const ExperimentSpec& spec,
                                    Options options) {
  namespace fs = std::filesystem;
  spec.validate();

  CampaignStore store(dir, spec, std::move(options));
  fs::create_directories(dir);
  fs::create_directories(store.cache_dir_);
  const std::string journal = campaign::journal_path(dir);
  const std::vector<std::uint8_t> spec_bytes = spec.to_bytes();
  if (fs::exists(journal)) {
    bool same_spec = false;
    try {
      same_spec = fsio::read_file_bytes(campaign::spec_path(dir),
                                        "campaign spec") == spec_bytes;
    } catch (const std::exception&) {
      // Unreadable archived spec: treat as a different generation.
    }
    if (same_spec) {
      throw std::runtime_error(
          "campaign directory " + dir +
          " already holds a journal for this exact spec — pass --resume to "
          "continue it (or point --campaign at a fresh directory)");
    }
    // A different spec supersedes the old journal but keeps the shared
    // result cache, so the overlap between the two specs is free.
    unsigned gen = 1;
    while (fs::exists(journal + "." + std::to_string(gen))) ++gen;
    const std::string suffix = "." + std::to_string(gen);
    fs::rename(journal, journal + suffix);
    std::error_code ec;
    fs::rename(campaign::spec_path(dir),
               (fs::path(dir) / ("spec" + suffix + ".mfc")).string(), ec);
    store.event("spec changed — previous journal rotated to journal.wal" +
                suffix + " (result cache retained)");
  }
  fsio::write_file_atomic(campaign::spec_path(dir), spec_bytes,
                          /*durable=*/true);
  campaign::sweep_temp_debris(store.cache_dir_);
  store.open_journal(/*fresh=*/true, 0);
  return store;
}

CampaignStore CampaignStore::resume(const std::string& dir,
                                    Options options) {
  namespace fs = std::filesystem;
  if (!fs::exists(campaign::spec_path(dir)) ||
      !fs::exists(campaign::journal_path(dir))) {
    throw std::runtime_error(
        "no campaign to resume in " + dir +
        " (expected spec.mfc and journal.wal — start one with --campaign)");
  }
  const auto spec_bytes =
      fsio::read_file_bytes(campaign::spec_path(dir), "campaign spec");
  CampaignStore store(dir, ExperimentSpec::from_bytes(spec_bytes),
                      std::move(options));
  fs::create_directories(store.cache_dir_);

  const auto journal_bytes =
      fsio::read_file_bytes(campaign::journal_path(dir), "campaign journal");
  store.frontier_ = campaign::replay(journal_bytes);
  if (store.frontier_.torn) {
    store.event("journal tail torn at byte " +
                std::to_string(store.frontier_.valid_bytes) + " of " +
                std::to_string(journal_bytes.size()) +
                " — truncating to the last consistent record");
  }
  campaign::sweep_temp_debris(store.cache_dir_);
  // A headerless journal (crash before the header fsync) starts over; an
  // intact one is truncated to its consistent prefix so appends land
  // directly after the last good record.
  const bool fresh = store.frontier_.valid_bytes < campaign::kHeaderBytes;
  store.open_journal(fresh, store.frontier_.valid_bytes);

  using campaign::JobState;
  store.event(
      "resumed '" + store.spec_.name + "' — " +
      std::to_string(store.frontier_.count(JobState::kDone)) + " done, " +
      std::to_string(store.frontier_.count(JobState::kDispatched)) +
      " dispatched at crash, " +
      std::to_string(store.frontier_.count(JobState::kFailed)) +
      " failed across " + std::to_string(store.frontier_.records) +
      " journaled records");
  return store;
}

void CampaignStore::open_journal(bool fresh, std::size_t keep_bytes) {
  const std::string path = campaign::journal_path(dir_);
  const int flags = O_WRONLY | O_APPEND | O_CLOEXEC |
                    (fresh ? O_CREAT | O_TRUNC : 0);
  journal_fd_ = ::open(path.c_str(), flags, 0644);
  if (journal_fd_ < 0) {
    throw std::runtime_error("cannot open campaign journal: " + path +
                             " (" + std::strerror(errno) + ")");
  }
  if (fresh) {
    ArchiveWriter header;
    header.put(campaign::kJournalMagic);
    header.put(campaign::kFormatVersion);
    const auto& bytes = header.bytes();
    if (::write(journal_fd_, bytes.data(), bytes.size()) !=
        static_cast<::ssize_t>(bytes.size())) {
      throw std::runtime_error("campaign journal header write failed: " +
                               path);
    }
  } else if (::ftruncate(journal_fd_,
                         static_cast<::off_t>(keep_bytes)) != 0) {
    throw std::runtime_error("campaign journal truncate failed: " + path +
                             " (" + std::strerror(errno) + ")");
  }
  if (::fsync(journal_fd_) != 0)
    throw std::runtime_error("campaign journal fsync failed: " + path);
  fsio::fsync_dir(dir_);
}

void CampaignStore::append(
    const std::vector<campaign::JournalRecord>& records) {
  if (records.empty()) return;
  ArchiveWriter buf;
  for (const campaign::JournalRecord& rec : records) {
    ArchiveWriter payload;
    payload.put(static_cast<std::uint8_t>(rec.state));
    payload.put(rec.job_id);
    payload.put(rec.key);
    payload.put(rec.aux);
    buf.put<std::uint32_t>(
        static_cast<std::uint32_t>(payload.bytes().size()));
    buf.put_bytes(payload.bytes().data(), payload.bytes().size());
    buf.put(fnv1a(payload.bytes()));
  }

  const std::lock_guard lk(journal_mutex_);
  const auto& bytes = buf.bytes();
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ::ssize_t n =
        ::write(journal_fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("campaign journal append failed: " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  // The fsync is the durability point: a transition is only acted on
  // (result trusted, job skipped on resume) once its record survives any
  // crash from here on.
  if (::fsync(journal_fd_) != 0)
    throw std::runtime_error("campaign journal fsync failed");
  for (const campaign::JournalRecord& rec : records)
    frontier_.jobs[rec.key] = rec;
}

void CampaignStore::record_dispatched(const std::vector<JobSpec>& jobs) {
  std::vector<campaign::JournalRecord> records;
  records.reserve(jobs.size());
  for (const JobSpec& job : jobs) {
    campaign::JournalRecord rec;
    rec.state = campaign::JobState::kDispatched;
    rec.job_id = job.id;
    rec.key = campaign::job_key(job);
    rec.aux = 1;
    records.push_back(rec);
  }
  append(records);
}

void CampaignStore::record_done(const JobSpec& job, const RunResult& result) {
  const std::uint64_t key = campaign::job_key(job);
  // Cache entries store slot id 0: the id is campaign-relative, the entry
  // is content-addressed. Published (atomic rename, fsync'd) BEFORE the
  // done record, so a durable done record always points at a durable file.
  const std::vector<std::uint8_t> bytes =
      worker::encode_results({{0, result}});
  fsio::write_file_atomic(campaign::cache_entry_path(cache_dir_, key), bytes,
                          /*durable=*/true);

  campaign::JournalRecord rec;
  rec.state = campaign::JobState::kDone;
  rec.job_id = job.id;
  rec.key = key;
  rec.aux = fnv1a(bytes);  // the result-hash: cross-checks the cache file
  append({rec});

  if (kill_after_ != 0 && ++done_this_session_ >= kill_after_) {
    // Crash-injection hook (MFLUSH_CAMPAIGN_KILL_AFTER): die the hard way,
    // mid-campaign, with no destructors — exactly what resume must absorb.
    ::raise(SIGKILL);
  }
}

void CampaignStore::record_failed(const JobSpec& job, unsigned attempts) {
  campaign::JournalRecord rec;
  rec.state = campaign::JobState::kFailed;
  rec.job_id = job.id;
  rec.key = campaign::job_key(job);
  rec.aux = attempts;
  append({rec});
}

std::optional<RunResult> CampaignStore::cached(const JobSpec& job) const {
  const std::uint64_t key = campaign::job_key(job);
  const std::string path = campaign::cache_entry_path(cache_dir_, key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  try {
    auto results = worker::decode_results(
        fsio::read_file_bytes(path, "campaign cache entry"), path);
    if (results.size() != 1)
      throw std::runtime_error("expected exactly one result: " + path);
    return std::move(results.front().second);
  } catch (const std::exception& e) {
    // A corrupt entry is a miss, not an error: re-execute and overwrite.
    event(std::string("cache entry ") + campaign::key_hex(key) +
          " unreadable (" + e.what() + ") — re-executing");
    return std::nullopt;
  }
}

// ----------------------------------------------------- durable run adapter

namespace {

/// Wraps any backend: cached jobs stream straight from the store, the rest
/// are journaled around the inner run. run_experiment drives this exactly
/// like the raw backend, so the round structure (and the final result
/// vector) of a sampled run is unchanged.
class DurableBackend final : public ExperimentBackend {
 public:
  DurableBackend(CampaignStore& store, ExperimentBackend& inner)
      : store_(store), inner_(inner) {}

  [[nodiscard]] std::string name() const override {
    return "durable+" + inner_.name();
  }

  /// Warm jobs skip the journal/cache entirely — the warm store is their
  /// durability layer — but still run on the *inner* backend's warm-up
  /// executor, so a remote campaign warms on the pool.
  [[nodiscard]] ExperimentBackend& warmup_backend() noexcept override {
    return inner_.warmup_backend();
  }

  void run(const std::vector<JobSpec>& jobs, ResultSink& sink) override {
    std::vector<JobSpec> todo;
    std::size_t hits = 0;
    for (const JobSpec& job : jobs) {
      if (auto r = store_.cached(job)) {
        sink.push(job, std::move(*r));
        ++hits;
      } else {
        todo.push_back(job);
      }
    }
    cache_hits += hits;
    if (!jobs.empty()) {
      store_.event(std::to_string(hits) + " of " +
                   std::to_string(jobs.size()) +
                   " jobs satisfied from the result cache; running " +
                   std::to_string(todo.size()));
    }
    if (todo.empty()) return;

    store_.record_dispatched(todo);
    std::unordered_set<std::uint32_t> done_ids;
    // The sink serializes callbacks, so record_done (cache publish +
    // journal fsync) and the done-id set need no extra lock.
    ResultSink inner_sink([&](const JobSpec& job, const RunResult& result) {
      store_.record_done(job, result);
      done_ids.insert(job.id);
      sink.push(job, result);
    });
    try {
      inner_.run(todo, inner_sink);
    } catch (...) {
      // Journal the holes: jobs the backend gave up on are failed (pending
      // again on resume), not silently forgotten.
      for (const JobSpec& job : todo) {
        if (!done_ids.contains(job.id)) store_.record_failed(job, 1);
      }
      throw;
    }
    executed += todo.size();
  }

  std::size_t executed = 0;
  std::size_t cache_hits = 0;

 private:
  CampaignStore& store_;
  ExperimentBackend& inner_;
};

}  // namespace

std::vector<RunResult> run_experiment_durable(CampaignStore& store,
                                              ExperimentBackend& backend,
                                              ResultSink& sink,
                                              const RunOptions& options) {
  DurableBackend durable(store, backend);
  std::vector<RunResult> results =
      run_experiment(store.spec(), durable, sink, options);
  store.event("finished (" + std::to_string(durable.executed) +
              " executed, " + std::to_string(durable.cache_hits) +
              " cached)");
  return results;
}

}  // namespace mflush
