#pragma once

#include <memory>
#include <vector>

#include "common/config.h"
#include "core/factory.h"
#include "mem/hierarchy.h"
#include "pipeline/smt_core.h"
#include "sim/metrics.h"
#include "sim/workloads.h"
#include "trace/generator.h"

namespace mflush {

/// The full chip: N two-context SMT cores around one shared banked L2,
/// each core running the same IFetch policy — the paper's experimental
/// vehicle.
///
/// Typical use:
///   SimConfig cfg = SimConfig::paper_default(4);
///   CmpSimulator sim(cfg, *workloads::by_name("8W3"), PolicySpec::mflush());
///   sim.run(20'000);            // warm caches/predictors
///   sim.reset_stats();          // start the measured interval
///   sim.run(120'000);
///   SimMetrics m = sim.metrics();
class CmpSimulator {
 public:
  /// `cfg.num_cores` must equal `workload.num_cores()` (each workload size
  /// maps to a fixed chip per Fig. 1); throws std::invalid_argument
  /// otherwise, or when the config fails validation.
  CmpSimulator(const SimConfig& cfg, const Workload& workload,
               const PolicySpec& policy);

  /// Convenience: derive the chip size from the workload.
  CmpSimulator(const Workload& workload, const PolicySpec& policy,
               std::uint64_t seed = 1);

  /// Run custom benchmark profiles (one per hardware context, in core
  /// order) instead of the SPEC2000 catalog. The chip size is derived from
  /// the profile count.
  CmpSimulator(const std::vector<BenchmarkProfile>& profiles,
               const PolicySpec& policy, std::uint64_t seed = 1);

  /// Advance `cycles` cycles.
  void run(Cycle cycles);

  /// Zero all statistics (start of a measured interval).
  void reset_stats();

  [[nodiscard]] SimMetrics metrics() const;

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Workload& workload() const noexcept { return workload_; }
  [[nodiscard]] const PolicySpec& policy() const noexcept { return policy_; }
  [[nodiscard]] const MemoryHierarchy& memory() const noexcept { return mem_; }
  [[nodiscard]] const SmtCore& core(CoreId c) const { return *cores_.at(c); }
  [[nodiscard]] std::uint32_t num_cores() const noexcept {
    return static_cast<std::uint32_t>(cores_.size());
  }

 private:
  void build(const std::vector<BenchmarkProfile>& profiles);

  SimConfig cfg_;
  Workload workload_;
  PolicySpec policy_;
  MemoryHierarchy mem_;
  std::vector<std::unique_ptr<SyntheticTraceSource>> sources_;
  std::vector<std::unique_ptr<SmtCore>> cores_;
  Cycle now_ = 0;
};

}  // namespace mflush
