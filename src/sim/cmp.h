#pragma once

#include <memory>
#include <vector>

#include "common/archive.h"
#include "common/config.h"
#include "core/factory.h"
#include "mem/hierarchy.h"
#include "pipeline/smt_core.h"
#include "sim/metrics.h"
#include "sim/workloads.h"
#include "trace/generator.h"

namespace mflush {

/// The full chip: N two-context SMT cores around one shared banked L2,
/// each core running the same IFetch policy — the paper's experimental
/// vehicle.
///
/// Typical use:
///   SimConfig cfg = SimConfig::paper_default(4);
///   CmpSimulator sim(cfg, *workloads::by_name("8W3"), PolicySpec::mflush());
///   sim.run(20'000);            // warm caches/predictors
///   sim.reset_stats();          // start the measured interval
///   sim.run(120'000);
///   SimMetrics m = sim.metrics();
class CmpSimulator {
 public:
  /// `cfg.num_cores` must equal `workload.num_cores()` (each workload size
  /// maps to a fixed chip per Fig. 1); throws std::invalid_argument
  /// otherwise, or when the config fails validation.
  CmpSimulator(const SimConfig& cfg, const Workload& workload,
               const PolicySpec& policy);

  /// Convenience: derive the chip size from the workload.
  CmpSimulator(const Workload& workload, const PolicySpec& policy,
               std::uint64_t seed = 1);

  /// Run custom benchmark profiles (one per hardware context, in core
  /// order) instead of the SPEC2000 catalog. The chip size is derived from
  /// the profile count.
  CmpSimulator(const std::vector<BenchmarkProfile>& profiles,
               const PolicySpec& policy, std::uint64_t seed = 1);

  /// Advance `cycles` cycles.
  ///
  /// Event-driven idle skip: when every core reports a guaranteed no-op
  /// tick (pipeline drained, contexts hard-blocked, policy quiescent), the
  /// clock jumps straight to the hierarchy's next scheduled event instead
  /// of ticking through the dead cycles. Results are bit-identical to the
  /// cycle-by-cycle loop; only wall-clock changes.
  void run(Cycle cycles);

  /// Zero all statistics (start of a measured interval).
  void reset_stats();

  [[nodiscard]] SimMetrics metrics() const;

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Workload& workload() const noexcept { return workload_; }
  [[nodiscard]] const PolicySpec& policy() const noexcept { return policy_; }
  [[nodiscard]] const MemoryHierarchy& memory() const noexcept { return mem_; }
  [[nodiscard]] const SmtCore& core(CoreId c) const { return *cores_.at(c); }
  [[nodiscard]] std::uint32_t num_cores() const noexcept {
    return static_cast<std::uint32_t>(cores_.size());
  }
  [[nodiscard]] Cycle idle_cycles_skipped() const noexcept {
    return idle_skipped_;
  }

  /// True when built from ad-hoc BenchmarkProfiles rather than the
  /// SPEC2000 catalog. Such a chip cannot be reconstructed from a
  /// snapshot's workload codes, so snapshotting it is refused.
  [[nodiscard]] bool profile_built() const noexcept { return profile_built_; }

  /// Snapshot support (sim/snapshot.h wraps these in a versioned file
  /// format): serialize/restore every piece of mutable simulation state —
  /// clock, trace sources, memory hierarchy, cores, policies, stats.
  void save_state(ArchiveWriter& ar) const;
  void load_state(ArchiveReader& ar);

 private:
  void build(const std::vector<BenchmarkProfile>& profiles);

  SimConfig cfg_;
  Workload workload_;
  PolicySpec policy_;
  MemoryHierarchy mem_;
  std::vector<std::unique_ptr<SyntheticTraceSource>> sources_;
  std::vector<std::unique_ptr<SmtCore>> cores_;
  Cycle now_ = 0;
  Cycle idle_skipped_ = 0;  ///< cycles jumped by the event kernel
  bool profile_built_ = false;
};

}  // namespace mflush
