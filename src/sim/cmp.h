#pragma once

#include <memory>
#include <vector>

#include "common/archive.h"
#include "common/config.h"
#include "core/factory.h"
#include "mem/hierarchy.h"
#include "pipeline/smt_core.h"
#include "sim/metrics.h"
#include "sim/workloads.h"
#include "trace/generator.h"

namespace mflush {

/// The full chip: N two-context SMT cores around one shared banked L2,
/// each core running the same IFetch policy — the paper's experimental
/// vehicle.
///
/// Typical use:
///   SimConfig cfg = SimConfig::paper_default(4);
///   CmpSimulator sim(cfg, *workloads::by_name("8W3"), PolicySpec::mflush());
///   sim.run(20'000);            // warm caches/predictors
///   sim.reset_stats();          // start the measured interval
///   sim.run(120'000);
///   SimMetrics m = sim.metrics();
class CmpSimulator {
 public:
  /// `cfg.num_cores` must equal `workload.num_cores()` (each workload size
  /// maps to a fixed chip per Fig. 1); throws std::invalid_argument
  /// otherwise, or when the config fails validation.
  CmpSimulator(const SimConfig& cfg, const Workload& workload,
               const PolicySpec& policy);

  /// Convenience: derive the chip size from the workload.
  CmpSimulator(const Workload& workload, const PolicySpec& policy,
               std::uint64_t seed = 1);

  /// Run custom benchmark profiles (one per hardware context, in core
  /// order) instead of the SPEC2000 catalog. The chip size is derived from
  /// the profile count.
  CmpSimulator(const std::vector<BenchmarkProfile>& profiles,
               const PolicySpec& policy, std::uint64_t seed = 1);

  /// Profile chip with an explicit config (memory-model sweeps);
  /// `cfg.num_cores` must match the profile count as in the primary ctor.
  CmpSimulator(const SimConfig& cfg,
               const std::vector<BenchmarkProfile>& profiles,
               const PolicySpec& policy);

  /// Advance `cycles` cycles.
  ///
  /// Decoupled per-core clocks: a core whose next tick is a provable no-op
  /// (pipeline drained, contexts hard-blocked, policy quiescent through a
  /// horizon — SmtCore::next_local_event) goes to sleep and its local
  /// clock falls behind the chip clock; it is not ticked again until a
  /// shared-memory rendezvous (the hierarchy delivers it a completion or
  /// L2 event) or its policy horizon expires, at which point the skipped
  /// cycles are credited in one advance_idle() call. One busy core no
  /// longer pins its idle siblings to tick-by-tick execution. When every
  /// core is asleep the chip clock itself jumps to the next hierarchy
  /// event. Results are bit-identical to the cycle-by-cycle loop; only
  /// wall-clock changes (tested against lockstep over the workload×policy
  /// grid). set_event_skip(false) — or the MFLUSH_NO_EVENT_SKIP=1
  /// environment variable — forces the lockstep loop for A/B audits.
  void run(Cycle cycles);

  /// Enable/disable the event-skip machinery for this simulator (default:
  /// on, unless MFLUSH_NO_EVENT_SKIP=1 is set in the environment).
  void set_event_skip(bool enabled) noexcept { event_skip_ = enabled; }
  [[nodiscard]] bool event_skip() const noexcept { return event_skip_; }

  /// Zero all statistics (start of a measured interval).
  void reset_stats();

  [[nodiscard]] SimMetrics metrics() const;

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Workload& workload() const noexcept { return workload_; }
  [[nodiscard]] const PolicySpec& policy() const noexcept { return policy_; }
  [[nodiscard]] const MemoryHierarchy& memory() const noexcept { return mem_; }
  [[nodiscard]] const SmtCore& core(CoreId c) const { return *cores_.at(c); }
  [[nodiscard]] std::uint32_t num_cores() const noexcept {
    return static_cast<std::uint32_t>(cores_.size());
  }
  [[nodiscard]] Cycle idle_cycles_skipped() const noexcept {
    return idle_skipped_;
  }

  /// True when built from ad-hoc BenchmarkProfiles rather than the
  /// SPEC2000 catalog. Such a chip cannot be reconstructed from a
  /// snapshot's workload codes, so snapshotting it is refused.
  [[nodiscard]] bool profile_built() const noexcept { return profile_built_; }

  /// Snapshot support (sim/snapshot.h wraps these in a versioned file
  /// format): serialize/restore every piece of mutable simulation state —
  /// clock, trace sources, memory hierarchy, cores, policies, stats.
  void save_state(ArchiveWriter& ar) const;
  void load_state(ArchiveReader& ar);

  /// Per-core local clock: while `asleep`, the core is not ticked and its
  /// cycle counter lags the chip clock from `slept_at` (the last cycle it
  /// was ticked or credited). `wake_at` is the policy's quiescence
  /// horizon; an event delivery wakes the core earlier. run() re-syncs
  /// every local clock to the chip clock at each interval boundary, so
  /// between run() calls `slept_at == now()` for sleeping cores.
  ///
  /// `event_check_at` is the hierarchy's per-core event horizon captured
  /// at sleep time (MemoryHierarchy::next_event_cycle_for): no event can
  /// reach this core earlier, so the scheduler skips even the buffer
  /// polling until then. A pure polling throttle — it is recomputed, not
  /// serialized; restoring it as 0 (always poll) is behaviour-identical.
  struct CoreClock {
    bool asleep = false;
    Cycle slept_at = 0;
    Cycle wake_at = kNeverCycle;
    Cycle event_check_at = 0;
  };
  [[nodiscard]] const CoreClock& core_clock(CoreId c) const {
    return clocks_.at(c);
  }

 private:
  void build(const std::vector<BenchmarkProfile>& profiles);
  void run_lockstep(Cycle end);

  SimConfig cfg_;        // lint: transient — ctor config; loader rebuilds chip
  Workload workload_;    // lint: transient — ctor config
  PolicySpec policy_;    // lint: transient — ctor config
  MemoryHierarchy mem_;
  std::vector<std::unique_ptr<SyntheticTraceSource>> sources_;
  std::vector<std::unique_ptr<SmtCore>> cores_;
  std::vector<CoreClock> clocks_;  ///< one local clock per core
  Cycle now_ = 0;
  Cycle idle_skipped_ = 0;  ///< core-cycles skipped by the event kernel
  // lint: transient — run mode, not state: skip on/off is metric-invariant
  bool event_skip_ = true;
  // lint: transient — set by build() in the ctor, before any load_state
  bool profile_built_ = false;
};

}  // namespace mflush
