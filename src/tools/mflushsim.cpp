/// mflushsim — command-line driver for the simulator.
///
///   mflushsim [options]
///     --workload NAME|CODES   paper workload (8W3) or code string (dlna)
///     --policy SPEC           icount | brcount | l1dmisscount | flush-sN |
///                             flush-ns | stall-sN | mflush[-np|-hN[max]]
///     --cycles N              measured cycles            (default 120000)
///     --warmup N              warm-up cycles             (default 30000)
///     --seed N                simulation seed            (default 1)
///     --csv                   machine-readable one-line output
///     --debug                 full component dump after the run
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/workloads.h"

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--workload NAME|CODES] [--policy SPEC] [--cycles N]\n"
         "       [--warmup N] [--seed N] [--csv] [--debug]\n\n"
         "workloads: 2W1..8W5 (Fig. 1), bzip2-twolf, or a string of\n"
         "benchmark codes (a=gzip .. z=mgrid), two per core.\n"
         "policies: icount, brcount, l1dmisscount, flush-s<N>, flush-ns,\n"
         "          stall-s<N>, mflush, mflush-np, mflush-h<N>[max|avg]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mflush;

  std::string workload_arg = "8W3";
  std::string policy_arg = "mflush";
  Cycle cycles = 120'000;
  Cycle warmup = 30'000;
  std::uint64_t seed = 1;
  bool csv = false;
  bool debug = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload_arg = value();
    } else if (arg == "--policy") {
      policy_arg = value();
    } else if (arg == "--cycles") {
      cycles = static_cast<Cycle>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--warmup") {
      warmup = static_cast<Cycle>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--debug") {
      debug = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  auto wl = workloads::by_name(workload_arg);
  if (!wl && workload_arg.size() % 2 == 0 && !workload_arg.empty()) {
    Workload w;
    w.name = workload_arg;
    for (const char c : workload_arg) w.codes.push_back(c);
    wl = w;
  }
  if (!wl) {
    std::cerr << "unknown workload: " << workload_arg << '\n';
    return 2;
  }
  const auto policy = PolicySpec::parse(policy_arg);
  if (!policy) {
    std::cerr << "unknown policy: " << policy_arg << '\n';
    return 2;
  }

  try {
    CmpSimulator sim(*wl, *policy, seed);
    sim.run(warmup);
    sim.reset_stats();
    sim.run(cycles);
    const SimMetrics m = sim.metrics();
    if (csv) {
      std::cout << "workload,policy,cycles,committed,ipc,flushes,"
                   "flushed_instrs,wasted_units,l2_hit_mean\n"
                << wl->name << ',' << policy->label() << ',' << m.cycles
                << ',' << m.committed << ',' << m.ipc << ','
                << m.flush_events << ',' << m.flushed_instructions << ','
                << m.energy.flush_wasted_units << ',' << m.l2_hit_time_mean
                << '\n';
    } else if (debug) {
      report::print_debug(std::cout, sim);
    } else {
      std::cout << report::summarize(
                       RunResult{wl->name, policy->label(), m})
                << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
