/// mflushsim — command-line driver for the simulator.
///
///   mflushsim [options]
///     --workload NAMES|CODES  paper workload (8W3) or code string (dlna);
///                             a comma-separated list sweeps every workload
///     --policy SPEC[,SPEC..]  icount | brcount | l1dmisscount | flush-sN |
///                             flush-ns | stall-sN | mflush[-np|-hN[max]];
///                             a comma-separated list sweeps every policy
///     --cycles N              measured cycles            (default 120000)
///     --warmup N              warm-up cycles             (default 30000)
///     --seed N                simulation seed            (default 1)
///     --jobs N                parallel width: pool threads (inprocess) or
///                             worker processes (worker backend)
///     --spec FILE             run an experiment spec file (text or binary)
///                             instead of describing the sweep with flags
///     --emit-spec FILE        write the flag-described sweep as a text
///                             spec file ("-" = stdout) and exit
///     --backend NAME          serial | inprocess (default) | worker |
///                             remote (batched distributed sweep over a
///                             host pool; see --hosts)
///     --campaign DIR          run the sweep durably: DIR holds the spec,
///                             a write-ahead journal of job state, and a
///                             content-addressed result cache, so a
///                             killed run resumes with --resume and jobs
///                             already cached (this campaign or an
///                             overlapping earlier spec) are not re-run
///     --resume                continue the campaign in --campaign DIR
///                             from its journal (spec comes from DIR;
///                             sweep flags are ignored)
///     --hosts FILE            host pool for --backend remote: one entry
///                             per line, `name [slots=N] [fail=N]
///                             [dir=PATH]`, `#` comments. `local` runs
///                             loopback subprocesses; any other name is an
///                             ssh destination (binary shipped once per
///                             host). Default: $MFLUSH_HOSTS (entries
///                             separated by commas), else one local host.
///     --warm-store DIR        content-addressed store of warmed parent
///                             snapshots for sampled specs: warm-up runs
///                             once per distinct (workload, policy, seed,
///                             warmup) parent and is reused across runs,
///                             specs and backends keyed by content hash
///                             (campaigns default to DIR/warm under the
///                             campaign directory)
///     --serve ADDR            run mflushd, the campaign coordinator: listen
///                             on ADDR (unix:PATH, a bare path, or
///                             host:port), accept spec submissions over the
///                             MFLUSNET wire protocol, and run each as a
///                             durable campaign under --data DIR — all
///                             tenants share one host pool, one warm store
///                             and one result cache, so overlapping
///                             submissions dedup. Killing the daemon loses
///                             nothing: on restart every journaled campaign
///                             resumes its delta. Requires --data; --hosts
///                             and --jobs shape the pool as for --backend
///                             remote (no hosts: in-process slots)
///     --data DIR              mflushd state root: DIR/campaigns/<id>/,
///                             DIR/cache (shared result cache), DIR/warm
///     --connect ADDR          client mode: talk to the mflushd at ADDR;
///                             combine with --submit / --status ID /
///                             --cancel ID / --list / --shutdown
///     --submit SPECFILE       submit the spec to the daemon; prints the
///                             campaign id, with --follow streams results
///                             back and exits 0 iff the campaign finishes
///     --follow                with --submit: stay attached until done,
///                             printing the same job-id-ordered report a
///                             local run would
///     --status ID             one-shot: print the campaign's progress
///     --cancel ID             ask the daemon to cancel a running campaign
///     --list                  print every campaign the daemon knows
///     --shutdown              drain running campaigns, then stop the daemon
///     --worker JOBFILE        worker mode: run a job file, write the
///                             result file, exit (the worker/remote
///                             backend subprocess entry point)
///     --worker-out FILE       result path for --worker
///                             (default JOBFILE.result)
///     --worker-parts          with --worker: also write each measured
///                             job's result to FILE.r<id> as it lands
///                             (streaming transports watch these)
///     --worker-store DIR      host-side warm store for --worker: embedded
///                             parent snapshots are installed here and
///                             by-hash forks resolve from here (set by
///                             RemoteBackend, rarely by hand)
///     --worker-bin PATH       worker binary for --backend worker/remote
///                             (default: this executable)
///     --list-workloads        print the Fig. 1 workload catalog and exit
///     --list-policies         print the policy registry and exit
///     --save-snapshot PATH    warm up, checkpoint the chip to PATH, then
///                             measure as usual (single-point runs only)
///     --load-snapshot PATH    restore the chip from PATH (skips warm-up;
///                             workload/policy/seed come from the file)
///     --no-event-skip         force lockstep execution (disable the
///                             event kernel's idle skip; A/B audits —
///                             results are bit-identical either way)
///     --csv                   machine-readable one-line-per-run output
///     --debug                 full component dump after the run
///                             (single-point runs only)
#include <charconv>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/campaign.h"
#include "sim/cmp.h"
#include "sim/daemon.h"
#include "sim/parallel.h"
#include "sim/remote.h"
#include "sim/report.h"
#include "sim/snapshot.h"
#include "sim/warmstore.h"
#include "sim/workloads.h"

namespace {

using namespace mflush;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--workload NAMES|CODES] [--policy SPEC[,SPEC...]] [--cycles N]\n"
         "       [--warmup N] [--seed N] [--jobs N] [--spec FILE]\n"
         "       [--emit-spec FILE|-]\n"
         "       [--backend serial|inprocess|worker|remote] [--hosts FILE]\n"
         "       [--campaign DIR [--resume]] [--warm-store DIR]\n"
         "       [--serve ADDR --data DIR [--hosts FILE] [--jobs N]]\n"
         "       [--connect ADDR (--submit SPEC [--follow] | --status ID |\n"
         "                        --cancel ID | --list | --shutdown)]\n"
         "       [--worker JOBFILE [--worker-out FILE] [--worker-store "
         "DIR]\n"
         "        [--worker-parts]]\n"
         "       [--worker-bin PATH]\n"
         "       [--list-workloads] [--list-policies]\n"
         "       [--save-snapshot PATH] [--load-snapshot PATH]\n"
         "       [--no-event-skip] [--csv] [--debug]\n\n"
         "see --list-workloads / --list-policies for what can go in a\n"
         "sweep or spec file. --backend remote fans batches of jobs over\n"
         "the --hosts pool (or $MFLUSH_HOSTS; default one local host):\n"
         "`name [slots=N] [fail=N] [dir=PATH]` per entry, where `local`\n"
         "runs loopback subprocesses and any other name is an ssh\n"
         "destination (worker binary shipped once per host). Failed\n"
         "batches re-queue onto healthy hosts with bounded retries.\n"
         "--campaign DIR journals every job durably and caches results by\n"
         "content, so a crashed or killed sweep continues with --resume\n"
         "(finished jobs replay from the cache, bit-identical) and an\n"
         "overlapping later spec pays only for its new jobs. --warm-store\n"
         "DIR reuses sampled-mode warm-up state across runs and specs by\n"
         "content hash (campaigns default to DIR/warm). --serve ADDR runs\n"
         "mflushd, a coordinator that multiplexes submitted specs onto one\n"
         "shared pool as durable campaigns under --data DIR; --connect\n"
         "ADDR with --submit/--status/--cancel/--list/--shutdown talks to\n"
         "it.\n";
}

void print_results(const std::vector<RunResult>& results, bool csv) {
  if (csv) {
    std::cout << "workload,policy,cycles,committed,ipc,flushes,"
                 "flushed_instrs,wasted_units,l2_hit_mean,wall_s\n";
    for (const RunResult& r : results) {
      const SimMetrics& m = r.metrics;
      std::cout << r.workload << ',' << r.policy << ',' << m.cycles << ','
                << m.committed << ',' << m.ipc << ',' << m.flush_events
                << ',' << m.flushed_instructions << ','
                << m.energy.flush_wasted_units << ',' << m.l2_hit_time_mean
                << ',' << r.wall_seconds << '\n';
    }
  } else {
    for (const RunResult& r : results)
      std::cout << report::summarize(r) << '\n';
  }
}

int list_workloads() {
  Table table({"name", "threads", "cores", "benchmarks"});
  for (const Workload& w : workloads::all()) {
    table.add_row({w.name, std::to_string(w.num_threads()),
                   std::to_string(w.num_cores()), w.describe()});
  }
  const Workload special = workloads::bzip2_twolf_special();
  table.add_row({"bzip2-twolf", std::to_string(special.num_threads()),
                 std::to_string(special.num_cores()), special.describe()});
  table.print(std::cout);
  std::cout << "\nAd-hoc workloads: any even-length string of benchmark\n"
               "codes (two per core), e.g. --workload dlna.\n";
  return 0;
}

int list_policies() {
  Table table({"syntax", "example", "description"});
  for (const PolicyFamily& f : policy_families()) {
    table.add_row({std::string(f.syntax), std::string(f.example),
                   std::string(f.description)});
  }
  table.print(std::cout);
  std::cout << "\nThese tokens are valid for --policy and for 'policy'\n"
               "lines in experiment spec files (--spec).\n";
  return 0;
}

std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> out;
  for (std::size_t pos = 0; pos <= list.size();) {
    const std::size_t comma = list.find(',', pos);
    out.push_back(list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // The worker-binary discovery fallback for platforms without
  // /proc/self/exe (and for renamed tool binaries).
  record_argv0(argv[0]);

  std::string workload_arg = "8W3";
  std::string policy_arg = "mflush";
  std::string spec_file;
  std::string emit_spec;
  std::string backend_arg = "inprocess";
  std::string worker_job;
  std::string worker_out;
  std::string worker_store;
  std::string worker_bin;
  std::string hosts_file;
  std::string campaign_dir;
  std::string warm_store_dir;
  std::string serve_addr;
  std::string data_dir;
  std::string connect_addr;
  std::string submit_spec;
  std::string status_id;
  std::string cancel_id;
  bool follow = false;
  bool list_campaigns = false;
  bool shutdown_daemon = false;
  bool worker_parts = false;
  bool resume = false;
  std::string save_snapshot;
  std::string load_snapshot;
  Cycle cycles = 120'000;
  Cycle warmup = 30'000;
  std::uint64_t seed = 1;
  unsigned jobs = 0;  // 0 = default (MFLUSH_JOBS / hardware threads)
  bool csv = false;
  bool debug = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload_arg = value();
    } else if (arg == "--policy") {
      policy_arg = value();
    } else if (arg == "--cycles") {
      cycles = static_cast<Cycle>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--warmup") {
      warmup = static_cast<Cycle>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--jobs") {
      // Reject anything but a positive integer outright: 0 or garbage
      // would silently fall back to a default and mask the typo.
      const std::string_view s = value();
      unsigned v = 0;
      const auto [ptr, ec] =
          std::from_chars(s.data(), s.data() + s.size(), v);
      if (ec != std::errc{} || ptr != s.data() + s.size() || v == 0) {
        std::cerr << "error: --jobs expects a positive integer, got '" << s
                  << "'\n";
        return 2;
      }
      jobs = v;
    } else if (arg == "--spec") {
      spec_file = value();
    } else if (arg == "--emit-spec") {
      emit_spec = value();
    } else if (arg == "--backend") {
      backend_arg = value();
    } else if (arg == "--worker") {
      worker_job = value();
    } else if (arg == "--worker-out") {
      worker_out = value();
    } else if (arg == "--worker-store") {
      worker_store = value();
    } else if (arg == "--worker-bin") {
      worker_bin = value();
    } else if (arg == "--worker-parts") {
      worker_parts = true;
    } else if (arg == "--serve") {
      serve_addr = value();
    } else if (arg == "--data") {
      data_dir = value();
    } else if (arg == "--connect") {
      connect_addr = value();
    } else if (arg == "--submit") {
      submit_spec = value();
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--status") {
      status_id = value();
    } else if (arg == "--cancel") {
      cancel_id = value();
    } else if (arg == "--list") {
      list_campaigns = true;
    } else if (arg == "--shutdown") {
      shutdown_daemon = true;
    } else if (arg == "--hosts") {
      hosts_file = value();
    } else if (arg == "--campaign") {
      campaign_dir = value();
    } else if (arg == "--warm-store") {
      warm_store_dir = value();
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--list-workloads") {
      return list_workloads();
    } else if (arg == "--list-policies") {
      return list_policies();
    } else if (arg == "--save-snapshot") {
      save_snapshot = value();
    } else if (arg == "--load-snapshot") {
      load_snapshot = value();
    } else if (arg == "--no-event-skip") {
      // Every CmpSimulator (including those built inside worker
      // subprocesses, which inherit the environment) reads this on
      // construction.
      setenv("MFLUSH_NO_EVENT_SKIP", "1", 1);
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--debug") {
      debug = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  // Worker mode: the WorkerBackend subprocess entry point. Everything the
  // run needs is inside the job file.
  if (!worker_job.empty()) {
    return worker::run_worker(
        worker_job, worker_out.empty() ? worker_job + ".result" : worker_out,
        worker_store, worker_parts);
  }

  // ------------------------------------------------------- mflushd server
  if (!serve_addr.empty()) {
    if (data_dir.empty()) {
      std::cerr << "error: --serve needs --data DIR (durable state root)\n";
      return 2;
    }
    try {
      daemon::ServeOptions o;
      o.address = serve_addr;
      o.data_dir = data_dir;
      o.worker_binary = worker_bin;
      o.slots = jobs;
      if (!hosts_file.empty()) o.hosts = remote::read_hosts_file(hosts_file);
      o.on_event = report::event_printer(std::cerr, "mflushd: ");
      return daemon::serve(std::move(o));
    } catch (const std::exception& e) {
      std::cerr << "mflushd: error: " << e.what() << '\n';
      return 1;
    }
  }

  // ------------------------------------------------------- mflushd client
  if (!connect_addr.empty()) {
    try {
      if (!submit_spec.empty()) {
        const ExperimentSpec spec = ExperimentSpec::read_file(submit_spec);
        const daemon::SubmitOutcome out = daemon::submit(
            connect_addr, spec, follow,
            report::event_printer(std::cerr, "mflushd client: "));
        if (out.state == "finished") print_results(out.results, csv);
        std::cerr << "mflushd client: campaign " << out.campaign << ' '
                  << out.state << ": " << out.executed << " executed, "
                  << out.cached << " cached, " << out.results.size()
                  << " result(s)\n";
        if (!follow) return 0;
        return out.state == "finished" ? 0 : 1;
      }
      daemon::Message req;
      if (!status_id.empty()) {
        req.type = daemon::MsgType::kStatus;
        req.campaign = status_id;
      } else if (!cancel_id.empty()) {
        req.type = daemon::MsgType::kCancel;
        req.campaign = cancel_id;
      } else if (list_campaigns) {
        req.type = daemon::MsgType::kList;
      } else if (shutdown_daemon) {
        req.type = daemon::MsgType::kShutdown;
      } else {
        std::cerr << "error: --connect needs one of --submit/--status/"
                     "--cancel/--list/--shutdown\n";
        return 2;
      }
      const daemon::Message reply = daemon::request(connect_addr, req);
      if (reply.type == daemon::MsgType::kError) {
        std::cerr << "mflushd: " << reply.text << '\n';
        return 1;
      }
      if (reply.type == daemon::MsgType::kStatusReply) {
        std::cout << "campaign " << reply.campaign << ": " << reply.text
                  << ", " << reply.done << '/' << reply.total << " done ("
                  << reply.executed << " executed, " << reply.cached
                  << " cached)\n";
      } else if (!reply.text.empty()) {
        std::cout << reply.text << '\n';
      }
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
  }
  if (!submit_spec.empty() || !status_id.empty() || !cancel_id.empty() ||
      list_campaigns || shutdown_daemon) {
    std::cerr << "error: client requests need --connect ADDR\n";
    return 2;
  }

  try {
    // ---------------------------------------------------- spec assembly
    ExperimentSpec spec;
    if (!spec_file.empty()) {
      spec = ExperimentSpec::read_file(spec_file);
    } else {
      spec.name = "mflushsim";
      for (const std::string& token : split_commas(workload_arg)) {
        const auto w = workloads::resolve(token);
        if (!w) {
          std::cerr << "unknown workload: " << token
                    << " (see --list-workloads)\n";
          return 2;
        }
        spec.workloads.push_back(*w);
      }
      spec.policies.clear();
      for (const std::string& token : split_commas(policy_arg)) {
        const auto p = PolicySpec::parse(token);
        if (!p) {
          std::cerr << "unknown policy: " << token << '\n';
          return 2;
        }
        spec.policies.push_back(*p);
      }
      spec.seeds = {seed};
      spec.warmup = warmup;
      spec.measure = cycles;
    }

    if (!emit_spec.empty()) {
      if (emit_spec == "-") {
        spec.validate();
        std::cout << spec.to_text();
      } else {
        spec.write_file(emit_spec);
      }
      return 0;
    }

    // --------------------------------------------------- durable campaign
    if (resume && campaign_dir.empty()) {
      std::cerr << "error: --resume needs --campaign DIR\n";
      return 2;
    }
    std::optional<CampaignStore> store;
    if (!campaign_dir.empty()) {
      if (debug || !save_snapshot.empty() || !load_snapshot.empty()) {
        std::cerr << "error: --campaign drives a backend sweep; it cannot "
                     "combine with --debug/--save-snapshot/--load-snapshot\n";
        return 2;
      }
      CampaignStore::Options copts;
      copts.on_event = report::event_printer(std::cerr, "campaign: ");
      if (resume) {
        store.emplace(CampaignStore::resume(campaign_dir, std::move(copts)));
        if (!spec_file.empty() &&
            spec.to_bytes() != store->spec().to_bytes()) {
          std::cerr << "error: --resume runs the campaign's archived spec, "
                       "but the given --spec differs from it (drop --spec, "
                       "or start a fresh campaign with the new one)\n";
          return 2;
        }
        spec = store->spec();
      } else {
        store.emplace(
            CampaignStore::create(campaign_dir, spec, std::move(copts)));
      }
    }

    // -------------------------------------------------------- warm store
    // Campaigns warm durably by default: the store rides inside the
    // campaign directory unless --warm-store points elsewhere.
    if (warm_store_dir.empty() && !campaign_dir.empty()) {
      warm_store_dir =
          (std::filesystem::path(campaign_dir) / "warm").string();
    }
    std::optional<WarmStore> warm;
    RunOptions ropts;
    if (spec.mode == RunMode::Sampled) {
      if (!warm_store_dir.empty()) {
        WarmStore::Options wopts;
        wopts.on_event = report::event_printer(std::cerr, "warm-store: ");
        warm.emplace(warm_store_dir, std::move(wopts));
        ropts.warm_store = &*warm;
      }
      ropts.on_event = report::event_printer(std::cerr, "warm-store: ");
    }

    const std::size_t num_jobs =
        spec.mode == RunMode::Sampled ? spec.num_points() * spec.sampled.forks
                                      : spec.num_points();
    // With the stopping rule active the job count grows round by round, so
    // the progress denominator is unknown up front (printed as "?").
    const bool adaptive = spec.mode == RunMode::Sampled &&
                          spec.sampled.target_half_width > 0.0;

    // ------------------------------------------------- single-point paths
    if (!save_snapshot.empty() && !load_snapshot.empty()) {
      std::cerr << "--save-snapshot and --load-snapshot are exclusive\n";
      return 2;
    }
    if (!load_snapshot.empty()) {
      // The snapshot embeds (config, workload, policy): restore and jump
      // straight into the measured interval, no warm-up.
      const auto t0 = std::chrono::steady_clock::now();
      const auto sim = snapshot::load_file(load_snapshot);
      sim->reset_stats();
      sim->run(cycles);
      RunResult r{sim->workload().name, sim->policy().label(),
                  sim->metrics()};
      r.simulated_cycles = cycles;
      r.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      print_results({r}, csv);
      if (debug) report::print_debug(std::cout, *sim);
      return 0;
    }
    if (debug || !save_snapshot.empty()) {
      if (num_jobs > 1) {
        // Without this check, each policy of a sweep would checkpoint to
        // the same file (last writer wins), and the component dump only
        // covers one chip.
        std::cerr << "error: --debug / --save-snapshot need a single-point "
                     "run (one workload, one policy, one seed)\n";
        return 2;
      }
      const auto t0 = std::chrono::steady_clock::now();
      CmpSimulator sim(spec.workloads.front(), spec.policies.front(),
                       spec.seeds.front());
      sim.run(spec.warmup);
      if (!save_snapshot.empty()) snapshot::save_file(save_snapshot, sim);
      sim.reset_stats();
      sim.run(spec.measure);
      if (!save_snapshot.empty()) {
        RunResult r{sim.workload().name, sim.policy().label(),
                    sim.metrics()};
        r.simulated_cycles = spec.warmup + spec.measure;
        r.wall_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        print_results({r}, csv);
      }
      if (debug) report::print_debug(std::cout, sim);
      return 0;
    }

    // ----------------------------------------------------- backend sweep
    std::unique_ptr<ParallelRunner> pool;  // only for an explicit --jobs
    std::unique_ptr<ExperimentBackend> backend;
    if (backend_arg == "serial") {
      backend = std::make_unique<SerialBackend>();
    } else if (backend_arg == "inprocess") {
      if (jobs != 0) {
        pool = std::make_unique<ParallelRunner>(jobs);
        backend = std::make_unique<InProcessBackend>(*pool);
      } else {
        backend = std::make_unique<InProcessBackend>();
      }
    } else if (backend_arg == "worker") {
      WorkerBackend::Options opts;
      opts.worker_binary = worker_bin;
      opts.max_processes = jobs;
      opts.warm_store = ropts.warm_store;
      // Narrate retries to stderr: a transient worker crash must leave a
      // trace even though the sweep survives it.
      opts.on_event = report::event_printer(std::cerr);
      backend = std::make_unique<WorkerBackend>(std::move(opts));
    } else if (backend_arg == "remote") {
      RemoteBackend::Options opts;
      opts.worker_binary = worker_bin;
      opts.hosts = !hosts_file.empty() ? remote::read_hosts_file(hosts_file)
                                       : remote::hosts_from_env();
      if (opts.hosts.empty() && jobs != 0) {
        // No pool described: loopback fan-out, --jobs concurrent workers.
        remote::HostSpec local;
        local.name = "local";
        local.slots = jobs;
        opts.hosts.push_back(local);
      }
      opts.on_event = report::event_printer(std::cerr);
      opts.warm_store = ropts.warm_store;
      backend = std::make_unique<RemoteBackend>(std::move(opts));
    } else {
      std::cerr << "unknown backend: " << backend_arg
                << " (serial, inprocess, worker, remote)\n";
      return 2;
    }

    // Stream progress to stderr for long sweeps; stdout stays a
    // deterministic job-id-ordered report either way.
    ResultSink sink(num_jobs > 1 && !csv
                        ? report::progress_printer(std::cerr,
                                                   adaptive ? 0 : num_jobs)
                        : ResultSink::OnResult{});
    print_results(store
                      ? run_experiment_durable(*store, *backend, sink, ropts)
                      : run_experiment(spec, *backend, sink, ropts),
                  csv);
    if (warm) std::cerr << report::summarize(warm->stats()) << '\n';
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
