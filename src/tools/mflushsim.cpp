/// mflushsim — command-line driver for the simulator.
///
///   mflushsim [options]
///     --workload NAME|CODES   paper workload (8W3) or code string (dlna)
///     --policy SPEC[,SPEC..]  icount | brcount | l1dmisscount | flush-sN |
///                             flush-ns | stall-sN | mflush[-np|-hN[max]];
///                             a comma-separated list sweeps every policy
///                             in parallel
///     --cycles N              measured cycles            (default 120000)
///     --warmup N              warm-up cycles             (default 30000)
///     --seed N                simulation seed            (default 1)
///     --jobs N                sweep threads (default MFLUSH_JOBS or all
///                             hardware threads)
///     --save-snapshot PATH    warm up, checkpoint the chip to PATH, then
///                             measure as usual (single-policy runs only)
///     --load-snapshot PATH    restore the chip from PATH (skips warm-up;
///                             workload/policy/seed come from the file)
///     --no-event-skip         force lockstep execution (disable the
///                             event kernel's idle skip; A/B audits —
///                             results are bit-identical either way)
///     --csv                   machine-readable one-line-per-run output
///     --debug                 full component dump after the run
///                             (single-policy runs only)
#include <charconv>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/parallel.h"
#include "sim/report.h"
#include "sim/snapshot.h"
#include "sim/workloads.h"

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--workload NAME|CODES] [--policy SPEC[,SPEC...]] [--cycles N]\n"
         "       [--warmup N] [--seed N] [--jobs N] [--save-snapshot PATH]\n"
         "       [--load-snapshot PATH] [--no-event-skip] [--csv] [--debug]\n\n"
         "workloads: 2W1..8W5 (Fig. 1), bzip2-twolf, or a string of\n"
         "benchmark codes (a=gzip .. z=mgrid), two per core.\n"
         "policies: icount, brcount, l1dmisscount, flush-s<N>, flush-ns,\n"
         "          stall-s<N>, mflush, mflush-np, mflush-h<N>[max|avg]\n"
         "a comma-separated --policy list runs as a parallel sweep.\n";
}

void print_results(const std::vector<mflush::RunResult>& results, bool csv) {
  using namespace mflush;
  if (csv) {
    std::cout << "workload,policy,cycles,committed,ipc,flushes,"
                 "flushed_instrs,wasted_units,l2_hit_mean,wall_s\n";
    for (const RunResult& r : results) {
      const SimMetrics& m = r.metrics;
      std::cout << r.workload << ',' << r.policy << ',' << m.cycles << ','
                << m.committed << ',' << m.ipc << ',' << m.flush_events
                << ',' << m.flushed_instructions << ','
                << m.energy.flush_wasted_units << ',' << m.l2_hit_time_mean
                << ',' << r.wall_seconds << '\n';
    }
  } else {
    for (const RunResult& r : results)
      std::cout << report::summarize(r) << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mflush;

  std::string workload_arg = "8W3";
  std::string policy_arg = "mflush";
  std::string save_snapshot;
  std::string load_snapshot;
  Cycle cycles = 120'000;
  Cycle warmup = 30'000;
  std::uint64_t seed = 1;
  unsigned jobs = 0;  // 0 = ParallelRunner default (MFLUSH_JOBS / hardware)
  bool csv = false;
  bool debug = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload_arg = value();
    } else if (arg == "--policy") {
      policy_arg = value();
    } else if (arg == "--cycles") {
      cycles = static_cast<Cycle>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--warmup") {
      warmup = static_cast<Cycle>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--jobs") {
      // Reject anything but a positive integer outright: 0 or garbage
      // would silently fall back to a default and mask the typo.
      const std::string_view s = value();
      unsigned v = 0;
      const auto [ptr, ec] =
          std::from_chars(s.data(), s.data() + s.size(), v);
      if (ec != std::errc{} || ptr != s.data() + s.size() || v == 0) {
        std::cerr << "error: --jobs expects a positive integer, got '" << s
                  << "'\n";
        return 2;
      }
      jobs = v;
    } else if (arg == "--save-snapshot") {
      save_snapshot = value();
    } else if (arg == "--load-snapshot") {
      load_snapshot = value();
    } else if (arg == "--no-event-skip") {
      // Every CmpSimulator (including those built inside the parallel
      // sweep) reads this on construction.
      setenv("MFLUSH_NO_EVENT_SKIP", "1", 1);
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--debug") {
      debug = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  auto wl = workloads::by_name(workload_arg);
  if (!wl && workload_arg.size() % 2 == 0 && !workload_arg.empty()) {
    Workload w;
    w.name = workload_arg;
    for (const char c : workload_arg) w.codes.push_back(c);
    wl = w;
  }
  if (!wl) {
    std::cerr << "unknown workload: " << workload_arg << '\n';
    return 2;
  }
  // A comma-separated --policy list becomes a parallel sweep.
  std::vector<PolicySpec> policies;
  for (std::size_t pos = 0; pos <= policy_arg.size();) {
    const std::size_t comma = policy_arg.find(',', pos);
    const std::string one =
        policy_arg.substr(pos, comma == std::string::npos ? std::string::npos
                                                          : comma - pos);
    const auto p = PolicySpec::parse(one);
    if (!p) {
      std::cerr << "unknown policy: " << one << '\n';
      return 2;
    }
    policies.push_back(*p);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (!save_snapshot.empty() && policies.size() > 1) {
    // Without this check, each policy of the sweep would checkpoint to the
    // same file and the last writer would win silently.
    std::cerr << "error: --save-snapshot with a multi-policy sweep would "
                 "write every policy's chip to the same file (last one "
                 "wins); run one --policy per snapshot\n";
    return 2;
  }
  if (debug && policies.size() > 1) {
    std::cerr << "error: --debug needs a single policy (the component dump "
                 "covers one chip)\n";
    return 2;
  }
  if (!save_snapshot.empty() && !load_snapshot.empty()) {
    std::cerr << "--save-snapshot and --load-snapshot are exclusive\n";
    return 2;
  }

  try {
    if (!load_snapshot.empty()) {
      // The snapshot embeds (config, workload, policy): restore and jump
      // straight into the measured interval, no warm-up.
      const auto t0 = std::chrono::steady_clock::now();
      const auto sim = snapshot::load_file(load_snapshot);
      sim->reset_stats();
      sim->run(cycles);
      RunResult r{sim->workload().name, sim->policy().label(),
                  sim->metrics()};
      r.simulated_cycles = cycles;
      r.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      print_results({r}, csv);
      if (debug) report::print_debug(std::cout, *sim);
      return 0;
    }
    if (debug || !save_snapshot.empty()) {
      const auto t0 = std::chrono::steady_clock::now();
      CmpSimulator sim(*wl, policies.front(), seed);
      sim.run(warmup);
      if (!save_snapshot.empty()) snapshot::save_file(save_snapshot, sim);
      sim.reset_stats();
      sim.run(cycles);
      if (!save_snapshot.empty()) {
        RunResult r{sim.workload().name, sim.policy().label(),
                    sim.metrics()};
        r.simulated_cycles = warmup + cycles;
        r.wall_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        print_results({r}, csv);
      }
      if (debug) report::print_debug(std::cout, sim);
      return 0;
    }
    ParallelRunner runner(jobs);
    std::vector<SweepPoint> points;
    points.reserve(policies.size());
    for (const PolicySpec& p : policies)
      points.push_back({*wl, p, seed, warmup, cycles});
    print_results(runner.run(points), csv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
