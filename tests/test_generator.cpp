#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/generator.h"
#include "trace/spec2000.h"

namespace mflush {
namespace {

BenchmarkProfile test_profile() {
  return *spec2000::by_name("gzip");
}

TEST(Generator, DeterministicForSameSeed) {
  SyntheticTraceSource a(test_profile(), 42, 1024, 0);
  SyntheticTraceSource b(test_profile(), 42, 1024, 0);
  for (SeqNo s = 0; s < 5000; ++s) {
    const TraceInstr& x = a.at(s);
    const TraceInstr& y = b.at(s);
    ASSERT_EQ(x.pc, y.pc) << s;
    ASSERT_EQ(x.cls, y.cls) << s;
    ASSERT_EQ(x.eff_addr, y.eff_addr) << s;
    ASSERT_EQ(x.taken, y.taken) << s;
    ASSERT_EQ(x.dst, y.dst) << s;
  }
}

TEST(Generator, SeedsDiverge) {
  SyntheticTraceSource a(test_profile(), 1, 1024, 0);
  SyntheticTraceSource b(test_profile(), 2, 1024, 0);
  int diff = 0;
  for (SeqNo s = 0; s < 1000; ++s)
    if (a.at(s).eff_addr != b.at(s).eff_addr || a.at(s).pc != b.at(s).pc)
      ++diff;
  EXPECT_GT(diff, 100);
}

TEST(Generator, SpaceIdsAreDisjointAddressSpaces) {
  SyntheticTraceSource a(test_profile(), 1, 1024, 0);
  SyntheticTraceSource b(test_profile(), 1, 1024, 1);
  std::set<Addr> lines_a, lines_b;
  for (SeqNo s = 0; s < 5000; ++s) {
    if (a.at(s).is_memory()) lines_a.insert(a.at(s).eff_addr >> 6);
    if (b.at(s).is_memory()) lines_b.insert(b.at(s).eff_addr >> 6);
  }
  for (const Addr l : lines_a) EXPECT_EQ(lines_b.count(l), 0u);
}

TEST(Generator, RewindWithinWindowReproduces) {
  SyntheticTraceSource src(test_profile(), 7, 512, 0);
  std::vector<TraceInstr> first;
  for (SeqNo s = 0; s < 400; ++s) first.push_back(src.at(s));
  // Walk ahead, then re-read the same range (FLUSH re-fetch pattern).
  for (SeqNo s = 400; s < 500; ++s) (void)src.at(s);
  for (SeqNo s = 100; s < 400; ++s) {
    const TraceInstr& again = src.at(s);
    EXPECT_EQ(again.pc, first[s].pc);
    EXPECT_EQ(again.eff_addr, first[s].eff_addr);
    EXPECT_EQ(again.taken, first[s].taken);
  }
}

TEST(Generator, ClassIsStablePerPc) {
  SyntheticTraceSource src(test_profile(), 3, 2048, 0);
  std::map<Addr, InstrClass> seen;
  for (SeqNo s = 0; s < 30000; ++s) {
    const TraceInstr& i = src.at(s);
    src.retire_up_to(s > 1500 ? s - 1500 : 0);
    const auto it = seen.find(i.pc);
    if (it == seen.end()) {
      seen.emplace(i.pc, i.cls);
    } else {
      ASSERT_EQ(it->second, i.cls) << "pc " << std::hex << i.pc;
    }
  }
  EXPECT_GT(seen.size(), 100u);  // the walk visits a real footprint
}

TEST(Generator, BranchTargetsAreStablePerPc) {
  SyntheticTraceSource src(test_profile(), 3, 2048, 0);
  std::map<Addr, Addr> targets;
  for (SeqNo s = 0; s < 30000; ++s) {
    const TraceInstr& i = src.at(s);
    src.retire_up_to(s > 1500 ? s - 1500 : 0);
    if (i.cls == InstrClass::Branch && i.taken) {
      const auto it = targets.find(i.pc);
      if (it == targets.end()) {
        targets.emplace(i.pc, i.target);
      } else {
        ASSERT_EQ(it->second, i.target);
      }
    }
  }
  EXPECT_GT(targets.size(), 10u);
}

TEST(Generator, MixApproximatesProfile) {
  const auto p = test_profile();
  SyntheticTraceSource src(p, 5, 2048, 0);
  const SeqNo n = 100000;
  std::uint64_t loads = 0, stores = 0, branches = 0;
  for (SeqNo s = 0; s < n; ++s) {
    const TraceInstr& i = src.at(s);
    src.retire_up_to(s > 1500 ? s - 1500 : 0);
    if (i.cls == InstrClass::Load) ++loads;
    if (i.cls == InstrClass::Store) ++stores;
    if (i.cls == InstrClass::Branch) ++branches;
  }
  // Dynamic mix tracks the static mix loosely (hot loops bias it).
  EXPECT_NEAR(static_cast<double>(loads) / n, p.f_load, 0.10);
  EXPECT_NEAR(static_cast<double>(stores) / n, p.f_store, 0.08);
}

TEST(Generator, AddressesFallInDeclaredRegions) {
  SyntheticTraceSource src(test_profile(), 5, 2048, 0);
  const auto r = src.regions();
  for (SeqNo s = 0; s < 20000; ++s) {
    const TraceInstr& i = src.at(s);
    src.retire_up_to(s > 1500 ? s - 1500 : 0);
    // Code stays inside the code region.
    ASSERT_GE(i.pc, r.code_base);
    ASSERT_LT(i.pc, r.code_base + static_cast<Addr>(r.code_lines) * 64);
  }
}

TEST(Generator, ControlOpsHaveConsistentTargets) {
  SyntheticTraceSource src(test_profile(), 11, 2048, 0);
  for (SeqNo s = 0; s < 20000; ++s) {
    const TraceInstr& i = src.at(s);
    src.retire_up_to(s > 1500 ? s - 1500 : 0);
    if (i.cls == InstrClass::Branch) {
      if (!i.taken) { ASSERT_EQ(i.target, i.pc + 4); }
    }
    if (i.cls == InstrClass::Call || i.cls == InstrClass::Return) {
      ASSERT_TRUE(i.taken);
      ASSERT_NE(i.target, 0u);
    }
  }
}

TEST(Generator, ReturnsMatchCallSites) {
  // Returns must target (call pc + 4) of a prior call — shadow-stack
  // discipline. Track our own stack and compare.
  SyntheticTraceSource src(test_profile(), 13, 2048, 0);
  std::vector<Addr> stack;
  for (SeqNo s = 0; s < 50000; ++s) {
    const TraceInstr& i = src.at(s);
    src.retire_up_to(s > 1500 ? s - 1500 : 0);
    if (i.cls == InstrClass::Call) {
      if (stack.size() < 64) stack.push_back(i.pc + 4);
    } else if (i.cls == InstrClass::Return) {
      if (!stack.empty()) {
        EXPECT_EQ(i.target, stack.back());
        stack.pop_back();
      }
    }
  }
}

TEST(Generator, LoadsHaveDestinations) {
  SyntheticTraceSource src(test_profile(), 17, 2048, 0);
  for (SeqNo s = 0; s < 5000; ++s) {
    const TraceInstr& i = src.at(s);
    if (i.cls == InstrClass::Load) {
      ASSERT_TRUE(i.has_dst());
      ASSERT_LT(i.dst, 32);  // loads write int registers
      ASSERT_NE(i.eff_addr, 0u);
    }
    if (i.cls == InstrClass::Store) {
      ASSERT_FALSE(i.has_dst());
      ASSERT_NE(i.src[0], kNoLogReg);
      ASSERT_NE(i.src[1], kNoLogReg);
    }
  }
}

TEST(Generator, FpOpsUseFpRegisters) {
  const auto p = *spec2000::by_name("swim");
  SyntheticTraceSource src(p, 19, 2048, 0);
  for (SeqNo s = 0; s < 10000; ++s) {
    const TraceInstr& i = src.at(s);
    src.retire_up_to(s > 1500 ? s - 1500 : 0);
    if (is_fp(i.cls)) {
      ASSERT_GE(i.dst, 32);
      ASSERT_GE(i.src[0], 32);
    }
  }
}

TEST(Generator, PointerChaserCreatesLoadLoadDependencies) {
  const auto p = *spec2000::by_name("mcf");
  SyntheticTraceSource src(p, 23, 2048, 0);
  LogReg last_load_dst = kNoLogReg;
  std::uint64_t chases = 0, loads = 0;
  for (SeqNo s = 0; s < 50000; ++s) {
    const TraceInstr& i = src.at(s);
    src.retire_up_to(s > 1500 ? s - 1500 : 0);
    if (i.cls == InstrClass::Load) {
      ++loads;
      if (last_load_dst != kNoLogReg && i.src[0] == last_load_dst) ++chases;
      last_load_dst = i.dst;
    }
  }
  // mcf must exhibit a substantial chase fraction (profile: 0.45 across
  // both strands; the same-register check sees a fraction of that).
  EXPECT_GT(static_cast<double>(chases) / static_cast<double>(loads), 0.05);
}

TEST(Generator, RegionsAccessorIsConsistent) {
  const auto p = test_profile();
  SyntheticTraceSource src(p, 1, 1024, 5);
  const auto r = src.regions();
  EXPECT_EQ(r.hot_lines, p.normalized().hot_lines);
  EXPECT_EQ(r.l2_lines, p.normalized().l2_lines);
  EXPECT_EQ(r.code_lines, p.normalized().icache_lines);
  EXPECT_NE(r.hot_base, r.l2_base);
}

TEST(Generator, NameComesFromProfile) {
  SyntheticTraceSource src(test_profile(), 1, 1024, 0);
  EXPECT_STREQ(src.name(), "gzip");
}

}  // namespace
}  // namespace mflush
