#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/archive.h"
#include "common/rng.h"
#include "common/wheel.h"

namespace mflush {
namespace {

// ---------------------------------------------------------------- basics

TEST(WakeupWheel, PopsExactlyAtDueCycle) {
  WakeupWheel<int> wheel(16);
  wheel.schedule(5, 0, 42);
  wheel.schedule(7, 0, 43);
  std::vector<int> out;
  for (Cycle now = 1; now <= 4; ++now) {
    wheel.pop_due(now, out);
    EXPECT_TRUE(out.empty()) << "cycle " << now;
  }
  wheel.pop_due(5, out);
  EXPECT_EQ(out, (std::vector<int>{42}));
  out.clear();
  wheel.pop_due(6, out);
  EXPECT_TRUE(out.empty());
  wheel.pop_due(7, out);
  EXPECT_EQ(out, (std::vector<int>{43}));
  EXPECT_TRUE(wheel.empty());
}

TEST(WakeupWheel, SameCycleKeepsFifoOrder) {
  WakeupWheel<int> wheel(8);
  for (int i = 0; i < 5; ++i) wheel.schedule(3, 0, i);
  std::vector<int> out;
  wheel.pop_due(3, out);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WakeupWheel, PastDueEntriesPopNextCycle) {
  // The priority queues this replaces processed "ready_at <= now" on the
  // next tick; scheduling for the past must behave the same way.
  WakeupWheel<int> wheel(8);
  wheel.schedule(10, /*now=*/20, 1);
  std::vector<int> out;
  wheel.pop_due(21, out);
  EXPECT_EQ(out, (std::vector<int>{1}));
}

TEST(WakeupWheel, FarFutureEntriesUseOverflowQueue) {
  WakeupWheel<int> wheel(8);  // span 8
  wheel.schedule(100, 0, 7);
  EXPECT_EQ(wheel.far_size(), 1u);
  EXPECT_EQ(wheel.next_due(), 100u);
  std::vector<int> out;
  wheel.pop_due(99, out);
  EXPECT_TRUE(out.empty());
  wheel.pop_due(100, out);
  EXPECT_EQ(out, (std::vector<int>{7}));
  EXPECT_EQ(wheel.far_size(), 0u);
}

TEST(WakeupWheel, AliasedBucketEntriesStayPut) {
  WakeupWheel<int> wheel(8);
  wheel.schedule(3, 0, 1);
  wheel.schedule(11, 3, 2);  // same bucket as cycle 3 (11 & 7 == 3)
  std::vector<int> out;
  wheel.pop_due(3, out);
  EXPECT_EQ(out, (std::vector<int>{1}));
  out.clear();
  wheel.pop_due(11, out);
  EXPECT_EQ(out, (std::vector<int>{2}));
}

TEST(WakeupWheel, NextDueScansBucketsAndFar) {
  WakeupWheel<int> wheel(16);
  EXPECT_EQ(wheel.next_due(), kNeverCycle);
  wheel.schedule(40, 0, 1);
  wheel.schedule(9, 0, 2);
  EXPECT_EQ(wheel.next_due(), 9u);
}

// ------------------------------------------- fuzz vs linear-scan reference

/// Reference implementation: the pre-refactor "scan every pending entry"
/// list. The wheel must release exactly the same multiset of entries at
/// every cycle, for any schedule pattern.
struct LinearScanReference {
  struct Entry {
    Cycle at;
    std::uint64_t v;
  };
  std::vector<Entry> pending;

  void schedule(Cycle at, Cycle now, std::uint64_t v) {
    pending.push_back({at > now ? at : now + 1, v});
  }

  std::vector<std::uint64_t> pop_due(Cycle now) {
    std::vector<std::uint64_t> out;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].at <= now)
        out.push_back(pending[i].v);
      else
        pending[kept++] = pending[i];
    }
    pending.resize(kept);
    return out;
  }
};

TEST(WakeupWheel, FuzzMatchesLinearScan) {
  // Mixed near/far ready_at offsets, bursts, dry spells, and random cycle
  // jumps (the event-skip pattern). Unordered comparison: callers that
  // need an order sort the due batch themselves.
  Xoshiro256 rng(0x5eed);
  WakeupWheel<std::uint64_t> wheel(32);
  LinearScanReference ref;
  Cycle now = 0;
  std::uint64_t next_val = 0;

  for (int step = 0; step < 20'000; ++step) {
    // Advance time: mostly +1, sometimes a jump (only legal when the wheel
    // holds nothing due in the skipped range — emulate by jumping to
    // exactly the next due event like CmpSimulator::run does).
    if (rng.next_below(100) < 10 && !wheel.empty()) {
      const Cycle due = wheel.next_due();
      now = due > now ? due : now + 1;
    } else {
      ++now;
    }

    const std::uint64_t burst = rng.next_below(4);
    for (std::uint64_t b = 0; b < burst; ++b) {
      // Offsets span: past (clamped), in-wheel, far-queue.
      const std::uint64_t pick = rng.next_below(100);
      Cycle at;
      if (pick < 5)
        at = now - std::min<Cycle>(now, rng.next_below(8));  // past
      else if (pick < 85)
        at = now + 1 + rng.next_below(30);  // in wheel span
      else
        at = now + 40 + rng.next_below(400);  // far queue
      wheel.schedule(at, now, next_val);
      ref.schedule(at, now, next_val);
      ++next_val;
    }

    std::vector<std::uint64_t> got;
    wheel.pop_due(now, got);
    std::vector<std::uint64_t> want = ref.pop_due(now);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "diverged at cycle " << now;
    ASSERT_EQ(wheel.size(), ref.pending.size());
  }
}

TEST(WakeupWheel, NextDueCacheMatchesScanUnderFuzz) {
  // next_due() caches the earliest scheduled cycle; the cache must stay
  // exact through any interleaving of schedules (cheap min update), empty
  // pops (cache kept), and real pops (lazy rescan).
  Xoshiro256 rng(0xcac4ed);
  WakeupWheel<std::uint64_t> wheel(16);
  LinearScanReference ref;
  Cycle now = 0;
  for (int step = 0; step < 10'000; ++step) {
    ++now;
    const std::uint64_t burst = rng.next_below(3);
    for (std::uint64_t b = 0; b < burst; ++b) {
      const Cycle at = now + rng.next_below(60);  // past, in-span, and far
      wheel.schedule(at, now, at);
      ref.schedule(at, now, at);
    }
    Cycle want = kNeverCycle;
    for (const auto& e : ref.pending)
      // The reference stores release cycles; recover the scheduled cycle
      // (the value doubles as the original `at`).
      want = std::min(want, static_cast<Cycle>(e.v));
    ASSERT_EQ(wheel.next_due(), want) << "cycle " << now;
    std::vector<std::uint64_t> sink;
    wheel.pop_due(now, sink);
    (void)ref.pop_due(now);
  }
}

TEST(WakeupWheel, EventSkipJumpsNeverStrandEntries) {
  // The event kernel's contract: every clock jump is bounded by
  // next_due(), so no entry's release cycle is ever inside a skipped
  // window. Fuzz that contract with aggressive jumps on a strict wheel
  // (which asserts the invariant internally in debug builds) and verify
  // against the linear-scan reference that nothing is released late.
  Xoshiro256 rng(0x57a4d);
  WakeupWheel<std::uint64_t> wheel(16, /*strict_release=*/true);
  LinearScanReference ref;  // ref.pending[i].at holds the release cycle
  Cycle now = 0;
  std::uint64_t next_val = 0;
  std::uint64_t jumps_taken = 0;
  for (int step = 0; step < 20'000; ++step) {
    // Jump like CmpSimulator::run does: straight to the next due event
    // (often far-queue distances, many wheel spans ahead).
    if (rng.next_below(100) < 30 && !wheel.empty()) {
      const Cycle due = wheel.next_due();
      if (due > now + 1) ++jumps_taken;
      now = due > now ? due : now + 1;
    } else {
      ++now;
    }
    const std::uint64_t burst = rng.next_below(4);
    for (std::uint64_t b = 0; b < burst; ++b) {
      const std::uint64_t pick = rng.next_below(100);
      Cycle at;
      if (pick < 10)
        at = now - std::min<Cycle>(now, rng.next_below(20));  // past due
      else if (pick < 70)
        at = now + 1 + rng.next_below(14);  // in span
      else
        at = now + 20 + rng.next_below(500);  // aliased bucket / far queue
      wheel.schedule(at, now, next_val);
      ref.schedule(at, now, next_val);
      ++next_val;
    }
    std::vector<std::uint64_t> got;
    wheel.pop_due(now, got);
    std::vector<std::uint64_t> want = ref.pop_due(now);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "stranded or early entry at cycle " << now;
    // Nothing pending may already be past its release: that would mean a
    // jump passed it and it sits stranded in an aliased bucket.
    for (const auto& e : ref.pending)
      ASSERT_GT(e.at, now) << "entry " << e.v << " stranded at cycle " << now;
  }
  EXPECT_GT(jumps_taken, 100u) << "fuzz never exercised real jumps";
}

TEST(WakeupWheel, SaveLoadRoundTripMidStream) {
  Xoshiro256 rng(99);
  WakeupWheel<std::uint64_t> a(16);
  Cycle now = 0;
  for (int i = 0; i < 500; ++i) {
    ++now;
    if (rng.next_below(3) != 0)
      a.schedule(now + 1 + rng.next_below(200), now, rng.next());
    std::vector<std::uint64_t> sink;
    a.pop_due(now, sink);
  }

  ArchiveWriter w;
  a.save(w);
  WakeupWheel<std::uint64_t> b(16);
  ArchiveReader r(w.bytes());
  b.load(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(a.size(), b.size());

  // Both must release identical batches forever after.
  for (int i = 0; i < 600; ++i) {
    ++now;
    std::vector<std::uint64_t> out_a, out_b;
    a.pop_due(now, out_a);
    b.pop_due(now, out_b);
    ASSERT_EQ(out_a, out_b) << "cycle " << now;
  }
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace mflush
