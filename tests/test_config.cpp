#include <gtest/gtest.h>

#include "common/config.h"

namespace mflush {
namespace {

// Fig. 1 "Simulation parameters" must be the defaults.
TEST(Config, PaperCoreDefaults) {
  const CoreConfig c;
  EXPECT_EQ(c.threads_per_core, 2u);
  EXPECT_EQ(c.int_queue_entries, 64u);
  EXPECT_EQ(c.fp_queue_entries, 64u);
  EXPECT_EQ(c.mem_queue_entries, 64u);
  EXPECT_EQ(c.int_units, 4u);
  EXPECT_EQ(c.fp_units, 3u);
  EXPECT_EQ(c.ldst_units, 2u);
  EXPECT_EQ(c.int_phys_regs, 320u);
  EXPECT_EQ(c.rob_entries, 256u);
  EXPECT_EQ(c.ras_entries, 100u);
  EXPECT_EQ(c.btb_entries, 256u);
  EXPECT_EQ(c.btb_ways, 4u);
  EXPECT_EQ(c.perceptron_table, 256u);
  EXPECT_EQ(c.local_history_entries, 4096u);
  // 11-stage pipeline: 3 fetch + 2 decode + 2 rename + queue + regread +
  // execute + regwrite/commit.
  EXPECT_EQ(c.fetch_stages + c.decode_stages + c.rename_stages, 7u);
}

TEST(Config, PaperMemDefaults) {
  const MemConfig m;
  EXPECT_EQ(m.l1i_bytes, 64u * 1024);
  EXPECT_EQ(m.l1i_ways, 4u);
  EXPECT_EQ(m.l1i_banks, 8u);
  EXPECT_EQ(m.l1d_bytes, 32u * 1024);
  EXPECT_EQ(m.l1d_ways, 4u);
  EXPECT_EQ(m.l1d_banks, 8u);
  EXPECT_EQ(m.l1_latency, 3u);
  EXPECT_EQ(m.itlb_entries, 512u);
  EXPECT_EQ(m.dtlb_entries, 512u);
  EXPECT_EQ(m.tlb_miss_penalty, 300u);
  EXPECT_EQ(m.l2_bytes, 4u * 1024 * 1024);
  EXPECT_EQ(m.l2_ways, 12u);
  EXPECT_EQ(m.l2_banks, 4u);
  EXPECT_EQ(m.l2_bank_latency, 15u);
  EXPECT_EQ(m.memory_latency, 250u);
  EXPECT_EQ(m.mshr_entries, 16u);
}

// The latency anatomy of DESIGN.md: unloaded L2 hit = 3 + 4 + 15 = 22,
// matching the paper's "L1 lat./miss 3/22".
TEST(Config, MinRoundTripIs22) {
  const MemConfig m;
  EXPECT_EQ(m.min_l2_roundtrip(), 22u);
  EXPECT_EQ(m.max_l2_roundtrip(), 272u);
}

// MT = (bus + bank) * (cores - 1) — the paper's equation.
TEST(Config, MulticoreTrafficFormula) {
  const MemConfig m;
  EXPECT_EQ(m.multicore_traffic(1), 0u);
  EXPECT_EQ(m.multicore_traffic(2), 19u);
  EXPECT_EQ(m.multicore_traffic(3), 38u);
  EXPECT_EQ(m.multicore_traffic(4), 57u);
  EXPECT_EQ(m.multicore_traffic(0), 0u);
}

TEST(Config, PaperDefaultFactory) {
  const SimConfig cfg = SimConfig::paper_default(3, 99);
  EXPECT_EQ(cfg.num_cores, 3u);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.total_threads(), 6u);
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(Config, ValidateAcceptsDefaults) {
  for (std::uint32_t cores : {1u, 2u, 3u, 4u, 8u}) {
    EXPECT_TRUE(SimConfig::paper_default(cores).validate().empty());
  }
}

TEST(Config, ValidateRejectsZeroCores) {
  SimConfig cfg;
  cfg.num_cores = 0;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, ValidateRejectsBadFetchThreads) {
  SimConfig cfg;
  cfg.core.fetch_threads = 3;  // > threads_per_core (2)
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, ValidateRejectsTinyRegFile) {
  SimConfig cfg;
  cfg.core.int_phys_regs = 16;  // cannot map 2 threads x 32 int regs
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, ValidateRejectsNonPow2Line) {
  SimConfig cfg;
  cfg.mem.line_bytes = 48;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, ValidateRejectsNonPow2Banks) {
  SimConfig cfg;
  cfg.mem.l2_banks = 3;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, ValidateRejectsZeroMshr) {
  SimConfig cfg;
  cfg.mem.mshr_entries = 0;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(Config, RewindWindowCoversRobPlusFrontEnd) {
  const SimConfig cfg;
  EXPECT_GE(cfg.rewind_window(),
            cfg.core.rob_entries +
                cfg.core.fetch_width * (cfg.core.fetch_stages +
                                        cfg.core.decode_stages +
                                        cfg.core.rename_stages + 2));
}

}  // namespace
}  // namespace mflush
