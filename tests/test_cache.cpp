#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/tlb.h"

namespace mflush {
namespace {

CacheGeometry small_geom() {
  return CacheGeometry{4 * 1024, 2, 64, 1};  // 32 sets, 2 ways
}

TEST(Cache, GeometrySets) {
  SetAssocCache c(small_geom());
  EXPECT_EQ(c.geometry().num_sets(), 32u);
}

TEST(Cache, PaperL1Geometries) {
  SetAssocCache l1i(CacheGeometry{64 * 1024, 4, 64, 8});
  SetAssocCache l1d(CacheGeometry{32 * 1024, 4, 64, 8});
  EXPECT_EQ(l1i.geometry().num_sets(), 256u);
  EXPECT_EQ(l1d.geometry().num_sets(), 128u);
}

TEST(Cache, NonPowerOfTwoSetsSupported) {
  // One bank slice of the paper's L2: 1 MB, 12-way -> 1365 sets.
  SetAssocCache slice(CacheGeometry{1024 * 1024, 12, 64, 1});
  EXPECT_EQ(slice.geometry().num_sets(), 1365u);
  EXPECT_FALSE(slice.access(0x1000, false));
  (void)slice.fill(0x1000, false);
  EXPECT_TRUE(slice.access(0x1000, false));
}

TEST(Cache, MissThenFillThenHit) {
  SetAssocCache c(small_geom());
  EXPECT_FALSE(c.access(0x100, false));
  (void)c.fill(0x100, false);
  EXPECT_TRUE(c.access(0x100, false));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit) {
  SetAssocCache c(small_geom());
  (void)c.fill(0x1000, false);
  EXPECT_TRUE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x103F, false));
  EXPECT_FALSE(c.access(0x1040, false));  // next line
}

TEST(Cache, ProbeDoesNotMutate) {
  SetAssocCache c(small_geom());
  EXPECT_FALSE(c.probe(0x100));
  EXPECT_EQ(c.hits() + c.misses(), 0u);  // probe does not count
  (void)c.fill(0x100, false);
  EXPECT_TRUE(c.probe(0x100));
}

TEST(Cache, WriteSetsDirtyAndVictimReportsIt) {
  SetAssocCache c(small_geom());
  (void)c.fill(0x100, false);
  EXPECT_TRUE(c.access(0x100, /*is_write=*/true));  // dirties the line
  // Fill two more lines in the same set (set width 2) to evict 0x100.
  const Addr same_set1 = 0x100 + 32 * 64;
  const Addr same_set2 = 0x100 + 64 * 64;
  (void)c.fill(same_set1, false);
  const EvictInfo ev = c.fill(same_set2, false);
  EXPECT_TRUE(ev.evicted);
  EXPECT_TRUE(ev.victim_dirty);
  EXPECT_EQ(ev.victim_line, 0x100u);
}

TEST(Cache, LruEviction) {
  SetAssocCache c(small_geom());
  const Addr a = 0x100, b = a + 32 * 64, d = a + 64 * 64;  // one set
  (void)c.fill(a, false);
  (void)c.fill(b, false);
  EXPECT_TRUE(c.access(a, false));       // refresh a
  const EvictInfo ev = c.fill(d, false); // must evict b
  EXPECT_TRUE(ev.evicted);
  EXPECT_EQ(ev.victim_line, b);
}

TEST(Cache, FillOfPresentLineIsIdempotent) {
  SetAssocCache c(small_geom());
  (void)c.fill(0x100, false);
  const EvictInfo ev = c.fill(0x100, true);
  EXPECT_FALSE(ev.evicted);
  // Dirty bit merged: evicting it now reports dirty.
  (void)c.fill(0x100 + 32 * 64, false);
  const EvictInfo ev2 = c.fill(0x100 + 64 * 64, false);
  EXPECT_TRUE(ev2.victim_dirty);
}

TEST(Cache, LineOfMasksOffset) {
  SetAssocCache c(small_geom());
  EXPECT_EQ(c.line_of(0x12345), 0x12340u);
}

TEST(Cache, BankOfInterleavesByLine) {
  SetAssocCache c(CacheGeometry{32 * 1024, 4, 64, 8});
  EXPECT_EQ(c.bank_of(0 * 64), 0u);
  EXPECT_EQ(c.bank_of(1 * 64), 1u);
  EXPECT_EQ(c.bank_of(8 * 64), 0u);
}

TEST(Cache, ResetStats) {
  SetAssocCache c(small_geom());
  (void)c.access(0x0, false);
  c.reset_stats();
  EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache(CacheGeometry{0, 1, 64, 1}),
               std::invalid_argument);
  EXPECT_THROW(SetAssocCache(CacheGeometry{1024, 1, 48, 1}),
               std::invalid_argument);
  EXPECT_THROW(SetAssocCache(CacheGeometry{64, 4, 64, 1}),
               std::invalid_argument);  // smaller than one set
}

// ----------------------------------------------------------------------- TLB

TEST(Tlb, HitAfterInstall) {
  Tlb tlb(4, 8192);
  EXPECT_FALSE(tlb.access(0x0000));
  EXPECT_TRUE(tlb.access(0x1000));  // same 8 KB page
  EXPECT_FALSE(tlb.access(0x2000)); // next page
  EXPECT_EQ(tlb.misses(), 2u);
  EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, LruEvictionAtCapacity) {
  Tlb tlb(2, 8192);
  (void)tlb.access(0x0000);   // page 0
  (void)tlb.access(0x2000);   // page 1
  (void)tlb.access(0x0000);   // touch page 0 (MRU)
  (void)tlb.access(0x4000);   // page 2 evicts page 1
  EXPECT_TRUE(tlb.access(0x0000));
  EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, FullAssociativityNoConflicts) {
  Tlb tlb(512, 8192);
  // 512 pages with wildly different addresses all fit.
  for (Addr p = 0; p < 512; ++p) (void)tlb.access(p * 0x2000 * 977);
  for (Addr p = 0; p < 512; ++p)
    EXPECT_TRUE(tlb.access(p * 0x2000 * 977)) << p;
}

TEST(Tlb, RejectsNonPow2Page) {
  EXPECT_THROW(Tlb(16, 3000), std::invalid_argument);
}

TEST(Tlb, ResetStats) {
  Tlb tlb(4, 8192);
  (void)tlb.access(0);
  tlb.reset_stats();
  EXPECT_EQ(tlb.hits() + tlb.misses(), 0u);
}

}  // namespace
}  // namespace mflush
