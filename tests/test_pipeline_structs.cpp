#include <gtest/gtest.h>

#include "common/config.h"
#include "pipeline/fu.h"
#include "pipeline/iq.h"
#include "pipeline/regfile.h"
#include "pipeline/rename.h"
#include "pipeline/rob.h"
#include "pipeline/uop.h"

namespace mflush {
namespace {

// ------------------------------------------------------------------- UopPool

TEST(UopPool, AllocRelease) {
  UopPool pool(4);
  const UopHandle h = pool.alloc();
  EXPECT_TRUE(pool[h].in_use);
  EXPECT_EQ(pool.live(), 1u);
  pool.release(h);
  EXPECT_FALSE(pool[h].in_use);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(UopPool, ReusedSlotsAreFresh) {
  UopPool pool(2);
  const UopHandle h = pool.alloc();
  pool[h].seq = 99;
  pool[h].completed = true;
  pool.release(h);
  const UopHandle h2 = pool.alloc();
  EXPECT_EQ(pool[h2].seq, 0u);
  EXPECT_FALSE(pool[h2].completed);
}

TEST(UopPool, GrowsBeyondInitialCapacity) {
  UopPool pool(2);
  const auto a = pool.alloc();
  const auto b = pool.alloc();
  const auto c = pool.alloc();  // grows
  EXPECT_TRUE(pool[c].in_use);
  EXPECT_EQ(pool.live(), 3u);
  (void)a;
  (void)b;
}

// ----------------------------------------------------------------------- Rob

TEST(Rob, FifoOrder) {
  Rob rob(4);
  rob.push_back(10);
  rob.push_back(11);
  rob.push_back(12);
  EXPECT_EQ(rob.front(), 10u);
  rob.pop_front();
  EXPECT_EQ(rob.front(), 11u);
  EXPECT_EQ(rob.back(), 12u);
}

TEST(Rob, PopBackForSquash) {
  Rob rob(4);
  rob.push_back(1);
  rob.push_back(2);
  rob.pop_back();
  EXPECT_EQ(rob.back(), 1u);
  EXPECT_EQ(rob.size(), 1u);
}

TEST(Rob, FullAndWrapAround) {
  Rob rob(3);
  rob.push_back(1);
  rob.push_back(2);
  rob.push_back(3);
  EXPECT_TRUE(rob.full());
  rob.pop_front();
  rob.push_back(4);  // wraps
  EXPECT_EQ(rob.front(), 2u);
  EXPECT_EQ(rob.back(), 4u);
  EXPECT_EQ(rob.at(0), 2u);
  EXPECT_EQ(rob.at(2), 4u);
}

// --------------------------------------------------------------- IssueQueue

TEST(IssueQueue, InsertRemove) {
  IssueQueue q(4);
  q.insert(5);
  q.insert(6);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.remove(5));
  EXPECT_FALSE(q.remove(5));
  EXPECT_EQ(q.size(), 1u);
}

TEST(IssueQueue, PreservesAgeOrder) {
  IssueQueue q(8);
  for (UopHandle h : {3u, 1u, 4u, 1u + 4u}) q.insert(h);
  q.remove(4);
  ASSERT_EQ(q.entries().size(), 3u);
  EXPECT_EQ(q.entries()[0], 3u);
  EXPECT_EQ(q.entries()[1], 1u);
  EXPECT_EQ(q.entries()[2], 5u);
}

TEST(IssueQueue, FullAtCapacity) {
  IssueQueue q(2);
  q.insert(1);
  q.insert(2);
  EXPECT_TRUE(q.full());
}

TEST(IssueQueue, CountForThread) {
  UopPool pool(4);
  const auto a = pool.alloc();
  const auto b = pool.alloc();
  const auto c = pool.alloc();
  pool[a].tid = 0;
  pool[b].tid = 1;
  pool[c].tid = 0;
  IssueQueue q(8);
  q.insert(a);
  q.insert(b);
  q.insert(c);
  EXPECT_EQ(q.count_for(pool, 0), 2u);
  EXPECT_EQ(q.count_for(pool, 1), 1u);
}

// -------------------------------------------------------------- PhysRegFile

TEST(PhysRegFile, AllocClearsReady) {
  PhysRegFile rf(4);
  const PhysReg r = rf.alloc();
  EXPECT_FALSE(rf.ready(r));
  rf.set_ready(r);
  EXPECT_TRUE(rf.ready(r));
}

TEST(PhysRegFile, NoRegSentinelIsAlwaysReady) {
  PhysRegFile rf(4);
  EXPECT_TRUE(rf.ready(kNoPhysReg));
}

TEST(PhysRegFile, ExhaustionAndRelease) {
  PhysRegFile rf(2);
  const PhysReg a = rf.alloc();
  (void)rf.alloc();
  EXPECT_FALSE(rf.has_free());
  rf.release(a);
  EXPECT_TRUE(rf.has_free());
  EXPECT_EQ(rf.free_count(), 1u);
}

// ----------------------------------------------------------------- RenameMap

TEST(RenameMap, InitialMappingsAreReady) {
  PhysRegFile iregs(320), fregs(320);
  RenameMap map(iregs, fregs);
  for (LogReg r = 0; r < kNumLogicalRegs; ++r) {
    const PhysReg p = map.lookup(r);
    EXPECT_NE(p, kNoPhysReg);
    EXPECT_TRUE(RenameMap::is_fp_reg(r) ? fregs.ready(p) : iregs.ready(p));
  }
  // 32 int + 32 fp consumed.
  EXPECT_EQ(iregs.free_count(), 288u);
  EXPECT_EQ(fregs.free_count(), 288u);
}

TEST(RenameMap, RenameRedirectsLookups) {
  PhysRegFile iregs(64), fregs(64);
  RenameMap map(iregs, fregs);
  const PhysReg before = map.lookup(3);
  const auto ren = map.rename_dst(3);
  EXPECT_EQ(ren.previous, before);
  EXPECT_EQ(map.lookup(3), ren.fresh);
  EXPECT_NE(ren.fresh, before);
}

TEST(RenameMap, UnwindRestoresAndFrees) {
  PhysRegFile iregs(64), fregs(64);
  RenameMap map(iregs, fregs);
  const auto free_before = iregs.free_count();
  const auto ren = map.rename_dst(3);
  map.unwind(3, ren.fresh, ren.previous);
  EXPECT_EQ(map.lookup(3), ren.previous);
  EXPECT_EQ(iregs.free_count(), free_before);
}

TEST(RenameMap, CommitReleasesPrevious) {
  PhysRegFile iregs(64), fregs(64);
  RenameMap map(iregs, fregs);
  const auto free_before = iregs.free_count();
  const auto ren = map.rename_dst(3);
  map.commit_release(3, ren.previous);
  EXPECT_EQ(map.lookup(3), ren.fresh);
  EXPECT_EQ(iregs.free_count(), free_before);  // one taken, one released
}

TEST(RenameMap, NestedRenameUnwindInReverseOrder) {
  PhysRegFile iregs(64), fregs(64);
  RenameMap map(iregs, fregs);
  const PhysReg orig = map.lookup(7);
  const auto r1 = map.rename_dst(7);
  const auto r2 = map.rename_dst(7);
  map.unwind(7, r2.fresh, r2.previous);
  map.unwind(7, r1.fresh, r1.previous);
  EXPECT_EQ(map.lookup(7), orig);
}

TEST(RenameMap, FpIntSplit) {
  EXPECT_FALSE(RenameMap::is_fp_reg(0));
  EXPECT_FALSE(RenameMap::is_fp_reg(31));
  EXPECT_TRUE(RenameMap::is_fp_reg(32));
  EXPECT_TRUE(RenameMap::is_fp_reg(63));
}

// ------------------------------------------------------------------ FuBudget

TEST(FuBudget, CapsPerClass) {
  const CoreConfig cfg;  // 4 int, 3 fp, 2 ld/st
  FuBudget fu(cfg);
  fu.begin_cycle();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(fu.try_take(InstrClass::IntAlu));
  EXPECT_FALSE(fu.try_take(InstrClass::IntAlu));
  EXPECT_FALSE(fu.try_take(InstrClass::Branch));  // branches use int units
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(fu.try_take(InstrClass::FpAlu));
  EXPECT_FALSE(fu.try_take(InstrClass::FpMul));
  for (int i = 0; i < 2; ++i) EXPECT_TRUE(fu.try_take(InstrClass::Load));
  EXPECT_FALSE(fu.try_take(InstrClass::Store));
}

TEST(FuBudget, BeginCycleResets) {
  const CoreConfig cfg;
  FuBudget fu(cfg);
  fu.begin_cycle();
  for (int i = 0; i < 4; ++i) (void)fu.try_take(InstrClass::IntAlu);
  fu.begin_cycle();
  EXPECT_TRUE(fu.try_take(InstrClass::IntAlu));
}

TEST(FuBudget, Latencies) {
  const CoreConfig cfg;
  EXPECT_EQ(FuBudget::latency(cfg, InstrClass::IntAlu), 1u);
  EXPECT_EQ(FuBudget::latency(cfg, InstrClass::IntMul), 3u);
  EXPECT_EQ(FuBudget::latency(cfg, InstrClass::FpAlu), 4u);
  EXPECT_EQ(FuBudget::latency(cfg, InstrClass::FpMul), 6u);
  EXPECT_EQ(FuBudget::latency(cfg, InstrClass::Branch), 1u);
}

}  // namespace
}  // namespace mflush
