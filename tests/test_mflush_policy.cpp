#include <gtest/gtest.h>

#include <vector>

#include "core/mflush.h"

namespace mflush {
namespace {

class MockControl final : public CoreControl {
 public:
  bool flush_after_load(std::uint64_t token) override {
    flushed.push_back(token);
    return true;
  }
  bool stall_until_load(std::uint64_t token) override {
    stalled.push_back(token);
    return true;
  }
  void set_fetch_gate(ThreadId tid, bool gated) override {
    gate_state[tid] = gated;
    ++gate_changes;
  }

  std::vector<std::uint64_t> flushed;
  std::vector<std::uint64_t> stalled;
  std::array<bool, kMaxContexts> gate_state{};
  int gate_changes = 0;
};

MflushConfig one_core_cfg() {
  MflushConfig c;
  c.min_latency = 22;
  c.max_latency = 272;
  c.mt = 0;
  c.num_banks = 4;
  return c;
}

MflushConfig four_core_cfg() {
  MflushConfig c = one_core_cfg();
  c.mt = 57;  // (4+15)*3
  return c;
}

TEST(Mflush, McRegInitializedToMin) {
  MflushPolicy p(one_core_cfg());
  for (std::uint32_t b = 0; b < 4; ++b) EXPECT_EQ(p.mcreg(b), 22);
}

TEST(Mflush, McRegTracksLastHitLatencyPerBank) {
  MflushPolicy p(one_core_cfg());
  p.on_load_issued(0, 1, 2, 100);
  p.on_load_l2_path(0, 1, 2, 103);
  p.on_load_resolved(0, 1, 100, 155, true, true, 2);  // 55-cycle hit
  EXPECT_EQ(p.mcreg(2), 55);
  EXPECT_EQ(p.mcreg(0), 22);  // other banks untouched
}

TEST(Mflush, McRegIgnoresMisses) {
  MflushPolicy p(one_core_cfg());
  p.on_load_issued(0, 1, 1, 100);
  p.on_load_l2_path(0, 1, 1, 103);
  p.on_load_resolved(0, 1, 100, 372, true, /*l2_hit=*/false, 1);
  EXPECT_EQ(p.mcreg(1), 22);
}

TEST(Mflush, McRegSaturatesAt255) {
  MflushPolicy p(one_core_cfg());
  p.on_load_issued(0, 1, 0, 100);
  p.on_load_l2_path(0, 1, 0, 103);
  p.on_load_resolved(0, 1, 100, 100 + 400, true, true, 0);
  EXPECT_EQ(p.mcreg(0), 255);
}

// BARRIER = MCReg + MIN/2 + MT, clamped to [MIN+MT, MAX+MT] (Fig. 6).
TEST(Mflush, BarrierFormula) {
  MflushPolicy p(four_core_cfg());
  // Initial MCReg = 22: barrier = 22 + 11 + 57 = 90.
  EXPECT_EQ(p.barrier_for_bank(0), 90u);
  // Train bank 0 to a 55-cycle hit (the paper's Fig. 7 example value):
  p.on_load_issued(0, 1, 0, 0);
  p.on_load_l2_path(0, 1, 0, 3);
  p.on_load_resolved(0, 1, 0, 55, true, true, 0);
  EXPECT_EQ(p.barrier_for_bank(0), 55u + 11 + 57);
}

TEST(Mflush, BarrierClampsLow) {
  MflushPolicy p(four_core_cfg());
  p.on_load_issued(0, 1, 0, 0);
  p.on_load_l2_path(0, 1, 0, 3);
  p.on_load_resolved(0, 1, 0, 4, true, true, 0);  // absurdly fast "hit"
  // Raw would be 4 + 11 + 57 = 72 < MIN+MT = 79: clamped up.
  EXPECT_EQ(p.barrier_for_bank(0), 79u);
}

TEST(Mflush, BarrierClampsHigh) {
  MflushConfig c = four_core_cfg();
  c.max_latency = 200;
  MflushPolicy p(c);
  p.on_load_issued(0, 1, 0, 0);
  p.on_load_l2_path(0, 1, 0, 3);
  p.on_load_resolved(0, 1, 0, 250, true, true, 0);
  EXPECT_EQ(p.barrier_for_bank(0), 200u + 57);
}

TEST(Mflush, PreventiveStateGatesSuspiciousThread) {
  MflushPolicy p(four_core_cfg());
  MockControl ctrl;
  p.on_load_issued(0, 1, 0, 100);
  p.on_load_l2_path(0, 1, 0, 103);
  // Below MIN+MT = 79 cycles of age: not suspicious.
  p.on_cycle(100 + 79, ctrl);
  EXPECT_FALSE(ctrl.gate_state[0]);
  // Above: gated.
  p.on_cycle(100 + 80, ctrl);
  EXPECT_TRUE(ctrl.gate_state[0]);
  EXPECT_GT(p.counters().gate_cycles, 0u);
}

TEST(Mflush, ResolutionBeforeBarrierLiftsGate) {
  MflushPolicy p(four_core_cfg());
  MockControl ctrl;
  p.on_load_issued(0, 1, 0, 100);
  p.on_load_l2_path(0, 1, 0, 103);
  p.on_cycle(185, ctrl);  // suspicious
  ASSERT_TRUE(ctrl.gate_state[0]);
  p.on_load_resolved(0, 1, 100, 186, true, true, 0);
  p.on_cycle(187, ctrl);
  EXPECT_FALSE(ctrl.gate_state[0]);
  EXPECT_TRUE(ctrl.flushed.empty());  // barrier never crossed
}

TEST(Mflush, BarrierCrossingTriggersFlush) {
  MflushPolicy p(four_core_cfg());
  MockControl ctrl;
  p.on_load_issued(0, 1, 3, 100);
  p.on_load_l2_path(0, 1, 3, 103);  // barrier = 100 + 90 = cycle 190
  p.on_cycle(190, ctrl);
  EXPECT_TRUE(ctrl.flushed.empty());
  p.on_cycle(191, ctrl);
  ASSERT_EQ(ctrl.flushed.size(), 1u);
  EXPECT_EQ(ctrl.flushed[0], 1u);
}

TEST(Mflush, LoadsNeverReachingL2DoNotParticipate) {
  MflushPolicy p(four_core_cfg());
  MockControl ctrl;
  p.on_load_issued(0, 1, 0, 100);  // no l2_path event (e.g. TLB walk only)
  p.on_cycle(1000, ctrl);
  EXPECT_TRUE(ctrl.flushed.empty());
  EXPECT_FALSE(ctrl.gate_state[0]);
}

TEST(Mflush, AdaptsBarrierToObservedCongestion) {
  // After the bank gets slow, MFLUSH waits longer before flushing —
  // the adaptivity FLUSH-S30 lacks.
  MflushPolicy p(four_core_cfg());
  MockControl ctrl;
  p.on_load_issued(0, 1, 0, 0);
  p.on_load_l2_path(0, 1, 0, 3);
  p.on_load_resolved(0, 1, 0, 140, true, true, 0);  // 140-cycle late hit
  p.on_load_issued(0, 2, 0, 200);
  p.on_load_l2_path(0, 2, 0, 203);
  // Old barrier would be 200+90=290; adapted is 200+140+11+57 = 408.
  p.on_cycle(300, ctrl);
  EXPECT_TRUE(ctrl.flushed.empty());
  p.on_cycle(409, ctrl);
  EXPECT_EQ(ctrl.flushed.size(), 1u);
}

TEST(Mflush, PerThreadFlushIsolation) {
  MflushPolicy p(four_core_cfg());
  MockControl ctrl;
  p.on_load_issued(0, 1, 0, 100);
  p.on_load_l2_path(0, 1, 0, 103);
  p.on_load_issued(1, 2, 1, 100);
  p.on_load_l2_path(1, 2, 1, 103);
  p.on_cycle(300, ctrl);
  EXPECT_EQ(ctrl.flushed.size(), 2u);  // both threads flushed independently
}

TEST(Mflush, CountsFalseMisses) {
  MflushPolicy p(four_core_cfg());
  MockControl ctrl;
  p.on_load_issued(0, 1, 0, 100);
  p.on_load_l2_path(0, 1, 0, 103);
  p.on_cycle(300, ctrl);  // flush fires
  p.on_load_resolved(0, 1, 100, 320, true, true, 0);  // ...but it was a hit
  EXPECT_EQ(p.counters().flushes_on_hit, 1u);
}

TEST(Mflush, Name) {
  MflushPolicy p(one_core_cfg());
  EXPECT_STREQ(p.name(), "MFLUSH");
}

}  // namespace
}  // namespace mflush
