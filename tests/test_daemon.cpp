#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <span>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/archive.h"
#include "sim/backend.h"
#include "sim/campaign.h"
#include "sim/daemon.h"
#include "sim/wire.h"
#include "sim/workloads.h"

namespace mflush {
namespace {

namespace fs = std::filesystem;

// --------------------------------------------------------------- wire codec

daemon::Message full_message() {
  daemon::Message m;
  m.type = daemon::MsgType::kResult;
  m.campaign = "00deadbeef00cafe";
  m.text = "finished";
  m.job_id = 42;
  m.total = 1000;
  m.done = 999;
  m.executed = 500;
  m.cached = 499;
  m.follow = 1;
  m.blob = {0x01, 0x02, 0x03, 0xff, 0x00, 0x7f};
  return m;
}

void expect_equal(const daemon::Message& a, const daemon::Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.campaign, b.campaign);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.job_id, b.job_id);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.done, b.done);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.cached, b.cached);
  EXPECT_EQ(a.follow, b.follow);
  EXPECT_EQ(a.blob, b.blob);
}

TEST(Wire, RoundTripsEveryFieldAndType) {
  for (std::uint8_t t = 1; t <= 11; ++t) {
    daemon::Message m = full_message();
    m.type = static_cast<daemon::MsgType>(t);
    const std::vector<std::uint8_t> frame = daemon::encode_frame(m);
    const daemon::Extract ex = daemon::try_extract(frame);
    ASSERT_EQ(ex.status, daemon::ExtractStatus::kFrame)
        << "type " << int(t) << ": " << ex.error;
    EXPECT_EQ(ex.consumed, frame.size());
    expect_equal(ex.msg, m);
  }
}

TEST(Wire, RoundTripsEmptyMessage) {
  const daemon::Message m;  // all defaults
  const auto frame = daemon::encode_frame(m);
  const daemon::Extract ex = daemon::try_extract(frame);
  ASSERT_EQ(ex.status, daemon::ExtractStatus::kFrame) << ex.error;
  expect_equal(ex.msg, m);
}

TEST(Wire, DecodesBackToBackFramesIncrementally) {
  daemon::Message a = full_message();
  daemon::Message b = full_message();
  b.type = daemon::MsgType::kDone;
  b.job_id = 7;
  std::vector<std::uint8_t> stream = daemon::encode_frame(a);
  const auto fb = daemon::encode_frame(b);
  stream.insert(stream.end(), fb.begin(), fb.end());

  const daemon::Extract first = daemon::try_extract(stream);
  ASSERT_EQ(first.status, daemon::ExtractStatus::kFrame) << first.error;
  expect_equal(first.msg, a);
  const daemon::Extract second = daemon::try_extract(
      std::span(stream).subspan(first.consumed));
  ASSERT_EQ(second.status, daemon::ExtractStatus::kFrame) << second.error;
  expect_equal(second.msg, b);
  EXPECT_EQ(first.consumed + second.consumed, stream.size());
}

TEST(Wire, EveryTruncationIsNeedMoreNeverAFrame) {
  const auto frame = daemon::encode_frame(full_message());
  for (std::size_t n = 0; n < frame.size(); ++n) {
    const daemon::Extract ex =
        daemon::try_extract(std::span(frame).first(n));
    // A prefix must never decode as a complete frame, and an honest
    // truncation must never kill the connection either — the bytes are
    // simply still in flight.
    ASSERT_NE(ex.status, daemon::ExtractStatus::kFrame) << "prefix " << n;
    ASSERT_EQ(ex.status, daemon::ExtractStatus::kNeedMore) << "prefix " << n;
  }
}

TEST(Wire, EverySingleBitFlipIsRejected) {
  const auto frame = daemon::encode_frame(full_message());
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> damaged = frame;
      damaged[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const daemon::Extract ex = daemon::try_extract(damaged);
      // A flip in the length prefix may legitimately read as "need more
      // bytes" (the announced frame got longer); everything else must be
      // kBad. What can never happen is a successful decode.
      ASSERT_NE(ex.status, daemon::ExtractStatus::kFrame)
          << "byte " << byte << " bit " << bit;
      if (byte >= sizeof(std::uint32_t)) {
        ASSERT_EQ(ex.status, daemon::ExtractStatus::kBad)
            << "byte " << byte << " bit " << bit;
        ASSERT_FALSE(ex.error.empty());
      }
    }
  }
}

TEST(Wire, OversizedAndZeroLengthPrefixesAreFatal) {
  // 256 MiB announced: must fail fast, not wait for bytes that will never
  // arrive.
  ArchiveWriter big;
  big.put(std::uint32_t{256u << 20});
  EXPECT_EQ(daemon::try_extract(big.bytes()).status,
            daemon::ExtractStatus::kBad);

  ArchiveWriter zero;
  zero.put(std::uint32_t{0});
  EXPECT_EQ(daemon::try_extract(zero.bytes()).status,
            daemon::ExtractStatus::kBad);
}

std::vector<std::uint8_t> frame_of_payload(
    const std::vector<std::uint8_t>& payload) {
  ArchiveWriter out;
  out.put(static_cast<std::uint32_t>(payload.size()));
  out.put_bytes(payload.data(), payload.size());
  out.put(fnv1a(payload));
  return {out.bytes().begin(), out.bytes().end()};
}

TEST(Wire, WrongProtocolVersionIsRejectedByName) {
  // A valid checksum over a payload from "the future": the version gate,
  // not the checksum, must reject it — and say so.
  ArchiveWriter payload;
  payload.put(daemon::kFrameMagic);
  payload.put(daemon::kProtocolVersion + 1);
  daemon::Message m;
  m.save(payload);
  const auto frame =
      frame_of_payload({payload.bytes().begin(), payload.bytes().end()});
  const daemon::Extract ex = daemon::try_extract(frame);
  ASSERT_EQ(ex.status, daemon::ExtractStatus::kBad);
  EXPECT_NE(ex.error.find("version"), std::string::npos) << ex.error;
}

TEST(Wire, WrongMagicAndTrailingBytesAreRejected) {
  {
    ArchiveWriter payload;
    payload.put(~daemon::kFrameMagic);
    payload.put(daemon::kProtocolVersion);
    daemon::Message{}.save(payload);
    const auto ex = daemon::try_extract(
        frame_of_payload({payload.bytes().begin(), payload.bytes().end()}));
    EXPECT_EQ(ex.status, daemon::ExtractStatus::kBad);
  }
  {
    ArchiveWriter payload;
    payload.put(daemon::kFrameMagic);
    payload.put(daemon::kProtocolVersion);
    daemon::Message{}.save(payload);
    payload.put(std::uint8_t{0});  // one stray byte after the message
    const auto ex = daemon::try_extract(
        frame_of_payload({payload.bytes().begin(), payload.bytes().end()}));
    EXPECT_EQ(ex.status, daemon::ExtractStatus::kBad);
  }
}

TEST(Wire, FrameIoOverASocketPair) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const daemon::Message sent = full_message();
  daemon::send_frame(fds[0], sent);
  std::vector<std::uint8_t> buffer;
  const auto got = daemon::read_frame(fds[1], buffer);
  ASSERT_TRUE(got.has_value());
  expect_equal(*got, sent);

  // Clean EOF at a frame boundary is nullopt, not an error...
  ::close(fds[0]);
  EXPECT_FALSE(daemon::read_frame(fds[1], buffer).has_value());
  ::close(fds[1]);

  // ...but EOF mid-frame means the peer died talking: that throws.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const auto frame = daemon::encode_frame(sent);
  ASSERT_EQ(::write(fds[0], frame.data(), frame.size() / 2),
            static_cast<ssize_t>(frame.size() / 2));
  ::close(fds[0]);
  std::vector<std::uint8_t> partial;
  EXPECT_THROW((void)daemon::read_frame(fds[1], partial),
               std::runtime_error);
  ::close(fds[1]);
}

// ------------------------------------------------------------------ daemon

ExperimentSpec spec_of(const std::vector<std::string>& workload_names,
                       const std::vector<PolicySpec>& policies) {
  ExperimentSpec spec;
  spec.name = "daemon-test";
  for (const std::string& w : workload_names)
    spec.workloads.push_back(*workloads::by_name(w));
  spec.policies = policies;
  spec.warmup = 200;
  spec.measure = 400;
  return spec;
}

void expect_identical_results(const std::vector<RunResult>& a,
                              const std::vector<RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(a[i].policy, b[i].policy);
    // Full SimMetrics equality — the daemon inherits the backend
    // bit-identity contract end to end, through the wire.
    EXPECT_TRUE(a[i].metrics == b[i].metrics);
  }
}

std::vector<RunResult> serial_run(const ExperimentSpec& spec) {
  SerialBackend backend;
  ResultSink sink;
  return run_experiment(spec, backend, sink);
}

/// One in-process daemon over a unix socket in a per-test temp dir.
class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("mflushd-") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    address_ = "unix:" + (dir_ / "d.sock").string();
  }
  void TearDown() override {
    if (server_.joinable()) shutdown_daemon();
    fs::remove_all(dir_);
  }

  void start_daemon() {
    std::promise<void> ready;
    auto ready_fired = ready.get_future();
    daemon::ServeOptions o;
    o.address = address_;
    o.data_dir = (dir_ / "data").string();
    o.slots = 2;
    o.on_ready = [&ready] { ready.set_value(); };
    server_ = std::thread([o = std::move(o)]() mutable {
      (void)daemon::serve(std::move(o));
    });
    ready_fired.get();
  }

  void shutdown_daemon() {
    daemon::Message req;
    req.type = daemon::MsgType::kShutdown;
    const daemon::Message reply = daemon::request(address_, req);
    EXPECT_EQ(reply.type, daemon::MsgType::kOk);
    server_.join();
  }

  fs::path dir_;
  std::string address_;
  std::thread server_;
};

TEST_F(DaemonTest, TwoConcurrentOverlappingSubmissionsMatchSerial) {
  // flush-s1 appears in both specs: the shared cache dedups it across
  // tenants (asserted below once both settle).
  const ExperimentSpec spec_a =
      spec_of({"2W1"}, {PolicySpec::icount(), PolicySpec::flush_spec(1)});
  const ExperimentSpec spec_b =
      spec_of({"2W1"}, {PolicySpec::flush_spec(1), PolicySpec::mflush()});
  start_daemon();

  daemon::SubmitOutcome out_a;
  daemon::SubmitOutcome out_b;
  std::thread ta([&] { out_a = daemon::submit(address_, spec_a, true); });
  std::thread tb([&] { out_b = daemon::submit(address_, spec_b, true); });
  ta.join();
  tb.join();

  EXPECT_EQ(out_a.state, "finished");
  EXPECT_EQ(out_b.state, "finished");
  EXPECT_EQ(out_a.campaign, daemon::campaign_id(spec_a));
  EXPECT_EQ(out_b.campaign, daemon::campaign_id(spec_b));
  expect_identical_results(out_a.results, serial_run(spec_a));
  expect_identical_results(out_b.results, serial_run(spec_b));

  // A third spec made only of jobs the first two already ran must be
  // served entirely from the shared result cache — zero execution.
  const ExperimentSpec overlap =
      spec_of({"2W1"}, {PolicySpec::icount(), PolicySpec::mflush()});
  const daemon::SubmitOutcome out_c = daemon::submit(address_, overlap, true);
  EXPECT_EQ(out_c.state, "finished");
  EXPECT_EQ(out_c.executed, 0u);
  EXPECT_EQ(out_c.cached, out_c.total);
  expect_identical_results(out_c.results, serial_run(overlap));
}

TEST_F(DaemonTest, ResubmitAttachesInsteadOfRerunning) {
  const ExperimentSpec spec = spec_of({"2W1"}, {PolicySpec::icount()});
  start_daemon();
  const daemon::SubmitOutcome first = daemon::submit(address_, spec, true);
  EXPECT_EQ(first.state, "finished");
  EXPECT_EQ(first.executed, first.total);

  // Same spec again: same campaign id, replayed from the in-memory log —
  // results identical, counters are the campaign's own history (it DID
  // execute its jobs, once), and no new simulation happens (asserted by
  // the reply arriving with the same lifetime counters, not higher ones).
  const daemon::SubmitOutcome again = daemon::submit(address_, spec, true);
  EXPECT_EQ(again.campaign, first.campaign);
  EXPECT_EQ(again.state, "finished");
  EXPECT_EQ(again.executed, first.executed);
  expect_identical_results(again.results, first.results);

  // Submit without follow detaches immediately.
  const daemon::SubmitOutcome detached =
      daemon::submit(address_, spec, false);
  EXPECT_EQ(detached.campaign, first.campaign);
  EXPECT_EQ(detached.state, "accepted");
  EXPECT_TRUE(detached.results.empty());
}

TEST_F(DaemonTest, RestartResumesFromJournalsWithZeroLostWork) {
  const ExperimentSpec spec =
      spec_of({"2W1", "2W3"}, {PolicySpec::icount(), PolicySpec::mflush()});
  start_daemon();
  const daemon::SubmitOutcome before = daemon::submit(address_, spec, true);
  EXPECT_EQ(before.state, "finished");
  EXPECT_EQ(before.executed, before.total);
  shutdown_daemon();

  // Same data dir, new daemon: the campaign resumes from its journal and
  // every completed job streams from the cache — nothing re-executes.
  start_daemon();
  const daemon::SubmitOutcome after = daemon::submit(address_, spec, true);
  EXPECT_EQ(after.campaign, before.campaign);
  EXPECT_EQ(after.state, "finished");
  EXPECT_EQ(after.executed, 0u);
  EXPECT_EQ(after.cached, after.total);
  expect_identical_results(after.results, before.results);
}

TEST_F(DaemonTest, StatusListAndErrorsOneShots) {
  const ExperimentSpec spec = spec_of({"2W1"}, {PolicySpec::icount()});
  start_daemon();
  const daemon::SubmitOutcome out = daemon::submit(address_, spec, true);
  ASSERT_EQ(out.state, "finished");

  daemon::Message status;
  status.type = daemon::MsgType::kStatus;
  status.campaign = out.campaign;
  const daemon::Message reply = daemon::request(address_, status);
  ASSERT_EQ(reply.type, daemon::MsgType::kStatusReply);
  EXPECT_EQ(reply.campaign, out.campaign);
  EXPECT_EQ(reply.text, "finished");
  EXPECT_EQ(reply.done, out.total);
  EXPECT_EQ(reply.total, out.total);

  daemon::Message unknown;
  unknown.type = daemon::MsgType::kStatus;
  unknown.campaign = "doesnotexist";
  EXPECT_EQ(daemon::request(address_, unknown).type,
            daemon::MsgType::kError);

  // Cancelling a settled campaign is an error, not a no-op: the caller
  // asked to stop work that no longer exists.
  daemon::Message cancel;
  cancel.type = daemon::MsgType::kCancel;
  cancel.campaign = out.campaign;
  EXPECT_EQ(daemon::request(address_, cancel).type, daemon::MsgType::kError);

  daemon::Message list;
  list.type = daemon::MsgType::kList;
  const daemon::Message listed = daemon::request(address_, list);
  ASSERT_EQ(listed.type, daemon::MsgType::kOk);
  EXPECT_NE(listed.text.find(out.campaign), std::string::npos);
  EXPECT_NE(listed.text.find("finished"), std::string::npos);
}

TEST_F(DaemonTest, RejectsAnInvalidSpecWithoutDying) {
  start_daemon();
  ExperimentSpec empty;  // no workloads/policies: validate() throws
  EXPECT_THROW((void)daemon::submit(address_, empty, true),
               std::runtime_error);
  // The daemon survives the bad submission and still serves.
  const ExperimentSpec spec = spec_of({"2W1"}, {PolicySpec::icount()});
  EXPECT_EQ(daemon::submit(address_, spec, true).state, "finished");
}

TEST(DaemonId, CampaignIdIsTheSpecContentHash) {
  const ExperimentSpec spec = spec_of({"2W1"}, {PolicySpec::icount()});
  EXPECT_EQ(daemon::campaign_id(spec),
            campaign::key_hex(fnv1a(spec.to_bytes())));
  ExperimentSpec renamed = spec;
  renamed.name = "other-name";
  // The name is part of the spec bytes, so it is part of the identity.
  EXPECT_NE(daemon::campaign_id(spec), daemon::campaign_id(renamed));
}

}  // namespace
}  // namespace mflush
