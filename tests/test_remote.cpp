#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/factory.h"
#include "sim/backend.h"
#include "sim/remote.h"
#include "sim/workloads.h"

namespace mflush {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ host parsing

TEST(RemoteHosts, ParsesNameAndKeys) {
  const remote::HostSpec bare = remote::parse_host("local");
  EXPECT_EQ(bare.name, "local");
  EXPECT_EQ(bare.slots, 1u);
  EXPECT_EQ(bare.fail_batches, 0u);
  EXPECT_TRUE(bare.is_local());

  const remote::HostSpec full =
      remote::parse_host("user@node7 slots=4 fail=2 dir=/scratch/mflush");
  EXPECT_EQ(full.name, "user@node7");
  EXPECT_EQ(full.slots, 4u);
  EXPECT_EQ(full.fail_batches, 2u);
  EXPECT_EQ(full.remote_dir, "/scratch/mflush");
  EXPECT_FALSE(full.is_local());
}

TEST(RemoteHosts, RejectsMalformedEntries) {
  // A typo must never silently shrink or misconfigure the pool.
  EXPECT_THROW((void)remote::parse_host("host slots=0"), std::runtime_error);
  EXPECT_THROW((void)remote::parse_host("host slots=abc"),
               std::runtime_error);
  EXPECT_THROW((void)remote::parse_host("host slotz=2"), std::runtime_error);
  EXPECT_THROW((void)remote::parse_host("host slots"), std::runtime_error);
  EXPECT_THROW((void)remote::parse_host("host dir="), std::runtime_error);
  EXPECT_THROW((void)remote::parse_hosts("ok\nbad fail=-1"),
               std::runtime_error);
  // Overflow must error, not wrap modulo 2^32 into a tiny slot count.
  EXPECT_THROW((void)remote::parse_host("host slots=4294967297"),
               std::runtime_error);
}

TEST(RemoteHosts, ParsesTextWithCommentsAndSeparators) {
  // File form (newlines + comments) and env form (commas) share a grammar.
  const auto from_file = remote::parse_hosts(
      "# the pool\n"
      "local slots=2\n"
      "\n"
      "nodeA slots=4   # beefy box\n"
      "nodeB\n");
  ASSERT_EQ(from_file.size(), 3u);
  EXPECT_EQ(from_file[0].name, "local");
  EXPECT_EQ(from_file[0].slots, 2u);
  EXPECT_EQ(from_file[1].name, "nodeA");
  EXPECT_EQ(from_file[1].slots, 4u);
  EXPECT_EQ(from_file[2].name, "nodeB");
  EXPECT_EQ(from_file[2].index, 2u);

  const auto from_env =
      remote::parse_hosts("local slots=2, nodeA slots=4; nodeB");
  ASSERT_EQ(from_env.size(), 3u);
  EXPECT_EQ(from_env[1].name, "nodeA");
  EXPECT_EQ(from_env[1].slots, 4u);
}

TEST(RemoteHosts, ReadsHostsFile) {
  const std::string path = ::testing::TempDir() + "hosts.txt";
  {
    std::ofstream out(path);
    out << "local slots=3\nlocal slots=1 fail=5\n";
  }
  const auto hosts = remote::read_hosts_file(path);
  fs::remove(path);
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0].slots, 3u);
  EXPECT_EQ(hosts[1].fail_batches, 5u);
  EXPECT_EQ(hosts[1].label(), "local#1");

  EXPECT_THROW((void)remote::read_hosts_file(path + ".does-not-exist"),
               std::runtime_error);

  // An explicitly named pool that parses empty (every entry commented
  // out) must error, never silently degrade to a loopback run.
  const std::string empty_path = ::testing::TempDir() + "hosts-empty.txt";
  {
    std::ofstream out(empty_path);
    out << "# node1 slots=4\n# node2 slots=4\n";
  }
  EXPECT_THROW((void)remote::read_hosts_file(empty_path),
               std::runtime_error);
  fs::remove(empty_path);
}

TEST(RemoteHosts, EnvPoolSetButEmptyOrCommentedIsAnError) {
  ASSERT_EQ(setenv("MFLUSH_HOSTS", "# commented out", 1), 0);
  EXPECT_THROW((void)remote::hosts_from_env(), std::runtime_error);
  // A '#' mid-string would silently swallow every later comma-separated
  // entry (comments run to end of line, and an env var is one line).
  ASSERT_EQ(setenv("MFLUSH_HOSTS", "local slots=2 # fast, node7", 1), 0);
  EXPECT_THROW((void)remote::hosts_from_env(), std::runtime_error);
  ASSERT_EQ(setenv("MFLUSH_HOSTS", "local slots=2", 1), 0);
  EXPECT_EQ(remote::hosts_from_env().size(), 1u);
  ASSERT_EQ(unsetenv("MFLUSH_HOSTS"), 0);
  EXPECT_TRUE(remote::hosts_from_env().empty());
}

TEST(SshTransportTimeout, MalformedEnvIsAHardErrorAndValidOnesResolve) {
  // env.h policy: a typo'd MFLUSH_SSH_TIMEOUT must fail construction
  // loudly, never silently fall back to the default deadline.
  ASSERT_EQ(setenv("MFLUSH_SSH_TIMEOUT", "soon", 1), 0);
  EXPECT_THROW(remote::SshTransport("mflushsim"), std::runtime_error);
  ASSERT_EQ(setenv("MFLUSH_SSH_TIMEOUT", "0", 1), 0);
  EXPECT_THROW(remote::SshTransport("mflushsim"), std::runtime_error);
  ASSERT_EQ(setenv("MFLUSH_SSH_TIMEOUT", "90", 1), 0);
  EXPECT_EQ(remote::SshTransport("mflushsim").name(), "ssh");
  ASSERT_EQ(unsetenv("MFLUSH_SSH_TIMEOUT"), 0);
  // Unset env: the built-in default; an explicit Options deadline wins.
  EXPECT_EQ(remote::SshTransport("mflushsim").name(), "ssh");
  EXPECT_EQ(remote::SshTransport("mflushsim", 5).name(), "ssh");
}

// ---------------------------------------------------------------- batching

TEST(RemoteBatching, RangesCoverEveryJobExactlyOnce) {
  for (const std::size_t jobs : {1u, 2u, 7u, 16u, 100u}) {
    for (const std::size_t batch : {0u, 1u, 3u, 200u}) {
      const auto ranges = remote::batch_ranges(jobs, batch, 4);
      ASSERT_FALSE(ranges.empty());
      std::size_t expect_begin = 0;
      for (const auto& [begin, end] : ranges) {
        EXPECT_EQ(begin, expect_begin);
        EXPECT_LT(begin, end);
        expect_begin = end;
      }
      EXPECT_EQ(expect_begin, jobs);
    }
  }
  EXPECT_TRUE(remote::batch_ranges(0, 0, 4).empty());
}

TEST(RemoteBatching, AutoSizeAmortizesButKeepsStealingSlack) {
  // ~4 batches per slot: a 64-job sweep over 2 slots packs 8 jobs per
  // batch instead of 64 one-job subprocess spawns.
  const auto ranges = remote::batch_ranges(64, 0, 2);
  EXPECT_EQ(ranges.size(), 8u);
  EXPECT_EQ(ranges.front().second - ranges.front().first, 8u);
  // Tiny sweeps degenerate to one job per batch, never zero.
  EXPECT_EQ(remote::batch_ranges(3, 0, 16).size(), 3u);
}

// ----------------------------------------------------- scheduler plumbing
//
// These tests drive RemoteBackend through injected transports, so they
// exercise the scheduler (work stealing, re-queue, retirement, scratch
// hygiene) without needing the mflushsim binary on disk.

/// Run one batch in-process through run_job — the full file protocol
/// without a subprocess.
void run_batch_in_process(const std::string& job_path,
                          const std::string& result_path) {
  const std::vector<JobSpec> jobs = worker::read_job_file(job_path);
  std::vector<std::pair<std::uint32_t, RunResult>> results;
  results.reserve(jobs.size());
  for (const JobSpec& job : jobs) results.emplace_back(job.id, run_job(job));
  worker::write_result_file(result_path, results);
}

class InProcessTransport final : public remote::Transport {
 public:
  [[nodiscard]] std::string name() const override { return "test-inproc"; }
  void prepare(const remote::HostSpec&) override {}
  void run_batch(const remote::HostSpec&, const std::string& job_path,
                 const std::string& result_path,
                 const std::string&) override {
    run_batch_in_process(job_path, result_path);
  }
};

/// Cross-transport rendezvous: broken transports count their failures /
/// in-flight batches here, gated healthy transports wait on it so the
/// broken host is guaranteed scheduler time before the queue drains (this
/// container has one CPU, so nothing else orders the threads).
struct BrokenRendezvous {
  std::mutex m;
  std::condition_variable cv;
  int broken_events = 0;

  void bump() {
    const std::lock_guard lk(m);
    ++broken_events;
    cv.notify_all();
  }
  /// Wait until `n` broken events happened (timeout as a starvation
  /// backstop so a test can never deadlock on a scheduling fluke).
  void await(int n) {
    std::unique_lock lk(m);
    (void)cv.wait_for(lk, std::chrono::seconds(2),
                      [&] { return broken_events >= n; });
  }
};

/// Transport that always fails, either in prepare or per batch.
class BrokenTransport final : public remote::Transport {
 public:
  explicit BrokenTransport(bool fail_prepare,
                           BrokenRendezvous* rendezvous = nullptr)
      : fail_prepare_(fail_prepare), rendezvous_(rendezvous) {}
  [[nodiscard]] std::string name() const override { return "test-broken"; }
  void prepare(const remote::HostSpec& host) override {
    if (fail_prepare_) {
      if (rendezvous_ != nullptr) rendezvous_->bump();
      throw remote::TransportError(host.label() + ": host unreachable");
    }
  }
  void run_batch(const remote::HostSpec& host, const std::string&,
                 const std::string&, const std::string& what) override {
    if (rendezvous_ != nullptr) rendezvous_->bump();
    throw remote::TransportError(host.label() + ": lost contact during " +
                                 what);
  }

 private:
  bool fail_prepare_;
  BrokenRendezvous* rendezvous_;
};

/// Healthy transport gated on the rendezvous, so the broken host pulls
/// its batches before healthy slots can drain the queue.
class GatedInProcessTransport final : public remote::Transport {
 public:
  explicit GatedInProcessTransport(BrokenRendezvous& rendezvous)
      : rendezvous_(rendezvous) {}
  [[nodiscard]] std::string name() const override { return "test-gated"; }
  void prepare(const remote::HostSpec&) override {}
  void run_batch(const remote::HostSpec&, const std::string& job_path,
                 const std::string& result_path,
                 const std::string&) override {
    rendezvous_.await(2);
    run_batch_in_process(job_path, result_path);
  }

 private:
  BrokenRendezvous& rendezvous_;
};

std::vector<JobSpec> small_grid_jobs() {
  ExperimentSpec spec;
  spec.name = "remote-grid";
  spec.workloads = {*workloads::by_name("2W1"), *workloads::by_name("2W3")};
  spec.policies = {PolicySpec::icount(), PolicySpec::mflush()};
  spec.seeds = {1, 2};
  spec.warmup = 300;
  spec.measure = 900;
  return spec.expand();
}

void expect_identical_runs(const std::vector<RunResult>& a,
                           const std::vector<RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(a[i].policy, b[i].policy);
    EXPECT_TRUE(a[i].metrics == b[i].metrics);
  }
}

/// Two-host pool where host 1's transport is broken: every one of its
/// batches must steal onto host 0 and the sweep still matches serial.
TEST(RemoteBackendTest, BrokenHostBatchesStealOntoHealthyHost) {
  for (const bool fail_prepare : {false, true}) {
    SCOPED_TRACE(fail_prepare ? "prepare fails" : "run_batch fails");
    RemoteBackend::Options opts;
    opts.worker_binary = "unused-by-injected-transports";
    remote::HostSpec a, b;
    a.name = "healthy";
    a.slots = 2;
    b.name = "broken";
    b.slots = 2;
    opts.hosts = {a, b};
    opts.batch_jobs = 1;
    opts.max_attempts = 8;
    opts.host_max_failures = 2;
    BrokenRendezvous rendezvous;
    opts.transport_factory = [&](const remote::HostSpec& host)
        -> std::unique_ptr<remote::Transport> {
      if (host.name == "broken")
        return std::make_unique<BrokenTransport>(fail_prepare, &rendezvous);
      return std::make_unique<GatedInProcessTransport>(rendezvous);
    };
    std::vector<std::string> events;
    std::mutex events_mutex;
    opts.on_event = [&](const std::string& line) {
      const std::lock_guard lk(events_mutex);
      events.push_back(line);
    };

    const std::vector<JobSpec> jobs = small_grid_jobs();
    RemoteBackend backend(opts);
    const std::vector<RunResult> got = backend.run_collect(jobs);

    SerialBackend serial;
    expect_identical_runs(serial.run_collect(jobs), got);

    bool retired = false;
    for (const std::string& e : events)
      if (e.find("retired") != std::string::npos &&
          e.find("broken#1") != std::string::npos)
        retired = true;
    EXPECT_TRUE(retired) << "expected a broken#1 retirement event";
  }
}

/// Blocks until both broken slots are in flight (the rendezvous counts
/// entries), then fails the batch — forcing the interleaving where a
/// second failure lands on an already-retired host.
class PairedBrokenTransport final : public remote::Transport {
 public:
  explicit PairedBrokenTransport(BrokenRendezvous& rendezvous)
      : rendezvous_(rendezvous) {}
  [[nodiscard]] std::string name() const override { return "test-paired"; }
  void prepare(const remote::HostSpec&) override {}
  void run_batch(const remote::HostSpec& host, const std::string&,
                 const std::string&, const std::string& what) override {
    rendezvous_.bump();
    rendezvous_.await(2);
    throw remote::TransportError(host.label() + ": dropped " + what);
  }

 private:
  BrokenRendezvous& rendezvous_;
};

/// Regression: a host whose second slot fails after the host was already
/// retired must not be retired twice — double-decrementing the live-host
/// count once made the scheduler believe one host remained of three and
/// blocked any further retirement.
TEST(RemoteBackendTest, RetiredHostIsNotRetiredTwice) {
  BrokenRendezvous rendezvous;
  RemoteBackend::Options opts;
  opts.worker_binary = "unused-by-injected-transports";
  remote::HostSpec a, b, broken;
  a.name = "healthy-a";
  b.name = "healthy-b";
  broken.name = "broken";
  broken.slots = 2;
  opts.hosts = {a, b, broken};
  opts.batch_jobs = 1;
  opts.max_attempts = 8;
  opts.host_max_failures = 1;
  opts.transport_factory = [&](const remote::HostSpec& host)
      -> std::unique_ptr<remote::Transport> {
    if (host.name == "broken")
      return std::make_unique<PairedBrokenTransport>(rendezvous);
    return std::make_unique<GatedInProcessTransport>(rendezvous);
  };
  std::vector<std::string> events;
  std::mutex events_mutex;
  opts.on_event = [&](const std::string& line) {
    const std::lock_guard lk(events_mutex);
    events.push_back(line);
  };

  const std::vector<JobSpec> jobs = small_grid_jobs();
  RemoteBackend backend(opts);
  SerialBackend serial;
  expect_identical_runs(serial.run_collect(jobs), backend.run_collect(jobs));

  std::size_t retirements = 0;
  for (const std::string& e : events) {
    if (e.find("retired") == std::string::npos) continue;
    ++retirements;
    // Three hosts, one retirement: two healthy hosts must remain.
    EXPECT_NE(e.find("remaining 2 host(s)"), std::string::npos) << e;
  }
  EXPECT_EQ(retirements, 1u);
}

TEST(RemoteBackendTest, ExhaustedAttemptsSurfaceTheTransportError) {
  RemoteBackend::Options opts;
  opts.worker_binary = "unused-by-injected-transports";
  remote::HostSpec only;
  only.name = "solo";
  opts.hosts = {only};
  opts.batch_jobs = 2;
  opts.max_attempts = 2;
  opts.transport_factory = [](const remote::HostSpec&) {
    return std::make_unique<BrokenTransport>(/*fail_prepare=*/false);
  };

  RemoteBackend backend(opts);
  const std::vector<JobSpec> jobs = small_grid_jobs();
  try {
    (void)backend.run_collect(jobs);
    FAIL() << "expected the sweep to fail";
  } catch (const std::exception& e) {
    // The surfaced error names the underlying transport failure and the
    // batch it killed, not some generic scheduler message.
    EXPECT_NE(std::string(e.what()).find("lost contact"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("batch"), std::string::npos)
        << e.what();
  }
}

TEST(RemoteBackendTest, ScratchDirLeftCleanOnSuccessAndFailure) {
  const fs::path scratch =
      fs::path(::testing::TempDir()) / "remote-scratch-test";
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  RemoteBackend::Options opts;
  opts.worker_binary = "unused-by-injected-transports";
  opts.scratch_dir = scratch.string();
  opts.batch_jobs = 2;
  opts.transport_factory = [](const remote::HostSpec&) {
    return std::make_unique<InProcessTransport>();
  };
  const std::vector<JobSpec> jobs = small_grid_jobs();
  (void)RemoteBackend(opts).run_collect(jobs);
  EXPECT_TRUE(fs::is_empty(scratch)) << "success leaked protocol files";

  // Failure path: the job file is staged before the transport throws, and
  // the guard must still scrub it.
  opts.max_attempts = 1;
  opts.transport_factory = [](const remote::HostSpec&) {
    return std::make_unique<BrokenTransport>(/*fail_prepare=*/false);
  };
  EXPECT_THROW((void)RemoteBackend(opts).run_collect(jobs),
               std::exception);
  EXPECT_TRUE(fs::is_empty(scratch)) << "failure leaked protocol files";

  fs::remove_all(scratch);
}

TEST(RemoteBackendTest, KeepFilesLeavesTheProtocolPairs) {
  const fs::path scratch =
      fs::path(::testing::TempDir()) / "remote-keep-test";
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  RemoteBackend::Options opts;
  opts.worker_binary = "unused-by-injected-transports";
  opts.scratch_dir = scratch.string();
  opts.batch_jobs = 4;
  opts.keep_files = true;
  opts.transport_factory = [](const remote::HostSpec&) {
    return std::make_unique<InProcessTransport>();
  };
  std::vector<JobSpec> jobs = small_grid_jobs();
  jobs.resize(4);
  (void)RemoteBackend(opts).run_collect(jobs);

  std::size_t job_files = 0, result_files = 0;
  for (const auto& entry : fs::directory_iterator(scratch)) {
    if (entry.path().extension() == ".mfj") ++job_files;
    if (entry.path().extension() == ".mfr") ++result_files;
  }
  EXPECT_EQ(job_files, 1u);
  EXPECT_EQ(result_files, 1u);
  fs::remove_all(scratch);
}

// ------------------------------------------- end-to-end with the binary

/// The acceptance grid: RemoteBackend over real LocalTransport
/// subprocesses, one host killed mid-run via fail injection, full
/// SimMetrics bit-identity with SerialBackend.
TEST(RemoteBackendTest, MatchesSerialWithMidRunHostFailure) {
  if (default_worker_binary().empty()) {
    GTEST_SKIP() << "mflushsim binary not found next to the test binary";
  }
  RemoteBackend::Options opts;
  remote::HostSpec healthy, flaky;
  healthy.name = "local";
  healthy.slots = 2;
  flaky.name = "local";
  flaky.slots = 2;
  flaky.fail_batches = 2;  // dies on its first two batches, then retires
  opts.hosts = {healthy, flaky};
  opts.batch_jobs = 2;
  opts.host_max_failures = 2;

  const std::vector<JobSpec> jobs = small_grid_jobs();
  RemoteBackend backend(opts);
  SerialBackend serial;
  expect_identical_runs(serial.run_collect(jobs), backend.run_collect(jobs));
}

TEST(RemoteBackendTest, DefaultPoolIsLoopbackFanOut) {
  if (default_worker_binary().empty()) {
    GTEST_SKIP() << "mflushsim binary not found next to the test binary";
  }
  // No hosts described: one local host, results still serial-identical.
  RemoteBackend backend;
  std::vector<JobSpec> jobs = small_grid_jobs();
  jobs.resize(4);
  SerialBackend serial;
  expect_identical_runs(serial.run_collect(jobs), backend.run_collect(jobs));
}

}  // namespace
}  // namespace mflush
