#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mem/cache.h"

namespace mflush {
namespace {

/// Reference tag array using the pre-optimization division/modulo set
/// indexing and the same true-LRU policy as SetAssocCache. The production
/// class now uses shift/mask indexing for power-of-two geometries; this
/// model pins the original mapping so any divergence in hit/miss/eviction
/// behaviour is caught.
class ModuloRefCache {
 public:
  explicit ModuloRefCache(CacheGeometry g)
      : geom_(g), sets_(g.num_sets()),
        lines_(static_cast<std::size_t>(sets_) * g.ways) {}

  bool access(Addr addr, bool is_write) {
    const Addr line = line_of(addr);
    const std::size_t base = set_index(addr) * geom_.ways;
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      Line& l = lines_[base + w];
      if (l.valid && l.tag == line) {
        l.lru = ++tick_;
        if (is_write) l.dirty = true;
        ++hits_;
        return true;
      }
    }
    ++misses_;
    return false;
  }

  bool probe(Addr addr) const {
    const Addr line = line_of(addr);
    const std::size_t base = set_index(addr) * geom_.ways;
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      const Line& l = lines_[base + w];
      if (l.valid && l.tag == line) return true;
    }
    return false;
  }

  EvictInfo fill(Addr addr, bool dirty) {
    const Addr line = line_of(addr);
    const std::size_t base = set_index(addr) * geom_.ways;
    Line* victim = &lines_[base];
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      Line& l = lines_[base + w];
      if (l.valid && l.tag == line) {
        l.lru = ++tick_;
        l.dirty = l.dirty || dirty;
        return {};
      }
      if (!l.valid) {
        victim = &l;
      } else if (victim->valid && l.lru < victim->lru) {
        victim = &l;
      }
    }
    EvictInfo info;
    if (victim->valid) {
      info.evicted = true;
      info.victim_dirty = victim->dirty;
      info.victim_line = victim->tag;
    }
    victim->valid = true;
    victim->tag = line;
    victim->dirty = dirty;
    victim->lru = ++tick_;
    return info;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] Addr line_of(Addr addr) const noexcept {
    return addr & ~static_cast<Addr>(geom_.line_bytes - 1);
  }
  [[nodiscard]] std::size_t set_index(Addr addr) const noexcept {
    // The original implementation, verbatim: divide then modulo.
    return static_cast<std::size_t>((addr / geom_.line_bytes) % sets_);
  }

  CacheGeometry geom_;
  std::uint32_t sets_;
  std::vector<Line> lines_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Drive the production cache and the modulo reference with an identical
/// randomized access/fill/probe stream and require identical observable
/// behaviour at every step.
void fuzz_equivalence(CacheGeometry g, std::uint64_t seed,
                      std::uint32_t iterations) {
  SetAssocCache cache(g);
  ModuloRefCache ref(g);
  Xoshiro256 rng(seed);

  // Mix of hot lines (reuse) and a long tail so hits, misses, fills and
  // evictions all occur.
  const Addr span = static_cast<Addr>(g.size_bytes) * 4;
  for (std::uint32_t i = 0; i < iterations; ++i) {
    const Addr addr = rng.next_below(span);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // access (read or write)
        const bool is_write = rng.chance(0.3);
        EXPECT_EQ(cache.access(addr, is_write), ref.access(addr, is_write))
            << "access mismatch at iteration " << i << " addr " << addr;
        break;
      }
      case 2: {  // fill (as after a completed miss)
        const bool dirty = rng.chance(0.3);
        const EvictInfo a = cache.fill(addr, dirty);
        const EvictInfo b = ref.fill(addr, dirty);
        EXPECT_EQ(a.evicted, b.evicted)
            << "eviction mismatch at iteration " << i;
        EXPECT_EQ(a.victim_dirty, b.victim_dirty);
        EXPECT_EQ(a.victim_line, b.victim_line);
        break;
      }
      default: {  // probe (no state change)
        EXPECT_EQ(cache.probe(addr), ref.probe(addr))
            << "probe mismatch at iteration " << i << " addr " << addr;
        break;
      }
    }
  }
  EXPECT_EQ(cache.hits(), ref.hits());
  EXPECT_EQ(cache.misses(), ref.misses());
}

TEST(CacheIndexing, ShiftMaskMatchesModuloL1D) {
  // Paper L1D: 32 KB 4-way, 128 sets (power of two -> shift/mask path).
  fuzz_equivalence(CacheGeometry{32 * 1024, 4, 64, 8}, 0xC0FFEE, 20'000);
}

TEST(CacheIndexing, ShiftMaskMatchesModuloL1I) {
  // Paper L1I: 64 KB 4-way, 256 sets.
  fuzz_equivalence(CacheGeometry{64 * 1024, 4, 64, 8}, 0xBEEF, 20'000);
}

TEST(CacheIndexing, ShiftMaskMatchesModuloTinyCache) {
  // 2 sets, direct-mapped: maximal conflict pressure.
  fuzz_equivalence(CacheGeometry{128, 1, 64, 1}, 7, 20'000);
}

TEST(CacheIndexing, NonPowerOfTwoL2SliceKeepsModulo) {
  // One bank slice of the paper's L2: 1 MB 12-way -> 1365 sets (not a
  // power of two) must keep the modulo mapping exactly.
  fuzz_equivalence(CacheGeometry{1024 * 1024, 12, 64, 1}, 99, 20'000);
}

TEST(CacheIndexing, NonPowerOfTwoConflictGeometry) {
  // Same-set conflicts land where modulo says they do: with 1365 sets,
  // line index k and k + 1365 share a set.
  const CacheGeometry g{1024 * 1024, 12, 64, 1};
  SetAssocCache cache(g);
  const std::uint32_t sets = g.num_sets();
  ASSERT_EQ(sets, 1365u);
  const Addr stride = static_cast<Addr>(sets) * g.line_bytes;
  // Fill ways lines that all map to set 0; no eviction yet.
  for (std::uint32_t w = 0; w < g.ways; ++w) {
    const EvictInfo ev = cache.fill(static_cast<Addr>(w) * stride, false);
    EXPECT_FALSE(ev.evicted) << "premature eviction at way " << w;
  }
  // One more conflicting line must evict the LRU line (line index 0).
  const EvictInfo ev =
      cache.fill(static_cast<Addr>(g.ways) * stride, false);
  EXPECT_TRUE(ev.evicted);
  EXPECT_EQ(ev.victim_line, 0u);
  // A line in a different set is untouched.
  (void)cache.fill(64, false);
  EXPECT_TRUE(cache.probe(64));
}

TEST(CacheIndexing, BankOfUsesLineShift) {
  const SetAssocCache cache(CacheGeometry{32 * 1024, 4, 64, 8});
  for (Addr a : {Addr{0}, Addr{63}, Addr{64}, Addr{64 * 7}, Addr{64 * 8},
                 Addr{0x12345678}}) {
    EXPECT_EQ(cache.bank_of(a), static_cast<std::uint32_t>((a / 64) % 8));
  }
}

}  // namespace
}  // namespace mflush
