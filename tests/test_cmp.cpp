#include <gtest/gtest.h>

#include <stdexcept>

#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/experiment.h"
#include "sim/workloads.h"

namespace mflush {
namespace {

Workload wl(const char* name) { return *workloads::by_name(name); }

TEST(Cmp, ConstructsFromWorkload) {
  CmpSimulator sim(wl("2W1"), PolicySpec::icount());
  EXPECT_EQ(sim.num_cores(), 1u);
  CmpSimulator sim4(wl("8W1"), PolicySpec::icount());
  EXPECT_EQ(sim4.num_cores(), 4u);
}

TEST(Cmp, RejectsMismatchedChip) {
  SimConfig cfg = SimConfig::paper_default(2);  // 4 contexts
  EXPECT_THROW(CmpSimulator(cfg, wl("2W1"), PolicySpec::icount()),
               std::invalid_argument);
}

TEST(Cmp, RejectsUnknownBenchmarkCode) {
  Workload bad;
  bad.name = "bad";
  bad.codes = {'a', '!'};
  EXPECT_THROW(CmpSimulator(bad, PolicySpec::icount()),
               std::invalid_argument);
}

TEST(Cmp, RejectsInvalidConfig) {
  SimConfig cfg = SimConfig::paper_default(1);
  cfg.core.fetch_threads = 9;
  EXPECT_THROW(CmpSimulator(cfg, wl("2W1"), PolicySpec::icount()),
               std::invalid_argument);
}

TEST(Cmp, RunAdvancesClockAndCommits) {
  CmpSimulator sim(wl("2W1"), PolicySpec::icount());
  sim.run(5000);
  EXPECT_EQ(sim.now(), 5000u);
  EXPECT_GT(sim.metrics().committed, 0u);
}

TEST(Cmp, MetricsAreInternallyConsistent) {
  CmpSimulator sim(wl("4W2"), PolicySpec::flush_spec(30));
  sim.run(8000);
  const SimMetrics m = sim.metrics();
  EXPECT_EQ(m.cycles, 8000u);
  EXPECT_NEAR(m.ipc,
              static_cast<double>(m.committed) / static_cast<double>(m.cycles),
              1e-9);
  ASSERT_EQ(m.per_thread_ipc.size(), 4u);
  double sum = 0.0;
  for (const double v : m.per_thread_ipc) sum += v;
  EXPECT_NEAR(sum, m.ipc, 1e-6);
}

TEST(Cmp, DeterministicForSameSeed) {
  CmpSimulator a(wl("2W2"), PolicySpec::mflush(), 7);
  CmpSimulator b(wl("2W2"), PolicySpec::mflush(), 7);
  a.run(6000);
  b.run(6000);
  EXPECT_EQ(a.metrics().committed, b.metrics().committed);
  EXPECT_EQ(a.metrics().flush_events, b.metrics().flush_events);
  EXPECT_EQ(a.metrics().mispredicts, b.metrics().mispredicts);
}

TEST(Cmp, SeedsProduceDifferentRuns) {
  CmpSimulator a(wl("2W2"), PolicySpec::icount(), 1);
  CmpSimulator b(wl("2W2"), PolicySpec::icount(), 2);
  a.run(6000);
  b.run(6000);
  EXPECT_NE(a.metrics().committed, b.metrics().committed);
}

TEST(Cmp, ResetStatsStartsMeasuredInterval) {
  CmpSimulator sim(wl("2W1"), PolicySpec::icount());
  sim.run(3000);
  sim.reset_stats();
  EXPECT_EQ(sim.metrics().committed, 0u);
  EXPECT_EQ(sim.metrics().cycles, 0u);
  sim.run(1000);
  EXPECT_GT(sim.metrics().committed, 0u);
  EXPECT_EQ(sim.metrics().cycles, 1000u);
}

TEST(Cmp, PrewarmPopulatesL2) {
  SimConfig cfg = SimConfig::paper_default(1);
  cfg.prewarm_l2 = true;
  CmpSimulator warm(cfg, wl("2W1"), PolicySpec::icount());
  warm.run(8000);
  SimConfig cold_cfg = cfg;
  cold_cfg.prewarm_l2 = false;
  CmpSimulator cold(cold_cfg, wl("2W1"), PolicySpec::icount());
  cold.run(8000);
  // The warm chip sees far more L2 hits early on.
  EXPECT_GT(warm.memory().l2().read_hits(), cold.memory().l2().read_hits());
}

TEST(Cmp, IcountNeverFlushes) {
  CmpSimulator sim(wl("4W3"), PolicySpec::icount());
  sim.run(8000);
  EXPECT_EQ(sim.metrics().flush_events, 0u);
  EXPECT_DOUBLE_EQ(sim.metrics().energy.flush_wasted_units, 0.0);
}

TEST(Cmp, FlushPolicyFlushesOnMemoryWorkload) {
  CmpSimulator sim(wl("2W3"), PolicySpec::flush_spec(30));  // mcf+gzip
  sim.run(12000);
  EXPECT_GT(sim.metrics().flush_events, 0u);
  EXPECT_GT(sim.metrics().energy.flush_wasted_units, 0.0);
}

TEST(Cmp, AccessorsExposeStructure) {
  CmpSimulator sim(wl("4W1"), PolicySpec::mflush(), 3);
  EXPECT_EQ(sim.workload().name, "4W1");
  EXPECT_EQ(sim.policy().label(), "MFLUSH");
  EXPECT_EQ(sim.config().seed, 3u);
  EXPECT_EQ(sim.core(0).num_threads(), 2u);
  EXPECT_STREQ(sim.core(1).policy().name(), "MFLUSH");
}

// ------------------------------------------------------------- experiment

TEST(Experiment, RunPointWarmsThenMeasures) {
  const RunResult r =
      run_point(wl("2W1"), PolicySpec::icount(), 1, 2000, 4000);
  EXPECT_EQ(r.workload, "2W1");
  EXPECT_EQ(r.policy, "ICOUNT");
  EXPECT_EQ(r.metrics.cycles, 4000u);
  EXPECT_GT(r.metrics.ipc, 0.0);
}

TEST(Experiment, SweepCoversAllPolicies) {
  const auto rs = run_sweep(wl("2W1"),
                            {PolicySpec::icount(), PolicySpec::mflush()}, 1,
                            1000, 2000);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].policy, "ICOUNT");
  EXPECT_EQ(rs[1].policy, "MFLUSH");
}

TEST(Experiment, EnvOverridesCycles) {
  setenv("MFLUSH_BENCH_CYCLES", "12345", 1);
  EXPECT_EQ(bench_cycles(999), 12345u);
  // Malformed values are a hard error (common/env.h), not a silent
  // fallback that would shorten a campaign unnoticed.
  setenv("MFLUSH_BENCH_CYCLES", "garbage", 1);
  EXPECT_THROW((void)bench_cycles(999), std::runtime_error);
  setenv("MFLUSH_BENCH_CYCLES", "0", 1);
  EXPECT_THROW((void)bench_cycles(999), std::runtime_error);
  setenv("MFLUSH_BENCH_CYCLES", "123tail", 1);
  EXPECT_THROW((void)bench_cycles(999), std::runtime_error);
  unsetenv("MFLUSH_BENCH_CYCLES");
  EXPECT_EQ(bench_cycles(999), 999u);

  setenv("MFLUSH_WARMUP_CYCLES", "77", 1);
  EXPECT_EQ(warmup_cycles(5), 77u);
  setenv("MFLUSH_WARMUP_CYCLES", "", 1);
  EXPECT_THROW((void)warmup_cycles(5), std::runtime_error);
  unsetenv("MFLUSH_WARMUP_CYCLES");
}

}  // namespace
}  // namespace mflush
