#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/factory.h"
#include "sim/backend.h"
#include "sim/cmp.h"
#include "sim/snapshot.h"
#include "sim/workloads.h"
#include "trace/spec2000.h"

namespace mflush {
namespace {

// -------------------------------------------------------------- ResultSink

TEST(ResultSink, CollectRestoresJobIdOrder) {
  ResultSink sink;
  JobSpec j1, j0;
  j0.id = 0;
  j1.id = 1;
  RunResult a, b;
  a.workload = "A";
  b.workload = "B";
  sink.push(j1, b);  // completion order != id order
  sink.push(j0, a);
  EXPECT_EQ(sink.completed(), 2u);
  const auto out = sink.collect();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].workload, "A");
  EXPECT_EQ(out[1].workload, "B");
  EXPECT_EQ(sink.at(1).workload, "B");
}

TEST(ResultSink, StreamsResultsThroughCallback) {
  std::atomic<int> calls{0};
  ResultSink sink([&](const JobSpec& job, const RunResult& r) {
    ++calls;
    EXPECT_EQ(job.workload.name, r.workload);
  });
  JobSpec j;
  j.id = 0;
  j.workload.name = "X";
  RunResult r;
  r.workload = "X";
  sink.push(j, r);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ResultSink, RejectsGapsAndDuplicates) {
  ResultSink sink;
  JobSpec j;
  j.id = 2;
  sink.push(j, RunResult{});
  EXPECT_THROW((void)sink.collect(), std::runtime_error);  // 0 and 1 missing
  EXPECT_THROW((void)sink.at(0), std::runtime_error);
  EXPECT_THROW(sink.push(j, RunResult{}), std::runtime_error);  // duplicate
}

// --------------------------------------------------------- worker protocol

TEST(WorkerProtocol, JobFileRoundTrip) {
  // One of each job shape: catalog, ad-hoc profiles, snapshot fork.
  JobSpec catalog;
  catalog.id = 0;
  catalog.workload = *workloads::by_name("2W1");
  catalog.policy = PolicySpec::flush_spec(40);
  catalog.seed = 7;
  catalog.warmup = 123;
  catalog.measure = 456;

  JobSpec custom;
  custom.id = 1;
  custom.workload.name = "custom-pair";
  custom.profiles = {*spec2000::by_name("mcf"), *spec2000::by_name("gzip")};
  custom.policy = PolicySpec::mflush();
  custom.measure = 789;

  CmpSimulator donor(*workloads::by_name("2W1"), PolicySpec::mflush(), 1);
  donor.run(500);
  JobSpec fork;
  fork.id = 2;
  fork.workload = donor.workload();
  fork.policy = donor.policy();
  fork.measure = 1'000;
  fork.fork_advance = 250;
  fork.snapshot = std::make_shared<const std::vector<std::uint8_t>>(
      snapshot::capture(donor));

  const std::string path = ::testing::TempDir() + "jobs.mfj";
  worker::write_job_file(path, {catalog, custom, fork});
  const std::vector<JobSpec> loaded = worker::read_job_file(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].workload.name, "2W1");
  EXPECT_EQ(loaded[0].workload.codes, catalog.workload.codes);
  EXPECT_EQ(loaded[0].policy, catalog.policy);
  EXPECT_EQ(loaded[0].seed, 7u);
  EXPECT_EQ(loaded[0].warmup, 123u);
  EXPECT_EQ(loaded[0].measure, 456u);
  EXPECT_EQ(loaded[0].snapshot, nullptr);

  ASSERT_EQ(loaded[1].profiles.size(), 2u);
  EXPECT_EQ(loaded[1].profiles[0].name, "mcf");
  EXPECT_EQ(loaded[1].profiles[0].f_load, custom.profiles[0].f_load);
  EXPECT_EQ(loaded[1].profiles[1].mem_lines, custom.profiles[1].mem_lines);

  ASSERT_NE(loaded[2].snapshot, nullptr);
  EXPECT_EQ(*loaded[2].snapshot, *fork.snapshot);
  EXPECT_EQ(loaded[2].fork_advance, 250u);
}

TEST(WorkerProtocol, ResultFileRoundTripIsBitExact) {
  const RunResult r =
      run_point(*workloads::by_name("2W1"), PolicySpec::mflush(), 1, 500,
                1'500);
  const std::string path = ::testing::TempDir() + "results.mfr";
  worker::write_result_file(path, {{4u, r}});
  const auto loaded = worker::read_result_file(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].first, 4u);
  EXPECT_EQ(loaded[0].second.workload, r.workload);
  EXPECT_EQ(loaded[0].second.policy, r.policy);
  // Full SimMetrics equality: doubles cross the file boundary bit-exact.
  EXPECT_TRUE(loaded[0].second.metrics == r.metrics);
  EXPECT_EQ(loaded[0].second.wall_seconds, r.wall_seconds);
  EXPECT_EQ(loaded[0].second.simulated_cycles, r.simulated_cycles);
}

TEST(WorkerProtocol, RejectsCorruptAndMismatchedFiles) {
  JobSpec job;
  job.workload = *workloads::by_name("2W1");
  job.policy = PolicySpec::icount();
  job.measure = 100;
  const std::string path = ::testing::TempDir() + "corrupt.mfj";
  worker::write_job_file(path, {job});

  // Flip one byte in the middle: the checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    char c = 0;
    f.seekg(30);
    f.get(c);
    f.seekp(30);
    f.put(static_cast<char>(c ^ 0x20));
  }
  EXPECT_THROW((void)worker::read_job_file(path), std::runtime_error);
  // A failing worker run must report failure, not write a result file.
  const std::string out = path + ".result";
  EXPECT_NE(worker::run_worker(path, out), 0);
  std::remove(path.c_str());

  // A result file is not a job file.
  const std::string res_path = ::testing::TempDir() + "not_a_job.mfr";
  worker::write_result_file(res_path, {});
  EXPECT_THROW((void)worker::read_job_file(res_path), std::runtime_error);
  std::remove(res_path.c_str());
}

// ---------------------------------------------- cross-backend determinism

void expect_identical_runs(const std::vector<RunResult>& a,
                           const std::vector<RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(a[i].policy, b[i].policy);
    // Full SimMetrics equality (operator== covers every field, including
    // the policy counters and the L2 hit-time histogram).
    EXPECT_TRUE(a[i].metrics == b[i].metrics);
  }
}

TEST(Backend, CrossBackendDeterminism) {
  // The redesign's core guarantee: serial loop == SerialBackend ==
  // InProcessBackend == WorkerBackend over a workload x policy grid,
  // full SimMetrics equality.
  ExperimentSpec spec;
  spec.name = "xbackend";
  spec.workloads = {*workloads::by_name("2W1"), *workloads::by_name("2W3")};
  spec.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                   PolicySpec::mflush()};
  spec.warmup = 500;
  spec.measure = 1'500;
  const std::vector<JobSpec> jobs = spec.expand();

  // Hand-rolled serial reference loop, the pre-redesign ground truth.
  std::vector<RunResult> reference;
  for (const JobSpec& j : jobs)
    reference.push_back(
        run_point(j.workload, j.policy, j.seed, j.warmup, j.measure));

  SerialBackend serial;
  expect_identical_runs(reference, serial.run_collect(jobs));

  InProcessBackend inprocess;
  expect_identical_runs(reference, inprocess.run_collect(jobs));

  if (default_worker_binary().empty()) {
    GTEST_SKIP() << "mflushsim binary not found next to the test binary";
  }
  WorkerBackend worker;
  expect_identical_runs(reference, worker.run_collect(jobs));
}

TEST(Backend, CrossBackendDeterminismUnderDramModel) {
  // Same guarantee with the banked-DRAM memory model as the sweep axis:
  // the model kind and knobs ride in each JobSpec, so every backend
  // (including the worker subprocess, which rebuilds the chip from the
  // job file alone) must construct the identical memory system.
  ExperimentSpec spec;
  spec.name = "xbackend-dram";
  spec.workloads = {*workloads::by_name("2W1"), *workloads::by_name("2W3")};
  spec.policies = {PolicySpec::flush_spec(30), PolicySpec::mflush()};
  spec.warmup = 500;
  spec.measure = 1'500;
  spec.mem_model = MemModelKind::BankedDram;
  // Full-range far class (trace addresses are salted above 2^40).
  spec.dram.far_base = 0;
  spec.dram.far_bytes = ~std::uint64_t{0};
  const std::vector<JobSpec> jobs = spec.expand();

  SerialBackend serial;
  const std::vector<RunResult> reference = serial.run_collect(jobs);
  // The DRAM model actually ran and the far class actually triggered
  // (both flow through the metrics wire).
  std::uint64_t touches = 0, far = 0;
  for (const RunResult& r : reference) {
    touches += r.metrics.dram_row_hits + r.metrics.dram_row_misses;
    far += r.metrics.dram_far_accesses;
  }
  EXPECT_GT(touches, 0u);
  EXPECT_GT(far, 0u);

  InProcessBackend inprocess;
  expect_identical_runs(reference, inprocess.run_collect(jobs));

  if (default_worker_binary().empty()) {
    GTEST_SKIP() << "mflushsim binary not found next to the test binary";
  }
  WorkerBackend worker;
  expect_identical_runs(reference, worker.run_collect(jobs));
}

TEST(Backend, WorkerBackendRunsProfileAndForkJobs) {
  if (default_worker_binary().empty()) {
    GTEST_SKIP() << "mflushsim binary not found next to the test binary";
  }
  // Both non-catalog job shapes must survive the process boundary.
  JobSpec custom;
  custom.id = 0;
  custom.workload.name = "custom";
  custom.profiles = {*spec2000::by_name("twolf"), *spec2000::by_name("vpr")};
  custom.policy = PolicySpec::mflush();
  custom.warmup = 400;
  custom.measure = 1'200;

  CmpSimulator donor(*workloads::by_name("2W1"), PolicySpec::icount(), 3);
  donor.run(600);
  JobSpec fork;
  fork.id = 1;
  fork.workload = donor.workload();
  fork.policy = donor.policy();
  fork.measure = 1'000;
  fork.fork_advance = 300;
  fork.snapshot = std::make_shared<const std::vector<std::uint8_t>>(
      snapshot::capture(donor));

  SerialBackend serial;
  WorkerBackend worker;
  expect_identical_runs(serial.run_collect({custom, fork}),
                        worker.run_collect({custom, fork}));
}

// ------------------------------------------------------------ sampled mode

TEST(Backend, SampledStoppingRuleIsBackendIndependent) {
  ExperimentSpec spec;
  spec.name = "sampled";
  spec.workloads = {*workloads::by_name("2W1")};
  spec.policies = {PolicySpec::icount(), PolicySpec::mflush()};
  spec.warmup = 600;
  spec.measure = 800;
  spec.mode = RunMode::Sampled;
  spec.sampled.forks = 2;
  spec.sampled.fork_stride = 400;
  spec.sampled.target_half_width = 1e-6;  // practically unreachable
  spec.sampled.max_rounds = 3;

  SerialBackend serial;
  InProcessBackend inprocess;
  // Capture the stride schedule through the sink: continuation rounds must
  // extend each point's fork_advance sequence contiguously (0, s, 2s, ...)
  // with no duplicates — a duplicated advance would double-count one
  // sample in the CI statistics.
  std::vector<std::vector<Cycle>> advances(2);
  ResultSink sink([&](const JobSpec& job, const RunResult& r) {
    advances[r.policy == "ICOUNT" ? 0 : 1].push_back(job.fork_advance);
  });
  const std::vector<RunResult> a = run_experiment(spec, serial, sink);
  const std::vector<RunResult> b = run_experiment(spec, inprocess);
  expect_identical_runs(a, b);

  // The unreachable target forces every round: 2 points x 2 forks x 3.
  EXPECT_EQ(a.size(), 12u);
  for (auto& per_point : advances) {
    std::sort(per_point.begin(), per_point.end());
    ASSERT_EQ(per_point.size(), 6u);
    for (std::size_t k = 0; k < per_point.size(); ++k)
      EXPECT_EQ(per_point[k], k * spec.sampled.fork_stride);
  }
}

TEST(Backend, SampledFixedForksMatchesDirectForkRuns) {
  ExperimentSpec spec;
  spec.workloads = {*workloads::by_name("2W1")};
  spec.policies = {PolicySpec::mflush()};
  spec.warmup = 500;
  spec.measure = 1'000;
  spec.mode = RunMode::Sampled;
  spec.sampled.forks = 3;
  spec.sampled.fork_stride = 250;

  SerialBackend serial;
  const std::vector<RunResult> sampled = run_experiment(spec, serial);
  ASSERT_EQ(sampled.size(), 3u);

  // Reference: warm the parent by hand and fork directly.
  CmpSimulator parent(spec.workloads[0], spec.policies[0], 1);
  parent.run(spec.warmup);
  const std::vector<std::uint8_t> snap = snapshot::capture(parent);
  for (std::uint32_t k = 0; k < 3; ++k) {
    const RunResult direct =
        run_point_from_snapshot(snap, k * 250, spec.measure);
    EXPECT_TRUE(direct.metrics == sampled[k].metrics) << "fork " << k;
  }
}

// ------------------------------------------------------ worker error paths
//
// Fake worker executables (shell scripts standing in for mflushsim) drive
// every failure mode a real distributed sweep hits: death by signal,
// nonzero exit, corrupt or truncated result files. After each, the scratch
// directory must hold no leaked .mfj/.mfr protocol files — the RAII guard
// fix — and the surfaced error must name the job, not just the binary.

namespace fs = std::filesystem;

class FakeWorkerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("fake-worker-") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Install an executable /bin/sh script as the "worker binary".
  std::string write_script(const std::string& body) {
    const fs::path path = dir_ / "fake-worker.sh";
    {
      std::ofstream out(path);
      out << "#!/bin/sh\n" << body;
    }
    fs::permissions(path, fs::perms::owner_all, fs::perm_options::add);
    return path.string();
  }

  /// Leaked protocol files in the scratch dir.
  [[nodiscard]] std::size_t scratch_files() const {
    std::size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      const auto ext = entry.path().extension();
      if (ext == ".mfj" || ext == ".mfr") ++n;
    }
    return n;
  }

  [[nodiscard]] WorkerBackend::Options script_options(
      const std::string& script) const {
    WorkerBackend::Options o;
    o.worker_binary = script;
    o.scratch_dir = dir_.string();
    o.max_processes = 1;
    o.batch_jobs = 1;
    o.max_attempts = 2;
    return o;
  }

  [[nodiscard]] static std::vector<JobSpec> tiny_jobs() {
    ExperimentSpec spec;
    spec.workloads = {*workloads::by_name("2W1")};
    spec.policies = {PolicySpec::icount(), PolicySpec::mflush()};
    spec.warmup = 200;
    spec.measure = 400;
    return spec.expand();
  }

  void expect_failure_containing(WorkerBackend::Options opts,
                                 const std::vector<std::string>& needles) {
    WorkerBackend backend(std::move(opts));
    try {
      (void)backend.run_collect(tiny_jobs());
      FAIL() << "expected the sweep to fail";
    } catch (const std::exception& e) {
      const std::string what = e.what();
      for (const std::string& needle : needles) {
        EXPECT_NE(what.find(needle), std::string::npos)
            << "missing '" << needle << "' in: " << what;
      }
    }
    EXPECT_EQ(scratch_files(), 0u)
        << "error path leaked protocol files in " << dir_;
  }

  fs::path dir_;
};

TEST_F(FakeWorkerTest, SignalKilledWorkerNamesTheJobAndCleansScratch) {
  const std::string script = write_script("kill -KILL $$\n");
  expect_failure_containing(script_options(script),
                            {"killed by signal", "job"});
}

TEST_F(FakeWorkerTest, NonzeroExitSurfacesTheCodeAndCleansScratch) {
  const std::string script = write_script("exit 3\n");
  expect_failure_containing(script_options(script), {"code 3", "job"});
}

TEST_F(FakeWorkerTest, CorruptResultFileIsRejectedAndCleaned) {
  // The worker "succeeds" but writes garbage where the result file should
  // be: the checksum gate must reject it, not half-read it.
  const std::string script =
      write_script("printf 'garbage-result' > \"$4\"\nexit 0\n");
  expect_failure_containing(script_options(script), {"result file"});
}

TEST_F(FakeWorkerTest, TruncatedResultFileIsRejectedAndCleaned) {
  const std::string script = write_script(": > \"$4\"\nexit 0\n");
  expect_failure_containing(script_options(script), {"truncated"});
}

TEST_F(FakeWorkerTest, RetriesAreBoundedPerBatchWithSplitting) {
  // One batch holding both jobs, always failing, one slot (deterministic
  // order): the 2-job batch fails once and splits into two singles with
  // fresh budgets; each single fails in turn until the first one exhausts
  // its max_attempts and aborts the sweep. 1 + 1 + 1 + 1 = 4 invocations —
  // bounded, and the poison job can only burn its own budget.
  const std::string count = (dir_ / "invocations").string();
  const std::string script =
      write_script("echo x >> \"" + count + "\"\nexit 9\n");
  WorkerBackend::Options opts = script_options(script);
  opts.batch_jobs = 2;
  opts.max_attempts = 2;
  expect_failure_containing(std::move(opts), {"code 9"});

  std::ifstream in(count);
  std::size_t invocations = 0;
  for (std::string line; std::getline(in, line);) ++invocations;
  EXPECT_EQ(invocations, 4u);
}

TEST_F(FakeWorkerTest, PoisonJobOnlySinksItsOwnBatchMates) {
  // A worker that fails whenever job 1's spec is in its batch, and execs
  // the real worker otherwise. With both jobs sharing one batch, splitting
  // isolates the poison job into its own single-job batch: job 0 still
  // completes, and the surfaced error names the poisoned work.
  const std::string real = default_worker_binary();
  if (real.empty()) {
    GTEST_SKIP() << "mflushsim binary not found next to the test binary";
  }
  // The scratch stem embeds the batch's first job id, so the script can
  // tell the post-split poison single (-job1-) apart; the initial 2-job
  // batch (-job0-, poisoned by membership) fails via the first-run marker.
  const std::string marker = (dir_ / "pair-batch-ran").string();
  const std::string script = write_script(
      "case \"$2\" in *-job1-*) exit 9;; esac\n"
      "if [ ! -e \"" + marker + "\" ]; then : > \"" + marker +
      "\"; exit 9; fi\nexec \"" + real + "\" \"$@\"\n");
  WorkerBackend::Options opts = script_options(script);
  opts.batch_jobs = 2;
  opts.max_attempts = 2;
  WorkerBackend backend(std::move(opts));
  const std::vector<JobSpec> jobs = tiny_jobs();

  ResultSink sink;
  try {
    backend.run(jobs, sink);
    FAIL() << "expected the poisoned sweep to fail";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("code 9"), std::string::npos)
        << e.what();
  }
  // The healthy half of the split batch ran to completion before the
  // poison single exhausted its attempts.
  EXPECT_EQ(sink.completed(), 1u);
  SerialBackend serial;
  expect_identical_runs({serial.run_collect(jobs).front()}, {sink.at(0)});
}

TEST_F(FakeWorkerTest, TransientFailureRetriesThenSucceeds) {
  const std::string real = default_worker_binary();
  if (real.empty()) {
    GTEST_SKIP() << "mflushsim binary not found next to the test binary";
  }
  // First invocation dies before touching the protocol files; the retry
  // (fresh scratch stem) execs the real worker and the sweep completes
  // bit-identical to serial.
  const std::string marker = (dir_ / "first-attempt").string();
  const std::string script = write_script(
      "if [ ! -e \"" + marker + "\" ]; then : > \"" + marker +
      "\"; exit 7; fi\nexec \"" + real + "\" \"$@\"\n");
  WorkerBackend::Options opts = script_options(script);
  opts.max_attempts = 3;
  WorkerBackend backend(std::move(opts));
  const std::vector<JobSpec> jobs = tiny_jobs();

  SerialBackend serial;
  expect_identical_runs(serial.run_collect(jobs),
                        backend.run_collect(jobs));
  EXPECT_TRUE(fs::exists(marker)) << "the failing first attempt never ran";
  EXPECT_EQ(scratch_files(), 0u);
}

// ------------------------------------------------------- spawn deadlines

TEST(SpawnAndWait, DeadlineKillsAWedgedChild) {
  // A child that would outlive the deadline is SIGKILLed, reaped, and
  // reported as a timeout naming the work — the mechanism that turns a
  // wedged ssh into an ordinary host failure instead of a hung sweep.
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)proc::spawn_and_wait("/bin/sh", {"-c", "sleep 30"},
                               "a wedged link", /*timeout_s=*/1);
    FAIL() << "expected a timeout";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("timed out"), std::string::npos) << what;
    EXPECT_NE(what.find("a wedged link"), std::string::npos) << what;
  }
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited, 10.0) << "deadline did not cut the 30s sleep short";
}

TEST(SpawnAndWait, FastChildrenFinishUnderADeadline) {
  EXPECT_EQ(proc::spawn_and_wait("/bin/sh", {"-c", "exit 7"}, "",
                                 /*timeout_s=*/30),
            7);
  EXPECT_EQ(proc::spawn_and_wait("/bin/sh", {"-c", "exit 0"}, ""), 0);
}

// ------------------------------------------------ worker binary discovery

TEST(WorkerBinaryDiscovery, NearResolvesSelfAndSibling) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "worker-binary-near-test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "mflushsim");
    out << "stub";
  }

  // The executable *is* mflushsim (possibly via a rename check on path).
  EXPECT_EQ(worker_binary_near((dir / "mflushsim").string()),
            (dir / "mflushsim").string());
  // Another tool in the same directory finds the sibling — the argv[0]
  // fallback path used where /proc/self/exe does not exist.
  EXPECT_EQ(worker_binary_near((dir / "renamed-tool").string()),
            (dir / "mflushsim").string());
  EXPECT_EQ(worker_binary_near(""), "");

  fs::remove_all(dir);
  // No mflushsim anywhere near: discovery genuinely fails.
  EXPECT_EQ(worker_binary_near((dir / "renamed-tool").string()), "");
}

TEST(WorkerBinaryDiscovery, RecordedArgv0IsAGracefulFallback) {
  // record_argv0 must never break discovery that already works (the env
  // var and /proc/self/exe take precedence), even fed odd values.
  record_argv0(nullptr);
  record_argv0("");
  record_argv0("relative-name-not-on-disk");
  const std::string before = default_worker_binary();
  record_argv0("/nonexistent/dir/some-tool");
  EXPECT_EQ(default_worker_binary(), before);
}

// -------------------------------------------------------------- the sweep
// conveniences stay routed through the backend machinery

TEST(Backend, RunExperimentStreamsProgress) {
  ExperimentSpec spec;
  spec.workloads = {*workloads::by_name("2W1")};
  spec.policies = {PolicySpec::icount(), PolicySpec::mflush()};
  spec.warmup = 300;
  spec.measure = 900;

  std::atomic<int> seen{0};
  ResultSink sink([&](const JobSpec&, const RunResult&) { ++seen; });
  SerialBackend serial;
  const auto results = run_experiment(spec, serial, sink);
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(seen.load(), 2);
}

}  // namespace
}  // namespace mflush
