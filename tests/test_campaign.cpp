#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/fsio.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/campaign.h"
#include "sim/workloads.h"

namespace mflush {
namespace {

namespace fs = std::filesystem;

// Journal geometry pinned by campaign::kFormatVersion: 12-byte header
// (magic + version), then 33-byte records (u32 len, 21-byte payload,
// u64 checksum). The fuzz tests below lean on these numbers; a layout
// change must bump the version AND update them.
constexpr std::size_t kHeader = 12;
constexpr std::size_t kRecord = 33;

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.name = "campaign-test";
  spec.workloads = {*workloads::by_name("2W1"), *workloads::by_name("2W3")};
  spec.policies = {PolicySpec::icount(), PolicySpec::mflush()};
  spec.warmup = 200;
  spec.measure = 400;
  return spec;
}

void expect_identical_results(const std::vector<RunResult>& a,
                              const std::vector<RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(a[i].policy, b[i].policy);
    // Full SimMetrics equality — the campaign bit-identity contract.
    EXPECT_TRUE(a[i].metrics == b[i].metrics);
  }
}

/// Serial execution that counts how many jobs actually simulate — the
/// probe for "cache hits execute nothing".
class CountingBackend final : public ExperimentBackend {
 public:
  [[nodiscard]] std::string name() const override { return "counting"; }
  void run(const std::vector<JobSpec>& jobs, ResultSink& sink) override {
    executed += jobs.size();
    inner.run(jobs, sink);
  }

  SerialBackend inner;
  std::size_t executed = 0;
};

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("campaign-") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string journal() const {
    return (dir_ / "journal.wal").string();
  }
  [[nodiscard]] std::vector<std::uint8_t> journal_bytes() const {
    return fsio::read_file_bytes(journal(), "journal");
  }

  fs::path dir_;
};

// ------------------------------------------------------------------- keys

TEST_F(CampaignTest, JobKeyIgnoresIdAndTracksContent) {
  const std::vector<JobSpec> jobs = small_spec().expand();
  ASSERT_GE(jobs.size(), 2u);

  JobSpec copy = jobs[0];
  copy.id = 999;
  EXPECT_EQ(campaign::job_key(jobs[0]), campaign::job_key(copy))
      << "the result-slot id must not leak into the content key";

  EXPECT_NE(campaign::job_key(jobs[0]), campaign::job_key(jobs[1]));
  copy = jobs[0];
  copy.seed = jobs[0].seed + 1;
  EXPECT_NE(campaign::job_key(jobs[0]), campaign::job_key(copy));
  copy = jobs[0];
  copy.measure += 1;
  EXPECT_NE(campaign::job_key(jobs[0]), campaign::job_key(copy));

  const std::string hex = campaign::key_hex(campaign::job_key(jobs[0]));
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(campaign::key_hex(0x0123456789abcdefull), "0123456789abcdef");
}

// ------------------------------------------------------- journal replay

TEST_F(CampaignTest, JournalRoundTripsThroughResume) {
  const ExperimentSpec spec = small_spec();
  const std::vector<JobSpec> jobs = spec.expand();
  {
    CampaignStore store = CampaignStore::create(dir_.string(), spec);
    store.record_dispatched(jobs);
    store.record_done(jobs[0], run_job(jobs[0]));
    store.record_failed(jobs[1], 2);
  }

  CampaignStore store = CampaignStore::resume(dir_.string());
  const campaign::Frontier& f = store.frontier();
  EXPECT_FALSE(f.torn);
  EXPECT_EQ(f.records, jobs.size() + 2);
  using campaign::JobState;
  EXPECT_EQ(f.count(JobState::kDone), 1u);
  EXPECT_EQ(f.count(JobState::kFailed), 1u);
  EXPECT_EQ(f.count(JobState::kDispatched), jobs.size() - 2);

  const auto it = f.jobs.find(campaign::job_key(jobs[1]));
  ASSERT_NE(it, f.jobs.end());
  EXPECT_EQ(it->second.state, JobState::kFailed);
  EXPECT_EQ(it->second.aux, 2u);
  EXPECT_EQ(it->second.job_id, jobs[1].id);

  EXPECT_EQ(store.spec().to_bytes(), spec.to_bytes());
  ASSERT_TRUE(store.cached(jobs[0]).has_value());
  EXPECT_FALSE(store.cached(jobs[1]).has_value());
}

TEST_F(CampaignTest, ReplayRecoversExactFrontierAtEveryTruncationOffset) {
  const ExperimentSpec spec = small_spec();
  const std::vector<JobSpec> jobs = spec.expand();
  {
    CampaignStore store = CampaignStore::create(dir_.string(), spec);
    store.record_dispatched(jobs);
    store.record_done(jobs[0], run_job(jobs[0]));
    store.record_failed(jobs[1], 1);
  }
  const std::vector<std::uint8_t> full = journal_bytes();
  ASSERT_EQ(full.size(), kHeader + (jobs.size() + 2) * kRecord)
      << "journal geometry changed — update kHeader/kRecord and bump "
         "campaign::kFormatVersion";

  // A SIGKILL can tear the log at *any* byte. Whatever the cut, replay
  // must recover exactly the longest prefix of whole records.
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    const std::span<const std::uint8_t> prefix(full.data(), cut);
    const campaign::Frontier f = campaign::replay(prefix);
    if (cut < kHeader) {
      EXPECT_EQ(f.records, 0u);
      EXPECT_EQ(f.valid_bytes, 0u);
      EXPECT_EQ(f.torn, cut != 0);
      continue;
    }
    const std::size_t whole = (cut - kHeader) / kRecord;
    EXPECT_EQ(f.records, whole);
    EXPECT_EQ(f.valid_bytes, kHeader + whole * kRecord);
    EXPECT_EQ(f.torn, f.valid_bytes != cut);
  }
}

TEST_F(CampaignTest, ReplayStopsAtCorruptionAnywhereInTheBody) {
  const ExperimentSpec spec = small_spec();
  const std::vector<JobSpec> jobs = spec.expand();
  {
    CampaignStore store = CampaignStore::create(dir_.string(), spec);
    store.record_dispatched(jobs);
    store.record_done(jobs[0], run_job(jobs[0]));
  }
  const std::vector<std::uint8_t> full = journal_bytes();

  // Flip every body byte in turn: the checksum (or the length bound)
  // must stop replay at — or before — the record containing the flip,
  // never admit the damaged record, and never throw.
  for (std::size_t p = kHeader; p < full.size(); ++p) {
    SCOPED_TRACE("flipped byte " + std::to_string(p));
    std::vector<std::uint8_t> damaged = full;
    damaged[p] ^= 0xff;
    const campaign::Frontier f = campaign::replay(damaged);
    EXPECT_TRUE(f.torn);
    const std::size_t containing = kHeader + ((p - kHeader) / kRecord) * kRecord;
    EXPECT_LE(f.valid_bytes, containing);
  }

  // A damaged *header* is a different animal: that file is not a (usable)
  // journal at all, and replay must say so loudly.
  std::vector<std::uint8_t> bad_magic = full;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW((void)campaign::replay(bad_magic), std::runtime_error);
  std::vector<std::uint8_t> bad_version = full;
  bad_version[8] ^= 0xff;
  EXPECT_THROW((void)campaign::replay(bad_version), std::runtime_error);
}

TEST_F(CampaignTest, ResumeTruncatesTornTailAndKeepsAppending) {
  const ExperimentSpec spec = small_spec();
  const std::vector<JobSpec> jobs = spec.expand();
  {
    CampaignStore store = CampaignStore::create(dir_.string(), spec);
    store.record_dispatched(jobs);
    store.record_done(jobs[0], run_job(jobs[0]));
  }
  // Tear the last record mid-payload, as a crash during write() would.
  const std::vector<std::uint8_t> full = journal_bytes();
  fs::resize_file(journal(), full.size() - kRecord / 2);

  std::vector<std::string> events;
  CampaignStore::Options opts;
  opts.on_event = [&](const std::string& line) { events.push_back(line); };
  {
    CampaignStore store = CampaignStore::resume(dir_.string(), opts);
    EXPECT_TRUE(store.frontier().torn);
    EXPECT_EQ(store.frontier().records, jobs.size());  // done record lost
    store.record_failed(jobs[1], 1);
  }
  ASSERT_FALSE(events.empty());
  EXPECT_NE(events.front().find("torn"), std::string::npos)
      << events.front();

  // The torn tail was truncated before the append, so the journal is now
  // whole again: dispatched records + the new failed one, no tear.
  const campaign::Frontier f = campaign::replay(journal_bytes());
  EXPECT_FALSE(f.torn);
  EXPECT_EQ(f.records, jobs.size() + 1);
  // The done record died in the tear, but the cache entry survived it:
  // the job is still not re-executed on resume.
  CampaignStore store = CampaignStore::resume(dir_.string());
  EXPECT_TRUE(store.cached(jobs[0]).has_value());
}

// ------------------------------------------------------ durable execution

TEST_F(CampaignTest, ResumedCampaignIsBitIdenticalAndFullyCached) {
  const ExperimentSpec spec = small_spec();
  SerialBackend serial;
  const std::vector<RunResult> reference = run_experiment(spec, serial);

  CountingBackend first;
  {
    CampaignStore store = CampaignStore::create(dir_.string(), spec);
    ResultSink sink;
    expect_identical_results(run_experiment_durable(store, first, sink),
                             reference);
  }
  EXPECT_EQ(first.executed, spec.num_points());

  // Re-submitting the identical spec: 100% cache hits, zero simulated.
  CountingBackend second;
  CampaignStore store = CampaignStore::resume(dir_.string());
  ResultSink sink;
  expect_identical_results(run_experiment_durable(store, second, sink),
                           reference);
  EXPECT_EQ(second.executed, 0u);
}

TEST_F(CampaignTest, KilledMidCampaignResumesToTheUninterruptedResult) {
  const ExperimentSpec spec = small_spec();
  SerialBackend serial;
  const std::vector<RunResult> reference = run_experiment(spec, serial);

  // The child runs the campaign with the crash hook armed: SIGKILL the
  // instant the 2nd done record becomes durable — no destructors, no
  // flushes, a torn-anywhere crash by construction.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("MFLUSH_CAMPAIGN_KILL_AFTER", "2", 1);
    try {
      CampaignStore store = CampaignStore::create(dir_.string(), spec);
      SerialBackend child_serial;
      ResultSink sink;
      (void)run_experiment_durable(store, child_serial, sink);
    } catch (...) {
    }
    ::_exit(42);  // reached only if the kill hook failed to fire
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited instead of dying mid-campaign (status " << status
      << ")";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Resume re-executes only the delta and lands bit-identical to the
  // uninterrupted serial run.
  CountingBackend counting;
  CampaignStore store = CampaignStore::resume(dir_.string());
  EXPECT_EQ(store.frontier().count(campaign::JobState::kDone), 2u);
  ResultSink sink;
  expect_identical_results(run_experiment_durable(store, counting, sink),
                           reference);
  EXPECT_EQ(counting.executed, spec.num_points() - 2);
}

TEST_F(CampaignTest, BackendFailureJournalsTheHolesAndResumes) {
  const ExperimentSpec spec = small_spec();
  SerialBackend serial;
  const std::vector<RunResult> reference = run_experiment(spec, serial);

  /// Completes the first job of its first batch, then dies — the shape of
  /// a sweep losing its worker pool mid-run.
  class FlakyBackend final : public ExperimentBackend {
   public:
    [[nodiscard]] std::string name() const override { return "flaky"; }
    void run(const std::vector<JobSpec>& jobs, ResultSink& sink) override {
      if (!failed_) {
        failed_ = true;
        sink.push(jobs.front(), run_job(jobs.front()));
        throw std::runtime_error("worker pool lost");
      }
      SerialBackend().run(jobs, sink);
    }

   private:
    bool failed_ = false;
  };

  {
    CampaignStore store = CampaignStore::create(dir_.string(), spec);
    FlakyBackend flaky;
    ResultSink sink;
    EXPECT_THROW((void)run_experiment_durable(store, flaky, sink),
                 std::runtime_error);
    EXPECT_EQ(store.frontier().count(campaign::JobState::kDone), 1u);
    EXPECT_EQ(store.frontier().count(campaign::JobState::kFailed),
              spec.num_points() - 1);
  }

  CountingBackend counting;
  CampaignStore store = CampaignStore::resume(dir_.string());
  ResultSink sink;
  expect_identical_results(run_experiment_durable(store, counting, sink),
                           reference);
  EXPECT_EQ(counting.executed, spec.num_points() - 1);
}

TEST_F(CampaignTest, CorruptCacheEntryReadsAsAMissAndReExecutes) {
  const ExperimentSpec spec = small_spec();
  {
    CampaignStore store = CampaignStore::create(dir_.string(), spec);
    SerialBackend serial;
    ResultSink sink;
    (void)run_experiment_durable(store, serial, sink);
  }
  // Vandalize one cache entry; the campaign must heal it, not trust it.
  const fs::path cache = dir_ / "cache";
  auto it = fs::directory_iterator(cache);
  ASSERT_NE(it, fs::directory_iterator());
  {
    std::ofstream out(it->path(), std::ios::binary | std::ios::trunc);
    out << "not a result archive";
  }

  CountingBackend counting;
  CampaignStore store = CampaignStore::resume(dir_.string());
  ResultSink sink;
  const std::vector<RunResult> results =
      run_experiment_durable(store, counting, sink);
  EXPECT_EQ(counting.executed, 1u);
  SerialBackend serial;
  expect_identical_results(results, run_experiment(spec, serial));
}

// ------------------------------------------------- generations & guards

TEST_F(CampaignTest, FreshCreateOnSameSpecDemandsResume) {
  const ExperimentSpec spec = small_spec();
  { (void)CampaignStore::create(dir_.string(), spec); }
  try {
    (void)CampaignStore::create(dir_.string(), spec);
    FAIL() << "expected the same-spec restart to be refused";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos)
        << e.what();
  }
}

TEST_F(CampaignTest, ResumeWithoutACampaignThrows) {
  EXPECT_THROW((void)CampaignStore::resume(dir_.string()),
               std::runtime_error);
}

TEST_F(CampaignTest, NewSpecRotatesTheJournalButKeepsTheCache) {
  ExperimentSpec first = small_spec();
  first.policies = {PolicySpec::icount()};
  {
    CampaignStore store = CampaignStore::create(dir_.string(), first);
    SerialBackend serial;
    ResultSink sink;
    (void)run_experiment_durable(store, serial, sink);
  }

  // A different spec whose job set overlaps the first: the old journal is
  // rotated aside and only the genuinely new jobs simulate.
  ExperimentSpec second = small_spec();
  second.policies = {PolicySpec::icount(), PolicySpec::mflush()};
  CountingBackend counting;
  {
    CampaignStore store = CampaignStore::create(dir_.string(), second);
    ResultSink sink;
    const std::vector<RunResult> results =
        run_experiment_durable(store, counting, sink);
    SerialBackend serial;
    expect_identical_results(results, run_experiment(second, serial));
  }
  EXPECT_EQ(counting.executed,
            second.num_points() - first.num_points())
      << "the overlap with the previous spec should have come from cache";
  EXPECT_TRUE(fs::exists(dir_ / "journal.wal.1"));
  EXPECT_TRUE(fs::exists(dir_ / "spec.1.mfc"));
}

}  // namespace
}  // namespace mflush
