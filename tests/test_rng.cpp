#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"

namespace mflush {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 r(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, DoubleMeanNearHalf) {
  Xoshiro256 r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 r(5);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowCoversRange) {
  Xoshiro256 r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Xoshiro256, ChanceFrequency) {
  Xoshiro256 r(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, GeometricMeanApproximates) {
  Xoshiro256 r(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(r.geometric(5.0, 1000));
  EXPECT_NEAR(sum / n, 5.0, 0.5);
}

TEST(Xoshiro256, GeometricRespectsCap) {
  Xoshiro256 r(29);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.geometric(50.0, 8);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 8u);
  }
}

TEST(Xoshiro256, GeometricDegenerateMean) {
  Xoshiro256 r(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.geometric(1.0, 10), 1u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.geometric(0.5, 10), 1u);
}

TEST(DeriveSeed, DistinctPerDomainAndIndex) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t d = 0; d < 8; ++d)
    for (std::uint64_t i = 0; i < 8; ++i)
      seeds.insert(derive_seed(1, d, i));
  EXPECT_EQ(seeds.size(), 64u);
}

TEST(DeriveSeed, StableAcrossCalls) {
  EXPECT_EQ(derive_seed(99, 1, 2), derive_seed(99, 1, 2));
}

TEST(DeriveSeed, RootSeedMatters) {
  EXPECT_NE(derive_seed(1, 0, 0), derive_seed(2, 0, 0));
}

}  // namespace
}  // namespace mflush
