#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/snapshot.h"
#include "sim/workloads.h"

/// Decoupled per-core clocks (CmpSimulator::run) must be bit-identical to
/// lockstep execution: every metric, every per-core statistic (including
/// the per-cycle dispatch blocker diagnosis that advance_idle replays),
/// every energy figure. These tests drive both modes over the policy
/// families and the workload shapes the scheduler optimizes for —
/// especially heterogeneous chips where one busy core keeps the chip clock
/// ticking while its siblings sleep.
namespace mflush {
namespace {

Workload wl(const std::string& name) {
  if (const auto w = workloads::by_name(name)) return *w;
  Workload w;  // benchmark-code string (e.g. "aadddddd")
  w.name = name;
  for (const char c : name) w.codes.push_back(c);
  return w;
}

std::vector<PolicySpec> all_policy_families() {
  return {PolicySpec::icount(),        PolicySpec::brcount(),
          PolicySpec::misscount(),     PolicySpec::flush_spec(30),
          PolicySpec::flush_ns(),      PolicySpec::stall(30),
          PolicySpec::mflush(),        PolicySpec::mflush_no_preventive()};
}

/// Field-by-field CoreStats comparison (memcmp would compare padding).
void expect_core_stats_equal(const CoreStats& a, const CoreStats& b,
                             const std::string& what) {
#define MFLUSH_CK(f) \
  EXPECT_EQ(a.f, b.f) << what << ": CoreStats::" #f " diverged"
  MFLUSH_CK(cycles);
  MFLUSH_CK(committed);
  MFLUSH_CK(fetched);
  MFLUSH_CK(fetched_wrong_path);
  MFLUSH_CK(branches_resolved);
  MFLUSH_CK(mispredicts);
  MFLUSH_CK(loads_issued);
  MFLUSH_CK(policy_flush_events);
  MFLUSH_CK(policy_flushed_by_stage);
  MFLUSH_CK(branch_squashed_by_stage);
  MFLUSH_CK(dispatch_blocked_young);
  MFLUSH_CK(dispatch_blocked_rob);
  MFLUSH_CK(dispatch_blocked_iq_int);
  MFLUSH_CK(dispatch_blocked_iq_fp);
  MFLUSH_CK(dispatch_blocked_iq_mem);
  MFLUSH_CK(dispatch_blocked_regs);
  MFLUSH_CK(instructions_issued);
#undef MFLUSH_CK
}

void expect_runs_identical(const SimConfig& cfg, const Workload& w,
                           const PolicySpec& p, Cycle warmup, Cycle measure) {
  const std::string what = w.name + "/" + p.label();
  CmpSimulator skip(cfg, w, p);
  CmpSimulator lockstep(cfg, w, p);
  skip.set_event_skip(true);
  lockstep.set_event_skip(false);

  // Interval boundaries land mid-skew: sleeping cores must survive the
  // warmup→reset→measure sequence with their counters fully credited.
  skip.run(warmup);
  lockstep.run(warmup);
  skip.reset_stats();
  lockstep.reset_stats();
  skip.run(measure);
  lockstep.run(measure);

  const SimMetrics ms = skip.metrics();
  const SimMetrics ml = lockstep.metrics();
  EXPECT_EQ(ms.cycles, ml.cycles) << what;
  EXPECT_EQ(ms.committed, ml.committed) << what;
  EXPECT_EQ(ms.flush_events, ml.flush_events) << what;
  EXPECT_EQ(ms.flushed_instructions, ml.flushed_instructions) << what;
  EXPECT_EQ(ms.branches_resolved, ml.branches_resolved) << what;
  EXPECT_EQ(ms.mispredicts, ml.mispredicts) << what;
  EXPECT_EQ(ms.l2_hits_observed, ml.l2_hits_observed) << what;
  EXPECT_EQ(ms.l2_misses_observed, ml.l2_misses_observed) << what;
  // The fig10/fig11 energy inputs are exact counter sums: identical
  // counters must give bitwise-identical energy figures.
  EXPECT_EQ(ms.energy.committed_units, ml.energy.committed_units) << what;
  EXPECT_EQ(ms.energy.flush_wasted_units, ml.energy.flush_wasted_units)
      << what;
  EXPECT_EQ(ms.energy.branch_wasted_units, ml.energy.branch_wasted_units)
      << what;

  for (CoreId c = 0; c < skip.num_cores(); ++c) {
    expect_core_stats_equal(skip.core(c).stats(), lockstep.core(c).stats(),
                            what + " core " + std::to_string(c));
  }
  const MemStats& a = skip.memory().stats();
  const MemStats& b = lockstep.memory().stats();
  EXPECT_EQ(a.loads, b.loads) << what;
  EXPECT_EQ(a.stores, b.stores) << what;
  EXPECT_EQ(a.ifetches, b.ifetches) << what;
  EXPECT_EQ(a.l1_writebacks, b.l1_writebacks) << what;
  // Memory-model counters (DRAM row-buffer behaviour) must match too.
  EXPECT_EQ(ms.dram_row_hits, ml.dram_row_hits) << what;
  EXPECT_EQ(ms.dram_row_misses, ml.dram_row_misses) << what;
  EXPECT_EQ(ms.dram_row_conflicts, ml.dram_row_conflicts) << what;
  EXPECT_EQ(ms.dram_far_accesses, ml.dram_far_accesses) << what;
  EXPECT_EQ(ms.dram_bank_busy_cycles, ml.dram_bank_busy_cycles) << what;
}

void expect_runs_identical(const Workload& w, const PolicySpec& p,
                           Cycle warmup, Cycle measure) {
  expect_runs_identical(SimConfig::paper_default(w.num_cores(), 1), w, p,
                        warmup, measure);
}

/// Paper-default chip with the banked-DRAM memory model swapped in.
SimConfig dram_config(std::uint32_t num_cores, std::uint64_t seed = 1) {
  SimConfig cfg = SimConfig::paper_default(num_cores, seed);
  cfg.mem.memory_model = MemModelKind::BankedDram;
  return cfg;
}

TEST(DecoupledClock, BitIdenticalToLockstepAcrossPolicyGrid) {
  // 4 workload shapes x 8 policy families = the 32-point identity grid.
  // "aadddddd" is the decoupling showcase: one compute-bound core (gzip)
  // keeps the chip clock busy while three mcf cores block on long-latency
  // loads and sleep.
  for (const std::string& w : {std::string("2W3"), std::string("4W3"),
                               std::string("8W3"), std::string("aadddddd")}) {
    for (const PolicySpec& p : all_policy_families()) {
      expect_runs_identical(wl(w), p, 2'000, 6'000);
    }
  }
}

TEST(DecoupledClock, BitIdenticalToLockstepUnderDramModel) {
  // The banked-DRAM model completes out of issue order, which is exactly
  // what the per-core horizon machinery (next_done_if) must survive: an
  // unsound horizon strands a sleeping core past a delivered wakeup and
  // diverges from lockstep.
  for (const std::string& w :
       {std::string("2W3"), std::string("4W3"), std::string("aadddddd")}) {
    const Workload work = wl(w);
    for (const PolicySpec& p :
         {PolicySpec::flush_spec(30), PolicySpec::stall(30),
          PolicySpec::mflush()}) {
      expect_runs_identical(dram_config(work.num_cores()), work, p, 2'000,
                            6'000);
    }
  }
}

TEST(DecoupledClock, BitIdenticalToLockstepUnderDramFarClass) {
  // Far latency class enabled over every thread's working set: the +800
  // cycle tail pushes completions deep into the wheel's far queue.
  const Workload work = wl("4W3");
  SimConfig cfg = dram_config(work.num_cores());
  // Trace addresses live in per-thread spaces salted above 2^40
  // (trace/generator.cpp), so covering every line needs the full range.
  cfg.mem.dram.far_base = 0;
  cfg.mem.dram.far_bytes = ~std::uint64_t{0};
  expect_runs_identical(cfg, work, PolicySpec::mflush(), 2'000, 6'000);
  // Guard against the far class silently never triggering.
  CmpSimulator probe(cfg, work, PolicySpec::mflush());
  probe.run(8'000);
  EXPECT_GT(probe.metrics().dram_far_accesses, 0u);
}

TEST(DecoupledClock, HeterogeneousChipActuallySkips) {
  // One busy core + three blocked cores: the exact configuration the
  // all-or-nothing chip-level skip could never touch. The decoupled
  // scheduler must put the blocked cores to sleep for a substantial
  // fraction of their cycles while staying bit-identical (covered above).
  CmpSimulator sim(wl("aadddddd"), PolicySpec::flush_spec(30), 1);
  sim.set_event_skip(true);  // the test asserts skipping, whatever the env
  sim.run(30'000);
  const Cycle total = Cycle{30'000} * sim.num_cores();
  EXPECT_GT(sim.idle_cycles_skipped(), total / 10)
      << "blocked cores never slept under a busy sibling";
}

TEST(DecoupledClock, SetEventSkipDisablesSkipping) {
  CmpSimulator sim(wl("8W3"), PolicySpec::flush_spec(30), 1);
  sim.set_event_skip(false);
  sim.run(20'000);
  EXPECT_EQ(sim.idle_cycles_skipped(), 0u);
}

TEST(DecoupledClock, SnapshotRoundTripsLocalClocksMidSkew) {
  // Capture while local clocks are skewed (cores asleep with pending wake
  // horizons), then verify resumed == continuous — the local clocks are
  // part of the snapshot payload (format v2).
  CmpSimulator sim(wl("aadddddd"), PolicySpec::flush_spec(30), 1);
  sim.set_event_skip(true);  // the test asserts a mid-skew sleep state
  sim.run(10'000);

  bool any_asleep = false;
  for (CoreId c = 0; c < sim.num_cores(); ++c)
    any_asleep |= sim.core_clock(c).asleep;
  EXPECT_TRUE(any_asleep)
      << "capture point never reached a mid-skew sleep state";

  const std::vector<std::uint8_t> bytes = snapshot::capture(sim);
  auto resumed = snapshot::make(bytes);
  resumed->set_event_skip(true);
  sim.run(10'000);
  resumed->run(10'000);

  const SimMetrics a = sim.metrics();
  const SimMetrics b = resumed->metrics();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.flush_events, b.flush_events);
  EXPECT_EQ(a.mispredicts, b.mispredicts);
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    expect_core_stats_equal(sim.core(c).stats(), resumed->core(c).stats(),
                            "resumed core " + std::to_string(c));
    EXPECT_EQ(sim.core_clock(c).asleep, resumed->core_clock(c).asleep);
    EXPECT_EQ(sim.core_clock(c).slept_at, resumed->core_clock(c).slept_at);
    EXPECT_EQ(sim.core_clock(c).wake_at, resumed->core_clock(c).wake_at);
  }
}

TEST(DecoupledClock, SnapshotResumeIdenticalInBothModes) {
  // A snapshot written by a decoupled run must resume correctly into a
  // lockstep simulator and vice versa: the serialized local clocks are
  // synced at capture time, so mode is a host choice, not simulator state.
  CmpSimulator writer(wl("2W3"), PolicySpec::mflush(), 1);
  writer.run(8'000);
  const std::vector<std::uint8_t> bytes = snapshot::capture(writer);

  auto decoupled = snapshot::make(bytes);
  auto lockstep = snapshot::make(bytes);
  decoupled->set_event_skip(true);
  lockstep->set_event_skip(false);
  decoupled->run(8'000);
  lockstep->run(8'000);
  EXPECT_EQ(decoupled->metrics().committed, lockstep->metrics().committed);
  EXPECT_EQ(decoupled->metrics().flush_events,
            lockstep->metrics().flush_events);
  for (CoreId c = 0; c < decoupled->num_cores(); ++c) {
    expect_core_stats_equal(decoupled->core(c).stats(),
                            lockstep->core(c).stats(),
                            "cross-mode core " + std::to_string(c));
  }
}

TEST(DecoupledClock, SnapshotResumeContinuousUnderDram) {
  // Snapshot taken mid-run with DRAM state live (open rows, bank/channel
  // reservations, wheel-scheduled completions): resumed must stay
  // bit-identical to the continuous run. Exercises the DRAM model's
  // save/load and the config echo that rebuilds the right model kind.
  const Workload work = wl("4W3");
  CmpSimulator sim(dram_config(work.num_cores()), work,
                   PolicySpec::flush_spec(30));
  sim.run(10'000);

  const std::vector<std::uint8_t> bytes = snapshot::capture(sim);
  auto resumed = snapshot::make(bytes);
  sim.run(10'000);
  resumed->run(10'000);

  const SimMetrics a = sim.metrics();
  const SimMetrics b = resumed->metrics();
  EXPECT_EQ(a, b) << "resumed DRAM run diverged from continuous";
  EXPECT_GT(a.dram_row_hits + a.dram_row_misses + a.dram_row_conflicts, 0u)
      << "DRAM model never exercised";
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    expect_core_stats_equal(sim.core(c).stats(), resumed->core(c).stats(),
                            "dram resumed core " + std::to_string(c));
  }
}

}  // namespace
}  // namespace mflush
