#include <gtest/gtest.h>

#include <memory>

#include "core/factory.h"
#include "core/icount.h"
#include "mem/hierarchy.h"
#include "pipeline/smt_core.h"
#include "trace/trace_io.h"

namespace mflush {
namespace {

TraceInstr alu(Addr pc, LogReg dst, LogReg s0 = kNoLogReg,
               LogReg s1 = kNoLogReg) {
  TraceInstr i;
  i.pc = pc;
  i.cls = InstrClass::IntAlu;
  i.dst = dst;
  i.src[0] = s0;
  i.src[1] = s1;
  return i;
}

TraceInstr load(Addr pc, LogReg dst, Addr addr, LogReg base = kNoLogReg) {
  TraceInstr i;
  i.pc = pc;
  i.cls = InstrClass::Load;
  i.dst = dst;
  i.src[0] = base;
  i.eff_addr = addr;
  return i;
}

/// A linear block of independent ALU ops walking sequential pcs.
std::vector<TraceInstr> alu_block(std::size_t n, Addr base_pc = 0x400000) {
  std::vector<TraceInstr> v;
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(alu(base_pc + 4 * i, static_cast<LogReg>(i % 32)));
  return v;
}

struct CoreRig {
  explicit CoreRig(std::vector<std::vector<TraceInstr>> thread_traces,
                   PolicySpec policy = PolicySpec::icount(),
                   std::uint32_t num_cores = 1)
      : cfg(SimConfig::paper_default(num_cores)), mem(cfg) {
    std::vector<TraceSource*> raw;
    for (auto& t : thread_traces) {
      sources.push_back(
          std::make_unique<VectorTraceSource>(std::move(t), "test"));
      raw.push_back(sources.back().get());
    }
    core = std::make_unique<SmtCore>(0, cfg, mem, make_policy(policy, cfg),
                                     raw);
  }

  void run(Cycle cycles) {
    for (Cycle t = 0; t < cycles; ++t) {
      ++now;
      mem.tick(now);
      core->tick(now);
    }
  }

  SimConfig cfg;
  MemoryHierarchy mem;
  std::vector<std::unique_ptr<VectorTraceSource>> sources;
  std::unique_ptr<SmtCore> core;
  Cycle now = 0;
};

TEST(SmtCore, CommitsIndependentAluStream) {
  CoreRig rig({alu_block(64)}, PolicySpec::icount());
  rig.run(3000);  // cold I-cache lines fill serially (~272 cycles each)
  EXPECT_GT(rig.core->stats().committed[0], 500u);
  EXPECT_GE(rig.core->stats().fetched, rig.core->stats().committed[0]);
}

TEST(SmtCore, PipelineDepthMatchesElevenStages) {
  // A single independent instruction takes ~11 cycles fetch->commit:
  // 3 fetch + 2 decode + 2 rename + dispatch/queue + issue + execute +
  // commit. Measure the first commit cycle.
  CoreRig rig({alu_block(256)});
  Cycle first_commit = 0;
  for (Cycle t = 0; t < 800 && first_commit == 0; ++t) {
    rig.run(1);
    if (rig.core->stats().committed[0] > 0) first_commit = rig.now;
  }
  ASSERT_GT(first_commit, 0u);
  // Cold start pays the ITLB walk (300) plus an L2->memory fill (272)
  // before the 11-stage pipeline fills.
  EXPECT_GE(first_commit, 11u);
  EXPECT_LE(first_commit, 11u + 300u + 272u + 60u);
}

TEST(SmtCore, BothThreadsProgress) {
  CoreRig rig({alu_block(64, 0x400000), alu_block(64, 0x800000)});
  rig.run(1500);
  EXPECT_GT(rig.core->stats().committed[0], 50u);
  EXPECT_GT(rig.core->stats().committed[1], 50u);
}

TEST(SmtCore, DependentChainSerializes) {
  // A fully serial chain commits at ~1 IPC at best; measure it is much
  // slower than an independent stream over the same interval.
  std::vector<TraceInstr> chain;
  for (std::size_t i = 0; i < 512; ++i)
    chain.push_back(alu(0x400000 + 4 * i, 1, 1));  // r1 = f(r1)
  CoreRig serial({std::move(chain)});
  CoreRig parallel({alu_block(512)});
  serial.run(15000);
  parallel.run(15000);
  EXPECT_LT(serial.core->stats().committed[0] + 50,
            parallel.core->stats().committed[0]);
}

TEST(SmtCore, LoadLatencyGatesDependents) {
  // load r1 <- [cold line]; r2 = f(r1): the add cannot commit before the
  // load returns from memory (~272+ cycles).
  std::vector<TraceInstr> t;
  t.push_back(load(0x400000, 1, 0x10000000));
  t.push_back(alu(0x400004, 2, 1));
  for (std::size_t i = 0; i < 64; ++i)
    t.push_back(alu(0x400008 + 4 * i, 3));  // filler (independent)
  CoreRig rig({std::move(t)});
  rig.run(620);
  const auto committed_early = rig.core->stats().committed[0];
  rig.run(800);
  // After the miss resolves everything drains.
  EXPECT_GT(rig.core->stats().committed[0], committed_early + 32);
}

TEST(SmtCore, FlushAfterLoadSquashesAndRecovers) {
  // Build: one cold-miss load followed by many instructions. FLUSH-S30
  // must flush the thread, stall it, then resume and commit everything.
  std::vector<TraceInstr> t;
  t.push_back(load(0x400000, 1, 0x10000000));
  for (std::size_t i = 0; i < 256; ++i)
    t.push_back(alu(0x400004 + 4 * i, static_cast<LogReg>(2 + i % 8)));
  CoreRig rig({std::move(t)}, PolicySpec::flush_spec(30));
  rig.run(9000);
  const CoreStats& s = rig.core->stats();
  EXPECT_GE(s.policy_flush_events, 1u);
  EXPECT_GT(s.policy_flushed_total(), 0u);
  EXPECT_GT(s.committed[0], 200u);  // squashed work was re-fetched
}

TEST(SmtCore, IcountNeverFlushes) {
  std::vector<TraceInstr> t;
  t.push_back(load(0x400000, 1, 0x10000000));
  for (std::size_t i = 0; i < 128; ++i)
    t.push_back(alu(0x400004 + 4 * i, 2));
  CoreRig rig({std::move(t)}, PolicySpec::icount());
  rig.run(1800);
  EXPECT_EQ(rig.core->stats().policy_flush_events, 0u);
  EXPECT_EQ(rig.core->stats().policy_flushed_total(), 0u);
}

TEST(SmtCore, MispredictedBranchSquashesWrongPath) {
  // A taken branch the BTB has never seen: predicted not-taken (cold),
  // fetch runs down the wrong path, resolution squashes it.
  std::vector<TraceInstr> t;
  for (int rep = 0; rep < 8; ++rep) {
    const Addr base = 0x400000 + rep * 0x1000;
    t.push_back(alu(base, 1));
    TraceInstr br;
    br.pc = base + 4;
    br.cls = InstrClass::Branch;
    br.src[0] = 1;
    br.taken = true;
    br.target = base + 0x100;
    t.push_back(br);
    t.push_back(alu(base + 0x100, 2));
  }
  CoreRig rig({std::move(t)});
  rig.run(9000);
  const CoreStats& s = rig.core->stats();
  EXPECT_GT(s.mispredicts, 0u);
  std::uint64_t branch_squashed = 0;
  for (const auto c : s.branch_squashed_by_stage) branch_squashed += c;
  EXPECT_GT(branch_squashed, 0u);
  EXPECT_GT(s.committed[0], 20u);  // right path still commits
}

TEST(SmtCore, StallUntilLoadBlocksFetchWithoutSquash) {
  std::vector<TraceInstr> t;
  t.push_back(load(0x400000, 1, 0x10000000));
  for (std::size_t i = 0; i < 128; ++i)
    t.push_back(alu(0x400004 + 4 * i, 2));
  CoreRig rig({std::move(t)}, PolicySpec::stall(30));
  rig.run(8000);
  const CoreStats& s = rig.core->stats();
  EXPECT_EQ(s.policy_flushed_total(), 0u);  // STALL never squashes
  EXPECT_GT(s.committed[0], 100u);
}

TEST(SmtCore, PreissueCountsStayConsistent) {
  CoreRig rig({alu_block(128), alu_block(128, 0x800000)});
  for (int step = 0; step < 50; ++step) {
    rig.run(10);
    for (ThreadId t = 0; t < 2; ++t) {
      // preissue never exceeds front-end + all queue capacities.
      EXPECT_LE(rig.core->preissue_count(t),
                rig.cfg.core.fetch_width * 9 + 192 + 8);
    }
  }
}

TEST(SmtCore, EnergyLedgerMatchesSquashes) {
  std::vector<TraceInstr> t;
  t.push_back(load(0x400000, 1, 0x10000000));
  for (std::size_t i = 0; i < 256; ++i)
    t.push_back(alu(0x400004 + 4 * i, 2));
  CoreRig rig({std::move(t)}, PolicySpec::flush_spec(30));
  rig.run(9000);
  const CoreStats& s = rig.core->stats();
  std::uint64_t by_stage = 0;
  for (const auto c : s.policy_flushed_by_stage) by_stage += c;
  EXPECT_EQ(by_stage, s.policy_flushed_total());
  EXPECT_GT(by_stage, 0u);
}

TEST(SmtCore, ResetStatsZeroes) {
  CoreRig rig({alu_block(64)});
  rig.run(700);  // past the cold-start ITLB walk
  rig.core->reset_stats();
  EXPECT_EQ(rig.core->stats().committed_total(), 0u);
  EXPECT_EQ(rig.core->stats().fetched, 0u);
  rig.run(200);
  EXPECT_GT(rig.core->stats().committed_total(), 0u);
}

}  // namespace
}  // namespace mflush
