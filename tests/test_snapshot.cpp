#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "sim/backend.h"
#include "sim/cmp.h"
#include "sim/snapshot.h"
#include "sim/workloads.h"

namespace mflush {
namespace {

/// Broad metric equality: every counter the sweeps report, including the
/// derived memory/energy figures.
void expect_same_metrics(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.per_thread_ipc, b.per_thread_ipc);
  EXPECT_EQ(a.flush_events, b.flush_events);
  EXPECT_EQ(a.flushed_instructions, b.flushed_instructions);
  EXPECT_EQ(a.branches_resolved, b.branches_resolved);
  EXPECT_EQ(a.mispredicts, b.mispredicts);
  EXPECT_EQ(a.l2_hit_time_mean, b.l2_hit_time_mean);
  EXPECT_EQ(a.l2_hit_time_p50, b.l2_hit_time_p50);
  EXPECT_EQ(a.l2_hit_time_p90, b.l2_hit_time_p90);
  EXPECT_EQ(a.l2_hits_observed, b.l2_hits_observed);
  EXPECT_EQ(a.l2_misses_observed, b.l2_misses_observed);
  EXPECT_EQ(a.energy.committed_units, b.energy.committed_units);
  EXPECT_EQ(a.energy.flush_wasted_units, b.energy.flush_wasted_units);
  EXPECT_EQ(a.energy.branch_wasted_units, b.energy.branch_wasted_units);
}

constexpr Cycle kWarm = 12'000;
constexpr Cycle kMeasure = 25'000;

// --------------------------------------------------- resume determinism

class SnapshotDeterminism : public ::testing::TestWithParam<const char*> {};

/// The hard invariant: save -> restore -> run must be bit-identical to the
/// uninterrupted run, for every policy family (each serializes different
/// state) on a multi-core chip.
TEST_P(SnapshotDeterminism, ResumeMatchesContinuous) {
  const Workload wl = *workloads::by_name("4W2");
  const PolicySpec policy = *PolicySpec::parse(GetParam());

  CmpSimulator continuous(wl, policy, /*seed=*/7);
  continuous.run(kWarm);
  const std::vector<std::uint8_t> bytes = snapshot::capture(continuous);
  continuous.reset_stats();
  continuous.run(kMeasure);

  // Restore into a freshly built chip and run the same interval.
  SimConfig cfg = SimConfig::paper_default(wl.num_cores());
  cfg.seed = 7;
  CmpSimulator resumed(cfg, wl, policy);
  snapshot::restore(resumed, bytes);
  EXPECT_EQ(resumed.now(), kWarm);
  resumed.reset_stats();
  resumed.run(kMeasure);

  expect_same_metrics(continuous.metrics(), resumed.metrics());
}

INSTANTIATE_TEST_SUITE_P(Policies, SnapshotDeterminism,
                         ::testing::Values("icount", "flush-s30", "flush-ns",
                                           "stall-s30", "mflush",
                                           "mflush-h4avg"));

TEST(Snapshot, MakeReconstructsFromEmbeddedHeader) {
  const Workload wl = *workloads::by_name("2W4");
  CmpSimulator donor(wl, PolicySpec::mflush(), /*seed=*/3);
  donor.run(kWarm);
  const std::vector<std::uint8_t> bytes = snapshot::capture(donor);
  donor.reset_stats();
  donor.run(kMeasure);

  const std::unique_ptr<CmpSimulator> made = snapshot::make(bytes);
  EXPECT_EQ(made->workload().name, wl.name);
  EXPECT_EQ(made->policy(), PolicySpec::mflush());
  EXPECT_EQ(made->config().seed, 3u);
  made->reset_stats();
  made->run(kMeasure);
  expect_same_metrics(donor.metrics(), made->metrics());
}

TEST(Snapshot, ForksAreIndependentAndIdentical) {
  CmpSimulator donor(*workloads::by_name("2W3"), PolicySpec::flush_spec(30),
                     /*seed=*/1);
  donor.run(kWarm);
  const auto bytes = snapshot::capture(donor);

  const std::unique_ptr<CmpSimulator> fork_a = snapshot::make(bytes);
  const std::unique_ptr<CmpSimulator> fork_b = snapshot::make(bytes);
  // Perturb the donor after forking: forks must not care.
  donor.run(5'000);

  fork_a->reset_stats();
  fork_a->run(kMeasure);
  fork_b->reset_stats();
  fork_b->run(kMeasure);
  expect_same_metrics(fork_a->metrics(), fork_b->metrics());
}

TEST(Snapshot, ForkJobsMatchDirectForks) {
  CmpSimulator donor(*workloads::by_name("2W3"), PolicySpec::mflush(),
                     /*seed=*/1);
  donor.run(kWarm);
  const auto snap = std::make_shared<const std::vector<std::uint8_t>>(
      snapshot::capture(donor));

  std::vector<JobSpec> jobs(3);
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    jobs[k].id = static_cast<std::uint32_t>(k);
    jobs[k].measure = 8'000;
    jobs[k].snapshot = snap;
    jobs[k].fork_advance = static_cast<Cycle>(k) * 2'000;
  }
  InProcessBackend backend;
  const std::vector<RunResult> swept = backend.run_collect(jobs);
  ASSERT_EQ(swept.size(), jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const RunResult direct = run_point_from_snapshot(
        *snap, jobs[k].fork_advance, jobs[k].measure);
    expect_same_metrics(direct.metrics, swept[k].metrics);
    EXPECT_EQ(swept[k].workload, "2W3");
    EXPECT_EQ(swept[k].policy, "MFLUSH");
  }
}

// ------------------------------------------------------- file round trip

TEST(Snapshot, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "mflush_test_chip.snap";
  CmpSimulator donor(*workloads::by_name("2W1"), PolicySpec::icount(),
                     /*seed=*/5);
  donor.run(6'000);
  snapshot::save_file(path, donor);
  donor.reset_stats();
  donor.run(10'000);

  const std::unique_ptr<CmpSimulator> loaded = snapshot::load_file(path);
  loaded->reset_stats();
  loaded->run(10'000);
  expect_same_metrics(donor.metrics(), loaded->metrics());
  std::remove(path.c_str());
}

// ------------------------------------------------------------ rejection

TEST(Snapshot, RefusesProfileBuiltSimulators) {
  // Ad-hoc profiles are not reconstructible from workload codes; both
  // capture and restore must refuse rather than silently swap benchmarks.
  std::vector<BenchmarkProfile> profiles(2);
  profiles[0].name = "adhoc_a";
  profiles[1].name = "adhoc_b";
  CmpSimulator sim(profiles, PolicySpec::icount(), /*seed=*/1);
  sim.run(1'000);
  EXPECT_THROW((void)snapshot::capture(sim), std::runtime_error);

  CmpSimulator donor(*workloads::by_name("2W1"), PolicySpec::icount(),
                     /*seed=*/1);
  donor.run(1'000);
  const auto bytes = snapshot::capture(donor);
  EXPECT_THROW(snapshot::restore(sim, bytes), std::runtime_error);
}

TEST(Snapshot, RejectsCorruptionTruncationAndMismatch) {
  const Workload wl = *workloads::by_name("2W1");
  CmpSimulator donor(wl, PolicySpec::icount(), /*seed=*/1);
  donor.run(4'000);
  std::vector<std::uint8_t> bytes = snapshot::capture(donor);

  // Bit flip anywhere fails the checksum.
  std::vector<std::uint8_t> flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_THROW((void)snapshot::make(flipped), std::runtime_error);

  // Truncation fails before any state is touched.
  const std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() + bytes.size() / 3);
  EXPECT_THROW((void)snapshot::make(cut), std::runtime_error);

  // Restoring into a different experiment is refused.
  CmpSimulator other_policy(wl, PolicySpec::mflush(), /*seed=*/1);
  EXPECT_THROW(snapshot::restore(other_policy, bytes), std::runtime_error);
  CmpSimulator other_seed(wl, PolicySpec::icount(), /*seed=*/2);
  EXPECT_THROW(snapshot::restore(other_seed, bytes), std::runtime_error);
  CmpSimulator other_workload(*workloads::by_name("2W2"),
                              PolicySpec::icount(), /*seed=*/1);
  EXPECT_THROW(snapshot::restore(other_workload, bytes), std::runtime_error);
}

}  // namespace
}  // namespace mflush
