#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/env.h"
#include "sim/cmp.h"
#include "sim/snapshot.h"
#include "sim/workloads.h"

// Cross-process snapshot canonicality: the same warmed state must produce
// BYTE-identical snapshot streams in two different processes.
//
// This is strictly stronger than SnapshotDeterminism.ResumeMatchesContinuous
// (same metrics after restore): content-addressed reuse — the warm-state
// store and the campaign result cache — keys artifacts by a hash of the
// bytes, so two hosts warming the same spec must hash identically. Before
// v3 of the snapshot format this did not hold: raw-memcpy'd records carried
// compiler padding holes whose garbage bytes depended on heap history and
// ASLR. Every hole is now an explicit zero-initialized member (enforced by
// tools/lint/mflush_lint.py's padding check), and RunningStat serializes
// field-wise.

namespace mflush {
namespace {

constexpr Cycle kWarm = 8'000;

std::vector<std::uint8_t> warm_and_capture() {
  const Workload wl = *workloads::by_name("4W2");
  const PolicySpec policy = *PolicySpec::parse("mflush");
  CmpSimulator sim(wl, policy, /*seed=*/7);
  sim.run(kWarm);
  return snapshot::capture(sim);
}

/// Child mode: when MFLUSH_SNAPBYTES_OUT is set, warm a chip, dump the
/// snapshot bytes to that path, and exit. A plain no-op otherwise (the test
/// exists to be re-exec'd by ByteIdenticalAcrossProcesses below).
TEST(SnapshotBytes, ChildCapture) {
  const std::string out = env::str_or("MFLUSH_SNAPBYTES_OUT");
  if (out.empty()) GTEST_SKIP() << "not in child mode";
  const std::vector<std::uint8_t> bytes = warm_and_capture();
  std::ofstream f(out, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.good());
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

TEST(SnapshotBytes, ByteIdenticalAcrossProcesses) {
  // Resolve the symlink here: inside `sh -c` /proc/self/exe would name the
  // shell, not this binary.
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  ASSERT_GT(n, 0);
  self[n] = '\0';

  const std::string a = ::testing::TempDir() + "snapbytes_a.bin";
  const std::string b = ::testing::TempDir() + "snapbytes_b.bin";
  for (const std::string& out : {a, b}) {
    const std::string cmd =
        "MFLUSH_SNAPBYTES_OUT=" + out + " '" + self +
        "' --gtest_filter=SnapshotBytes.ChildCapture"
        " > /dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  }
  const std::vector<std::uint8_t> bytes_a = read_all(a);
  const std::vector<std::uint8_t> bytes_b = read_all(b);
  std::remove(a.c_str());
  std::remove(b.c_str());

  ASSERT_GT(bytes_a.size(), 1024u) << "suspiciously small snapshot";
  ASSERT_EQ(bytes_a.size(), bytes_b.size());
  // Locate the first differing byte (if any) so a regression points at the
  // offending record instead of a bare "buffers differ".
  for (std::size_t i = 0; i < bytes_a.size(); ++i) {
    ASSERT_EQ(bytes_a[i], bytes_b[i])
        << "snapshot streams diverge at byte " << i << " of "
        << bytes_a.size()
        << " — a serialized record is emitting non-canonical bytes "
           "(unzeroed padding?)";
  }

  // And the in-process capture agrees too: same state, same bytes,
  // regardless of which process produced them.
  const std::vector<std::uint8_t> local = warm_and_capture();
  EXPECT_EQ(local, bytes_a);
}

}  // namespace
}  // namespace mflush
