#include <gtest/gtest.h>

#include "trace/profile.h"
#include "trace/spec2000.h"

namespace mflush {
namespace {

TEST(Profile, NormalizedClampsFractions) {
  BenchmarkProfile p;
  p.f_load = 1.5;
  p.p_chase = -0.2;
  p.predictability = 2.0;
  const auto n = p.normalized();
  EXPECT_LE(n.f_load, 1.0);
  EXPECT_GE(n.p_chase, 0.0);
  EXPECT_LE(n.predictability, 1.0);
}

TEST(Profile, NormalizedKeepsMixBelow95Percent) {
  BenchmarkProfile p;
  p.f_load = 0.5;
  p.f_store = 0.4;
  p.f_branch = 0.4;
  p.f_call_ret = 0.1;
  const auto n = p.normalized();
  EXPECT_LE(n.f_load + n.f_store + n.f_branch + n.f_call_ret, 0.9500001);
}

TEST(Profile, NormalizedRegionProbabilities) {
  BenchmarkProfile p;
  p.p_l2 = 0.8;
  p.p_mem = 0.6;
  const auto n = p.normalized();
  EXPECT_LE(n.p_l2 + n.p_mem, 1.0 + 1e-12);
}

TEST(Profile, NormalizedStrandsBounded) {
  BenchmarkProfile p;
  p.strands = 0;
  EXPECT_EQ(p.normalized().strands, 1u);
  p.strands = 100;
  EXPECT_EQ(p.normalized().strands, 8u);
}

TEST(Profile, NormalizedNonZeroSizes) {
  BenchmarkProfile p;
  p.hot_lines = 0;
  p.icache_lines = 0;
  p.mean_bb_len = 0;
  const auto n = p.normalized();
  EXPECT_GE(n.hot_lines, 1u);
  EXPECT_GE(n.icache_lines, 1u);
  EXPECT_GE(n.mean_bb_len, 2u);
}

TEST(Spec2000, CatalogHas26Benchmarks) {
  EXPECT_EQ(spec2000::all().size(), 26u);
}

TEST(Spec2000, CodesAreAtoZInOrder) {
  const auto all = spec2000::all();
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i].code, static_cast<char>('a' + i));
}

// Fig. 1's code table, spot-checked.
TEST(Spec2000, Fig1CodeAssignments) {
  EXPECT_EQ(spec2000::by_code('a')->name, "gzip");
  EXPECT_EQ(spec2000::by_code('d')->name, "mcf");
  EXPECT_EQ(spec2000::by_code('e')->name, "crafty");
  EXPECT_EQ(spec2000::by_code('j')->name, "vortex");
  EXPECT_EQ(spec2000::by_code('k')->name, "bzip2");
  EXPECT_EQ(spec2000::by_code('l')->name, "twolf");
  EXPECT_EQ(spec2000::by_code('m')->name, "art");
  EXPECT_EQ(spec2000::by_code('n')->name, "swim");
  EXPECT_EQ(spec2000::by_code('u')->name, "sixtrack");
  EXPECT_EQ(spec2000::by_code('z')->name, "mgrid");
}

TEST(Spec2000, LookupFailures) {
  EXPECT_FALSE(spec2000::by_code('A').has_value());
  EXPECT_FALSE(spec2000::by_code('0').has_value());
  EXPECT_FALSE(spec2000::by_name("doom").has_value());
}

TEST(Spec2000, ByNameMatchesByCode) {
  for (const auto& p : spec2000::all())
    EXPECT_EQ(spec2000::by_name(p.name)->code, p.code);
}

// Memory-behaviour calibration invariants the evaluation depends on:
// the canonical memory hounds must out-miss the ILP set.
TEST(Spec2000, MemoryBoundOrdering) {
  const auto mcf = *spec2000::by_name("mcf");
  const auto art = *spec2000::by_name("art");
  const auto gzip = *spec2000::by_name("gzip");
  const auto crafty = *spec2000::by_name("crafty");
  const auto eon = *spec2000::by_name("eon");
  EXPECT_GT(mcf.p_mem, 10 * gzip.p_mem);
  EXPECT_GT(art.p_mem, 10 * crafty.p_mem);
  EXPECT_GT(mcf.p_l2, eon.p_l2);
}

TEST(Spec2000, McfIsAPointerChaser) {
  const auto mcf = *spec2000::by_name("mcf");
  EXPECT_GT(mcf.p_chase, 0.3);
  EXPECT_LE(mcf.strands, 3u);
}

TEST(Spec2000, StreamersStream) {
  for (const char* name : {"swim", "lucas", "applu", "mgrid"}) {
    const auto p = *spec2000::by_name(name);
    EXPECT_GT(p.p_stream, 0.4) << name;
    EXPECT_GE(p.stream_lines, 1u << 17) << name;
  }
}

TEST(Spec2000, BigCodeBenchmarksExceedL1I) {
  // gcc/perlbmk/vortex have instruction footprints beyond the 1024-line L1I.
  for (const char* name : {"gcc", "perlbmk", "vortex"}) {
    EXPECT_GT(spec2000::by_name(name)->icache_lines, 1024u) << name;
  }
}

TEST(Spec2000, AllProfilesAreNormalized) {
  for (const auto& p : spec2000::all()) {
    EXPECT_LE(p.p_l2 + p.p_mem, 1.0 + 1e-12) << p.name;
    EXPECT_GE(p.strands, 1u) << p.name;
    EXPECT_LE(p.strands, 8u) << p.name;
    EXPECT_GE(p.mean_bb_len, 2u) << p.name;
  }
}

}  // namespace
}  // namespace mflush
