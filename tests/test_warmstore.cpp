#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fsio.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/campaign.h"
#include "sim/cmp.h"
#include "sim/experiment.h"
#include "sim/snapshot.h"
#include "sim/warmstore.h"
#include "sim/workloads.h"

namespace mflush {
namespace {

namespace fs = std::filesystem;

// The in-process registry (warmstore::publish/recall) is process-wide and
// shared by every test in this binary, so each test that cares about
// cold-vs-reused behaviour picks a warmup length nobody else uses — a
// different warmup means a different warm_key, so the registry cannot leak
// warmed parents between tests.
ExperimentSpec sampled_spec(Cycle warmup) {
  ExperimentSpec spec;
  spec.name = "warm-test";
  spec.workloads = {*workloads::by_name("2W1")};
  spec.policies = {PolicySpec::icount(), PolicySpec::mflush()};
  spec.seeds = {1};
  spec.warmup = warmup;
  spec.measure = 600;
  spec.mode = RunMode::Sampled;
  spec.sampled.forks = 2;
  spec.sampled.fork_stride = 300;
  return spec;
}

void expect_identical_results(const std::vector<RunResult>& a,
                              const std::vector<RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(a[i].policy, b[i].policy);
    // Full SimMetrics equality — the warm-store bit-identity contract.
    EXPECT_TRUE(a[i].metrics == b[i].metrics);
  }
}

class WarmStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("warmstore-") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// --------------------------------------------------------------------- keys

TEST_F(WarmStoreTest, WarmKeyTracksParentContentOnly) {
  const std::vector<JobSpec> jobs = sampled_spec(400).expand();
  ASSERT_GE(jobs.size(), 3u);
  const JobSpec& fork = jobs[0];

  // Fork-local fields do not participate: every fork of a point, whatever
  // its measure window or result slot, names the same parent.
  JobSpec sib = fork;
  sib.id = 999;
  sib.measure += 500;
  sib.fork_advance += 100;
  EXPECT_EQ(warmstore::warm_key(fork), warmstore::warm_key(sib));

  // Parent-defining fields each change the key.
  JobSpec other = fork;
  other.seed += 1;
  EXPECT_NE(warmstore::warm_key(fork), warmstore::warm_key(other));
  other = fork;
  other.warmup += 1;
  EXPECT_NE(warmstore::warm_key(fork), warmstore::warm_key(other));
  other = fork;
  other.policy = PolicySpec::mflush();  // fork is the icount point
  EXPECT_NE(warmstore::warm_key(fork), warmstore::warm_key(other));
  other = fork;
  other.workload = *workloads::by_name("2W3");
  EXPECT_NE(warmstore::warm_key(fork), warmstore::warm_key(other));
}

TEST_F(WarmStoreTest, WarmJobOfDescribesTheParent) {
  const std::vector<JobSpec> jobs = sampled_spec(400).expand();
  const JobSpec w = warmstore::warm_job_of(jobs[0]);
  EXPECT_TRUE(w.warm_only);
  EXPECT_EQ(w.parent_key, warmstore::warm_key(jobs[0]));
  EXPECT_EQ(w.workload.name, jobs[0].workload.name);
  EXPECT_EQ(w.policy, jobs[0].policy);
  EXPECT_EQ(w.seed, jobs[0].seed);
  EXPECT_EQ(w.warmup, jobs[0].warmup);
  EXPECT_EQ(w.measure, 0u);
  EXPECT_EQ(w.fork_advance, 0u);
  EXPECT_EQ(w.snapshot, nullptr);
}

// -------------------------------------------------------------- round trips

TEST_F(WarmStoreTest, PutLookupRoundTripsAcrossInstances) {
  const std::uint64_t key = 0x0123456789abcdefull;
  auto bytes = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42});

  WarmStore writer(dir_.string());
  EXPECT_FALSE(writer.contains(key));
  writer.put(key, bytes);
  EXPECT_TRUE(writer.contains(key));
  EXPECT_EQ(writer.stats().stored, 1u);
  EXPECT_GT(writer.stats().bytes_written, bytes->size());

  // A fresh instance has no memo: this is a real disk read.
  WarmStore reader(dir_.string());
  const auto got = reader.lookup(key);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, *bytes);
  EXPECT_EQ(reader.stats().hits, 1u);
  EXPECT_EQ(reader.lookup(key + 1), nullptr);
  EXPECT_EQ(reader.stats().misses, 1u);

  // Put-if-absent: an existing entry is never rewritten.
  WarmStore again(dir_.string());
  again.put(key, bytes);
  EXPECT_EQ(again.stats().stored, 0u);
  EXPECT_EQ(again.stats().bytes_written, 0u);
}

TEST_F(WarmStoreTest, JobAndResultArchivesCarryWarmFields) {
  const std::string path = (dir_ / "jobs.mfj").string();
  fs::create_directories(dir_);

  JobSpec warm;
  warm.id = 3;
  warm.workload = *workloads::by_name("2W1");
  warm.policy = PolicySpec::icount();
  warm.seed = 7;
  warm.warmup = 123;
  warm.warm_only = true;
  warm.parent_key = 0xfeedfacecafebeefull;

  JobSpec by_ref = warm;
  by_ref.id = 4;
  by_ref.warm_only = false;
  by_ref.measure = 456;
  by_ref.fork_advance = 78;

  JobSpec resolved = by_ref;
  resolved.id = 5;
  resolved.snapshot = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{1, 2, 3});

  worker::write_job_file(path, {warm, by_ref, resolved});
  const std::vector<JobSpec> back = worker::read_job_file(path);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(back[0].warm_only);
  EXPECT_EQ(back[0].parent_key, warm.parent_key);
  EXPECT_EQ(back[0].snapshot, nullptr);
  EXPECT_FALSE(back[1].warm_only);
  EXPECT_EQ(back[1].parent_key, by_ref.parent_key);
  EXPECT_EQ(back[1].snapshot, nullptr);
  ASSERT_NE(back[2].snapshot, nullptr);
  EXPECT_EQ(*back[2].snapshot, *resolved.snapshot);

  // Campaign keys must not depend on whether a by-ref fork was resolved to
  // inline bytes: the cache written by one backend has to hit from another.
  EXPECT_EQ(campaign::job_key(by_ref), campaign::job_key(resolved));

  // The warm-job payload survives the result protocol.
  RunResult r;
  r.workload = "2W1";
  r.policy = "icount";
  r.payload = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{9, 8, 7, 6});
  const auto bytes = worker::encode_results({{3u, r}});
  const auto results = worker::decode_results(bytes, "test");
  ASSERT_EQ(results.size(), 1u);
  ASSERT_NE(results[0].second.payload, nullptr);
  EXPECT_EQ(*results[0].second.payload, *r.payload);
}

// ------------------------------------------------------------------- expand

TEST_F(WarmStoreTest, ExpandPerformsNoWarmupSimulation) {
  // Satellite regression: expanding a sampled spec must never warm up
  // inline on the coordinator thread. With a 100M-cycle warmup any inline
  // simulation would take minutes; pure expansion is milliseconds.
  ExperimentSpec spec;
  spec.workloads = {*workloads::by_name("2W1"), *workloads::by_name("2W3")};
  spec.policies = {PolicySpec::icount(), PolicySpec::mflush()};
  spec.seeds = {1};
  spec.warmup = 100'000'000;
  spec.measure = 1'000;
  spec.mode = RunMode::Sampled;
  spec.sampled.forks = 3;
  spec.sampled.fork_stride = 500;

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<JobSpec> jobs = spec.expand();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(seconds, 5.0);

  ASSERT_EQ(jobs.size(), 12u);  // 4 points x 3 forks
  std::set<std::uint64_t> parents;
  for (const JobSpec& j : jobs) {
    EXPECT_EQ(j.snapshot, nullptr);
    EXPECT_NE(j.parent_key, 0u);
    parents.insert(j.parent_key);
  }
  EXPECT_EQ(parents.size(), 4u);
}

// -------------------------------------------------------------- corruption

TEST_F(WarmStoreTest, CorruptEntryIsDiscardedAndRewarmed) {
  const ExperimentSpec spec = sampled_spec(777);
  const std::vector<JobSpec> jobs = spec.expand();

  // Seed the store by hand-warming each parent exactly as a warm job
  // would (WarmStore::put does not feed the in-process registry, so the
  // heal below must go through the disk path).
  WarmStore seeded(dir_.string());
  for (const JobSpec& j : jobs) {
    if (seeded.contains(j.parent_key)) continue;
    CmpSimulator sim(j.workload, j.policy, j.seed);
    sim.run(j.warmup);
    seeded.put(j.parent_key,
               std::make_shared<const std::vector<std::uint8_t>>(
                   snapshot::capture(sim)));
  }
  EXPECT_EQ(seeded.stats().stored, 2u);

  // Flip a byte in the middle of one entry: the trailing checksum must
  // catch it on the next read.
  const std::string victim = seeded.path_of(jobs[0].parent_key);
  auto raw = fsio::read_file_bytes(victim, "warm entry");
  raw[raw.size() / 2] ^= 0xff;
  fsio::write_file_atomic(victim, raw, /*durable=*/false);

  std::vector<std::string> events;
  WarmStore::Options wopts;
  wopts.on_event = [&](const std::string& e) { events.push_back(e); };
  WarmStore healed(dir_.string(), std::move(wopts));
  RunOptions ropts;
  ropts.warm_store = &healed;
  SerialBackend serial;
  ResultSink sink;
  const auto results = run_experiment(spec, serial, sink, ropts);

  EXPECT_EQ(healed.stats().corrupt_discarded, 1u);
  EXPECT_EQ(healed.stats().hits, 1u);    // the intact parent
  EXPECT_EQ(healed.stats().stored, 1u);  // the healed slot, rewritten
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("corrupt"), std::string::npos);

  // The rewritten entry reads back cleanly from a third instance.
  WarmStore after(dir_.string());
  EXPECT_NE(after.lookup(jobs[0].parent_key), nullptr);
  EXPECT_EQ(after.stats().corrupt_discarded, 0u);

  // And the run itself never noticed: bit-identical to a plain serial run.
  ResultSink ref_sink;
  const auto expected = run_experiment(spec, serial, ref_sink);
  expect_identical_results(results, expected);
}

TEST_F(WarmStoreTest, TruncatedEntryIsAMissNotAnError) {
  const std::uint64_t key = 0x1111222233334444ull;
  auto bytes = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>(64, 0xab));
  WarmStore writer(dir_.string());
  writer.put(key, bytes);

  const std::string path = writer.path_of(key);
  auto raw = fsio::read_file_bytes(path, "warm entry");
  raw.resize(raw.size() / 2);  // torn write
  fsio::write_file_atomic(path, raw, /*durable=*/false);

  WarmStore reader(dir_.string());
  EXPECT_EQ(reader.lookup(key), nullptr);
  EXPECT_EQ(reader.stats().corrupt_discarded, 1u);
  EXPECT_EQ(reader.stats().misses, 1u);
  EXPECT_FALSE(fs::exists(path)) << "a corrupt entry must be deleted";
}

// ----------------------------------------------------------------- sharing

TEST_F(WarmStoreTest, StoreIsSharedAcrossOverlappingSpecs) {
  SerialBackend serial;

  // Spec A: the icount point only, cold store.
  ExperimentSpec a = sampled_spec(654);
  a.policies = {PolicySpec::icount()};
  WarmStore store_a(dir_.string());
  RunOptions ra;
  ra.warm_store = &store_a;
  ResultSink sink_a;
  (void)run_experiment(a, serial, sink_a, ra);
  EXPECT_EQ(store_a.stats().hits, 0u);
  EXPECT_EQ(store_a.stats().stored, 1u);

  // Spec B overlaps A on (workload, seed, warmup) for icount and adds
  // mflush: the shared parent is a disk hit, only the new one warms.
  const ExperimentSpec b = sampled_spec(654);
  WarmStore store_b(dir_.string());
  RunOptions rb;
  rb.warm_store = &store_b;
  ResultSink sink_b;
  const auto results = run_experiment(b, serial, sink_b, rb);
  EXPECT_EQ(store_b.stats().hits, 1u);
  EXPECT_EQ(store_b.stats().misses, 1u);
  EXPECT_EQ(store_b.stats().stored, 1u);

  ResultSink ref_sink;
  const auto expected = run_experiment(b, serial, ref_sink);
  expect_identical_results(results, expected);
}

// ----------------------------------------------------------- cross-backend

TEST_F(WarmStoreTest, ColdAndHotStoreRunsMatchSerial) {
  const ExperimentSpec spec = sampled_spec(481);
  SerialBackend serial;

  // Genuinely cold reference first: nothing has warmed 481-cycle parents.
  ResultSink ref_sink;
  const auto expected = run_experiment(spec, serial, ref_sink);

  InProcessBackend inproc;
  WarmStore cold(dir_.string());
  RunOptions rc;
  rc.warm_store = &cold;
  ResultSink cold_sink;
  const auto cold_results = run_experiment(spec, inproc, cold_sink, rc);
  expect_identical_results(cold_results, expected);
  EXPECT_EQ(cold.stats().stored, 2u);

  WarmStore hot(dir_.string());
  RunOptions rh;
  rh.warm_store = &hot;
  ResultSink hot_sink;
  const auto hot_results = run_experiment(spec, inproc, hot_sink, rh);
  expect_identical_results(hot_results, expected);
  EXPECT_EQ(hot.stats().hits, 2u);
  EXPECT_EQ(hot.stats().stored, 0u);
}

TEST_F(WarmStoreTest, WorkerBackendWarmsInSubprocessesAndShipsByHash) {
  if (default_worker_binary().empty()) {
    GTEST_SKIP() << "mflushsim worker binary not found";
  }
  const ExperimentSpec spec = sampled_spec(482);
  const std::vector<JobSpec> jobs = spec.expand();

  // Independent reference: hand-warm each parent and fork from the bytes
  // directly, touching none of the warm-store machinery.
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> parents;
  std::vector<RunResult> expected;
  for (const JobSpec& j : jobs) {
    if (!parents.contains(j.parent_key)) {
      CmpSimulator sim(j.workload, j.policy, j.seed);
      sim.run(j.warmup);
      parents.emplace(j.parent_key, snapshot::capture(sim));
    }
    expected.push_back(run_point_from_snapshot(parents.at(j.parent_key),
                                               j.fork_advance, j.measure));
  }

  // Cold run: the warm phase fans warm jobs through worker subprocesses
  // (payloads return over the result protocol), forks then ship by hash
  // into the shared host-side store.
  WarmStore store(dir_.string());
  WorkerBackend::Options wo;
  wo.max_processes = 2;
  wo.warm_store = &store;
  WorkerBackend worker(std::move(wo));
  std::vector<std::string> events;
  RunOptions rw;
  rw.warm_store = &store;
  rw.on_event = [&](const std::string& e) { events.push_back(e); };
  ResultSink sink;
  const auto results = run_experiment(spec, worker, sink, rw);

  expect_identical_results(results, expected);
  EXPECT_EQ(store.stats().misses, 2u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], "2 parent(s): 0 reused, 2 warmed");
  // The worker subprocesses stored their captures into the shared dir
  // themselves (the coordinator's put-if-absent found them already there),
  // so a fresh instance reads both entries straight from disk. The entries
  // are not byte-compared against the hand-warmed captures — padding holes
  // in put_vec'd structs make snapshot bytes canonical only per process —
  // but restoring them must fork to bit-identical metrics.
  WarmStore disk(dir_.string());
  for (const JobSpec& j : jobs) {
    const auto entry = disk.lookup(j.parent_key);
    ASSERT_NE(entry, nullptr);
    const RunResult fork =
        run_point_from_snapshot(*entry, j.fork_advance, j.measure);
    EXPECT_TRUE(fork.metrics == expected[j.id].metrics);
  }

  // Hot rerun on a fresh instance: every parent is reused from disk.
  WarmStore hot(dir_.string());
  WorkerBackend::Options wo2;
  wo2.max_processes = 2;
  wo2.warm_store = &hot;
  WorkerBackend worker2(std::move(wo2));
  std::vector<std::string> hot_events;
  RunOptions rh;
  rh.warm_store = &hot;
  rh.on_event = [&](const std::string& e) { hot_events.push_back(e); };
  ResultSink hot_sink;
  const auto hot_results = run_experiment(spec, worker2, hot_sink, rh);

  expect_identical_results(hot_results, expected);
  EXPECT_EQ(hot.stats().hits, 2u);
  EXPECT_EQ(hot.stats().stored, 0u);
  ASSERT_EQ(hot_events.size(), 1u);
  EXPECT_EQ(hot_events[0], "2 parent(s): 2 reused, 0 warmed");
}

}  // namespace
}  // namespace mflush
