#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/factory.h"
#include "sim/experiment_spec.h"
#include "sim/workloads.h"

namespace mflush {
namespace {

ExperimentSpec demo_spec() {
  // A history policy without the preventive state: the label
  // ("MFLUSH-H3AVG-NP") must survive the text form's label->parse trip.
  PolicySpec history_np =
      PolicySpec::mflush_history(3, PolicySpec::McRegAgg::Avg);
  history_np.preventive = false;

  ExperimentSpec spec;
  spec.name = "demo";
  spec.workloads = {*workloads::by_name("2W1"), *workloads::by_name("4W2")};
  spec.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                   PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Max),
                   PolicySpec::mflush_history(2, PolicySpec::McRegAgg::Last),
                   history_np};
  spec.seeds = {1, 42};
  spec.warmup = 1'000;
  spec.measure = 4'000;
  return spec;
}

void expect_same_spec(const ExperimentSpec& a, const ExperimentSpec& b) {
  EXPECT_EQ(a.name, b.name);
  ASSERT_EQ(a.workloads.size(), b.workloads.size());
  for (std::size_t i = 0; i < a.workloads.size(); ++i) {
    EXPECT_EQ(a.workloads[i].name, b.workloads[i].name);
    EXPECT_EQ(a.workloads[i].codes, b.workloads[i].codes);
  }
  EXPECT_EQ(a.policies, b.policies);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.warmup, b.warmup);
  EXPECT_EQ(a.measure, b.measure);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.sampled, b.sampled);
  EXPECT_EQ(a.mem_model, b.mem_model);
  EXPECT_EQ(a.dram, b.dram);
}

ExperimentSpec dram_spec() {
  ExperimentSpec spec = demo_spec();
  spec.mem_model = MemModelKind::BankedDram;
  spec.dram.channels = 4;
  spec.dram.banks_per_channel = 4;
  spec.dram.row_bytes = 4096;
  spec.dram.t_row_hit = 60;
  spec.dram.t_row_miss = 200;
  spec.dram.t_row_conflict = 350;
  spec.dram.channel_gap = 8;
  spec.dram.far_base = 0x100000;
  spec.dram.far_bytes = 0x40000;
  spec.dram.far_extra = 900;
  return spec;
}

// ------------------------------------------------------------- round trips

TEST(ExperimentSpec, BinaryRoundTrip) {
  const ExperimentSpec spec = demo_spec();
  expect_same_spec(spec, ExperimentSpec::from_bytes(spec.to_bytes()));
}

TEST(ExperimentSpec, BinaryRoundTripSampled) {
  ExperimentSpec spec = demo_spec();
  spec.mode = RunMode::Sampled;
  spec.sampled.forks = 5;
  spec.sampled.fork_stride = 750;
  spec.sampled.target_half_width = 0.03;
  spec.sampled.max_rounds = 7;
  expect_same_spec(spec, ExperimentSpec::from_bytes(spec.to_bytes()));
}

TEST(ExperimentSpec, TextRoundTrip) {
  const ExperimentSpec spec = demo_spec();
  expect_same_spec(spec, ExperimentSpec::from_text(spec.to_text()));
}

TEST(ExperimentSpec, TextRoundTripSampled) {
  ExperimentSpec spec = demo_spec();
  spec.mode = RunMode::Sampled;
  spec.sampled.forks = 3;
  spec.sampled.fork_stride = 500;
  spec.sampled.target_half_width = 0.05;
  spec.sampled.max_rounds = 2;
  expect_same_spec(spec, ExperimentSpec::from_text(spec.to_text()));
}

TEST(ExperimentSpec, DramKnobsSurviveBothFormats) {
  const ExperimentSpec spec = dram_spec();
  expect_same_spec(spec, ExperimentSpec::from_bytes(spec.to_bytes()));
  expect_same_spec(spec, ExperimentSpec::from_text(spec.to_text()));
}

TEST(ExperimentSpec, DefaultSpecTextOmitsDramKeys) {
  // Fixed-model specs keep the pre-seam text form: hand-written spec files
  // from earlier versions parse unchanged, and to_text adds no noise.
  const std::string text = demo_spec().to_text();
  EXPECT_EQ(text.find("mem_model"), std::string::npos);
  EXPECT_EQ(text.find("dram_"), std::string::npos);
  const ExperimentSpec back = ExperimentSpec::from_text(text);
  EXPECT_EQ(back.mem_model, MemModelKind::Fixed);
  EXPECT_EQ(back.dram, DramConfig{});
}

TEST(ExperimentSpec, DramKnobsFlowIntoExpandedJobs) {
  const ExperimentSpec spec = dram_spec();
  const std::vector<JobSpec> jobs = spec.expand();
  ASSERT_FALSE(jobs.empty());
  for (const JobSpec& j : jobs) {
    EXPECT_EQ(j.mem_model, MemModelKind::BankedDram);
    EXPECT_EQ(j.dram, spec.dram);
  }
}

TEST(ExperimentSpec, ValidateRejectsBadDramGeometry) {
  ExperimentSpec spec = dram_spec();
  spec.dram.channels = 3;  // not a power of two
  EXPECT_THROW(spec.validate(), std::runtime_error);
  spec = dram_spec();
  spec.dram.row_bytes = 32;  // smaller than a line
  EXPECT_THROW(spec.validate(), std::runtime_error);
  spec = dram_spec();
  spec.dram.t_row_hit = 500;  // hit slower than conflict
  EXPECT_THROW(spec.validate(), std::runtime_error);
  // The same knobs are ignored (and legal) under the fixed model.
  spec.mem_model = MemModelKind::Fixed;
  EXPECT_NO_THROW(spec.validate());
}

TEST(ExperimentSpec, FileRoundTripSniffsBothFormats) {
  const ExperimentSpec spec = demo_spec();
  const std::string text_path = ::testing::TempDir() + "spec_text.mfs";
  const std::string bin_path = ::testing::TempDir() + "spec_bin.mfs";
  spec.write_file(text_path, /*binary=*/false);
  spec.write_file(bin_path, /*binary=*/true);
  expect_same_spec(spec, ExperimentSpec::read_file(text_path));
  expect_same_spec(spec, ExperimentSpec::read_file(bin_path));
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

// ------------------------------------------------------ corruption handling

TEST(ExperimentSpec, RejectsCorruptBinary) {
  std::vector<std::uint8_t> bytes = demo_spec().to_bytes();
  // Any single flipped payload byte must trip the checksum.
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW((void)ExperimentSpec::from_bytes(bytes), std::runtime_error);
}

TEST(ExperimentSpec, RejectsTruncatedBinary) {
  std::vector<std::uint8_t> bytes = demo_spec().to_bytes();
  bytes.resize(bytes.size() - 9);
  EXPECT_THROW((void)ExperimentSpec::from_bytes(bytes), std::runtime_error);
  EXPECT_THROW((void)ExperimentSpec::from_bytes(
                   std::span<const std::uint8_t>(bytes.data(), 3)),
               std::runtime_error);
}

TEST(ExperimentSpec, RejectsMalformedText) {
  EXPECT_THROW((void)ExperimentSpec::from_text("bogus_key 1\n"),
               std::runtime_error);
  EXPECT_THROW((void)ExperimentSpec::from_text("workload NOPE\n"),
               std::runtime_error);
  EXPECT_THROW((void)ExperimentSpec::from_text("workload 2W1\n"
                                               "policy warp-drive\n"),
               std::runtime_error);
  EXPECT_THROW((void)ExperimentSpec::from_text("mode sideways\n"),
               std::runtime_error);
  EXPECT_THROW((void)ExperimentSpec::from_text("measure twelve\n"),
               std::runtime_error);
  // istream >> uint64 would wrap a negative; the parser must reject it.
  EXPECT_THROW((void)ExperimentSpec::from_text("measure -1\n"),
               std::runtime_error);
  EXPECT_THROW((void)ExperimentSpec::from_text("seeds 1 -2 3\n"),
               std::runtime_error);
  // Valid keys but an empty study must still fail validation.
  EXPECT_THROW((void)ExperimentSpec::from_text("name empty\n"),
               std::runtime_error);
}

TEST(ExperimentSpec, TextAcceptsCommentsAndCodeWorkloads) {
  const ExperimentSpec spec = ExperimentSpec::from_text(
      "# a hand-written study\n"
      "name hand\n"
      "workload 2W1   # catalog name\n"
      "workload dl    # benchmark codes: mcf + twolf\n"
      "policy flush-s70\n"
      "measure 2000\n"
      "warmup 500\n");
  ASSERT_EQ(spec.workloads.size(), 2u);
  EXPECT_EQ(spec.workloads[1].name, "dl");
  EXPECT_EQ(spec.workloads[1].codes, (std::vector<char>{'d', 'l'}));
  EXPECT_EQ(spec.policies, (std::vector<PolicySpec>{PolicySpec::flush_spec(
                               70)}));
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{1}));  // default
}

TEST(ExperimentSpec, SpecialWorkloadSurvivesTextRoundTrip) {
  // bzip2_twolf_special's own name ("8Wbt") must resolve on the way back
  // in, or --emit-spec output for it would be unreadable.
  ExperimentSpec spec;
  spec.name = "special";
  spec.workloads = {workloads::bzip2_twolf_special()};
  spec.policies = {PolicySpec::mflush()};
  spec.measure = 1'000;
  const ExperimentSpec back = ExperimentSpec::from_text(spec.to_text());
  ASSERT_EQ(back.workloads.size(), 1u);
  EXPECT_EQ(back.workloads[0].name, spec.workloads[0].name);
  EXPECT_EQ(back.workloads[0].codes, spec.workloads[0].codes);
}

// -------------------------------------------------------------- validation

TEST(ExperimentSpec, ValidateRejectsEmptyAndBadConfigs) {
  ExperimentSpec spec = demo_spec();
  spec.workloads.clear();
  EXPECT_THROW(spec.validate(), std::runtime_error);

  spec = demo_spec();
  spec.policies.clear();
  EXPECT_THROW(spec.validate(), std::runtime_error);

  spec = demo_spec();
  spec.seeds.clear();
  EXPECT_THROW(spec.validate(), std::runtime_error);

  spec = demo_spec();
  spec.measure = 0;
  EXPECT_THROW(spec.validate(), std::runtime_error);

  spec = demo_spec();
  spec.mode = RunMode::Sampled;
  spec.sampled.forks = 0;
  EXPECT_THROW(spec.validate(), std::runtime_error);

  spec = demo_spec();
  spec.mode = RunMode::Sampled;
  spec.sampled.target_half_width = 1.5;
  EXPECT_THROW(spec.validate(), std::runtime_error);
}

// ------------------------------------------------------------------ expand

TEST(ExperimentSpec, ExpandLayoutIsSeedMajorPolicyMinor) {
  const ExperimentSpec spec = demo_spec();
  const std::size_t P = spec.policies.size();
  const std::size_t W = spec.workloads.size();
  const std::vector<JobSpec> jobs = spec.expand();
  ASSERT_EQ(jobs.size(), spec.seeds.size() * W * P);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
    EXPECT_EQ(jobs[i].seed, spec.seeds[i / (W * P)]);
    EXPECT_EQ(jobs[i].workload.name, spec.workloads[(i / P) % W].name);
    EXPECT_EQ(jobs[i].policy, spec.policies[i % P]);
    EXPECT_EQ(jobs[i].warmup, spec.warmup);
    EXPECT_EQ(jobs[i].measure, spec.measure);
    EXPECT_EQ(jobs[i].snapshot, nullptr);
  }
}

TEST(ExperimentSpec, SampledExpandEmitsParentReferences) {
  // Sampled expand emits by-reference fork jobs: no snapshot bytes, no
  // warm-up simulation — the warm phase of run_experiment resolves the
  // parent_key hashes (warm store, in-process registry, or warm jobs).
  ExperimentSpec spec;
  spec.workloads = {*workloads::by_name("2W1")};
  spec.policies = {PolicySpec::icount(), PolicySpec::mflush()};
  spec.warmup = 800;
  spec.measure = 1'000;
  spec.mode = RunMode::Sampled;
  spec.sampled.forks = 3;
  spec.sampled.fork_stride = 400;

  const std::vector<JobSpec> jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 6u);  // 2 points x 3 forks
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
    EXPECT_EQ(jobs[i].snapshot, nullptr);
    EXPECT_NE(jobs[i].parent_key, 0u);
    EXPECT_FALSE(jobs[i].warm_only);
    // Forks keep the warm-up length: it names the parent (key derivation)
    // and lets a worker re-warm deterministically on a store miss.
    EXPECT_EQ(jobs[i].warmup, 800u);
    EXPECT_EQ(jobs[i].fork_advance, (i % 3) * 400u);
  }
  // Forks of one point share their parent's key; points differ.
  EXPECT_EQ(jobs[0].parent_key, jobs[2].parent_key);
  EXPECT_NE(jobs[0].parent_key, jobs[3].parent_key);
}

}  // namespace
}  // namespace mflush
