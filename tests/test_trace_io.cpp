#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "trace/generator.h"
#include "trace/spec2000.h"
#include "trace/trace_io.h"

namespace mflush {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<TraceInstr> sample_trace(std::size_t n) {
  SyntheticTraceSource src(*spec2000::by_name("gzip"), 3, 1024, 0);
  std::vector<TraceInstr> v;
  for (SeqNo s = 0; s < n; ++s) v.push_back(src.at(s));
  return v;
}

TEST(TraceIo, RoundTrip) {
  const auto path = temp_path("mflush_roundtrip.trc");
  const auto original = sample_trace(500);
  write_trace(path, original);
  const auto back = read_trace(path);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].pc, original[i].pc);
    EXPECT_EQ(back[i].eff_addr, original[i].eff_addr);
    EXPECT_EQ(back[i].target, original[i].target);
    EXPECT_EQ(back[i].cls, original[i].cls);
    EXPECT_EQ(back[i].dst, original[i].dst);
    EXPECT_EQ(back[i].src[0], original[i].src[0]);
    EXPECT_EQ(back[i].src[1], original[i].src[1]);
    EXPECT_EQ(back[i].taken, original[i].taken);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const auto path = temp_path("mflush_empty.trc");
  write_trace(path, {});
  EXPECT_TRUE(read_trace(path).empty());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace("/nonexistent/dir/x.trc"), std::runtime_error);
}

TEST(TraceIo, BadMagicThrows) {
  const auto path = temp_path("mflush_badmagic.trc");
  std::ofstream(path, std::ios::binary) << "NOTATRACEFILE-0123456789";
  EXPECT_THROW(read_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileThrows) {
  const auto path = temp_path("mflush_trunc.trc");
  write_trace(path, sample_trace(100));
  // Chop the last record in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 10);
  EXPECT_THROW(read_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(VectorSource, WrapsAround) {
  auto instrs = sample_trace(10);
  VectorTraceSource src(instrs, "wrap");
  for (SeqNo s = 0; s < 35; ++s)
    EXPECT_EQ(src.at(s).pc, instrs[s % 10].pc);
}

TEST(VectorSource, RejectsEmpty) {
  EXPECT_THROW(VectorTraceSource({}, "empty"), std::invalid_argument);
}

TEST(VectorSource, Name) {
  VectorTraceSource src(sample_trace(4), "myname");
  EXPECT_STREQ(src.name(), "myname");
  EXPECT_EQ(src.size(), 4u);
}

}  // namespace
}  // namespace mflush
