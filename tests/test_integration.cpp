#include <gtest/gtest.h>

#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/experiment.h"
#include "sim/workloads.h"

/// End-to-end checks of the paper's headline claims at reduced scale.
/// These use small simulation windows, so they assert directions and
/// orderings rather than exact percentages.
namespace mflush {
namespace {

constexpr Cycle kWarm = 10'000;
constexpr Cycle kMeasure = 40'000;

SimMetrics measure(const char* workload, PolicySpec policy) {
  return run_point(*workloads::by_name(workload), policy, 1, kWarm, kMeasure)
      .metrics;
}

// §3.1 / Fig. 2: in a single-core SMT with a memory-bound thread, FLUSH
// clearly beats ICOUNT.
TEST(Integration, FlushBeatsIcountOnMemoryWorkloadSingleCore) {
  const auto icount = measure("2W3", PolicySpec::icount());   // mcf+gzip
  const auto flush = measure("2W3", PolicySpec::flush_spec(30));
  EXPECT_GT(flush.ipc, icount.ipc * 1.10);
}

// Fig. 2's flat cases: ILP pairs gain little from FLUSH.
TEST(Integration, FlushIsNeutralOnIlpPairs) {
  const auto icount = measure("2W4", PolicySpec::icount());  // parser+perlbmk
  const auto flush = measure("2W4", PolicySpec::flush_spec(30));
  EXPECT_GT(flush.ipc, icount.ipc * 0.85);
  EXPECT_LT(flush.ipc, icount.ipc * 1.15);
}

// §3.2 / Fig. 3: the FLUSH-S30 advantage shrinks (here: flips) at 4 cores.
TEST(Integration, FlushS30AdvantageDecaysWithCores) {
  const auto ic2 = measure("2W3", PolicySpec::icount());
  const auto fl2 = measure("2W3", PolicySpec::flush_spec(30));
  const auto ic8 = measure("8W3", PolicySpec::icount());
  const auto fl8 = measure("8W3", PolicySpec::flush_spec(30));
  const double speedup_1core = fl2.ipc / ic2.ipc;
  const double speedup_4core = fl8.ipc / ic8.ipc;
  EXPECT_LT(speedup_4core, speedup_1core);
}

// Fig. 4: L2 hit time inflates and disperses as cores are added.
TEST(Integration, L2HitTimeGrowsWithCores) {
  const auto one = measure("2W1", PolicySpec::icount());
  const auto four = measure("8W1", PolicySpec::icount());
  ASSERT_GT(one.l2_hits_observed, 0u);
  ASSERT_GT(four.l2_hits_observed, 0u);
  EXPECT_GT(four.l2_hit_time_p90, one.l2_hit_time_p90);
}

// §4.2 / Fig. 8: MFLUSH lands near the best static FLUSH without knowing
// the trigger.
TEST(Integration, MflushIsCompetitiveWithTunedFlush) {
  const auto s100 = measure("8W3", PolicySpec::flush_spec(100));
  const auto mflush = measure("8W3", PolicySpec::mflush());
  EXPECT_GT(mflush.ipc, s100.ipc * 0.93);
}

// §4.3 / Fig. 11: MFLUSH wastes less re-fetch energy than FLUSH-S30.
TEST(Integration, MflushWastesLessEnergyThanS30) {
  const auto s30 = measure("8W1", PolicySpec::flush_spec(30));
  const auto mflush = measure("8W1", PolicySpec::mflush());
  ASSERT_GT(s30.energy.flush_wasted_units, 0.0);
  EXPECT_LT(mflush.energy.flush_wasted_per_kilo_commit(),
            s30.energy.flush_wasted_per_kilo_commit());
}

// §3.2: at 4 cores, most S30 flushes are false misses (late hits); the
// false-miss ratio must exceed the 1-core case.
TEST(Integration, FalseMissesGrowWithCores) {
  auto count_false = [](const char* w) {
    CmpSimulator sim(*workloads::by_name(w), PolicySpec::flush_spec(30));
    sim.run(kWarm);
    sim.reset_stats();
    sim.run(kMeasure);
    std::uint64_t hit = 0, miss = 0;
    for (CoreId c = 0; c < sim.num_cores(); ++c) {
      const auto pc = sim.core(c).policy().counters();
      hit += pc.flushes_on_hit;
      miss += pc.flushes_on_miss;
    }
    return std::pair<std::uint64_t, std::uint64_t>(hit, miss);
  };
  const auto [h1, m1] = count_false("2W1");
  const auto [h4, m4] = count_false("8W1");
  const double rate1 =
      m1 + h1 ? static_cast<double>(h1) / static_cast<double>(h1 + m1) : 0.0;
  const double rate4 =
      m4 + h4 ? static_cast<double>(h4) / static_cast<double>(h4 + m4) : 0.0;
  EXPECT_GT(rate4, rate1);
}

// MFLUSH's Preventive State actually engages on contended chips.
TEST(Integration, PreventiveStateEngagesAtFourCores) {
  CmpSimulator sim(*workloads::by_name("8W3"), PolicySpec::mflush());
  sim.run(kWarm + kMeasure);
  std::uint64_t gates = 0;
  for (CoreId c = 0; c < sim.num_cores(); ++c)
    gates += sim.core(c).policy().counters().gate_cycles;
  EXPECT_GT(gates, 0u);
}

// Policies must not change the architectural work done, only its timing:
// every policy commits from the same traces (no wrong-path commits).
TEST(Integration, SameSeedSameTraceAcrossPolicies) {
  // Indirect check: per-thread commit counts are positive under each
  // policy, and ICOUNT vs MFLUSH runs are individually deterministic.
  for (const auto& spec : {PolicySpec::icount(), PolicySpec::flush_spec(50),
                           PolicySpec::mflush()}) {
    const auto a = measure("4W1", spec);
    const auto b = measure("4W1", spec);
    EXPECT_EQ(a.committed, b.committed) << spec.label();
    for (const double ipc : a.per_thread_ipc) EXPECT_GT(ipc, 0.0);
  }
}

// FL-NS exists and behaves: it flushes only genuinely missing loads.
TEST(Integration, NonSpeculativeFlushHasNoFalseMisses) {
  CmpSimulator sim(*workloads::by_name("8W3"), PolicySpec::flush_ns());
  sim.run(kWarm);
  sim.reset_stats();
  sim.run(kMeasure);
  std::uint64_t hit = 0, miss = 0;
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    const auto pc = sim.core(c).policy().counters();
    hit += pc.flushes_on_hit;
    miss += pc.flushes_on_miss;
  }
  EXPECT_GT(miss, 0u);
  EXPECT_EQ(hit, 0u);  // by construction: triggered on detected misses
}

}  // namespace
}  // namespace mflush
