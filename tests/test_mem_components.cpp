#include <gtest/gtest.h>

#include "mem/bus.h"
#include "mem/l2.h"
#include "mem/memory.h"
#include "mem/mshr.h"

namespace mflush {
namespace {

// ---------------------------------------------------------------------- MSHR

TEST(Mshr, AllocateFindRelease) {
  Mshr m(4);
  const auto slot = m.allocate(0x1000);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(m.find(0x1000), slot);
  EXPECT_EQ(m.line_of_slot(*slot), 0x1000u);
  m.attach(*slot, MshrWaiter{.token = 7, .tid = 0, .issue_cycle = 10,
                             .kind = MemKind::Load});
  const auto waiters = m.release(*slot);
  ASSERT_EQ(waiters.size(), 1u);
  EXPECT_EQ(waiters[0].token, 7u);
  EXPECT_FALSE(m.find(0x1000).has_value());
}

TEST(Mshr, FullAllocationFails) {
  Mshr m(2);
  ASSERT_TRUE(m.allocate(0x40).has_value());
  ASSERT_TRUE(m.allocate(0x80).has_value());
  EXPECT_TRUE(m.full());
  EXPECT_FALSE(m.allocate(0xC0).has_value());
  EXPECT_EQ(m.alloc_failures(), 1u);
}

TEST(Mshr, SlotReuseAfterRelease) {
  Mshr m(1);
  const auto s1 = m.allocate(0x40);
  (void)m.release(*s1);
  const auto s2 = m.allocate(0x80);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(m.live(), 1u);
}

TEST(Mshr, CoalescingMultipleWaiters) {
  Mshr m(4);
  const auto slot = *m.allocate(0x1000);
  for (std::uint64_t t = 1; t <= 5; ++t)
    m.attach(slot, MshrWaiter{.token = t, .tid = 0, .issue_cycle = t,
                              .kind = MemKind::Load});
  EXPECT_EQ(m.waiters(slot).size(), 5u);
  EXPECT_EQ(m.release(slot).size(), 5u);
}

TEST(Mshr, MissKnownFlag) {
  Mshr m(2);
  const auto slot = *m.allocate(0x40);
  EXPECT_FALSE(m.miss_known(slot));
  m.set_miss_known(slot);
  EXPECT_TRUE(m.miss_known(slot));
  (void)m.release(slot);
  const auto again = *m.allocate(0x40);
  EXPECT_FALSE(m.miss_known(again));  // reset on reallocation
}

// ----------------------------------------------------------------------- Bus

TEST(Bus, DeliversAfterLatency) {
  SharedBus bus(2, 4);
  std::vector<std::uint64_t> done;
  bus.push(0, 42, 0);
  for (Cycle t = 1; t <= 4; ++t) {
    done.clear();
    bus.tick(t, done);
    if (t < 5) { EXPECT_TRUE(done.empty()); }
  }
  done.clear();
  bus.tick(5, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 42u);
}

TEST(Bus, OccupancySerializesTransfers) {
  SharedBus bus(1, 4);
  std::vector<std::uint64_t> done;
  bus.push(0, 1, 0);
  bus.push(0, 2, 0);
  std::vector<Cycle> arrivals;
  for (Cycle t = 1; t <= 20 && arrivals.size() < 2; ++t) {
    done.clear();
    bus.tick(t, done);
    for (auto p : done) {
      (void)p;
      arrivals.push_back(t);
    }
  }
  ASSERT_EQ(arrivals.size(), 2u);
  // Second transfer starts only after the bus frees: 4 cycles apart.
  EXPECT_GE(arrivals[1] - arrivals[0], 4u);
}

TEST(Bus, RoundRobinFairness) {
  SharedBus bus(2, 1);
  std::vector<std::uint64_t> done;
  // Saturate both cores; grants must alternate.
  for (int i = 0; i < 4; ++i) {
    bus.push(0, 100 + i, 0);
    bus.push(1, 200 + i, 0);
  }
  std::vector<std::uint64_t> order;
  for (Cycle t = 1; t <= 20 && order.size() < 8; ++t) {
    done.clear();
    bus.tick(t, done);
    for (auto p : done) order.push_back(p);
  }
  ASSERT_EQ(order.size(), 8u);
  int alternations = 0;
  for (std::size_t i = 1; i < order.size(); ++i)
    if ((order[i] / 100) != (order[i - 1] / 100)) ++alternations;
  EXPECT_GE(alternations, 6);
}

TEST(Bus, QueueWaitAccounted) {
  SharedBus bus(1, 4);
  std::vector<std::uint64_t> done;
  bus.push(0, 1, 0);
  bus.push(0, 2, 0);  // waits ~4 cycles for the bus
  for (Cycle t = 1; t <= 12; ++t) {
    done.clear();
    bus.tick(t, done);
  }
  EXPECT_GT(bus.queue_wait_cycles(), 0u);
  EXPECT_EQ(bus.transfers(), 2u);
}

// -------------------------------------------------------------------- Memory

TEST(Memory, FixedLatency) {
  MainMemory mem(250);
  std::vector<std::uint64_t> done;
  mem.start_read(9, 100);
  mem.tick(349, done);
  EXPECT_TRUE(done.empty());
  mem.tick(350, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 9u);
}

TEST(Memory, FullyPipelined) {
  MainMemory mem(250);
  std::vector<std::uint64_t> done;
  for (std::uint64_t i = 0; i < 10; ++i) mem.start_read(i, 100 + i);
  mem.tick(359, done);
  EXPECT_EQ(done.size(), 10u);  // all ten resolve within consecutive cycles
  // FIFO order preserved for determinism.
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(done[i], i);
}

TEST(Memory, CountsReadsAndWrites) {
  MainMemory mem(10);
  mem.start_read(1, 0);
  mem.start_write();
  mem.start_write();
  EXPECT_EQ(mem.reads(), 1u);
  EXPECT_EQ(mem.writes(), 2u);
}

// ------------------------------------------------------------------ L2 banks

L2Cache paper_l2() { return L2Cache(4 * 1024 * 1024, 12, 64, 4, 15); }

TEST(L2, BankInterleavingByLine) {
  auto l2 = paper_l2();
  EXPECT_EQ(l2.bank_of(0 * 64), 0u);
  EXPECT_EQ(l2.bank_of(1 * 64), 1u);
  EXPECT_EQ(l2.bank_of(2 * 64), 2u);
  EXPECT_EQ(l2.bank_of(3 * 64), 3u);
  EXPECT_EQ(l2.bank_of(4 * 64), 0u);
}

TEST(L2, MissThenFillThenHit) {
  auto l2 = paper_l2();
  std::vector<L2ServiceResult> out;
  l2.enqueue(0x1000, 1, false, 0);
  for (Cycle t = 1; t <= 16; ++t) l2.tick(t, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].hit);
  (void)l2.fill(0x1000, false);
  out.clear();
  l2.enqueue(0x1000, 2, false, 20);
  for (Cycle t = 20; t <= 40; ++t) l2.tick(t, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].hit);
}

TEST(L2, SingleLatencyIs15Cycles) {
  auto l2 = paper_l2();
  std::vector<L2ServiceResult> out;
  l2.enqueue(0x40, 1, false, 0);
  Cycle done = 0;
  for (Cycle t = 1; t <= 30 && done == 0; ++t) {
    l2.tick(t, out);
    if (!out.empty()) done = t;
  }
  // Service starts at tick 1, completes 15 cycles later.
  EXPECT_EQ(done, 16u);
}

// The paper's worked example (§3.2): the 4th consecutive hit to the same
// bank experiences ~45 extra cycles of queueing.
TEST(L2, FourthConsecutiveSameBankAccessWaits45Cycles) {
  auto l2 = paper_l2();
  for (int i = 0; i < 4; ++i) (void)l2.fill(0x1000 + i * 4 * 64, false);
  std::vector<L2ServiceResult> out;
  // Four back-to-back requests to bank 0 (line stride of 4 lines).
  for (std::uint64_t i = 0; i < 4; ++i)
    l2.enqueue(0x1000 + i * 4 * 64, i, false, 0);
  std::vector<Cycle> done(4, 0);
  for (Cycle t = 1; t <= 100; ++t) {
    out.clear();
    l2.tick(t, out);
    for (const auto& r : out) done[r.payload] = t;
  }
  EXPECT_EQ(done[0], 16u);
  EXPECT_EQ(done[3] - done[0], 45u);  // three additional 15-cycle services
}

TEST(L2, BanksServeInParallel) {
  auto l2 = paper_l2();
  for (std::uint64_t i = 0; i < 4; ++i) (void)l2.fill(i * 64, false);
  std::vector<L2ServiceResult> out;
  for (std::uint64_t i = 0; i < 4; ++i) l2.enqueue(i * 64, i, false, 0);
  std::vector<Cycle> done(4, 0);
  for (Cycle t = 1; t <= 40; ++t) {
    out.clear();
    l2.tick(t, out);
    for (const auto& r : out) done[r.payload] = t;
  }
  for (int i = 0; i < 4; ++i) EXPECT_EQ(done[i], 16u) << i;
}

TEST(L2, WritebackInstallsDirtyWithoutResponse) {
  auto l2 = paper_l2();
  std::vector<L2ServiceResult> out;
  l2.enqueue(0x2000, 99, /*is_writeback=*/true, 0);
  for (Cycle t = 1; t <= 20; ++t) l2.tick(t, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(l2.writebacks(), 1u);
  // The line is now present (a subsequent read hits).
  l2.enqueue(0x2000, 1, false, 30);
  for (Cycle t = 30; t <= 50; ++t) l2.tick(t, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].hit);
}

TEST(L2, RejectsIndivisibleBanking) {
  EXPECT_THROW(L2Cache(1000, 2, 64, 3, 15), std::invalid_argument);
}

}  // namespace
}  // namespace mflush
