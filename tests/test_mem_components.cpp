#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/archive.h"
#include "mem/bus.h"
#include "mem/dram.h"
#include "mem/l2.h"
#include "mem/memory.h"
#include "mem/mshr.h"

namespace mflush {
namespace {

// ---------------------------------------------------------------------- MSHR

TEST(Mshr, AllocateFindRelease) {
  Mshr m(4);
  const auto slot = m.allocate(0x1000);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(m.find(0x1000), slot);
  EXPECT_EQ(m.line_of_slot(*slot), 0x1000u);
  m.attach(*slot, MshrWaiter{.token = 7, .tid = 0, .issue_cycle = 10,
                             .kind = MemKind::Load});
  const auto waiters = m.release(*slot);
  ASSERT_EQ(waiters.size(), 1u);
  EXPECT_EQ(waiters[0].token, 7u);
  EXPECT_FALSE(m.find(0x1000).has_value());
}

TEST(Mshr, FullAllocationFails) {
  Mshr m(2);
  ASSERT_TRUE(m.allocate(0x40).has_value());
  ASSERT_TRUE(m.allocate(0x80).has_value());
  EXPECT_TRUE(m.full());
  EXPECT_FALSE(m.allocate(0xC0).has_value());
  EXPECT_EQ(m.alloc_failures(), 1u);
}

TEST(Mshr, SlotReuseAfterRelease) {
  Mshr m(1);
  const auto s1 = m.allocate(0x40);
  (void)m.release(*s1);
  const auto s2 = m.allocate(0x80);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(m.live(), 1u);
}

TEST(Mshr, CoalescingMultipleWaiters) {
  Mshr m(4);
  const auto slot = *m.allocate(0x1000);
  for (std::uint64_t t = 1; t <= 5; ++t)
    m.attach(slot, MshrWaiter{.token = t, .tid = 0, .issue_cycle = t,
                              .kind = MemKind::Load});
  EXPECT_EQ(m.waiters(slot).size(), 5u);
  EXPECT_EQ(m.release(slot).size(), 5u);
}

TEST(Mshr, MissKnownFlag) {
  Mshr m(2);
  const auto slot = *m.allocate(0x40);
  EXPECT_FALSE(m.miss_known(slot));
  m.set_miss_known(slot);
  EXPECT_TRUE(m.miss_known(slot));
  (void)m.release(slot);
  const auto again = *m.allocate(0x40);
  EXPECT_FALSE(m.miss_known(again));  // reset on reallocation
}

// ----------------------------------------------------------------------- Bus

TEST(Bus, DeliversAfterLatency) {
  SharedBus bus(2, 4);
  std::vector<std::uint64_t> done;
  bus.push(0, 42, 0);
  for (Cycle t = 1; t <= 4; ++t) {
    done.clear();
    bus.tick(t, done);
    if (t < 5) { EXPECT_TRUE(done.empty()); }
  }
  done.clear();
  bus.tick(5, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 42u);
}

TEST(Bus, OccupancySerializesTransfers) {
  SharedBus bus(1, 4);
  std::vector<std::uint64_t> done;
  bus.push(0, 1, 0);
  bus.push(0, 2, 0);
  std::vector<Cycle> arrivals;
  for (Cycle t = 1; t <= 20 && arrivals.size() < 2; ++t) {
    done.clear();
    bus.tick(t, done);
    for (auto p : done) {
      (void)p;
      arrivals.push_back(t);
    }
  }
  ASSERT_EQ(arrivals.size(), 2u);
  // Second transfer starts only after the bus frees: 4 cycles apart.
  EXPECT_GE(arrivals[1] - arrivals[0], 4u);
}

TEST(Bus, RoundRobinFairness) {
  SharedBus bus(2, 1);
  std::vector<std::uint64_t> done;
  // Saturate both cores; grants must alternate.
  for (int i = 0; i < 4; ++i) {
    bus.push(0, 100 + i, 0);
    bus.push(1, 200 + i, 0);
  }
  std::vector<std::uint64_t> order;
  for (Cycle t = 1; t <= 20 && order.size() < 8; ++t) {
    done.clear();
    bus.tick(t, done);
    for (auto p : done) order.push_back(p);
  }
  ASSERT_EQ(order.size(), 8u);
  int alternations = 0;
  for (std::size_t i = 1; i < order.size(); ++i)
    if ((order[i] / 100) != (order[i - 1] / 100)) ++alternations;
  EXPECT_GE(alternations, 6);
}

TEST(Bus, QueueWaitAccounted) {
  SharedBus bus(1, 4);
  std::vector<std::uint64_t> done;
  bus.push(0, 1, 0);
  bus.push(0, 2, 0);  // waits ~4 cycles for the bus
  for (Cycle t = 1; t <= 12; ++t) {
    done.clear();
    bus.tick(t, done);
  }
  EXPECT_GT(bus.queue_wait_cycles(), 0u);
  EXPECT_EQ(bus.transfers(), 2u);
}

// -------------------------------------------------------------------- Memory

TEST(Memory, FixedLatency) {
  FixedLatencyMemory mem(250);
  std::vector<std::uint64_t> done;
  mem.start_read(0x40, 9, 100);
  mem.tick(349, done);
  EXPECT_TRUE(done.empty());
  mem.tick(350, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 9u);
}

TEST(Memory, FullyPipelined) {
  FixedLatencyMemory mem(250);
  std::vector<std::uint64_t> done;
  for (std::uint64_t i = 0; i < 10; ++i) mem.start_read(i * 64, i, 100 + i);
  mem.tick(359, done);
  EXPECT_EQ(done.size(), 10u);  // all ten resolve within consecutive cycles
  // FIFO order preserved for determinism.
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(done[i], i);
}

TEST(Memory, CountsReadsAndWrites) {
  FixedLatencyMemory mem(10);
  mem.start_read(0x40, 1, 0);
  mem.start_write(0x80, 0);
  mem.start_write(0xC0, 0);
  EXPECT_EQ(mem.stats().reads, 1u);
  EXPECT_EQ(mem.stats().writes, 2u);
}

// Satellite: reset_stats is the one audited warm/measure boundary — it
// zeroes counters and ONLY counters; in-flight accesses survive untouched
// and complete on schedule. (The pre-seam MainMemory::reset_stats had no
// such guarantee audited.)
TEST(Memory, ResetStatsPreservesOutstanding) {
  FixedLatencyMemory mem(100);
  std::vector<std::uint64_t> done;
  mem.start_read(0x40, 7, 50);
  mem.start_write(0x80, 50);
  mem.reset_stats();
  EXPECT_EQ(mem.stats().reads, 0u);
  EXPECT_EQ(mem.stats().writes, 0u);
  EXPECT_EQ(mem.outstanding(), 1u);
  EXPECT_EQ(mem.next_event_cycle(), 150u);
  mem.tick(150, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 7u);
}

// --------------------------------------------------------------- Banked DRAM

// Default geometry (channels=2, banks=8, row_bytes=2048, line_bytes=64):
// chan_bits=1, bank_bits=3, row_bits=5. Compose a line address from its
// decomposition so each test states its targets explicitly.
MemConfig dram_cfg() {
  MemConfig cfg;
  cfg.memory_model = MemModelKind::BankedDram;
  return cfg;
}

Addr dram_line(std::uint64_t ch, std::uint64_t bank, std::uint64_t off,
               std::uint64_t row) {
  const std::uint64_t block = ch | (bank << 1) | (off << 4) | (row << 9);
  return block << 6;
}

TEST(Dram, AddressMapping) {
  BankedDramMemory mem(dram_cfg());
  const Addr a = dram_line(1, 5, 17, 3);
  EXPECT_EQ(mem.channel_of(a), 1u);
  EXPECT_EQ(mem.bank_of(a), 5u);
  EXPECT_EQ(mem.row_of(a), 3u);
  // Consecutive lines interleave across channels first.
  EXPECT_EQ(mem.channel_of(0 * 64), 0u);
  EXPECT_EQ(mem.channel_of(1 * 64), 1u);
  EXPECT_EQ(mem.bank_of(2 * 64), 1u);
}

TEST(Dram, RowMissThenRowHit) {
  BankedDramMemory mem(dram_cfg());
  std::vector<std::uint64_t> done;
  // Idle bank: activate + CAS = t_row_miss = 250.
  mem.start_read(dram_line(0, 0, 0, 0), 1, 100);
  EXPECT_EQ(mem.next_event_cycle(), 350u);
  mem.tick(349, done);
  EXPECT_TRUE(done.empty());
  mem.tick(350, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1u);
  // Same row, different line, bank now free: CAS only = t_row_hit = 80.
  done.clear();
  mem.start_read(dram_line(0, 0, 3, 0), 2, 400);
  EXPECT_EQ(mem.next_event_cycle(), 480u);
  mem.tick(480, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(mem.stats().row_misses, 1u);
  EXPECT_EQ(mem.stats().row_hits, 1u);
}

TEST(Dram, RowConflictPrechargesFirst) {
  BankedDramMemory mem(dram_cfg());
  std::vector<std::uint64_t> done;
  mem.start_read(dram_line(0, 0, 0, 0), 1, 100);  // opens row 0
  mem.tick(350, done);
  // Different row in the same bank: precharge + activate + CAS = 400.
  mem.start_read(dram_line(0, 0, 0, 1), 2, 500);
  EXPECT_EQ(mem.next_event_cycle(), 900u);
  EXPECT_EQ(mem.stats().row_conflicts, 1u);
  // The row buffer now holds row 1.
  EXPECT_TRUE(mem.bank_state(0, 0).row_valid);
  EXPECT_EQ(mem.bank_state(0, 0).open_row, 1u);
}

TEST(Dram, BankConflictQueuesInOrder) {
  BankedDramMemory mem(dram_cfg());
  std::vector<std::uint64_t> done;
  // Two same-cycle reads to one bank: the second waits for the first's
  // service window, then row-hits: done at 100+250=350 and 350+80=430.
  mem.start_read(dram_line(0, 0, 0, 0), 1, 100);
  mem.start_read(dram_line(0, 0, 1, 0), 2, 100);
  mem.tick(350, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1u);
  done.clear();
  mem.tick(429, done);
  EXPECT_TRUE(done.empty());
  mem.tick(430, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2u);
}

TEST(Dram, ChannelGapSerializesAcrossBanks) {
  BankedDramMemory mem(dram_cfg());
  std::vector<std::uint64_t> done;
  // Same channel, different banks, same cycle: the channel bus delays the
  // second start by channel_gap=4, so misses land at 350 and 354.
  mem.start_read(dram_line(0, 0, 0, 0), 1, 100);
  mem.start_read(dram_line(0, 1, 0, 0), 2, 100);
  mem.tick(350, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1u);
  done.clear();
  mem.tick(354, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2u);
}

TEST(Dram, DifferentChannelsServeInParallel) {
  BankedDramMemory mem(dram_cfg());
  std::vector<std::uint64_t> done;
  mem.start_read(dram_line(0, 0, 0, 0), 1, 100);
  mem.start_read(dram_line(1, 0, 0, 0), 2, 100);
  mem.tick(350, done);
  EXPECT_EQ(done.size(), 2u);  // no cross-channel interference
}

TEST(Dram, FarLatencyClass) {
  MemConfig cfg = dram_cfg();
  cfg.dram.far_base = dram_line(0, 0, 0, 4);
  cfg.dram.far_bytes = 1 << 20;
  BankedDramMemory mem(cfg);
  std::vector<std::uint64_t> done;
  mem.start_read(cfg.dram.far_base, 1, 100);  // miss + far = 250 + 800
  EXPECT_EQ(mem.next_event_cycle(), 1150u);
  EXPECT_EQ(mem.stats().far_accesses, 1u);
  // Near read on another bank of the same channel: plain miss, but the far
  // read holds the channel bus until 104, so it completes at 104 + 250.
  mem.start_read(dram_line(0, 1, 0, 0), 2, 100);
  // Jumps only ever land on next_event_cycle (the wheel's clock-jump
  // contract, common/wheel.h) — exactly how the event kernel drives it.
  mem.tick(354, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2u);
  done.clear();
  mem.tick(1149, done);
  EXPECT_TRUE(done.empty());
  mem.tick(1150, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1u);
  EXPECT_EQ(mem.stats().far_accesses, 1u);
}

TEST(Dram, CompletionsReorderAcrossBanks) {
  BankedDramMemory mem(dram_cfg());
  std::vector<std::uint64_t> done;
  mem.start_read(dram_line(0, 0, 0, 0), 1, 100);  // opens bank 0 row 0
  mem.tick(350, done);
  done.clear();
  // Slow conflict on bank 0 (due 900), then a fast miss on bank 1 issued
  // later via another channel (due 854): the later issue completes first.
  mem.start_read(dram_line(0, 0, 0, 1), 10, 500);
  mem.start_read(dram_line(1, 1, 0, 0), 11, 600);
  EXPECT_EQ(mem.next_event_cycle(), 850u);
  // Horizon queries must find the earliest MATCHING completion, not the
  // earliest overall — the decoupled kernel's soundness rests on this.
  const auto is10 = [](std::uint64_t p) { return p == 10; };
  const auto is11 = [](std::uint64_t p) { return p == 11; };
  EXPECT_EQ(mem.next_done_if(is10), 900u);
  EXPECT_EQ(mem.next_done_if(is11), 850u);
  mem.tick(850, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 11u);
  mem.tick(900, done);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[1], 10u);
}

TEST(Dram, WritesReserveButNeverComplete) {
  BankedDramMemory mem(dram_cfg());
  std::vector<std::uint64_t> done;
  mem.start_write(dram_line(0, 0, 0, 0), 100);  // miss service: busy to 350
  EXPECT_EQ(mem.outstanding(), 0u);
  EXPECT_EQ(mem.next_event_cycle(), kNeverCycle);
  // A read behind the write queues on the bank and row-hits: 350+80.
  mem.start_read(dram_line(0, 0, 1, 0), 1, 100);
  EXPECT_EQ(mem.next_event_cycle(), 430u);
  mem.tick(430, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(mem.stats().writes, 1u);
  EXPECT_EQ(mem.stats().reads, 1u);
}

TEST(Dram, ResetStatsPreservesOutstanding) {
  BankedDramMemory mem(dram_cfg());
  std::vector<std::uint64_t> done;
  mem.start_read(dram_line(0, 0, 0, 0), 1, 100);
  mem.start_read(dram_line(1, 3, 0, 0), 2, 100);
  mem.reset_stats();
  EXPECT_EQ(mem.stats().reads, 0u);
  EXPECT_EQ(mem.stats().row_misses, 0u);
  EXPECT_EQ(mem.outstanding(), 2u);
  EXPECT_EQ(mem.next_event_cycle(), 350u);
  mem.tick(350, done);
  EXPECT_EQ(done.size(), 2u);  // both still complete on schedule
}

TEST(Dram, SaveLoadRoundTripMidFlight) {
  const MemConfig cfg = dram_cfg();
  BankedDramMemory a(cfg);
  std::vector<std::uint64_t> done;
  a.start_read(dram_line(0, 0, 0, 0), 1, 100);
  a.start_read(dram_line(0, 0, 0, 1), 2, 120);   // queued conflict
  a.start_read(dram_line(1, 2, 0, 0), 3, 130);
  a.start_write(dram_line(0, 4, 0, 0), 140);
  a.tick(350, done);  // payload 1 retires; 2 and 3 still in flight

  ArchiveWriter w;
  a.save(w);
  ArchiveReader r(w.bytes());
  BankedDramMemory b(cfg);
  b.load(r);

  EXPECT_EQ(b.outstanding(), a.outstanding());
  EXPECT_EQ(b.next_event_cycle(), a.next_event_cycle());
  EXPECT_EQ(b.stats().row_conflicts, a.stats().row_conflicts);
  EXPECT_EQ(b.bank_state(0, 0).busy_until, a.bank_state(0, 0).busy_until);
  EXPECT_EQ(b.bank_state(0, 0).open_row, a.bank_state(0, 0).open_row);
  for (Cycle t = 351; t <= 2000; ++t) {
    std::vector<std::uint64_t> da, db;
    a.tick(t, da);
    b.tick(t, db);
    ASSERT_EQ(da, db) << "divergence at cycle " << t;
  }
  EXPECT_EQ(a.outstanding(), 0u);
}

// Fuzz the wheel-scheduled delivery against a plain linear-scan reference
// that reimplements the reservation algebra independently: same classify /
// reserve math, but completions kept in a flat vector scanned every cycle.
TEST(Dram, FuzzMatchesLinearScanReference) {
  MemConfig cfg = dram_cfg();
  cfg.dram.far_base = dram_line(0, 0, 0, 8);
  cfg.dram.far_bytes = 1 << 19;
  BankedDramMemory mem(cfg);

  struct RefBank {
    Cycle busy = 0;
    std::uint64_t row = 0;
    bool valid = false;
  };
  const std::uint32_t nch = cfg.dram.channels;
  const std::uint32_t nbk = cfg.dram.banks_per_channel;
  std::vector<RefBank> rbanks(nch * nbk);
  std::vector<Cycle> rchan(nch, 0);
  std::vector<std::pair<Cycle, std::uint64_t>> rpending;

  std::mt19937_64 rng(0xD12A4u);
  std::uint64_t payload = 0;
  Cycle next_issue = 1 + rng() % 97;
  // The burst rate deliberately oversubscribes the banks, so the backlog
  // (and the wheel's far queue) grows deep before the post-horizon drain.
  const Cycle horizon = 20'000;
  // Tick densely (the wheel's clock-jump contract: a caller may only jump
  // to next_event_cycle; the fuzz just never jumps), issuing random bursts
  // along the way, and compare each cycle's delivery set.
  for (Cycle t = 1; t <= horizon || mem.outstanding() != 0; ++t) {
    ASSERT_LT(t, 20 * horizon) << "in-flight reads never drained";
    if (t == next_issue && t <= horizon) {
      const int n = 1 + static_cast<int>(rng() % 4);
      for (int i = 0; i < n; ++i) {
        const Addr line =
            dram_line(rng() % nch, rng() % nbk, rng() % 32, rng() % 16);
        mem.start_read(line, ++payload, t);
        // Reference reservation (independent state, same algebra).
        RefBank& b = rbanks[mem.channel_of(line) * nbk + mem.bank_of(line)];
        const Cycle start = std::max({t, b.busy, rchan[mem.channel_of(line)]});
        std::uint64_t lat = !b.valid ? cfg.dram.t_row_miss
                            : b.row == mem.row_of(line)
                                ? cfg.dram.t_row_hit
                                : cfg.dram.t_row_conflict;
        if (line >= cfg.dram.far_base &&
            line - cfg.dram.far_base < cfg.dram.far_bytes)
          lat += cfg.dram.far_extra;
        b.valid = true;
        b.row = mem.row_of(line);
        b.busy = start + lat;
        rchan[mem.channel_of(line)] = start + cfg.dram.channel_gap;
        rpending.emplace_back(start + lat, payload);
      }
      next_issue = t + 1 + rng() % 97;
    }
    std::vector<std::uint64_t> got;
    mem.tick(t, got);
    std::vector<std::uint64_t> want;
    std::erase_if(rpending, [&](const auto& p) {
      if (p.first > t) return false;
      want.push_back(p.second);
      return true;
    });
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "divergence at cycle " << t;
  }
  EXPECT_GT(mem.stats().row_hits, 0u);
  EXPECT_GT(mem.stats().row_conflicts, 0u);
  EXPECT_GT(mem.stats().far_accesses, 0u);
}

// ------------------------------------------------------------------ L2 banks

L2Cache paper_l2() { return L2Cache(4 * 1024 * 1024, 12, 64, 4, 15); }

TEST(L2, BankInterleavingByLine) {
  auto l2 = paper_l2();
  EXPECT_EQ(l2.bank_of(0 * 64), 0u);
  EXPECT_EQ(l2.bank_of(1 * 64), 1u);
  EXPECT_EQ(l2.bank_of(2 * 64), 2u);
  EXPECT_EQ(l2.bank_of(3 * 64), 3u);
  EXPECT_EQ(l2.bank_of(4 * 64), 0u);
}

TEST(L2, MissThenFillThenHit) {
  auto l2 = paper_l2();
  std::vector<L2ServiceResult> out;
  l2.enqueue(0x1000, 1, false, 0);
  for (Cycle t = 1; t <= 16; ++t) l2.tick(t, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].hit);
  (void)l2.fill(0x1000, false);
  out.clear();
  l2.enqueue(0x1000, 2, false, 20);
  for (Cycle t = 20; t <= 40; ++t) l2.tick(t, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].hit);
}

TEST(L2, SingleLatencyIs15Cycles) {
  auto l2 = paper_l2();
  std::vector<L2ServiceResult> out;
  l2.enqueue(0x40, 1, false, 0);
  Cycle done = 0;
  for (Cycle t = 1; t <= 30 && done == 0; ++t) {
    l2.tick(t, out);
    if (!out.empty()) done = t;
  }
  // Service starts at tick 1, completes 15 cycles later.
  EXPECT_EQ(done, 16u);
}

// The paper's worked example (§3.2): the 4th consecutive hit to the same
// bank experiences ~45 extra cycles of queueing.
TEST(L2, FourthConsecutiveSameBankAccessWaits45Cycles) {
  auto l2 = paper_l2();
  for (int i = 0; i < 4; ++i) (void)l2.fill(0x1000 + i * 4 * 64, false);
  std::vector<L2ServiceResult> out;
  // Four back-to-back requests to bank 0 (line stride of 4 lines).
  for (std::uint64_t i = 0; i < 4; ++i)
    l2.enqueue(0x1000 + i * 4 * 64, i, false, 0);
  std::vector<Cycle> done(4, 0);
  for (Cycle t = 1; t <= 100; ++t) {
    out.clear();
    l2.tick(t, out);
    for (const auto& r : out) done[r.payload] = t;
  }
  EXPECT_EQ(done[0], 16u);
  EXPECT_EQ(done[3] - done[0], 45u);  // three additional 15-cycle services
}

TEST(L2, BanksServeInParallel) {
  auto l2 = paper_l2();
  for (std::uint64_t i = 0; i < 4; ++i) (void)l2.fill(i * 64, false);
  std::vector<L2ServiceResult> out;
  for (std::uint64_t i = 0; i < 4; ++i) l2.enqueue(i * 64, i, false, 0);
  std::vector<Cycle> done(4, 0);
  for (Cycle t = 1; t <= 40; ++t) {
    out.clear();
    l2.tick(t, out);
    for (const auto& r : out) done[r.payload] = t;
  }
  for (int i = 0; i < 4; ++i) EXPECT_EQ(done[i], 16u) << i;
}

TEST(L2, WritebackInstallsDirtyWithoutResponse) {
  auto l2 = paper_l2();
  std::vector<L2ServiceResult> out;
  l2.enqueue(0x2000, 99, /*is_writeback=*/true, 0);
  for (Cycle t = 1; t <= 20; ++t) l2.tick(t, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(l2.writebacks(), 1u);
  // The line is now present (a subsequent read hits).
  l2.enqueue(0x2000, 1, false, 30);
  for (Cycle t = 30; t <= 50; ++t) l2.tick(t, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].hit);
}

TEST(L2, RejectsIndivisibleBanking) {
  EXPECT_THROW(L2Cache(1000, 2, 64, 3, 15), std::invalid_argument);
}

}  // namespace
}  // namespace mflush
