#include <gtest/gtest.h>

#include "common/stats.h"

namespace mflush {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, Reset) {
  RunningStat s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BinPlacement) {
  Histogram h(10.0, 5);
  h.add(0.0);
  h.add(9.99);
  h.add(10.0);
  h.add(49.0);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, Overflow) {
  Histogram h(10.0, 3);
  h.add(100.0);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, NegativeClampsToFirstBin) {
  Histogram h(1.0, 4);
  h.add(-3.0);
  EXPECT_EQ(h.bin_count(0), 1u);
}

TEST(Histogram, Mean) {
  Histogram h(5.0, 10);
  h.add(10.0);
  h.add(20.0);
  EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Histogram, FractionBetween) {
  Histogram h(10.0, 10);
  for (double v : {5.0, 15.0, 25.0, 35.0}) h.add(v);
  EXPECT_DOUBLE_EQ(h.fraction_between(0.0, 20.0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_between(10.0, 40.0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction_between(50.0, 100.0), 0.0);
}

TEST(Histogram, Quantile) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.5, 1.0);
}

TEST(Histogram, QuantileEmpty) {
  Histogram h(1.0, 4);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(5.0, 4), b(5.0, 4);
  a.add(1.0);
  b.add(1.0);
  b.add(17.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bin_count(0), 2u);
  EXPECT_EQ(a.bin_count(3), 1u);
}

TEST(Histogram, Reset) {
  Histogram h(1.0, 2);
  h.add(0.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bin_count(0), 0u);
}

TEST(SafeRatio, ZeroDenominator) {
  EXPECT_EQ(safe_ratio(5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_ratio(6.0, 3.0), 2.0);
}

TEST(Means, GeoMean) {
  EXPECT_DOUBLE_EQ(geo_mean({}), 0.0);
  EXPECT_NEAR(geo_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_EQ(geo_mean({1.0, 0.0}), 0.0);  // non-positive input
}

TEST(Means, ArithMean) {
  EXPECT_DOUBLE_EQ(arith_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(arith_mean({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace mflush
