#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/workloads.h"

/// Property-style sweeps: structural invariants that must hold for every
/// (policy × workload) combination.
namespace mflush {
namespace {

using Param = std::tuple<std::string, std::string>;  // workload, policy

class SimProperties : public ::testing::TestWithParam<Param> {
 protected:
  static CmpSimulator make(const Param& p) {
    return CmpSimulator(*workloads::by_name(std::get<0>(p)),
                        *PolicySpec::parse(std::get<1>(p)), 17);
  }
};

TEST_P(SimProperties, ProgressAndConservation) {
  auto sim = make(GetParam());
  sim.run(12'000);
  const SimMetrics m = sim.metrics();

  // Forward progress on every thread.
  EXPECT_GT(m.committed, 0u);
  for (const double ipc : m.per_thread_ipc) EXPECT_GT(ipc, 0.0);

  std::uint64_t fetched = 0, squashed = 0;
  std::size_t live = 0;
  for (CoreId c = 0; c < sim.num_cores(); ++c) {
    const CoreStats& s = sim.core(c).stats();
    fetched += s.fetched;
    for (const auto v : s.policy_flushed_by_stage) squashed += v;
    for (const auto v : s.branch_squashed_by_stage) squashed += v;
    live += sim.core(c).pool().live();
  }
  // Conservation: every fetched instruction either committed, was
  // squashed, or is still in flight.
  EXPECT_EQ(fetched, m.committed + squashed + live);
}

TEST_P(SimProperties, Determinism) {
  auto a = make(GetParam());
  auto b = make(GetParam());
  a.run(8'000);
  b.run(8'000);
  EXPECT_EQ(a.metrics().committed, b.metrics().committed);
  EXPECT_EQ(a.metrics().flush_events, b.metrics().flush_events);
  EXPECT_EQ(a.memory().l2().read_hits(), b.memory().l2().read_hits());
}

TEST_P(SimProperties, EnergyLedgersAreCoherent) {
  auto sim = make(GetParam());
  sim.run(12'000);
  const SimMetrics m = sim.metrics();
  // One unit per committed instruction.
  EXPECT_DOUBLE_EQ(m.energy.committed_units,
                   static_cast<double>(m.committed));
  // No flushes => no flush-wasted energy, and vice versa.
  if (m.flush_events == 0) {
    EXPECT_DOUBLE_EQ(m.energy.flush_wasted_units, 0.0);
  } else {
    EXPECT_GT(m.energy.flush_wasted_units, 0.0);
  }
  // A squashed instruction wastes at most 1 unit (never reached commit).
  EXPECT_LE(m.energy.flush_wasted_units,
            static_cast<double>(m.flushed_instructions));
  EXPECT_GE(m.energy.flush_wasted_units,
            0.13 * static_cast<double>(m.flushed_instructions) - 1e-9);
}

TEST_P(SimProperties, MemorySystemStaysSane) {
  auto sim = make(GetParam());
  sim.run(12'000);
  const MemStats& ms = sim.memory().stats();
  EXPECT_GT(ms.loads, 0u);
  // L2 load latencies are bounded below by the L1 latency (coalesced
  // secondary misses can complete shortly after attaching).
  if (ms.l2_load_hit_time.count() > 0) {
    EXPECT_GE(ms.l2_load_hit_time.quantile(0.01), 2.0);
  }
  // MSHRs drained or bounded.
  for (CoreId c = 0; c < sim.num_cores(); ++c)
    EXPECT_LE(sim.memory().mshr(c).live(), sim.config().mem.mshr_entries);
}

TEST_P(SimProperties, FlushEventsMatchPolicyKind) {
  auto sim = make(GetParam());
  sim.run(12'000);
  const auto spec = *PolicySpec::parse(std::get<1>(GetParam()));
  if (spec.kind == PolicySpec::Kind::Icount ||
      spec.kind == PolicySpec::Kind::Stall) {
    EXPECT_EQ(sim.metrics().flush_events, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyWorkloadMatrix, SimProperties,
    ::testing::Combine(
        ::testing::Values("2W3", "4W2", "6W5", "8W2"),
        ::testing::Values("icount", "flush-s30", "flush-s100", "flush-ns",
                          "stall-s30", "mflush")),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_" +
                         std::get<1>(param_info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

/// Trigger sweep properties (Fig. 5 machinery).
class TriggerSweep : public ::testing::TestWithParam<int> {};

TEST_P(TriggerSweep, SpecFlushRunsAtAnyTrigger) {
  const Cycle trigger = static_cast<Cycle>(GetParam());
  CmpSimulator sim(*workloads::by_name("4W3"),
                   PolicySpec::flush_spec(trigger), 5);
  sim.run(10'000);
  EXPECT_GT(sim.metrics().committed, 0u);
  // Low triggers can only flush more often than high triggers get to.
  EXPECT_LT(sim.metrics().flush_events, 100'000u);
}

INSTANTIATE_TEST_SUITE_P(Fig5Range, TriggerSweep,
                         ::testing::Values(30, 50, 70, 90, 110, 130, 150));

/// Core-count scaling properties.
class CoreScaling : public ::testing::TestWithParam<int> {};

TEST_P(CoreScaling, ChipScalesWithWorkloadSize) {
  const int threads = GetParam();
  const auto v = workloads::of_size(static_cast<std::uint32_t>(threads));
  ASSERT_FALSE(v.empty());
  CmpSimulator sim(v.front(), PolicySpec::mflush(), 3);
  EXPECT_EQ(sim.num_cores(), static_cast<std::uint32_t>(threads) / 2);
  sim.run(6'000);
  EXPECT_GT(sim.metrics().committed, 0u);
  // MT term grows with the chip.
  EXPECT_EQ(sim.config().mem.multicore_traffic(sim.num_cores()),
            19u * (sim.num_cores() - 1));
}

INSTANTIATE_TEST_SUITE_P(AllSizes, CoreScaling, ::testing::Values(2, 4, 6, 8));

}  // namespace
}  // namespace mflush
