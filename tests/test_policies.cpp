#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/archive.h"
#include "core/factory.h"
#include "core/fetch_policy.h"
#include "core/flush.h"
#include "core/icount.h"
#include "core/mflush.h"
#include "core/stall.h"

namespace mflush {
namespace {

/// Records the response actions a policy takes.
class MockControl final : public CoreControl {
 public:
  bool flush_after_load(std::uint64_t token) override {
    flushed.push_back(token);
    return accept_flush;
  }
  bool stall_until_load(std::uint64_t token) override {
    stalled.push_back(token);
    return accept_stall;
  }
  void set_fetch_gate(ThreadId tid, bool gated) override {
    gates.emplace_back(tid, gated);
  }

  std::vector<std::uint64_t> flushed;
  std::vector<std::uint64_t> stalled;
  std::vector<std::pair<ThreadId, bool>> gates;
  bool accept_flush = true;
  bool accept_stall = true;
};

CoreView two_thread_view(std::uint32_t c0, std::uint32_t c1) {
  CoreView v;
  v.num_threads = 2;
  v.icount[0] = c0;
  v.icount[1] = c1;
  return v;
}

// -------------------------------------------------------------- icount_order

TEST(IcountOrder, FewestPreIssueFirst) {
  std::array<ThreadId, kMaxContexts> order{};
  icount_order(two_thread_view(10, 3), order);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

TEST(IcountOrder, TieBreaksByThreadId) {
  std::array<ThreadId, kMaxContexts> order{};
  icount_order(two_thread_view(5, 5), order);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(IcountPolicy, NeverTriggersActions) {
  IcountPolicy p;
  MockControl ctrl;
  p.on_load_issued(0, 1, 0, 0);
  for (Cycle t = 0; t < 500; ++t) p.on_cycle(t, ctrl);
  EXPECT_TRUE(ctrl.flushed.empty());
  EXPECT_TRUE(ctrl.stalled.empty());
  EXPECT_TRUE(ctrl.gates.empty());
}

// -------------------------------------------------------------- FlushPolicy

TEST(FlushSpec, FiresExactlyAtTrigger) {
  FlushPolicy p(FlushPolicy::DetectionMoment::SpecDelay, 30);
  MockControl ctrl;
  p.on_load_issued(0, 7, 2, 100);
  p.on_cycle(129, ctrl);
  EXPECT_TRUE(ctrl.flushed.empty());
  p.on_cycle(130, ctrl);
  ASSERT_EQ(ctrl.flushed.size(), 1u);
  EXPECT_EQ(ctrl.flushed[0], 7u);
}

TEST(FlushSpec, NoRefireWhileThreadFlushed) {
  FlushPolicy p(FlushPolicy::DetectionMoment::SpecDelay, 30);
  MockControl ctrl;
  p.on_load_issued(0, 7, 0, 100);
  p.on_cycle(200, ctrl);
  p.on_cycle(201, ctrl);
  p.on_cycle(250, ctrl);
  EXPECT_EQ(ctrl.flushed.size(), 1u);
}

TEST(FlushSpec, ResolveUnblocksNextFlush) {
  FlushPolicy p(FlushPolicy::DetectionMoment::SpecDelay, 30);
  MockControl ctrl;
  p.on_load_issued(0, 7, 0, 100);
  p.on_cycle(140, ctrl);
  p.on_load_resolved(0, 7, 100, 400, true, false, 0);
  p.on_load_issued(0, 8, 0, 400);
  p.on_cycle(440, ctrl);
  ASSERT_EQ(ctrl.flushed.size(), 2u);
  EXPECT_EQ(ctrl.flushed[1], 8u);
}

TEST(FlushSpec, IndependentThreads) {
  FlushPolicy p(FlushPolicy::DetectionMoment::SpecDelay, 30);
  MockControl ctrl;
  p.on_load_issued(0, 7, 0, 100);
  p.on_load_issued(1, 8, 0, 100);
  p.on_cycle(140, ctrl);
  EXPECT_EQ(ctrl.flushed.size(), 2u);
}

TEST(FlushSpec, DropsVanishedLoads) {
  FlushPolicy p(FlushPolicy::DetectionMoment::SpecDelay, 30);
  MockControl ctrl;
  ctrl.accept_flush = false;  // core says the load is gone
  p.on_load_issued(0, 7, 0, 100);
  p.on_cycle(140, ctrl);
  ctrl.flushed.clear();
  p.on_cycle(141, ctrl);
  EXPECT_TRUE(ctrl.flushed.empty());  // forgotten, not retried forever
}

TEST(FlushNonSpec, FiresOnlyOnMissDetection) {
  FlushPolicy p(FlushPolicy::DetectionMoment::NonSpec, 0);
  MockControl ctrl;
  p.on_load_issued(0, 7, 1, 100);
  p.on_cycle(500, ctrl);  // ages alone never trigger FL-NS
  EXPECT_TRUE(ctrl.flushed.empty());
  p.on_load_l2_miss(0, 7, 1, 520);
  p.on_cycle(521, ctrl);
  ASSERT_EQ(ctrl.flushed.size(), 1u);
}

TEST(FlushPolicy, FalseMissCounters) {
  FlushPolicy p(FlushPolicy::DetectionMoment::SpecDelay, 30);
  MockControl ctrl;
  p.on_load_issued(0, 7, 0, 100);
  p.on_cycle(140, ctrl);
  p.on_load_resolved(0, 7, 100, 160, true, true, 0);  // it was a hit!
  p.on_load_issued(0, 9, 0, 200);
  p.on_cycle(240, ctrl);
  p.on_load_resolved(0, 9, 200, 480, true, false, 0);  // real miss
  const auto c = p.counters();
  EXPECT_EQ(c.flushes_on_hit, 1u);
  EXPECT_EQ(c.flushes_on_miss, 1u);
}

TEST(FlushPolicy, Names) {
  EXPECT_STREQ(FlushPolicy(FlushPolicy::DetectionMoment::SpecDelay, 30).name(),
               "FLUSH-S30");
  EXPECT_STREQ(FlushPolicy(FlushPolicy::DetectionMoment::NonSpec, 0).name(),
               "FLUSH-NS");
}

// -------------------------------------------------------------- StallPolicy

TEST(StallPolicy, StallsInsteadOfFlushing) {
  StallPolicy p(40);
  MockControl ctrl;
  p.on_load_issued(0, 3, 0, 10);
  p.on_cycle(49, ctrl);
  EXPECT_TRUE(ctrl.stalled.empty());
  p.on_cycle(50, ctrl);
  ASSERT_EQ(ctrl.stalled.size(), 1u);
  EXPECT_TRUE(ctrl.flushed.empty());
}

TEST(StallPolicy, OneStallPerThreadUntilResolve) {
  StallPolicy p(40);
  MockControl ctrl;
  p.on_load_issued(0, 3, 0, 10);
  p.on_load_issued(0, 4, 0, 12);
  p.on_cycle(60, ctrl);
  EXPECT_EQ(ctrl.stalled.size(), 1u);
  p.on_load_resolved(0, 3, 10, 70, true, false, 0);
  p.on_cycle(71, ctrl);
  EXPECT_EQ(ctrl.stalled.size(), 2u);  // the second load now stalls
}

// --------------------------------------------------------------- PolicySpec

TEST(PolicySpec, Labels) {
  EXPECT_EQ(PolicySpec::icount().label(), "ICOUNT");
  EXPECT_EQ(PolicySpec::flush_spec(30).label(), "FLUSH-S30");
  EXPECT_EQ(PolicySpec::flush_spec(100).label(), "FLUSH-S100");
  EXPECT_EQ(PolicySpec::flush_ns().label(), "FLUSH-NS");
  EXPECT_EQ(PolicySpec::stall(50).label(), "STALL-S50");
  EXPECT_EQ(PolicySpec::mflush().label(), "MFLUSH");
}

TEST(PolicySpec, ParseRoundTrip) {
  PolicySpec history_np =
      PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Avg);
  history_np.preventive = false;
  for (const auto& spec :
       {PolicySpec::icount(), PolicySpec::flush_spec(30),
        PolicySpec::flush_spec(150), PolicySpec::flush_ns(),
        PolicySpec::stall(40), PolicySpec::mflush(),
        PolicySpec::mflush_no_preventive(),
        PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Avg),
        PolicySpec::mflush_history(8, PolicySpec::McRegAgg::Max),
        PolicySpec::mflush_history(2, PolicySpec::McRegAgg::Last),
        history_np}) {
    const auto parsed = PolicySpec::parse(spec.label());
    ASSERT_TRUE(parsed.has_value()) << spec.label();
    EXPECT_EQ(*parsed, spec);
  }
}

TEST(PolicySpec, ParseIsCaseInsensitive) {
  EXPECT_EQ(*PolicySpec::parse("IcOuNt"), PolicySpec::icount());
  EXPECT_EQ(*PolicySpec::parse("flush-s30"), PolicySpec::flush_spec(30));
}

TEST(PolicySpec, ParseRejectsGarbage) {
  EXPECT_FALSE(PolicySpec::parse("").has_value());
  EXPECT_FALSE(PolicySpec::parse("flush").has_value());
  EXPECT_FALSE(PolicySpec::parse("flush-s").has_value());
  EXPECT_FALSE(PolicySpec::parse("flush-s0").has_value());
  EXPECT_FALSE(PolicySpec::parse("flush-sXX").has_value());
  EXPECT_FALSE(PolicySpec::parse("superpolicy").has_value());
}

TEST(Factory, BuildsEveryKind) {
  const SimConfig cfg = SimConfig::paper_default(4);
  EXPECT_STREQ(make_policy(PolicySpec::icount(), cfg)->name(), "ICOUNT");
  EXPECT_STREQ(make_policy(PolicySpec::flush_spec(30), cfg)->name(),
               "FLUSH-S30");
  EXPECT_STREQ(make_policy(PolicySpec::flush_ns(), cfg)->name(), "FLUSH-NS");
  EXPECT_STREQ(make_policy(PolicySpec::stall(30), cfg)->name(), "STALL-S30");
  EXPECT_STREQ(make_policy(PolicySpec::mflush(), cfg)->name(), "MFLUSH");
}

// ------------------------------------------------- quiescence horizons

/// The horizon contract the decoupled clock relies on: every on_cycle
/// strictly before quiescent_until(now) must be an exact no-op — no
/// response actions AND no state or counter change (checked by comparing
/// serialized policy state before/after).
void expect_noop_through_horizon(FetchPolicy& p, Cycle now,
                                 Cycle probe_limit = 512) {
  const Cycle h = p.quiescent_until(now);
  ASSERT_GT(h, now) << "horizon must be in the future";
  if (h == now + 1) return;  // not quiescent: nothing to probe
  ArchiveWriter before;
  p.save_state(before);
  MockControl ctrl;
  const Cycle stop =
      h == kNeverCycle ? now + probe_limit : std::min(h - 1, now + probe_limit);
  for (Cycle t = now + 1; t <= stop; ++t) p.on_cycle(t, ctrl);
  EXPECT_TRUE(ctrl.flushed.empty()) << "flush inside quiescent window";
  EXPECT_TRUE(ctrl.stalled.empty()) << "stall inside quiescent window";
  EXPECT_TRUE(ctrl.gates.empty()) << "gate change inside quiescent window";
  ArchiveWriter after;
  p.save_state(after);
  EXPECT_EQ(before.bytes(), after.bytes())
      << "policy state changed inside its quiescent window";
}

TEST(QuiescentUntil, PriorityPoliciesAreForeverQuiescent) {
  IcountPolicy p;
  EXPECT_EQ(p.quiescent_until(1000), kNeverCycle);
}

TEST(QuiescentUntil, FlushSpecHorizonIsTheTriggerDeadline) {
  FlushPolicy p(FlushPolicy::DetectionMoment::SpecDelay, 30);
  p.on_load_issued(0, 7, 2, 100);
  EXPECT_EQ(p.quiescent_until(110), 130u);  // fires at issue + trigger
  expect_noop_through_horizon(p, 110);
  MockControl ctrl;
  p.on_cycle(130, ctrl);  // and it really does act at the horizon
  EXPECT_EQ(ctrl.flushed.size(), 1u);
}

TEST(QuiescentUntil, FlushSpecFlushedThreadWaitsOnCallback) {
  FlushPolicy p(FlushPolicy::DetectionMoment::SpecDelay, 30);
  MockControl ctrl;
  p.on_load_issued(0, 7, 2, 100);
  p.on_cycle(130, ctrl);  // flush fires; thread now waits for the load
  EXPECT_EQ(p.quiescent_until(130), kNeverCycle);
  expect_noop_through_horizon(p, 130);
}

TEST(QuiescentUntil, FlushNonSpecArmsOnMissDetection) {
  FlushPolicy p(FlushPolicy::DetectionMoment::NonSpec, 0);
  p.on_load_issued(0, 7, 1, 100);
  EXPECT_EQ(p.quiescent_until(200), kNeverCycle);  // age never triggers
  expect_noop_through_horizon(p, 200);
  p.on_load_l2_miss(0, 7, 1, 220);
  EXPECT_EQ(p.quiescent_until(220), 221u);  // armed: fires next heartbeat
}

TEST(QuiescentUntil, StallHorizonIsTheTriggerDeadline) {
  StallPolicy p(40);
  p.on_load_issued(1, 9, 0, 500);
  EXPECT_EQ(p.quiescent_until(510), 540u);
  expect_noop_through_horizon(p, 510);
  MockControl ctrl;
  p.on_cycle(540, ctrl);
  EXPECT_EQ(ctrl.stalled.size(), 1u);
}

TEST(QuiescentUntil, MflushHorizonCoversBarrierAndSuspicion) {
  MflushConfig cfg;  // min 22, max 272, mt 0 -> preventive threshold 22
  MflushPolicy p(cfg);
  p.on_load_issued(0, 7, 2, 100);
  // Not yet on the L2 path: the load does not participate in on_cycle.
  EXPECT_EQ(p.quiescent_until(105), kNeverCycle);
  p.on_load_l2_path(0, 7, 2, 103);
  // Barrier = MCReg(22) + 11 = 33 clamped to [22, 272] -> deadline 133,
  // firing at 134; suspicion crosses at issue + 22 + 1 = 123 (earlier).
  EXPECT_EQ(p.quiescent_until(105), 123u);
  expect_noop_through_horizon(p, 105);
}

TEST(QuiescentUntil, MflushArmedGateNeverQuiescent) {
  MflushConfig cfg;
  MflushPolicy p(cfg);
  MockControl ctrl;
  p.on_load_issued(0, 7, 2, 100);
  p.on_load_l2_path(0, 7, 2, 103);
  p.on_cycle(130, ctrl);  // suspicious (age > 22): gate armed
  ASSERT_FALSE(ctrl.gates.empty());
  EXPECT_EQ(p.quiescent_until(130), 131u);  // gate_cycles accrues per tick
}

TEST(Factory, MflushGetsTopologyDerivedMT) {
  const SimConfig cfg = SimConfig::paper_default(4);
  auto p = make_policy(PolicySpec::mflush(), cfg);
  const auto* mf = dynamic_cast<const MflushPolicy*>(p.get());
  ASSERT_NE(mf, nullptr);
  EXPECT_EQ(mf->config().mt, 57u);         // (4+15)*(4-1)
  EXPECT_EQ(mf->config().min_latency, 22u);
  EXPECT_EQ(mf->config().max_latency, 272u);
  EXPECT_EQ(mf->config().num_banks, 4u);
}

}  // namespace
}  // namespace mflush
