#include <gtest/gtest.h>

#include "common/config.h"
#include "mem/hierarchy.h"

namespace mflush {
namespace {

SimConfig cfg_with_cores(std::uint32_t n) {
  SimConfig cfg = SimConfig::paper_default(n);
  return cfg;
}

/// Drive the hierarchy until the given token completes; returns the
/// completion (and asserts it arrives within `deadline` cycles).
MemCompletion run_until_complete(MemoryHierarchy& mem, CoreId core,
                                 std::uint64_t token, Cycle start,
                                 Cycle deadline) {
  for (Cycle t = start + 1; t <= start + deadline; ++t) {
    mem.tick(t);
    for (const MemCompletion& c : mem.completions(core)) {
      if (c.token == token) {
        const MemCompletion out = c;
        mem.completions(core).clear();
        return out;
      }
    }
    mem.completions(core).clear();
  }
  ADD_FAILURE() << "token " << token << " never completed";
  return {};
}

TEST(Hierarchy, L1HitCompletesInL1Latency) {
  MemoryHierarchy mem(cfg_with_cores(1));
  // First access warms the line (goes to memory), second is the L1 hit.
  const auto t1 = mem.request_load(0, 0, 0x1000, 0);
  (void)run_until_complete(mem, 0, t1, 0, 700);
  const Cycle now = 500;
  const auto t2 = mem.request_load(0, 0, 0x1008, now);
  const auto c = run_until_complete(mem, 0, t2, now, 50);
  EXPECT_EQ(c.done_cycle - c.issue_cycle, 3u);  // Fig. 1: L1 lat 3
  EXPECT_FALSE(c.l2_accessed);
}

// DESIGN.md latency anatomy: unloaded L2 hit round trip = 3 + 4 + 15 = 22,
// the paper's "L1 lat./miss 3/22".
TEST(Hierarchy, UnloadedL2HitTakes22Cycles) {
  MemoryHierarchy mem(cfg_with_cores(1));
  mem.prewarm_l2_line(0x1000);
  // Warm the TLB first so the measured access has no page-walk component.
  const auto tw = mem.request_load(0, 0, 0x1000 + 64 * 100, 0);
  (void)run_until_complete(mem, 0, tw, 0, 700);
  const auto warm_tlb = mem.request_load(0, 0, 0x1040, 1000);
  (void)run_until_complete(mem, 0, warm_tlb, 1000, 700);

  const Cycle now = 2000;
  const auto tok = mem.request_load(0, 0, 0x1000, now);
  const auto c = run_until_complete(mem, 0, tok, now, 100);
  EXPECT_TRUE(c.l2_accessed);
  EXPECT_TRUE(c.l2_hit);
  EXPECT_EQ(c.done_cycle - c.issue_cycle, 22u);
}

TEST(Hierarchy, L2MissPaysMemoryLatency) {
  MemoryHierarchy mem(cfg_with_cores(1));
  // Warm TLB page.
  const auto tw = mem.request_load(0, 0, 0x5000, 0);
  (void)run_until_complete(mem, 0, tw, 0, 700);
  const Cycle now = 1000;
  const auto tok = mem.request_load(0, 0, 0x5000 + 64 * 3, now);
  const auto c = run_until_complete(mem, 0, tok, now, 700);
  EXPECT_TRUE(c.l2_accessed);
  EXPECT_FALSE(c.l2_hit);
  // 22 (reach the bank + probe) + 250 (memory), same page -> no TLB walk.
  EXPECT_EQ(c.done_cycle - c.issue_cycle, 272u);
}

TEST(Hierarchy, TlbMissAdds300Cycles) {
  MemoryHierarchy mem(cfg_with_cores(1));
  mem.prewarm_l2_line(0x9000);
  const Cycle now = 10;
  const auto tok = mem.request_load(0, 0, 0x9000, now);  // cold TLB page
  const auto c = run_until_complete(mem, 0, tok, now, 700);
  EXPECT_EQ(c.done_cycle - c.issue_cycle, 322u);  // 300 walk + 22 L2 hit
  EXPECT_EQ(mem.stats().dtlb_misses, 1u);
}

TEST(Hierarchy, MshrCoalescesSameLine) {
  MemoryHierarchy mem(cfg_with_cores(1));
  // Two loads to the same (cold) line: one L2 access, two completions.
  const auto a = mem.request_load(0, 0, 0x2000, 0);
  const auto b = mem.request_load(0, 1, 0x2010, 0);
  bool got_a = false, got_b = false;
  for (Cycle t = 1; t <= 700; ++t) {
    mem.tick(t);
    for (const MemCompletion& c : mem.completions(0)) {
      if (c.token == a) got_a = true;
      if (c.token == b) got_b = true;
    }
    mem.completions(0).clear();
  }
  EXPECT_TRUE(got_a);
  EXPECT_TRUE(got_b);
  EXPECT_EQ(mem.l2().read_hits() + mem.l2().read_misses(), 1u);
}

TEST(Hierarchy, L2PathEventEmittedForLoadMisses) {
  MemoryHierarchy mem(cfg_with_cores(1));
  const auto tok = mem.request_load(0, 0, 0x3000, 0);
  bool seen = false;
  for (Cycle t = 1; t <= 700; ++t) {
    mem.tick(t);
    for (const L2PathEvent& e : mem.l2_events(0)) {
      if (e.token == tok) {
        seen = true;
        EXPECT_EQ(e.bank, mem.l2_bank_of(0x3000));
      }
    }
    mem.l2_events(0).clear();
    mem.completions(0).clear();
  }
  EXPECT_TRUE(seen);
}

TEST(Hierarchy, L2MissEventEmittedAtDetection) {
  MemoryHierarchy mem(cfg_with_cores(1));
  const auto tok = mem.request_load(0, 0, 0x4000, 0);
  Cycle miss_detected = 0, completed = 0;
  for (Cycle t = 1; t <= 700; ++t) {
    mem.tick(t);
    for (const L2PathEvent& e : mem.l2_miss_events(0))
      if (e.token == tok) miss_detected = t;
    for (const MemCompletion& c : mem.completions(0))
      if (c.token == tok) completed = t;
    mem.l2_miss_events(0).clear();
    mem.completions(0).clear();
  }
  ASSERT_GT(miss_detected, 0u);
  ASSERT_GT(completed, 0u);
  // FL-NS detection happens when the bank determines the miss — roughly
  // the memory latency before the data arrives.
  EXPECT_GE(completed - miss_detected, 240u);
}

TEST(Hierarchy, IFetchHitIsSynchronous) {
  MemoryHierarchy mem(cfg_with_cores(1));
  const auto first = mem.request_ifetch(0, 0, 0x7000, 0);
  ASSERT_TRUE(first.has_value());  // cold: miss
  // Complete the fill.
  for (Cycle t = 1; t <= 700; ++t) {
    mem.tick(t);
    mem.completions(0).clear();
  }
  const auto second = mem.request_ifetch(0, 0, 0x7004, 1000);
  EXPECT_FALSE(second.has_value());  // warm line: no stall
}

TEST(Hierarchy, StoreMissGeneratesTrafficAndDirtyFill) {
  MemoryHierarchy mem(cfg_with_cores(1));
  mem.request_store(0, 0, 0x8000, 0);
  for (Cycle t = 1; t <= 700; ++t) {
    mem.tick(t);
    mem.completions(0).clear();
  }
  EXPECT_EQ(mem.stats().stores, 1u);
  EXPECT_EQ(mem.l2().read_hits() + mem.l2().read_misses(), 1u);
  // The line was installed dirty in L1: storing again hits silently.
  mem.request_store(0, 0, 0x8000, 1000);
  for (Cycle t = 1001; t <= 1100; ++t) {
    mem.tick(t);
    mem.completions(0).clear();
  }
  EXPECT_EQ(mem.l2().read_hits() + mem.l2().read_misses(), 1u);
}

TEST(Hierarchy, MshrOverflowRetriesInsteadOfDropping) {
  SimConfig cfg = cfg_with_cores(1);
  cfg.mem.mshr_entries = 2;
  MemoryHierarchy mem(cfg);
  // Issue 6 loads to distinct cold lines in the same page region.
  std::vector<std::uint64_t> tokens;
  for (int i = 0; i < 6; ++i)
    tokens.push_back(mem.request_load(0, 0, 0xA000 + i * 64, 0));
  std::size_t completed = 0;
  for (Cycle t = 1; t <= 3000; ++t) {
    mem.tick(t);
    completed += mem.completions(0).size();
    mem.completions(0).clear();
    mem.l2_events(0).clear();
  }
  EXPECT_EQ(completed, 6u);  // all eventually served despite MSHR pressure
}

TEST(Hierarchy, Fig4StatsTrackL2LoadHits) {
  MemoryHierarchy mem(cfg_with_cores(1));
  mem.prewarm_l2_line(0xB000);
  const auto tok = mem.request_load(0, 0, 0xB000, 0);
  for (Cycle t = 1; t <= 700; ++t) {
    mem.tick(t);
    mem.completions(0).clear();
  }
  (void)tok;
  EXPECT_EQ(mem.stats().l2_load_hit_time.count(), 1u);
  EXPECT_EQ(mem.stats().l2_load_miss_time.count(), 0u);
}

TEST(Hierarchy, ResetStatsClearsEverything) {
  MemoryHierarchy mem(cfg_with_cores(1));
  (void)mem.request_load(0, 0, 0xC000, 0);
  for (Cycle t = 1; t <= 700; ++t) {
    mem.tick(t);
    mem.completions(0).clear();
    mem.l2_events(0).clear();
  }
  mem.reset_stats();
  EXPECT_EQ(mem.stats().loads, 0u);
  EXPECT_EQ(mem.stats().l2_load_hit_time.count(), 0u);
  EXPECT_EQ(mem.l2().read_hits() + mem.l2().read_misses(), 0u);
}

TEST(Hierarchy, PerCoreIsolationOfL1) {
  MemoryHierarchy mem(cfg_with_cores(2));
  // Core 0 warms a line; core 1 still misses its own L1 for the same line.
  const auto a = mem.request_load(0, 0, 0xD000, 0);
  (void)run_until_complete(mem, 0, a, 0, 700);
  const auto b = mem.request_load(1, 0, 0xD000, 1000);
  const auto c = run_until_complete(mem, 1, b, 1000, 700);
  EXPECT_TRUE(c.l2_accessed);  // core 1's L1 was cold
  EXPECT_TRUE(c.l2_hit);       // but the shared L2 has it
}

// ------------------------------------------------- per-core event horizons

TEST(Hierarchy, PerCoreHorizonIsNeverWhenIdle) {
  MemoryHierarchy mem(cfg_with_cores(2));
  EXPECT_EQ(mem.next_event_cycle_for(0, 100), kNeverCycle);
  EXPECT_EQ(mem.next_event_cycle_for(1, 100), kNeverCycle);
}

TEST(Hierarchy, PerCoreHorizonTracksOwnTransactionsOnly) {
  MemoryHierarchy mem(cfg_with_cores(2));
  // Warm core 0's TLB so the probed access has no page-walk component.
  const auto warm = mem.request_load(0, 0, 0x2000, 0);
  (void)run_until_complete(mem, 0, warm, 0, 700);
  mem.l2_events(0).clear();
  mem.l2_miss_events(0).clear();

  const Cycle now = 1000;
  (void)mem.request_load(0, 0, 0x2040, now);  // same page, different line
  // Core 0 has an L1-pipeline access in flight; core 1 has nothing.
  EXPECT_EQ(mem.next_event_cycle_for(0, now), now + 3);  // L1 latency
  EXPECT_EQ(mem.next_event_cycle_for(1, now), kNeverCycle);
}

TEST(Hierarchy, PerCoreHorizonIsASoundLowerBound) {
  // Drive a full L2-miss transaction (L1 pipe -> bus -> bank -> memory)
  // and record the horizon promised at every cycle before delivery: each
  // must be a lower bound on (at or before) the actual delivery cycle,
  // and none may claim the core is idle.
  MemoryHierarchy mem(cfg_with_cores(2));
  const Cycle start = 50;
  const auto token = mem.request_load(0, 0, 0x9000, start);
  std::vector<Cycle> promised;
  Cycle done = 0;
  for (Cycle t = start + 1; t <= start + 700 && done == 0; ++t) {
    promised.push_back(mem.next_event_cycle_for(0, t - 1));
    mem.tick(t);
    for (const MemCompletion& c : mem.completions(0))
      if (c.token == token) done = t;
    mem.completions(0).clear();
    mem.l2_events(0).clear();
    mem.l2_miss_events(0).clear();
  }
  ASSERT_NE(done, 0u);
  for (const Cycle h : promised) {
    EXPECT_NE(h, kNeverCycle) << "horizon lost the in-flight transaction";
    EXPECT_LE(h, done) << "horizon promised later than the delivery";
  }
  EXPECT_EQ(mem.next_event_cycle_for(0, done), kNeverCycle);
}

TEST(Hierarchy, HasEventsFlagsUndrainedBuffers) {
  MemoryHierarchy mem(cfg_with_cores(1));
  EXPECT_FALSE(mem.has_events(0));
  const auto token = mem.request_load(0, 0, 0x2000, 0);
  (void)token;
  for (Cycle t = 1; t <= 700 && !mem.has_events(0); ++t) mem.tick(t);
  EXPECT_TRUE(mem.has_events(0));  // completion waiting to be drained
  mem.completions(0).clear();
  mem.l2_events(0).clear();
  mem.l2_miss_events(0).clear();
  EXPECT_FALSE(mem.has_events(0));
}

}  // namespace
}  // namespace mflush
