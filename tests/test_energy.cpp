#include <gtest/gtest.h>

#include "energy/accounting.h"
#include "energy/factors.h"

namespace mflush {
namespace {

// Fig. 10 — the table, verbatim.
TEST(EnergyFactors, Fig10LocalValues) {
  using energy::local_factor;
  EXPECT_DOUBLE_EQ(local_factor(PipeStage::Fetch), 0.13);
  EXPECT_DOUBLE_EQ(local_factor(PipeStage::Decode), 0.03);
  EXPECT_DOUBLE_EQ(local_factor(PipeStage::Rename), 0.22);
  EXPECT_DOUBLE_EQ(local_factor(PipeStage::Queue), 0.26);
  EXPECT_DOUBLE_EQ(local_factor(PipeStage::RegRead), 0.05);
  EXPECT_DOUBLE_EQ(local_factor(PipeStage::Execute), 0.13);
  EXPECT_DOUBLE_EQ(local_factor(PipeStage::RegWrite), 0.05);
  EXPECT_DOUBLE_EQ(local_factor(PipeStage::Commit), 0.13);
}

TEST(EnergyFactors, Fig10AccumulatedValues) {
  using energy::accumulated_factor;
  EXPECT_DOUBLE_EQ(accumulated_factor(PipeStage::Fetch), 0.13);
  EXPECT_DOUBLE_EQ(accumulated_factor(PipeStage::Decode), 0.16);
  EXPECT_DOUBLE_EQ(accumulated_factor(PipeStage::Rename), 0.38);
  EXPECT_DOUBLE_EQ(accumulated_factor(PipeStage::Queue), 0.64);
  EXPECT_DOUBLE_EQ(accumulated_factor(PipeStage::RegRead), 0.69);
  EXPECT_DOUBLE_EQ(accumulated_factor(PipeStage::Execute), 0.82);
  EXPECT_DOUBLE_EQ(accumulated_factor(PipeStage::RegWrite), 0.87);
  EXPECT_DOUBLE_EQ(accumulated_factor(PipeStage::Commit), 1.0);
}

TEST(EnergyFactors, AccumulatedIsRunningSumOfLocal) {
  double acc = 0.0;
  for (const auto& f : energy::kFactors) {
    acc += f.local;
    EXPECT_NEAR(f.accumulated, acc, 1e-9)
        << to_string(f.stage);
  }
  EXPECT_NEAR(acc, 1.0, 1e-9);  // one unit to commit one instruction
}

TEST(EnergyFactors, AccumulatedIsMonotonic) {
  double prev = 0.0;
  for (const auto& f : energy::kFactors) {
    EXPECT_GT(f.accumulated, prev);
    prev = f.accumulated;
  }
}

TEST(EnergyFactors, ResourceSharesSumToOne) {
  double total = 0.0;
  for (const auto& r : energy::kResourceShares) total += r.fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EnergyAccounting, WastedUnitsWeighsByStage) {
  std::array<std::uint64_t, kNumPipeStages> squashed{};
  squashed[static_cast<std::size_t>(PipeStage::Fetch)] = 100;
  squashed[static_cast<std::size_t>(PipeStage::Queue)] = 10;
  // 100 * 0.13 + 10 * 0.64 = 19.4
  EXPECT_NEAR(energy::wasted_units(squashed), 19.4, 1e-9);
}

TEST(EnergyAccounting, EmptyLedgerIsZero) {
  std::array<std::uint64_t, kNumPipeStages> squashed{};
  EXPECT_DOUBLE_EQ(energy::wasted_units(squashed), 0.0);
}

TEST(EnergyAccounting, DeeperStagesWasteMore) {
  std::array<std::uint64_t, kNumPipeStages> early{}, late{};
  early[static_cast<std::size_t>(PipeStage::Fetch)] = 100;
  late[static_cast<std::size_t>(PipeStage::RegWrite)] = 100;
  EXPECT_LT(energy::wasted_units(early), energy::wasted_units(late));
}

TEST(EnergyAccounting, ReportForCoreStats) {
  CoreStats s;
  s.committed[0] = 1000;
  s.committed[1] = 500;
  s.policy_flushed_by_stage[static_cast<std::size_t>(PipeStage::Queue)] = 50;
  s.branch_squashed_by_stage[static_cast<std::size_t>(PipeStage::Fetch)] = 10;
  const auto r = energy::report_for(s);
  EXPECT_DOUBLE_EQ(r.committed_units, 1500.0);
  EXPECT_NEAR(r.flush_wasted_units, 32.0, 1e-9);   // 50 * 0.64
  EXPECT_NEAR(r.branch_wasted_units, 1.3, 1e-9);   // 10 * 0.13
  EXPECT_NEAR(r.flush_wasted_per_kilo_commit(), 32.0 / 1.5, 1e-6);
}

TEST(EnergyAccounting, MergeSums) {
  energy::EnergyReport a, b;
  a.committed_units = 10;
  a.flush_wasted_units = 1;
  b.committed_units = 20;
  b.flush_wasted_units = 2;
  b.branch_wasted_units = 3;
  const auto m = energy::merge(a, b);
  EXPECT_DOUBLE_EQ(m.committed_units, 30.0);
  EXPECT_DOUBLE_EQ(m.flush_wasted_units, 3.0);
  EXPECT_DOUBLE_EQ(m.branch_wasted_units, 3.0);
}

TEST(EnergyAccounting, ZeroCommitGuards) {
  energy::EnergyReport r;
  r.flush_wasted_units = 10.0;
  EXPECT_DOUBLE_EQ(r.flush_wasted_per_kilo_commit(), 0.0);
}

}  // namespace
}  // namespace mflush
