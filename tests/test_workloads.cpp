#include <gtest/gtest.h>

#include "sim/workloads.h"

namespace mflush {
namespace {

TEST(Workloads, TwentyWorkloadsInCatalog) {
  EXPECT_EQ(workloads::all().size(), 20u);
}

TEST(Workloads, FiveWorkloadsPerSize) {
  for (std::uint32_t n : {2u, 4u, 6u, 8u}) {
    const auto v = workloads::of_size(n);
    EXPECT_EQ(v.size(), 5u) << n;
    for (const auto& w : v) {
      EXPECT_EQ(w.num_threads(), n);
      EXPECT_EQ(w.num_cores(), n / 2);
    }
  }
}

// Fig. 1 bottom table, exact rows.
TEST(Workloads, Fig1Table) {
  EXPECT_EQ(workloads::by_name("2W1")->codes, (std::vector<char>{'b', 'j'}));
  EXPECT_EQ(workloads::by_name("2W3")->codes, (std::vector<char>{'d', 'a'}));
  EXPECT_EQ(workloads::by_name("4W4")->codes,
            (std::vector<char>{'g', 'b', 'm', 'f'}));
  EXPECT_EQ(workloads::by_name("6W3")->codes,
            (std::vector<char>{'d', 'l', 's', 'w', 'r', 'a'}));
  EXPECT_EQ(workloads::by_name("8W1")->codes,
            (std::vector<char>{'d', 'l', 'b', 'g', 'i', 'j', 'c', 'f'}));
  EXPECT_EQ(workloads::by_name("8W5")->codes,
            (std::vector<char>{'q', 'b', 'c', 'k', 'e', 'a', 'o', 't'}));
}

TEST(Workloads, NamesFollowXwyScheme) {
  for (const auto& w : workloads::all()) {
    ASSERT_EQ(w.name.size(), 3u);
    EXPECT_EQ(w.name[1], 'W');
    EXPECT_EQ(static_cast<std::uint32_t>(w.name[0] - '0'), w.num_threads());
  }
}

TEST(Workloads, UnknownNameFails) {
  EXPECT_FALSE(workloads::by_name("9W9").has_value());
  EXPECT_FALSE(workloads::by_name("").has_value());
}

TEST(Workloads, DescribeResolvesNames) {
  EXPECT_EQ(workloads::by_name("2W3")->describe(), "mcf+gzip");
}

// Fig. 5(b): bzip2/twolf instances never share a core.
TEST(Workloads, Bzip2TwolfSpecialLayout) {
  const auto w = workloads::bzip2_twolf_special();
  EXPECT_EQ(w.num_threads(), 8u);
  for (std::uint32_t core = 0; core < 4; ++core) {
    EXPECT_EQ(w.codes[2 * core], w.codes[2 * core + 1])
        << "core " << core << " mixes applications";
  }
  const auto k = static_cast<std::size_t>(
      std::count(w.codes.begin(), w.codes.end(), 'k'));
  const auto l = static_cast<std::size_t>(
      std::count(w.codes.begin(), w.codes.end(), 'l'));
  EXPECT_EQ(k, 4u);
  EXPECT_EQ(l, 4u);
}

TEST(Workloads, SpecialAccessibleByName) {
  EXPECT_TRUE(workloads::by_name("bzip2-twolf").has_value());
}

TEST(Workloads, AllCodesAreValidBenchmarks) {
  for (const auto& w : workloads::all())
    for (const char c : w.codes) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
}

}  // namespace
}  // namespace mflush
