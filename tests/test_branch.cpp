#include <gtest/gtest.h>

#include "branch/btb.h"
#include "branch/perceptron.h"
#include "branch/ras.h"
#include "branch/unit.h"
#include "common/config.h"

namespace mflush {
namespace {

// ---------------------------------------------------------------- perceptron

TEST(Perceptron, LearnsAlwaysTaken) {
  PerceptronPredictor p(64, 1024, 16);
  const Addr pc = 0x1000;
  for (int i = 0; i < 200; ++i) {
    const bool pred = p.predict(0, pc);
    p.update(0, pc, true, pred, p.history_checkpoint(0));
    p.push_history(0, true);
  }
  EXPECT_TRUE(p.predict(0, pc));
}

TEST(Perceptron, LearnsAlwaysNotTaken) {
  PerceptronPredictor p(64, 1024, 16);
  const Addr pc = 0x2000;
  for (int i = 0; i < 200; ++i) {
    const bool pred = p.predict(0, pc);
    p.update(0, pc, false, pred, p.history_checkpoint(0));
    p.push_history(0, false);
  }
  EXPECT_FALSE(p.predict(0, pc));
}

TEST(Perceptron, LearnsAlternatingPattern) {
  PerceptronPredictor p(64, 1024, 16);
  const Addr pc = 0x3000;
  bool outcome = false;
  // Train on strict alternation; history correlation makes it learnable.
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t hist = p.history_checkpoint(0);
    const bool pred = p.predict(0, pc);
    p.update(0, pc, outcome, pred, hist);
    p.push_history(0, outcome);
    outcome = !outcome;
  }
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t hist = p.history_checkpoint(0);
    const bool pred = p.predict(0, pc);
    if (pred == outcome) ++correct;
    p.update(0, pc, outcome, pred, hist);
    p.push_history(0, outcome);
    outcome = !outcome;
  }
  EXPECT_GT(correct, 90);
}

TEST(Perceptron, HistoryCheckpointRestore) {
  PerceptronPredictor p(64, 1024, 16);
  p.push_history(0, true);
  p.push_history(0, false);
  const auto cp = p.history_checkpoint(0);
  p.push_history(0, true);
  p.push_history(0, true);
  p.restore_history(0, cp);
  EXPECT_EQ(p.history_checkpoint(0), cp);
}

TEST(Perceptron, PerContextHistories) {
  PerceptronPredictor p(64, 1024, 16);
  p.push_history(0, true);
  EXPECT_NE(p.history_checkpoint(0), p.history_checkpoint(1));
}

TEST(Perceptron, CountsMispredictions) {
  PerceptronPredictor p(16, 256, 8);
  const Addr pc = 0x4000;
  const bool pred = p.predict(0, pc);
  p.update(0, pc, !pred, pred, p.history_checkpoint(0));
  EXPECT_EQ(p.mispredictions(), 1u);
  EXPECT_GE(p.predictions(), 1u);
}

// ----------------------------------------------------------------------- BTB

TEST(Btb, MissThenHitAfterUpdate) {
  Btb btb(256, 4);
  EXPECT_FALSE(btb.lookup(0x100).has_value());
  btb.update(0x100, 0x500);
  const auto t = btb.lookup(0x100);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 0x500u);
}

TEST(Btb, UpdateOverwritesTarget) {
  Btb btb(256, 4);
  btb.update(0x100, 0x500);
  btb.update(0x100, 0x900);
  EXPECT_EQ(*btb.lookup(0x100), 0x900u);
}

TEST(Btb, LruEvictionWithinSet) {
  Btb btb(16, 2);  // 8 sets, 2 ways
  // Three pcs mapping to the same set (set index = (pc>>2) & 7).
  const Addr a = 0x000, b = 0x080, c = 0x100;  // all set 0
  btb.update(a, 1);
  btb.update(b, 2);
  (void)btb.lookup(a);  // make a MRU
  btb.update(c, 3);     // evicts b (LRU)
  EXPECT_TRUE(btb.lookup(a).has_value());
  EXPECT_FALSE(btb.lookup(b).has_value());
  EXPECT_TRUE(btb.lookup(c).has_value());
}

TEST(Btb, CountsHitsAndMisses) {
  Btb btb(64, 4);
  (void)btb.lookup(0x40);
  btb.update(0x40, 0x80);
  (void)btb.lookup(0x40);
  EXPECT_EQ(btb.misses(), 1u);
  EXPECT_EQ(btb.hits(), 1u);
}

// ----------------------------------------------------------------------- RAS

TEST(Ras, PushPopLifo) {
  Ras ras(8);
  ras.push(0x10);
  ras.push(0x20);
  EXPECT_EQ(ras.pop(), 0x20u);
  EXPECT_EQ(ras.pop(), 0x10u);
}

TEST(Ras, EmptyPopReturnsZero) {
  Ras ras(4);
  EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowWrapsOldestEntries) {
  Ras ras(4);
  for (Addr a = 1; a <= 6; ++a) ras.push(a * 0x10);
  // Capacity 4: entries 3,4,5,6 survive.
  EXPECT_EQ(ras.pop(), 0x60u);
  EXPECT_EQ(ras.pop(), 0x50u);
  EXPECT_EQ(ras.pop(), 0x40u);
  EXPECT_EQ(ras.pop(), 0x30u);
  EXPECT_EQ(ras.depth(), 0u);
}

TEST(Ras, CheckpointRestore) {
  Ras ras(8);
  ras.push(0x10);
  const auto cp = ras.checkpoint();
  ras.push(0x20);
  ras.push(0x30);
  ras.restore(cp);
  EXPECT_EQ(ras.pop(), 0x10u);
}

TEST(Ras, PaperCapacity) {
  Ras ras(100);
  EXPECT_EQ(ras.capacity(), 100u);
}

// --------------------------------------------------------------- BranchUnit

BranchUnit make_unit() { return BranchUnit(CoreConfig{}); }

TraceInstr branch_at(Addr pc, bool taken, Addr target) {
  TraceInstr i;
  i.pc = pc;
  i.cls = InstrClass::Branch;
  i.taken = taken;
  i.target = taken ? target : pc + 4;
  return i;
}

TEST(BranchUnit, ColdTakenBranchIsEffectivelyNotTaken) {
  auto bu = make_unit();
  const auto ins = branch_at(0x1000, true, 0x2000);
  const auto pred = bu.predict(0, ins);
  // Even if direction says taken, the BTB has no target: fall-through.
  EXPECT_FALSE(pred.taken);
}

TEST(BranchUnit, LearnsLoopBranch) {
  auto bu = make_unit();
  const auto ins = branch_at(0x1000, true, 0x0800);
  for (int i = 0; i < 100; ++i) {
    const auto cp = bu.checkpoint(0);
    (void)bu.predict(0, ins);
    bu.resolve(0, ins, /*predicted_taken=*/false, cp.history);
  }
  const auto pred = bu.predict(0, ins);
  EXPECT_TRUE(pred.taken);
  EXPECT_EQ(pred.target, 0x0800u);
}

TEST(BranchUnit, CallPushesReturnPops) {
  auto bu = make_unit();
  TraceInstr call;
  call.pc = 0x100;
  call.cls = InstrClass::Call;
  call.taken = true;
  call.target = 0x4000;
  // Warm the BTB so the call target predicts.
  const auto cp = bu.checkpoint(0);
  (void)bu.predict(0, call);
  bu.resolve(0, call, true, cp.history);
  const auto pred_call = bu.predict(0, call);
  EXPECT_TRUE(pred_call.taken);
  EXPECT_EQ(pred_call.target, 0x4000u);

  TraceInstr ret;
  ret.pc = 0x4100;
  ret.cls = InstrClass::Return;
  ret.taken = true;
  ret.target = 0x104;  // call pc + 4
  const auto pred_ret = bu.predict(0, ret);
  EXPECT_TRUE(pred_ret.taken);
  EXPECT_EQ(pred_ret.target, 0x104u);
}

TEST(BranchUnit, CheckpointRestoreUndoesSpeculation) {
  auto bu = make_unit();
  const auto cp = bu.checkpoint(0);
  TraceInstr call;
  call.pc = 0x100;
  call.cls = InstrClass::Call;
  call.target = 0x4000;
  call.taken = true;
  (void)bu.predict(0, call);  // pushes RAS speculatively
  bu.restore(0, cp);
  TraceInstr ret;
  ret.pc = 0x200;
  ret.cls = InstrClass::Return;
  const auto pred = bu.predict(0, ret);
  // RAS is empty again: the return cannot predict.
  EXPECT_FALSE(pred.taken);
}

TEST(BranchUnit, ApplyResolvedRepairsRas) {
  auto bu = make_unit();
  TraceInstr call;
  call.pc = 0x100;
  call.cls = InstrClass::Call;
  call.target = 0x4000;
  call.taken = true;
  const auto cp = bu.checkpoint(0);
  (void)bu.predict(0, call);
  bu.restore(0, cp);
  bu.apply_resolved(0, call);  // architectural effect re-applied
  TraceInstr ret;
  ret.pc = 0x4100;
  ret.cls = InstrClass::Return;
  const auto pred = bu.predict(0, ret);
  EXPECT_TRUE(pred.taken);
  EXPECT_EQ(pred.target, 0x104u);
}

TEST(BranchUnit, NonControlPredictsFallThrough) {
  auto bu = make_unit();
  TraceInstr alu;
  alu.pc = 0x500;
  alu.cls = InstrClass::IntAlu;
  const auto pred = bu.predict(0, alu);
  EXPECT_FALSE(pred.taken);
  EXPECT_EQ(pred.target, 0x504u);
}

}  // namespace
}  // namespace mflush
