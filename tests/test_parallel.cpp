#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/factory.h"
#include "sim/backend.h"
#include "sim/parallel.h"
#include "sim/workloads.h"

namespace mflush {
namespace {

// ------------------------------------------------------------- pool basics

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  ParallelRunner runner(4);
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> counts(kN);
  runner.for_each_index(kN, [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ParallelRunner, SingleJobIsPlainSerialLoop) {
  ParallelRunner runner(1);
  EXPECT_EQ(runner.jobs(), 1u);
  std::vector<std::size_t> order;
  runner.for_each_index(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelRunner, ZeroTasksIsNoOp) {
  ParallelRunner runner(4);
  runner.for_each_index(0, [&](std::size_t) { FAIL(); });
}

TEST(ParallelRunner, PoolIsReusableAcrossBatches) {
  ParallelRunner runner(3);
  for (int batch = 0; batch < 5; ++batch) {
    std::atomic<int> sum{0};
    runner.for_each_index(10, [&](std::size_t i) {
      sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ParallelRunner, PropagatesTaskException) {
  ParallelRunner runner(4);
  EXPECT_THROW(runner.for_each_index(8,
                                     [&](std::size_t i) {
                                       if (i == 3)
                                         throw std::runtime_error("boom");
                                     }),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> ran{0};
  runner.for_each_index(4, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ParallelRunner, DefaultJobsHonoursEnv) {
  setenv("MFLUSH_JOBS", "3", 1);
  EXPECT_EQ(ParallelRunner::default_jobs(), 3u);
  // Malformed values are a hard error (common/env.h), not a silent
  // fallback: a typo must never quietly change the sweep width.
  setenv("MFLUSH_JOBS", "garbage", 1);
  EXPECT_THROW((void)ParallelRunner::default_jobs(), std::runtime_error);
  setenv("MFLUSH_JOBS", "0", 1);
  EXPECT_THROW((void)ParallelRunner::default_jobs(), std::runtime_error);
  setenv("MFLUSH_JOBS", "4x", 1);
  EXPECT_THROW((void)ParallelRunner::default_jobs(), std::runtime_error);
  // A value the unsigned cast would truncate is an error, not 0 threads.
  setenv("MFLUSH_JOBS", "4294967296", 1);
  EXPECT_THROW((void)ParallelRunner::default_jobs(), std::runtime_error);
  unsetenv("MFLUSH_JOBS");
  EXPECT_GE(ParallelRunner::default_jobs(), 1u);
}

// ------------------------------------------------- serial/parallel identity

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.policy, b.policy);
  const SimMetrics& ma = a.metrics;
  const SimMetrics& mb = b.metrics;
  EXPECT_EQ(ma.cycles, mb.cycles);
  EXPECT_EQ(ma.committed, mb.committed);
  EXPECT_EQ(ma.ipc, mb.ipc);  // exact: same integer inputs, same arithmetic
  EXPECT_EQ(ma.per_thread_ipc, mb.per_thread_ipc);
  EXPECT_EQ(ma.flush_events, mb.flush_events);
  EXPECT_EQ(ma.flushed_instructions, mb.flushed_instructions);
  EXPECT_EQ(ma.branches_resolved, mb.branches_resolved);
  EXPECT_EQ(ma.mispredicts, mb.mispredicts);
  EXPECT_EQ(ma.l2_hit_time_mean, mb.l2_hit_time_mean);
  EXPECT_EQ(ma.l2_hit_time_p50, mb.l2_hit_time_p50);
  EXPECT_EQ(ma.l2_hit_time_p90, mb.l2_hit_time_p90);
  EXPECT_EQ(ma.l2_hits_observed, mb.l2_hits_observed);
  EXPECT_EQ(ma.l2_misses_observed, mb.l2_misses_observed);
  EXPECT_EQ(ma.energy.committed_units, mb.energy.committed_units);
  EXPECT_EQ(ma.energy.flush_wasted_units, mb.energy.flush_wasted_units);
  EXPECT_EQ(ma.energy.branch_wasted_units, mb.energy.branch_wasted_units);
}

TEST(ParallelRunner, MatchesSerialSweep) {
  // 2-core workload x 3 policies x 2 seeds: the in-process backend on a
  // real pool must be bit-identical to the serial reference, job for job.
  ExperimentSpec spec;
  spec.workloads = {*workloads::by_name("4W1")};  // 2 cores, 4 contexts
  spec.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                   PolicySpec::mflush()};
  spec.seeds = {1, 42};
  spec.warmup = 1'000;
  spec.measure = 3'000;
  const std::vector<JobSpec> jobs = spec.expand();

  std::vector<RunResult> serial;
  for (const JobSpec& j : jobs)
    serial.push_back(run_point(j.workload, j.policy, j.seed, j.warmup,
                               j.measure));

  ParallelRunner runner(4);  // force real pool execution even on small hosts
  InProcessBackend backend(runner);
  const std::vector<RunResult> parallel = backend.run_collect(jobs);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    expect_bit_identical(serial[i], parallel[i]);
  }
}

TEST(ParallelRunner, RunSweepGoesThroughSharedPool) {
  // run_sweep is routed through the engine; its output layout (policy
  // order) must be unchanged from the serial days.
  const Workload w = *workloads::by_name("2W1");
  const auto rs = run_sweep(
      w, {PolicySpec::icount(), PolicySpec::mflush()}, 1, 500, 1'500);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].policy, "ICOUNT");
  EXPECT_EQ(rs[1].policy, "MFLUSH");
  expect_bit_identical(rs[0],
                       run_point(w, PolicySpec::icount(), 1, 500, 1'500));
}

TEST(RunGrid, LayoutMatchesWorkloadRowsPolicyColumns) {
  const std::vector<Workload> ws = {*workloads::by_name("2W1"),
                                    *workloads::by_name("2W2")};
  const std::vector<PolicySpec> ps = {PolicySpec::icount(),
                                      PolicySpec::flush_spec(30)};
  const auto rows = run_grid(ws, ps, 1, 500, 1'000);
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][0].workload, "2W1");
  EXPECT_EQ(rows[0][1].policy, "FLUSH-S30");
  EXPECT_EQ(rows[1][0].workload, "2W2");
}

TEST(RunPoint, SelfReportsThroughput) {
  const RunResult r =
      run_point(*workloads::by_name("2W1"), PolicySpec::icount(), 1, 500,
                1'000);
  EXPECT_EQ(r.simulated_cycles, 1'500u);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.sim_cycles_per_sec(), 0.0);
}

}  // namespace
}  // namespace mflush
