#include <gtest/gtest.h>

#include "core/counts.h"
#include "core/factory.h"
#include "core/mflush.h"
#include "sim/cmp.h"
#include "sim/workloads.h"

/// Tests for the §4.1 MCReg-history extension, the preventive-state
/// ablation knob, and the BRCOUNT / L1DMISSCOUNT baselines.
namespace mflush {
namespace {

// ------------------------------------------------ counting fetch policies

CoreView view_with(std::uint32_t br0, std::uint32_t br1, std::uint32_t ms0,
                   std::uint32_t ms1) {
  CoreView v;
  v.num_threads = 2;
  v.brcount[0] = br0;
  v.brcount[1] = br1;
  v.misscount[0] = ms0;
  v.misscount[1] = ms1;
  v.icount[0] = 10;
  v.icount[1] = 10;
  return v;
}

TEST(Brcount, FewestUnresolvedBranchesFirst) {
  BrcountPolicy p;
  std::array<ThreadId, kMaxContexts> order{};
  p.fetch_order(view_with(5, 2, 0, 0), order);
  EXPECT_EQ(order[0], 1u);
}

TEST(Brcount, TieFallsBackToIcount) {
  BrcountPolicy p;
  auto v = view_with(3, 3, 0, 0);
  v.icount[0] = 20;
  v.icount[1] = 5;
  std::array<ThreadId, kMaxContexts> order{};
  p.fetch_order(v, order);
  EXPECT_EQ(order[0], 1u);
}

TEST(MissCount, FewestOutstandingMissesFirst) {
  L1DMissCountPolicy p;
  std::array<ThreadId, kMaxContexts> order{};
  p.fetch_order(view_with(0, 0, 4, 1), order);
  EXPECT_EQ(order[0], 1u);
}

TEST(CountPolicies, RunEndToEnd) {
  for (const auto& spec : {PolicySpec::brcount(), PolicySpec::misscount()}) {
    CmpSimulator sim(*workloads::by_name("2W2"), spec, 3);
    sim.run(8'000);
    EXPECT_GT(sim.metrics().committed, 0u) << spec.label();
    EXPECT_EQ(sim.metrics().flush_events, 0u) << spec.label();
  }
}

// -------------------------------------------------- MCReg history queues

MflushConfig hist_cfg(std::uint32_t len, MflushConfig::Aggregate agg) {
  MflushConfig c;
  c.min_latency = 22;
  c.max_latency = 272;
  c.mt = 57;
  c.num_banks = 4;
  c.history_len = len;
  c.aggregate = agg;
  return c;
}

void observe_hit(MflushPolicy& p, std::uint64_t token, std::uint32_t bank,
                 Cycle issue, Cycle latency) {
  p.on_load_issued(0, token, bank, issue);
  p.on_load_l2_path(0, token, bank, issue + 3);
  p.on_load_resolved(0, token, issue, issue + latency, true, true, bank);
}

TEST(McRegHistory, LastReproducesPaperRegister) {
  MflushPolicy p(hist_cfg(1, MflushConfig::Aggregate::Last));
  observe_hit(p, 1, 0, 0, 40);
  observe_hit(p, 2, 0, 100, 70);
  EXPECT_EQ(p.mcreg(0), 70);
}

TEST(McRegHistory, AvgSmoothsOutliers) {
  MflushPolicy p(hist_cfg(4, MflushConfig::Aggregate::Avg));
  observe_hit(p, 1, 0, 0, 40);
  observe_hit(p, 2, 0, 100, 40);
  observe_hit(p, 3, 0, 200, 200);  // one outlier
  // History: {22 seed, 40, 40, 200} -> avg 75 (vs Last = 200).
  EXPECT_LT(p.mcreg(0), 100);
  EXPECT_GT(p.mcreg(0), 40);
}

TEST(McRegHistory, MaxIsConservative) {
  MflushPolicy p(hist_cfg(4, MflushConfig::Aggregate::Max));
  observe_hit(p, 1, 0, 0, 90);
  observe_hit(p, 2, 0, 100, 30);
  EXPECT_EQ(p.mcreg(0), 90);  // remembers the slowest recent hit
}

TEST(McRegHistory, RingEvictsOldSamples) {
  MflushPolicy p(hist_cfg(2, MflushConfig::Aggregate::Max));
  observe_hit(p, 1, 0, 0, 200);
  observe_hit(p, 2, 0, 100, 30);
  observe_hit(p, 3, 0, 200, 35);
  // The 200 sample fell out of the 2-deep ring.
  EXPECT_EQ(p.mcreg(0), 35);
}

TEST(McRegHistory, BarrierFollowsAggregate) {
  MflushPolicy p(hist_cfg(4, MflushConfig::Aggregate::Max));
  observe_hit(p, 1, 2, 0, 120);
  EXPECT_EQ(p.barrier_for_bank(2), 120u + 11 + 57);
}

// ----------------------------------------------- preventive-state ablation

class GateRecorder final : public CoreControl {
 public:
  bool flush_after_load(std::uint64_t) override { return true; }
  bool stall_until_load(std::uint64_t) override { return true; }
  void set_fetch_gate(ThreadId, bool gated) override {
    if (gated) ++gate_on;
  }
  int gate_on = 0;
};

TEST(MflushAblation, NoPreventiveNeverGates) {
  MflushConfig c = hist_cfg(1, MflushConfig::Aggregate::Last);
  c.enable_preventive = false;
  MflushPolicy p(c);
  GateRecorder ctrl;
  p.on_load_issued(0, 1, 0, 100);
  p.on_load_l2_path(0, 1, 0, 103);
  for (Cycle t = 104; t < 185; ++t) p.on_cycle(t, ctrl);
  EXPECT_EQ(ctrl.gate_on, 0);
  EXPECT_EQ(p.counters().gate_cycles, 0u);
}

TEST(MflushAblation, NoPreventiveStillFlushesAtBarrier) {
  MflushConfig c = hist_cfg(1, MflushConfig::Aggregate::Last);
  c.enable_preventive = false;
  MflushPolicy p(c);
  GateRecorder ctrl;
  p.on_load_issued(0, 1, 0, 100);
  p.on_load_l2_path(0, 1, 0, 103);  // barrier deadline = 100 + 90
  bool flushed = false;
  for (Cycle t = 104; t <= 195 && !flushed; ++t) {
    p.on_cycle(t, ctrl);
    flushed = p.counters().flushes_on_hit + p.counters().flushes_on_miss +
                  p.counters().flushes_on_l1 >
              0;
    // counters only fill at resolution; check via the recorder instead:
    flushed = false;
  }
  // Verified indirectly: run again with a flush-counting recorder.
  class FlushRecorder final : public CoreControl {
   public:
    bool flush_after_load(std::uint64_t) override {
      ++flushes;
      return true;
    }
    bool stall_until_load(std::uint64_t) override { return true; }
    void set_fetch_gate(ThreadId, bool) override {}
    int flushes = 0;
  };
  MflushPolicy p2(c);
  FlushRecorder rec;
  p2.on_load_issued(0, 1, 0, 100);
  p2.on_load_l2_path(0, 1, 0, 103);
  for (Cycle t = 104; t <= 195; ++t) p2.on_cycle(t, rec);
  EXPECT_EQ(rec.flushes, 1);
}

// --------------------------------------------------- PolicySpec round trip

TEST(PolicySpecExtensions, LabelsAndParse) {
  EXPECT_EQ(PolicySpec::brcount().label(), "BRCOUNT");
  EXPECT_EQ(PolicySpec::misscount().label(), "L1DMISSCOUNT");
  EXPECT_EQ(PolicySpec::mflush_no_preventive().label(), "MFLUSH-NP");
  EXPECT_EQ(
      PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Avg).label(),
      "MFLUSH-H4AVG");
  EXPECT_EQ(
      PolicySpec::mflush_history(8, PolicySpec::McRegAgg::Max).label(),
      "MFLUSH-H8MAX");

  for (const char* s :
       {"brcount", "l1dmisscount", "mflush-np", "mflush-h4", "mflush-h4max",
        "mflush-h8avg"}) {
    EXPECT_TRUE(PolicySpec::parse(s).has_value()) << s;
  }
  EXPECT_EQ(*PolicySpec::parse("mflush-h4max"),
            PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Max));
  EXPECT_FALSE(PolicySpec::parse("mflush-h").has_value());
  EXPECT_FALSE(PolicySpec::parse("mflush-h0").has_value());
}

TEST(PolicySpecExtensions, FactoryBuildsVariants) {
  const SimConfig cfg = SimConfig::paper_default(4);
  EXPECT_STREQ(make_policy(PolicySpec::brcount(), cfg)->name(), "BRCOUNT");
  EXPECT_STREQ(make_policy(PolicySpec::misscount(), cfg)->name(),
               "L1DMISSCOUNT");
  auto p = make_policy(
      PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Max), cfg);
  const auto* mf = dynamic_cast<const MflushPolicy*>(p.get());
  ASSERT_NE(mf, nullptr);
  EXPECT_EQ(mf->config().history_len, 4u);
  EXPECT_EQ(mf->config().aggregate, MflushConfig::Aggregate::Max);
}

TEST(PolicySpecExtensions, VariantsRunEndToEnd) {
  for (const auto& spec :
       {PolicySpec::mflush_no_preventive(),
        PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Avg),
        PolicySpec::mflush_history(4, PolicySpec::McRegAgg::Max)}) {
    CmpSimulator sim(*workloads::by_name("4W3"), spec, 5);
    sim.run(10'000);
    EXPECT_GT(sim.metrics().committed, 0u) << spec.label();
  }
}

}  // namespace
}  // namespace mflush
