"""Lightweight structural C++ parser for mflush-lint.

This is NOT a general C++ front-end. It is a deliberately small structural
parser that understands exactly as much C++ as the mflush codebase uses:
namespaces, class/struct definitions, data-member declarations, and the
bodies of serialization functions (`save_state`/`load_state`, `save`/`load`,
`save_content`, and free `save_xxx`/`load_xxx` helper pairs taking an
ArchiveWriter/ArchiveReader). The preferred engines named in the lint design
(libclang Python bindings, `clang -Xclang -ast-dump=json`) are not available
in the build image (no clang front-end is installed and dependencies must
not be added), so this module is the production engine; layout questions
that genuinely need a compiler (padding holes) are answered by compiling a
generated probe TU with the project's own C++ compiler (layout_probe.py)
rather than by guessing at ABI rules here.

The parser is intentionally conservative: clang-format keeps the tree in a
narrow stylistic corridor, and the lint self-tests (selftest.py) pin the
behaviours the checks rely on. Anything the parser cannot classify is
skipped, never guessed.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional

# ---------------------------------------------------------------------------
# comment / string stripping
# ---------------------------------------------------------------------------


def strip_comments(text: str) -> str:
    """Blank out comments and string/char literals, preserving offsets.

    Every replaced character becomes a space (newlines are kept) so that
    byte offsets and line numbers in the result match the original file.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = i
            while j < n - 1 and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j < n - 1:
                out[j] = out[j + 1] = " "
                j += 2
            i = j
        elif c == '"' or c == "'":
            quote = c
            out[i] = " "
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    out[j] = " "
                    j += 1
                    if j < n and text[j] != "\n":
                        out[j] = " "
                    j += 1
                    continue
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j < n:
                out[j] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# block tree
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Block:
    header: str  # text between the previous ';'/'{'/'}' and this '{'
    header_start: int  # offset of the header in the file
    open_off: int  # offset of '{'
    close_off: int  # offset of matching '}'
    children: list["Block"]

    def body(self, clean: str) -> str:
        return clean[self.open_off + 1 : self.close_off]


def parse_blocks(clean: str) -> list[Block]:
    """Build the brace-block tree of a comment-stripped file."""
    roots: list[Block] = []
    stack: list[Block] = []
    last_boundary = 0
    i, n = 0, len(clean)
    while i < n:
        c = clean[i]
        if c == "{":
            header = clean[last_boundary:i]
            blk = Block(header, last_boundary, i, -1, [])
            (stack[-1].children if stack else roots).append(blk)
            stack.append(blk)
            last_boundary = i + 1
        elif c == "}":
            if stack:
                stack.pop().close_off = i
            last_boundary = i + 1
        elif c == ";":
            last_boundary = i + 1
        i += 1
    return roots


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Member:
    name: str
    type: str
    line: int
    is_static: bool = False
    is_reference: bool = False
    is_const: bool = False
    annotations: str = ""  # raw comment text attached to the declaration


@dataclasses.dataclass
class Method:
    name: str
    params: str  # raw parameter list text
    body: str  # comment-stripped body text
    line: int


@dataclasses.dataclass
class ClassInfo:
    name: str
    kind: str  # "class" | "struct"
    file: str
    line: int
    members: list[Member]
    methods: dict[str, Method]
    is_template: bool
    access_of: dict[str, str]  # member name -> "public" | "private" | ...
    annotations: str = ""  # comment text attached to the class head
    qualified: str = ""  # enclosing-class-qualified name, e.g. "L2Cache::Bank"
    access: str = "public"  # access level of the type itself when nested
    namespace: str = ""  # enclosing namespace, e.g. "mflush" (may be nested)


@dataclasses.dataclass
class FreePair:
    suffix: str  # the xxx of save_xxx/load_xxx
    target_type: str
    save: Optional[Method] = None
    load: Optional[Method] = None


@dataclasses.dataclass
class FileModel:
    path: str
    text: str
    clean: str
    classes: list[ClassInfo]
    # out-of-class method bodies: (class name, method name) -> Method
    external_methods: dict[tuple[str, str], Method]
    free_pairs: dict[str, FreePair]
    enums: set[str]
    # other free functions taking an ArchiveWriter/Reader, by name —
    # serialization helpers a save/load body may delegate to
    # (`put_job_fields(ar, *this)`)
    helpers: dict[str, Method] = dataclasses.field(default_factory=dict)


_CLASS_RE = re.compile(
    r"\b(class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?(?:\[\[[^\]]*\]\]\s*)?"
    r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^;{]*)?$"
)
_METHOD_RE = re.compile(r"\b(save_state|load_state|save_content|save|load)\s*\($")
_EXTERNAL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*::\s*(save_state|load_state|save_content|save|load)"
    r"\s*\("
)
_FREE_RE = re.compile(r"\b(save|load)_([A-Za-z_]\w*)\s*\(")
_ENUM_RE = re.compile(r"\benum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)")

_SKIP_KEYWORDS = (
    "using", "typedef", "friend", "static_assert", "template", "return",
    "if", "for", "while", "switch", "case", "else", "do", "goto", "public",
    "private", "protected", "enum", "class", "struct", "namespace",
    "explicit", "virtual", "operator", "concept", "requires",
)


def _mask_children(block: Block, clean: str) -> str:
    """Body text of `block` with the contents of child blocks blanked."""
    base = block.open_off + 1
    body = list(clean[base : block.close_off])
    for child in block.children:
        for i in range(child.open_off + 1, child.close_off):
            if body[i - base] != "\n":
                body[i - base] = " "
    return "".join(body)


def _angle_paren_split(text: str, seps: str) -> list[tuple[str, int]]:
    """Split `text` on separator chars at angle/paren/brace depth 0.

    Returns (segment, start_offset) pairs. '}' and ';' both terminate a
    segment (a masked function body `{}` has no trailing ';').
    """
    segs: list[tuple[str, int]] = []
    depth_a = depth_p = depth_b = 0
    start = 0
    for i, c in enumerate(text):
        if c == "<":
            depth_a += 1
        elif c == ">":
            if depth_a > 0:
                depth_a -= 1
        elif c == "(":
            depth_p += 1
        elif c == ")":
            depth_p -= 1
        elif c == "{":
            depth_b += 1
        elif c == "}":
            depth_b -= 1
            if depth_b <= 0 and depth_p == 0 and "}" in seps:
                segs.append((text[start:i], start))
                start = i + 1
                depth_a = depth_b = 0
            continue
        if c in seps and c != "}" and depth_a == 0 and depth_p == 0 and depth_b == 0:
            segs.append((text[start:i], start))
            start = i + 1
    if text[start:].strip():
        segs.append((text[start:], start))
    return segs


def _top_level_has_paren(text: str) -> bool:
    """True if `text` contains '(' outside template angle brackets."""
    depth_a = 0
    for c in text:
        if c == "<":
            depth_a += 1
        elif c == ">":
            if depth_a > 0:
                depth_a -= 1
        elif c == "(" and depth_a == 0:
            return True
    return False


_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*(\[[^\]]*\]\s*)*$")


def _parse_member(seg: str, line: int, raw_lines: list[str]) -> Optional[Member]:
    decl = seg.strip()
    if not decl:
        return None
    # An access label glues to the following declaration segment
    # ("private:\n  std::vector<MicroOp> pool_") — peel it off so the
    # first member after the label is not mistaken for a keyword line.
    decl = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "", decl)
    if not decl:
        return None
    first_word = re.match(r"[A-Za-z_]\w*", decl)
    is_static = False
    # Peel leading specifiers.
    while first_word:
        w = first_word.group(0)
        if w in ("static", "inline", "constexpr", "mutable", "thread_local"):
            if w == "static":
                is_static = True
            decl = decl[first_word.end() :].lstrip()
            first_word = re.match(r"[A-Za-z_]\w*", decl)
            continue
        break
    if not first_word:
        return None
    if first_word.group(0) in _SKIP_KEYWORDS:
        return None
    if _top_level_has_paren(decl):
        return None  # function declaration / member function pointer
    # Strip default initializer: "= ..." or "{...}" tail.
    cut = _angle_paren_split(decl, "=")
    head = cut[0][0] if cut else decl
    brace = head.find("{")
    if brace != -1:
        head = head[:brace]
    head = head.rstrip()
    if not head or head.endswith(("<", ",", ":")):
        return None
    m = _NAME_RE.search(head)
    if not m:
        return None
    name = m.group(1)
    type_text = head[: m.start()].strip()
    if not type_text:
        return None
    # Collect comment text attached to this declaration: trailing comments
    # on the declaration's lines plus immediately preceding comment-only
    # lines (the natural places for a `lint:` annotation).
    notes: list[str] = []
    li = line - 1  # 0-based index of the first declaration line
    k = li - 1
    while k >= 0 and raw_lines[k].lstrip().startswith(("//", "///")):
        notes.insert(0, raw_lines[k])
        k -= 1
    for k in range(li, min(li + seg.count("\n") + 1, len(raw_lines))):
        if "//" in raw_lines[k]:
            notes.append(raw_lines[k][raw_lines[k].index("//") :])
    return Member(
        name=name,
        type=type_text,
        line=line,
        is_static=is_static,
        is_reference="&" in type_text,
        is_const=bool(re.search(r"\bconst\b", type_text))
        and "*" not in type_text,
        annotations="\n".join(notes),
    )


def _class_annotations(clean_header_start: int, text: str) -> str:
    """Comment lines immediately above a class head."""
    raw_lines = text.splitlines()
    li = line_of(text, clean_header_start) - 1
    # The header may start right after the previous '}' or ';' on an
    # earlier line; find the first non-blank line of the header itself.
    while li < len(raw_lines) and not raw_lines[li].strip():
        li += 1
    notes: list[str] = []
    k = li - 1
    while k >= 0 and raw_lines[k].lstrip().startswith(("//", "///")):
        notes.insert(0, raw_lines[k])
        k -= 1
    return "\n".join(notes)


def _walk(
    block: Block,
    clean: str,
    text: str,
    raw_lines: list[str],
    model: FileModel,
    scope: tuple[str, ...] = (),
    nested_access: str = "public",
    ns: tuple[str, ...] = (),
) -> None:
    header = block.header.strip()
    # Namespaces / extern "C" / plain scopes: recurse. The header text spans
    # everything since the previous block, so match the intro at its END
    # (an anonymous namespace or extern block simply keeps the current ns
    # via the generic fall-through at the bottom).
    nm = re.search(r"\bnamespace\s+([A-Za-z_][\w:]*)\s*$", header)
    if nm:
        inner_ns = ns + tuple(nm.group(1).split("::"))
        for child in block.children:
            _walk(child, clean, text, raw_lines, model, scope, "public",
                  inner_ns)
        return

    for em in _ENUM_RE.finditer(header):
        model.enums.add(em.group(1))
    if re.match(r"\s*enum\b", header):
        return

    cm = _CLASS_RE.search(header)
    if cm and not _top_level_has_paren(header.split(":")[0]):
        is_template = "template" in header
        inner_scope = scope + (cm.group(2),)
        info = ClassInfo(
            name=cm.group(2),
            kind=cm.group(1),
            file=model.path,
            line=line_of(clean, block.open_off),
            members=[],
            methods={},
            is_template=is_template,
            access_of={},
            annotations=_class_annotations(block.header_start, text),
            qualified="::".join(inner_scope),
            access=nested_access,
            namespace="::".join(ns),
        )
        masked = _mask_children(block, clean)
        base = block.open_off + 1
        default_access = "private" if cm.group(1) == "class" else "public"
        # Track access specifiers by scanning the masked body.
        access_marks = [
            (m.start(), m.group(1))
            for m in re.finditer(r"\b(public|private|protected)\s*:", masked)
        ]

        def access_at(off: int) -> str:
            acc = default_access
            for pos, a in access_marks:
                if pos <= off:
                    acc = a
            return acc

        for seg, off in _angle_paren_split(masked, ";}"):
            member = _parse_member(seg, line_of(clean, base + off + _lead_ws(seg)), raw_lines)
            if member:
                info.members.append(member)
                # Evaluate at the segment end: an access label glued to the
                # front of this very segment must count for this member.
                info.access_of[member.name] = access_at(off + len(seg))
        # Methods defined inline in the class.
        for child in block.children:
            mh = child.header.strip()
            mm = _METHOD_RE.search(_header_through_paren(mh))
            if mm:
                info.methods[mm.group(1)] = Method(
                    name=mm.group(1),
                    params=_params_of(clean, child),
                    body=child.body(clean),
                    line=line_of(clean, child.open_off),
                )
            else:
                # Evaluate access at the child's '{': an access specifier
                # directly before a nested type ("private:\n struct Node {")
                # lies inside the child's header span, after header_start.
                _walk(
                    child, clean, text, raw_lines, model, inner_scope,
                    access_at(child.open_off - base), ns,
                )
        model.classes.append(info)
        return

    # Out-of-class method definition: `void X::save_state(...) { ... }`.
    em = _EXTERNAL_RE.search(header)
    if em:
        model.external_methods[(em.group(1), em.group(2))] = Method(
            name=em.group(2),
            params=_params_of(clean, block),
            body=block.body(clean),
            line=line_of(clean, block.open_off),
        )
        return

    # Free save_xxx/load_xxx helper pair.
    fm = _FREE_RE.search(_header_through_paren(header))
    if fm and ("ArchiveWriter" in header or "ArchiveReader" in header):
        params = _params_of(clean, block)
        target = _free_pair_target(params)
        if target:
            pair = model.free_pairs.setdefault(
                fm.group(2), FreePair(fm.group(2), target)
            )
            method = Method(
                name=f"{fm.group(1)}_{fm.group(2)}",
                params=params,
                body=block.body(clean),
                line=line_of(clean, block.open_off),
            )
            if fm.group(1) == "save":
                pair.save = method
            else:
                pair.load = method
            return

    # Any other function over an Archive stream is a serialization helper a
    # save/load body may delegate to; record it for call expansion.
    if "ArchiveWriter" in header or "ArchiveReader" in header:
        hm = re.search(r"([A-Za-z_]\w*)\s*\($", _header_through_paren(header))
        if hm and hm.group(1) not in _SKIP_KEYWORDS:
            model.helpers.setdefault(
                hm.group(1),
                Method(
                    name=hm.group(1),
                    params=_params_of(clean, block),
                    body=block.body(clean),
                    line=line_of(clean, block.open_off),
                ),
            )
            return

    for child in block.children:
        _walk(child, clean, text, raw_lines, model, scope, "public", ns)


def _lead_ws(seg: str) -> int:
    return len(seg) - len(seg.lstrip())


def _header_through_paren(header: str) -> str:
    """Header text up to and including the first '(' (for name matching)."""
    i = header.find("(")
    return header if i == -1 else header[: i + 1]


def _params_of(clean: str, block: Block) -> str:
    header = clean[block.header_start : block.open_off]
    i = header.find("(")
    if i == -1:
        return ""
    depth = 0
    for j in range(i, len(header)):
        if header[j] == "(":
            depth += 1
        elif header[j] == ")":
            depth -= 1
            if depth == 0:
                return header[i + 1 : j]
    return header[i + 1 :]


def _free_pair_target(params: str) -> Optional[str]:
    """The T of `(ArchiveWriter& ar, const T& v)` / `(ArchiveReader&, T&)`."""
    for p in params.split(","):
        p = p.strip()
        if "ArchiveWriter" in p or "ArchiveReader" in p:
            continue
        m = re.match(r"(?:const\s+)?([A-Za-z_][\w:]*)\s*&", p)
        if m:
            return m.group(1).split("::")[-1]
    return None


def parse_file(path: str, text: Optional[str] = None) -> FileModel:
    if text is None:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    clean = strip_comments(text)
    model = FileModel(
        path=path,
        text=text,
        clean=clean,
        classes=[],
        external_methods={},
        free_pairs={},
        enums=set(),
    )
    raw_lines = text.splitlines()
    for block in parse_blocks(clean):
        _walk(block, clean, text, raw_lines, model)
    return model


# ---------------------------------------------------------------------------
# type utilities
# ---------------------------------------------------------------------------

_FUNDAMENTAL = {
    "bool", "char", "int", "unsigned", "signed", "long", "short", "float",
    "double", "size_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "int8_t", "int16_t", "int32_t", "int64_t", "ptrdiff_t", "uintptr_t",
    "intptr_t", "wchar_t", "char8_t", "char16_t", "char32_t", "void",
}

_CONTAINERS = ("vector", "deque", "array", "unordered_map", "map", "span")


def base_name(type_text: str) -> str:
    """`std::vector<MicroOp>` -> `vector`; `BranchUnit::Checkpoint` ->
    `Checkpoint`; `const Cycle` -> `Cycle`."""
    t = type_text.strip()
    t = re.sub(r"\b(const|volatile|struct|class|typename)\b", "", t).strip()
    i = t.find("<")
    if i != -1:
        t = t[:i]
    t = t.rstrip("&* ")
    return t.split("::")[-1].strip()


def template_args(type_text: str) -> list[str]:
    t = type_text.strip()
    i = t.find("<")
    if i == -1 or not t.endswith(">"):
        return []
    inner = t[i + 1 : -1]
    args, depth, start = [], 0, 0
    for j, c in enumerate(inner):
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
        elif c == "," and depth == 0:
            args.append(inner[start:j].strip())
            start = j + 1
    args.append(inner[start:].strip())
    return args


def element_class_names(type_text: str, enums: set[str]) -> list[str]:
    """Class names reachable as serialized elements of `type_text`.

    `std::vector<MicroOp>` -> [MicroOp]; `std::array<std::deque<E>, 2>` ->
    [E]; fundamental/enum element types resolve to nothing.
    """
    name = base_name(type_text)
    out: list[str] = []
    if name in _CONTAINERS:
        for arg in template_args(type_text):
            if re.fullmatch(r"\d+", arg) or not arg:
                continue
            out.extend(element_class_names(arg, enums))
        return out
    if name in _FUNDAMENTAL or name in enums or not name:
        return []
    if not re.fullmatch(r"[A-Za-z_]\w*", name):
        return []
    # Type aliases like Cycle/Addr resolve to fundamentals; they are
    # filtered later when no class definition is found for the name.
    return [name]
