#!/usr/bin/env python3
"""Format-version gate: fail when a serialized layout changes without a bump.

The binary archive has no framing — field order IS the format — so any
change to a serialized layout silently invalidates every stored artifact
(snapshots, warm-store entries, campaign journals, worker wire messages)
unless the matching format-version constant is bumped and old artifacts are
rejected at load time.

This gate compares two git revisions (typically the PR base and HEAD):

  1. parse every C++ source under src/ at both revisions (tools/lint/cpplite
     structural parser — same engine as mflush_lint);
  2. build a per-domain *layout signature*: for every type with a
     save/load(-like) pair, the ordered list of serialized members plus the
     normalized bodies of its serialization methods; for every type reached
     by raw memcpy (put/put_vec/put_deque/put_map), the full ordered member
     layout including explicit padding;
  3. map each type to the version domain that owns its bytes (see
     DOMAINS below) and compare signatures;
  4. fail if a domain's signature changed but its version constant did not.

Usage:
    python3 tools/lint/check_format_version.py --base origin/main
    python3 tools/lint/check_format_version.py --base HEAD~1 --head HEAD

With no --head the working tree is used, so the gate runs identically in CI
(fetch-depth 0, base = merge target) and locally before committing.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpplite  # noqa: E402
import mflush_lint  # noqa: E402

# Domain -> (version header, constant name). A domain owns the bytes of the
# artifacts stamped with that constant.
DOMAINS = {
    "snapshot": ("src/sim/snapshot.h", "kFormatVersion"),
    "campaign": ("src/sim/campaign.h", "kFormatVersion"),
    "warmstore": ("src/sim/warmstore.h", "kFormatVersion"),
    "worker": ("src/sim/backend.h", "kProtocolVersion"),
    "daemon": ("src/sim/wire.h", "kProtocolVersion"),
    "trace": ("src/trace/trace_io.h", "kTraceVersion"),
}

# File-path ownership. First match wins; default is the snapshot stream
# (chip state save_state/load_state chains all feed snapshot::capture).
_PATH_DOMAINS = [
    ("src/sim/warmstore", "warmstore"),
    ("src/sim/campaign", "campaign"),
    ("src/sim/backend", "worker"),
    ("src/sim/remote", "worker"),
    ("src/sim/wire", "daemon"),
    ("src/sim/daemon", "daemon"),
    ("src/trace/trace_io", "trace"),
    # JobSpec and its value types ride the worker wire protocol; its
    # save_content (the content-address key) is special-cased to the
    # campaign domain in _signatures below.
    ("src/sim/experiment_spec", "worker"),
]

_SAVE_METHODS = ("save", "load", "save_state", "load_state", "save_content")


def domain_of(path: str) -> str:
    rel = path.replace("\\", "/")
    for prefix, dom in _PATH_DOMAINS:
        if rel.startswith(prefix):
            return dom
    return "snapshot"


def _norm(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip()


def _git(root: str, *args: str) -> str:
    return subprocess.run(
        ["git", "-C", root, *args],
        check=True,
        capture_output=True,
        text=True,
    ).stdout


def _tree_at(root: str, rev: str | None) -> mflush_lint.TreeModel:
    """Parse all src/ C++ sources at `rev` (None = working tree)."""
    model = mflush_lint.TreeModel()
    if rev is None:
        for path in mflush_lint.collect_sources([os.path.join(root, "src")]):
            rel = os.path.relpath(path, root)
            model.add(cpplite.parse_file(rel, open(path).read()))
        return model
    listing = _git(root, "ls-tree", "-r", "--name-only", rev, "--", "src")
    for rel in sorted(listing.splitlines()):
        if not rel.endswith((".h", ".hpp", ".cpp", ".cc")):
            continue
        text = _git(root, "show", f"{rev}:{rel}")
        model.add(cpplite.parse_file(rel, text))
    return model


def _signatures(model: mflush_lint.TreeModel) -> dict[str, dict[str, str]]:
    """domain -> {qualified type name -> layout signature}."""
    sigs: dict[str, dict[str, str]] = {d: {} for d in DOMAINS}

    def put(dom: str, key: str, sig: str) -> None:
        sigs[dom][key] = sigs[dom].get(key, "") + sig

    # Types with explicit serialization methods: serialized member list
    # (transient members are not in the stream) + normalized method bodies
    # with delegated helpers expanded.
    for ci in model.classes.values():
        methods = model.methods_of(ci)
        save_ish = {n: m for n, m in methods.items() if n in _SAVE_METHODS}
        if not save_ish:
            continue
        dom = domain_of(ci.file)
        members = ";".join(
            f"{m.name}:{_norm(m.type)}"
            for m in mflush_lint._checked_members(ci)
        )
        for name in sorted(save_ish):
            body = _norm(
                mflush_lint._expand_helpers(save_ish[name].body, model.helpers)
            )
            # The content key deliberately omits wire identity and is
            # consumed by the campaign result cache, not the worker wire.
            mdom = "campaign" if name == "save_content" else dom
            put(mdom, ci.qualified, f"[{name}]{body}")
        put(dom, ci.qualified, f"[members]{members}")
    for pair in model.free_pairs.values():
        ci = model.resolve(pair.target_type)
        dom = domain_of(ci.file) if ci else "snapshot"
        for method in (pair.save, pair.load):
            if method is None:
                continue
            body = _norm(mflush_lint._expand_helpers(method.body, model.helpers))
            put(dom, f"free:{pair.suffix}", f"[{method.name}]{body}")

    # Raw-memcpy'd types: every byte of the object lands in the stream, so
    # the signature is the full ordered member layout, padding included.
    for qname in mflush_lint.collect_memcpy_types(model):
        ci = model.classes.get(qname)
        if ci is None:
            continue
        layout = ";".join(f"{m.name}:{_norm(m.type)}" for m in ci.members)
        put(domain_of(ci.file), qname, f"[memcpy]{layout}")
    return sigs


def _version_at(root: str, rev: str | None, dom: str) -> int | None:
    header, const = DOMAINS[dom]
    try:
        if rev is None:
            text = open(os.path.join(root, header)).read()
        else:
            text = _git(root, "show", f"{rev}:{header}")
    except (OSError, subprocess.CalledProcessError):
        return None
    m = re.search(rf"\b{const}\s*=\s*(\d+)", text)
    return int(m.group(1)) if m else None


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--base", required=True, help="base git revision")
    ap.add_argument(
        "--head", default=None, help="head revision (default: working tree)"
    )
    ap.add_argument("--root", default=None, help="repo root (default: cwd)")
    args = ap.parse_args(argv)
    root = os.path.abspath(args.root or os.getcwd())

    try:
        base_model = _tree_at(root, args.base)
    except subprocess.CalledProcessError as e:
        print(f"check_format_version: cannot read base {args.base!r}: "
              f"{e.stderr.strip()}", file=sys.stderr)
        return 2
    head_model = _tree_at(root, args.head)
    base_sigs = _signatures(base_model)
    head_sigs = _signatures(head_model)

    failures = 0
    for dom in DOMAINS:
        old, new = base_sigs[dom], head_sigs[dom]
        if old == new:
            continue
        v_old = _version_at(root, args.base, dom)
        v_new = _version_at(root, args.head, dom)
        changed = sorted(
            k for k in old.keys() | new.keys() if old.get(k) != new.get(k)
        )
        if v_old is None:
            continue  # domain born in this change; its version is fresh
        if v_old == v_new:
            header, const = DOMAINS[dom]
            print(
                f"check_format_version: serialized layout of domain "
                f"'{dom}' changed but {header}:{const} is still {v_new}.\n"
                f"  changed types: {', '.join(changed)}\n"
                f"  Bump {const} (old artifacts must be rejected, not "
                f"misread) or revert the layout change."
            )
            failures += 1
        else:
            print(
                f"check_format_version: domain '{dom}' layout changed, "
                f"version bumped {v_old} -> {v_new} "
                f"({len(changed)} type(s)) — ok"
            )
    if failures == 0:
        print("check_format_version: all serialized-layout domains clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
