// Gate fixture (bad head): gate_wire_v1.h with the serialized field order
// swapped but kProtocolVersion left at 1 — the exact mistake the gate
// exists to catch (old peers would misread every frame).
#pragma once

#include <cstdint>

namespace mflush::daemon {

inline constexpr std::uint32_t kProtocolVersion = 1;

struct Message {
  std::uint32_t a = 0;
  std::uint64_t b = 0;

  void save(ArchiveWriter& ar) const {
    ar.put(b);
    ar.put(a);
  }
  static Message load(ArchiveReader& ar) {
    Message m;
    m.b = ar.get<std::uint64_t>();
    m.a = ar.get<std::uint32_t>();
    return m;
  }
};

}  // namespace mflush::daemon
