// Fixture: `dropped_` is serialized in neither save() nor load() and is not
// annotated transient. Expected findings: 2 (missing from save, missing
// from load).
#pragma once

#include <cstdint>

#include "tools/lint/fixtures/archive_stub.h"

namespace fixture {

class MissingField {
 public:
  void save(ArchiveWriter& ar) const { ar.put(kept_); }
  void load(ArchiveReader& ar) { kept_ = ar.get<std::uint64_t>(); }

 private:
  std::uint64_t kept_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace fixture
