// Gate fixture (base revision): a miniature wire message owned by the
// 'daemon' format-version domain. selftest.py commits this file as
// src/sim/wire.h in a scratch repository, then overwrites it with the
// gate_wire_reordered / gate_wire_bumped variants and asserts that
// check_format_version.py fails or passes accordingly.
#pragma once

#include <cstdint>

namespace mflush::daemon {

inline constexpr std::uint32_t kProtocolVersion = 1;

struct Message {
  std::uint32_t a = 0;
  std::uint64_t b = 0;

  void save(ArchiveWriter& ar) const {
    ar.put(a);
    ar.put(b);
  }
  static Message load(ArchiveReader& ar) {
    Message m;
    m.a = ar.get<std::uint32_t>();
    m.b = ar.get<std::uint64_t>();
    return m;
  }
};

}  // namespace mflush::daemon
