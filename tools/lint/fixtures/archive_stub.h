// Minimal stand-in for common/archive.h so the lint fixtures are
// self-contained: the structural parser keys on the ArchiveWriter /
// ArchiveReader *names* and the put/get call shapes, and the layout probe
// only needs the fixture headers to compile.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace fixture {

class ArchiveWriter {
 public:
  template <typename T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }
  template <typename T>
  void put_vec(const std::vector<T>& v) {
    put(static_cast<std::uint64_t>(v.size()));
    for (const T& x : v) put(x);
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ArchiveReader {
 public:
  template <typename T>
  T get() {
    T v{};
    std::memcpy(&v, bytes_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  template <typename T>
  void get_vec(std::vector<T>& v) {
    v.resize(static_cast<std::size_t>(get<std::uint64_t>()));
    for (T& x : v) x = get<T>();
  }

 private:
  const std::uint8_t* bytes_ = nullptr;
  std::size_t pos_ = 0;
};

}  // namespace fixture
