// Fixture: save() writes a_ then b_; load() reads b_ then a_. The archive
// has no framing, so this silently swaps the two values on restore.
// Expected findings: 1 (order mismatch).
#pragma once

#include <cstdint>

#include "tools/lint/fixtures/archive_stub.h"

namespace fixture {

class Reordered {
 public:
  void save(ArchiveWriter& ar) const {
    ar.put(a_);
    ar.put(b_);
  }
  void load(ArchiveReader& ar) {
    b_ = ar.get<std::uint64_t>();
    a_ = ar.get<std::uint64_t>();
  }

 private:
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};

}  // namespace fixture
