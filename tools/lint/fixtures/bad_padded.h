// Fixture: Holey has a 7-byte compiler-inserted hole between `flag` and
// `value`, and is serialized by raw memcpy via put_vec — the hole's garbage
// bytes land in the stream. Expected findings: 1 (padding hole).
#pragma once

#include <cstdint>
#include <vector>

#include "tools/lint/fixtures/archive_stub.h"

namespace fixture {

struct Holey {
  std::uint8_t flag = 0;
  std::uint64_t value = 0;
};

class PaddedOwner {
 public:
  void save(ArchiveWriter& ar) const { ar.put_vec(entries_); }
  void load(ArchiveReader& ar) { ar.get_vec(entries_); }

 private:
  std::vector<Holey> entries_;
};

}  // namespace fixture
