// Fixture: raw std::getenv call outside common/env.h. Expected findings:
// 1 (raw getenv).
#include <cstdlib>
#include <string>

namespace fixture {

std::string worker_binary() {
  const char* v = std::getenv("MFLUSH_WORKER_BIN");
  return v ? std::string(v) : std::string();
}

}  // namespace fixture
