// Gate fixture (good head): the same layout change as
// gate_wire_reordered.h, but with kProtocolVersion bumped — the gate must
// accept this (new version, old frames rejected at decode time).
#pragma once

#include <cstdint>

namespace mflush::daemon {

inline constexpr std::uint32_t kProtocolVersion = 2;

struct Message {
  std::uint32_t a = 0;
  std::uint64_t b = 0;

  void save(ArchiveWriter& ar) const {
    ar.put(b);
    ar.put(a);
  }
  static Message load(ArchiveReader& ar) {
    Message m;
    m.b = ar.get<std::uint64_t>();
    m.a = ar.get<std::uint32_t>();
    return m;
  }
};

}  // namespace mflush::daemon
