// Fixture: a fully clean serializable class. Expected findings: none.
#pragma once

#include <cstdint>
#include <vector>

#include "tools/lint/fixtures/archive_stub.h"

namespace fixture {

/// Raw-memcpy'd record with explicit zero-initialized padding: 8 + 4 + 4.
struct Rec {
  std::uint64_t key = 0;
  std::uint32_t count = 0;
  std::uint8_t _pad[4] = {};
};

class Good {
 public:
  void save(ArchiveWriter& ar) const {
    ar.put_vec(recs_);
    ar.put(total_);
  }
  void load(ArchiveReader& ar) {
    ar.get_vec(recs_);
    total_ = ar.get<std::uint64_t>();
  }

 private:
  std::uint32_t capacity_ = 0;  // lint: transient — ctor config
  std::vector<Rec> recs_;
  std::uint64_t total_ = 0;
};

}  // namespace fixture
