#!/usr/bin/env python3
"""mflush-lint self-test: run the linter over intentional-violation fixtures
and assert that each check fires exactly where it should (and nowhere on the
clean fixture). Registered in ctest as lint.selftest.

Usage: python3 tools/lint/selftest.py [--cxx g++]
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
LINT = os.path.join(ROOT, "tools", "lint", "mflush_lint.py")
GATE = os.path.join(ROOT, "tools", "lint", "check_format_version.py")
FIXDIR = os.path.join("tools", "lint", "fixtures")

# fixture file -> (expected exit code, substrings every run must print,
#                  substrings that must NOT appear)
CASES = {
    "good_clean.h": (0, [], ["finding"]),
    "bad_missing_field.h": (
        1,
        [
            "member `dropped_` is not referenced in save()",
            "member `dropped_` is not referenced in load()",
        ],
        ["kept_"],
    ),
    "bad_reordered.h": (
        1,
        [
            "save/load reference members in different orders",
            "save: a_, b_; load: b_, a_",
        ],
        [],
    ),
    "bad_padded.h": (
        1,
        ["struct Holey", "padding", "flag", "value"],
        ["class PaddedOwner"],
    ),
    "bad_getenv.cpp": (
        1,
        ["getenv", "common/env.h"],
        [],
    ),
}


def run_case(fixture: str, cxx: str) -> list[str]:
    expect_rc, must, must_not = CASES[fixture]
    proc = subprocess.run(
        [
            sys.executable,
            LINT,
            "--root",
            ROOT,
            "--src",
            os.path.join(FIXDIR, fixture),
            "--cxx",
            cxx,
        ],
        capture_output=True,
        text=True,
    )
    out = proc.stdout + proc.stderr
    errors = []
    if proc.returncode != expect_rc:
        errors.append(
            f"{fixture}: exit {proc.returncode}, expected {expect_rc}\n{out}"
        )
    for s in must:
        if s not in out:
            errors.append(f"{fixture}: expected output to contain {s!r}\n{out}")
    for s in must_not:
        # The trailing summary line always contains "finding(s)"; the clean
        # fixture asserts on the zero count instead.
        if fixture == "good_clean.h" and s == "finding":
            if "0 finding(s)" not in out:
                errors.append(f"{fixture}: expected 0 findings\n{out}")
            continue
        if s in out:
            errors.append(f"{fixture}: output must not contain {s!r}\n{out}")
    return errors


# Format-version gate fixtures: head fixture -> (expected exit code,
# substrings the gate must print). The base revision is always
# gate_wire_v1.h committed as src/sim/wire.h in a scratch repository.
GATE_CASES = {
    "gate_wire_v1.h": (0, ["all serialized-layout domains clean"]),
    "gate_wire_reordered.h": (1, ["domain 'daemon'", "kProtocolVersion"]),
    "gate_wire_bumped.h": (0, ["domain 'daemon'", "1 -> 2"]),
}


def run_gate_cases() -> list[str]:
    """Exercise check_format_version.py end to end in a scratch git repo."""
    if shutil.which("git") is None:
        print("lint-selftest: gate: skipped (no git)")
        return []
    errors: list[str] = []
    fixdir = os.path.join(ROOT, FIXDIR)
    with tempfile.TemporaryDirectory(prefix="mflush-gate-") as tmp:
        wire = os.path.join(tmp, "src", "sim", "wire.h")
        os.makedirs(os.path.dirname(wire))

        def git(*args: str) -> None:
            subprocess.run(
                ["git", "-C", tmp, *args],
                check=True,
                capture_output=True,
                env={
                    **os.environ,
                    "GIT_AUTHOR_NAME": "selftest",
                    "GIT_AUTHOR_EMAIL": "selftest@localhost",
                    "GIT_COMMITTER_NAME": "selftest",
                    "GIT_COMMITTER_EMAIL": "selftest@localhost",
                },
            )

        git("init", "-q")
        shutil.copyfile(os.path.join(fixdir, "gate_wire_v1.h"), wire)
        git("add", "src/sim/wire.h")
        git("commit", "-q", "-m", "base")

        for fixture in sorted(GATE_CASES):
            expect_rc, must = GATE_CASES[fixture]
            shutil.copyfile(os.path.join(fixdir, fixture), wire)
            proc = subprocess.run(
                [sys.executable, GATE, "--base", "HEAD", "--root", tmp],
                capture_output=True,
                text=True,
            )
            out = proc.stdout + proc.stderr
            if proc.returncode != expect_rc:
                errors.append(
                    f"gate/{fixture}: exit {proc.returncode}, expected "
                    f"{expect_rc}\n{out}"
                )
            for s in must:
                if s not in out:
                    errors.append(
                        f"gate/{fixture}: expected output to contain "
                        f"{s!r}\n{out}"
                    )
            status = "ok" if proc.returncode == expect_rc else "FAIL"
            print(f"lint-selftest: gate/{fixture}: {status}")
    return errors


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--cxx", default=os.environ.get("CXX", "c++"))
    args = ap.parse_args(argv)

    failures: list[str] = []
    for fixture in sorted(CASES):
        errs = run_case(fixture, args.cxx)
        status = "ok" if not errs else "FAIL"
        print(f"lint-selftest: {fixture}: {status}")
        failures.extend(errs)
    failures.extend(run_gate_cases())
    for f in failures:
        print(f"lint-selftest: {f}", file=sys.stderr)
    print(
        f"lint-selftest: {len(CASES) + len(GATE_CASES)} fixtures, "
        f"{len(failures)} failure(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
