#!/usr/bin/env python3
"""mflush-lint: project-specific static checks for the MFLUSH tree.

Checks (each can be selected with --check, default all):

  completeness  For every type with a paired `save_state`/`load_state` or
                `save`/`load` (methods, out-of-class definitions, or free
                `save_xxx`/`load_xxx` helpers over an ArchiveWriter/Reader),
                every non-static data member must be referenced in BOTH
                bodies and in the same order — a new field can never
                silently break resume==continuous. `save_content` (JobSpec)
                is checked for completeness only. Members that are
                intentionally not serialized carry an explicit annotation
                in an adjacent comment:
                    // lint: transient — <why this member is rebuilt>
                    // lint: content-exempt — <why content excludes it>
                References and const members are exempt automatically
                (they cannot be assigned by a loader).

  padding       Every trivially-copyable struct serialized via raw
                `put`/`put_vec`/`put_deque`/`put_map` memcpy must have no
                padding holes: snapshot bytes must be canonical across
                processes (holes carry uninitialized, ASLR-dependent stack
                bytes). Layout facts come from compiling a generated probe
                TU with the project compiler (layout_probe.py) — exact ABI
                answers, not parser guesses. Fix findings by making the
                padding explicit: zero-initialized `std::uint8_t _padN[...]`
                members. A struct can opt out (e.g. when it is never
                byte-compared) with `// lint: padding-ok — <why>` above its
                definition.

  getenv        All environment access must go through the strict parsers
                in common/env.h (mflush::env) — a typo in an MFLUSH_* value
                must hard-error, never silently default. Any other call
                site of `getenv` is a finding.

Exit status: 0 clean, 1 findings, 2 tool error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpplite
import layout_probe

SAVE_LOAD_PAIRS = (("save_state", "load_state"), ("save", "load"))


# ---------------------------------------------------------------------------
# model assembly
# ---------------------------------------------------------------------------


class TreeModel:
    def __init__(self) -> None:
        self.files: list[cpplite.FileModel] = []
        self.classes: dict[str, cpplite.ClassInfo] = {}  # qualified name key
        self.by_simple: dict[str, list[cpplite.ClassInfo]] = {}
        self.enums: set[str] = set()
        self.free_pairs: dict[str, cpplite.FreePair] = {}
        self.helpers: dict[str, cpplite.Method] = {}

    def add(self, fm: cpplite.FileModel) -> None:
        self.files.append(fm)
        for ci in fm.classes:
            self.classes.setdefault(ci.qualified, ci)
            self.by_simple.setdefault(ci.name, []).append(ci)
        for name, method in fm.helpers.items():
            self.helpers.setdefault(name, method)
        self.enums |= fm.enums
        for suffix, pair in fm.free_pairs.items():
            existing = self.free_pairs.setdefault(suffix, pair)
            if existing is not pair:
                existing.save = existing.save or pair.save
                existing.load = existing.load or pair.load

    def resolve(
        self, name: str, scope: cpplite.ClassInfo | None = None
    ) -> cpplite.ClassInfo | None:
        """Look up a type name, preferring the enclosing class's scope."""
        simple = name.split("::")[-1]
        if scope is not None:
            nested = self.classes.get(f"{scope.qualified}::{simple}")
            if nested is not None:
                return nested
        exact = self.classes.get(name)
        if exact is not None:
            return exact
        cands = self.by_simple.get(simple, [])
        if len(cands) == 1:
            return cands[0]
        return None  # unknown or ambiguous — never guess

    def methods_of(self, ci: cpplite.ClassInfo) -> dict[str, cpplite.Method]:
        out = dict(ci.methods)
        for fm in self.files:
            for (cls, name), method in fm.external_methods.items():
                if cls == ci.name and name not in out:
                    out[name] = method
        return out

    def has_save_load(self, ci: cpplite.ClassInfo) -> bool:
        methods = self.methods_of(ci)
        return any(
            s in methods and l in methods for s, l in SAVE_LOAD_PAIRS
        ) or ci.name in {
            p.target_type for p in self.free_pairs.values()
        }


def collect_sources(roots: list[str]) -> list[str]:
    out = []
    for root in roots:
        if os.path.isfile(root):
            out.append(root)
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for fn in sorted(filenames):
                if fn.endswith((".h", ".hpp", ".cpp", ".cc")):
                    out.append(os.path.join(dirpath, fn))
    return sorted(out)


def build_model(paths: list[str]) -> TreeModel:
    model = TreeModel()
    for path in paths:
        model.add(cpplite.parse_file(path))
    return model


# ---------------------------------------------------------------------------
# check: completeness + order
# ---------------------------------------------------------------------------


def _annotated(member: cpplite.Member, marker: str) -> bool:
    return re.search(rf"lint:\s*{marker}\b", member.annotations) is not None


def _checked_members(ci: cpplite.ClassInfo) -> list[cpplite.Member]:
    out = []
    for m in ci.members:
        if m.is_static or m.is_reference or m.is_const:
            continue
        if _annotated(m, "transient"):
            continue
        out.append(m)
    return out


def _expand_helpers(
    body: str, helpers: dict[str, cpplite.Method], depth: int = 3
) -> str:
    """Splice the bodies of called serialization helpers into `body`.

    `JobSpec::save` delegates to `put_job_fields(ar, *this)`; the member
    references live in the helper. Inserting the helper body at the call
    site keeps both the reference set and the first-reference order of the
    expanded text faithful to the emitted archive stream. Depth-limited so
    (indirectly) recursive helpers cannot loop.
    """
    if depth <= 0 or not helpers:
        return body
    out: list[str] = []
    pos = 0
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", body):
        h = helpers.get(m.group(1))
        if h is None:
            continue
        inner = {k: v for k, v in helpers.items() if k != m.group(1)}
        out.append(body[pos : m.end()])
        out.append(" " + _expand_helpers(h.body, inner, depth - 1) + " ")
        pos = m.end()
    out.append(body[pos:])
    return "".join(out)


def _reference_order(body: str, members: list[cpplite.Member]) -> list[str]:
    """Member names ordered by first reference position in `body`."""
    firsts = []
    for m in members:
        match = re.search(rf"\b{re.escape(m.name)}\b", body)
        if match:
            firsts.append((match.start(), m.name))
    return [name for _, name in sorted(firsts)]


def check_completeness(model: TreeModel) -> list[str]:
    findings: list[str] = []

    def check_pair(
        where: str,
        members: list[cpplite.Member],
        save_name: str,
        save_body: str,
        load_name: str,
        load_body: str,
    ) -> None:
        for m in members:
            in_save = re.search(rf"\b{re.escape(m.name)}\b", save_body)
            in_load = re.search(rf"\b{re.escape(m.name)}\b", load_body)
            if not in_save:
                findings.append(
                    f"{where}: member `{m.name}` is not referenced in "
                    f"{save_name}() — serialize it or annotate it "
                    f"`// lint: transient — <why>`"
                )
            if not in_load:
                findings.append(
                    f"{where}: member `{m.name}` is not referenced in "
                    f"{load_name}() — a snapshot would restore without it"
                )
        save_order = _reference_order(save_body, members)
        load_order = _reference_order(load_body, members)
        common = [n for n in save_order if n in load_order]
        load_common = [n for n in load_order if n in save_order]
        if common != load_common:
            findings.append(
                f"{where}: {save_name}/{load_name} reference members in "
                f"different orders (save: {', '.join(common)}; load: "
                f"{', '.join(load_common)}) — the archive has no framing, "
                f"order IS the format"
            )

    for ci in model.classes.values():
        methods = model.methods_of(ci)
        members = _checked_members(ci)
        for save_name, load_name in SAVE_LOAD_PAIRS:
            save_m = methods.get(save_name)
            load_m = methods.get(load_name)
            if save_m is None and load_m is None:
                continue
            where = f"{ci.file}:{ci.line}: {ci.kind} {ci.name}"
            if save_m is None or load_m is None:
                # Unpaired methods named exactly save/load but unrelated to
                # archiving (e.g. a cache's load()) must not trip the check:
                # require the archive types in the signature.
                present = save_m or load_m
                if "Archive" in present.params:
                    findings.append(
                        f"{where}: has {present.name}() but no matching "
                        f"{load_name if save_m else save_name}()"
                    )
                continue
            if "Archive" not in save_m.params and "Archive" not in load_m.params:
                continue  # unrelated save/load pair, not serialization
            check_pair(
                where,
                members,
                save_name,
                _expand_helpers(save_m.body, model.helpers),
                load_name,
                _expand_helpers(load_m.body, model.helpers),
            )
        if "save_content" in methods:
            where = f"{ci.file}:{ci.line}: {ci.kind} {ci.name}"
            body = _expand_helpers(methods["save_content"].body, model.helpers)
            for m in ci.members:
                if m.is_static or m.is_reference or m.is_const:
                    continue
                if _annotated(m, "transient") or _annotated(m, "content-exempt"):
                    continue
                if not re.search(rf"\b{re.escape(m.name)}\b", body):
                    findings.append(
                        f"{where}: member `{m.name}` is not referenced in "
                        f"save_content() — content keys would collide for "
                        f"jobs differing only in `{m.name}`; serialize it "
                        f"or annotate `// lint: content-exempt — <why>`"
                    )

    for pair in model.free_pairs.values():
        if pair.save is None or pair.load is None:
            continue
        ci = model.resolve(pair.target_type)
        if ci is None:
            continue
        where = (
            f"{ci.file}:{ci.line}: {ci.kind} {ci.name} "
            f"(via save_{pair.suffix}/load_{pair.suffix})"
        )
        members = _checked_members(ci)
        save_body = _expand_helpers(pair.save.body, model.helpers)
        load_body = _expand_helpers(pair.load.body, model.helpers)
        for m in members:
            in_save = re.search(rf"\b{re.escape(m.name)}\b", save_body)
            in_load = re.search(rf"\b{re.escape(m.name)}\b", load_body)
            if not in_save:
                findings.append(
                    f"{where}: member `{m.name}` is not referenced in "
                    f"save_{pair.suffix}() — serialize it or annotate it "
                    f"`// lint: transient — <why>`"
                )
            if not in_load:
                findings.append(
                    f"{where}: member `{m.name}` is not referenced in "
                    f"load_{pair.suffix}() — a snapshot would restore "
                    f"without it"
                )
        save_order = _reference_order(save_body, members)
        load_order = _reference_order(load_body, members)
        common = [n for n in save_order if n in load_order]
        load_common = [n for n in load_order if n in save_order]
        if common != load_common:
            findings.append(
                f"{where}: save_{pair.suffix}/load_{pair.suffix} reference "
                f"members in different orders (save: {', '.join(common)}; "
                f"load: {', '.join(load_common)})"
            )
    return findings


# ---------------------------------------------------------------------------
# check: padding holes in memcpy-serialized structs
# ---------------------------------------------------------------------------

_RAW_PUT_RE = re.compile(r"\b(?:put_vec|put_deque|put_map|put)\s*(?:<[^;(]*>)?\s*\(")
_RAW_GET_RE = re.compile(r"\bget\s*<\s*([A-Za-z_][\w:<>, ]*?)\s*>")
_GETVEC_RE = re.compile(r"\b(?:get_vec|get_deque|get_map|put_vec|put_deque|put_map|put)\s*\(\s*([^();]*?)\s*\)")


_RANGE_FOR_RE = re.compile(
    r"for\s*\(\s*(?:const\s+)?(?:auto|[A-Za-z_][\w:<>, ]*?)\s*&{0,2}\s*"
    r"([A-Za-z_]\w*)\s*:\s*([^);]+?)\s*\)"
)


def _container_element(type_text: str) -> str | None:
    args = cpplite.template_args(type_text)
    if args and cpplite.base_name(type_text) in ("vector", "array", "deque"):
        return args[0]
    return None


def _resolve_expr_type(
    expr: str,
    ci: cpplite.ClassInfo | None,
    params: str,
    model: TreeModel,
    locals_: dict[str, str],
) -> str | None:
    """Declared type of `expr` (a member, param, local, or dotted chain)."""
    expr = expr.strip()
    if expr in ("*this", "this") and ci is not None:
        return ci.qualified
    expr = expr.lstrip("*& ")
    parts = re.split(r"\.|->", expr)
    head = re.sub(r"\[.*?\]", "", parts[0]).strip()
    if not re.fullmatch(r"[A-Za-z_]\w*", head):
        return None
    cur_type: str | None = locals_.get(head)
    if cur_type is None and ci is not None:
        for m in ci.members:
            if m.name == head:
                cur_type = m.type
                break
    if cur_type is None:
        for p in params.split(","):
            pm = re.match(
                r"\s*(?:const\s+)?([A-Za-z_][\w:<>, ]*?)\s*[&*]?\s*"
                rf"{re.escape(head)}\s*$",
                p,
            )
            if pm:
                cur_type = pm.group(1)
                break
    if cur_type is None:
        return None
    if "[" in parts[0]:
        cur_type = _container_element(cur_type) or cur_type
    holder_scope = ci
    for field in parts[1:]:
        plain = re.sub(r"\[.*?\]", "", field).strip()
        holder = model.resolve(cpplite.base_name(cur_type), holder_scope)
        if holder is None:
            return None
        nxt = None
        for m in holder.members:
            if m.name == plain:
                nxt = m.type
                break
        if nxt is None:
            return None
        cur_type = nxt
        if "[" in field:
            cur_type = _container_element(cur_type) or cur_type
        holder_scope = holder
    return cur_type


def collect_memcpy_types(
    model: TreeModel,
) -> dict[str, set[str]]:
    """Qualified struct name -> serialization sites that memcpy it."""
    out: dict[str, set[str]] = {}

    def add_type(
        type_text: str, why: str, scope: cpplite.ClassInfo | None
    ) -> None:
        for name in cpplite.element_class_names(type_text, model.enums):
            target = model.resolve(name, scope)
            if target is not None:
                out.setdefault(target.qualified, set()).add(why)

    def scan_body(
        body: str, params: str, ci: cpplite.ClassInfo | None, where: str
    ) -> None:
        if not _RAW_PUT_RE.search(body) and not _RAW_GET_RE.search(body):
            return
        # Bind range-for loop variables to their element types so puts
        # through loop aliases resolve (`for (auto& q : per_core_)
        # ar.put_deque(q);`).
        locals_: dict[str, str] = {}
        for m in _RANGE_FOR_RE.finditer(body):
            rtype = _resolve_expr_type(m.group(2), ci, params, model, locals_)
            if rtype:
                elem = _container_element(rtype)
                if elem:
                    locals_[m.group(1)] = elem
        for m in _RAW_GET_RE.finditer(body):
            add_type(m.group(1), where, ci)
        unresolved: list[str] = []
        for m in _GETVEC_RE.finditer(body):
            arg = m.group(1)
            t = _resolve_expr_type(arg, ci, params, model, locals_)
            if t is None:
                unresolved.append(arg)
            else:
                add_type(t, where, ci)
        if unresolved and ci is not None:
            # A put through an alias the resolver cannot follow:
            # conservatively include the element types of every container
            # member — but never types that archive themselves field-wise
            # (their own save/load pair serializes them; raw memcpy of
            # them would be a different, directly-resolvable call).
            for mem in ci.members:
                for name in cpplite.element_class_names(
                    mem.type, model.enums
                ):
                    target = model.resolve(name, ci)
                    if target is None or target is ci:
                        continue
                    if model.has_save_load(target):
                        continue
                    elem = _container_element(mem.type)
                    if elem is None:
                        continue  # plain member: only containers are put_*'d
                    out.setdefault(target.qualified, set()).add(
                        f"{where} (unresolved put of `{unresolved[0]}`; "
                        f"container member {mem.name})"
                    )

    for ci in model.classes.values():
        for name, method in model.methods_of(ci).items():
            if name not in (
                "save", "load", "save_state", "load_state", "save_content"
            ):
                continue
            scan_body(
                method.body,
                method.params,
                ci,
                f"{ci.file}: {ci.name}::{name}",
            )
    for pair in model.free_pairs.values():
        ci = model.resolve(pair.target_type)
        for method in (pair.save, pair.load):
            if method is None:
                continue
            scan_body(
                method.body, method.params, ci, f"free {method.name}"
            )
    for name, method in model.helpers.items():
        scan_body(method.body, method.params, None, f"helper {name}")

    # Transitive closure: a memcpy'd struct's class-typed members (and
    # their members, ...) land in the byte stream too.
    queue = list(out.keys())
    while queue:
        qname = queue.pop()
        ci = model.classes.get(qname)
        if ci is None:
            continue
        for mem in ci.members:
            for sub in cpplite.element_class_names(mem.type, model.enums):
                target = model.resolve(sub, ci)
                if target is not None and target.qualified not in out:
                    out[target.qualified] = {f"member of memcpy'd {ci.name}"}
                    queue.append(target.qualified)
    return out


def _hidden(ci: cpplite.ClassInfo) -> bool:
    return ci.access != "public" or any(
        ci.access_of.get(m.name) != "public" for m in ci.members
    )


def _in_template(model: TreeModel, ci: cpplite.ClassInfo) -> bool:
    """True if `ci` is a template or nested anywhere inside one."""
    parts = ci.qualified.split("::")
    for k in range(1, len(parts) + 1):
        encl = model.classes.get("::".join(parts[:k]))
        if encl is not None and encl.is_template:
            return True
    return False


def _template_instantiations(
    model: TreeModel, ci: cpplite.ClassInfo
) -> list[tuple[str, list[cpplite.ClassInfo], list[str], str]]:
    """Instantiations of a template-nested candidate, found at member sites.

    `TokenTable<T>::Entry` has no layout until T is known; every member of
    the form `TokenTable<Outstanding> x_;` names one concrete layout. Yields
    (instantiated type expression, resolved class-typed args, extra headers,
    use site) per such member.
    """
    parts = ci.qualified.split("::")
    for k in range(1, len(parts) + 1):
        encl = model.classes.get("::".join(parts[:k]))
        if encl is not None and encl.is_template:
            prefix = "::".join(parts[:k])
            simple = parts[k - 1]
            rest = parts[k:]
            break
    else:
        return []
    out: list[tuple[str, list[cpplite.ClassInfo], list[str], str]] = []
    seen: set[str] = set()
    for holder in model.classes.values():
        for mem in holder.members:
            if cpplite.base_name(mem.type) != simple:
                continue
            args = cpplite.template_args(mem.type)
            if not args:
                continue
            qargs: list[str] = []
            arg_cis: list[cpplite.ClassInfo] = []
            headers: list[str] = []
            for a in args:
                aci = model.resolve(cpplite.base_name(a), holder)
                if aci is not None:
                    qargs.append(aci.qualified)
                    arg_cis.append(aci)
                    headers.append(aci.file)
                else:
                    qargs.append(a)
            name = f"{prefix}<{', '.join(qargs)}>"
            if rest:
                name += "::" + "::".join(rest)
            if name in seen:
                continue
            seen.add(name)
            out.append(
                (name, arg_cis, headers,
                 f"{holder.file}: member {holder.name}::{mem.name}")
            )
    return out


def check_padding(
    model: TreeModel, cxx: str, include_dirs: list[str]
) -> list[str]:
    candidates = collect_memcpy_types(model)
    findings: list[str] = []
    probe_types: list[layout_probe.ProbeType] = []
    queue = sorted(candidates)
    done: set[str] = set()
    while queue:
        qname = queue.pop(0)
        if qname in done:
            continue
        done.add(qname)
        ci = model.classes[qname]
        if re.search(r"lint:\s*padding-ok\b", ci.annotations):
            continue
        where = f"{ci.file}:{ci.line}: {ci.kind} {ci.qualified}"
        why = sorted(candidates[qname])[0]
        if not ci.file.endswith((".h", ".hpp")):
            findings.append(
                f"{where}: serialized by memcpy (via {why}) but defined "
                f"outside a header — the layout probe cannot include it; "
                f"move it to a header or annotate "
                f"`// lint: padding-ok — <why>`"
            )
            continue
        if _in_template(model, ci):
            # No layout until instantiated: probe each concrete use, and
            # treat class-typed template args as memcpy'd themselves
            # (their bytes land inside the instantiated element).
            for name, arg_cis, headers, use in _template_instantiations(
                model, ci
            ):
                bad = [a for a in arg_cis if _hidden(a)]
                for a in bad:
                    findings.append(
                        f"{a.file}:{a.line}: {a.kind} {a.qualified}: "
                        f"memcpy'd as a template argument of {name} (via "
                        f"{use}) but non-public — offsetof probing is "
                        f"impossible; make it a plain public struct or "
                        f"annotate `// lint: padding-ok — <why>`"
                    )
                if bad:
                    continue
                for a in arg_cis:
                    if a.qualified not in candidates:
                        candidates[a.qualified] = {
                            f"template argument of {name} ({use})"
                        }
                        queue.append(a.qualified)
                probe_types.append(
                    layout_probe.ProbeType(
                        name=name,
                        header=ci.file,
                        members=[
                            m.name for m in ci.members if not m.is_static
                        ],
                        file=ci.file,
                        line=ci.line,
                        why=f"{why}; instantiated at {use}",
                        extra_headers=headers,
                        ns=ci.namespace,
                    )
                )
            continue
        if _hidden(ci):
            findings.append(
                f"{where}: serialized by memcpy (via {why}) but the type or "
                f"its data members are non-public — offsetof probing is "
                f"impossible; make it a plain public struct or annotate "
                f"`// lint: padding-ok — <why>`"
            )
            continue
        probe_types.append(
            layout_probe.ProbeType(
                name=ci.qualified,
                header=ci.file,
                members=[m.name for m in ci.members if not m.is_static],
                file=ci.file,
                line=ci.line,
                why=why,
                ns=ci.namespace,
            )
        )
    findings.extend(
        layout_probe.find_padding_holes(probe_types, cxx, include_dirs)
    )
    return findings


# ---------------------------------------------------------------------------
# check: raw getenv ban
# ---------------------------------------------------------------------------


def check_getenv(model: TreeModel, allow_files: list[str]) -> list[str]:
    findings = []
    for fm in model.files:
        rel = fm.path.replace("\\", "/")
        if any(rel.endswith(allowed) for allowed in allow_files):
            continue
        for m in re.finditer(r"\bgetenv\s*\(", fm.clean):
            findings.append(
                f"{fm.path}:{cpplite.line_of(fm.clean, m.start())}: raw "
                f"getenv() — route this through the strict parsers in "
                f"common/env.h (mflush::env::u64_or/flag_or/str_or) so a "
                f"malformed value hard-errors instead of silently "
                f"defaulting"
            )
    return findings


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root",
        default=os.path.join(os.path.dirname(__file__), "..", ".."),
        help="repository root (default: ../../ from this script)",
    )
    ap.add_argument(
        "--src",
        action="append",
        default=None,
        help="source roots relative to --root (default: src); repeatable, "
        "may also name single files (used by the fixture self-tests)",
    )
    ap.add_argument(
        "--check",
        default="completeness,padding,getenv",
        help="comma list: completeness,padding,getenv",
    )
    ap.add_argument("--cxx", default=os.environ.get("CXX", "c++"))
    ap.add_argument(
        "--getenv-allow",
        action="append",
        default=["common/env.h"],
        help="file suffixes allowed to call getenv directly",
    )
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    src_roots = [os.path.join(root, s) for s in (args.src or ["src"])]
    for s in src_roots:
        if not os.path.exists(s):
            print(f"mflush-lint: no such source root: {s}", file=sys.stderr)
            return 2
    paths = collect_sources(src_roots)
    model = build_model(paths)

    checks = {c.strip() for c in args.check.split(",") if c.strip()}
    unknown = checks - {"completeness", "padding", "getenv"}
    if unknown:
        print(f"mflush-lint: unknown checks: {sorted(unknown)}", file=sys.stderr)
        return 2

    findings: list[str] = []
    if "completeness" in checks:
        findings += check_completeness(model)
    if "padding" in checks:
        findings += check_padding(model, args.cxx, [root, *src_roots])
    if "getenv" in checks:
        findings += check_getenv(model, args.getenv_allow)

    for f in findings:
        print(f"mflush-lint: {f}")
    n_classes = len(model.classes)
    print(
        f"mflush-lint: {len(paths)} files, {n_classes} types, "
        f"{len(findings)} finding(s) "
        f"[checks: {', '.join(sorted(checks))}]",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
