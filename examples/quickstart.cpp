/// Quickstart: build a 1-core 2-context SMT chip (the paper's Fig. 2
/// setting), run the 2W3 workload (mcf + gzip) under ICOUNT and FLUSH-S30,
/// and print the throughput comparison.
#include <iostream>

#include "core/factory.h"
#include "sim/parallel.h"
#include "sim/report.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  const auto workload = workloads::by_name("2W3");
  if (!workload) {
    std::cerr << "workload table is missing 2W3\n";
    return 1;
  }
  std::cout << "Workload 2W3 = " << workload->describe() << " on "
            << workload->num_cores() << " core(s)\n\n";

  const Cycle warm = warmup_cycles(10'000);
  const Cycle measure = bench_cycles(60'000);

  // The three policy runs are independent points: sweep them through the
  // parallel engine (MFLUSH_JOBS controls the thread count).
  for (const RunResult& r :
       run_sweep(*workload,
                 {PolicySpec::icount(), PolicySpec::flush_spec(30),
                  PolicySpec::mflush()},
                 /*seed=*/1, warm, measure)) {
    std::cout << report::summarize(r) << '\n';
  }
  return 0;
}
