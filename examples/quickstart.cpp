/// Quickstart: describe an experiment as data, run it, and see the same
/// study expressed as a spec file for `mflushsim --spec`.
///
/// The paper's Fig. 2 setting: a 1-core 2-context SMT chip running the 2W3
/// workload (mcf + gzip) under ICOUNT, FLUSH-S30 and MFLUSH.
#include <iostream>

#include "core/factory.h"
#include "sim/backend.h"
#include "sim/report.h"
#include "sim/workloads.h"

int main() {
  using namespace mflush;

  const auto workload = workloads::by_name("2W3");
  if (!workload) {
    std::cerr << "workload table is missing 2W3\n";
    return 1;
  }
  std::cout << "Workload 2W3 = " << workload->describe() << " on "
            << workload->num_cores() << " core(s)\n\n";

  // An experiment is a value: workloads x policies x seeds x interval.
  ExperimentSpec spec;
  spec.name = "quickstart";
  spec.workloads = {*workload};
  spec.policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                   PolicySpec::mflush()};
  spec.warmup = warmup_cycles(10'000);
  spec.measure = bench_cycles(60'000);

  // The same study as a spec file — save this as quickstart.spec and
  // `mflushsim --spec quickstart.spec` (add `--backend worker` to fan the
  // jobs out across mflushsim subprocesses) reproduces the run below.
  std::cout << "-- equivalent spec file (mflushsim --spec FILE):\n"
            << spec.to_text() << '\n';

  // Execute on the in-process backend; results stream through the sink as
  // they finish and collect() returns them in job order.
  InProcessBackend backend;
  ResultSink sink;
  for (const RunResult& r : run_experiment(spec, backend, sink)) {
    std::cout << report::summarize(r) << '\n';
  }
  return 0;
}
