/// Compare IFetch policies on any paper workload (or an ad-hoc one given
/// as a string of benchmark codes), with the full diagnostic dump.
///
///   policy_comparison                 # 8W3, the four Fig. 8 policies
///   policy_comparison 4W2             # another workload
///   policy_comparison dlna mflush     # ad-hoc codes, single policy
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "sim/cmp.h"
#include "sim/parallel.h"
#include "sim/report.h"
#include "sim/workloads.h"

int main(int argc, char** argv) {
  using namespace mflush;

  const std::string wl_name = argc > 1 ? argv[1] : "8W3";
  auto wl = workloads::by_name(wl_name);
  if (!wl && wl_name.size() % 2 == 0) {
    // Interpret the argument as a string of Fig. 1 benchmark codes.
    Workload w;
    w.name = wl_name;
    for (const char c : wl_name) w.codes.push_back(c);
    wl = w;
  }
  if (!wl) {
    std::cerr << "unknown workload: " << wl_name << "\n";
    return 1;
  }

  std::vector<PolicySpec> policies;
  for (int i = 2; i < argc; ++i) {
    const auto p = PolicySpec::parse(argv[i]);
    if (!p) {
      std::cerr << "unknown policy: " << argv[i]
                << " (try icount, flush-s30, flush-ns, stall-s30, mflush)\n";
      return 1;
    }
    policies.push_back(*p);
  }
  if (policies.empty()) {
    policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                PolicySpec::flush_spec(100), PolicySpec::mflush()};
  }

  const Cycle warm = warmup_cycles(20'000);
  const Cycle measure = bench_cycles(60'000);
  // Simulate every policy concurrently; the debug dumps need the finished
  // simulator objects, so keep them alive and print in policy order.
  std::vector<std::unique_ptr<CmpSimulator>> sims(policies.size());
  ParallelRunner::shared().for_each_index(policies.size(), [&](std::size_t i) {
    sims[i] = std::make_unique<CmpSimulator>(*wl, policies[i]);
    sims[i]->run(warm);
    sims[i]->reset_stats();
    sims[i]->run(measure);
  });
  for (const auto& sim : sims) {
    report::print_debug(std::cout, *sim);
    std::cout << '\n';
  }
  return 0;
}
