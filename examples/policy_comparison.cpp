/// Compare IFetch policies on any paper workload (or an ad-hoc one given
/// as a string of benchmark codes), with per-policy diagnostics — and the
/// full component dump when a single policy is requested.
///
///   policy_comparison                 # 8W3, the four Fig. 8 policies
///   policy_comparison 4W2             # another workload
///   policy_comparison dlna mflush     # ad-hoc codes, single policy
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/factory.h"
#include "sim/backend.h"
#include "sim/cmp.h"
#include "sim/report.h"
#include "sim/workloads.h"

int main(int argc, char** argv) {
  using namespace mflush;

  const std::string wl_name = argc > 1 ? argv[1] : "8W3";
  auto wl = workloads::by_name(wl_name);
  if (!wl && wl_name.size() % 2 == 0) {
    // Interpret the argument as a string of Fig. 1 benchmark codes.
    Workload w;
    w.name = wl_name;
    for (const char c : wl_name) w.codes.push_back(c);
    wl = w;
  }
  if (!wl) {
    std::cerr << "unknown workload: " << wl_name << "\n";
    return 1;
  }

  std::vector<PolicySpec> policies;
  for (int i = 2; i < argc; ++i) {
    const auto p = PolicySpec::parse(argv[i]);
    if (!p) {
      std::cerr << "unknown policy: " << argv[i]
                << " (try icount, flush-s30, flush-ns, stall-s30, mflush)\n";
      return 1;
    }
    policies.push_back(*p);
  }
  if (policies.empty()) {
    policies = {PolicySpec::icount(), PolicySpec::flush_spec(30),
                PolicySpec::flush_spec(100), PolicySpec::mflush()};
  }

  // One declarative experiment over the policy set; the diagnostic
  // counters every row needs travel inside SimMetrics.
  ExperimentSpec spec;
  spec.name = "policy_comparison";
  spec.workloads = {*wl};
  spec.policies = policies;
  spec.warmup = warmup_cycles(20'000);
  spec.measure = bench_cycles(60'000);

  InProcessBackend backend;
  const std::vector<RunResult> results = run_experiment(spec, backend);

  Table table({"policy", "IPC", "flushes", "squashed", "false-miss",
               "gate-cycles", "mispredict", "wasted/1k"});
  for (const RunResult& r : results) {
    const SimMetrics& m = r.metrics;
    table.add_row({r.policy, Table::num(m.ipc),
                   std::to_string(m.flush_events),
                   std::to_string(m.flushed_instructions),
                   std::to_string(m.policy_flushes_on_hit),
                   std::to_string(m.policy_gate_cycles),
                   Table::pct(m.mispredict_rate()),
                   Table::num(m.energy.flush_wasted_per_kilo_commit(), 1)});
  }
  table.print(std::cout);

  if (policies.size() == 1) {
    // Single-policy mode keeps the deep component dump: one direct
    // simulation (not a sweep) so the live queue state is inspectable.
    std::cout << '\n';
    CmpSimulator sim(*wl, policies.front());
    sim.run(spec.warmup);
    sim.reset_stats();
    sim.run(spec.measure);
    report::print_debug(std::cout, sim);
  }
  return 0;
}
